// CoverageSnapshot contract: Build precomputes the answers a snapshot
// serves, the blob round-trips losslessly, and EVERY form of corruption —
// wrong magic, wrong version, flipped payload byte, forged checksum,
// truncation — dies loudly instead of restoring garbage (the
// sketch_serialize_test discipline, applied to the serving tier).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/params.h"
#include "serve/serving_state.h"
#include "serve/snapshot.h"
#include "setsys/generators.h"
#include "stream/edge_stream.h"

namespace streamkc {
namespace {

ServingState::Config TestConfig(uint64_t seed = 7) {
  ServingState::Config config;
  config.params = Params::Practical(256, 512, 8, 8.0);
  config.seed = seed;
  return config;
}

std::vector<Edge> TestEdges(uint64_t seed = 3) {
  GeneratedInstance inst = PlantedCover(256, 512, 8, 0.5, 6, seed);
  auto edges = inst.system.MaterializeEdges();
  ApplyArrivalOrder(edges, ArrivalOrder::kRandom, seed);
  return edges;
}

ServingState FedState(const std::vector<Edge>& edges) {
  ServingState state(TestConfig());
  for (const Edge& e : edges) state.Process(e);
  return state;
}

SnapshotMeta TestMeta() {
  SnapshotMeta meta;
  meta.epoch = 3;
  meta.edges_ingested = 12345;
  meta.batches_ingested = 3;
  meta.quarantined_fraction = 0.25;
  meta.shards = 4;
  meta.publish_steady_ns = 999;
  return meta;
}

TEST(CoverageSnapshot, BuildCarriesMetaAndFinalizedAnswer) {
  auto edges = TestEdges();
  ServingState state = FedState(edges);
  MaxCoverSolution expect = state.FinalizeSolution();

  auto snap = CoverageSnapshot::Build(state, TestMeta());
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->meta().epoch, 3u);
  EXPECT_EQ(snap->meta().edges_ingested, 12345u);
  EXPECT_EQ(snap->meta().batches_ingested, 3u);
  EXPECT_DOUBLE_EQ(snap->meta().quarantined_fraction, 0.25);
  EXPECT_EQ(snap->meta().shards, 4u);
  EXPECT_EQ(snap->meta().publish_steady_ns, 999u);
  EXPECT_DOUBLE_EQ(snap->solution().estimate, expect.estimate);
  EXPECT_EQ(snap->solution().source, expect.source);
  EXPECT_EQ(snap->solution().sets, expect.sets);
}

TEST(CoverageSnapshot, SetCoverageMatchesLiveSketch) {
  auto edges = TestEdges();
  ServingState state = FedState(edges);
  auto snap = CoverageSnapshot::Build(state, TestMeta());
  // The snapshot's sketch traveled through the blob; point queries must be
  // bit-identical to the live sketch's.
  for (SetId s = 0; s < 32; ++s) {
    EXPECT_DOUBLE_EQ(snap->SetCoverage(s), state.set_coverage().PointQuery(s))
        << "set " << s;
  }
}

TEST(CoverageSnapshot, FromBlobRoundTripsExactly) {
  ServingState state = FedState(TestEdges());
  auto snap = CoverageSnapshot::Build(state, TestMeta());
  auto restored = CoverageSnapshot::FromBlob(snap->blob());
  EXPECT_EQ(restored->blob(), snap->blob());
  EXPECT_EQ(restored->meta().epoch, snap->meta().epoch);
  EXPECT_DOUBLE_EQ(restored->solution().estimate, snap->solution().estimate);
  EXPECT_EQ(restored->solution().sets, snap->solution().sets);
  for (SetId s = 0; s < 16; ++s) {
    EXPECT_DOUBLE_EQ(restored->SetCoverage(s), snap->SetCoverage(s));
  }
}

TEST(CoverageSnapshot, AgeClampsBackwardClock) {
  ServingState state = FedState(TestEdges());
  auto snap = CoverageSnapshot::Build(state, TestMeta());  // published at 999
  EXPECT_EQ(snap->AgeNs(1999), 1000u);
  EXPECT_EQ(snap->AgeNs(0), 0u);  // clock ran backwards: age 0, not huge
}

using CoverageSnapshotDeathTest = ::testing::Test;

TEST(CoverageSnapshotDeathTest, CorruptMagicAborts) {
  ServingState state = FedState(TestEdges());
  std::string blob = CoverageSnapshot::Build(state, TestMeta())->blob();
  blob[0] = 'X';
  EXPECT_DEATH(CoverageSnapshot::FromBlob(blob), "CHECK failed");
}

TEST(CoverageSnapshotDeathTest, WrongVersionAborts) {
  ServingState state = FedState(TestEdges());
  std::string blob = CoverageSnapshot::Build(state, TestMeta())->blob();
  uint32_t bad_version = 99;
  std::memcpy(blob.data() + 4, &bad_version, sizeof(bad_version));
  EXPECT_DEATH(CoverageSnapshot::FromBlob(blob), "CHECK failed");
}

TEST(CoverageSnapshotDeathTest, FlippedPayloadByteAborts) {
  ServingState state = FedState(TestEdges());
  std::string blob = CoverageSnapshot::Build(state, TestMeta())->blob();
  // Flip one byte in the middle of the payload: the checksum must catch it
  // before any field parse could misbehave.
  blob[blob.size() / 2] ^= 0x40;
  EXPECT_DEATH(CoverageSnapshot::FromBlob(blob), "CHECK failed");
}

TEST(CoverageSnapshotDeathTest, ForgedChecksumAborts) {
  ServingState state = FedState(TestEdges());
  std::string blob = CoverageSnapshot::Build(state, TestMeta())->blob();
  // The checksum lives right after the 8-byte header. Forging it proves the
  // check compares against recomputation, not against itself.
  uint64_t forged = 0xDEADBEEFDEADBEEFull;
  std::memcpy(blob.data() + 8, &forged, sizeof(forged));
  EXPECT_DEATH(CoverageSnapshot::FromBlob(blob), "CHECK failed");
}

TEST(CoverageSnapshotDeathTest, TruncatedBlobAborts) {
  ServingState state = FedState(TestEdges());
  std::string blob = CoverageSnapshot::Build(state, TestMeta())->blob();
  EXPECT_DEATH(CoverageSnapshot::FromBlob(blob.substr(0, blob.size() / 2)),
               "CHECK failed");
}

TEST(CoverageSnapshotDeathTest, EmptyBlobAborts) {
  EXPECT_DEATH(CoverageSnapshot::FromBlob(std::string()), "CHECK failed");
}

}  // namespace
}  // namespace streamkc
