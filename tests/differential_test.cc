// Randomized differential test driver (the harness half of the fault
// subsystem): generated instances are run through (1) the in-line
// estimator, (2) the N-shard pipeline, and (3) the N-shard pipeline under
// fault plans. Where the merge order is canonical and faults are
// timing-only, agreement must be EXACT; under token-mutating faults the
// checks relax to the paper's α-bound with an expected failure rate.
//
// Every trial derives from a printed seed: replay a failure with
//   STREAMKC_DIFF_SEED=<seed> STREAMKC_DIFF_TRIALS=1 ./differential_test
// Trial counts scale with STREAMKC_DIFF_TRIALS (ctest -C stress raises it).

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/estimate_max_cover.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/faulty_stream.h"
#include "obs/metrics.h"
#include "runtime/sharded_pipeline.h"
#include "test_util.h"
#include "util/random.h"

namespace streamkc {
namespace {

struct Trial {
  uint64_t seed = 0;
  std::string family;
  uint64_t m = 0, n = 0, k = 0;
  double alpha = 0;
  uint32_t shards = 0;

  std::string Describe() const {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "trial{seed=%llu family=%s m=%llu n=%llu k=%llu "
                  "alpha=%.0f shards=%u}",
                  (unsigned long long)seed, family.c_str(),
                  (unsigned long long)m, (unsigned long long)n,
                  (unsigned long long)k, alpha, shards);
    return buf;
  }
};

// Draws one trial configuration from its seed — the whole trial (instance,
// estimator seed, fault plan) is a pure function of Trial::seed.
Trial DrawTrial(uint64_t seed) {
  Rng rng(seed);
  Trial t;
  t.seed = seed;
  const char* families[] = {"uniform", "zipf", "planted"};
  t.family = families[rng.UniformU64(3)];
  t.m = 128ull << rng.UniformU64(3);  // 128 | 256 | 512
  t.n = t.m * 4;
  t.k = 8ull << rng.UniformU64(2);  // 8 | 16
  t.alpha = rng.UniformU64(2) == 0 ? 4.0 : 8.0;
  t.shards = 2 + static_cast<uint32_t>(rng.UniformU64(7));  // 2..8
  return t;
}

EstimateMaxCover::Config EstimatorConfig(const Trial& t) {
  EstimateMaxCover::Config c;
  c.params = Params::Practical(t.m, t.n, t.k, t.alpha);
  c.seed = SplitMix64(t.seed ^ 0xE57);
  return c;
}

EstimateOutcome RunInline(const Trial& t, const std::vector<Edge>& edges) {
  EstimateMaxCover est(EstimatorConfig(t));
  for (const Edge& e : edges) est.Process(e);
  return est.Finalize();
}

// Runs the trial through the sharded pipeline, optionally under a fault
// plan (empty = clean).
EstimateOutcome RunSharded(const Trial& t, const std::vector<Edge>& edges,
                           const std::string& plan_spec) {
  MetricsRegistry registry;
  ShardedPipelineOptions opts;
  opts.num_shards = t.shards;
  opts.batch_size = 256;
  opts.registry = &registry;
  EstimateMaxCover::Config c = EstimatorConfig(t);
  VectorEdgeStream inner(edges);
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<FaultInjectingStream> faulted;
  EdgeStream* stream = &inner;
  if (!plan_spec.empty()) {
    injector = std::make_unique<FaultInjector>(
        FaultPlan::ParseOrDie(plan_spec), &registry);
    opts.fault_injector = injector.get();
    if (injector->plan().HasStreamFaults()) {
      faulted = std::make_unique<FaultInjectingStream>(&inner, injector.get());
      stream = faulted.get();
    }
  }
  ShardedPipeline<EstimateMaxCover> pipe(
      opts, [&](uint32_t) { return EstimateMaxCover(c); });
  return pipe.Run(*stream).Finalize();
}

std::string TimingOnlyPlan(uint64_t seed) {
  return "seed=" + std::to_string(SplitMix64(seed ^ 0x71)) +
         ",read-error=0.005,push-delay=0.02:10000,slow-shard=1:20000";
}

std::string MutatingPlan(uint64_t seed) {
  return "seed=" + std::to_string(SplitMix64(seed ^ 0x13)) +
         ",dup=0.02,garbage=0.005,reorder=32,kill-shard=1@1";
}

TEST(Differential, InlineVsShardedVsFaultedSharded) {
  const uint64_t master = EnvScaledU64("STREAMKC_DIFF_SEED", 0xD1FF5EED);
  const uint64_t trials = EnvScaledU64("STREAMKC_DIFF_TRIALS", 4);
  uint64_t alpha_violations = 0;
  std::string violating;
  for (uint64_t i = 0; i < trials; ++i) {
    const uint64_t seed = trials == 1 ? master : SplitMix64(master + i);
    Trial t = DrawTrial(seed);
    std::printf("[ differential ] %s  (replay: STREAMKC_DIFF_SEED=%llu "
                "STREAMKC_DIFF_TRIALS=1)\n",
                t.Describe().c_str(), (unsigned long long)seed);
    GeneratedInstance inst = MakeFamilyInstance(t.family, t.m, t.n, t.k, seed);
    std::vector<Edge> edges = InstanceEdges(inst, seed);

    // (1) vs (2): the sharded merge is canonical — EXACT agreement.
    EstimateOutcome inline_out = RunInline(t, edges);
    EstimateOutcome sharded_out = RunSharded(t, edges, "");
    EXPECT_DOUBLE_EQ(sharded_out.estimate, inline_out.estimate)
        << t.Describe();
    EXPECT_EQ(sharded_out.source, inline_out.source) << t.Describe();

    // (2) vs (3a): timing-only faults (delays, a straggler, retried
    // transient reads) leave the token sequence unchanged — still EXACT.
    EstimateOutcome timing_out = RunSharded(t, edges, TimingOnlyPlan(seed));
    EXPECT_DOUBLE_EQ(timing_out.estimate, inline_out.estimate)
        << t.Describe() << " plan=" << TimingOnlyPlan(seed);

    // (3b): token-mutating faults (dups, garbage, reordering, a killed
    // shard) CAN move the estimate; the claim that survives is the paper's
    // α-guarantee, checked statistically across the trial sweep.
    EstimateOutcome mutated = RunSharded(t, edges, MutatingPlan(seed));
    double greedy = static_cast<double>(GreedyCoverage(inst.system, t.k));
    bool ok = mutated.feasible &&
              mutated.estimate >= greedy / (2.0 * t.alpha) &&
              mutated.estimate <= OptUpperBound(inst.system, t.k) * 1.5;
    if (!ok) {
      ++alpha_violations;
      violating += t.Describe() + " plan=" + MutatingPlan(seed) + "; ";
    }
  }
  // Quarantined substreams shrink what the estimator saw, so a small
  // failure rate is expected — but most trials must stay inside the band.
  uint64_t allowed = trials / 5 + 1;
  EXPECT_LE(alpha_violations, allowed)
      << "alpha-bound violations under mutating faults: " << violating;
}

}  // namespace
}  // namespace streamkc
