#include "core/dsj_protocol.h"

#include <gtest/gtest.h>

#include <tuple>

namespace streamkc {
namespace {

TEST(DsjDistinguisher, SeparatesYesAndNoAtDesignBudget) {
  const uint64_t m = 4096, r = 16;
  int correct = 0, trials = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    for (bool no_case : {false, true}) {
      DsjInstance dsj = MakeDsjInstance(m, r, no_case, seed);
      correct += DsjExperimentCorrect(dsj, /*space_factor=*/1.0, 777 + seed);
      ++trials;
    }
  }
  // Theorem-2.10-grade reliability: allow one slip across 20 trials.
  EXPECT_GE(correct, trials - 1);
}

TEST(DsjDistinguisher, RecoversThePlantedItem) {
  const uint64_t m = 2048, r = 32;
  DsjInstance dsj = MakeDsjInstance(m, r, /*no_instance=*/true, 5);
  DsjDistinguisher::Config c;
  c.num_items = m;
  c.num_players = r;
  c.space_factor = 1.0;
  c.seed = 9;
  DsjDistinguisher dist(c);
  for (const Edge& e : DsjToMaxCoverEdges(dsj)) dist.Process(e);
  auto v = dist.Finalize();
  ASSERT_TRUE(v.says_no);
  EXPECT_EQ(v.heaviest_item, dsj.common_item);
  EXPECT_NEAR(v.max_estimate, static_cast<double>(r), r / 2.0);
}

TEST(DsjDistinguisher, YesCaseMaxEstimateSmall) {
  DsjInstance dsj = MakeDsjInstance(2048, 32, /*no_instance=*/false, 6);
  DsjDistinguisher::Config c;
  c.num_items = 2048;
  c.num_players = 32;
  c.space_factor = 1.0;
  c.seed = 10;
  DsjDistinguisher dist(c);
  for (const Edge& e : DsjToMaxCoverEdges(dsj)) dist.Process(e);
  auto v = dist.Finalize();
  EXPECT_FALSE(v.says_no);
  EXPECT_LT(v.max_estimate, 16.0);
}

TEST(DsjDistinguisher, MemoryScalesAsMOverRSquared) {
  // The paper's O(m/α²) distinguisher: quadrupling r at fixed m should cut
  // the sketch size by roughly 16.
  DsjDistinguisher::Config a;
  a.num_items = 1 << 16;
  a.num_players = 8;
  a.space_factor = 1.0;
  a.seed = 1;
  DsjDistinguisher small_r(a);
  a.num_players = 64;
  DsjDistinguisher large_r(a);
  EXPECT_GT(small_r.MemoryBytes(), 8 * large_r.MemoryBytes());
}

TEST(DsjDistinguisher, AccuracyDegradesBelowTheBound) {
  // The lower-bound signature: at a small fraction of the Θ(m/r²) budget,
  // the No-case common item drowns in bucket noise and accuracy falls
  // toward chance, while the full budget stays reliable.
  const uint64_t m = 1 << 14, r = 16;  // ~2048 buckets at the design point
  auto accuracy = [&](double space_factor) {
    int correct = 0, trials = 0;
    for (uint64_t seed = 0; seed < 12; ++seed) {
      for (bool no_case : {false, true}) {
        DsjInstance dsj = MakeDsjInstance(m, r, no_case, 50 + seed);
        correct += DsjExperimentCorrect(dsj, space_factor, 31 + seed);
        ++trials;
      }
    }
    return static_cast<double>(correct) / trials;
  };
  double full = accuracy(1.0);
  double starved = accuracy(1.0 / 256.0);
  EXPECT_GE(full, 0.9);
  EXPECT_LE(starved, full - 0.2);
}

TEST(DsjDistinguisher, ConfigValidation) {
  DsjDistinguisher::Config c;
  c.num_items = 0;
  c.num_players = 8;
  EXPECT_DEATH(DsjDistinguisher{c}, "CHECK failed");
  c.num_items = 100;
  c.num_players = 1;
  EXPECT_DEATH(DsjDistinguisher{c}, "CHECK failed");
}

}  // namespace
}  // namespace streamkc
