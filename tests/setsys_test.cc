#include "setsys/set_system.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "setsys/frequency.h"
#include "stream/stream_stats.h"

namespace streamkc {
namespace {

SetSystem Small() {
  return SetSystem(6, {{0, 1, 2}, {2, 3}, {4}, {0, 1, 2, 3, 4}, {}});
}

TEST(SetSystem, BasicAccessors) {
  SetSystem sys = Small();
  EXPECT_EQ(sys.num_elements(), 6u);
  EXPECT_EQ(sys.num_sets(), 5u);
  EXPECT_EQ(sys.set(0).size(), 3u);
  EXPECT_TRUE(sys.set(4).empty());
}

TEST(SetSystem, DeduplicatesOnConstruction) {
  SetSystem sys(4, {{1, 1, 2, 2, 2}});
  EXPECT_EQ(sys.set(0).size(), 2u);
  EXPECT_TRUE(std::is_sorted(sys.set(0).begin(), sys.set(0).end()));
}

TEST(SetSystem, TotalEdges) { EXPECT_EQ(Small().TotalEdges(), 11u); }

TEST(SetSystem, CoverageOfSingle) {
  SetSystem sys = Small();
  std::vector<SetId> q{0};
  EXPECT_EQ(sys.CoverageOf(q), 3u);
}

TEST(SetSystem, CoverageOfOverlapping) {
  SetSystem sys = Small();
  std::vector<SetId> q{0, 1};
  EXPECT_EQ(sys.CoverageOf(q), 4u);  // {0,1,2,3}
}

TEST(SetSystem, CoverageOfAll) {
  SetSystem sys = Small();
  std::vector<SetId> q{0, 1, 2, 3, 4};
  EXPECT_EQ(sys.CoverageOf(q), 5u);  // element 5 uncovered
}

TEST(SetSystem, CoverageOfEmpty) {
  SetSystem sys = Small();
  EXPECT_EQ(sys.CoverageOf({}), 0u);
}

TEST(SetSystem, CoveredUniverseSize) {
  EXPECT_EQ(Small().CoveredUniverseSize(), 5u);
}

TEST(SetSystem, MaterializeEdgesRoundTrips) {
  SetSystem sys = Small();
  auto edges = sys.MaterializeEdges();
  EXPECT_EQ(edges.size(), sys.TotalEdges());
  VectorEdgeStream stream(edges);
  StreamStats stats = ComputeStreamStats(stream);
  EXPECT_EQ(stats.num_distinct_sets, 4u);  // set 4 is empty, emits nothing
  EXPECT_EQ(stats.num_distinct_elements, 5u);
  EXPECT_EQ(stats.set_size.at(3), 5u);
}

TEST(SetSystem, MakeStreamOrders) {
  SetSystem sys = Small();
  auto s1 = sys.MakeStream(ArrivalOrder::kRandom, 1);
  auto s2 = sys.MakeStream(ArrivalOrder::kRandom, 1);
  EXPECT_EQ(s1.edges().size(), s2.edges().size());
  for (size_t i = 0; i < s1.edges().size(); ++i) {
    EXPECT_EQ(s1.edges()[i], s2.edges()[i]);
  }
}

TEST(Frequency, ElementFrequencies) {
  SetSystem sys = Small();
  auto freq = ElementFrequencies(sys);
  EXPECT_EQ(freq[0], 2u);
  EXPECT_EQ(freq[2], 3u);
  EXPECT_EQ(freq[5], 0u);
}

TEST(Frequency, CommonThresholdShape) {
  // Threshold must scale as m/λ.
  double t1 = CommonThreshold(1000, 1000, 10, 1.0);
  double t2 = CommonThreshold(1000, 1000, 20, 1.0);
  EXPECT_NEAR(t1 / t2, 2.0, 1e-9);
  double t3 = CommonThreshold(2000, 1000, 10, 1.0);
  EXPECT_GT(t3, t1);
}

TEST(Frequency, CommonElementsDetectsCore) {
  // Element 0 in every set; others rare.
  std::vector<std::vector<ElementId>> sets(64);
  for (size_t i = 0; i < sets.size(); ++i) sets[i] = {0, static_cast<ElementId>(i + 1)};
  SetSystem sys(80, std::move(sets));
  // λ chosen so the threshold sits between freq(0)=64 and freq(other)=1:
  // threshold = m·log2(m)·log2(n)/λ = 64·6·~6.3/λ; pick λ so thr≈32.
  double lambda = 64.0 * 6 * std::log2(80.0) / 32.0;
  auto common = CommonElements(sys, lambda, 1.0);
  ASSERT_EQ(common.size(), 1u);
  EXPECT_EQ(common[0], 0u);
}

TEST(Frequency, MonotoneInLambda) {
  // Observation 2.2: U^cmn_{λ1} ⊆ U^cmn_{λ2} for λ1 ≤ λ2.
  std::vector<std::vector<ElementId>> sets(32);
  for (size_t i = 0; i < sets.size(); ++i) {
    sets[i] = {0};
    if (i % 2 == 0) sets[i].push_back(1);
    if (i % 4 == 0) sets[i].push_back(2);
  }
  SetSystem sys(4, std::move(sets));
  auto c_small = CommonElements(sys, 50, 1.0);
  auto c_large = CommonElements(sys, 400, 1.0);
  EXPECT_LE(c_small.size(), c_large.size());
  for (ElementId e : c_small) {
    EXPECT_NE(std::find(c_large.begin(), c_large.end(), e), c_large.end());
  }
}

}  // namespace
}  // namespace streamkc
