// SegmentedTextStream splitter tests: the newline-aligned byte-range split
// must (a) cover the file exactly with adjacent ranges, (b) never cut a
// line — so the union of the segments' edges is exactly the whole file's
// multiset for ANY segment count, including files with comments, blank
// lines, malformed lines sitting on naive split points, and a final line
// with no trailing newline. EdgeSpanStream (the in-memory analogue) gets
// the same union check.

#include "stream/text_stream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "stream/edge_stream.h"
#include "test_util.h"

namespace streamkc {
namespace {

class SegmentedStreamTest : public ::testing::Test {
 protected:
  ScopedTempDir dir_;  // owns every file a test writes

  static std::vector<Edge> Drain(EdgeStream& s) {
    std::vector<Edge> out;
    Edge e;
    while (s.Next(&e)) out.push_back(e);
    return out;
  }

  // Edges of every segment concatenated in segment order.
  static std::vector<Edge> DrainSegments(const SegmentedTextStream& seg) {
    std::vector<Edge> all;
    for (uint32_t i = 0; i < seg.num_segments(); ++i) {
      auto s = seg.OpenSegment(i);
      std::vector<Edge> part = Drain(*s);
      EXPECT_TRUE(s->ok()) << s->StatusMessage();
      all.insert(all.end(), part.begin(), part.end());
    }
    return all;
  }
};

TEST_F(SegmentedStreamTest, RangesAreAdjacentNewlineAlignedAndCoverTheFile) {
  std::string content;
  for (int i = 0; i < 200; ++i) {
    content += std::to_string(i) + " " + std::to_string(i * 7) + "\n";
  }
  std::string path = dir_.WriteFile("ranges.txt", content);
  for (uint32_t p : {1u, 2u, 3u, 5u, 8u, 16u}) {
    SegmentedTextStream seg(path, p);
    ASSERT_EQ(seg.num_segments(), p);
    EXPECT_EQ(seg.segment_begin(0), 0u);
    EXPECT_EQ(seg.segment_end(p - 1), content.size());
    for (uint32_t i = 0; i < p; ++i) {
      EXPECT_LE(seg.segment_begin(i), seg.segment_end(i));
      if (i > 0) {
        EXPECT_EQ(seg.segment_begin(i), seg.segment_end(i - 1));
        // Every interior boundary sits just past a newline.
        uint64_t b = seg.segment_begin(i);
        if (b > 0 && b < content.size()) {
          EXPECT_EQ(content[b - 1], '\n') << "boundary " << i << " at " << b;
        }
      }
    }
  }
}

TEST_F(SegmentedStreamTest, UnionOfSegmentsEqualsWholeFileInOrder) {
  std::string path = dir_.path() + "/union.txt";
  std::vector<Edge> edges;
  for (uint64_t i = 0; i < 500; ++i) edges.push_back(Edge{i % 37, i * 13});
  WriteEdgesToFile(path, edges);
  for (uint32_t p : {1u, 2u, 4u, 7u, 32u}) {
    SegmentedTextStream seg(path, p);
    // Segments are contiguous in file order, so the concatenation preserves
    // the exact sequence, not just the multiset.
    EXPECT_EQ(DrainSegments(seg), edges) << "segments=" << p;
  }
}

TEST_F(SegmentedStreamTest, CommentsBlanksAndNoTrailingNewline) {
  std::string path = dir_.WriteFile(
      "dirty.txt",
      "# header comment\n"
      "1 10\n"
      "\n"
      "  \t \n"
      "2 20\n"
      "# mid comment that is quite long to attract a boundary\n"
      "3 30\n"
      "4 40");  // final line without trailing newline
  std::vector<Edge> expect{{1, 10}, {2, 20}, {3, 30}, {4, 40}};
  for (uint32_t p = 1; p <= 10; ++p) {
    SegmentedTextStream seg(path, p);
    EXPECT_EQ(DrainSegments(seg), expect) << "segments=" << p;
  }
}

TEST_F(SegmentedStreamTest, MalformedLineOnANaiveSplitPointStaysWhole) {
  // Place one malformed line so that naive byte splits (size·i/P) land
  // inside it for several P; the aligned split must keep it in exactly one
  // segment, where it is either skipped (lenient) or reported (strict)
  // exactly once — never half-parsed as two different defects.
  std::string content;
  for (int i = 0; i < 20; ++i) {
    content += std::to_string(i) + " " + std::to_string(i) + "\n";
  }
  content += "999 not_a_number_zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz\n";
  for (int i = 20; i < 40; ++i) {
    content += std::to_string(i) + " " + std::to_string(i) + "\n";
  }
  std::string path = dir_.WriteFile("malformed.txt", content);
  for (uint32_t p : {2u, 3u, 4u, 8u}) {
    // Lenient: the bad line is skipped, all 40 good edges survive.
    SegmentedTextStream::Config lenient;
    lenient.lenient = true;
    MetricsRegistry reg;
    lenient.registry = &reg;
    SegmentedTextStream seg(path, p, lenient);
    std::vector<Edge> got = DrainSegments(seg);
    EXPECT_EQ(got.size(), 40u) << "segments=" << p;
    EXPECT_EQ(reg.GetCounter("stream_malformed_lines_total")->Value(), 1u);

    // Strict: exactly one segment fails, pointing at the defect; the others
    // drain cleanly.
    SegmentedTextStream::Config strict;
    strict.registry = &reg;
    SegmentedTextStream sseg(path, p, strict);
    uint32_t failed = 0;
    for (uint32_t i = 0; i < p; ++i) {
      auto s = sseg.OpenSegment(i);
      Edge e;
      while (s->Next(&e)) {
      }
      if (!s->ok()) {
        ++failed;
        EXPECT_NE(s->StatusMessage().find("malformed edge line"),
                  std::string::npos);
        EXPECT_NE(s->StatusMessage().find(":seg" + std::to_string(i)),
                  std::string::npos);
        EXPECT_FALSE(s->transient());  // data errors are not retryable
      }
    }
    EXPECT_EQ(failed, 1u) << "segments=" << p;
  }
}

TEST_F(SegmentedStreamTest, LineLongerThanASegmentLeavesTrailingSegmentsEmpty) {
  // One comment line dwarfing the rest: several naive split points land
  // inside it and all slide to the same aligned boundary, so some segments
  // are empty — but nothing is lost or duplicated.
  std::string path = dir_.WriteFile(
      "longline.txt", "1 2\n# " + std::string(4000, 'x') + "\n3 4\n");
  std::vector<Edge> expect{{1, 2}, {3, 4}};
  for (uint32_t p : {2u, 4u, 8u, 16u}) {
    SegmentedTextStream seg(path, p);
    for (uint32_t i = 1; i < p; ++i) {
      EXPECT_GE(seg.segment_begin(i), seg.segment_begin(i - 1));
    }
    EXPECT_EQ(DrainSegments(seg), expect) << "segments=" << p;
  }
}

TEST_F(SegmentedStreamTest, MoreSegmentsThanLines) {
  std::string path = dir_.WriteFile("tiny.txt", "7 8\n9 10\n");
  SegmentedTextStream seg(path, 16);
  std::vector<Edge> expect{{7, 8}, {9, 10}};
  EXPECT_EQ(DrainSegments(seg), expect);
}

TEST_F(SegmentedStreamTest, SegmentStreamsResetIndependently) {
  std::string path = dir_.path() + "/reset.txt";
  std::vector<Edge> edges;
  for (uint64_t i = 0; i < 100; ++i) edges.push_back(Edge{i, i + 1});
  WriteEdgesToFile(path, edges);
  SegmentedTextStream seg(path, 4);
  auto s = seg.OpenSegment(1);
  std::vector<Edge> first = Drain(*s);
  s->Reset();
  EXPECT_EQ(Drain(*s), first);
}

TEST(EdgeSpanStream, SpanSegmentsPartitionTheVector) {
  std::vector<Edge> edges;
  for (uint64_t i = 0; i < 1000; ++i) edges.push_back(Edge{i % 13, i});
  for (uint32_t p : {1u, 2u, 3u, 8u}) {
    std::vector<Edge> all;
    for (uint32_t i = 0; i < p; ++i) {
      auto s = MakeEdgeSpanSegment(edges, i, p);
      Edge e;
      std::vector<Edge> part;
      while (s->Next(&e)) part.push_back(e);
      all.insert(all.end(), part.begin(), part.end());
    }
    EXPECT_EQ(all, edges) << "segments=" << p;
  }
  // Bulk reads see the same tokens as per-edge reads.
  auto s = MakeEdgeSpanSegment(edges, 1, 3);
  std::vector<Edge> bulk, buf;
  while (s->NextBatch(&buf, 97) > 0) bulk.insert(bulk.end(), buf.begin(), buf.end());
  auto t = MakeEdgeSpanSegment(edges, 1, 3);
  Edge e;
  std::vector<Edge> single;
  while (t->Next(&e)) single.push_back(e);
  EXPECT_EQ(bulk, single);
}

}  // namespace
}  // namespace streamkc
