#include "offline/set_arrival_streaming.h"

#include <gtest/gtest.h>

#include "offline/greedy.h"
#include "setsys/generators.h"

namespace streamkc {
namespace {

SetArrivalSieve::Config MakeConfig(uint64_t k, uint64_t n) {
  SetArrivalSieve::Config c;
  c.k = k;
  c.epsilon = 0.2;
  c.opt_upper_bound = n;
  return c;
}

TEST(SetArrivalSieve, SingleSetInstance) {
  SetArrivalSieve sieve(MakeConfig(1, 100));
  sieve.OfferSet(3, {1, 2, 3, 4});
  CoverSolution sol = sieve.Finalize();
  EXPECT_EQ(sol.coverage, 4u);
  ASSERT_EQ(sol.sets.size(), 1u);
  EXPECT_EQ(sol.sets[0], 3u);
}

TEST(SetArrivalSieve, DuplicateElementsInOffer) {
  SetArrivalSieve sieve(MakeConfig(1, 100));
  sieve.OfferSet(0, {5, 5, 5, 6});
  EXPECT_EQ(sieve.Finalize().coverage, 2u);
}

// Property: the sieve is a (2+ε)-approximation of OPT on set-arrival
// streams. Check against greedy (which is within 1.582 of OPT, so sieve
// must reach ≥ greedy/(2+2ε) up to rounding).
class SieveQuality : public ::testing::TestWithParam<int> {};

TEST_P(SieveQuality, WithinFactorOfGreedy) {
  int seed = GetParam();
  auto inst = RandomUniform(80, 400, 15, seed);
  const uint64_t k = 8;
  auto stream = inst.system.MakeStream(ArrivalOrder::kSetContiguous, 0);
  CoverSolution sieve = RunSetArrivalSieve(stream, MakeConfig(k, 400));
  CoverSolution greedy = GreedyMaxCover(inst.system, k);
  EXPECT_LE(sieve.coverage, greedy.coverage + 1);
  // (2+ε) w.r.t. OPT ≥ greedy ⇒ allow a factor ~2.6 slack vs greedy.
  EXPECT_GE(static_cast<double>(sieve.coverage),
            static_cast<double>(greedy.coverage) / 2.8);
  EXPECT_LE(sieve.sets.size(), k);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SieveQuality, ::testing::Range(1, 9));

TEST(SetArrivalSieve, RecoversPlantedCover) {
  auto inst = PlantedCover(60, 600, 6, 0.6, 4, 3);
  auto stream = inst.system.MakeStream(ArrivalOrder::kSetContiguous, 0);
  CoverSolution sol = RunSetArrivalSieve(stream, MakeConfig(6, 600));
  EXPECT_GE(sol.coverage, inst.planted_coverage / 3);
}

TEST(RunSetArrivalSieve, RejectsNonContiguousStream) {
  // Interleaved sets violate the set-arrival contract.
  std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 3}};
  VectorEdgeStream stream(std::move(edges));
  SetArrivalSieve::Config c = MakeConfig(2, 10);
  EXPECT_DEATH(RunSetArrivalSieve(stream, c), "CHECK failed");
}

TEST(RunSetArrivalSieve, ReportsMemory) {
  auto inst = RandomUniform(40, 200, 10, 5);
  auto stream = inst.system.MakeStream(ArrivalOrder::kSetContiguous, 0);
  size_t bytes = 0;
  RunSetArrivalSieve(stream, MakeConfig(5, 200), &bytes);
  EXPECT_GT(bytes, 0u);
}

TEST(SetArrivalSieve, NeverExceedsK) {
  auto inst = ZipfFrequency(100, 300, 12, 1.0, 7);
  auto stream = inst.system.MakeStream(ArrivalOrder::kSetContiguous, 0);
  CoverSolution sol = RunSetArrivalSieve(stream, MakeConfig(3, 300));
  EXPECT_LE(sol.sets.size(), 3u);
  EXPECT_EQ(sol.coverage, inst.system.CoverageOf(sol.sets));
}

}  // namespace
}  // namespace streamkc
