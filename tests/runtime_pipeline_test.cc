// ShardedPipeline tests: deterministic mode (N-shard merged state must
// reproduce the single-threaded state on the same seeds), backpressure under
// a slow shard, and the empty-stream / one-shard edge cases.

#include "runtime/sharded_pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/estimate_max_cover.h"
#include "core/report_max_cover.h"
#include "runtime/shard_router.h"
#include "runtime/sketch_states.h"
#include "setsys/generators.h"
#include "stream/edge_stream.h"
#include "test_util.h"
#include "util/random.h"

namespace streamkc {
namespace {

template <typename Sketch>
std::string SaveBytes(const Sketch& s) {
  std::ostringstream os;
  s.Save(os);
  return os.str();
}

TEST(ShardRouter, RoutesInRangeAndDeterministically) {
  ShardRouter router(8, PartitionPolicy::kByElement, 42);
  ShardRouter twin(8, PartitionPolicy::kByElement, 42);
  for (const Edge& e : SyntheticEdges(2000, 7)) {
    uint32_t s = router.ShardOf(e);
    EXPECT_LT(s, 8u);
    EXPECT_EQ(s, twin.ShardOf(e));  // pure function of the edge
  }
}

TEST(ShardRouter, PolicyControlsTheRoutingKey) {
  ShardRouter by_set(8, PartitionPolicy::kBySet);
  ShardRouter by_element(8, PartitionPolicy::kByElement);
  // Same set, different elements: kBySet pins the shard, and the element
  // must not influence it (and symmetrically for kByElement).
  for (uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(by_set.ShardOf(Edge{5, x}), by_set.ShardOf(Edge{5, 0}));
    EXPECT_EQ(by_element.ShardOf(Edge{x, 5}),
              by_element.ShardOf(Edge{0, 5}));
  }
}

TEST(ShardRouter, SpreadsLoadAcrossShards) {
  ShardRouter router(8, PartitionPolicy::kByElement);
  std::vector<size_t> counts(8, 0);
  for (const Edge& e : SyntheticEdges(8000, 11)) ++counts[router.ShardOf(e)];
  for (size_t c : counts) {
    EXPECT_GT(c, 500u);  // ~1000 expected per shard
    EXPECT_LT(c, 1500u);
  }
}

TEST(ShardedPipeline, DeterministicSketchStateAtEightShards) {
  std::vector<Edge> edges = SyntheticEdges(50000, 3);
  CoverageSketchState::Config cfg;
  cfg.seed = 17;

  CoverageSketchState single(cfg);
  for (const Edge& e : edges) single.Process(e);

  ShardedPipelineOptions opts;
  opts.num_shards = 8;
  opts.batch_size = 512;
  ShardedPipeline<CoverageSketchState> pipe(
      opts, [&](uint32_t) { return CoverageSketchState(cfg); });
  VectorEdgeStream stream(edges);
  CoverageSketchState merged = pipe.Run(stream);

  // HLL registers and AMS counters are position-indexed: bit-identical.
  EXPECT_EQ(SaveBytes(merged.covered_hll), SaveBytes(single.covered_hll));
  EXPECT_EQ(SaveBytes(merged.element_f2), SaveBytes(single.element_f2));
  // KMV retains the identical minima VALUE SET (heap array layout differs
  // between the Add and Merge build paths), so the estimates — functions of
  // the value set — must agree exactly.
  EXPECT_DOUBLE_EQ(merged.covered_l0.Estimate(), single.covered_l0.Estimate());
  EXPECT_EQ(pipe.metrics().edges_ingested.load(), edges.size());
  EXPECT_EQ(pipe.metrics().TotalShardEdges(), edges.size());
}

// Differential property sweep: across seeded instances, the N-shard merged
// state must reproduce the 1-shard pipeline's state exactly — the two
// configurations differ only in thread count, and the canonical fold order
// makes the merge a deterministic function of the stream. Seed count scales
// with STREAMKC_SWEEP_SEEDS (stress config turns it up); a failing seed is
// named in the assertion message for replay.
TEST(ShardedPipeline, SeededSweepOneShardVsManyShardsIdentical) {
  const uint64_t base_seed = EnvScaledU64("STREAMKC_SWEEP_BASE_SEED", 1000);
  const uint64_t num_seeds = EnvScaledU64("STREAMKC_SWEEP_SEEDS", 5);
  CoverageSketchState::Config cfg;
  cfg.seed = 23;
  auto run_at = [&](uint32_t shards, const std::vector<Edge>& edges) {
    ShardedPipelineOptions opts;
    opts.num_shards = shards;
    opts.batch_size = 128;
    ShardedPipeline<CoverageSketchState> pipe(
        opts, [&](uint32_t) { return CoverageSketchState(cfg); });
    VectorEdgeStream stream(edges);
    return pipe.Run(stream);
  };
  for (uint64_t i = 0; i < num_seeds; ++i) {
    uint64_t seed = base_seed + i;
    std::vector<Edge> edges = SyntheticEdges(12000, seed);
    CoverageSketchState one = run_at(1, edges);
    for (uint32_t shards : {2u, 5u, 8u}) {
      CoverageSketchState many = run_at(shards, edges);
      EXPECT_EQ(SaveBytes(many.covered_hll), SaveBytes(one.covered_hll))
          << "replay: STREAMKC_SWEEP_BASE_SEED=" << seed
          << " shards=" << shards;
      EXPECT_EQ(SaveBytes(many.element_f2), SaveBytes(one.element_f2))
          << "replay: STREAMKC_SWEEP_BASE_SEED=" << seed
          << " shards=" << shards;
      EXPECT_DOUBLE_EQ(many.covered_l0.Estimate(), one.covered_l0.Estimate())
          << "replay: STREAMKC_SWEEP_BASE_SEED=" << seed
          << " shards=" << shards;
    }
  }
}

TEST(ShardedPipeline, RepeatedRunsAreBitIdentical) {
  std::vector<Edge> edges = SyntheticEdges(20000, 5);
  CoverageSketchState::Config cfg;
  ShardedPipelineOptions opts;
  opts.num_shards = 4;
  opts.batch_size = 97;  // non-round batches: thread interleaving varies
  auto run_once = [&] {
    ShardedPipeline<CoverageSketchState> pipe(
        opts, [&](uint32_t) { return CoverageSketchState(cfg); });
    VectorEdgeStream stream(edges);
    CoverageSketchState merged = pipe.Run(stream);
    return SaveBytes(merged.covered_hll) + SaveBytes(merged.element_f2);
  };
  std::string first = run_once();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(run_once(), first);
}

TEST(ShardedPipeline, DeterministicEstimateTrivialMode) {
  // k·α ≥ m: EstimateMaxCover is a pure L0 over covered elements.
  GeneratedInstance inst = PlantedCover(64, 512, 16, 0.5, 6, 9);
  std::vector<Edge> edges = inst.system.MaterializeEdges();
  ApplyArrivalOrder(edges, ArrivalOrder::kRandom, 9);

  EstimateMaxCover::Config c;
  c.params = Params::Practical(64, 512, 16, 8.0);
  c.seed = 13;
  EstimateMaxCover single(c);
  ASSERT_TRUE(single.trivial_mode());
  for (const Edge& e : edges) single.Process(e);

  ShardedPipelineOptions opts;
  opts.num_shards = 8;
  opts.batch_size = 64;
  ShardedPipeline<EstimateMaxCover> pipe(
      opts, [&](uint32_t) { return EstimateMaxCover(c); });
  VectorEdgeStream stream(edges);
  EstimateMaxCover merged = pipe.Run(stream);
  EXPECT_DOUBLE_EQ(merged.Finalize().estimate, single.Finalize().estimate);
}

TEST(ShardedPipeline, DeterministicEstimateFullOracleStack) {
  // k·α < m: the full per-guess oracle stack (LargeCommon + LargeSet +
  // SmallSet) rides the pipeline; the merged estimate must equal the
  // single-threaded one bit-for-bit on the same seed.
  GeneratedInstance inst = PlantedCover(2048, 4096, 16, 0.5, 6, 21);
  std::vector<Edge> edges = inst.system.MaterializeEdges();
  ApplyArrivalOrder(edges, ArrivalOrder::kRandom, 21);

  EstimateMaxCover::Config c;
  c.params = Params::Practical(2048, 4096, 16, 4.0);
  c.seed = 29;
  EstimateMaxCover single(c);
  ASSERT_FALSE(single.trivial_mode());
  for (const Edge& e : edges) single.Process(e);
  EstimateOutcome single_out = single.Finalize();

  ShardedPipelineOptions opts;
  opts.num_shards = 8;
  opts.batch_size = 256;
  ShardedPipeline<EstimateMaxCover> pipe(
      opts, [&](uint32_t) { return EstimateMaxCover(c); });
  VectorEdgeStream stream(edges);
  EstimateMaxCover merged = pipe.Run(stream);
  EstimateOutcome merged_out = merged.Finalize();

  EXPECT_DOUBLE_EQ(merged_out.estimate, single_out.estimate);
  EXPECT_EQ(merged_out.source, single_out.source);
}

TEST(ShardedPipeline, DeterministicReportSolution) {
  GeneratedInstance inst = PlantedCover(512, 1024, 16, 0.5, 6, 33);
  std::vector<Edge> edges = inst.system.MaterializeEdges();
  ApplyArrivalOrder(edges, ArrivalOrder::kRandom, 33);

  ReportMaxCover::Config c;
  c.params = Params::Practical(512, 1024, 16, 8.0);
  c.seed = 37;
  ReportMaxCover single(c);
  for (const Edge& e : edges) single.Process(e);
  MaxCoverSolution single_sol = single.Finalize();

  ShardedPipelineOptions opts;
  opts.num_shards = 8;
  ShardedPipeline<ReportMaxCover> pipe(
      opts, [&](uint32_t) { return ReportMaxCover(c); });
  VectorEdgeStream stream(edges);
  MaxCoverSolution merged_sol = pipe.Run(stream).Finalize();

  EXPECT_DOUBLE_EQ(merged_sol.estimate, single_sol.estimate);
  EXPECT_EQ(merged_sol.source, single_sol.source);
  std::vector<SetId> a = single_sol.sets, b = merged_sol.sets;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(ShardedPipeline, OneShardMatchesInlineProcessing) {
  std::vector<Edge> edges = SyntheticEdges(10000, 41);
  CoverageSketchState::Config cfg;
  CoverageSketchState inline_state(cfg);
  for (const Edge& e : edges) inline_state.Process(e);

  ShardedPipelineOptions opts;  // num_shards = 1
  ShardedPipeline<CoverageSketchState> pipe(
      opts, [&](uint32_t) { return CoverageSketchState(cfg); });
  VectorEdgeStream stream(edges);
  CoverageSketchState merged = pipe.Run(stream);
  // One shard sees the whole stream in order: even the KMV heap layout (an
  // Add-path artifact) matches, so all three sketches are bit-identical.
  EXPECT_EQ(SaveBytes(merged.covered_l0), SaveBytes(inline_state.covered_l0));
  EXPECT_EQ(SaveBytes(merged.covered_hll),
            SaveBytes(inline_state.covered_hll));
  EXPECT_EQ(SaveBytes(merged.element_f2), SaveBytes(inline_state.element_f2));
  EXPECT_EQ(pipe.metrics().merges.load(), 0u);
}

TEST(ShardedPipeline, EmptyStreamCompletes) {
  ShardedPipelineOptions opts;
  opts.num_shards = 4;
  CoverageSketchState::Config cfg;
  ShardedPipeline<CoverageSketchState> pipe(
      opts, [&](uint32_t) { return CoverageSketchState(cfg); });
  VectorEdgeStream stream({});
  CoverageSketchState merged = pipe.Run(stream);
  EXPECT_DOUBLE_EQ(merged.covered_l0.Estimate(), 0.0);
  EXPECT_EQ(pipe.metrics().edges_ingested.load(), 0u);
  EXPECT_EQ(pipe.metrics().TotalShardEdges(), 0u);
  EXPECT_EQ(pipe.metrics().queue_full_stalls.load(), 0u);
}

// A state whose Process is slow enough to fill its ring: the bounded queue
// must stall the producer (backpressure), not drop or buffer unboundedly.
struct SlowCountingState {
  uint64_t edges_seen = 0;
  void Process(const Edge&) {
    ++edges_seen;
    if (edges_seen % 64 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  void Merge(const SlowCountingState& other) { edges_seen += other.edges_seen; }
};

TEST(ShardedPipeline, SlowShardBackpressuresProducerWithoutLoss) {
  ShardedPipelineOptions opts;
  opts.num_shards = 2;
  opts.batch_size = 64;
  opts.queue_capacity = 1;  // tiny ring: stalls are guaranteed
  ShardedPipeline<SlowCountingState> pipe(
      opts, [](uint32_t) { return SlowCountingState{}; });
  std::vector<Edge> edges = SyntheticEdges(20000, 51);
  VectorEdgeStream stream(edges);
  SlowCountingState merged = pipe.Run(stream);
  EXPECT_EQ(merged.edges_seen, edges.size());  // nothing lost under stall
  EXPECT_GT(pipe.metrics().queue_full_stalls.load(), 0u);
  EXPECT_EQ(pipe.metrics().TotalShardEdges(), edges.size());
  // The repaired ring accounting: stall events fold into the per-shard
  // rows, rounds dominate events, and blocked wall time is recorded.
  uint64_t shard_stall_sum = 0;
  for (uint32_t s = 0; s < 2; ++s) {
    shard_stall_sum += pipe.metrics().shard(s).ring_stalls.load();
  }
  EXPECT_EQ(shard_stall_sum, pipe.metrics().queue_full_stalls.load());
  EXPECT_GE(pipe.metrics().TotalRingStallRounds(), shard_stall_sum);
  EXPECT_GT(pipe.metrics().TotalRingStalledNs(), 0u);
}

TEST(ShardedPipeline, SpaceAccountantTracksShardPeaksAndMergedCurrent) {
  std::vector<Edge> edges = SyntheticEdges(30000, 71);
  CoverageSketchState::Config cfg;
  ShardedPipelineOptions opts;
  opts.num_shards = 4;
  opts.batch_size = 256;
  opts.space_sample_every_batches = 1;  // sample every batch
  MetricsRegistry registry;
  opts.registry = &registry;
  ShardedPipeline<CoverageSketchState> pipe(
      opts, [&](uint32_t) { return CoverageSketchState(cfg); });
  VectorEdgeStream stream(edges);
  CoverageSketchState merged = pipe.Run(stream);

  const SpaceAccountant& space = pipe.space();
  EXPECT_GT(space.num_samples(), 0u);
  // Current footprint after the fold is the merged state alone; the peak
  // covers the 4 simultaneous replicas and must dominate it.
  EXPECT_EQ(space.current_total_bytes(), merged.MemoryBytes());
  EXPECT_GE(space.peak_total_bytes(), space.current_total_bytes());
  EXPECT_GE(space.peak_total_bytes(), pipe.metrics().TotalStateBytes());
  EXPECT_EQ(space.components().count("coverage_sketch"), 1u);
  EXPECT_EQ(space.components().count("l0_estimator"), 1u);
  // The run published its gauges and histograms into the given registry,
  // not the global one.
  EXPECT_GT(registry.GetGauge("space_peak_total_bytes")->Value(), 0u);
  EXPECT_GT(registry.GetHistogram("runtime_batch_busy_ns")->Count(), 0u);
  EXPECT_EQ(registry.GetHistogram("runtime_batch_edges")->Sum(),
            edges.size());
}

TEST(ShardedPipeline, MergeTimeIsRecorded) {
  std::vector<Edge> edges = SyntheticEdges(10000, 81);
  CoverageSketchState::Config cfg;
  ShardedPipelineOptions opts;
  opts.num_shards = 4;
  ShardedPipeline<CoverageSketchState> pipe(
      opts, [&](uint32_t) { return CoverageSketchState(cfg); });
  VectorEdgeStream stream(edges);
  pipe.Run(stream);
  EXPECT_EQ(pipe.metrics().merges.load(), 3u);
  EXPECT_GT(pipe.metrics().merge_ns.load(), 0u);
  EXPECT_LE(pipe.metrics().merge_ns.load(), pipe.metrics().wall_ns.load());
}

TEST(RuntimeMetrics, JsonSnapshotCarriesTheCounters) {
  std::vector<Edge> edges = SyntheticEdges(5000, 61);
  ShardedPipelineOptions opts;
  opts.num_shards = 3;
  CoverageSketchState::Config cfg;
  ShardedPipeline<CoverageSketchState> pipe(
      opts, [&](uint32_t) { return CoverageSketchState(cfg); });
  VectorEdgeStream stream(edges);
  pipe.Run(stream);
  std::string json = pipe.metrics().ToJson();
  EXPECT_NE(json.find("\"edges_ingested\": 5000"), std::string::npos);
  EXPECT_NE(json.find("\"merges\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"queue_full_stalls\""), std::string::npos);
  EXPECT_NE(json.find("\"shards\""), std::string::npos);
  EXPECT_NE(json.find("\"busy_ns\""), std::string::npos);
  EXPECT_EQ(pipe.metrics().num_shards(), 3u);
}

}  // namespace
}  // namespace streamkc
