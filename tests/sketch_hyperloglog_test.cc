#include "sketch/hyperloglog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace streamkc {
namespace {

TEST(HyperLogLog, EmptyIsZero) {
  HyperLogLog hll({.precision = 10, .seed = 1});
  EXPECT_NEAR(hll.Estimate(), 0.0, 1e-9);
}

TEST(HyperLogLog, SmallCardinalitiesViaLinearCounting) {
  HyperLogLog hll({.precision = 12, .seed = 2});
  for (uint64_t i = 0; i < 50; ++i) hll.Add(i);
  EXPECT_NEAR(hll.Estimate(), 50.0, 5.0);
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  HyperLogLog hll({.precision = 10, .seed = 3});
  for (int rep = 0; rep < 100; ++rep) {
    for (uint64_t i = 0; i < 200; ++i) hll.Add(i);
  }
  EXPECT_NEAR(hll.Estimate(), 200.0, 25.0);
}

class HllAccuracy
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint32_t>> {};

TEST_P(HllAccuracy, WithinExpectedError) {
  auto [n, precision] = GetParam();
  double total_err = 0;
  const int kSeeds = 8;
  for (int s = 0; s < kSeeds; ++s) {
    HyperLogLog hll({.precision = precision, .seed = 100u + s});
    for (uint64_t i = 0; i < n; ++i) hll.Add(i * 0x9e3779b97f4a7c15ULL + s);
    total_err += std::abs(hll.Estimate() - static_cast<double>(n)) / n;
  }
  double expected = 1.04 / std::sqrt(static_cast<double>(1u << precision));
  EXPECT_LT(total_err / kSeeds, 4 * expected + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HllAccuracy,
    ::testing::Combine(::testing::Values(1000, 20000, 200000),
                       ::testing::Values(8u, 12u)));

TEST(HyperLogLog, PrecisionImprovesAccuracy) {
  auto avg_err = [](uint32_t precision) {
    double total = 0;
    const int kSeeds = 10;
    for (int s = 0; s < kSeeds; ++s) {
      HyperLogLog hll({.precision = precision, .seed = 500u + s});
      for (uint64_t i = 0; i < 50000; ++i) hll.Add(i * 31 + s);
      total += std::abs(hll.Estimate() - 50000.0) / 50000.0;
    }
    return total / kSeeds;
  };
  EXPECT_LT(avg_err(14), avg_err(6));
}

TEST(HyperLogLog, MergeEqualsUnion) {
  HyperLogLog a({.precision = 12, .seed = 7});
  HyperLogLog b({.precision = 12, .seed = 7});
  HyperLogLog whole({.precision = 12, .seed = 7});
  for (uint64_t i = 0; i < 30000; ++i) {
    (i % 2 ? a : b).Add(i);
    whole.Add(i);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), whole.Estimate());
}

TEST(HyperLogLog, MergeMismatchAborts) {
  HyperLogLog a({.precision = 10, .seed = 1});
  HyperLogLog b({.precision = 12, .seed = 1});
  EXPECT_DEATH(a.Merge(b), "CHECK failed");
}

TEST(HyperLogLog, MemoryIsRegistersPlusTables) {
  HyperLogLog hll({.precision = 12, .seed = 1});
  EXPECT_EQ(hll.MemoryBytes(), (1u << 12) + 8 * 256 * sizeof(uint64_t));
}

TEST(HyperLogLog, InvalidPrecisionAborts) {
  EXPECT_DEATH(HyperLogLog({.precision = 3, .seed = 1}), "CHECK failed");
  EXPECT_DEATH(HyperLogLog({.precision = 19, .seed = 1}), "CHECK failed");
}

}  // namespace
}  // namespace streamkc
