// Fault-plan grammar, injector determinism, and FaultInjectingStream
// behavior: every fault decision must be a pure function of (plan, sequence
// number) so that a failing run replays byte-identically from its spec.

#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/faulty_stream.h"
#include "obs/metrics.h"
#include "setsys/set_system.h"
#include "test_util.h"

namespace streamkc {
namespace {

TEST(FaultPlan, ParsesEveryClauseAndRoundTrips) {
  const std::string spec =
      "seed=7,read-error=0.001,dup=0.02,reorder=64,garbage=0.005,"
      "push-delay=0.01:20000,slow-shard=2:5000,kill-shard=1@8,"
      "corrupt-merge=3,corrupt-frame=2";
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse(spec, &plan, &error)) << error;
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_DOUBLE_EQ(plan.read_error_rate, 0.001);
  EXPECT_DOUBLE_EQ(plan.duplicate_rate, 0.02);
  EXPECT_EQ(plan.reorder_window, 64u);
  EXPECT_DOUBLE_EQ(plan.garbage_rate, 0.005);
  EXPECT_DOUBLE_EQ(plan.push_delay_rate, 0.01);
  EXPECT_EQ(plan.push_delay_ns, 20000u);
  EXPECT_EQ(plan.slow_shard, 2u);
  EXPECT_EQ(plan.slow_shard_ns, 5000u);
  EXPECT_EQ(plan.kill_shard, 1u);
  EXPECT_EQ(plan.kill_after_batches, 8u);
  EXPECT_EQ(plan.corrupt_merge_shard, 3u);
  EXPECT_EQ(plan.corrupt_frame_shard, 2u);
  EXPECT_TRUE(plan.HasStreamFaults());
  EXPECT_TRUE(plan.HasRuntimeFaults());
  // The canonical spec re-parses to the same plan (the replay handle).
  FaultPlan again;
  ASSERT_TRUE(FaultPlan::Parse(plan.ToSpec(), &again, &error)) << error;
  EXPECT_EQ(again.ToSpec(), plan.ToSpec());
}

TEST(FaultPlan, DefaultsAreFaultFree) {
  FaultPlan plan = FaultPlan::ParseOrDie("seed=3");
  EXPECT_FALSE(plan.Any());
  EXPECT_FALSE(plan.HasStreamFaults());
  EXPECT_FALSE(plan.HasRuntimeFaults());
  EXPECT_EQ(plan.ToSpec(), "seed=3");
}

TEST(FaultPlan, StrictParserNamesTheOffendingClause) {
  FaultPlan plan;
  std::string error;
  // A typo'd key must fail loudly — a plan silently injecting nothing
  // would defeat the harness.
  EXPECT_FALSE(FaultPlan::Parse("read-eror=0.5", &plan, &error));
  EXPECT_NE(error.find("read-eror=0.5"), std::string::npos);
  EXPECT_FALSE(FaultPlan::Parse("", &plan, &error));
  EXPECT_FALSE(FaultPlan::Parse("dup=1.5", &plan, &error));  // p > 1
  EXPECT_NE(error.find("dup=1.5"), std::string::npos);
  EXPECT_FALSE(FaultPlan::Parse("dup=-0.1", &plan, &error));
  EXPECT_FALSE(FaultPlan::Parse("push-delay=0.5", &plan, &error));  // no :NS
  EXPECT_FALSE(FaultPlan::Parse("kill-shard=1:8", &plan, &error));  // wants @
  EXPECT_FALSE(FaultPlan::Parse("seed", &plan, &error));  // no '='
  EXPECT_FALSE(FaultPlan::Parse("corrupt-frame=x", &plan, &error));
  EXPECT_NE(error.find("corrupt-frame=x"), std::string::npos);
}

TEST(FaultInjector, DecideIsDeterministicAndRespectsEdgeRates) {
  MetricsRegistry registry;
  FaultPlan plan = FaultPlan::ParseOrDie("seed=11");
  FaultInjector a(plan, &registry), b(plan, &registry);
  int hits = 0;
  for (uint64_t n = 0; n < 10000; ++n) {
    bool da = a.Decide(0x1234, n, 0.1);
    EXPECT_EQ(da, b.Decide(0x1234, n, 0.1));  // pure function of (tag, n)
    hits += da ? 1 : 0;
    EXPECT_FALSE(a.Decide(0x1234, n, 0.0));  // p=0 never fires
    EXPECT_TRUE(a.Decide(0x1234, n, 1.0));   // p=1 always fires
  }
  // ~1000 expected; a wildly-off count means the hash → [0,1) map is broken.
  EXPECT_GT(hits, 700);
  EXPECT_LT(hits, 1300);
}

TEST(FaultInjector, DifferentSeedsGiveDifferentDecisionStreams) {
  MetricsRegistry registry;
  FaultInjector a(FaultPlan::ParseOrDie("seed=1"), &registry);
  FaultInjector b(FaultPlan::ParseOrDie("seed=2"), &registry);
  int diff = 0;
  for (uint64_t n = 0; n < 2000; ++n) {
    diff += a.Decide(0x9, n, 0.5) != b.Decide(0x9, n, 0.5) ? 1 : 0;
  }
  EXPECT_GT(diff, 500);  // ~1000 expected disagreements at p=0.5
}

TEST(FaultInjector, WorkerDeathIsAThresholdNotACoinFlip) {
  MetricsRegistry registry;
  FaultInjector inj(FaultPlan::ParseOrDie("seed=1,kill-shard=2@5"), &registry);
  for (uint64_t b = 0; b < 5; ++b) EXPECT_FALSE(inj.WorkerDiesAt(2, b));
  for (uint64_t b = 5; b < 20; ++b) EXPECT_TRUE(inj.WorkerDiesAt(2, b));
  for (uint64_t b = 0; b < 20; ++b) EXPECT_FALSE(inj.WorkerDiesAt(1, b));
  EXPECT_TRUE(inj.CorruptsMergeFingerprint(2) == false);
}

TEST(FaultInjector, CountsPublishToTheRegistry) {
  MetricsRegistry registry;
  FaultInjector inj(FaultPlan::ParseOrDie("seed=1"), &registry);
  inj.Count(FaultInjector::kFaultDuplicate);
  inj.Count(FaultInjector::kFaultDuplicate);
  inj.Count(FaultInjector::kFaultWorkerDeath);
  EXPECT_EQ(registry
                .GetCounter(LabeledName("faults_injected_total", "kind",
                                        FaultInjector::kFaultDuplicate))
                ->Value(),
            2u);
  EXPECT_EQ(registry
                .GetCounter(LabeledName("faults_injected_total", "kind",
                                        FaultInjector::kFaultWorkerDeath))
                ->Value(),
            1u);
}

std::vector<Edge> Drain(EdgeStream& stream, int max_retries = 1 << 20) {
  std::vector<Edge> out;
  Edge e;
  int retries = 0;
  for (;;) {
    if (stream.Next(&e)) {
      out.push_back(e);
      continue;
    }
    if (!stream.ok() && stream.transient() && retries++ < max_retries) {
      continue;  // a retry is simply the next call
    }
    return out;
  }
}

TEST(FaultInjectingStream, CleanPlanIsAPassthrough) {
  std::vector<Edge> edges = SyntheticEdges(5000, 3);
  MetricsRegistry registry;
  FaultInjector inj(FaultPlan::ParseOrDie("seed=5"), &registry);
  VectorEdgeStream inner(edges);
  FaultInjectingStream stream(&inner, &inj);
  EXPECT_EQ(Drain(stream), edges);
  EXPECT_TRUE(stream.ok());
  EXPECT_EQ(stream.transient_errors(), 0u);
  EXPECT_EQ(stream.duplicates_injected(), 0u);
}

TEST(FaultInjectingStream, PerturbedSequenceIsDeterministicAndResetReplays) {
  std::vector<Edge> edges = SyntheticEdges(8000, 9);
  MetricsRegistry registry;
  FaultInjector inj(
      FaultPlan::ParseOrDie(
          "seed=13,read-error=0.01,dup=0.05,garbage=0.02,reorder=32"),
      &registry);
  VectorEdgeStream inner_a(edges), inner_b(edges);
  FaultInjectingStream a(&inner_a, &inj), b(&inner_b, &inj);
  std::vector<Edge> first = Drain(a);
  EXPECT_EQ(first, Drain(b));  // same plan → same perturbed tokens
  EXPECT_GT(a.transient_errors(), 0u);
  EXPECT_GT(a.duplicates_injected(), 0u);
  EXPECT_GT(a.garbage_injected(), 0u);
  EXPECT_GT(a.windows_reordered(), 0u);
  a.Reset();
  EXPECT_EQ(Drain(a), first);  // byte-identical replay after Reset
}

TEST(FaultInjectingStream, DuplicatesAndGarbageChangeOnlyWhatTheyClaim) {
  std::vector<Edge> edges = SyntheticEdges(6000, 21);
  MetricsRegistry registry;
  FaultInjector inj(FaultPlan::ParseOrDie("seed=2,dup=0.03,garbage=0.01"),
                    &registry);
  VectorEdgeStream inner(edges);
  FaultInjectingStream stream(&inner, &inj);
  std::vector<Edge> got = Drain(stream);
  ASSERT_EQ(got.size(), edges.size() + stream.duplicates_injected() +
                            stream.garbage_injected());
  // Garbage edges are confined to the out-of-domain id range, so a test (or
  // consumer) can always separate them from real tokens.
  uint64_t garbage_seen = 0;
  std::map<std::pair<uint64_t, uint64_t>, int> histogram;
  for (const Edge& e : got) {
    if (e.set >= FaultPlan::kGarbageIdBase) {
      ++garbage_seen;
      continue;
    }
    ++histogram[{e.set, e.element}];
  }
  EXPECT_EQ(garbage_seen, stream.garbage_injected());
  // Every emitted non-garbage token is an edge of the original stream
  // (duplication repeats incidences; it never invents new ones).
  std::map<std::pair<uint64_t, uint64_t>, int> original;
  for (const Edge& e : edges) ++original[{e.set, e.element}];
  for (const auto& [edge, count] : histogram) {
    EXPECT_GE(count, original[edge]);
    (void)edge;
  }
}

TEST(FaultInjectingStream, ReorderPreservesTheTokenMultiset) {
  std::vector<Edge> edges = SyntheticEdges(4096, 31);
  MetricsRegistry registry;
  FaultInjector inj(FaultPlan::ParseOrDie("seed=3,reorder=128"), &registry);
  VectorEdgeStream inner(edges);
  FaultInjectingStream stream(&inner, &inj);
  std::vector<Edge> got = Drain(stream);
  ASSERT_EQ(got.size(), edges.size());
  EXPECT_NE(got, edges);  // it actually reordered something
  auto key = [](const Edge& e) { return std::make_pair(e.set, e.element); };
  std::vector<std::pair<uint64_t, uint64_t>> a, b;
  for (const Edge& e : edges) a.push_back(key(e));
  for (const Edge& e : got) b.push_back(key(e));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);  // same multiset, different order
}

TEST(FaultInjectingStream, TransientErrorIsRetryableAndLosesNothing) {
  std::vector<Edge> edges = SyntheticEdges(3000, 41);
  MetricsRegistry registry;
  FaultInjector inj(FaultPlan::ParseOrDie("seed=17,read-error=0.02"),
                    &registry);
  VectorEdgeStream inner(edges);
  FaultInjectingStream stream(&inner, &inj);
  std::vector<Edge> got;
  Edge e;
  uint64_t errors_seen = 0;
  for (;;) {
    if (stream.Next(&e)) {
      got.push_back(e);
      continue;
    }
    if (!stream.ok()) {
      ASSERT_TRUE(stream.transient());
      EXPECT_FALSE(stream.StatusMessage().empty());
      ++errors_seen;
      continue;  // retry
    }
    break;  // clean end of stream
  }
  EXPECT_EQ(got, edges);  // read errors delay tokens, never drop them
  EXPECT_GT(errors_seen, 0u);
  EXPECT_EQ(errors_seen, stream.transient_errors());
  EXPECT_TRUE(stream.ok());
}

}  // namespace
}  // namespace streamkc
