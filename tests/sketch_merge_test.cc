// Mergeability tests: all linear sketches must satisfy
//   sketch(stream A) ⊕ sketch(stream B) == sketch(A ++ B)
// exactly (counter-level equality), which is what makes the pipeline usable
// over distributed or sharded streams.
//
// The *MergeOrder* tests go further: the runtime's merge coordinator folds
// shard replicas in a fixed order, but nothing in the reduction should
// depend on it — folding the same ≥4 shard sketches in random orders must
// produce identical results (associativity + commutativity as an observable
// property, not just an algebra claim).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "sketch/ams_f2.h"
#include "sketch/count_sketch.h"
#include "sketch/f2_contributing.h"
#include "sketch/f2_heavy_hitters.h"
#include "sketch/hyperloglog.h"
#include "sketch/l0_estimator.h"
#include "util/random.h"

namespace streamkc {
namespace {

template <typename Sketch>
std::string SaveBytes(const Sketch& s) {
  std::ostringstream os;
  s.Save(os);
  return os.str();
}

// Left-fold of `shards` in the given visiting order.
template <typename Sketch>
Sketch FoldInOrder(const std::vector<Sketch>& shards,
                   const std::vector<size_t>& order) {
  Sketch acc = shards[order[0]];
  for (size_t i = 1; i < order.size(); ++i) acc.Merge(shards[order[i]]);
  return acc;
}

// Deterministic Fisher-Yates over [0, n) driven by the repo Rng.
std::vector<size_t> RandomOrder(size_t n, Rng& rng) {
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (size_t i = n - 1; i > 0; --i) {
    size_t j = rng.UniformU64(i + 1);
    std::swap(order[i], order[j]);
  }
  return order;
}

TEST(CountSketchMerge, EqualsConcatenation) {
  CountSketch::Config cfg{.depth = 5, .width = 128, .seed = 3};
  CountSketch a(cfg), b(cfg), whole(cfg);
  for (uint64_t i = 0; i < 2000; ++i) {
    uint64_t id = i % 97;
    if (i < 1000) {
      a.Add(id);
    } else {
      b.Add(id);
    }
    whole.Add(id);
  }
  a.Merge(b);
  for (uint64_t id = 0; id < 97; ++id) {
    EXPECT_DOUBLE_EQ(a.PointQuery(id), whole.PointQuery(id));
  }
  EXPECT_DOUBLE_EQ(a.EstimateF2(), whole.EstimateF2());
  EXPECT_DOUBLE_EQ(a.QuickF2(), whole.QuickF2());
}

TEST(CountSketchMerge, MismatchedGeometryAborts) {
  CountSketch a({.depth = 5, .width = 128, .seed = 3});
  CountSketch b({.depth = 5, .width = 64, .seed = 3});
  CountSketch c({.depth = 5, .width = 128, .seed = 4});
  EXPECT_DEATH(a.Merge(b), "CHECK failed");
  EXPECT_DEATH(a.Merge(c), "CHECK failed");
}

// The sharded fold's safety audit: every mergeable sketch must CHECK both
// seed and shape before folding — a seed-mismatched merge combines hash
// spaces that share no structure and silently corrupts the result.
TEST(L0Merge, MismatchedConfigAborts) {
  L0Estimator a({.num_mins = 64, .seed = 3});
  L0Estimator b({.num_mins = 32, .seed = 3});
  L0Estimator c({.num_mins = 64, .seed = 4});
  EXPECT_DEATH(a.Merge(b), "CHECK failed");
  EXPECT_DEATH(a.Merge(c), "CHECK failed");
}

TEST(HllMerge, MismatchedConfigAborts) {
  HyperLogLog a({.precision = 12, .seed = 3});
  HyperLogLog b({.precision = 10, .seed = 3});
  HyperLogLog c({.precision = 12, .seed = 4});
  EXPECT_DEATH(a.Merge(b), "CHECK failed");
  EXPECT_DEATH(a.Merge(c), "CHECK failed");
}

TEST(AmsF2Merge, MismatchedConfigAborts) {
  AmsF2Sketch a({.rows = 3, .cols = 8, .seed = 5});
  AmsF2Sketch b({.rows = 4, .cols = 8, .seed = 5});
  AmsF2Sketch c({.rows = 3, .cols = 16, .seed = 5});
  AmsF2Sketch d({.rows = 3, .cols = 8, .seed = 6});
  EXPECT_DEATH(a.Merge(b), "CHECK failed");
  EXPECT_DEATH(a.Merge(c), "CHECK failed");
  EXPECT_DEATH(a.Merge(d), "CHECK failed");
}

TEST(AmsF2Merge, EqualsConcatenation) {
  AmsF2Sketch::Config cfg{.rows = 3, .cols = 8, .seed = 5};
  AmsF2Sketch a(cfg), b(cfg), whole(cfg);
  for (uint64_t i = 0; i < 1000; ++i) {
    uint64_t id = i % 41;
    (i % 2 ? a : b).Add(id);
    whole.Add(id);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), whole.Estimate());
}

TEST(F2HeavyHittersMerge, FindsHeavySplitAcrossShards) {
  // The heavy id's mass is split between shards so that NEITHER shard sees
  // it as heavy locally; the merged sketch must still report it.
  F2HeavyHitters::Config cfg{.phi = 0.05, .seed = 7};
  F2HeavyHitters a(cfg), b(cfg);
  for (int i = 0; i < 30; ++i) a.Add(12345);
  for (int i = 0; i < 30; ++i) b.Add(12345);
  for (uint64_t i = 0; i < 1500; ++i) (i % 2 ? a : b).Add(i);
  a.Merge(b);
  auto out = a.Extract();
  bool found = std::any_of(out.begin(), out.end(), [](const HeavyHitter& h) {
    return h.id == 12345;
  });
  ASSERT_TRUE(found);
  for (const auto& h : out) {
    if (h.id == 12345) {
      EXPECT_GE(h.estimate, 30.0);
      EXPECT_LE(h.estimate, 90.0);
    }
  }
}

TEST(F2HeavyHittersMerge, CounterStateMatchesWholeStream) {
  F2HeavyHitters::Config cfg{.phi = 0.02, .seed = 9};
  F2HeavyHitters a(cfg), b(cfg), whole(cfg);
  for (uint64_t i = 0; i < 4000; ++i) {
    uint64_t id = (i * 31) % 511;
    (i < 2000 ? a : b).Add(id);
    whole.Add(id);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.EstimateF2(), whole.EstimateF2());
  for (uint64_t id = 0; id < 511; id += 17) {
    EXPECT_DOUBLE_EQ(a.EstimateFrequency(id), whole.EstimateFrequency(id));
  }
}

TEST(F2ContributingMerge, FindsClassSplitAcrossShards) {
  F2Contributing::Config cfg{.gamma = 0.2,
                             .max_class_size = 256,
                             .domain_size = 8192,
                             .seed = 11};
  F2Contributing a(cfg), b(cfg);
  // 64-coordinate class, half its mass per shard.
  for (uint64_t j = 0; j < 64; ++j) {
    a.Add(5000 + j, 16);
    b.Add(5000 + j, 16);
  }
  for (uint64_t i = 0; i < 1024; ++i) (i % 2 ? a : b).Add(i);
  a.Merge(b);
  auto out = a.Extract();
  bool found =
      std::any_of(out.begin(), out.end(), [](const ContributingCoordinate& cc) {
        return cc.id >= 5000 && cc.id < 5064;
      });
  EXPECT_TRUE(found);
  // Frequencies reflect the combined stream: each class coordinate is 32.
  // (Dedup keeps the max across levels, so allow extra one-sided noise
  // headroom beyond the per-level (1 ± 1/2) contract.)
  for (const auto& cc : out) {
    if (cc.id >= 5000 && cc.id < 5064) {
      EXPECT_GE(cc.estimate, 16.0);
      EXPECT_LE(cc.estimate, 80.0);
    }
  }
}

TEST(L0MergeOrder, AnyFoldOrderGivesIdenticalState) {
  // 6 shards, ~3000 distinct ids >> num_mins, so every shard saturates and
  // the merged heap is the 64 globally smallest hashes no matter the fold.
  L0Estimator::Config cfg{.num_mins = 64, .seed = 21};
  std::vector<L0Estimator> shards(6, L0Estimator(cfg));
  for (uint64_t i = 0; i < 3000; ++i) shards[i % 6].Add(SplitMix64(i));
  L0Estimator canonical = FoldInOrder(shards, {0, 1, 2, 3, 4, 5});
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    L0Estimator folded = FoldInOrder(shards, RandomOrder(shards.size(), rng));
    EXPECT_EQ(SaveBytes(folded), SaveBytes(canonical));
    EXPECT_DOUBLE_EQ(folded.Estimate(), canonical.Estimate());
  }
}

TEST(HllMergeOrder, AnyFoldOrderMatchesWholeStreamBytes) {
  // Register-wise max is idempotent/commutative/associative, so the merged
  // registers must be byte-identical to the single-pass sketch as well.
  HyperLogLog::Config cfg{.precision = 10, .seed = 23};
  std::vector<HyperLogLog> shards(5, HyperLogLog(cfg));
  HyperLogLog whole(cfg);
  for (uint64_t i = 0; i < 5000; ++i) {
    shards[i % 5].Add(SplitMix64(i * 3));
    whole.Add(SplitMix64(i * 3));
  }
  std::string whole_bytes = SaveBytes(whole);
  Rng rng(101);
  for (int trial = 0; trial < 10; ++trial) {
    HyperLogLog folded = FoldInOrder(shards, RandomOrder(shards.size(), rng));
    EXPECT_EQ(SaveBytes(folded), whole_bytes);
  }
}

TEST(AmsMergeOrder, AnyFoldOrderMatchesWholeStreamBytes) {
  AmsF2Sketch::Config cfg{.rows = 5, .cols = 16, .seed = 25};
  std::vector<AmsF2Sketch> shards(4, AmsF2Sketch(cfg));
  AmsF2Sketch whole(cfg);
  for (uint64_t i = 0; i < 4000; ++i) {
    uint64_t id = i % 131;
    shards[i % 4].Add(id);
    whole.Add(id);
  }
  std::string whole_bytes = SaveBytes(whole);
  Rng rng(103);
  for (int trial = 0; trial < 10; ++trial) {
    AmsF2Sketch folded = FoldInOrder(shards, RandomOrder(shards.size(), rng));
    EXPECT_EQ(SaveBytes(folded), whole_bytes);
    EXPECT_DOUBLE_EQ(folded.Estimate(), whole.Estimate());
  }
}

TEST(F2HeavyHittersMergeOrder, ExtractIsFoldOrderInvariant) {
  // Distinct-id count stays below the candidate capacity (cand_factor/phi),
  // so no order-dependent prune fires; the candidate set is then a plain
  // union and Extract re-queries the merged (linear) counters.
  F2HeavyHitters::Config cfg{.phi = 0.05, .seed = 27};
  std::vector<F2HeavyHitters> shards(5, F2HeavyHitters(cfg));
  for (uint64_t i = 0; i < 2000; ++i) {
    uint64_t id = i % 50;
    shards[i % 5].Add(id, id == 7 ? 40 : 1);
  }
  auto sorted_extract = [](const F2HeavyHitters& hh) {
    auto out = hh.Extract();
    std::sort(out.begin(), out.end(),
              [](const HeavyHitter& a, const HeavyHitter& b) {
                return a.id < b.id;
              });
    return out;
  };
  F2HeavyHitters canonical = FoldInOrder(shards, {0, 1, 2, 3, 4});
  auto canonical_out = sorted_extract(canonical);
  ASSERT_FALSE(canonical_out.empty());
  Rng rng(105);
  for (int trial = 0; trial < 10; ++trial) {
    F2HeavyHitters folded =
        FoldInOrder(shards, RandomOrder(shards.size(), rng));
    auto out = sorted_extract(folded);
    ASSERT_EQ(out.size(), canonical_out.size());
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i].id, canonical_out[i].id);
      EXPECT_DOUBLE_EQ(out[i].estimate, canonical_out[i].estimate);
    }
    EXPECT_DOUBLE_EQ(folded.EstimateF2(), canonical.EstimateF2());
  }
}

TEST(F2ContributingMerge, MismatchedSeedAborts) {
  F2Contributing a({.gamma = 0.2, .max_class_size = 64, .domain_size = 1024,
                    .seed = 1});
  F2Contributing b({.gamma = 0.2, .max_class_size = 64, .domain_size = 1024,
                    .seed = 2});
  EXPECT_DEATH(a.Merge(b), "CHECK failed");
}

}  // namespace
}  // namespace streamkc
