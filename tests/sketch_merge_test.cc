// Mergeability tests: all linear sketches must satisfy
//   sketch(stream A) ⊕ sketch(stream B) == sketch(A ++ B)
// exactly (counter-level equality), which is what makes the pipeline usable
// over distributed or sharded streams.

#include <gtest/gtest.h>

#include <algorithm>

#include "sketch/ams_f2.h"
#include "sketch/count_sketch.h"
#include "sketch/f2_contributing.h"
#include "sketch/f2_heavy_hitters.h"

namespace streamkc {
namespace {

TEST(CountSketchMerge, EqualsConcatenation) {
  CountSketch::Config cfg{.depth = 5, .width = 128, .seed = 3};
  CountSketch a(cfg), b(cfg), whole(cfg);
  for (uint64_t i = 0; i < 2000; ++i) {
    uint64_t id = i % 97;
    if (i < 1000) {
      a.Add(id);
    } else {
      b.Add(id);
    }
    whole.Add(id);
  }
  a.Merge(b);
  for (uint64_t id = 0; id < 97; ++id) {
    EXPECT_DOUBLE_EQ(a.PointQuery(id), whole.PointQuery(id));
  }
  EXPECT_DOUBLE_EQ(a.EstimateF2(), whole.EstimateF2());
  EXPECT_DOUBLE_EQ(a.QuickF2(), whole.QuickF2());
}

TEST(CountSketchMerge, MismatchedGeometryAborts) {
  CountSketch a({.depth = 5, .width = 128, .seed = 3});
  CountSketch b({.depth = 5, .width = 64, .seed = 3});
  CountSketch c({.depth = 5, .width = 128, .seed = 4});
  EXPECT_DEATH(a.Merge(b), "CHECK failed");
  EXPECT_DEATH(a.Merge(c), "CHECK failed");
}

TEST(AmsF2Merge, EqualsConcatenation) {
  AmsF2Sketch::Config cfg{.rows = 3, .cols = 8, .seed = 5};
  AmsF2Sketch a(cfg), b(cfg), whole(cfg);
  for (uint64_t i = 0; i < 1000; ++i) {
    uint64_t id = i % 41;
    (i % 2 ? a : b).Add(id);
    whole.Add(id);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), whole.Estimate());
}

TEST(F2HeavyHittersMerge, FindsHeavySplitAcrossShards) {
  // The heavy id's mass is split between shards so that NEITHER shard sees
  // it as heavy locally; the merged sketch must still report it.
  F2HeavyHitters::Config cfg{.phi = 0.05, .seed = 7};
  F2HeavyHitters a(cfg), b(cfg);
  for (int i = 0; i < 30; ++i) a.Add(12345);
  for (int i = 0; i < 30; ++i) b.Add(12345);
  for (uint64_t i = 0; i < 1500; ++i) (i % 2 ? a : b).Add(i);
  a.Merge(b);
  auto out = a.Extract();
  bool found = std::any_of(out.begin(), out.end(), [](const HeavyHitter& h) {
    return h.id == 12345;
  });
  ASSERT_TRUE(found);
  for (const auto& h : out) {
    if (h.id == 12345) {
      EXPECT_GE(h.estimate, 30.0);
      EXPECT_LE(h.estimate, 90.0);
    }
  }
}

TEST(F2HeavyHittersMerge, CounterStateMatchesWholeStream) {
  F2HeavyHitters::Config cfg{.phi = 0.02, .seed = 9};
  F2HeavyHitters a(cfg), b(cfg), whole(cfg);
  for (uint64_t i = 0; i < 4000; ++i) {
    uint64_t id = (i * 31) % 511;
    (i < 2000 ? a : b).Add(id);
    whole.Add(id);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.EstimateF2(), whole.EstimateF2());
  for (uint64_t id = 0; id < 511; id += 17) {
    EXPECT_DOUBLE_EQ(a.EstimateFrequency(id), whole.EstimateFrequency(id));
  }
}

TEST(F2ContributingMerge, FindsClassSplitAcrossShards) {
  F2Contributing::Config cfg{.gamma = 0.2,
                             .max_class_size = 256,
                             .domain_size = 8192,
                             .seed = 11};
  F2Contributing a(cfg), b(cfg);
  // 64-coordinate class, half its mass per shard.
  for (uint64_t j = 0; j < 64; ++j) {
    a.Add(5000 + j, 16);
    b.Add(5000 + j, 16);
  }
  for (uint64_t i = 0; i < 1024; ++i) (i % 2 ? a : b).Add(i);
  a.Merge(b);
  auto out = a.Extract();
  bool found =
      std::any_of(out.begin(), out.end(), [](const ContributingCoordinate& cc) {
        return cc.id >= 5000 && cc.id < 5064;
      });
  EXPECT_TRUE(found);
  // Frequencies reflect the combined stream: each class coordinate is 32.
  // (Dedup keeps the max across levels, so allow extra one-sided noise
  // headroom beyond the per-level (1 ± 1/2) contract.)
  for (const auto& cc : out) {
    if (cc.id >= 5000 && cc.id < 5064) {
      EXPECT_GE(cc.estimate, 16.0);
      EXPECT_LE(cc.estimate, 80.0);
    }
  }
}

TEST(F2ContributingMerge, MismatchedSeedAborts) {
  F2Contributing a({.gamma = 0.2, .max_class_size = 64, .domain_size = 1024,
                    .seed = 1});
  F2Contributing b({.gamma = 0.2, .max_class_size = 64, .domain_size = 1024,
                    .seed = 2});
  EXPECT_DEATH(a.Merge(b), "CHECK failed");
}

}  // namespace
}  // namespace streamkc
