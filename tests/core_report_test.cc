#include "core/report_max_cover.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace streamkc {
namespace {

ReportMaxCover MakeReporter(const SetSystem& sys, uint64_t k, double alpha,
                            uint64_t seed) {
  ReportMaxCover::Config c;
  c.params = Params::Practical(sys.num_sets(), sys.num_elements(), k, alpha);
  c.seed = seed;
  return ReportMaxCover(c);
}

TEST(ReportMaxCover, TrivialBranchReturnsKDistinctSets) {
  auto inst = RandomUniform(32, 256, 8, 1);  // kα = 64 ≥ m = 32
  ReportMaxCover rep = MakeReporter(inst.system, 8, 8, 1);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 1, rep);
  MaxCoverSolution sol = rep.Finalize();
  EXPECT_EQ(sol.source, "trivial");
  EXPECT_EQ(sol.sets.size(), 8u);
  std::set<SetId> unique(sol.sets.begin(), sol.sets.end());
  EXPECT_EQ(unique.size(), 8u);
  for (SetId s : sol.sets) EXPECT_LT(s, 32u);
  // Expected coverage of a uniform 8-subset is ≥ OPT·k/m = OPT/4; allow
  // sampling slack.
  uint64_t cov = inst.system.CoverageOf(sol.sets);
  EXPECT_GE(static_cast<double>(cov),
            static_cast<double>(GreedyCoverage(inst.system, 8)) / 10.0);
}

// Theorem 3.2's contract across case families: the reported ≤ k sets have
// true coverage within Õ(α) of OPT.
struct RepCase {
  const char* name;
  GeneratedInstance (*make)(uint64_t seed);
  uint64_t k;
};

GeneratedInstance RepPlanted(uint64_t seed) {
  return PlantedCover(2048, 4096, 32, 0.5, 6, seed);
}
GeneratedInstance RepLarge(uint64_t seed) {
  return LargeSetFamily(2048, 2048, 4, seed);
}
GeneratedInstance RepSmall(uint64_t seed) {
  return SmallSetFamily(2048, 4096, 64, seed);
}

class ReportQuality : public ::testing::TestWithParam<RepCase> {};

TEST_P(ReportQuality, ReportedSetsCoverWithinAlpha) {
  const RepCase& tc = GetParam();
  const double alpha = 8;
  auto inst = tc.make(55);
  double greedy = static_cast<double>(GreedyCoverage(inst.system, tc.k));
  ReportMaxCover rep = MakeReporter(inst.system, tc.k, alpha, 4321);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 7, rep);
  MaxCoverSolution sol = rep.Finalize();
  ASSERT_FALSE(sol.sets.empty()) << tc.name;
  EXPECT_LE(sol.sets.size(), tc.k) << tc.name;
  for (SetId s : sol.sets) EXPECT_LT(s, inst.system.num_sets());
  uint64_t cov = inst.system.CoverageOf(sol.sets);
  // True coverage within ~1.5α of greedy (measured headroom ≈ 0.5α).
  EXPECT_GE(static_cast<double>(cov), greedy / (1.5 * alpha)) << tc.name;
  // The estimate shown to the caller should not wildly overstate the
  // solution's real coverage (f-style inflation is bounded).
  EXPECT_LE(sol.estimate, static_cast<double>(cov) * 12.0 + 32.0) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, ReportQuality,
    ::testing::Values(RepCase{"planted", RepPlanted, 32},
                      RepCase{"large", RepLarge, 8},
                      RepCase{"small", RepSmall, 64}),
    [](const ::testing::TestParamInfo<RepCase>& info) {
      return info.param.name;
    });

TEST(ReportMaxCover, NoDuplicateSetIds) {
  auto inst = RepSmall(3);
  ReportMaxCover rep = MakeReporter(inst.system, 64, 8, 11);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 2, rep);
  MaxCoverSolution sol = rep.Finalize();
  std::set<SetId> unique(sol.sets.begin(), sol.sets.end());
  EXPECT_EQ(unique.size(), sol.sets.size());
}

TEST(ReportMaxCover, DeterministicInSeed) {
  auto inst = RepPlanted(5);
  auto run = [&] {
    ReportMaxCover rep = MakeReporter(inst.system, 32, 8, 77);
    FeedSystem(inst.system, ArrivalOrder::kRandom, 3, rep);
    return rep.Finalize().sets;
  };
  EXPECT_EQ(run(), run());
}

TEST(ReportMaxCover, MemoryIncludesEstimatorPlusSample) {
  auto inst = RepPlanted(7);
  ReportMaxCover rep = MakeReporter(inst.system, 32, 8, 88);
  EXPECT_GT(rep.MemoryBytes(), 0u);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 4, rep);
  EXPECT_GT(rep.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace streamkc
