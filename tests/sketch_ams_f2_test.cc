#include "sketch/ams_f2.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "util/random.h"

namespace streamkc {
namespace {

TEST(AmsF2, EmptyIsZero) {
  AmsF2Sketch f2({.rows = 5, .cols = 8, .seed = 1});
  EXPECT_DOUBLE_EQ(f2.Estimate(), 0.0);
}

TEST(AmsF2, SingleHeavyCoordinate) {
  AmsF2Sketch f2({.rows = 5, .cols = 8, .seed = 2});
  for (int i = 0; i < 100; ++i) f2.Add(7);
  // Exactly one coordinate with a = 100: F2 = 10000, and the sketch is exact
  // for a single coordinate (signs square away).
  EXPECT_DOUBLE_EQ(f2.Estimate(), 10000.0);
}

TEST(AmsF2, LinearInDelta) {
  AmsF2Sketch a({.rows = 3, .cols = 4, .seed = 3});
  AmsF2Sketch b({.rows = 3, .cols = 4, .seed = 3});
  a.Add(5, 10);
  for (int i = 0; i < 10; ++i) b.Add(5, 1);
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

TEST(AmsF2, NegativeDeltasCancel) {
  AmsF2Sketch f2({.rows = 3, .cols = 4, .seed = 4});
  f2.Add(1, 5);
  f2.Add(1, -5);
  EXPECT_DOUBLE_EQ(f2.Estimate(), 0.0);
}

class AmsF2Accuracy
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(AmsF2Accuracy, UniformVector) {
  auto [n, seed] = GetParam();
  AmsF2Sketch f2({.rows = 5, .cols = 24, .seed = seed});
  for (int i = 0; i < n; ++i) f2.Add(i);
  double truth = n;  // all frequencies 1
  EXPECT_NEAR(f2.Estimate(), truth, 0.5 * truth);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AmsF2Accuracy,
                         ::testing::Combine(::testing::Values(100, 1000, 10000),
                                            ::testing::Values(1u, 2u, 3u, 4u)));

TEST(AmsF2, SkewedVectorAccuracy) {
  // Zipf-ish frequencies; compare against exact F2.
  Rng rng(5);
  std::vector<int> freq(200);
  double truth = 0;
  AmsF2Sketch f2({.rows = 5, .cols = 32, .seed = 6});
  for (int i = 0; i < 200; ++i) {
    freq[i] = 1 + static_cast<int>(200.0 / (i + 1));
    truth += static_cast<double>(freq[i]) * freq[i];
    f2.Add(i, freq[i]);
  }
  EXPECT_NEAR(f2.Estimate(), truth, 0.4 * truth);
}

TEST(AmsF2, AverageErrorShrinksWithCols) {
  auto avg_err = [](uint32_t cols) {
    double total = 0;
    const int kTrials = 30;
    for (int t = 0; t < kTrials; ++t) {
      AmsF2Sketch f2({.rows = 1, .cols = cols, .seed = 100u + t});
      for (int i = 0; i < 2000; ++i) f2.Add(i);
      total += std::abs(f2.Estimate() - 2000.0) / 2000.0;
    }
    return total / kTrials;
  };
  EXPECT_LT(avg_err(64), avg_err(2));
}

TEST(AmsF2, DeterministicInSeed) {
  AmsF2Sketch a({.rows = 3, .cols = 8, .seed = 7});
  AmsF2Sketch b({.rows = 3, .cols = 8, .seed = 7});
  for (int i = 0; i < 1000; ++i) {
    a.Add(i % 37);
    b.Add(i % 37);
  }
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

TEST(AmsF2, MemoryMatchesGrid) {
  AmsF2Sketch f2({.rows = 4, .cols = 8, .seed = 8});
  // 32 counters + 32 four-wise hashes (4 words each).
  EXPECT_EQ(f2.MemoryBytes(), 32 * sizeof(int64_t) + 32 * 4 * sizeof(uint64_t));
}

}  // namespace
}  // namespace streamkc
