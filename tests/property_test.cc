// Cross-cutting property tests: invariants that must hold over randomized
// sweeps of instances, not just on hand-picked cases.

#include <gtest/gtest.h>

#include <cmath>

#include "core/estimate_max_cover.h"
#include "core/report_max_cover.h"
#include "sketch/count_sketch.h"
#include "sketch/l0_estimator.h"
#include "test_util.h"

namespace streamkc {
namespace {

// P1: the estimator never materially overestimates OPT — the lower-bound
// half of the (α,δ,η)-oracle contract — on arbitrary random instances.
// Practical mode takes the max over ~30 noisy per-guess lower bounds, whose
// selection bias can exceed OPT by a small constant (documented in
// DESIGN.md §5); the acceptance bound below is 1.5× an upper bound on OPT.
// Theory mode's constants keep the strict w.h.p. guarantee instead.
class NeverOverestimate : public ::testing::TestWithParam<int> {};

TEST_P(NeverOverestimate, OnRandomInstances) {
  int seed = GetParam();
  Rng rng(9000 + seed);
  uint64_t m = 256 + rng.UniformU64(1024);
  uint64_t n = 256 + rng.UniformU64(2048);
  uint64_t set_size = 2 + rng.UniformU64(12);
  uint64_t k = 4 + rng.UniformU64(24);
  double alpha = 4.0 * (1 + rng.UniformU64(3));
  auto inst = RandomUniform(m, n, std::min(set_size, n), rng.Fork());

  EstimateMaxCover::Config c;
  c.params = Params::Practical(m, n, k, alpha);
  c.seed = rng.Fork();
  EstimateMaxCover est(c);
  FeedSystem(inst.system, ArrivalOrder::kRandom, rng.Fork(), est);
  EstimateOutcome out = est.Finalize();
  EXPECT_LE(out.estimate, OptUpperBound(inst.system, k) * 1.5)
      << "m=" << m << " n=" << n << " k=" << k << " alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Sweep, NeverOverestimate, ::testing::Range(0, 12));

// P2: reported solutions are always valid — ≤ k distinct in-range ids.
class ValidSolutions : public ::testing::TestWithParam<int> {};

TEST_P(ValidSolutions, OnRandomInstances) {
  int seed = GetParam();
  Rng rng(7000 + seed);
  uint64_t m = 256 + rng.UniformU64(512);
  uint64_t n = 512 + rng.UniformU64(1024);
  uint64_t k = 4 + rng.UniformU64(32);
  auto inst = ZipfFrequency(m, n, 8, 0.8, rng.Fork());

  ReportMaxCover::Config c;
  c.params = Params::Practical(m, n, k, 8);
  c.seed = rng.Fork();
  ReportMaxCover rep(c);
  FeedSystem(inst.system, ArrivalOrder::kRandom, rng.Fork(), rep);
  MaxCoverSolution sol = rep.Finalize();
  EXPECT_LE(sol.sets.size(), k);
  std::set<SetId> unique(sol.sets.begin(), sol.sets.end());
  EXPECT_EQ(unique.size(), sol.sets.size());
  for (SetId s : sol.sets) EXPECT_LT(s, m);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ValidSolutions, ::testing::Range(0, 10));

// P3: CountSketch linearity — Add(x, a); Add(x, b) ≡ Add(x, a+b), and
// interleaving streams never changes state.
TEST(SketchProperties, CountSketchLinearity) {
  CountSketch::Config cfg{.depth = 3, .width = 64, .seed = 1};
  CountSketch split(cfg), joint(cfg);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    uint64_t id = rng.UniformU64(100);
    int64_t a = static_cast<int64_t>(rng.UniformU64(10));
    int64_t b = static_cast<int64_t>(rng.UniformU64(10)) - 5;
    split.Add(id, a);
    split.Add(id, b);
    joint.Add(id, a + b);
  }
  for (uint64_t id = 0; id < 100; ++id) {
    EXPECT_DOUBLE_EQ(split.PointQuery(id), joint.PointQuery(id));
  }
}

// P4: L0 estimates are invariant under permutation AND duplication of the
// input (pure set semantics).
TEST(SketchProperties, L0SetSemantics) {
  std::vector<uint64_t> ids;
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) ids.push_back(rng.UniformU64(700));
  L0Estimator forward({.num_mins = 64, .seed = 11});
  for (uint64_t id : ids) forward.Add(id);
  // Reverse order + every element twice.
  L0Estimator backward({.num_mins = 64, .seed = 11});
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    backward.Add(*it);
    backward.Add(*it);
  }
  EXPECT_DOUBLE_EQ(forward.Estimate(), backward.Estimate());
}

// P5: estimates are scale-monotone — adding sets to an instance (leaving k
// fixed) cannot materially reduce the estimator's output, since coverage is
// monotone. (Checked against a generous noise allowance.)
TEST(SketchProperties, EstimateMonotoneUnderInstanceGrowth) {
  auto small_inst = PlantedCover(1024, 4096, 16, 0.25, 5, 7);
  // Same instance plus a second planted 16-cover of 2× the coverage.
  auto big_inst = PlantedCover(1024, 4096, 16, 0.75, 5, 7);
  auto run = [](const SetSystem& sys) {
    EstimateMaxCover::Config c;
    c.params = Params::Practical(sys.num_sets(), sys.num_elements(), 16, 8);
    c.seed = 21;
    EstimateMaxCover est(c);
    FeedSystem(sys, ArrivalOrder::kRandom, 2, est);
    return est.Finalize().estimate;
  };
  EXPECT_GT(run(big_inst.system), run(small_inst.system));
}

}  // namespace
}  // namespace streamkc
