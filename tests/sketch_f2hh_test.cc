#include "sketch/f2_heavy_hitters.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace streamkc {
namespace {

bool Contains(const std::vector<HeavyHitter>& hhs, uint64_t id) {
  return std::any_of(hhs.begin(), hhs.end(),
                     [id](const HeavyHitter& h) { return h.id == id; });
}

TEST(F2HeavyHitters, EmptyStream) {
  F2HeavyHitters hh({.phi = 0.1, .seed = 1});
  EXPECT_TRUE(hh.Extract().empty());
}

TEST(F2HeavyHitters, SingleItemIsHeavy) {
  F2HeavyHitters hh({.phi = 0.1, .seed = 2});
  for (int i = 0; i < 100; ++i) hh.Add(5);
  auto out = hh.Extract();
  ASSERT_TRUE(Contains(out, 5));
  EXPECT_NEAR(out.front().estimate, 100.0, 1.0);
}

TEST(F2HeavyHitters, FindsPlantedHeavyAmongNoise) {
  // Theorem 2.10 contract: must return every j with a[j]² ≥ φ·F2.
  F2HeavyHitters hh({.phi = 0.05, .seed = 3});
  // Noise: 4000 unit items → F2_noise = 4000. Heavy: a = 40 → a² = 1600,
  // F2 total ≈ 5600, ratio ≈ 0.28 ≥ φ.
  hh.Add(123456, 40);
  for (uint64_t i = 0; i < 4000; ++i) hh.Add(i);
  auto out = hh.Extract();
  ASSERT_TRUE(Contains(out, 123456));
}

TEST(F2HeavyHitters, FrequencyEstimateWithinHalf) {
  // The returned value must be a (1 ± 1/2)-approximation.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    F2HeavyHitters hh({.phi = 0.05, .seed = seed});
    hh.Add(777, 60);
    for (uint64_t i = 0; i < 3000; ++i) hh.Add(i + 1000000);
    auto out = hh.Extract();
    ASSERT_TRUE(Contains(out, 777)) << "seed " << seed;
    for (const auto& h : out) {
      if (h.id == 777) {
        EXPECT_GE(h.estimate, 30.0) << "seed " << seed;
        EXPECT_LE(h.estimate, 90.0) << "seed " << seed;
      }
    }
  }
}

TEST(F2HeavyHitters, LightItemsNotReported) {
  F2HeavyHitters hh({.phi = 0.1, .seed = 4});
  hh.Add(1, 100);  // the only heavy item
  for (uint64_t i = 10; i < 1000; ++i) hh.Add(i);  // unit noise
  auto out = hh.Extract();
  ASSERT_TRUE(Contains(out, 1));
  // No unit-frequency item should read as heavy: threshold is
  // sqrt(phi*F2/4) = sqrt(0.1*~11000/4) ≈ 16.
  for (const auto& h : out) {
    EXPECT_EQ(h.id, 1u) << "spurious heavy hitter " << h.id;
  }
}

TEST(F2HeavyHitters, MultipleHeavyAllFound) {
  F2HeavyHitters hh({.phi = 0.02, .seed = 5});
  for (uint64_t j = 0; j < 5; ++j) hh.Add(1000 + j, 50);
  for (uint64_t i = 0; i < 2000; ++i) hh.Add(i);
  auto out = hh.Extract();
  for (uint64_t j = 0; j < 5; ++j) {
    EXPECT_TRUE(Contains(out, 1000 + j)) << "missing heavy " << j;
  }
}

TEST(F2HeavyHitters, SortedByEstimateDescending) {
  F2HeavyHitters hh({.phi = 0.01, .seed = 6});
  hh.Add(1, 100);
  hh.Add(2, 70);
  hh.Add(3, 40);
  auto out = hh.Extract();
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i - 1].estimate, out[i].estimate);
  }
}

TEST(F2HeavyHitters, SpaceScalesWithPhiInverse) {
  F2HeavyHitters coarse({.phi = 0.1, .seed = 7});
  F2HeavyHitters fine({.phi = 0.001, .seed = 7});
  EXPECT_GT(fine.MemoryBytes(), 10 * coarse.MemoryBytes());
}

TEST(F2HeavyHitters, CandidatePruningBoundsMemory) {
  F2HeavyHitters hh({.phi = 0.05, .seed = 8});
  for (uint64_t i = 0; i < 50000; ++i) hh.Add(i);
  // Candidate set is capped at ~2·cand_factor/φ = 160 entries; memory stays
  // small despite 50k distinct ids.
  EXPECT_LT(hh.MemoryBytes(), 200u << 10);
}

TEST(F2HeavyHitters, EstimateF2Reasonable) {
  F2HeavyHitters hh({.phi = 0.05, .seed = 9});
  for (uint64_t i = 0; i < 5000; ++i) hh.Add(i);
  EXPECT_NEAR(hh.EstimateF2(), 5000.0, 2500.0);
}

TEST(F2HeavyHitters, RecallOverZipfSweep) {
  // Zipf stream: top items are heavy. Check ≥ 90% recall of truly-φ-heavy
  // ids over several seeds.
  int found = 0, expected = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    std::vector<int64_t> freq(500);
    double f2 = 0;
    for (int i = 0; i < 500; ++i) {
      freq[i] = 1 + 3000 / (i + 1);
      f2 += static_cast<double>(freq[i]) * freq[i];
    }
    F2HeavyHitters hh({.phi = 0.01, .seed = 100 + seed});
    for (int i = 0; i < 500; ++i) hh.Add(i, freq[i]);
    auto out = hh.Extract();
    for (int i = 0; i < 500; ++i) {
      if (static_cast<double>(freq[i]) * freq[i] >= 0.01 * f2) {
        ++expected;
        found += Contains(out, i);
      }
    }
  }
  ASSERT_GT(expected, 0);
  EXPECT_GE(static_cast<double>(found) / expected, 0.9);
}

// Merge must reject every shape/seed mismatch, including the parameters the
// inner CountSketch cannot see (cand_factor bounds the candidate set,
// noise_floor_sigmas changes Extract's admission): merging sketches that
// disagree on those silently produces a state neither config describes.
TEST(F2HeavyHittersMerge, MismatchedConfigsAbort) {
  F2HeavyHitters::Config base;
  base.phi = 0.05;
  base.seed = 11;
  {
    F2HeavyHitters a(base), b(base);
    a.Add(1);
    b.Add(2);
    a.Merge(b);  // identical configs merge fine
  }
  auto expect_merge_death = [&](F2HeavyHitters::Config other) {
    F2HeavyHitters a(base), b(other);
    EXPECT_DEATH(a.Merge(b), "CHECK failed");
  };
  F2HeavyHitters::Config c = base;
  c.seed = 12;
  expect_merge_death(c);
  c = base;
  c.phi = 0.1;
  expect_merge_death(c);
  c = base;
  c.depth = base.depth + 2;
  expect_merge_death(c);
  c = base;
  c.width_factor = base.width_factor * 2;
  expect_merge_death(c);
  c = base;
  c.cand_factor = base.cand_factor * 2;
  expect_merge_death(c);
  c = base;
  c.noise_floor_sigmas = base.noise_floor_sigmas + 1;
  expect_merge_death(c);
  // max_width differs but the realized width (16/φ = 320) does not: the
  // config-level CHECK must fire anyway — the two sketches would diverge
  // the moment a smaller φ config reused this state.
  c = base;
  c.max_width = 1u << 10;
  expect_merge_death(c);
}

}  // namespace
}  // namespace streamkc
