// Robustness and boundary-condition tests: degenerate instance shapes,
// extreme ids, duplicate-saturated streams, and minimal configurations.
// Production streams are messy; none of these may crash, hang, or return
// out-of-contract answers.

#include <gtest/gtest.h>

#include <limits>

#include "core/estimate_max_cover.h"
#include "core/oracle.h"
#include "core/report_max_cover.h"
#include "offline/sketch_greedy.h"
#include "sketch/f2_contributing.h"
#include "sketch/f2_heavy_hitters.h"
#include "sketch/l0_estimator.h"
#include "test_util.h"

namespace streamkc {
namespace {

constexpr uint64_t kHugeId = std::numeric_limits<uint64_t>::max();

TEST(Robustness, ExtremeIdsInSketches) {
  L0Estimator l0({.num_mins = 16, .seed = 1});
  l0.Add(0);
  l0.Add(kHugeId);
  l0.Add(kHugeId - 1);
  EXPECT_DOUBLE_EQ(l0.Estimate(), 3.0);

  F2HeavyHitters hh({.phi = 0.5, .seed = 2});
  for (int i = 0; i < 50; ++i) hh.Add(kHugeId);
  auto out = hh.Extract();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().id, kHugeId);

  F2Contributing fc({.gamma = 0.5, .max_class_size = 4, .domain_size = 16,
                     .seed = 3});
  for (int i = 0; i < 50; ++i) fc.Add(kHugeId);
  EXPECT_FALSE(fc.Extract().empty());
}

TEST(Robustness, EstimatorOnEmptyStream) {
  EstimateMaxCover::Config c;
  c.params = Params::Practical(64, 128, 4, 4);
  c.seed = 1;
  EstimateMaxCover est(c);
  EstimateOutcome out = est.Finalize();  // nothing processed
  EXPECT_TRUE(out.feasible);
  EXPECT_DOUBLE_EQ(out.estimate, 0.0);
}

TEST(Robustness, ReporterOnEmptyStream) {
  ReportMaxCover::Config c;
  c.params = Params::Practical(64, 128, 4, 4);
  c.seed = 1;
  ReportMaxCover rep(c);
  MaxCoverSolution sol = rep.Finalize();
  EXPECT_TRUE(sol.sets.empty());
}

TEST(Robustness, SingleEdgeStream) {
  EstimateMaxCover::Config c;
  c.params = Params::Practical(1024, 2048, 4, 4);
  c.seed = 2;
  EstimateMaxCover est(c);
  est.Process(Edge{3, 5});
  EstimateOutcome out = est.Finalize();
  // OPT = 1; any answer in [0, ~1] is in contract.
  EXPECT_LE(out.estimate, 2.0);
}

TEST(Robustness, SingleSetCoversEverything) {
  // m sets but one of them covers the entire universe.
  std::vector<std::vector<ElementId>> sets(256);
  for (ElementId e = 0; e < 512; ++e) sets[7].push_back(e);
  for (uint64_t i = 0; i < 256; ++i) {
    if (i != 7) sets[i] = {static_cast<ElementId>(i)};
  }
  SetSystem sys(512, std::move(sets));
  EstimateMaxCover::Config c;
  c.params = Params::Practical(256, 512, 1, 4);  // k = 1!
  c.seed = 3;
  EstimateMaxCover est(c);
  FeedSystem(sys, ArrivalOrder::kRandom, 1, est);
  EstimateOutcome out = est.Finalize();
  ASSERT_TRUE(out.feasible);
  EXPECT_GE(out.estimate, 512.0 / 8.0);
  EXPECT_LE(out.estimate, 512.0 * 1.2);
}

TEST(Robustness, AllSetsIdentical) {
  // Coverage is the same for any k-subset; nothing should blow up and the
  // estimate must stay ≤ the one set's size.
  std::vector<std::vector<ElementId>> sets(128);
  for (auto& s : sets) {
    for (ElementId e = 0; e < 64; ++e) s.push_back(e);
  }
  SetSystem sys(256, std::move(sets));
  EstimateMaxCover::Config c;
  c.params = Params::Practical(128, 256, 8, 4);
  c.seed = 4;
  EstimateMaxCover est(c);
  FeedSystem(sys, ArrivalOrder::kRandom, 2, est);
  EXPECT_LE(est.Finalize().estimate, 64.0 * 1.5);
}

TEST(Robustness, DuplicateSaturatedStream) {
  // The same edge repeated 10^5 times plus a normal instance: duplicates
  // must not distort the estimate (the model allows repeats).
  auto inst = PlantedCover(512, 1024, 16, 0.5, 4, 5);
  EstimateMaxCover::Config c;
  c.params = Params::Practical(512, 1024, 16, 4);
  c.seed = 5;
  EstimateMaxCover with_dups(c), without(c);
  VectorEdgeStream stream = inst.system.MakeStream(ArrivalOrder::kRandom, 3);
  FeedStream(stream, without);
  stream.Reset();
  FeedStream(stream, with_dups);
  for (int i = 0; i < 100000; ++i) with_dups.Process(Edge{0, 0});
  // Sketch states are set-semantics except CountSketch counters (duplicates
  // add incidence mass only to set 0's superset). Estimates stay close.
  EXPECT_NEAR(with_dups.Finalize().estimate, without.Finalize().estimate,
              0.5 * without.Finalize().estimate + 8);
}

TEST(Robustness, KEqualsOne) {
  auto inst = LargeSetFamily(512, 1024, 1, 7);
  ReportMaxCover::Config c;
  c.params = Params::Practical(512, 1024, 1, 4);
  c.seed = 7;
  ReportMaxCover rep(c);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 4, rep);
  MaxCoverSolution sol = rep.Finalize();
  EXPECT_LE(sol.sets.size(), 1u);
}

TEST(Robustness, AlphaAtSqrtM) {
  const uint64_t m = 1 << 12;
  auto inst = RandomUniform(m, 1024, 8, 9);
  EstimateMaxCover::Config c;
  c.params = Params::Practical(m, 1024, 8, 64.0);  // α = √m
  c.seed = 9;
  EstimateMaxCover est(c);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 5, est);
  EstimateOutcome out = est.Finalize();
  EXPECT_LE(out.estimate, OptUpperBound(inst.system, 8) * 1.5);
}

TEST(Robustness, ElementIdsBeyondDeclaredN) {
  // The declared n is a capacity hint for the guess grid; ids above it must
  // not crash the pipeline (hashes are total on uint64).
  EstimateMaxCover::Config c;
  c.params = Params::Practical(256, 128, 4, 4);
  c.seed = 11;
  EstimateMaxCover est(c);
  for (uint64_t i = 0; i < 1000; ++i) {
    est.Process(Edge{i % 256, 1000000 + i});
  }
  EXPECT_GE(est.Finalize().estimate, 0.0);
}

TEST(Robustness, OracleWithUniverseOne) {
  Oracle::Config oc;
  oc.params = Params::Practical(64, 128, 2, 2);
  oc.universe_size = 1;
  oc.seed = 13;
  Oracle oracle(oc);
  for (uint64_t i = 0; i < 64; ++i) oracle.Process(Edge{i, 0});
  EstimateOutcome out = oracle.Finalize();
  if (out.feasible) {
    EXPECT_LE(out.estimate, 1.5);
  }
}

TEST(Robustness, SketchGreedyAllEmptySets) {
  // Stream where every "set" repeats one element: coverage 1 per set.
  SketchGreedy sg({.k = 3, .seed = 15});
  for (uint64_t s = 0; s < 20; ++s) {
    for (int rep = 0; rep < 5; ++rep) sg.Process(Edge{s, 42});
  }
  CoverSolution sol = sg.Finalize();
  EXPECT_EQ(sol.coverage, 1u);
  EXPECT_EQ(sol.sets.size(), 1u);  // marginal gain of the rest is 0
}

TEST(Robustness, ParamsExtremeShapes) {
  // Tiny everything.
  Params tiny = Params::Practical(1, 1, 1, 1);
  EXPECT_GT(tiny.s, 0);
  // Huge alpha relative to k.
  Params skew = Params::Practical(1 << 20, 1 << 10, 2, 1000);
  EXPECT_DOUBLE_EQ(skew.w, 2.0);
  EXPECT_GT(skew.t, 0);
}

}  // namespace
}  // namespace streamkc
