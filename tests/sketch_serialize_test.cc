// Checkpoint/restore round-trip tests: a restored sketch must be
// bit-identical in behavior to the saved one — same estimates, and it must
// continue the stream seamlessly (save mid-stream, restore, keep feeding,
// compare against an uninterrupted run).

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "sketch/ams_f2.h"
#include "sketch/count_sketch.h"
#include "sketch/f2_contributing.h"
#include "sketch/f2_heavy_hitters.h"
#include "sketch/hyperloglog.h"
#include "sketch/l0_estimator.h"

namespace streamkc {
namespace {

TEST(L0Serialize, RoundTripPreservesEstimate) {
  L0Estimator original({.num_mins = 64, .seed = 7});
  for (uint64_t i = 0; i < 5000; ++i) original.Add(i * 17);
  std::stringstream buffer;
  original.Save(buffer);
  L0Estimator restored = L0Estimator::Load(buffer);
  EXPECT_DOUBLE_EQ(restored.Estimate(), original.Estimate());
  EXPECT_EQ(restored.items_added(), original.items_added());
  EXPECT_EQ(restored.IsExact(), original.IsExact());
}

TEST(L0Serialize, ContinuesStreamSeamlessly) {
  L0Estimator uninterrupted({.num_mins = 32, .seed = 9});
  L0Estimator first_half({.num_mins = 32, .seed = 9});
  for (uint64_t i = 0; i < 1000; ++i) {
    uninterrupted.Add(i);
    first_half.Add(i);
  }
  std::stringstream buffer;
  first_half.Save(buffer);
  L0Estimator resumed = L0Estimator::Load(buffer);
  for (uint64_t i = 1000; i < 2000; ++i) {
    uninterrupted.Add(i);
    resumed.Add(i);
  }
  EXPECT_DOUBLE_EQ(resumed.Estimate(), uninterrupted.Estimate());
}

TEST(L0Serialize, ExactModeSurvives) {
  L0Estimator original({.num_mins = 64, .seed = 3});
  for (uint64_t i = 0; i < 10; ++i) original.Add(i);
  std::stringstream buffer;
  original.Save(buffer);
  L0Estimator restored = L0Estimator::Load(buffer);
  EXPECT_TRUE(restored.IsExact());
  EXPECT_DOUBLE_EQ(restored.Estimate(), 10.0);
}

TEST(L0Serialize, CorruptMagicAborts) {
  std::stringstream buffer;
  buffer.write("XXXXYYYY", 8);
  EXPECT_DEATH(L0Estimator::Load(buffer), "CHECK failed");
}

TEST(L0Serialize, TruncatedStreamAborts) {
  L0Estimator original({.num_mins = 64, .seed = 7});
  for (uint64_t i = 0; i < 500; ++i) original.Add(i);
  std::stringstream buffer;
  original.Save(buffer);
  std::string bytes = buffer.str();
  std::stringstream truncated(bytes.substr(0, bytes.size() / 2));
  EXPECT_DEATH(L0Estimator::Load(truncated), "CHECK failed");
}

// Blob byte layout (see L0Estimator::Save): magic u32, version u32,
// num_mins u32, seed u64, minima count u64, minima u64[count], saturated
// u32, items u64. The tampering tests below patch specific fields of a
// genuine blob: Load must re-establish the sorted-distinct-in-field
// invariant rather than trust the bytes, because a corrupted minima vector
// silently deflates every later estimate instead of crashing.
constexpr size_t kL0MinsOffset = 4 + 4 + 4 + 8 + 8;

std::string SavedL0Blob(uint32_t num_mins, uint64_t items) {
  L0Estimator sketch({.num_mins = num_mins, .seed = 7});
  for (uint64_t i = 0; i < items; ++i) sketch.Add(i * 977 + 1);
  std::stringstream buffer;
  sketch.Save(buffer);
  return buffer.str();
}

void PatchU64(std::string& blob, size_t offset, uint64_t value) {
  ASSERT_LE(offset + sizeof(value), blob.size());
  std::memcpy(blob.data() + offset, &value, sizeof(value));
}

uint64_t PeekU64(const std::string& blob, size_t offset) {
  uint64_t value = 0;
  std::memcpy(&value, blob.data() + offset, sizeof(value));
  return value;
}

TEST(L0Serialize, DuplicatedMinimumAborts) {
  std::string blob = SavedL0Blob(64, 500);
  // Clone the first retained minimum over the second: still sorted after
  // Load's re-sort, but no longer distinct.
  PatchU64(blob, kL0MinsOffset + 8, PeekU64(blob, kL0MinsOffset));
  std::stringstream tampered(blob);
  EXPECT_DEATH(L0Estimator::Load(tampered), "CHECK failed");
}

TEST(L0Serialize, OutOfFieldMinimumAborts) {
  std::string blob = SavedL0Blob(64, 500);
  // 2^61 - 1 is the field modulus — one past the largest possible hash
  // output, so it can never be a legitimate retained minimum.
  PatchU64(blob, kL0MinsOffset, (uint64_t{1} << 61) - 1);
  std::stringstream tampered(blob);
  EXPECT_DEATH(L0Estimator::Load(tampered), "CHECK failed");
}

TEST(L0Serialize, SaturatedFlagWithoutFullMinsAborts) {
  // 10 distinct items into a 64-min sketch: exact mode, 10 minima.
  std::string blob = SavedL0Blob(64, 10);
  const size_t count_offset = 4 + 4 + 4 + 8;
  ASSERT_EQ(PeekU64(blob, count_offset), 10u);
  // Flip the saturated flag (u32 right after the minima): a saturated
  // sketch by construction holds exactly num_mins values, so this is an
  // impossible state and Load must refuse to resurrect it.
  const size_t saturated_offset = kL0MinsOffset + 10 * 8;
  uint32_t one = 1;
  std::memcpy(blob.data() + saturated_offset, &one, sizeof(one));
  std::stringstream tampered(blob);
  EXPECT_DEATH(L0Estimator::Load(tampered), "CHECK failed");
}

TEST(L0Serialize, HeapOrderedLegacyBlobStillLoads) {
  // Version-1 blobs from the pre-batching build stored the minima in heap
  // order; Load sorts before validating, so a shuffled (but distinct and
  // in-field) vector must load and estimate identically.
  std::string blob = SavedL0Blob(64, 500);
  uint64_t a = PeekU64(blob, kL0MinsOffset);
  uint64_t b = PeekU64(blob, kL0MinsOffset + 8);
  ASSERT_LT(a, b);
  PatchU64(blob, kL0MinsOffset, b);
  PatchU64(blob, kL0MinsOffset + 8, a);
  std::stringstream shuffled(blob);
  L0Estimator restored = L0Estimator::Load(shuffled);
  std::stringstream pristine(SavedL0Blob(64, 500));
  EXPECT_DOUBLE_EQ(restored.Estimate(),
                   L0Estimator::Load(pristine).Estimate());
}

TEST(CountSketchSerialize, RoundTripPreservesQueries) {
  CountSketch original({.depth = 5, .width = 128, .seed = 11});
  for (uint64_t i = 0; i < 3000; ++i) original.Add(i % 200, 1 + i % 3);
  std::stringstream buffer;
  original.Save(buffer);
  CountSketch restored = CountSketch::Load(buffer);
  for (uint64_t id = 0; id < 200; id += 7) {
    EXPECT_DOUBLE_EQ(restored.PointQuery(id), original.PointQuery(id));
  }
  EXPECT_DOUBLE_EQ(restored.EstimateF2(), original.EstimateF2());
  EXPECT_DOUBLE_EQ(restored.QuickF2(), original.QuickF2());
}

TEST(CountSketchSerialize, RestoredSketchMerges) {
  // A restored shard must merge with a live one (same seed).
  CountSketch::Config cfg{.depth = 3, .width = 64, .seed = 13};
  CountSketch shard_a(cfg), shard_b(cfg), whole(cfg);
  for (uint64_t i = 0; i < 1000; ++i) {
    (i % 2 ? shard_a : shard_b).Add(i % 50);
    whole.Add(i % 50);
  }
  std::stringstream buffer;
  shard_a.Save(buffer);
  CountSketch restored = CountSketch::Load(buffer);
  restored.Merge(shard_b);
  for (uint64_t id = 0; id < 50; ++id) {
    EXPECT_DOUBLE_EQ(restored.PointQuery(id), whole.PointQuery(id));
  }
}

TEST(HllSerialize, RoundTripPreservesEstimate) {
  HyperLogLog original({.precision = 12, .seed = 17});
  for (uint64_t i = 0; i < 40000; ++i) original.Add(i);
  std::stringstream buffer;
  original.Save(buffer);
  HyperLogLog restored = HyperLogLog::Load(buffer);
  EXPECT_DOUBLE_EQ(restored.Estimate(), original.Estimate());
}

TEST(HllSerialize, ContinuesStream) {
  HyperLogLog uninterrupted({.precision = 10, .seed = 19});
  HyperLogLog half({.precision = 10, .seed = 19});
  for (uint64_t i = 0; i < 5000; ++i) {
    uninterrupted.Add(i);
    half.Add(i);
  }
  std::stringstream buffer;
  half.Save(buffer);
  HyperLogLog resumed = HyperLogLog::Load(buffer);
  for (uint64_t i = 5000; i < 10000; ++i) {
    uninterrupted.Add(i);
    resumed.Add(i);
  }
  EXPECT_DOUBLE_EQ(resumed.Estimate(), uninterrupted.Estimate());
}

TEST(AmsSerialize, RoundTripPreservesEstimate) {
  AmsF2Sketch original({.rows = 5, .cols = 16, .seed = 21});
  for (uint64_t i = 0; i < 2000; ++i) original.Add(i % 321);
  std::stringstream buffer;
  original.Save(buffer);
  AmsF2Sketch restored = AmsF2Sketch::Load(buffer);
  EXPECT_DOUBLE_EQ(restored.Estimate(), original.Estimate());
}

TEST(F2HhSerialize, RoundTripPreservesExtraction) {
  F2HeavyHitters original({.phi = 0.05, .seed = 23});
  original.Add(777, 80);
  for (uint64_t i = 0; i < 2000; ++i) original.Add(i);
  std::stringstream buffer;
  original.Save(buffer);
  F2HeavyHitters restored = F2HeavyHitters::Load(buffer);
  auto a = original.Extract();
  auto b = restored.Extract();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_DOUBLE_EQ(a[i].estimate, b[i].estimate);
  }
  EXPECT_DOUBLE_EQ(restored.EstimateF2(), original.EstimateF2());
}

TEST(F2HhSerialize, RestoredContinuesAndMerges) {
  F2HeavyHitters::Config cfg{.phi = 0.05, .seed = 29};
  F2HeavyHitters uninterrupted(cfg), half(cfg), other(cfg);
  for (uint64_t i = 0; i < 1000; ++i) {
    uninterrupted.Add(i % 97);
    half.Add(i % 97);
  }
  std::stringstream buffer;
  half.Save(buffer);
  F2HeavyHitters resumed = F2HeavyHitters::Load(buffer);
  for (uint64_t i = 1000; i < 2000; ++i) {
    uninterrupted.Add(i % 97);
    resumed.Add(i % 97);
  }
  EXPECT_DOUBLE_EQ(resumed.EstimateF2(), uninterrupted.EstimateF2());
  (void)other;
}

TEST(F2ContributingSerialize, RoundTripPreservesExtraction) {
  F2Contributing original({.gamma = 0.2, .max_class_size = 256,
                           .domain_size = 8192, .seed = 31});
  for (uint64_t j = 0; j < 64; ++j) original.Add(5000 + j, 24);
  for (uint64_t i = 0; i < 1024; ++i) original.Add(i);
  std::stringstream buffer;
  original.Save(buffer);
  F2Contributing restored = F2Contributing::Load(buffer);
  auto a = original.Extract();
  auto b = restored.Extract();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_DOUBLE_EQ(a[i].estimate, b[i].estimate);
  }
}

}  // namespace
}  // namespace streamkc
