#include "hash/kwise_hash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <vector>

#include "hash/kernel_dispatch.h"
#include "hash/mersenne.h"
#include "util/random.h"

namespace streamkc {
namespace {

TEST(Mersenne, ReduceIdentityBelowPrime) {
  EXPECT_EQ(MersenneReduce(0), 0u);
  EXPECT_EQ(MersenneReduce(12345), 12345u);
  EXPECT_EQ(MersenneReduce(kMersennePrime61 - 1), kMersennePrime61 - 1);
}

TEST(Mersenne, ReduceWraps) {
  EXPECT_EQ(MersenneReduce(kMersennePrime61), 0u);
  EXPECT_EQ(MersenneReduce(static_cast<__uint128_t>(kMersennePrime61) + 5), 5u);
}

TEST(Mersenne, MulMatchesBigInt) {
  // Cross-check against direct 128-bit modulo.
  uint64_t a = 0x123456789abcdefULL % kMersennePrime61;
  uint64_t b = 0xfedcba987654321ULL % kMersennePrime61;
  __uint128_t direct = static_cast<__uint128_t>(a) * b % kMersennePrime61;
  EXPECT_EQ(MersenneMul(a, b), static_cast<uint64_t>(direct));
}

TEST(Mersenne, AddWraps) {
  EXPECT_EQ(MersenneAdd(kMersennePrime61 - 1, 1), 0u);
  EXPECT_EQ(MersenneAdd(kMersennePrime61 - 1, 2), 1u);
}

TEST(Mersenne, FoldStaysInField) {
  EXPECT_LT(MersenneFold(~0ULL), kMersennePrime61);
  EXPECT_EQ(MersenneFold(5), 5u);
}

TEST(KWiseHash, Deterministic) {
  KWiseHash h1(4, 99), h2(4, 99), h3(4, 100);
  for (uint64_t x = 0; x < 100; ++x) {
    EXPECT_EQ(h1.Map(x), h2.Map(x));
  }
  int same = 0;
  for (uint64_t x = 0; x < 100; ++x) same += (h1.Map(x) == h3.Map(x));
  EXPECT_LE(same, 1);
}

TEST(KWiseHash, MapRangeBounds) {
  KWiseHash h(2, 5);
  for (uint64_t x = 0; x < 1000; ++x) {
    EXPECT_LT(h.MapRange(x, 17), 17u);
  }
  EXPECT_EQ(h.MapRange(12345, 1), 0u);
}

TEST(KWiseHash, MapRangeUniformity) {
  // Chi-square-ish check: bucket counts close to expectation.
  KWiseHash h(2, 7);
  const int kBuckets = 16, kDraws = 64000;
  std::vector<int> counts(kBuckets, 0);
  for (int x = 0; x < kDraws; ++x) ++counts[h.MapRange(x, kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 6 * std::sqrt(kDraws / kBuckets));
  }
}

TEST(KWiseHash, PairwiseCollisionRate) {
  // Pr[h(x) = h(y)] should be ~1/range for x != y.
  const uint64_t kRange = 64;
  int collisions = 0;
  const int kPairs = 20000;
  for (int t = 0; t < kPairs; ++t) {
    KWiseHash h(2, 10000 + t);
    collisions += (h.MapRange(1, kRange) == h.MapRange(2, kRange));
  }
  double rate = collisions / static_cast<double>(kPairs);
  EXPECT_NEAR(rate, 1.0 / kRange, 0.006);
}

TEST(KWiseHash, SignBalanced) {
  KWiseHash h = KWiseHash::FourWise(77);
  int sum = 0;
  const int kDraws = 100000;
  for (int x = 0; x < kDraws; ++x) sum += h.Sign(x);
  // Mean should be near 0 with std ~ sqrt(kDraws).
  EXPECT_LT(std::abs(sum), 6 * static_cast<int>(std::sqrt(kDraws)));
}

TEST(KWiseHash, SignPairwiseIndependent) {
  // E[s(x)s(y)] ≈ 0 over random functions.
  int sum = 0;
  const int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    KWiseHash h = KWiseHash::FourWise(50000 + t);
    sum += h.Sign(3) * h.Sign(4);
  }
  EXPECT_LT(std::abs(sum), 6 * static_cast<int>(std::sqrt(kTrials)));
}

TEST(KWiseHash, KeepRateAccurate) {
  // Keep with rate 1/8 over many functions.
  int kept = 0;
  const int kTrials = 20000;
  for (int t = 0; t < kTrials; ++t) {
    KWiseHash h(2, 90000 + t);
    kept += h.Keep(42, 1, 8);
  }
  EXPECT_NEAR(kept / static_cast<double>(kTrials), 0.125, 0.01);
}

TEST(KWiseHash, KeepClipsAtOne) {
  KWiseHash h(2, 3);
  for (uint64_t x = 0; x < 100; ++x) {
    EXPECT_TRUE(h.Keep(x, 10, 10));
    EXPECT_TRUE(h.Keep(x, 20, 10));
  }
}

TEST(KWiseHash, LogWiseDegreeScales) {
  KWiseHash small = KWiseHash::LogWise(16, 16, 1);
  KWiseHash big = KWiseHash::LogWise(1 << 20, 1 << 20, 1);
  EXPECT_GT(big.degree(), small.degree());
  EXPECT_EQ(small.degree(), 4u + 4u + 8u);
}

TEST(KWiseHash, MemoryProportionalToDegree) {
  KWiseHash d2(2, 1), d16(16, 1);
  EXPECT_EQ(d2.MemoryBytes(), 2 * sizeof(uint64_t));
  EXPECT_EQ(d16.MemoryBytes(), 16 * sizeof(uint64_t));
}

TEST(KWiseHash, FourWiseFourthMomentBehaved) {
  // For 4-wise independent signs, E[(Σ s(x))⁴] over x in a window of size w
  // equals 3w² - 2w (same as fully independent). Sanity-check the empirical
  // fourth moment is in that ballpark.
  const int kWindow = 16;
  const int kTrials = 4000;
  double fourth = 0;
  for (int t = 0; t < kTrials; ++t) {
    KWiseHash h = KWiseHash::FourWise(7777 + t);
    double s = 0;
    for (int x = 0; x < kWindow; ++x) s += h.Sign(x);
    fourth += s * s * s * s;
  }
  fourth /= kTrials;
  double expected = 3.0 * kWindow * kWindow - 2.0 * kWindow;
  EXPECT_NEAR(fourth, expected, 0.25 * expected);
}

TEST(KWiseHash, ZeroRangeAborts) {
  // range = 0 would make MapRange collapse to the constant 0 — a sampler
  // built on it admits everything. Hard CHECK in release builds too: the
  // misconfiguration corrupts estimates silently, which is worse than
  // dying.
  KWiseHash h(4, 3);
  EXPECT_DEATH(h.MapRange(123, 0), "CHECK failed");
  EXPECT_DEATH(h.MapRangeFolded(MersenneFold(123), 0), "CHECK failed");
  uint64_t folded[2] = {1, 2};
  uint64_t out[2];
  EXPECT_DEATH(h.MapRangeFoldedBatch(folded, out, 2, 0), "CHECK failed");
}

TEST(KWiseHash, FoldedBatchMatchesScalarMap) {
  // The interleaved multi-lane Horner evaluation must agree with the scalar
  // path bit-for-bit at every size around the lane width (remainder loop,
  // exactly-full lanes, multiple blocks), for degrees on both sides of the
  // unrolled cases.
  for (uint32_t degree : {2u, 4u, 7u}) {
    KWiseHash h(degree, 1234 + degree);
    for (size_t n : {0u, 1u, 7u, 8u, 9u, 16u, 61u}) {
      std::vector<uint64_t> folded(n), batch_out(n);
      for (size_t i = 0; i < n; ++i) {
        folded[i] = MersenneFold(SplitMix64(i ^ (degree << 20)));
      }
      h.MapFoldedBatch(folded.data(), batch_out.data(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(batch_out[i], h.MapFolded(folded[i]))
            << "degree " << degree << " n " << n << " i " << i;
      }
      // And through the range-mapped variant (which may alias its input).
      std::vector<uint64_t> range_out(folded);
      h.MapRangeFoldedBatch(range_out.data(), range_out.data(), n, 17);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(range_out[i], h.MapRangeFolded(folded[i], 17));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Kernel-parameterized statistical checks: the k-wise uniformity /
// independence properties above are proved for the polynomial family, so
// they must hold through EITHER kernel — a vector kernel that stayed
// deterministic but mapped to the wrong field points would pass bit-level
// differential tests between its own runs while silently destroying
// uniformity. Each case pins the kernel with the forced-path override and
// drives the hashes through the batched (dispatched) entry.
// ---------------------------------------------------------------------------

class KWiseHashKernelTest : public ::testing::TestWithParam<HashKernel> {
 protected:
  void SetUp() override {
    if (!HashKernelAvailable(GetParam())) {
      GTEST_SKIP() << HashKernelName(GetParam())
                   << " kernel unavailable on this host";
    }
    ForceHashKernel(GetParam());
  }
  void TearDown() override { ResetHashKernel(); }
};

TEST_P(KWiseHashKernelTest, MapRangeUniformityBatched) {
  KWiseHash h(2, 7);
  const int kBuckets = 16, kDraws = 64000;
  std::vector<uint64_t> folded(kDraws);
  for (int x = 0; x < kDraws; ++x) folded[x] = MersenneFold(x);
  std::vector<uint64_t> out(kDraws);
  h.MapRangeFoldedBatch(folded.data(), out.data(), kDraws, kBuckets);
  std::vector<int> counts(kBuckets, 0);
  for (uint64_t b : out) ++counts[b];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 6 * std::sqrt(kDraws / kBuckets));
  }
}

TEST_P(KWiseHashKernelTest, SignBalancedBatched) {
  KWiseHash h = KWiseHash::FourWise(77);
  const int kDraws = 100000;
  std::vector<uint64_t> folded(kDraws);
  for (int x = 0; x < kDraws; ++x) folded[x] = MersenneFold(x);
  std::vector<uint64_t> out(kDraws);
  h.MapFoldedBatch(folded.data(), out.data(), kDraws);
  int sum = 0;
  for (uint64_t v : out) sum += (v & 1) ? +1 : -1;
  EXPECT_LT(std::abs(sum), 6 * static_cast<int>(std::sqrt(kDraws)));
}

TEST_P(KWiseHashKernelTest, PairwiseCollisionRateBatched) {
  // Pr[h(x) = h(y)] ≈ 1/range over the family; the 2-element batches ride
  // the kernels' remainder lanes on every draw.
  const uint64_t kRange = 64;
  const int kPairs = 20000;
  const uint64_t probe[2] = {MersenneFold(1), MersenneFold(2)};
  int collisions = 0;
  for (int t = 0; t < kPairs; ++t) {
    KWiseHash h(2, 10000 + t);
    uint64_t out[2];
    h.MapRangeFoldedBatch(probe, out, 2, kRange);
    collisions += (out[0] == out[1]);
  }
  double rate = collisions / static_cast<double>(kPairs);
  EXPECT_NEAR(rate, 1.0 / kRange, 0.006);
}

TEST_P(KWiseHashKernelTest, FourWiseFourthMomentBatched) {
  // E[(Σ s(x))⁴] = 3w² − 2w for 4-wise independent signs, via the batched
  // sign extraction (full 8-lane blocks + remainder).
  const int kWindow = 16;
  const int kTrials = 4000;
  std::vector<uint64_t> folded(kWindow);
  for (int x = 0; x < kWindow; ++x) folded[x] = MersenneFold(x);
  double fourth = 0;
  for (int t = 0; t < kTrials; ++t) {
    KWiseHash h = KWiseHash::FourWise(7777 + t);
    uint64_t out[kWindow];
    h.MapFoldedBatch(folded.data(), out, kWindow);
    double s = 0;
    for (uint64_t v : out) s += (v & 1) ? +1.0 : -1.0;
    fourth += s * s * s * s;
  }
  fourth /= kTrials;
  double expected = 3.0 * kWindow * kWindow - 2.0 * kWindow;
  EXPECT_NEAR(fourth, expected, 0.25 * expected);
}

INSTANTIATE_TEST_SUITE_P(Kernels, KWiseHashKernelTest,
                         ::testing::Values(HashKernel::kScalar,
                                           HashKernel::kAvx2),
                         [](const auto& info) {
                           return std::string(HashKernelName(info.param));
                         });

// An invalid STREAMKC_HASH_KERNEL must kill the process with a readable
// message at resolution time — a CI leg whose override were silently
// ignored would report green while testing the wrong kernel.
TEST(HashKernelDeathTest, InvalidEnvOverrideFailsFast) {
  EXPECT_DEATH(
      {
        setenv("STREAMKC_HASH_KERNEL", "avx512", 1);
        ResetHashKernel();  // drop the cached resolution, re-read the env
        ActiveHashKernel();
      },
      "STREAMKC_HASH_KERNEL");
}

TEST(HashKernelDeathTest, UnavailableEnvOverrideFailsFast) {
  // Only testable where the avx2 kernel is NOT runnable (scalar-only build
  // or non-AVX2 CPU): requesting it must die, not fall back.
  if (HashKernelAvailable(HashKernel::kAvx2)) {
    GTEST_SKIP() << "avx2 kernel available here; covered by the -mno-avx2 "
                    "CI leg";
  }
  EXPECT_DEATH(
      {
        setenv("STREAMKC_HASH_KERNEL", "avx2", 1);
        ResetHashKernel();
        ActiveHashKernel();
      },
      "STREAMKC_HASH_KERNEL");
}

// The folded-input precondition is a hard CHECK at the batch boundary
// (PR 4's MapRange precedent): an unfolded id evaluates the polynomial at
// the wrong field point and silently decorrelates every estimate downstream
// — worse than dying. Values ≥ p must abort in release builds too, for
// every batch size class (remainder-only, exactly one block, block +
// remainder) and through the range-mapped wrapper.
TEST(KWiseHash, UnfoldedBatchInputAborts) {
  KWiseHash h(4, 3);
  for (size_t n : {1u, 8u, 13u}) {
    std::vector<uint64_t> bad(n, 7);
    bad[n - 1] = kMersennePrime61;  // smallest out-of-field value
    std::vector<uint64_t> out(n);
    EXPECT_DEATH(h.MapFoldedBatch(bad.data(), out.data(), n), "CHECK failed");
    bad[n - 1] = ~0ULL;
    EXPECT_DEATH(h.MapFoldedBatch(bad.data(), out.data(), n), "CHECK failed");
    bad[n - 1] = kMersennePrime61;
    EXPECT_DEATH(h.MapRangeFoldedBatch(bad.data(), out.data(), n, 16),
                 "CHECK failed");
  }
}

}  // namespace
}  // namespace streamkc
