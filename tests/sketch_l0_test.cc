#include "sketch/l0_estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace streamkc {
namespace {

TEST(L0Estimator, ExactWhileSmall) {
  L0Estimator l0({.num_mins = 32, .seed = 1});
  for (uint64_t i = 0; i < 20; ++i) l0.Add(i);
  EXPECT_TRUE(l0.IsExact());
  EXPECT_DOUBLE_EQ(l0.Estimate(), 20.0);
}

TEST(L0Estimator, DuplicatesDoNotInflate) {
  L0Estimator l0({.num_mins = 32, .seed = 2});
  for (int rep = 0; rep < 50; ++rep) {
    for (uint64_t i = 0; i < 10; ++i) l0.Add(i);
  }
  EXPECT_TRUE(l0.IsExact());
  EXPECT_DOUBLE_EQ(l0.Estimate(), 10.0);
  EXPECT_EQ(l0.items_added(), 500u);
}

TEST(L0Estimator, EmptyIsZero) {
  L0Estimator l0({.num_mins = 16, .seed = 3});
  EXPECT_DOUBLE_EQ(l0.Estimate(), 0.0);
}

TEST(L0Estimator, SaturatesExactlyAtCapacityPlusOne) {
  L0Estimator l0({.num_mins = 8, .seed = 4});
  for (uint64_t i = 0; i < 8; ++i) l0.Add(i);
  EXPECT_TRUE(l0.IsExact());
  l0.Add(8);
  EXPECT_FALSE(l0.IsExact());
}

// Accuracy sweep: the KMV estimate must be within the Theorem 2.12 bound
// (1 ± 1/2) — in fact much tighter — across cardinalities and seeds.
class L0Accuracy : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(L0Accuracy, WithinTheorem212Bound) {
  auto [n, seed] = GetParam();
  L0Estimator l0({.num_mins = 64, .seed = static_cast<uint64_t>(seed)});
  for (uint64_t i = 0; i < n; ++i) l0.Add(i * 0x9e3779b9 + 7);
  double est = l0.Estimate();
  EXPECT_GE(est, 0.5 * static_cast<double>(n));
  EXPECT_LE(est, 1.5 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, L0Accuracy,
    ::testing::Combine(::testing::Values(100, 1000, 10000, 100000),
                       ::testing::Values(1, 2, 3, 4, 5)));

TEST(L0Estimator, TypicalErrorMuchBetterThanWorstCase) {
  // Average relative error over seeds should be ~2/sqrt(64) ≈ 12%.
  double total_err = 0;
  const int kTrials = 20;
  const uint64_t kN = 5000;
  for (int t = 0; t < kTrials; ++t) {
    L0Estimator l0({.num_mins = 64, .seed = 100 + static_cast<uint64_t>(t)});
    for (uint64_t i = 0; i < kN; ++i) l0.Add(i);
    total_err += std::abs(l0.Estimate() - kN) / kN;
  }
  EXPECT_LT(total_err / kTrials, 0.15);
}

TEST(L0Estimator, MoreMinsMoreAccuracy) {
  // Error should shrink roughly like 1/sqrt(num_mins).
  auto avg_err = [](uint32_t mins) {
    double total = 0;
    const int kTrials = 30;
    for (int t = 0; t < kTrials; ++t) {
      L0Estimator l0({.num_mins = mins, .seed = 500 + static_cast<uint64_t>(t)});
      for (uint64_t i = 0; i < 20000; ++i) l0.Add(i);
      total += std::abs(l0.Estimate() - 20000) / 20000;
    }
    return total / kTrials;
  };
  EXPECT_LT(avg_err(256), avg_err(16));
}

TEST(L0Estimator, MergeEqualsUnion) {
  L0Estimator a({.num_mins = 64, .seed = 9});
  L0Estimator b({.num_mins = 64, .seed = 9});
  for (uint64_t i = 0; i < 3000; ++i) a.Add(i);
  for (uint64_t i = 2000; i < 6000; ++i) b.Add(i);
  L0Estimator u({.num_mins = 64, .seed = 9});
  for (uint64_t i = 0; i < 6000; ++i) u.Add(i);
  a.Merge(b);
  EXPECT_NEAR(a.Estimate(), u.Estimate(), 1e-9);
}

TEST(L0Estimator, MergeExactSmall) {
  L0Estimator a({.num_mins = 64, .seed = 10});
  L0Estimator b({.num_mins = 64, .seed = 10});
  for (uint64_t i = 0; i < 10; ++i) a.Add(i);
  for (uint64_t i = 5; i < 15; ++i) b.Add(i);
  a.Merge(b);
  EXPECT_TRUE(a.IsExact());
  EXPECT_DOUBLE_EQ(a.Estimate(), 15.0);
}

TEST(L0Estimator, MergeMismatchedSeedAborts) {
  L0Estimator a({.num_mins = 64, .seed = 1});
  L0Estimator b({.num_mins = 64, .seed = 2});
  EXPECT_DEATH(a.Merge(b), "CHECK failed");
}

TEST(L0Estimator, MemoryBoundedByConfig) {
  L0Estimator l0({.num_mins = 64, .seed = 11});
  for (uint64_t i = 0; i < 100000; ++i) l0.Add(i);
  // 64 minima + pairwise hash (2 words): well under 2 KiB.
  EXPECT_LE(l0.MemoryBytes(), 2048u);
}

TEST(L0Estimator, DeterministicInSeed) {
  L0Estimator a({.num_mins = 32, .seed = 12});
  L0Estimator b({.num_mins = 32, .seed = 12});
  for (uint64_t i = 0; i < 5000; ++i) {
    a.Add(i);
    b.Add(i);
  }
  EXPECT_DOUBLE_EQ(a.Estimate(), b.Estimate());
}

}  // namespace
}  // namespace streamkc
