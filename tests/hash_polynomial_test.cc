// White-box verification of the polynomial hash family: the Horner-evaluated
// Map() must equal a brute-force polynomial evaluation over GF(2^61 − 1),
// and the advertised independence must be measurable.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "hash/kwise_hash.h"
#include "hash/mersenne.h"

namespace streamkc {
namespace {

// Brute-force c_0 + c_1 x + ... + c_{d-1} x^{d-1} mod p using repeated
// MersenneMul (no Horner), reconstructed from the hash's observable outputs:
// for a degree-d family, d point evaluations determine the polynomial, so we
// recover the coefficients by Lagrange-free linear algebra on small cases —
// or, simpler and fully black-box: check the polynomial identity
//   sum over a (d)-point arithmetic progression of finite differences.
// A degree-(d-1) polynomial has vanishing d-th finite differences mod p.
uint64_t MersenneSub(uint64_t a, uint64_t b) {
  return MersenneAdd(a, kMersennePrime61 - b);
}

TEST(PolynomialHash, FiniteDifferencesVanish) {
  // For a degree-(d-1) polynomial h, the d-th finite difference
  // Δ^d h(x) = Σ (-1)^i C(d,i) h(x + i) ≡ 0 (mod p). This pins down that
  // Map really is a polynomial of the advertised degree — Horner bugs,
  // off-by-one degree errors, or any non-polynomial mixing would break it.
  for (uint32_t d : {2u, 3u, 4u, 8u}) {
    KWiseHash h(d, 1234 + d);
    // Binomial coefficients C(d, i).
    std::vector<uint64_t> binom(d + 1, 1);
    for (uint32_t i = 1; i <= d; ++i) {
      binom[i] = binom[i - 1] * (d - i + 1) / i;
    }
    for (uint64_t x = 10; x < 20; ++x) {
      uint64_t acc = 0;
      for (uint32_t i = 0; i <= d; ++i) {
        uint64_t term = MersenneMul(binom[i] % kMersennePrime61, h.Map(x + i));
        acc = (i % 2 == 0) ? MersenneAdd(acc, term) : MersenneSub(acc, term);
      }
      EXPECT_EQ(acc, 0u) << "degree " << d << " x " << x;
    }
  }
}

TEST(PolynomialHash, LowerDegreeDifferencesDoNotVanish) {
  // Conversely the (d-1)-th difference of a degree-(d-1) polynomial is a
  // nonzero constant (w.h.p. over coefficients): the family is not secretly
  // lower-degree.
  for (uint32_t d : {2u, 4u, 8u}) {
    KWiseHash h(d, 77 + d);
    std::vector<uint64_t> binom(d, 1);
    for (uint32_t i = 1; i < d; ++i) binom[i] = binom[i - 1] * (d - i) / i;
    int nonzero = 0;
    for (uint64_t x = 0; x < 5; ++x) {
      uint64_t acc = 0;
      for (uint32_t i = 0; i < d; ++i) {
        uint64_t term = MersenneMul(binom[i] % kMersennePrime61, h.Map(x + i));
        acc = (i % 2 == 0) ? MersenneAdd(acc, term) : MersenneSub(acc, term);
      }
      nonzero += (acc != 0);
    }
    EXPECT_EQ(nonzero, 5) << "degree " << d;
  }
}

TEST(PolynomialHash, PairwiseJointDistribution) {
  // Measurable pairwise independence: over random functions, the joint
  // distribution of (h(0) mod 4, h(1) mod 4) should be uniform on 16 cells.
  std::map<std::pair<uint64_t, uint64_t>, int> cells;
  const int kTrials = 32000;
  for (int t = 0; t < kTrials; ++t) {
    KWiseHash h = KWiseHash::Pairwise(500000 + t);
    cells[{h.MapRange(0, 4), h.MapRange(1, 4)}]++;
  }
  EXPECT_EQ(cells.size(), 16u);
  for (const auto& [cell, count] : cells) {
    EXPECT_NEAR(count, kTrials / 16.0, 6 * std::sqrt(kTrials / 16.0))
        << cell.first << "," << cell.second;
  }
}

TEST(PolynomialHash, DegreeOneIsConstant) {
  // d = 1: a constant function family (degree-0 polynomial) — documented
  // boundary behavior.
  KWiseHash h(1, 9);
  uint64_t v = h.Map(0);
  for (uint64_t x = 1; x < 50; ++x) EXPECT_EQ(h.Map(x), v);
}

TEST(PolynomialHash, OutputsStayInField) {
  KWiseHash h(8, 11);
  for (uint64_t x = 0; x < 1000; ++x) {
    EXPECT_LT(h.Map(x * 0x123456789ULL), kMersennePrime61);
  }
}

}  // namespace
}  // namespace streamkc
