#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "core/element_sampler.h"
#include "core/set_sampler.h"
#include "core/universe_reduction.h"
#include "setsys/frequency.h"
#include "setsys/generators.h"

namespace streamkc {
namespace {

TEST(SetSampler, SampleSizeNearExpectation) {
  // γ/(c log m): with γ = 512, m = 4096, c = 1, expect ~512/12 ≈ 43 sets.
  const uint64_t m = 4096;
  SetSampler s(m, 512, 1.0, 8, 42);
  uint64_t count = 0;
  for (SetId i = 0; i < m; ++i) count += s.Sampled(i);
  double expected = static_cast<double>(m) * s.SampleRate();
  EXPECT_NEAR(static_cast<double>(count), expected, 4 * std::sqrt(expected) + 4);
}

TEST(SetSampler, Lemma23CoversCommonElements) {
  // Lemma 2.3 / A.6: sets sampled at rate for γ cover every γ-common
  // element w.h.p. Build an instance where element 0 is in half of all
  // sets, sample for a γ that makes it common, check coverage.
  const uint64_t m = 2048;
  std::vector<std::vector<ElementId>> sets(m);
  for (uint64_t i = 0; i < m; ++i) {
    if (i % 2 == 0) sets[i].push_back(0);
    sets[i].push_back(1 + i);  // filler
  }
  SetSystem sys(m + 1, std::move(sets));
  int covered = 0;
  const int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    // freq(0) = 1024 = m/2; γ-common needs freq ≥ c·m·log m/γ; with γ = 128
    // and c = 1: threshold = 2048·11/128 = 176 ≤ 1024. Sample for γ = 128.
    SetSampler s(m, 128, 1.0, 8, 1000 + t);
    bool hit = false;
    for (SetId i = 0; i < m && !hit; ++i) {
      if (s.Sampled(i) && i % 2 == 0) hit = true;
    }
    covered += hit;
  }
  EXPECT_EQ(covered, kTrials);  // ~64 draws at rate 1/2 per trial: certain
}

TEST(SetSampler, RareElementsUsuallyMissed) {
  // An element in exactly one set of 4096 escapes a small sample almost
  // always.
  const uint64_t m = 4096;
  int covered = 0;
  const int kTrials = 50;
  for (int t = 0; t < kTrials; ++t) {
    SetSampler s(m, 64, 1.0, 8, 2000 + t);
    covered += s.Sampled(7);  // "the set containing the rare element"
  }
  EXPECT_LE(covered, 5);
}

TEST(SetSampler, MemoryIsOneHash) {
  SetSampler s(1 << 20, 1024, 1.0, 16, 1);
  EXPECT_EQ(s.MemoryBytes(), 16 * sizeof(uint64_t));
}

TEST(BestGroupLowerBound, Observation24) {
  EXPECT_DOUBLE_EQ(BestGroupLowerBound(100, 4), 25.0);
  EXPECT_DOUBLE_EQ(BestGroupLowerBound(7, 1), 7.0);
}

TEST(ElementSampler, RateRespected) {
  ElementSampler s(0.25, 8, 3);
  uint64_t kept = 0;
  const uint64_t kN = 40000;
  for (ElementId e = 0; e < kN; ++e) kept += s.Sampled(e);
  EXPECT_NEAR(static_cast<double>(kept) / kN, 0.25, 0.02);
  EXPECT_DOUBLE_EQ(s.SampleRate(), 0.25);
}

TEST(ElementSampler, RateOneKeepsEverything) {
  ElementSampler s(1.0, 8, 4);
  for (ElementId e = 0; e < 1000; ++e) EXPECT_TRUE(s.Sampled(e));
}

TEST(ElementSampler, RateAboveOneClips) {
  ElementSampler s(5.0, 8, 5);
  EXPECT_DOUBLE_EQ(s.SampleRate(), 1.0);
}

TEST(ElementSampler, Deterministic) {
  ElementSampler a(0.5, 8, 6), b(0.5, 8, 6);
  for (ElementId e = 0; e < 1000; ++e) {
    EXPECT_EQ(a.Sampled(e), b.Sampled(e));
  }
}

TEST(UniverseReduction, MapsIntoRange) {
  UniverseReduction ur(100, 7);
  for (ElementId e = 0; e < 10000; ++e) EXPECT_LT(ur.Map(e), 100u);
}

TEST(UniverseReduction, MapEdgePreservesSet) {
  UniverseReduction ur(64, 8);
  Edge e{12, 3456};
  Edge mapped = ur.MapEdge(e);
  EXPECT_EQ(mapped.set, 12u);
  EXPECT_EQ(mapped.element, ur.Map(3456));
}

TEST(UniverseReduction, Lemma35ImagePreservesQuarter) {
  // Lemma 3.5: |S| ≥ z, z ≥ 32 ⇒ Pr[|h(S)| ≥ z/4] ≥ 3/4. Measure the
  // empirical success rate; it should be well above 3/4 for |S| = z.
  const uint64_t z = 64;
  int success = 0;
  const int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    UniverseReduction ur(z, 5000 + t);
    std::set<ElementId> image;
    for (ElementId e = 0; e < z; ++e) image.insert(ur.Map(e));
    success += (image.size() >= z / 4);
  }
  EXPECT_GE(success, static_cast<int>(0.75 * kTrials));
}

TEST(UniverseReduction, CoverageNeverIncreases) {
  // |h(S)| ≤ |S| always.
  UniverseReduction ur(128, 9);
  for (uint64_t size : {10ull, 100ull, 1000ull}) {
    std::set<ElementId> image;
    for (ElementId e = 0; e < size; ++e) image.insert(ur.Map(e));
    EXPECT_LE(image.size(), size);
  }
}

TEST(UniverseReduction, LargeSetsFillRange) {
  // Hashing many more than z elements should hit nearly all z buckets.
  const uint64_t z = 64;
  UniverseReduction ur(z, 10);
  std::set<ElementId> image;
  for (ElementId e = 0; e < 64 * z; ++e) image.insert(ur.Map(e));
  EXPECT_GE(image.size(), z - 2);
}

}  // namespace
}  // namespace streamkc
