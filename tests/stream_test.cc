#include "stream/edge_stream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "stream/stream_stats.h"

namespace streamkc {
namespace {

std::vector<Edge> SampleEdges() {
  return {{0, 10}, {0, 11}, {1, 10}, {1, 12}, {2, 13}, {2, 10}, {2, 11}};
}

TEST(VectorEdgeStream, IteratesAll) {
  VectorEdgeStream s(SampleEdges());
  Edge e;
  int count = 0;
  while (s.Next(&e)) ++count;
  EXPECT_EQ(count, 7);
  EXPECT_FALSE(s.Next(&e));
}

TEST(VectorEdgeStream, ResetRewinds) {
  VectorEdgeStream s(SampleEdges());
  Edge e;
  while (s.Next(&e)) {
  }
  s.Reset();
  int count = 0;
  while (s.Next(&e)) ++count;
  EXPECT_EQ(count, 7);
}

TEST(VectorEdgeStream, SizeHint) {
  VectorEdgeStream s(SampleEdges());
  EXPECT_EQ(s.SizeHint(), 7u);
}

TEST(ApplyArrivalOrder, SetContiguousGroupsSets) {
  auto edges = SampleEdges();
  ApplyArrivalOrder(edges, ArrivalOrder::kRandom, 3);
  ApplyArrivalOrder(edges, ArrivalOrder::kSetContiguous, 0);
  std::set<SetId> closed;
  SetId current = edges[0].set;
  for (const Edge& e : edges) {
    if (e.set != current) {
      EXPECT_TRUE(closed.insert(current).second);
      current = e.set;
    }
  }
  EXPECT_FALSE(closed.count(current));
}

TEST(ApplyArrivalOrder, RandomPreservesMultiset) {
  auto edges = SampleEdges();
  auto orig = edges;
  ApplyArrivalOrder(edges, ArrivalOrder::kRandom, 42);
  auto key = [](const Edge& e) { return std::make_pair(e.set, e.element); };
  std::multiset<std::pair<SetId, ElementId>> a, b;
  for (const Edge& e : edges) a.insert(key(e));
  for (const Edge& e : orig) b.insert(key(e));
  EXPECT_EQ(a, b);
}

TEST(ApplyArrivalOrder, RandomDeterministicInSeed) {
  auto e1 = SampleEdges();
  auto e2 = SampleEdges();
  ApplyArrivalOrder(e1, ArrivalOrder::kRandom, 9);
  ApplyArrivalOrder(e2, ArrivalOrder::kRandom, 9);
  EXPECT_EQ(e1.size(), e2.size());
  for (size_t i = 0; i < e1.size(); ++i) EXPECT_EQ(e1[i], e2[i]);
}

TEST(ApplyArrivalOrder, ElementContiguous) {
  auto edges = SampleEdges();
  ApplyArrivalOrder(edges, ArrivalOrder::kElementContiguous, 0);
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_LE(edges[i - 1].element, edges[i].element);
  }
}

TEST(ApplyArrivalOrder, RoundRobinInterleaves) {
  auto edges = SampleEdges();
  ApplyArrivalOrder(edges, ArrivalOrder::kRoundRobin, 0);
  EXPECT_EQ(edges.size(), 7u);
  // First round: one edge from each of the three sets.
  std::set<SetId> first_three{edges[0].set, edges[1].set, edges[2].set};
  EXPECT_EQ(first_three.size(), 3u);
}

TEST(ApplyArrivalOrder, ReversedSetsDescending) {
  auto edges = SampleEdges();
  ApplyArrivalOrder(edges, ArrivalOrder::kReversedSets, 0);
  for (size_t i = 1; i < edges.size(); ++i) {
    EXPECT_GE(edges[i - 1].set, edges[i].set);
  }
}

TEST(ArrivalOrderName, AllNamed) {
  EXPECT_EQ(ArrivalOrderName(ArrivalOrder::kSetContiguous), "set-contiguous");
  EXPECT_EQ(ArrivalOrderName(ArrivalOrder::kRandom), "random");
  EXPECT_EQ(ArrivalOrderName(ArrivalOrder::kElementContiguous),
            "element-contiguous");
  EXPECT_EQ(ArrivalOrderName(ArrivalOrder::kRoundRobin), "round-robin");
  EXPECT_EQ(ArrivalOrderName(ArrivalOrder::kReversedSets), "reversed-sets");
}

TEST(StreamStats, CountsDistinct) {
  VectorEdgeStream s(SampleEdges());
  StreamStats stats = ComputeStreamStats(s);
  EXPECT_EQ(stats.num_edges, 7u);
  EXPECT_EQ(stats.num_distinct_edges, 7u);
  EXPECT_EQ(stats.num_distinct_sets, 3u);
  EXPECT_EQ(stats.num_distinct_elements, 4u);
  EXPECT_EQ(stats.element_frequency.at(10), 3u);
  EXPECT_EQ(stats.set_size.at(2), 3u);
  EXPECT_EQ(stats.MaxElementFrequency(), 3u);
  EXPECT_EQ(stats.MaxSetSize(), 3u);
}

TEST(StreamStats, DuplicatesIgnored) {
  std::vector<Edge> edges = SampleEdges();
  edges.push_back(edges[0]);
  edges.push_back(edges[0]);
  VectorEdgeStream s(std::move(edges));
  StreamStats stats = ComputeStreamStats(s);
  EXPECT_EQ(stats.num_edges, 9u);
  EXPECT_EQ(stats.num_distinct_edges, 7u);
  EXPECT_EQ(stats.set_size.at(0), 2u);
}

TEST(VectorEdgeStream, NextBatchFastPathDrainsInChunks) {
  VectorEdgeStream s(SampleEdges());
  std::vector<Edge> batch;
  EXPECT_EQ(s.NextBatch(&batch, 3), 3u);
  EXPECT_EQ(batch[0], (Edge{0, 10}));
  EXPECT_EQ(batch[2], (Edge{1, 10}));
  EXPECT_EQ(s.NextBatch(&batch, 3), 3u);
  EXPECT_EQ(s.NextBatch(&batch, 3), 1u);  // short final chunk
  EXPECT_EQ(batch[0], (Edge{2, 11}));
  EXPECT_EQ(s.NextBatch(&batch, 3), 0u);  // end of stream
  EXPECT_TRUE(batch.empty());
}

TEST(VectorEdgeStream, NextBatchInterleavesWithNext) {
  VectorEdgeStream s(SampleEdges());
  Edge e;
  ASSERT_TRUE(s.Next(&e));
  std::vector<Edge> batch;
  EXPECT_EQ(s.NextBatch(&batch, 100), 6u);  // the remaining edges
  EXPECT_EQ(batch.front(), (Edge{0, 11}));
  EXPECT_FALSE(s.Next(&e));
}

// A Next()-only stream exercising EdgeStream's default NextBatch loop.
class CountdownStream : public EdgeStream {
 public:
  explicit CountdownStream(uint64_t n) : left_(n) {}
  bool Next(Edge* edge) override {
    if (left_ == 0) return false;
    --left_;
    *edge = Edge{left_, left_ * 2};
    return true;
  }
  void Reset() override {}

 private:
  uint64_t left_;
};

TEST(EdgeStream, DefaultNextBatchLoopsOverNext) {
  CountdownStream s(5);
  std::vector<Edge> batch{{9, 9}};  // stale contents must be replaced
  EXPECT_EQ(s.NextBatch(&batch, 4), 4u);
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0], (Edge{4, 8}));
  EXPECT_EQ(s.NextBatch(&batch, 4), 1u);
  EXPECT_EQ(s.NextBatch(&batch, 4), 0u);
}

TEST(EdgeHash, DistinctForDistinctEdges) {
  EdgeHash h;
  EXPECT_NE(h(Edge{1, 2}), h(Edge{2, 1}));
  EXPECT_EQ(h(Edge{1, 2}), h(Edge{1, 2}));
}

}  // namespace
}  // namespace streamkc
