// Multi-producer front-end differential tests. The contract (from
// shard_router.h): every merged state is a function of the MULTISET each
// shard observes, and routing is a pure per-edge function — so for any
// producer count P the P×N run must reproduce the inline single-threaded
// pass bit-for-bit on the same seeds (HLL registers and AMS counters are
// position-indexed and order-insensitive; KMV retains the identical minima
// value set, compared via its estimate). Also covered here: the same
// guarantee under timing faults and worker death, seed-replayability under
// a mutating FaultPlan, per-producer metrics accounting, and the
// batch-recycling (allocation-free steady-state flush) regression.

#include "runtime/sharded_pipeline.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/faulty_stream.h"
#include "obs/metrics.h"
#include "runtime/shard_router.h"
#include "runtime/sketch_states.h"
#include "stream/edge_stream.h"
#include "test_util.h"

namespace streamkc {
namespace {

template <typename Sketch>
std::string SaveBytes(const Sketch& s) {
  std::ostringstream os;
  s.Save(os);
  return os.str();
}

std::string StateBytes(const CoverageSketchState& st) {
  return SaveBytes(st.covered_hll) + SaveBytes(st.element_f2);
}

struct LatticeRun {
  CoverageSketchState state;
  uint64_t edges_ingested = 0;
  uint64_t producer_edge_sum = 0;
  uint64_t batches_enqueued = 0;
  uint64_t batches_recycled = 0;
  uint32_t num_producers = 0;
  uint32_t shards_quarantined = 0;
  std::string json;
};

// Runs `edges` through P producers × N shards (even span segmentation, the
// in-memory analogue of SegmentedTextStream) and snapshots the counters the
// assertions need. `spec` wraps EACH segment in its own FaultInjectingStream
// (empty = clean); `injector_spec_runtime` adds runtime faults.
LatticeRun RunLatticed(const std::vector<Edge>& edges, uint32_t P, uint32_t N,
                       const std::string& spec = std::string(),
                       size_t batch_size = 256, size_t queue_capacity = 16) {
  CoverageSketchState::Config cfg;
  cfg.seed = 17;
  ShardedPipelineOptions opts;
  opts.num_shards = N;
  opts.num_producers = P;
  opts.batch_size = batch_size;
  opts.queue_capacity = queue_capacity;
  MetricsRegistry registry;
  opts.registry = &registry;
  FaultInjector injector(FaultPlan::ParseOrDie(spec.empty() ? "seed=1" : spec),
                         &registry);
  if (!spec.empty()) opts.fault_injector = &injector;
  ShardedPipeline<CoverageSketchState> pipe(
      opts, [&](uint32_t) { return CoverageSketchState(cfg); });
  LatticeRun run{pipe.RunSegmented([&](uint32_t p) {
    std::unique_ptr<EdgeStream> s = MakeEdgeSpanSegment(edges, p, P);
    if (!spec.empty() && injector.plan().HasStreamFaults()) {
      s = WrapWithFaults(std::move(s), &injector);
    }
    return s;
  })};
  const RuntimeMetrics& m = pipe.metrics();
  run.edges_ingested = m.edges_ingested.load();
  run.num_producers = m.num_producers();
  for (uint32_t p = 0; p < m.num_producers(); ++p) {
    run.producer_edge_sum += m.producer(p).edges.load();
  }
  run.batches_enqueued = m.batches_enqueued.load();
  run.batches_recycled = m.TotalBatchesRecycled();
  run.shards_quarantined =
      static_cast<uint32_t>(m.shards_quarantined.load());
  run.json = m.ToJson();
  return run;
}

TEST(ParallelPipeline, GridMatchesInlinePassBitIdentically) {
  std::vector<Edge> edges = SyntheticEdges(30000, 3);
  CoverageSketchState::Config cfg;
  cfg.seed = 17;
  CoverageSketchState inline_state(cfg);
  for (const Edge& e : edges) inline_state.Process(e);

  for (uint32_t P : {1u, 2u, 4u}) {
    for (uint32_t N : {1u, 8u}) {
      LatticeRun run = RunLatticed(edges, P, N);
      EXPECT_EQ(StateBytes(run.state), StateBytes(inline_state))
          << "P=" << P << " N=" << N;
      EXPECT_DOUBLE_EQ(run.state.covered_l0.Estimate(),
                       inline_state.covered_l0.Estimate())
          << "P=" << P << " N=" << N;
      // Per-producer accounting: the rows partition the ingested stream.
      EXPECT_EQ(run.edges_ingested, edges.size());
      EXPECT_EQ(run.producer_edge_sum, edges.size());
      EXPECT_EQ(run.num_producers, P);
    }
  }
}

TEST(ParallelPipeline, RepeatedLatticeRunsAreBitIdentical) {
  std::vector<Edge> edges = SyntheticEdges(20000, 5);
  LatticeRun first = RunLatticed(edges, 4, 8, "", 97);  // odd batches
  for (int i = 0; i < 3; ++i) {
    LatticeRun again = RunLatticed(edges, 4, 8, "", 97);
    EXPECT_EQ(StateBytes(again.state), StateBytes(first.state));
    EXPECT_DOUBLE_EQ(again.state.covered_l0.Estimate(),
                     first.state.covered_l0.Estimate());
  }
}

TEST(ParallelPipeline, TimingFaultsChangeNothingAcrossProducers) {
  std::vector<Edge> edges = SyntheticEdges(20000, 7);
  CoverageSketchState::Config cfg;
  cfg.seed = 17;
  CoverageSketchState inline_state(cfg);
  for (const Edge& e : edges) inline_state.Process(e);
  // Push delays and a straggling shard perturb only scheduling; with 4
  // producers the per-shard interleaving varies wildly, but the multiset —
  // hence the merged state — must not move.
  LatticeRun run =
      RunLatticed(edges, 4, 8, "seed=5,push-delay=0.05:100000,slow-shard=2:50000");
  EXPECT_EQ(StateBytes(run.state), StateBytes(inline_state));
  EXPECT_DOUBLE_EQ(run.state.covered_l0.Estimate(),
                   inline_state.covered_l0.Estimate());
  EXPECT_EQ(run.shards_quarantined, 0u);
}

TEST(ParallelPipeline, KilledShardQuarantineStaysExactUnderManyProducers) {
  std::vector<Edge> edges = SyntheticEdges(20000, 11);
  // Shard 1 dies before its first batch: no matter how the 4 producers'
  // lanes interleave, the whole shard replica is quarantined, so the
  // degraded answer equals an inline pass over the healthy substreams.
  LatticeRun run = RunLatticed(edges, 4, 4, "seed=1,kill-shard=1@0");
  EXPECT_EQ(run.shards_quarantined, 1u);
  ShardRouter router(4, PartitionPolicy::kByElement, 0);
  CoverageSketchState::Config cfg;
  cfg.seed = 17;
  CoverageSketchState expect(cfg);
  for (const Edge& e : edges) {
    if (router.ShardOf(e) != 1) expect.Process(e);
  }
  EXPECT_EQ(StateBytes(run.state), StateBytes(expect));
  EXPECT_DOUBLE_EQ(run.state.covered_l0.Estimate(), expect.covered_l0.Estimate());
}

TEST(ParallelPipeline, MutatingFaultPlanReplaysBitIdenticallyAcrossSeeds) {
  // A mutating plan (dups, garbage, read errors) changes the token multiset
  // itself, so cross-P identity cannot hold — the guarantee is REPLAY:
  // fault decisions are keyed per segment by token sequence, so the same
  // (edges, P, plan) triple is a pure function, scheduling be damned.
  // Alpha-band: seed count scales with STREAMKC_SWEEP_SEEDS; failures name
  // the seed for replay.
  const uint64_t base_seed = EnvScaledU64("STREAMKC_SWEEP_BASE_SEED", 1200);
  const uint64_t num_seeds = EnvScaledU64("STREAMKC_SWEEP_SEEDS", 3);
  for (uint64_t i = 0; i < num_seeds; ++i) {
    uint64_t seed = base_seed + i;
    std::vector<Edge> edges = SyntheticEdges(12000, seed);
    const std::string spec = "seed=" + std::to_string(seed) +
                             ",read-error=0.01,dup=0.02,garbage=0.005";
    for (uint32_t P : {2u, 4u}) {
      LatticeRun first = RunLatticed(edges, P, 4, spec);
      LatticeRun again = RunLatticed(edges, P, 4, spec);
      EXPECT_EQ(StateBytes(again.state), StateBytes(first.state))
          << "replay: STREAMKC_SWEEP_BASE_SEED=" << seed << " P=" << P;
      EXPECT_DOUBLE_EQ(again.state.covered_l0.Estimate(),
                       first.state.covered_l0.Estimate())
          << "replay: STREAMKC_SWEEP_BASE_SEED=" << seed << " P=" << P;
    }
  }
}

TEST(ParallelPipeline, SteadyStateFlushRecyclesDrainedBatches) {
  // The allocation regression: flush used to build a fresh EdgeBatch per
  // hand-off. Now drained batches cycle producer → worker → producer, so in
  // steady state nearly every flush is served from the recycle lane; fresh
  // allocations are bounded by the lattice's in-flight window, not by the
  // stream length.
  std::vector<Edge> edges = SyntheticEdges(60000, 13);
  const uint32_t P = 2, N = 2;
  const size_t queue_capacity = 2;
  LatticeRun run = RunLatticed(edges, P, N, "", 64, queue_capacity);
  EXPECT_GT(run.batches_enqueued, 400u);  // enough flushes to mean something
  EXPECT_GT(run.batches_recycled, 0u);
  uint64_t fresh = run.batches_enqueued - run.batches_recycled;
  // Fresh allocations are the lane-priming transient only: once a lane's
  // circulating set (data ring + producer accumulator + worker hand) is
  // built, every flush is served from the recycle lane. A bound that grows
  // with the stream would mean the hot path allocates per hand-off again.
  uint64_t lanes = static_cast<uint64_t>(P) * N;
  EXPECT_LE(fresh, lanes * (queue_capacity + 3))
      << "flush hot path is allocating per hand-off again";
}

TEST(ParallelPipeline, JsonSnapshotCarriesPerProducerRows) {
  std::vector<Edge> edges = SyntheticEdges(5000, 61);
  LatticeRun run = RunLatticed(edges, 3, 2);
  EXPECT_NE(run.json.find("\"num_producers\": 3"), std::string::npos);
  EXPECT_NE(run.json.find("\"producers\""), std::string::npos);
  EXPECT_NE(run.json.find("\"batches_recycled\""), std::string::npos);
  EXPECT_NE(run.json.find("\"stream_retries\""), std::string::npos);
}

}  // namespace
}  // namespace streamkc
