#include "setsys/generators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "offline/greedy.h"
#include "setsys/frequency.h"

namespace streamkc {
namespace {

TEST(RandomUniform, Shape) {
  auto inst = RandomUniform(50, 200, 8, 1);
  EXPECT_EQ(inst.system.num_sets(), 50u);
  EXPECT_EQ(inst.system.num_elements(), 200u);
  for (const auto& s : inst.system.sets()) EXPECT_EQ(s.size(), 8u);
  EXPECT_EQ(inst.family, "random-uniform");
}

TEST(RandomUniform, DeterministicInSeed) {
  auto a = RandomUniform(20, 100, 5, 7);
  auto b = RandomUniform(20, 100, 5, 7);
  auto c = RandomUniform(20, 100, 5, 8);
  EXPECT_EQ(a.system.sets(), b.system.sets());
  EXPECT_NE(a.system.sets(), c.system.sets());
}

TEST(ZipfFrequency, SkewCreatesHotElements) {
  auto skewed = ZipfFrequency(200, 500, 10, 1.2, 3);
  auto flat = ZipfFrequency(200, 500, 10, 0.0, 3);
  auto skewed_freq = ElementFrequencies(skewed.system);
  auto flat_freq = ElementFrequencies(flat.system);
  uint64_t skew_max = *std::max_element(skewed_freq.begin(), skewed_freq.end());
  uint64_t flat_max = *std::max_element(flat_freq.begin(), flat_freq.end());
  EXPECT_GT(skew_max, flat_max);
}

TEST(PlantedCover, PlantedSolutionCoversExactly) {
  auto inst = PlantedCover(100, 1000, 10, 0.5, 5, 11);
  EXPECT_EQ(inst.planted_solution.size(), 10u);
  EXPECT_EQ(inst.system.CoverageOf(inst.planted_solution),
            inst.planted_coverage);
  EXPECT_EQ(inst.planted_coverage, 500u);
}

TEST(PlantedCover, PlantedIsNearOptimal) {
  auto inst = PlantedCover(100, 1000, 10, 0.5, 5, 13);
  // Greedy (within 1-1/e of OPT) should not beat the planted value by much;
  // in this construction the planted sets ARE the best choice.
  CoverSolution greedy = GreedyMaxCover(inst.system, 10);
  EXPECT_LE(greedy.coverage, inst.planted_coverage);
  EXPECT_GE(greedy.coverage, inst.planted_coverage * 6 / 10);
}

TEST(PlantedCover, NoiseSetsAreWeak) {
  auto inst = PlantedCover(100, 1000, 10, 0.5, 5, 17);
  // Any k noise sets cover far less than the planted cover.
  std::vector<SetId> noise;
  for (SetId s = 10; s < 20; ++s) noise.push_back(s);
  EXPECT_LT(inst.system.CoverageOf(noise), inst.planted_coverage / 2);
}

TEST(LargeSetFamily, JumboSetsDominate) {
  auto inst = LargeSetFamily(200, 1000, 4, 19);
  EXPECT_EQ(inst.planted_solution.size(), 4u);
  EXPECT_NEAR(static_cast<double>(inst.planted_coverage), 500.0, 4.0);
  // Singletons contribute 1 each.
  for (SetId s = 4; s < 200; ++s) EXPECT_EQ(inst.system.set(s).size(), 1u);
}

TEST(LargeSetFamily, NoCommonElements) {
  auto inst = LargeSetFamily(200, 1000, 4, 23);
  auto freq = ElementFrequencies(inst.system);
  // Every element belongs to few sets (jumbo blocks are disjoint).
  EXPECT_LE(*std::max_element(freq.begin(), freq.end()), 8u);
}

TEST(SmallSetFamily, OptIsManyEqualSlices) {
  auto inst = SmallSetFamily(300, 2000, 50, 29);
  EXPECT_EQ(inst.planted_solution.size(), 50u);
  // Each planted set contributes coverage/k exactly.
  uint64_t per = inst.planted_coverage / 50;
  for (SetId s = 0; s < 50; ++s) {
    EXPECT_EQ(inst.system.set(s).size(), per);
  }
}

TEST(SmallSetFamily, DecoysAreWeak) {
  auto inst = SmallSetFamily(300, 2000, 50, 31);
  std::vector<SetId> decoys;
  for (SetId s = 50; s < 100; ++s) decoys.push_back(s);
  EXPECT_LT(inst.system.CoverageOf(decoys), inst.planted_coverage / 4);
}

TEST(CommonElementFamily, CoreElementsAreCommon) {
  uint64_t m = 256, k = 4;
  double beta = 4;
  auto inst = CommonElementFamily(m, 1000, k, beta, 32, 37);
  auto freq = ElementFrequencies(inst.system);
  uint64_t want = static_cast<uint64_t>(m / (beta * k));
  for (ElementId e = 0; e < 32; ++e) {
    EXPECT_GE(freq[e], want) << "core element " << e;
  }
  // Background elements are rare.
  uint64_t rare = 0;
  for (ElementId e = 32; e < 1000; ++e) rare = std::max(rare, freq[e]);
  EXPECT_LT(rare, want);
}

TEST(GraphNeighborhoods, Shape) {
  auto inst = GraphNeighborhoods(500, 6.0, 41);
  EXPECT_EQ(inst.system.num_sets(), 500u);
  EXPECT_EQ(inst.system.num_elements(), 500u);
  double total = static_cast<double>(inst.system.TotalEdges());
  EXPECT_NEAR(total / 500.0, 6.0, 1.0);  // average out-degree
  // No self-loops.
  for (SetId v = 0; v < 500; ++v) {
    for (ElementId u : inst.system.set(v)) EXPECT_NE(u, v);
  }
}

TEST(AllGenerators, Deterministic) {
  EXPECT_EQ(PlantedCover(50, 500, 5, 0.5, 4, 99).system.sets(),
            PlantedCover(50, 500, 5, 0.5, 4, 99).system.sets());
  EXPECT_EQ(LargeSetFamily(50, 500, 3, 99).system.sets(),
            LargeSetFamily(50, 500, 3, 99).system.sets());
  EXPECT_EQ(SmallSetFamily(50, 500, 10, 99).system.sets(),
            SmallSetFamily(50, 500, 10, 99).system.sets());
  EXPECT_EQ(CommonElementFamily(64, 500, 4, 2, 16, 99).system.sets(),
            CommonElementFamily(64, 500, 4, 2, 16, 99).system.sets());
  EXPECT_EQ(GraphNeighborhoods(100, 4, 99).system.sets(),
            GraphNeighborhoods(100, 4, 99).system.sets());
}

}  // namespace
}  // namespace streamkc
