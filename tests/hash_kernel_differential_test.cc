// Scalar-vs-AVX2 hash-kernel differential suite: the two MapFoldedBatch
// kernels (hash/kernel_dispatch.h) promise BYTE-IDENTICAL output for every
// input, and this file is the contract's enforcement. Coverage axes:
//
//   * every batch size n ∈ [0, 64] — crosses the 8-lane block boundary at
//     every remainder phase, plus 0 (no-op) and sizes with multiple full
//     vector blocks;
//   * degrees 2, 4 and Θ(log mn) (= 48, the LogWise(2^20, 2^20) degree) —
//     the three independence levels the paper uses;
//   * misaligned input/output pointers — batch views land on arbitrary
//     8-byte offsets, never guaranteed 32-byte SIMD alignment, and `out`
//     may alias `folded`;
//   * adversarial inputs and coefficients: 0, 1, p−2, p−1 (the largest
//     folded value) and values just below 2^61 — the operands that maximize
//     every limb partial product and force the conditional-subtract and
//     carry paths in the limb decomposition;
//   * the dispatched KWiseHash entry under the forced-path override; and
//   * a serialized-blob end-to-end run: the same edges through the inline
//     batched pipeline with the kernel forced to scalar and then to AVX2
//     must leave estimator state whose serialized bytes are identical.
//
// On hosts where the AVX2 kernel is unavailable (no CPU support, or a
// -mno-avx2 / STREAMKC_ENABLE_AVX2=OFF build) the cross-kernel cases skip
// and the scalar self-checks still run.

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/estimate_max_cover.h"
#include "hash/kernel_dispatch.h"
#include "hash/kwise_hash.h"
#include "hash/mersenne.h"
#include "runtime/edge_batch.h"
#include "runtime/sketch_states.h"
#include "test_util.h"
#include "util/random.h"

namespace streamkc {
namespace {

constexpr uint64_t kP = kMersennePrime61;
constexpr uint32_t kLogWiseDegree = 48;  // LogWise(2^20, 2^20): 20+20+8

#define SKIP_WITHOUT_AVX2()                                        \
  do {                                                             \
    if (!HashKernelAvailable(HashKernel::kAvx2)) {                 \
      GTEST_SKIP() << "AVX2 hash kernel unavailable on this host"; \
    }                                                              \
  } while (0)

std::vector<uint64_t> UniformCoeffs(uint32_t d, uint64_t seed) {
  std::vector<uint64_t> c(d);
  for (uint32_t i = 0; i < d; ++i) c[i] = SplitMix64(seed + i) % kP;
  return c;
}

std::vector<uint64_t> RandomFolded(size_t n, uint64_t seed) {
  std::vector<uint64_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = MersenneFold(SplitMix64(seed + i));
  return v;
}

// Runs both kernels on the same (coeffs, input) and asserts byte equality.
void ExpectKernelsAgree(const std::vector<uint64_t>& coeffs,
                        const std::vector<uint64_t>& in,
                        const std::string& label) {
  const size_t n = in.size();
  std::vector<uint64_t> scalar_out(n + 1, 0xA5A5A5A5A5A5A5A5ULL);
  std::vector<uint64_t> avx2_out(n + 1, 0x5A5A5A5A5A5A5A5AULL);
  HashKernelFn(HashKernel::kScalar)(coeffs.data(), coeffs.size(), in.data(),
                                    scalar_out.data(), n);
  HashKernelFn(HashKernel::kAvx2)(coeffs.data(), coeffs.size(), in.data(),
                                  avx2_out.data(), n);
  ASSERT_EQ(0, std::memcmp(scalar_out.data(), avx2_out.data(),
                           n * sizeof(uint64_t)))
      << label << ": kernel outputs differ (n=" << n
      << ", d=" << coeffs.size() << ")";
  for (size_t i = 0; i < n; ++i) {
    ASSERT_LT(scalar_out[i], kP) << label << ": non-canonical output at " << i;
  }
}

TEST(HashKernelDifferential, AllBatchSizesZeroThrough64) {
  SKIP_WITHOUT_AVX2();
  for (uint32_t d : {2u, 4u, kLogWiseDegree}) {
    std::vector<uint64_t> coeffs = UniformCoeffs(d, 1000 + d);
    for (size_t n = 0; n <= 64; ++n) {
      ExpectKernelsAgree(coeffs, RandomFolded(n, 31 * n + d),
                         "uniform-random sweep");
    }
  }
}

TEST(HashKernelDifferential, AdversarialInputs) {
  SKIP_WITHOUT_AVX2();
  // Extremes of the folded domain plus values just below 2^61: p−1 is the
  // largest legal input, and the near-2^61 band maximizes a1·v1 and the
  // folded carry out of every partial product.
  const uint64_t pool[] = {0,      1,          2,          kP - 1,
                          kP - 2, kP - 3,     1ULL << 32, (1ULL << 32) - 1,
                          (1ULL << 60) + 7,   kP / 2,     kP / 2 + 1};
  const size_t pool_size = sizeof(pool) / sizeof(pool[0]);
  for (uint32_t d : {2u, 4u, kLogWiseDegree}) {
    std::vector<uint64_t> coeffs = UniformCoeffs(d, 77 + d);
    // Rotating windows over the pool at every remainder phase.
    for (size_t n = 1; n <= 64; ++n) {
      std::vector<uint64_t> in(n);
      for (size_t i = 0; i < n; ++i) in[i] = pool[(i + n) % pool_size];
      ExpectKernelsAgree(coeffs, in, "adversarial pool");
    }
    // Constant batches of each extreme (all lanes take the same branch).
    for (uint64_t v : pool) {
      ExpectKernelsAgree(coeffs, std::vector<uint64_t>(19, v),
                         "constant extreme batch");
    }
  }
}

TEST(HashKernelDifferential, AdversarialCoefficients) {
  SKIP_WITHOUT_AVX2();
  // Coefficient extremes drive the MersenneAdd conditional-subtract: c=p−1
  // forces the wrap on almost every step, c=0 exercises the no-op add.
  const std::vector<std::vector<uint64_t>> coeff_sets = {
      {0, 0},
      {kP - 1, kP - 1},
      {1, kP - 1},
      {kP - 1, 0, kP - 1, 1},
      std::vector<uint64_t>(kLogWiseDegree, kP - 1),
      std::vector<uint64_t>(kLogWiseDegree, 1),
  };
  for (const auto& coeffs : coeff_sets) {
    for (size_t n : {1u, 3u, 8u, 13u, 32u, 64u}) {
      ExpectKernelsAgree(coeffs, RandomFolded(n, coeffs.size() * 131 + n),
                         "adversarial coefficients");
      std::vector<uint64_t> extremes(n);
      for (size_t i = 0; i < n; ++i) extremes[i] = (i % 2) ? kP - 1 : kP - 2;
      ExpectKernelsAgree(coeffs, extremes, "adversarial coeffs × extremes");
    }
  }
}

TEST(HashKernelDifferential, MisalignedAndAliasedPointers) {
  SKIP_WITHOUT_AVX2();
  std::vector<uint64_t> coeffs = UniformCoeffs(4, 9);
  for (size_t in_off : {0u, 1u, 2u, 3u}) {
    for (size_t out_off : {0u, 1u, 3u}) {
      for (size_t n : {1u, 7u, 8u, 24u, 61u, 64u}) {
        // +8 slack so every offset stays in bounds; element offsets give
        // 8-byte alignment, i.e. deliberately NOT the 32-byte vector
        // alignment — the unaligned-load path must be the only path.
        std::vector<uint64_t> in_buf = RandomFolded(n + 8, n * 7 + in_off);
        std::vector<uint64_t> scalar_buf(n + 8, 0), avx2_buf(n + 8, 0);
        HashKernelFn(HashKernel::kScalar)(coeffs.data(), coeffs.size(),
                                          in_buf.data() + in_off,
                                          scalar_buf.data() + out_off, n);
        HashKernelFn(HashKernel::kAvx2)(coeffs.data(), coeffs.size(),
                                        in_buf.data() + in_off,
                                        avx2_buf.data() + out_off, n);
        ASSERT_EQ(0, std::memcmp(scalar_buf.data() + out_off,
                                 avx2_buf.data() + out_off,
                                 n * sizeof(uint64_t)))
            << "misaligned in+" << in_off << " out+" << out_off << " n=" << n;
      }
    }
  }
  // In-place evaluation (out aliases folded), both kernels.
  for (size_t n : {5u, 8u, 29u, 64u}) {
    std::vector<uint64_t> a = RandomFolded(n, 17 * n);
    std::vector<uint64_t> b = a;
    HashKernelFn(HashKernel::kScalar)(coeffs.data(), coeffs.size(), a.data(),
                                      a.data(), n);
    HashKernelFn(HashKernel::kAvx2)(coeffs.data(), coeffs.size(), b.data(),
                                    b.data(), n);
    ASSERT_EQ(a, b) << "aliased in-place n=" << n;
  }
}

// The dispatched KWiseHash entry under the forced-path override must route
// to the pinned kernel and agree with the un-dispatched scalar reference —
// and MapRangeFoldedBatch (the fixed-point range mapping layered on top)
// must agree bit-for-bit too.
TEST(HashKernelDifferential, ForcedDispatchMatchesDirectKernels) {
  SKIP_WITHOUT_AVX2();
  KWiseHash h(kLogWiseDegree, 4242);
  std::vector<uint64_t> in = RandomFolded(200, 5);
  std::vector<uint64_t> want(in.size());
  for (size_t i = 0; i < in.size(); ++i) want[i] = h.MapFolded(in[i]);
  for (HashKernel k : {HashKernel::kScalar, HashKernel::kAvx2}) {
    ForceHashKernel(k);
    EXPECT_EQ(ActiveHashKernel(), k);
    EXPECT_STREQ(HashKernelSource(), "forced");
    std::vector<uint64_t> out(in.size());
    h.MapFoldedBatch(in.data(), out.data(), in.size());
    EXPECT_EQ(out, want) << "dispatched batch diverges under "
                         << HashKernelName(k);
    std::vector<uint64_t> ranged(in.size());
    h.MapRangeFoldedBatch(in.data(), ranged.data(), in.size(), 12345);
    for (size_t i = 0; i < in.size(); ++i) {
      EXPECT_EQ(ranged[i], h.MapRangeFolded(in[i], 12345));
    }
  }
  ResetHashKernel();
}

template <typename Sketch>
std::string Blob(const Sketch& sketch) {
  std::stringstream ss;
  sketch.Save(ss);
  return ss.str();
}

// Feeds `edges` through the batched ingest entry (EdgeBatch::Prefold +
// ProcessBatch, the sharded pipeline's hand-off) with the hash kernel
// pinned to `kernel`.
template <typename State>
State RunInlineBatched(const std::vector<Edge>& edges, HashKernel kernel,
                       State state) {
  ForceHashKernel(kernel);
  EdgeBatch batch;
  constexpr size_t kBatch = 509;  // prime: remainder lanes on every flush
  for (size_t i = 0; i < edges.size(); i += kBatch) {
    size_t m = std::min(kBatch, edges.size() - i);
    batch.Clear();
    batch.edges.assign(edges.begin() + i, edges.begin() + i + m);
    batch.Prefold();
    state.ProcessBatch(batch.View());
  }
  ResetHashKernel();
  return state;
}

// End-to-end: same edges, same seeds, inline batched pipeline, kernel
// forced to scalar and then to AVX2 — the serialized estimator state must
// be byte-identical. This is the whole-system restatement of the kernel
// contract: one admission decided differently by the vector path would
// change a sketch blob.
TEST(HashKernelDifferential, EndToEndSerializedStateIdentical) {
  SKIP_WITHOUT_AVX2();
  std::vector<Edge> edges = SyntheticEdges(30000, 91);
  CoverageSketchState::Config cfg;
  CoverageSketchState scalar_state = RunInlineBatched(
      edges, HashKernel::kScalar, CoverageSketchState(cfg));
  CoverageSketchState avx2_state = RunInlineBatched(
      edges, HashKernel::kAvx2, CoverageSketchState(cfg));
  EXPECT_EQ(Blob(scalar_state.covered_l0), Blob(avx2_state.covered_l0));
  EXPECT_EQ(Blob(scalar_state.element_f2), Blob(avx2_state.element_f2));
  EXPECT_DOUBLE_EQ(scalar_state.covered_hll.Estimate(),
                   avx2_state.covered_hll.Estimate());
}

// Same restatement through the paper's full estimator: identical
// Finalize() verdicts (estimate, winning subroutine, feasibility) from the
// scalar-pinned and AVX2-pinned passes.
TEST(HashKernelDifferential, EndToEndEstimatorVerdictIdentical) {
  SKIP_WITHOUT_AVX2();
  auto inst = MakeFamilyInstance("planted", 512, 1024, 16, 53);
  std::vector<Edge> edges = InstanceEdges(inst, 11);
  EstimateMaxCover::Config cfg;
  cfg.params = Params::Practical(512, 1024, 16, 8);
  cfg.seed = 61;
  EstimateMaxCover scalar_est = RunInlineBatched(
      edges, HashKernel::kScalar, EstimateMaxCover(cfg));
  EstimateMaxCover avx2_est = RunInlineBatched(
      edges, HashKernel::kAvx2, EstimateMaxCover(cfg));
  EstimateOutcome a = scalar_est.Finalize();
  EstimateOutcome b = avx2_est.Finalize();
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.source, b.source);
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
}

// Availability axioms the dispatch layer promises.
TEST(HashKernelDifferential, DispatchInvariants) {
  EXPECT_TRUE(HashKernelAvailable(HashKernel::kScalar));
  EXPECT_STREQ(HashKernelName(HashKernel::kScalar), "scalar");
  EXPECT_STREQ(HashKernelName(HashKernel::kAvx2), "avx2");
  HashKernel k;
  EXPECT_TRUE(ParseHashKernel("scalar", &k));
  EXPECT_EQ(k, HashKernel::kScalar);
  EXPECT_TRUE(ParseHashKernel("avx2", &k));
  EXPECT_EQ(k, HashKernel::kAvx2);
  EXPECT_FALSE(ParseHashKernel("sse2", &k));
  EXPECT_FALSE(ParseHashKernel("", &k));
  // avx2 availability implies CPU support (the converse can fail on
  // scalar-only builds).
  if (HashKernelAvailable(HashKernel::kAvx2)) {
    EXPECT_TRUE(CpuSupportsAvx2());
  }
  // The active kernel is always an available one.
  EXPECT_TRUE(HashKernelAvailable(ActiveHashKernel()));
}

}  // namespace
}  // namespace streamkc
