// Transport-layer lockdown (src/dist/transport.h): the hello codec, the
// poll-timeout policy, frame reassembly under adversarial delivery splits
// over both fd flavors the transports use (pipes and sockets), the
// pipe-vs-tcp differential (clean and under the fault matrix), the
// socket-drop redial path, and the SIGPIPE regression — a worker shipping
// into a dead coordinator must exit kWorkerPermanentErrorExit, not die by
// signal (which would read as a crash and burn respawns on a hopeless
// retry).

#include "dist/transport.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "dist/frame.h"
#include "dist/process_tree.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "runtime/sketch_states.h"
#include "test_util.h"
#include "util/random.h"

namespace streamkc {
namespace {

TEST(TransportKindTest, ParsesAndNamesBothKinds) {
  TransportKind kind = TransportKind::kTcp;
  EXPECT_TRUE(ParseTransportKind("pipe", &kind));
  EXPECT_EQ(kind, TransportKind::kPipe);
  EXPECT_TRUE(ParseTransportKind("tcp", &kind));
  EXPECT_EQ(kind, TransportKind::kTcp);
  EXPECT_FALSE(ParseTransportKind("udp", &kind));
  EXPECT_FALSE(ParseTransportKind("", &kind));
  EXPECT_STREQ(TransportKindName(TransportKind::kPipe), "pipe");
  EXPECT_STREQ(TransportKindName(TransportKind::kTcp), "tcp");
}

TEST(TransportHelloTest, RoundTripsAndRejectsBadMagic) {
  char buf[kHelloBytes];
  EncodeHello(/*worker=*/7, /*generation=*/3, buf);
  uint32_t worker = 0, generation = 0;
  ASSERT_TRUE(DecodeHello(buf, &worker, &generation));
  EXPECT_EQ(worker, 7u);
  EXPECT_EQ(generation, 3u);
  EncodeHello(UINT32_MAX, UINT32_MAX, buf);
  ASSERT_TRUE(DecodeHello(buf, &worker, &generation));
  EXPECT_EQ(worker, UINT32_MAX);
  EXPECT_EQ(generation, UINT32_MAX);
  buf[0] ^= 0x01;  // magic LSB
  EXPECT_FALSE(DecodeHello(buf, &worker, &generation));
}

TEST(PollTimeoutTest, AutoIsInfiniteUnlessDeadlinePending) {
  // The satellite fix: with every worker exit observable through the poll
  // set, an idle tree must take ZERO wakeups — auto resolves to infinite.
  EXPECT_EQ(ResolvePollTimeoutMs(0, /*deadline_pending=*/false), -1);
  EXPECT_EQ(ResolvePollTimeoutMs(0, /*deadline_pending=*/true), 1000);
  EXPECT_EQ(ResolvePollTimeoutMs(-1, false), -1);
  EXPECT_EQ(ResolvePollTimeoutMs(-1, true), -1);   // explicit beats pending
  EXPECT_EQ(ResolvePollTimeoutMs(250, false), 250);
  EXPECT_EQ(ResolvePollTimeoutMs(250, true), 250);
}

// ---- Frame reassembly under adversarial delivery splits -----------------

Frame MakeTestFrame(uint64_t seed, size_t payload_size) {
  Frame f;
  f.fingerprint = SplitMix64(seed);
  f.payload.resize(payload_size);
  for (size_t i = 0; i < payload_size; ++i) {
    f.payload[i] = static_cast<char>(SplitMix64(seed + 1 + i));
  }
  return f;
}

// Pushes `bytes` through an fd pair in the given chunk sizes, reading each
// chunk back and feeding it to `decoder` — delivery exactly as a transport
// would see it, including the kernel's own short reads.
void DeliverThroughFds(int write_fd, int read_fd, const std::string& bytes,
                       const std::vector<size_t>& chunks,
                       FrameDecoder* decoder) {
  size_t off = 0;
  char buf[1 << 16];
  for (size_t chunk : chunks) {
    ASSERT_LE(off + chunk, bytes.size());
    ASSERT_EQ(::write(write_fd, bytes.data() + off, chunk),
              static_cast<ssize_t>(chunk));
    off += chunk;
    size_t got = 0;
    while (got < chunk) {
      ssize_t n = ::read(read_fd, buf, sizeof(buf));
      ASSERT_GT(n, 0);
      decoder->Feed(buf, static_cast<size_t>(n));
      got += static_cast<size_t>(n);
    }
  }
  ASSERT_EQ(off, bytes.size());
}

// One fd pair per transport flavor: pipe(2) as PipeTransport uses, and an
// AF_UNIX socketpair as the closest in-process stand-in for a TCP stream
// (same SOCK_STREAM short-read/short-write semantics).
struct FdPair {
  int read_fd = -1;
  int write_fd = -1;
  std::string name;
};

std::vector<FdPair> MakeBothFdFlavors() {
  std::vector<FdPair> pairs;
  int p[2];
  EXPECT_EQ(::pipe(p), 0);
  pairs.push_back({p[0], p[1], "pipe"});
  int sp[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  pairs.push_back({sp[0], sp[1], "socket"});
  return pairs;
}

TEST(FrameReassemblyTest, OneByteDeliveryDecodesIdenticallyOnBothFlavors) {
  const Frame frame = MakeTestFrame(/*seed=*/11, /*payload_size=*/777);
  const std::string bytes = EncodeFrame(frame);
  const std::vector<size_t> one_byte(bytes.size(), 1);
  for (const FdPair& fds : MakeBothFdFlavors()) {
    FrameDecoder decoder;
    DeliverThroughFds(fds.write_fd, fds.read_fd, bytes, one_byte, &decoder);
    Frame out;
    std::string err;
    ASSERT_EQ(decoder.Next(&out, &err), FrameDecoder::Status::kFrame)
        << fds.name;
    EXPECT_EQ(out.fingerprint, frame.fingerprint) << fds.name;
    EXPECT_EQ(out.payload, frame.payload) << fds.name;
    EXPECT_EQ(decoder.buffered_bytes(), 0u) << fds.name;
    ::close(fds.read_fd);
    ::close(fds.write_fd);
  }
}

TEST(FrameReassemblyTest, RandomSplitsDecodeIdenticallyOnBothFlavors) {
  // Two back-to-back frames per trial: splits land inside headers, across
  // frame boundaries, everywhere. Every delivery schedule must decode to
  // the same two frames a whole-buffer feed produces.
  const Frame a = MakeTestFrame(/*seed=*/21, /*payload_size=*/1500);
  const Frame b = MakeTestFrame(/*seed=*/22, /*payload_size=*/3);
  const std::string bytes = EncodeFrame(a) + EncodeFrame(b);
  for (uint64_t trial = 0; trial < 8; ++trial) {
    std::vector<size_t> chunks;
    size_t remaining = bytes.size();
    uint64_t rng = SplitMix64(trial + 1);
    while (remaining > 0) {
      rng = SplitMix64(rng);
      size_t chunk = 1 + rng % std::min(remaining, size_t{97});
      chunks.push_back(chunk);
      remaining -= chunk;
    }
    for (const FdPair& fds : MakeBothFdFlavors()) {
      FrameDecoder decoder;
      DeliverThroughFds(fds.write_fd, fds.read_fd, bytes, chunks, &decoder);
      Frame out;
      std::string err;
      ASSERT_EQ(decoder.Next(&out, &err), FrameDecoder::Status::kFrame)
          << fds.name << " trial=" << trial;
      EXPECT_EQ(out.payload, a.payload);
      ASSERT_EQ(decoder.Next(&out, &err), FrameDecoder::Status::kFrame);
      EXPECT_EQ(out.payload, b.payload);
      EXPECT_EQ(decoder.Next(&out, &err), FrameDecoder::Status::kNeedMore);
      ::close(fds.read_fd);
      ::close(fds.write_fd);
    }
  }
}

TEST(FrameReassemblyTest, CorruptMidDeliveryIsStickyOnBothFlavors) {
  const Frame frame = MakeTestFrame(/*seed=*/31, /*payload_size=*/900);
  const std::string good = EncodeFrame(frame);
  std::string bad = good;
  bad[bad.size() / 2] ^= 0x20;  // payload-region flip: CRC must catch it
  const std::string bytes = bad + good;  // a valid frame rides behind it
  for (const FdPair& fds : MakeBothFdFlavors()) {
    FrameDecoder decoder;
    DeliverThroughFds(fds.write_fd, fds.read_fd, bytes,
                      std::vector<size_t>(bytes.size(), 1), &decoder);
    Frame out;
    std::string err;
    EXPECT_EQ(decoder.Next(&out, &err), FrameDecoder::Status::kCorrupt)
        << fds.name;
    // Poisoned for good: the trailing valid frame must NOT resynchronize
    // the stream (rejection is a verdict on the whole connection).
    EXPECT_EQ(decoder.Next(&out, &err), FrameDecoder::Status::kCorrupt)
        << fds.name;
    ::close(fds.read_fd);
    ::close(fds.write_fd);
  }
}

// ---- SIGPIPE regression (satellite bugfix) ------------------------------

TEST(TransportSigPipeDeathTest, DeadCoordinatorIsPermanentErrorNotSignal) {
  // Pre-fix, the worker's first write after the coordinator closed the
  // read end died by SIGPIPE — the coordinator then classified it as a
  // crash and spent respawns re-running a worker that can never ship.
  // Post-fix ShipFinalFrame ignores SIGPIPE, sees EPIPE, and returns
  // false; the worker protocol turns that into kWorkerPermanentErrorExit.
  EXPECT_EXIT(
      {
        TransportConfig config;  // pipe transport
        std::unique_ptr<Transport> transport = MakeTransport(config);
        Transport::Channel ch = transport->MakeChannel(0, 0);
        ::close(ch.coord_fd);  // the coordinator is gone
        WorkerCounters counters;
        const bool shipped = transport->ShipFinalFrame(
            ch, /*worker=*/0, /*generation=*/0, DegradationPolicy{},
            &counters, [](const WorkerCounters&) {
              return MakeTestFrame(/*seed=*/41, /*payload_size=*/4096);
            });
        ::_exit(shipped ? kWorkerOkExit : kWorkerPermanentErrorExit);
      },
      ::testing::ExitedWithCode(kWorkerPermanentErrorExit), "");
}

// ---- Pipe-vs-TCP differential -------------------------------------------

constexpr size_t kEdges = 20000;
constexpr uint32_t kSegments = 16;

DistOptions TcpOptions(uint32_t workers) {
  DistOptions opt;
  opt.num_workers = workers;
  opt.transport.kind = TransportKind::kTcp;
  return opt;
}

TEST(TcpTransportDifferential, MatchesPipeAndInlineByteForByte) {
  ScopedWorkerHarness harness(SyntheticEdges(kEdges, /*seed=*/51), kSegments);
  ScopedWorkerHarness::Result inline_ref = harness.RunInline();
  DistOptions pipe_opt;
  pipe_opt.num_workers = 4;
  ScopedWorkerHarness::Result pipe = harness.RunDist(pipe_opt);
  ScopedWorkerHarness::Result tcp = harness.RunDist(TcpOptions(4));
  EXPECT_EQ(pipe.state_blob, inline_ref.state_blob);
  EXPECT_EQ(tcp.state_blob, inline_ref.state_blob);
  EXPECT_EQ(tcp.fingerprint, pipe.fingerprint);
  EXPECT_EQ(tcp.metrics.transport, "tcp");
  EXPECT_EQ(tcp.metrics.connections_accepted, 4u);
  EXPECT_EQ(tcp.metrics.socket_drops, 0u);
  EXPECT_EQ(tcp.metrics.TotalConnectRetries(), 0u);
  EXPECT_EQ(tcp.metrics.frames_received, 4u);
  EXPECT_EQ(tcp.metrics.TotalEdgesProcessed(), kEdges);
}

TEST(TcpTransportDifferential, FaultMatrixMatchesPipeVerdictForVerdict) {
  // The acceptance bar: kill-shard and corrupt-frame must produce the SAME
  // serialized state and the SAME quarantine/respawn ledger over TCP as
  // over pipes.
  for (const char* spec :
       {"seed=7,kill-shard=1@2", "seed=7,corrupt-frame=2"}) {
    ScopedWorkerHarness harness(SyntheticEdges(kEdges, /*seed=*/52),
                                kSegments);
    FaultInjector pipe_injector(FaultPlan::ParseOrDie(spec));
    DistOptions pipe_opt;
    pipe_opt.num_workers = 4;
    pipe_opt.fault_injector = &pipe_injector;
    ScopedWorkerHarness::Result pipe = harness.RunDist(pipe_opt);

    FaultInjector tcp_injector(FaultPlan::ParseOrDie(spec));
    DistOptions tcp_opt = TcpOptions(4);
    tcp_opt.fault_injector = &tcp_injector;
    ScopedWorkerHarness::Result tcp = harness.RunDist(tcp_opt);

    EXPECT_EQ(tcp.state_blob, pipe.state_blob) << spec;
    EXPECT_EQ(tcp.metrics.TotalRespawns(), pipe.metrics.TotalRespawns())
        << spec;
    EXPECT_EQ(tcp.metrics.WorkersQuarantined(),
              pipe.metrics.WorkersQuarantined())
        << spec;
    EXPECT_EQ(tcp.metrics.TotalCrcRejections(),
              pipe.metrics.TotalCrcRejections())
        << spec;
    for (uint32_t w = 0; w < 4; ++w) {
      EXPECT_EQ(tcp.metrics.workers[w].quarantined,
                pipe.metrics.workers[w].quarantined)
          << spec << " worker=" << w;
    }
  }
}

TEST(TcpTransportDifferential, SocketDropRedialsAndConvergesIdentically) {
  ScopedWorkerHarness harness(SyntheticEdges(kEdges, /*seed=*/53), kSegments);
  DistOptions clean_opt = TcpOptions(4);
  ScopedWorkerHarness::Result clean = harness.RunDist(clean_opt);

  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::ParseOrDie("seed=7,socket-drop=1"),
                         &registry);
  DistOptions opt = TcpOptions(4);
  opt.fault_injector = &injector;
  ScopedWorkerHarness::Result dropped = harness.RunDist(opt);

  EXPECT_EQ(dropped.state_blob, clean.state_blob);
  EXPECT_EQ(dropped.metrics.socket_drops, 1u);
  // The redial is recovery, not failure: the dropped dial lands in
  // socket_drops (never acked, so never "accepted"), the retry is charged
  // to worker 1, and nobody is respawned or quarantined.
  EXPECT_EQ(dropped.metrics.connections_accepted, 4u);
  EXPECT_EQ(dropped.metrics.workers[1].counters.connect_retries, 1u);
  EXPECT_EQ(dropped.metrics.TotalConnectRetries(), 1u);
  EXPECT_EQ(dropped.metrics.TotalRespawns(), 0u);
  EXPECT_EQ(dropped.metrics.WorkersQuarantined(), 0u);
  EXPECT_EQ(registry
                .GetCounter(LabeledName("faults_injected_total", "kind",
                                        FaultInjector::kFaultSocketDrop))
                ->Value(),
            1u);
}

TEST(TcpTransportDifferential, SocketDropWithZeroBudgetQuarantinesCleanly) {
  // With the dial budget at zero, a dropped connection is a permanent
  // transport failure: the worker must exit kWorkerPermanentErrorExit (not
  // die by SIGPIPE writing into the closed socket) and be quarantined
  // without burning a single respawn.
  ScopedWorkerHarness harness(SyntheticEdges(kEdges, /*seed=*/54), kSegments);
  FaultInjector injector(FaultPlan::ParseOrDie("seed=7,socket-drop=2"));
  DistOptions opt = TcpOptions(4);
  opt.degradation.max_stream_retries = 0;
  opt.fault_injector = &injector;
  ScopedWorkerHarness::Result dist = harness.RunDist(opt);
  const DistWorkerRow& w2 = dist.metrics.workers[2];
  EXPECT_TRUE(w2.quarantined);
  EXPECT_EQ(w2.respawns, 0u);  // permanent error, not a crash
  EXPECT_EQ(dist.metrics.WorkersQuarantined(), 1u);
  EXPECT_EQ(dist.metrics.frames_received, 3u);
  EXPECT_EQ(dist.metrics.socket_drops, 1u);
}

TEST(TcpTransportDifferential, ExplicitListenAddressAndPollTimeoutWork) {
  ScopedWorkerHarness harness(SyntheticEdges(kEdges, /*seed=*/55), kSegments);
  DistOptions opt = TcpOptions(2);
  opt.transport.listen_addr = "127.0.0.1:0";  // ephemeral, loopback
  opt.poll_timeout_ms = 50;                   // finite timeout still drains
  ScopedWorkerHarness::Result tcp = harness.RunDist(opt);
  EXPECT_EQ(tcp.state_blob, harness.RunInline().state_blob);
  EXPECT_GE(tcp.metrics.poll_wakeups, 1u);
}

}  // namespace
}  // namespace streamkc
