// Tests for the inverse space-budget question (Params::AlphaForBudget) and
// the distributed use of the pipeline's sketch substrate.

#include <gtest/gtest.h>

#include <cmath>

#include "core/estimate_max_cover.h"
#include "test_util.h"

namespace streamkc {
namespace {

TEST(AlphaForBudget, MonotoneInBudget) {
  const uint64_t m = 1 << 16, n = 1 << 14, k = 64;
  double tight = Params::AlphaForBudget(m, n, k, 64u << 10);
  double roomy = Params::AlphaForBudget(m, n, k, 16u << 20);
  EXPECT_GE(tight, roomy);  // less space → coarser approximation
  EXPECT_GE(roomy, 2.0);
  EXPECT_LE(tight, std::sqrt(static_cast<double>(m)) + 1e-9);
}

TEST(AlphaForBudget, ClampsToValidRange) {
  const uint64_t m = 1 << 12;
  // Absurdly generous budget → α floors at 2.
  EXPECT_DOUBLE_EQ(Params::AlphaForBudget(m, m, 8, 1u << 30), 2.0);
  // Starved budget → α caps at √m (beyond which the theorem gives nothing).
  EXPECT_DOUBLE_EQ(Params::AlphaForBudget(m, m, 8, 1024),
                   std::sqrt(static_cast<double>(m)));
}

TEST(AlphaForBudget, AlphaSquaredShape) {
  // Quadrupling m at a fixed budget should roughly double α (α ∝ √m in the
  // budget-bound regime).
  const uint64_t k = 16;
  size_t budget = 256u << 10;
  double a1 = Params::AlphaForBudget(1 << 14, 1 << 12, k, budget);
  double a2 = Params::AlphaForBudget(1 << 16, 1 << 12, k, budget);
  EXPECT_GT(a2, a1 * 1.4);
  EXPECT_LT(a2, a1 * 2.9);
}

TEST(AlphaForBudget, PredictionRoughlyMatchesMeasured) {
  // Build an estimator at the α the solver recommends for a budget and
  // verify the realized footprint is within a small factor of that budget.
  const uint64_t m = 1 << 13, n = 1 << 12, k = 32;
  for (size_t budget : {size_t{1} << 20, size_t{4} << 20}) {
    double alpha = Params::AlphaForBudget(m, n, k, budget);
    auto inst = RandomUniform(m, n, 8, 3);
    EstimateMaxCover::Config c;
    c.params = Params::Practical(m, n, k, alpha);
    c.seed = 9;
    EstimateMaxCover est(c);
    FeedSystem(inst.system, ArrivalOrder::kRandom, 1, est);
    double measured = static_cast<double>(est.MemoryBytes());
    EXPECT_LE(measured, 4.0 * static_cast<double>(budget))
        << "budget " << budget << " alpha " << alpha;
  }
}

TEST(AlphaForBudget, InvalidInputsAbort) {
  EXPECT_DEATH(Params::AlphaForBudget(0, 10, 1, 100), "CHECK failed");
  EXPECT_DEATH(Params::AlphaForBudget(10, 10, 1, 0), "CHECK failed");
}

}  // namespace
}  // namespace streamkc
