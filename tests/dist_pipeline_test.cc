// Differential battery for the multi-process reduction tree
// (src/dist/process_tree.h): the distributed run must be BIT-IDENTICAL —
// compared on the serialized final state, not an estimate tolerance — to
// the single-process inline pass, across worker counts, merge arities,
// injected worker deaths (with and without checkpoints), and transport
// corruption. Fault scenarios additionally pin the detection path: a
// corrupted frame dies on the CRC, a corrupted fingerprint loses the
// majority vote, and in both cases the offender is quarantined rather than
// folded into the estimate.

#include "dist/process_tree.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dist/reduction_tree.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "runtime/sketch_states.h"
#include "test_util.h"

namespace streamkc {
namespace {

constexpr size_t kEdges = 20000;
constexpr uint32_t kSegments = 16;

class DistDifferential : public ::testing::Test {
 protected:
  ScopedWorkerHarness MakeHarness(uint64_t seed) {
    return ScopedWorkerHarness(SyntheticEdges(kEdges, seed), kSegments);
  }
};

TEST_F(DistDifferential, MatchesInlineAcrossWorkersAndArity) {
  ScopedWorkerHarness harness = MakeHarness(/*seed=*/1);
  ScopedWorkerHarness::Result inline_ref = harness.RunInline();
  for (uint32_t workers : {1u, 2u, 4u}) {
    for (uint32_t arity : {2u, 4u}) {
      DistOptions opt;
      opt.num_workers = workers;
      opt.merge_arity = arity;
      ScopedWorkerHarness::Result dist = harness.RunDist(opt);
      EXPECT_EQ(dist.state_blob, inline_ref.state_blob)
          << "workers=" << workers << " arity=" << arity;
      EXPECT_EQ(dist.fingerprint, inline_ref.fingerprint);
      EXPECT_EQ(dist.metrics.frames_received, workers);
      EXPECT_EQ(dist.metrics.TotalEdgesIngested(), kEdges);
      EXPECT_EQ(dist.metrics.TotalEdgesProcessed(), kEdges);
      EXPECT_EQ(dist.metrics.WorkersQuarantined(), 0u);
      EXPECT_EQ(dist.metrics.TotalRespawns(), 0u);
      // The recorded tree depth matches the closed form the validator uses.
      EXPECT_EQ(dist.metrics.tree.depth, MergeTreeDepth(workers, arity));
      if (workers > 1) {
        EXPECT_GT(dist.metrics.tree.merges, 0u);
      }
    }
  }
}

TEST_F(DistDifferential, SegmentAssignmentPartitionsWithoutOverlap) {
  ScopedWorkerHarness harness = MakeHarness(/*seed=*/2);
  DistOptions opt;
  opt.num_workers = 3;  // does not divide 16: uneven blocks
  ScopedWorkerHarness::Result dist = harness.RunDist(opt);
  uint32_t assigned = 0;
  uint64_t done = 0;
  for (const DistWorkerRow& w : dist.metrics.workers) {
    assigned += w.segments_assigned;
    done += w.counters.segments_done;
  }
  EXPECT_EQ(assigned, kSegments);
  EXPECT_EQ(done, kSegments);
  EXPECT_EQ(dist.state_blob, harness.RunInline().state_blob);
}

TEST_F(DistDifferential, KilledWorkerRespawnsAndConvergesWithoutCheckpoint) {
  ScopedWorkerHarness harness = MakeHarness(/*seed=*/3);
  FaultInjector injector(FaultPlan::ParseOrDie("seed=7,kill-shard=1@2"));
  DistOptions opt;
  opt.num_workers = 4;
  opt.fault_injector = &injector;
  ScopedWorkerHarness::Result dist = harness.RunDist(opt);
  // The respawn re-ingests worker 1's block from scratch and still lands on
  // the inline bytes.
  EXPECT_EQ(dist.state_blob, harness.RunInline().state_blob);
  EXPECT_EQ(dist.metrics.workers[1].respawns, 1u);
  EXPECT_EQ(dist.metrics.TotalRespawns(), 1u);
  EXPECT_EQ(dist.metrics.WorkersQuarantined(), 0u);
  EXPECT_EQ(dist.metrics.TotalEdgesProcessed(), kEdges);
}

TEST_F(DistDifferential, KilledWorkerResumesFromCheckpointAndConverges) {
  ScopedWorkerHarness harness = MakeHarness(/*seed=*/4);
  // Worker 1 owns 4 segments (one ~1250-edge batch each); dying before its
  // third batch lands mid-block, past two per-segment checkpoints.
  FaultInjector injector(FaultPlan::ParseOrDie("seed=7,kill-shard=1@2"));
  DistOptions opt;
  opt.num_workers = 4;
  opt.checkpoint_every = 1;
  opt.checkpoint_dir = harness.CheckpointDir();
  opt.fault_injector = &injector;
  ScopedWorkerHarness::Result dist = harness.RunDist(opt);
  EXPECT_EQ(dist.state_blob, harness.RunInline().state_blob);
  const DistWorkerRow& w1 = dist.metrics.workers[1];
  EXPECT_EQ(w1.respawns, 1u);
  EXPECT_FALSE(w1.quarantined);
  // The respawned incarnation actually loaded the checkpoint rather than
  // restarting from scratch.
  EXPECT_EQ(w1.counters.checkpoints_loaded, 1u);
  EXPECT_GE(w1.counters.checkpoints_written, 1u);
  // Committed-prefix semantics: every segment landed exactly once, so the
  // shipped counters still account for exactly the corpus.
  EXPECT_EQ(dist.metrics.TotalEdgesProcessed(), kEdges);
}

TEST_F(DistDifferential, CheckpointedRunMatchesUncheckpointedByte) {
  ScopedWorkerHarness harness = MakeHarness(/*seed=*/5);
  DistOptions plain;
  plain.num_workers = 2;
  ScopedWorkerHarness::Result without = harness.RunDist(plain);
  DistOptions ckpt = plain;
  ckpt.checkpoint_every = 2;
  ckpt.checkpoint_dir = harness.CheckpointDir();
  ScopedWorkerHarness::Result with = harness.RunDist(ckpt);
  EXPECT_EQ(with.state_blob, without.state_blob);
  EXPECT_GT(with.metrics.TotalCheckpointsWritten(), 0u);
  EXPECT_EQ(without.metrics.TotalCheckpointsWritten(), 0u);
}

TEST_F(DistDifferential, CorruptFrameIsRejectedByCrcAndQuarantined) {
  ScopedWorkerHarness harness = MakeHarness(/*seed=*/6);
  MetricsRegistry registry;
  FaultInjector injector(FaultPlan::ParseOrDie("seed=7,corrupt-frame=2"),
                         &registry);
  DistOptions opt;
  opt.num_workers = 4;
  opt.fault_injector = &injector;
  ScopedWorkerHarness::Result dist = harness.RunDist(opt);
  const DistWorkerRow& w2 = dist.metrics.workers[2];
  EXPECT_TRUE(w2.quarantined);
  EXPECT_EQ(w2.crc_rejections, 1u);
  EXPECT_EQ(dist.metrics.WorkersQuarantined(), 1u);
  EXPECT_EQ(dist.metrics.frames_received, 3u);
  EXPECT_EQ(registry
                .GetCounter(LabeledName("faults_injected_total", "kind",
                                        FaultInjector::kFaultFrameCorruption))
                ->Value(),
            1u);
  // Quarantined rows ship zero counters: what the totals claim is exactly
  // what the merged state contains (3 of 4 worker blocks).
  EXPECT_LT(dist.metrics.TotalEdgesProcessed(), kEdges);
  EXPECT_EQ(w2.counters.edges_processed, 0u);
}

TEST_F(DistDifferential, CorruptMergeFingerprintLosesMajorityVote) {
  ScopedWorkerHarness harness = MakeHarness(/*seed=*/7);
  FaultInjector injector(FaultPlan::ParseOrDie("seed=7,corrupt-merge=0"));
  DistOptions opt;
  opt.num_workers = 4;
  opt.fault_injector = &injector;
  ScopedWorkerHarness::Result dist = harness.RunDist(opt);
  const DistWorkerRow& w0 = dist.metrics.workers[0];
  EXPECT_TRUE(w0.quarantined);
  EXPECT_TRUE(w0.fingerprint_corrupted);
  EXPECT_EQ(dist.metrics.FingerprintCorruptions(), 1u);
  EXPECT_EQ(dist.metrics.WorkersQuarantined(), 1u);
  // The surviving majority still merges to a valid state whose fingerprint
  // matches the inline configuration.
  EXPECT_EQ(dist.fingerprint, harness.RunInline().fingerprint);
}

TEST_F(DistDifferential, StreamFaultsInsideWorkersStayDeterministic) {
  // Duplicates injected inside the worker processes: two distributed runs
  // with the same plan must agree byte-for-byte (seed-replayability across
  // process boundaries), even though they cannot match the clean inline
  // pass.
  ScopedWorkerHarness harness = MakeHarness(/*seed=*/8);
  FaultInjector injector(FaultPlan::ParseOrDie("seed=11,dup=0.05"));
  DistOptions opt;
  opt.num_workers = 4;
  opt.fault_injector = &injector;
  ScopedWorkerHarness::Result first = harness.RunDist(opt);
  ScopedWorkerHarness::Result second = harness.RunDist(opt);
  EXPECT_EQ(first.state_blob, second.state_blob);
  EXPECT_GT(first.metrics.TotalEdgesProcessed(), kEdges);  // dups landed
  EXPECT_EQ(first.metrics.TotalEdgesProcessed(),
            second.metrics.TotalEdgesProcessed());
}

// Seed-replayable sweep over kill points and corruption targets; the
// default 4 trials keep tier-1 fast, the stress entry turns the same code
// up to 40 (STREAMKC_DIST_TRIALS).
TEST_F(DistDifferential, SeededFaultSweep) {
  const uint64_t trials = EnvScaledU64("STREAMKC_DIST_TRIALS", 4);
  for (uint64_t t = 0; t < trials; ++t) {
    ScopedWorkerHarness harness = MakeHarness(/*seed=*/100 + t);
    ScopedWorkerHarness::Result inline_ref = harness.RunInline();
    FaultPlan plan;
    plan.seed = t + 1;
    plan.kill_shard = static_cast<uint32_t>(t % 4);
    plan.kill_after_batches = t % 3;
    FaultInjector injector(plan);
    DistOptions opt;
    opt.num_workers = 4;
    opt.merge_arity = t % 2 == 0 ? 2 : 4;
    opt.fault_injector = &injector;
    if (t % 2 == 0) {
      opt.checkpoint_every = 1;
      opt.checkpoint_dir = harness.CheckpointDir();
    }
    ScopedWorkerHarness::Result dist = harness.RunDist(opt);
    EXPECT_EQ(dist.state_blob, inline_ref.state_blob)
        << "trial=" << t << " plan=" << plan.ToSpec();
    EXPECT_EQ(dist.metrics.TotalRespawns(), 1u) << "trial=" << t;
    EXPECT_EQ(dist.metrics.WorkersQuarantined(), 0u) << "trial=" << t;
  }
}

TEST(DistReductionTree, TreeMergeMatchesFlatFoldAndReportsShape) {
  CoverageSketchState::Config config;
  auto make_states = [&] {
    std::vector<std::unique_ptr<CoverageSketchState>> states;
    for (uint32_t i = 0; i < 9; ++i) {
      auto s = std::make_unique<CoverageSketchState>(config);
      for (const Edge& e : SyntheticEdges(500, /*seed=*/i)) s->Process(e);
      states.push_back(std::move(s));
    }
    return states;
  };
  auto flat = make_states();
  for (size_t i = 1; i < flat.size(); ++i) flat[0]->Merge(*flat[i]);
  std::ostringstream flat_blob;
  flat[0]->Save(flat_blob);

  for (uint32_t arity : {2u, 3u, 4u, 9u}) {
    auto states = make_states();
    MergeTreeStats stats;
    size_t root = TreeMerge(&states, arity, &stats);
    ASSERT_EQ(root, 0u);
    std::ostringstream blob;
    states[root]->Save(blob);
    EXPECT_EQ(blob.str(), flat_blob.str()) << "arity=" << arity;
    EXPECT_EQ(stats.depth, MergeTreeDepth(9, arity)) << "arity=" << arity;
    EXPECT_EQ(stats.merges, 8u) << "arity=" << arity;  // always N-1 merges
  }
}

TEST(DistReductionTree, SkipsQuarantinedSlotsAndHandlesAllNull) {
  CoverageSketchState::Config config;
  std::vector<std::unique_ptr<CoverageSketchState>> states;
  for (uint32_t i = 0; i < 4; ++i) {
    states.push_back(i == 1 ? nullptr
                            : std::make_unique<CoverageSketchState>(config));
  }
  MergeTreeStats stats;
  EXPECT_EQ(TreeMerge(&states, 2, &stats), 0u);
  EXPECT_EQ(stats.merges, 2u);  // three survivors -> two merges

  std::vector<std::unique_ptr<CoverageSketchState>> empty(3);
  EXPECT_EQ(TreeMerge(&empty, 2, nullptr), SIZE_MAX);
}

}  // namespace
}  // namespace streamkc
