#include "offline/sketch_greedy.h"

#include <gtest/gtest.h>

#include <set>

#include "test_util.h"

namespace streamkc {
namespace {

SketchGreedy MakeAndFeed(const SetSystem& sys, uint64_t k, uint64_t seed,
                         ArrivalOrder order = ArrivalOrder::kRandom,
                         uint32_t num_mins = 64) {
  SketchGreedy sg({.k = k, .num_mins = num_mins, .seed = seed});
  VectorEdgeStream stream = sys.MakeStream(order, seed);
  FeedStream(stream, sg);
  return sg;
}

TEST(SketchGreedy, ExactOnTinyInstance) {
  // With few distinct elements per set the KMV sketches are exact and the
  // algorithm reduces to plain greedy.
  SetSystem sys(10, {{0, 1}, {2, 3, 4, 5}, {5, 6}, {0}});
  SketchGreedy sg = MakeAndFeed(sys, 2, 1);
  CoverSolution sol = sg.Finalize();
  EXPECT_EQ(sol.coverage, 6u);  // {2,3,4,5} then {0,1}
  EXPECT_EQ(sol.sets.size(), 2u);
  EXPECT_EQ(sys.CoverageOf(sol.sets), 6u);
}

TEST(SketchGreedy, DuplicateEdgesHarmless) {
  SetSystem sys(6, {{0, 1, 2}, {3, 4}});
  SketchGreedy sg({.k = 2, .seed = 3});
  VectorEdgeStream stream = sys.MakeStream(ArrivalOrder::kRandom, 1);
  FeedStream(stream, sg);
  stream.Reset();
  FeedStream(stream, sg);  // every edge twice
  EXPECT_EQ(sg.Finalize().coverage, 5u);
}

TEST(SketchGreedy, OrderOblivious) {
  auto inst = RandomUniform(100, 400, 10, 5);
  auto cov = [&](ArrivalOrder order) {
    return MakeAndFeed(inst.system, 8, 42, order).Finalize().coverage;
  };
  uint64_t random_cov = cov(ArrivalOrder::kRandom);
  EXPECT_EQ(random_cov, cov(ArrivalOrder::kSetContiguous));
  EXPECT_EQ(random_cov, cov(ArrivalOrder::kElementContiguous));
}

// The headline contract: constant factor vs greedy, across seeds and
// families — the 1/(1 − 1/e − ε) regime.
class SketchGreedyQuality : public ::testing::TestWithParam<int> {};

TEST_P(SketchGreedyQuality, WithinEpsilonOfGreedy) {
  int seed = GetParam();
  auto inst = ZipfFrequency(300, 1000, 14, 0.9, 1000 + seed);
  const uint64_t k = 12;
  SketchGreedy sg = MakeAndFeed(inst.system, k, seed);
  CoverSolution sketched = sg.Finalize();
  uint64_t true_cov = inst.system.CoverageOf(sketched.sets);
  uint64_t greedy_cov = GreedyCoverage(inst.system, k);
  // True coverage of the sketched pick within 25% of exact greedy.
  EXPECT_GE(static_cast<double>(true_cov), 0.75 * static_cast<double>(greedy_cov));
  // And the reported (sketched) coverage is (1±0.35)-accurate vs its truth.
  EXPECT_NEAR(static_cast<double>(sketched.coverage),
              static_cast<double>(true_cov), 0.35 * static_cast<double>(true_cov));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SketchGreedyQuality, ::testing::Range(1, 9));

TEST(SketchGreedy, MoreMinsSharperSolution) {
  auto inst = PlantedCover(200, 2000, 10, 0.5, 8, 7);
  uint64_t coarse =
      inst.system.CoverageOf(MakeAndFeed(inst.system, 10, 9,
                                         ArrivalOrder::kRandom, 16)
                                 .Finalize()
                                 .sets);
  uint64_t fine =
      inst.system.CoverageOf(MakeAndFeed(inst.system, 10, 9,
                                         ArrivalOrder::kRandom, 256)
                                 .Finalize()
                                 .sets);
  EXPECT_GE(fine + 100, coarse);  // finer sketches should not be worse
}

TEST(SketchGreedy, SpaceLinearInM) {
  auto small_inst = RandomUniform(100, 400, 8, 3);
  auto big_inst = RandomUniform(800, 400, 8, 3);
  size_t small = MakeAndFeed(small_inst.system, 5, 1).MemoryBytes();
  size_t big = MakeAndFeed(big_inst.system, 5, 1).MemoryBytes();
  EXPECT_GE(big, 6 * small);
  EXPECT_LE(big, 12 * small);
}

TEST(SketchGreedy, MaxSetsSafetyValve) {
  auto inst = RandomUniform(200, 100, 4, 11);
  SketchGreedy sg({.k = 5, .num_mins = 16, .max_sets = 50, .seed = 2});
  VectorEdgeStream stream = inst.system.MakeStream(ArrivalOrder::kRandom, 1);
  FeedStream(stream, sg);
  EXPECT_LE(sg.num_tracked_sets(), 50u);
  EXPECT_LE(sg.Finalize().sets.size(), 5u);
}

TEST(SketchGreedy, EmptyStream) {
  SketchGreedy sg({.k = 3, .seed = 1});
  CoverSolution sol = sg.Finalize();
  EXPECT_TRUE(sol.sets.empty());
  EXPECT_EQ(sol.coverage, 0u);
}

TEST(SketchGreedy, ReturnsDistinctSets) {
  auto inst = ZipfFrequency(150, 500, 10, 1.2, 13);
  SketchGreedy sg = MakeAndFeed(inst.system, 20, 21);
  CoverSolution sol = sg.Finalize();
  std::set<SetId> unique(sol.sets.begin(), sol.sets.end());
  EXPECT_EQ(unique.size(), sol.sets.size());
}

TEST(SketchGreedyMerge, ShardedEqualsCentralized) {
  auto inst = ZipfFrequency(200, 800, 12, 1.0, 31);
  auto edges = inst.system.MaterializeEdges();
  SketchGreedy::Config cfg{.k = 10, .num_mins = 64, .max_sets = 1u << 20,
                           .seed = 5};
  SketchGreedy a(cfg), b(cfg), c(cfg), whole(cfg);
  for (size_t i = 0; i < edges.size(); ++i) {
    switch (i % 3) {
      case 0: a.Process(edges[i]); break;
      case 1: b.Process(edges[i]); break;
      default: c.Process(edges[i]); break;
    }
    whole.Process(edges[i]);
  }
  a.Merge(b);
  a.Merge(c);
  CoverSolution merged = a.Finalize();
  CoverSolution central = whole.Finalize();
  EXPECT_EQ(merged.sets, central.sets);
  EXPECT_EQ(merged.coverage, central.coverage);
}

TEST(SketchGreedyMerge, MismatchedConfigAborts) {
  SketchGreedy a({.k = 5, .num_mins = 64, .seed = 1});
  SketchGreedy b({.k = 5, .num_mins = 32, .seed = 1});
  SketchGreedy c({.k = 5, .num_mins = 64, .seed = 2});
  EXPECT_DEATH(a.Merge(b), "CHECK failed");
  EXPECT_DEATH(a.Merge(c), "CHECK failed");
}

}  // namespace
}  // namespace streamkc
