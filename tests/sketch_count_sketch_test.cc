#include "sketch/count_sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace streamkc {
namespace {

TEST(CountSketch, EmptyQueryIsZeroish) {
  CountSketch cs({.depth = 5, .width = 64, .seed = 1});
  EXPECT_DOUBLE_EQ(cs.PointQuery(42), 0.0);
}

TEST(CountSketch, SingleItemExact) {
  CountSketch cs({.depth = 5, .width = 64, .seed = 2});
  for (int i = 0; i < 500; ++i) cs.Add(9);
  EXPECT_DOUBLE_EQ(cs.PointQuery(9), 500.0);
}

TEST(CountSketch, LinearInDelta) {
  CountSketch a({.depth = 3, .width = 32, .seed = 3});
  CountSketch b({.depth = 3, .width = 32, .seed = 3});
  a.Add(4, 25);
  for (int i = 0; i < 25; ++i) b.Add(4);
  EXPECT_DOUBLE_EQ(a.PointQuery(4), b.PointQuery(4));
}

TEST(CountSketch, HeavyItemAmongNoise) {
  CountSketch cs({.depth = 5, .width = 256, .seed = 4});
  // Heavy: 1000 on id 0; noise: 2000 distinct unit items.
  cs.Add(0, 1000);
  for (uint64_t i = 1; i <= 2000; ++i) cs.Add(i);
  // Error bound ~ sqrt(F2_noise/width) = sqrt(2000/256) ≈ 2.8 per row.
  EXPECT_NEAR(cs.PointQuery(0), 1000.0, 50.0);
}

TEST(CountSketch, UnseenItemNearZero) {
  CountSketch cs({.depth = 5, .width = 256, .seed = 5});
  for (uint64_t i = 0; i < 2000; ++i) cs.Add(i);
  EXPECT_NEAR(cs.PointQuery(999999), 0.0, 50.0);
}

TEST(CountSketch, WiderIsMoreAccurate) {
  auto avg_err = [](uint32_t width) {
    double total = 0;
    const int kTrials = 20;
    for (int t = 0; t < kTrials; ++t) {
      CountSketch cs({.depth = 1, .width = width, .seed = 100u + t});
      cs.Add(0, 100);
      for (uint64_t i = 1; i <= 5000; ++i) cs.Add(i);
      total += std::abs(cs.PointQuery(0) - 100.0);
    }
    return total / kTrials;
  };
  EXPECT_LT(avg_err(1024), avg_err(16));
}

TEST(CountSketch, MedianRobustToOneBadRow) {
  // With depth 5 the median tolerates outlier rows; typical error stays near
  // the per-row bound even with colliding noise.
  CountSketch cs({.depth = 5, .width = 128, .seed = 6});
  cs.Add(7, 300);
  for (uint64_t i = 100; i < 3000; ++i) cs.Add(i, 2);
  EXPECT_NEAR(cs.PointQuery(7), 300.0, 120.0);
}

TEST(CountSketch, NegativeDeltasSupported) {
  CountSketch cs({.depth = 5, .width = 64, .seed = 7});
  cs.Add(3, 50);
  cs.Add(3, -20);
  EXPECT_DOUBLE_EQ(cs.PointQuery(3), 30.0);
}

TEST(CountSketch, DeterministicInSeed) {
  CountSketch a({.depth = 3, .width = 64, .seed = 8});
  CountSketch b({.depth = 3, .width = 64, .seed = 8});
  for (uint64_t i = 0; i < 1000; ++i) {
    a.Add(i % 91);
    b.Add(i % 91);
  }
  for (uint64_t i = 0; i < 91; ++i) {
    EXPECT_DOUBLE_EQ(a.PointQuery(i), b.PointQuery(i));
  }
}

TEST(CountSketch, MemoryMatchesGrid) {
  CountSketch cs({.depth = 4, .width = 128, .seed = 9});
  EXPECT_GE(cs.MemoryBytes(), 4 * 128 * sizeof(int64_t));
  EXPECT_LE(cs.MemoryBytes(), 4 * 128 * sizeof(int64_t) + 1024);
}

}  // namespace
}  // namespace streamkc
