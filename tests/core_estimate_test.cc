#include "core/estimate_max_cover.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace streamkc {
namespace {

EstimateMaxCover MakeEstimator(const SetSystem& sys, uint64_t k, double alpha,
                               uint64_t seed) {
  EstimateMaxCover::Config c;
  c.params = Params::Practical(sys.num_sets(), sys.num_elements(), k, alpha);
  c.seed = seed;
  return EstimateMaxCover(c);
}

TEST(EstimateMaxCover, TrivialBranchWhenKAlphaExceedsM) {
  auto inst = RandomUniform(64, 512, 8, 1);
  EstimateMaxCover est = MakeEstimator(inst.system, 16, 8, 1);  // kα=128 ≥ 64
  EXPECT_TRUE(est.trivial_mode());
  FeedSystem(inst.system, ArrivalOrder::kRandom, 1, est);
  EstimateOutcome out = est.Finalize();
  EXPECT_TRUE(out.feasible);
  EXPECT_EQ(out.source, "trivial");
  double covered = static_cast<double>(inst.system.CoveredUniverseSize());
  // L0(covered)/α, with KMV error margin.
  EXPECT_NEAR(out.estimate, covered / 8.0, covered / 8.0 * 0.4);
  // n/α lower-bounds OPT: OPT covers at least covered·k/m = covered/4.
  EXPECT_LE(out.estimate, OptUpperBound(inst.system, 16));
}

TEST(EstimateMaxCover, OracleGridSkipsTinyGuesses) {
  auto inst = RandomUniform(2048, 4096, 8, 2);
  EstimateMaxCover est = MakeEstimator(inst.system, 8, 8, 2);
  EXPECT_FALSE(est.trivial_mode());
  // Guesses z = 4096, 1024, 256, 64, 16 (step 4, floor 8) × 2 reps.
  EXPECT_EQ(est.num_oracles(), 10u);
}

// The headline contract (Theorem 3.1 shape, practical constants): the
// estimate is within [OPT/(c·α), OPT] across families and seeds.
struct EstCase {
  const char* name;
  GeneratedInstance (*make)(uint64_t seed);
  uint64_t k;
};

GeneratedInstance EstPlanted(uint64_t seed) {
  return PlantedCover(2048, 4096, 32, 0.5, 6, seed);
}
GeneratedInstance EstLarge(uint64_t seed) {
  return LargeSetFamily(2048, 2048, 4, seed);
}
GeneratedInstance EstSmall(uint64_t seed) {
  return SmallSetFamily(2048, 4096, 64, seed);
}
GeneratedInstance EstCommon(uint64_t seed) {
  return CommonElementFamily(1024, 2048, 8, 4.0, 1024, seed);
}
GeneratedInstance EstGraph(uint64_t seed) {
  return GraphNeighborhoods(2048, 24.0, seed);
}

class EstimateQuality : public ::testing::TestWithParam<EstCase> {};

TEST_P(EstimateQuality, WithinAlphaOfOpt) {
  const EstCase& tc = GetParam();
  const double alpha = 8;
  auto inst = tc.make(77);
  double greedy = static_cast<double>(GreedyCoverage(inst.system, tc.k));
  double opt_ub = OptUpperBound(inst.system, tc.k);
  EstimateMaxCover est = MakeEstimator(inst.system, tc.k, alpha, 1234);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 5, est);
  EstimateOutcome out = est.Finalize();
  ASSERT_TRUE(out.feasible) << tc.name;
  EXPECT_GT(out.estimate, 0.0) << tc.name;
  // Lower bound property: never exceeds OPT (up to sketch slack).
  EXPECT_LE(out.estimate, opt_ub * 1.2) << tc.name;
  // α-approximation with practical constants (measured headroom ≤ ~5.5α/8).
  EXPECT_GE(out.estimate, greedy / (1.5 * alpha)) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, EstimateQuality,
    ::testing::Values(EstCase{"planted", EstPlanted, 32},
                      EstCase{"large", EstLarge, 8},
                      EstCase{"small", EstSmall, 64},
                      EstCase{"common", EstCommon, 8},
                      EstCase{"graph", EstGraph, 48}),
    [](const ::testing::TestParamInfo<EstCase>& info) {
      return info.param.name;
    });

TEST(EstimateMaxCover, TighterAlphaTighterEstimate) {
  // Smaller α must not give a worse estimate (modulo noise): compare α = 4
  // against α = 16 on the same instance.
  auto inst = EstPlanted(3);
  auto run = [&](double alpha) {
    EstimateMaxCover est = MakeEstimator(inst.system, 32, alpha, 55);
    FeedSystem(inst.system, ArrivalOrder::kRandom, 6, est);
    return est.Finalize().estimate;
  };
  EXPECT_GE(run(4) * 1.5, run(16));
}

TEST(EstimateMaxCover, OrderInvariance) {
  auto inst = EstLarge(9);
  auto run = [&](ArrivalOrder order) {
    EstimateMaxCover est = MakeEstimator(inst.system, 8, 8, 77);
    FeedSystem(inst.system, order, 8, est);
    return est.Finalize().estimate;
  };
  EXPECT_DOUBLE_EQ(run(ArrivalOrder::kRandom),
                   run(ArrivalOrder::kSetContiguous));
}

TEST(EstimateMaxCover, DeterministicInSeed) {
  auto inst = EstPlanted(11);
  auto run = [&] {
    EstimateMaxCover est = MakeEstimator(inst.system, 32, 8, 888);
    FeedSystem(inst.system, ArrivalOrder::kRandom, 9, est);
    return est.Finalize().estimate;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(EstimateMaxCover, MemoryIndependentOfStreamLength) {
  auto inst_small = PlantedCover(1024, 2048, 16, 0.5, 4, 13);
  auto inst_big = PlantedCover(1024, 2048, 16, 0.5, 24, 13);  // 6× the edges
  auto run = [&](const SetSystem& sys) {
    EstimateMaxCover est = MakeEstimator(sys, 16, 8, 99);
    FeedSystem(sys, ArrivalOrder::kRandom, 1, est);
    return est.MemoryBytes();
  };
  size_t small = run(inst_small.system);
  size_t big = run(inst_big.system);
  EXPECT_LE(static_cast<double>(big), static_cast<double>(small) * 1.6);
}

}  // namespace
}  // namespace streamkc
