// Statistical guarantee sweep: EstimateMaxCover's α-approximation is a
// probabilistic claim, so it is tested as one — many seeds per
// (family, α) cell, with the α-bound asserted against the greedy/OPT
// bracket and a bounded expected failure rate per cell. Every failing seed
// is printed so the exact instance replays deterministically.
//
// Seed counts scale with STREAMKC_SWEEP_SEEDS (default keeps the tier-1 run
// fast; ctest -C stress raises it to ISSUE-scale sweeps) and the base seed
// with STREAMKC_SWEEP_BASE_SEED (set it to a printed failing seed with
// STREAMKC_SWEEP_SEEDS=1 to replay just that instance).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <tuple>

#include "core/estimate_max_cover.h"
#include "test_util.h"

namespace streamkc {
namespace {

// One cell of the sweep grid: (family, alpha) at a fixed instance shape.
class StatisticalSweep
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(StatisticalSweep, AlphaBoundHoldsAcrossSeeds) {
  const std::string family = std::get<0>(GetParam());
  const double alpha = std::get<1>(GetParam());
  const uint64_t m = 256, n = 1024, k = 16;
  const uint64_t num_seeds = EnvScaledU64("STREAMKC_SWEEP_SEEDS", 8);
  const uint64_t base_seed = EnvScaledU64("STREAMKC_SWEEP_BASE_SEED", 5000);

  uint64_t failures = 0;
  std::string failing_seeds;
  for (uint64_t i = 0; i < num_seeds; ++i) {
    const uint64_t seed = base_seed + i;
    GeneratedInstance inst = MakeFamilyInstance(family, m, n, k, seed);
    const double greedy = static_cast<double>(GreedyCoverage(inst.system, k));
    EstimateMaxCover::Config c;
    c.params = Params::Practical(m, n, k, alpha);
    c.seed = SplitMix64(seed ^ 0xA1FA);
    EstimateMaxCover est(c);
    FeedSystem(inst.system, ArrivalOrder::kRandom, seed, est);
    EstimateOutcome out = est.Finalize();
    const bool ok = out.feasible && out.estimate >= greedy / (1.5 * alpha) &&
                    out.estimate <= OptUpperBound(inst.system, k) * 1.2;
    if (!ok) {
      ++failures;
      failing_seeds += std::to_string(seed) + " ";
      std::printf("[ sweep ] FAIL cell(%s, alpha=%.0f) seed=%llu "
                  "estimate=%.0f greedy=%.0f feasible=%d "
                  "(replay: STREAMKC_SWEEP_BASE_SEED=%llu "
                  "STREAMKC_SWEEP_SEEDS=1)\n",
                  family.c_str(), alpha, (unsigned long long)seed,
                  out.estimate, greedy, out.feasible ? 1 : 0,
                  (unsigned long long)seed);
    }
  }
  // The guarantee is with-high-probability, not almost-sure: a sweep is
  // allowed a small failure budget (10% + 1), and anything beyond it means
  // the estimator misses its α-factor systematically, not unluckily.
  const uint64_t allowed = num_seeds / 10 + 1;
  EXPECT_LE(failures, allowed)
      << "cell(" << family << ", alpha=" << alpha << "): " << failures << "/"
      << num_seeds << " seeds broke the alpha-bound; failing seeds: "
      << failing_seeds;
}

INSTANTIATE_TEST_SUITE_P(
    Cells, StatisticalSweep,
    ::testing::Combine(::testing::Values("uniform", "zipf", "planted"),
                       ::testing::Values(4.0, 8.0)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, double>>& info) {
      return std::string(std::get<0>(info.param)) + "_alpha" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

}  // namespace
}  // namespace streamkc
