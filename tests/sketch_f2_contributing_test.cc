#include "sketch/f2_contributing.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace streamkc {
namespace {

bool ContainsAnyOf(const std::vector<ContributingCoordinate>& out,
                   uint64_t lo, uint64_t hi) {
  return std::any_of(out.begin(), out.end(), [lo, hi](const auto& cc) {
    return cc.id >= lo && cc.id < hi;
  });
}

TEST(F2Contributing, EmptyStream) {
  F2Contributing fc({.gamma = 0.1, .max_class_size = 64, .domain_size = 1000,
                     .seed = 1});
  EXPECT_TRUE(fc.Extract().empty());
}

TEST(F2Contributing, LevelCountMatchesClassBound) {
  // Full-rate levels collapse into one: with sample_factor·log2(domain) ≈
  // 120, guesses 2^0..2^6 all sample at rate 1 and share a single level.
  F2Contributing fc({.gamma = 0.1, .max_class_size = 64, .domain_size = 1000,
                     .seed = 1});
  EXPECT_EQ(fc.num_levels(), 1u);
  F2Contributing fc1({.gamma = 0.1, .max_class_size = 1, .domain_size = 1000,
                      .seed = 1});
  EXPECT_EQ(fc1.num_levels(), 1u);
  // Once guesses exceed the full-rate regime, sub-sampled levels appear:
  // guesses up to 2^14 with rate 120/2^i < 1 for i ≥ 7 → 1 + 8 levels.
  F2Contributing fc2({.gamma = 0.1, .max_class_size = 1 << 14,
                      .domain_size = 1000, .seed = 1});
  EXPECT_GT(fc2.num_levels(), 5u);
  EXPECT_LT(fc2.num_levels(), 15u);
}

TEST(F2Contributing, SingleHugeCoordinate) {
  // A class of size 1 that is 1-contributing: must be found.
  F2Contributing fc({.gamma = 0.25, .max_class_size = 16, .domain_size = 4096,
                     .seed = 2});
  fc.Add(99, 200);
  for (uint64_t i = 0; i < 300; ++i) fc.Add(i + 1000);
  auto out = fc.Extract();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front().id, 99u);
  EXPECT_GE(out.front().estimate, 100.0);
  EXPECT_LE(out.front().estimate, 300.0);
}

TEST(F2Contributing, FindsMidSizeContributingClass) {
  // Class of 64 coordinates with a = 32 each: |R|·a² = 65536.
  // Background: 4096 units. The class carries ~94% of F2: heavily
  // γ-contributing for γ = 0.1.
  F2Contributing fc({.gamma = 0.1, .max_class_size = 256, .domain_size = 8192,
                     .seed = 3});
  for (uint64_t j = 0; j < 64; ++j) fc.Add(5000 + j, 32);
  for (uint64_t i = 0; i < 4096; ++i) fc.Add(i);
  auto out = fc.Extract();
  ASSERT_TRUE(ContainsAnyOf(out, 5000, 5064));
  // The representative's estimate must be (1 ± 1/2)-accurate.
  for (const auto& cc : out) {
    if (cc.id >= 5000 && cc.id < 5064) {
      EXPECT_GE(cc.estimate, 16.0);
      EXPECT_LE(cc.estimate, 48.0);
    }
  }
}

TEST(F2Contributing, FindsLargeClassViaSampling) {
  // Class of 1024 coordinates, a = 12 each: class F2 ≈ 147K vs. 2048 unit
  // noise. Deep subsampling levels are the only way to see these: at full
  // rate each coordinate sits below the heavy-hitter noise floor, while at
  // rate ~1/64 the survivors dominate the sampled F2. Probabilistic: demand
  // ≥ 4/5 across seeds.
  int ok = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    F2Contributing fc({.gamma = 0.2, .max_class_size = 4096,
                       .domain_size = 16384, .seed = 40 + seed});
    for (uint64_t j = 0; j < 1024; ++j) fc.Add(8000 + j, 12);
    for (uint64_t i = 0; i < 2048; ++i) fc.Add(i);
    ok += ContainsAnyOf(fc.Extract(), 8000, 9024);
  }
  EXPECT_GE(ok, 4);
}

TEST(F2Contributing, SucceedsAcrossSeeds) {
  // Theorem 2.11 is probabilistic; demand ≥ 4/5 success over seeds.
  int ok = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    F2Contributing fc({.gamma = 0.2, .max_class_size = 512,
                       .domain_size = 8192, .seed = 10 + seed});
    for (uint64_t j = 0; j < 128; ++j) fc.Add(4000 + j, 16);
    for (uint64_t i = 0; i < 1024; ++i) fc.Add(i);
    ok += ContainsAnyOf(fc.Extract(), 4000, 4128);
  }
  EXPECT_GE(ok, 4);
}

TEST(F2Contributing, RespectsClassSizeBound) {
  // Remark 4.12: with max_class_size = 4, a contributing class of 512
  // coordinates should generally NOT be caught (no sampling level is sparse
  // enough), while a singleton class is.
  F2Contributing fc({.gamma = 0.2, .max_class_size = 4, .domain_size = 8192,
                     .sample_factor = 1.0, .seed = 5});
  fc.Add(7, 250);                                     // singleton class
  for (uint64_t j = 0; j < 512; ++j) fc.Add(1000 + j, 30);  // big class
  auto out = fc.Extract();
  EXPECT_TRUE(ContainsAnyOf(out, 7, 8));
}

TEST(F2Contributing, EstimatePreservedUnderSampling) {
  // Sampling is per-coordinate: a survivor's estimated frequency reflects
  // ALL its updates, not a sampled fraction.
  F2Contributing fc({.gamma = 0.3, .max_class_size = 64, .domain_size = 4096,
                     .seed = 6});
  for (int rep = 0; rep < 50; ++rep) {
    for (uint64_t j = 0; j < 8; ++j) fc.Add(100 + j);
  }
  auto out = fc.Extract();
  ASSERT_FALSE(out.empty());
  for (const auto& cc : out) {
    EXPECT_GE(cc.estimate, 25.0);
    EXPECT_LE(cc.estimate, 75.0);
  }
}

TEST(F2Contributing, SpaceScalesWithGammaInverse) {
  F2Contributing coarse({.gamma = 0.2, .max_class_size = 64,
                         .domain_size = 4096, .seed = 7});
  F2Contributing fine({.gamma = 0.002, .max_class_size = 64,
                       .domain_size = 4096, .seed = 7});
  EXPECT_GT(fine.MemoryBytes(), 10 * coarse.MemoryBytes());
}

TEST(F2Contributing, DeterministicInSeed) {
  auto run = [](uint64_t seed) {
    F2Contributing fc({.gamma = 0.1, .max_class_size = 64,
                       .domain_size = 2048, .seed = seed});
    for (uint64_t j = 0; j < 32; ++j) fc.Add(j, 10);
    auto out = fc.Extract();
    return out.size();
  };
  EXPECT_EQ(run(42), run(42));
}

}  // namespace
}  // namespace streamkc
