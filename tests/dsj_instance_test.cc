#include "setsys/dsj_instance.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "stream/stream_stats.h"

namespace streamkc {
namespace {

TEST(DsjInstance, YesCaseDisjoint) {
  DsjInstance dsj = MakeDsjInstance(200, 8, /*no_instance=*/false, 1);
  std::set<uint64_t> seen;
  for (const auto& t : dsj.player_items) {
    for (uint64_t item : t) {
      EXPECT_TRUE(seen.insert(item).second) << "item " << item << " repeated";
    }
  }
}

TEST(DsjInstance, NoCaseUniqueIntersection) {
  DsjInstance dsj = MakeDsjInstance(200, 8, /*no_instance=*/true, 2);
  // The common item is in all players' sets.
  for (const auto& t : dsj.player_items) {
    EXPECT_TRUE(std::find(t.begin(), t.end(), dsj.common_item) != t.end());
  }
  // And it is the only such item.
  std::map<uint64_t, int> count;
  for (const auto& t : dsj.player_items) {
    for (uint64_t item : t) ++count[item];
  }
  for (const auto& [item, c] : count) {
    if (item != dsj.common_item) {
      EXPECT_EQ(c, 1) << "item " << item;
    }
  }
}

TEST(DsjInstance, AllItemsAssigned) {
  DsjInstance dsj = MakeDsjInstance(100, 4, false, 3);
  std::set<uint64_t> seen;
  for (const auto& t : dsj.player_items) seen.insert(t.begin(), t.end());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(DsjReduction, Claim53NoCaseOptIsR) {
  // Claim 5.3: No instance → optimal 1-cover covers all r elements.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    DsjInstance dsj = MakeDsjInstance(128, 16, true, seed);
    EXPECT_EQ(DsjReducedOptimalCoverage(dsj), 16u);
  }
}

TEST(DsjReduction, Claim54YesCaseOptIsOne) {
  // Claim 5.4: Yes instance → every reduced set is a singleton.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    DsjInstance dsj = MakeDsjInstance(128, 16, false, seed);
    EXPECT_EQ(DsjReducedOptimalCoverage(dsj), 1u);
  }
}

TEST(DsjReduction, EdgeStreamShape) {
  DsjInstance dsj = MakeDsjInstance(100, 5, true, 7);
  auto edges = DsjToMaxCoverEdges(dsj);
  // One edge per (player, item) incidence: 100 - 1 items assigned once plus
  // the common item in all 5 players = 99 + 5.
  EXPECT_EQ(edges.size(), 104u);
  VectorEdgeStream stream(std::move(edges));
  StreamStats stats = ComputeStreamStats(stream);
  EXPECT_EQ(stats.num_distinct_elements, 5u);   // one element per player
  EXPECT_EQ(stats.num_distinct_sets, 100u);     // one set per item
  EXPECT_EQ(stats.MaxSetSize(), 5u);            // the common item's set
}

TEST(DsjReduction, YesStreamMaxSetSizeOne) {
  DsjInstance dsj = MakeDsjInstance(100, 5, false, 9);
  auto edges = DsjToMaxCoverEdges(dsj);
  VectorEdgeStream stream(std::move(edges));
  EXPECT_EQ(ComputeStreamStats(stream).MaxSetSize(), 1u);
}

TEST(DsjInstance, Deterministic) {
  DsjInstance a = MakeDsjInstance(64, 4, true, 5);
  DsjInstance b = MakeDsjInstance(64, 4, true, 5);
  EXPECT_EQ(a.common_item, b.common_item);
  EXPECT_EQ(a.player_items, b.player_items);
}

}  // namespace
}  // namespace streamkc
