#include "hash/tabulation_hash.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace streamkc {
namespace {

TEST(TabulationHash, Deterministic) {
  TabulationHash h1(5), h2(5), h3(6);
  for (uint64_t x = 0; x < 200; ++x) EXPECT_EQ(h1.Map(x), h2.Map(x));
  int same = 0;
  for (uint64_t x = 0; x < 200; ++x) same += (h1.Map(x) == h3.Map(x));
  EXPECT_EQ(same, 0);
}

TEST(TabulationHash, AllBytePositionsMatter) {
  TabulationHash h(9);
  for (int byte = 0; byte < 8; ++byte) {
    uint64_t a = 0;
    uint64_t b = 1ULL << (8 * byte);
    EXPECT_NE(h.Map(a), h.Map(b)) << "byte " << byte;
  }
}

TEST(TabulationHash, RangeBounds) {
  TabulationHash h(11);
  for (uint64_t x = 0; x < 1000; ++x) EXPECT_LT(h.MapRange(x, 13), 13u);
}

TEST(TabulationHash, Uniformity) {
  TabulationHash h(13);
  const int kBuckets = 32, kDraws = 64000;
  std::vector<int> counts(kBuckets, 0);
  for (int x = 0; x < kDraws; ++x) ++counts[h.MapRange(x, kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 6 * std::sqrt(kDraws / kBuckets));
  }
}

TEST(TabulationHash, FewCollisionsOn64BitOutput) {
  TabulationHash h(17);
  std::set<uint64_t> seen;
  for (uint64_t x = 0; x < 100000; ++x) seen.insert(h.Map(x));
  EXPECT_EQ(seen.size(), 100000u);  // 64-bit collisions vanishingly unlikely
}

TEST(TabulationHash, MemoryIsEightTables) {
  TabulationHash h(1);
  EXPECT_EQ(h.MemoryBytes(), 8 * 256 * sizeof(uint64_t));
}

}  // namespace
}  // namespace streamkc
