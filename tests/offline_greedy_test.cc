#include "offline/greedy.h"

#include <gtest/gtest.h>

#include <cmath>

#include "offline/exact.h"
#include "setsys/generators.h"

namespace streamkc {
namespace {

TEST(Greedy, PicksLargestFirst) {
  SetSystem sys(10, {{0, 1}, {2, 3, 4, 5}, {6}});
  CoverSolution sol = GreedyMaxCover(sys, 1);
  ASSERT_EQ(sol.sets.size(), 1u);
  EXPECT_EQ(sol.sets[0], 1u);
  EXPECT_EQ(sol.coverage, 4u);
}

TEST(Greedy, MarginalGainNotSize) {
  // Set 1 is big but redundant after set 0; greedy must take set 2 second.
  SetSystem sys(10, {{0, 1, 2, 3, 4}, {0, 1, 2, 3}, {5, 6}});
  CoverSolution sol = GreedyMaxCover(sys, 2);
  ASSERT_EQ(sol.sets.size(), 2u);
  EXPECT_EQ(sol.sets[0], 0u);
  EXPECT_EQ(sol.sets[1], 2u);
  EXPECT_EQ(sol.coverage, 7u);
}

TEST(Greedy, StopsWhenNothingGained) {
  SetSystem sys(4, {{0, 1}, {0, 1}, {0}});
  CoverSolution sol = GreedyMaxCover(sys, 3);
  EXPECT_EQ(sol.sets.size(), 1u);
  EXPECT_EQ(sol.coverage, 2u);
}

TEST(Greedy, KLargerThanM) {
  SetSystem sys(4, {{0}, {1}});
  CoverSolution sol = GreedyMaxCover(sys, 10);
  EXPECT_EQ(sol.sets.size(), 2u);
  EXPECT_EQ(sol.coverage, 2u);
}

TEST(Greedy, EmptySystem) {
  SetSystem sys(4, {});
  CoverSolution sol = GreedyMaxCover(sys, 3);
  EXPECT_TRUE(sol.sets.empty());
  EXPECT_EQ(sol.coverage, 0u);
}

TEST(Greedy, CoverageMatchesSetSystemEvaluation) {
  auto inst = RandomUniform(40, 200, 12, 5);
  CoverSolution sol = GreedyMaxCover(inst.system, 8);
  EXPECT_EQ(sol.coverage, inst.system.CoverageOf(sol.sets));
}

// Property: greedy ≥ (1 - 1/e)·OPT on random instances small enough for the
// exact solver (Nemhauser-Wolsey-Fisher bound).
class GreedyVsExact : public ::testing::TestWithParam<int> {};

TEST_P(GreedyVsExact, ApproximationGuarantee) {
  int seed = GetParam();
  auto inst = RandomUniform(12, 60, 8, seed);
  const uint64_t k = 4;
  CoverSolution greedy = GreedyMaxCover(inst.system, k);
  CoverSolution exact = ExactMaxCover(inst.system, k);
  EXPECT_LE(greedy.coverage, exact.coverage);
  double bound = (1.0 - 1.0 / std::exp(1.0)) * static_cast<double>(exact.coverage);
  EXPECT_GE(static_cast<double>(greedy.coverage), std::floor(bound));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyVsExact, ::testing::Range(1, 13));

// Property: lazy greedy achieves the same coverage as plain greedy (tie
// breaking may differ, but coverage per round is identical for submodular
// objectives with consistent tie order; we assert equal coverage).
class LazyEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(LazyEquivalence, SameCoverageAsPlainGreedy) {
  int seed = GetParam();
  auto inst = RandomUniform(60, 300, 10, 100 + seed);
  for (uint64_t k : {1u, 5u, 20u}) {
    CoverSolution plain = GreedyMaxCover(inst.system, k);
    CoverSolution lazy = LazyGreedyMaxCover(inst.system, k);
    EXPECT_EQ(plain.coverage, lazy.coverage) << "k=" << k;
    EXPECT_EQ(lazy.coverage, inst.system.CoverageOf(lazy.sets));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyEquivalence, ::testing::Range(1, 9));

TEST(GreedyOnLists, MatchesSetSystemGreedy) {
  auto inst = RandomUniform(30, 100, 6, 9);
  CoverSolution a = GreedyMaxCover(inst.system, 5);
  CoverSolution b = GreedyOnLists(inst.system.sets(), 5);
  EXPECT_EQ(a.coverage, b.coverage);
  EXPECT_EQ(a.sets, b.sets);
}

TEST(GreedyOnLists, HandlesRaggedIds) {
  std::vector<std::vector<ElementId>> lists{{100, 200}, {200, 300, 400}, {}};
  CoverSolution sol = GreedyOnLists(lists, 2);
  EXPECT_EQ(sol.coverage, 4u);
}

TEST(Greedy, MonotoneInK) {
  auto inst = RandomUniform(50, 250, 10, 21);
  uint64_t prev = 0;
  for (uint64_t k = 1; k <= 20; k += 3) {
    CoverSolution sol = GreedyMaxCover(inst.system, k);
    EXPECT_GE(sol.coverage, prev);
    prev = sol.coverage;
  }
}

}  // namespace
}  // namespace streamkc
