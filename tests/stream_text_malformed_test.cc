// Malformed-input corpus for TextEdgeStream: every defect class the parser
// distinguishes, in both strict (stop with file:line error) and lenient
// (skip + count) modes, plus the negative-token regression — strtoull
// accepts "-1" and wraps it to 2⁶⁴−1, so '-' must be rejected explicitly.

#include "stream/text_stream.h"

#include <gtest/gtest.h>

#include <vector>

#include "obs/metrics.h"
#include "test_util.h"

namespace streamkc {
namespace {

class MalformedInputTest : public ::testing::Test {
 protected:
  std::string WriteFile(const char* name, const std::string& content) {
    return dir_.WriteFile(std::string(name) + ".txt", content);
  }

  ScopedTempDir dir_;
};

// One line per defect class, interleaved with good lines and skippable
// comment/blank lines.
constexpr char kCorpus[] =
    "# header comment\n"
    "1 10\n"
    "\n"
    "-1 7\n"          // negative set id (the strtoull wrap regression)
    "2 20\n"
    "3 -4\n"          // negative element id
    "banana 5\n"      // set id not a number
    "6 pear\n"        // element id not a number
    "7\n"             // missing element id
    "8 9 trailing\n"  // trailing garbage
    "99999999999999999999999999 1\n"  // set id overflows uint64 (ERANGE)
    "4 40\n";

constexpr int kGoodLines = 3;  // 1 10, 2 20, 4 40
constexpr int kBadLines = 7;

TEST_F(MalformedInputTest, StrictStopsAtFirstDefectWithContext) {
  std::string path = WriteFile("strict", kCorpus);
  TextEdgeStream stream(path);
  Edge e;
  ASSERT_TRUE(stream.Next(&e));
  EXPECT_EQ(e, (Edge{1, 10}));
  // Line 4 is the first defect; the stream stops there for good.
  EXPECT_FALSE(stream.Next(&e));
  EXPECT_FALSE(stream.ok());
  EXPECT_NE(stream.StatusMessage().find(path + ":4:"), std::string::npos);
  EXPECT_NE(stream.StatusMessage().find("negative set id"), std::string::npos);
  EXPECT_NE(stream.StatusMessage().find("\"-1 7\""), std::string::npos);
  EXPECT_FALSE(stream.Next(&e));  // stays stopped
  EXPECT_EQ(stream.malformed_lines(), 1u);
}

TEST_F(MalformedInputTest, LenientSkipsAndCountsEveryDefect) {
  std::string path = WriteFile("lenient", kCorpus);
  MetricsRegistry registry;
  TextEdgeStream::Config cfg;
  cfg.lenient = true;
  cfg.registry = &registry;
  TextEdgeStream stream(path, cfg);
  std::vector<Edge> got;
  Edge e;
  while (stream.Next(&e)) got.push_back(e);
  EXPECT_TRUE(stream.ok());
  ASSERT_EQ(got.size(), static_cast<size_t>(kGoodLines));
  EXPECT_EQ(got[0], (Edge{1, 10}));
  EXPECT_EQ(got[1], (Edge{2, 20}));
  EXPECT_EQ(got[2], (Edge{4, 40}));
  EXPECT_EQ(stream.malformed_lines(), static_cast<uint64_t>(kBadLines));
  EXPECT_EQ(registry.GetCounter("stream_malformed_lines_total")->Value(),
            static_cast<uint64_t>(kBadLines));
  // No hard parse errors in lenient mode.
  EXPECT_EQ(registry.GetCounter("stream_parse_errors_total")->Value(), 0u);
}

TEST_F(MalformedInputTest, StrictCountsOneParseErrorInRegistry) {
  std::string path = WriteFile("strict_reg", "bad line\n");
  MetricsRegistry registry;
  TextEdgeStream::Config cfg;
  cfg.registry = &registry;
  TextEdgeStream stream(path, cfg);
  Edge e;
  EXPECT_FALSE(stream.Next(&e));
  EXPECT_EQ(registry.GetCounter("stream_parse_errors_total")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("stream_malformed_lines_total")->Value(), 1u);
}

TEST_F(MalformedInputTest, NegativeTokenNeverWrapsToHugeId) {
  // The original parser fed "-1 7" through strtoull, yielding set id
  // 18446744073709551615. No emitted edge may carry a wrapped id.
  std::string path = WriteFile("wrap", "-1 7\n3 4\n");
  TextEdgeStream::Config cfg;
  cfg.lenient = true;
  TextEdgeStream stream(path, cfg);
  Edge e;
  while (stream.Next(&e)) {
    EXPECT_NE(e.set, UINT64_MAX);
    EXPECT_EQ(e, (Edge{3, 4}));
  }
  EXPECT_EQ(stream.malformed_lines(), 1u);
}

TEST_F(MalformedInputTest, OverflowIsRejectedNotTruncated) {
  std::string path =
      WriteFile("erange", "18446744073709551616 1\n");  // 2^64
  TextEdgeStream stream(path);
  Edge e;
  EXPECT_FALSE(stream.Next(&e));
  EXPECT_NE(stream.StatusMessage().find("set id out of range"),
            std::string::npos);
}

TEST_F(MalformedInputTest, ResetClearsTheErrorState) {
  std::string path = WriteFile("reset", "oops\n1 2\n");
  TextEdgeStream stream(path);
  Edge e;
  EXPECT_FALSE(stream.Next(&e));
  EXPECT_FALSE(stream.ok());
  stream.Reset();
  EXPECT_TRUE(stream.ok());
  EXPECT_EQ(stream.malformed_lines(), 0u);
  // Same file, same defect: stops again at line 1.
  EXPECT_FALSE(stream.Next(&e));
  EXPECT_NE(stream.StatusMessage().find(":1:"), std::string::npos);
}

TEST_F(MalformedInputTest, LenientStreamFeedsAnAlgorithmToCompletion) {
  // End-to-end shape of the bugfix: a dirty feed completes a full pass
  // instead of aborting the process.
  std::string content;
  for (int i = 0; i < 100; ++i) {
    content += std::to_string(i % 10) + " " + std::to_string(i) + "\n";
    if (i % 7 == 0) content += "corrupt " + std::to_string(i) + "\n";
  }
  std::string path = WriteFile("e2e", content);
  TextEdgeStream::Config cfg;
  cfg.lenient = true;
  TextEdgeStream stream(path, cfg);
  uint64_t edges = 0;
  Edge e;
  while (stream.Next(&e)) ++edges;
  EXPECT_TRUE(stream.ok());
  EXPECT_EQ(edges, 100u);
  EXPECT_EQ(stream.malformed_lines(), 15u);  // ceil(100/7)
}

}  // namespace
}  // namespace streamkc
