// Batch-vs-per-edge differential tests: the ProcessBatch / AddFoldedBatch
// ingest path must leave every estimator in a state BIT-IDENTICAL to the
// per-edge Process / Add path on the same stream — not merely statistically
// equivalent. Sketches are compared by serialized blob (the strongest
// observable equality the library offers); the core estimator stack by
// exact Finalize() equality, which a single reordered hash admission would
// break.
//
// Batch sizes are deliberately awkward (primes straddling the 128-edge
// internal tile) so tile remainders and cross-batch boundaries are hit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/estimate_max_cover.h"
#include "core/report_max_cover.h"
#include "hash/mersenne.h"
#include "runtime/edge_batch.h"
#include "runtime/sketch_states.h"
#include "sketch/ams_f2.h"
#include "sketch/count_sketch.h"
#include "sketch/f2_contributing.h"
#include "sketch/f2_heavy_hitters.h"
#include "sketch/hyperloglog.h"
#include "sketch/l0_estimator.h"
#include "test_util.h"

namespace streamkc {
namespace {

template <typename Sketch>
std::string Blob(const Sketch& sketch) {
  std::stringstream ss;
  sketch.Save(ss);
  return ss.str();
}

// Element ids folded once — the producer-side contract of the batch path.
std::vector<uint64_t> FoldedElements(const std::vector<Edge>& edges) {
  std::vector<uint64_t> folded;
  folded.reserve(edges.size());
  for (const Edge& e : edges) folded.push_back(MersenneFold(e.element));
  return folded;
}

// Streams `edges` into `batched` through ProcessBatch in chunks of
// `batch_size`, using the same EdgeBatch::Prefold hand-off the sharded
// pipeline uses.
template <typename Alg>
void FeedBatched(Alg& batched, const std::vector<Edge>& edges,
                 size_t batch_size) {
  EdgeBatch batch;
  for (size_t i = 0; i < edges.size(); i += batch_size) {
    size_t m = std::min(batch_size, edges.size() - i);
    batch.Clear();
    batch.edges.assign(edges.begin() + i, edges.begin() + i + m);
    batch.Prefold();
    batched.ProcessBatch(batch.View());
  }
}

TEST(BatchEquivalence, L0BitIdentical) {
  std::vector<Edge> edges = SyntheticEdges(20000, 42);
  std::vector<uint64_t> folded = FoldedElements(edges);
  L0Estimator per_edge({.num_mins = 128, .seed = 5});
  L0Estimator batched({.num_mins = 128, .seed = 5});
  for (const Edge& e : edges) per_edge.Add(e.element);
  // 113 < tile (remainder path) and a stretch past it in one call.
  batched.AddFoldedBatch(folded.data(), 113);
  batched.AddFoldedBatch(folded.data() + 113, folded.size() - 113);
  EXPECT_EQ(Blob(per_edge), Blob(batched));
  EXPECT_DOUBLE_EQ(per_edge.Estimate(), batched.Estimate());
}

TEST(BatchEquivalence, AmsF2BitIdentical) {
  std::vector<Edge> edges = SyntheticEdges(10000, 7);
  std::vector<uint64_t> folded = FoldedElements(edges);
  AmsF2Sketch per_edge({.rows = 5, .cols = 16, .seed = 3});
  AmsF2Sketch batched({.rows = 5, .cols = 16, .seed = 3});
  for (const Edge& e : edges) per_edge.Add(e.element);
  for (size_t i = 0; i < folded.size(); i += 131) {
    batched.AddFoldedBatch(folded.data() + i,
                           std::min<size_t>(131, folded.size() - i));
  }
  EXPECT_EQ(Blob(per_edge), Blob(batched));
  EXPECT_DOUBLE_EQ(per_edge.Estimate(), batched.Estimate());
}

TEST(BatchEquivalence, CountSketchBitIdentical) {
  std::vector<Edge> edges = SyntheticEdges(10000, 11, 256, 512);
  std::vector<uint64_t> folded = FoldedElements(edges);
  CountSketch per_edge({.depth = 5, .width = 64, .seed = 9});
  CountSketch batched({.depth = 5, .width = 64, .seed = 9});
  for (const Edge& e : edges) per_edge.Add(e.element, 1);
  for (size_t i = 0; i < folded.size(); i += 251) {
    batched.AddFoldedBatch(folded.data() + i,
                           std::min<size_t>(251, folded.size() - i), 1);
  }
  EXPECT_EQ(Blob(per_edge), Blob(batched));
  EXPECT_DOUBLE_EQ(per_edge.EstimateF2(), batched.EstimateF2());
}

TEST(BatchEquivalence, F2HeavyHittersFoldedIdentical) {
  std::vector<Edge> edges = SyntheticEdges(8000, 13, 256, 64);
  F2HeavyHitters per_edge({.phi = 0.05, .seed = 21});
  F2HeavyHitters folded_path({.phi = 0.05, .seed = 21});
  for (const Edge& e : edges) per_edge.Add(e.element);
  for (const Edge& e : edges) {
    folded_path.AddFolded(e.element, MersenneFold(e.element));
  }
  EXPECT_EQ(Blob(per_edge), Blob(folded_path));
}

TEST(BatchEquivalence, F2ContributingFoldedIdentical) {
  std::vector<Edge> edges = SyntheticEdges(8000, 17, 256, 128);
  F2Contributing::Config cfg;
  cfg.gamma = 0.05;
  cfg.domain_size = 128;
  cfg.max_class_size = 64;
  cfg.seed = 31;
  F2Contributing per_edge(cfg);
  F2Contributing folded_path(cfg);
  for (const Edge& e : edges) per_edge.Add(e.element);
  for (const Edge& e : edges) {
    folded_path.AddFolded(e.element, MersenneFold(e.element));
  }
  EXPECT_EQ(Blob(per_edge), Blob(folded_path));
}

TEST(BatchEquivalence, CoverageSketchStateIdentical) {
  std::vector<Edge> edges = SyntheticEdges(30000, 19);
  CoverageSketchState::Config cfg;
  CoverageSketchState per_edge(cfg);
  CoverageSketchState batched(cfg);
  for (const Edge& e : edges) per_edge.Process(e);
  FeedBatched(batched, edges, 509);
  EXPECT_EQ(Blob(per_edge.covered_l0), Blob(batched.covered_l0));
  EXPECT_EQ(Blob(per_edge.element_f2), Blob(batched.element_f2));
  EXPECT_DOUBLE_EQ(per_edge.covered_hll.Estimate(),
                   batched.covered_hll.Estimate());
}

TEST(BatchEquivalence, EstimateMaxCoverOracleMode) {
  auto inst = MakeFamilyInstance("planted", 512, 1024, 16, 23);
  std::vector<Edge> edges = InstanceEdges(inst, 5);
  EstimateMaxCover::Config cfg;
  cfg.params = Params::Practical(512, 1024, 16, 8);
  cfg.seed = 77;
  EstimateMaxCover per_edge(cfg);
  EstimateMaxCover batched(cfg);
  ASSERT_FALSE(per_edge.trivial_mode());
  for (const Edge& e : edges) per_edge.Process(e);
  FeedBatched(batched, edges, 241);
  EstimateOutcome a = per_edge.Finalize();
  EstimateOutcome b = batched.Finalize();
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.source, b.source);
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
}

TEST(BatchEquivalence, EstimateMaxCoverTrivialMode) {
  auto inst = MakeFamilyInstance("uniform", 64, 512, 16, 29);
  std::vector<Edge> edges = InstanceEdges(inst, 6);
  EstimateMaxCover::Config cfg;
  cfg.params = Params::Practical(64, 512, 16, 8);  // kα = 128 ≥ m = 64
  cfg.seed = 78;
  EstimateMaxCover per_edge(cfg);
  EstimateMaxCover batched(cfg);
  ASSERT_TRUE(per_edge.trivial_mode());
  for (const Edge& e : edges) per_edge.Process(e);
  FeedBatched(batched, edges, 241);
  EXPECT_DOUBLE_EQ(per_edge.Finalize().estimate, batched.Finalize().estimate);
}

TEST(BatchEquivalence, ReportMaxCoverSolutionsIdentical) {
  auto inst = MakeFamilyInstance("planted", 512, 1024, 16, 37);
  std::vector<Edge> edges = InstanceEdges(inst, 8);
  ReportMaxCover::Config cfg;
  cfg.params = Params::Practical(512, 1024, 16, 8);
  cfg.seed = 99;
  ReportMaxCover per_edge(cfg);
  ReportMaxCover batched(cfg);
  for (const Edge& e : edges) per_edge.Process(e);
  FeedBatched(batched, edges, 367);
  MaxCoverSolution a = per_edge.Finalize();
  MaxCoverSolution b = batched.Finalize();
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.sets, b.sets);
}

// Cross-validation of the two Theorem 2.12 realizations: KMV and HLL see
// identical streams and must agree with the true distinct count — and hence
// with each other — within their combined relative-error bands. A bug in
// either batch path that degrades accuracy without breaking determinism
// (e.g. dropping admissions) trips this even though the bit-identity tests
// above pass vacuously on both sides.
TEST(BatchEquivalence, KmvHllCrossValidation) {
  constexpr uint32_t kNumMins = 256;
  constexpr uint32_t kPrecision = 12;
  // 3σ bands: KMV σ ≈ 1/√(k-2), HLL σ ≈ 1.04/√2^p.
  const double kmv_band = 3.0 / std::sqrt(static_cast<double>(kNumMins - 2));
  const double hll_band = 3.04 * 1.04 / std::sqrt(4096.0);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const uint64_t distinct = 40000 + 1000 * seed;
    L0Estimator kmv({.num_mins = kNumMins, .seed = seed});
    HyperLogLog hll({.precision = kPrecision, .seed = seed});
    std::vector<uint64_t> folded;
    folded.reserve(2 * distinct);
    // Every id appears twice (batch path sees the duplicates too).
    for (uint64_t rep = 0; rep < 2; ++rep) {
      for (uint64_t i = 0; i < distinct; ++i) {
        uint64_t id = SplitMix64(i ^ (seed << 32));
        folded.push_back(MersenneFold(id));
        hll.Add(id);
      }
    }
    kmv.AddFoldedBatch(folded.data(), folded.size());
    const double d = static_cast<double>(distinct);
    EXPECT_NEAR(kmv.Estimate(), d, kmv_band * d)
        << "KMV outside band at seed " << seed;
    EXPECT_NEAR(hll.Estimate(), d, hll_band * d)
        << "HLL outside band at seed " << seed;
    EXPECT_NEAR(kmv.Estimate(), hll.Estimate(),
                (kmv_band + hll_band) * d)
        << "KMV and HLL disagree at seed " << seed;
  }
}

}  // namespace
}  // namespace streamkc
