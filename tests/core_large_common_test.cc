#include "core/large_common.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace streamkc {
namespace {

LargeCommon MakeLargeCommon(const SetSystem& sys, uint64_t k, double alpha,
                            uint64_t seed, bool reporting = false) {
  LargeCommon::Config c;
  c.params = Params::Practical(sys.num_sets(), sys.num_elements(), k, alpha);
  c.universe_size = sys.num_elements();
  c.reporting = reporting;
  c.seed = seed;
  return LargeCommon(c);
}

TEST(LargeCommon, LevelGridCoversAlpha) {
  auto inst = RandomUniform(256, 512, 4, 1);
  LargeCommon lc = MakeLargeCommon(inst.system, 4, 16, 1);
  // β_g = 2, 4, 8, 16 → 4 levels.
  EXPECT_EQ(lc.num_levels(), 4u);
}

TEST(LargeCommon, FeasibleOnCommonElementFamily) {
  // Case I instance: many (βk)-common elements → LargeCommon must fire and
  // return Ω(σ|U|/α) without overestimating OPT (Theorem 4.4).
  auto inst = CommonElementFamily(1024, 2048, 8, 4.0, 1024, 7);
  const double alpha = 8;
  int feasible = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    LargeCommon lc = MakeLargeCommon(inst.system, 8, alpha, 100 + seed);
    FeedSystem(inst.system, ArrivalOrder::kRandom, seed, lc);
    EstimateOutcome out = lc.Finalize();
    if (!out.feasible) continue;
    ++feasible;
    EXPECT_LE(out.estimate, OptUpperBound(inst.system, 8) * 1.05);
    Params p = Params::Practical(1024, 2048, 8, alpha);
    EXPECT_GE(out.estimate, p.sigma * 2048.0 / (6.0 * alpha));
  }
  EXPECT_GE(feasible, 4);
}

TEST(LargeCommon, InfeasibleWithoutCommonElements) {
  // Case-II instance: every element rare → all levels should miss their
  // σβ|U|/(4α) threshold.
  auto inst = LargeSetFamily(1024, 2048, 4, 9);
  int feasible = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    LargeCommon lc = MakeLargeCommon(inst.system, 8, 8, 200 + seed);
    FeedSystem(inst.system, ArrivalOrder::kRandom, seed, lc);
    feasible += lc.Finalize().feasible;
  }
  EXPECT_LE(feasible, 1);
}

TEST(LargeCommon, NeverOverestimatesAcrossFamilies) {
  // The oracle property (Def. 3.4): output ≤ OPT w.h.p., on any instance.
  for (uint64_t seed = 0; seed < 3; ++seed) {
    auto inst = ZipfFrequency(512, 1024, 12, 1.0, 300 + seed);
    LargeCommon lc = MakeLargeCommon(inst.system, 8, 4, seed);
    FeedSystem(inst.system, ArrivalOrder::kRandom, seed, lc);
    EstimateOutcome out = lc.Finalize();
    if (out.feasible) {
      EXPECT_LE(out.estimate, OptUpperBound(inst.system, 8) * 1.05);
    }
  }
}

TEST(LargeCommon, OrderInvariance) {
  // A sketch's output distribution must not depend on arrival order; with a
  // fixed seed the L0 state is exactly order-independent (KMV minima are a
  // set), so estimates must match bit-for-bit across orders.
  auto inst = CommonElementFamily(512, 1024, 8, 2.0, 256, 11);
  double est_random = 0, est_sorted = 0;
  {
    LargeCommon lc = MakeLargeCommon(inst.system, 8, 8, 42);
    FeedSystem(inst.system, ArrivalOrder::kRandom, 1, lc);
    est_random = lc.Finalize().estimate;
  }
  {
    LargeCommon lc = MakeLargeCommon(inst.system, 8, 8, 42);
    FeedSystem(inst.system, ArrivalOrder::kSetContiguous, 1, lc);
    est_sorted = lc.Finalize().estimate;
  }
  EXPECT_DOUBLE_EQ(est_random, est_sorted);
}

TEST(LargeCommon, DuplicateEdgesHarmless) {
  auto inst = CommonElementFamily(512, 1024, 8, 2.0, 256, 13);
  LargeCommon a = MakeLargeCommon(inst.system, 8, 8, 55);
  LargeCommon b = MakeLargeCommon(inst.system, 8, 8, 55);
  VectorEdgeStream once = inst.system.MakeStream(ArrivalOrder::kRandom, 2);
  FeedStream(once, a);
  // Feed the same stream twice into b.
  once.Reset();
  FeedStream(once, b);
  once.Reset();
  FeedStream(once, b);
  EXPECT_DOUBLE_EQ(a.Finalize().estimate, b.Finalize().estimate);
}

TEST(LargeCommon, ReportingExtractsSampledGroup) {
  auto inst = CommonElementFamily(1024, 2048, 8, 4.0, 1024, 17);
  LargeCommon lc = MakeLargeCommon(inst.system, 8, 8, 77, /*reporting=*/true);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 3, lc);
  EstimateOutcome out = lc.Finalize();
  ASSERT_TRUE(out.feasible);
  std::vector<SetId> sets = lc.ExtractSolution(8);
  ASSERT_FALSE(sets.empty());
  EXPECT_LE(sets.size(), 8u);
  // The reported sets' true coverage should carry a decent share of the
  // estimate (the estimate already divides by β).
  uint64_t cov = inst.system.CoverageOf(sets);
  EXPECT_GE(static_cast<double>(cov), out.estimate / 4.0);
}

TEST(LargeCommon, NonReportingExtractAborts) {
  auto inst = RandomUniform(64, 128, 4, 19);
  LargeCommon lc = MakeLargeCommon(inst.system, 4, 4, 1, /*reporting=*/false);
  EXPECT_DEATH(lc.ExtractSolution(4), "CHECK failed");
}

TEST(LargeCommon, MemorySmallAndIndependentOfStream) {
  auto inst = CommonElementFamily(2048, 4096, 8, 4.0, 2048, 23);
  LargeCommon lc = MakeLargeCommon(inst.system, 8, 8, 3);
  size_t before = lc.MemoryBytes();
  FeedSystem(inst.system, ArrivalOrder::kRandom, 4, lc);
  size_t after = lc.MemoryBytes();
  // L0 sketches cap out; no stream-proportional state.
  EXPECT_LE(after, before + (64u << 10));
  EXPECT_LE(after, 512u << 10);
}

}  // namespace
}  // namespace streamkc
