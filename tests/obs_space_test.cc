// SpaceAccountant tests: epoch sampling, peak retention through shrinkage,
// composite recursion, per-shard Absorb folding, registry publication, and
// the real-sketch wiring (every sketch reports a named component whose
// bytes equal its MemoryBytes).

#include "obs/space_accountant.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "obs/metrics.h"
#include "runtime/sketch_states.h"
#include "sketch/hyperloglog.h"
#include "sketch/l0_estimator.h"

namespace streamkc {
namespace {

// Adjustable leaf for deterministic accounting tests.
struct FakeLeaf : SpaceMetered {
  size_t bytes = 0;
  uint64_t items = 0;
  const char* name = "fake_leaf";

  size_t MemoryBytes() const override { return bytes; }
  const char* ComponentName() const override { return name; }
  uint64_t ItemCount() const override { return items; }
};

// Composite holding two leaves; its own bytes INCLUDE the children's
// (the documented inclusive-row convention).
struct FakeComposite : SpaceMetered {
  FakeLeaf a, b;

  size_t MemoryBytes() const override {
    return 16 + a.MemoryBytes() + b.MemoryBytes();
  }
  const char* ComponentName() const override { return "fake_composite"; }
  void ReportSpace(SpaceAccountant* acct) const override {
    acct->Report(ComponentName(), MemoryBytes(), 0);
    a.ReportSpace(acct);
    b.ReportSpace(acct);
  }
};

TEST(SpaceAccountant, SampleRecordsLeafTotalsAndItems) {
  FakeLeaf leaf;
  leaf.bytes = 100;
  leaf.items = 7;
  SpaceAccountant acct;
  acct.Sample(leaf);
  EXPECT_EQ(acct.current_total_bytes(), 100u);
  EXPECT_EQ(acct.peak_total_bytes(), 100u);
  EXPECT_EQ(acct.num_samples(), 1u);
  const auto& row = acct.components().at("fake_leaf");
  EXPECT_EQ(row.current_bytes, 100u);
  EXPECT_EQ(row.items, 7u);
}

TEST(SpaceAccountant, PeakSurvivesShrinkage) {
  // Rescaling subroutines shrink mid-stream; the end-of-stream footprint
  // must not overwrite the high-water mark.
  FakeLeaf leaf;
  SpaceAccountant acct;
  leaf.bytes = 50;
  acct.Sample(leaf);
  leaf.bytes = 500;
  acct.Sample(leaf);
  leaf.bytes = 80;
  acct.Sample(leaf);
  EXPECT_EQ(acct.current_total_bytes(), 80u);
  EXPECT_EQ(acct.peak_total_bytes(), 500u);
  const auto& row = acct.components().at("fake_leaf");
  EXPECT_EQ(row.current_bytes, 80u);
  EXPECT_EQ(row.peak_bytes, 500u);
}

TEST(SpaceAccountant, CompositeRowsAreInclusive) {
  FakeComposite c;
  c.a.bytes = 100;
  c.b.bytes = 30;
  c.b.name = "fake_leaf_b";
  SpaceAccountant acct;
  acct.Sample(c);
  // Total is measured at the root; child rows overlap with the parent row.
  EXPECT_EQ(acct.current_total_bytes(), 146u);
  EXPECT_EQ(acct.components().at("fake_composite").current_bytes, 146u);
  EXPECT_EQ(acct.components().at("fake_leaf").current_bytes, 100u);
  EXPECT_EQ(acct.components().at("fake_leaf_b").current_bytes, 30u);
}

TEST(SpaceAccountant, SameNameAggregatesWithinAnEpoch) {
  // Two children sharing a component name sum into one row (the
  // "every KMV sketch in the tree" aggregation).
  FakeComposite c;
  c.a.bytes = 100;
  c.b.bytes = 30;  // same default name "fake_leaf"
  SpaceAccountant acct;
  acct.Sample(c);
  EXPECT_EQ(acct.components().at("fake_leaf").current_bytes, 130u);
}

TEST(SpaceAccountant, AbsorbSumsShardAccountants) {
  // The sharded fold: N replicas coexist, so the pipeline's footprint is
  // the SUM of per-shard currents and peaks.
  FakeLeaf leaf;
  SpaceAccountant s0, s1, total;
  leaf.bytes = 100;
  s0.Sample(leaf);
  leaf.bytes = 60;
  s0.Sample(leaf);  // s0: current 60, peak 100
  leaf.bytes = 40;
  s1.Sample(leaf);  // s1: current 40, peak 40
  total.Absorb(s0);
  total.Absorb(s1);
  EXPECT_EQ(total.current_total_bytes(), 100u);
  EXPECT_EQ(total.peak_total_bytes(), 140u);
  EXPECT_EQ(total.components().at("fake_leaf").current_bytes, 100u);
  EXPECT_EQ(total.components().at("fake_leaf").peak_bytes, 140u);
}

TEST(SpaceAccountant, PublishesGaugesIntoTheRegistry) {
  MetricsRegistry reg;
  SpaceAccountant acct(&reg);
  FakeLeaf leaf;
  leaf.bytes = 256;
  leaf.items = 4;
  acct.Sample(leaf);
  EXPECT_EQ(reg.GetGauge("space_current_total_bytes")->Value(), 256u);
  EXPECT_EQ(reg.GetGauge("space_peak_total_bytes")->Value(), 256u);
  EXPECT_EQ(
      reg.GetGauge(LabeledName("space_current_bytes", "component", "fake_leaf"))
          ->Value(),
      256u);
  EXPECT_EQ(
      reg.GetGauge(LabeledName("space_items", "component", "fake_leaf"))
          ->Value(),
      4u);
}

TEST(SpaceAccountant, ToJsonIsWellFormedAndCarriesComponents) {
  FakeLeaf leaf;
  leaf.bytes = 64;
  SpaceAccountant acct;
  acct.Sample(leaf);
  std::string json = acct.ToJson();
  EXPECT_NE(json.find("\"current_total_bytes\": 64"), std::string::npos);
  EXPECT_NE(json.find("\"fake_leaf\""), std::string::npos);
  EXPECT_NE(json.find("\"peak_bytes\": 64"), std::string::npos);
}

TEST(SpaceAccountant, RealSketchesReportNamedComponents) {
  L0Estimator l0({.num_mins = 64, .seed = 5});
  HyperLogLog hll({.precision = 10, .seed = 5});
  for (uint64_t i = 0; i < 1000; ++i) {
    l0.Add(i);
    hll.Add(i);
  }
  SpaceAccountant acct;
  acct.Sample(l0);
  EXPECT_EQ(acct.components().at("l0_estimator").current_bytes,
            l0.MemoryBytes());
  EXPECT_EQ(acct.components().at("l0_estimator").items, 64u);  // full heap
  SpaceAccountant acct2;
  acct2.Sample(hll);
  EXPECT_EQ(acct2.components().at("hyperloglog").current_bytes,
            hll.MemoryBytes());
}

TEST(SpaceAccountant, CoverageStateRecursesIntoItsSketches) {
  CoverageSketchState::Config cfg;
  CoverageSketchState st(cfg);
  for (uint64_t i = 0; i < 500; ++i) st.Process(Edge{i % 16, i});
  SpaceAccountant acct;
  acct.Sample(st);
  EXPECT_EQ(acct.current_total_bytes(), st.MemoryBytes());
  EXPECT_EQ(acct.components().count("coverage_sketch"), 1u);
  EXPECT_EQ(acct.components().count("l0_estimator"), 1u);
  EXPECT_EQ(acct.components().count("hyperloglog"), 1u);
  EXPECT_EQ(acct.components().count("ams_f2"), 1u);
}

}  // namespace
}  // namespace streamkc
