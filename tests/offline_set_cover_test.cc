#include "offline/set_cover.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "offline/multi_pass_set_cover.h"
#include "setsys/generators.h"

namespace streamkc {
namespace {

TEST(GreedySetCover, CoversEverything) {
  SetSystem sys(6, {{0, 1, 2}, {2, 3}, {4, 5}, {1}});
  SetCoverSolution sol = GreedySetCover(sys);
  EXPECT_EQ(sol.covered, 6u);
  EXPECT_EQ(sys.CoverageOf(sol.sets), 6u);
}

TEST(GreedySetCover, IgnoresUncoverableElements) {
  SetSystem sys(10, {{0, 1}, {2}});  // elements 3..9 in no set
  SetCoverSolution sol = GreedySetCover(sys);
  EXPECT_EQ(sol.covered, 3u);
  EXPECT_EQ(sol.sets.size(), 2u);
}

TEST(GreedySetCover, EmptyInstance) {
  SetSystem sys(4, {});
  SetCoverSolution sol = GreedySetCover(sys);
  EXPECT_TRUE(sol.sets.empty());
  EXPECT_EQ(sol.covered, 0u);
}

TEST(GreedySetCover, ClassicLogNTrap) {
  // The textbook instance where greedy uses more sets than OPT: two "row"
  // sets cover everything, but greedy prefers the big column.
  SetSystem sys(8, {
                       {0, 1, 2, 3},        // row A (OPT)
                       {4, 5, 6, 7},        // row B (OPT)
                       {0, 1, 4, 5, 2, 6},  // greedy bait
                   });
  SetCoverSolution greedy = GreedySetCover(sys);
  SetCoverSolution exact = ExactSetCover(sys);
  EXPECT_EQ(exact.sets.size(), 2u);
  EXPECT_GE(greedy.sets.size(), exact.sets.size());
}

TEST(ExactSetCover, MinimumCardinality) {
  SetSystem sys(5, {{0}, {1}, {2}, {3}, {4}, {0, 1, 2, 3, 4}});
  SetCoverSolution sol = ExactSetCover(sys);
  EXPECT_EQ(sol.sets.size(), 1u);
  EXPECT_EQ(sol.sets[0], 5u);
}

// Property: greedy's cover size ≤ (ln n + 1)·OPT on random instances.
class GreedySetCoverBound : public ::testing::TestWithParam<int> {};

TEST_P(GreedySetCoverBound, WithinLogFactor) {
  auto inst = RandomUniform(14, 40, 8, GetParam());
  SetCoverSolution greedy = GreedySetCover(inst.system);
  SetCoverSolution exact = ExactSetCover(inst.system);
  EXPECT_EQ(greedy.covered, exact.covered);
  double bound = (std::log(40.0) + 1.0) * static_cast<double>(exact.sets.size());
  EXPECT_LE(static_cast<double>(greedy.sets.size()), bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedySetCoverBound, ::testing::Range(1, 9));

TEST(MultiPassSetCover, CoversWithAnyPassBudget) {
  auto inst = RandomUniform(60, 200, 16, 3);
  VectorEdgeStream stream =
      inst.system.MakeStream(ArrivalOrder::kSetContiguous, 0);
  for (uint32_t p : {1u, 2u, 4u, 8u}) {
    stream.Reset();
    MultiPassSetCoverResult r = RunMultiPassSetCover(stream, 200, p);
    EXPECT_EQ(r.solution.covered, inst.system.CoveredUniverseSize())
        << "passes " << p;
    EXPECT_EQ(inst.system.CoverageOf(r.solution.sets), r.solution.covered);
    EXPECT_LE(r.passes_used, p + 2);
  }
}

TEST(MultiPassSetCover, MorePassesSmallerCover) {
  // The [21] trade-off: the solution shrinks (weakly) as passes grow, and
  // with many passes it approaches the greedy size.
  auto inst = ZipfFrequency(120, 300, 12, 0.9, 7);
  VectorEdgeStream stream =
      inst.system.MakeStream(ArrivalOrder::kSetContiguous, 0);
  stream.Reset();
  size_t one_pass = RunMultiPassSetCover(stream, 300, 1).solution.sets.size();
  stream.Reset();
  size_t many_pass = RunMultiPassSetCover(stream, 300, 8).solution.sets.size();
  SetCoverSolution greedy = GreedySetCover(inst.system);
  EXPECT_LE(many_pass, one_pass);
  EXPECT_LE(many_pass, greedy.sets.size() * 3);
}

TEST(MultiPassSetCover, SolutionHasDistinctSets) {
  auto inst = RandomUniform(50, 150, 10, 11);
  VectorEdgeStream stream =
      inst.system.MakeStream(ArrivalOrder::kSetContiguous, 0);
  MultiPassSetCoverResult r = RunMultiPassSetCover(stream, 150, 3);
  std::set<SetId> unique(r.solution.sets.begin(), r.solution.sets.end());
  EXPECT_EQ(unique.size(), r.solution.sets.size());
}

TEST(MultiPassSetCover, MemoryIsBitmapScale) {
  auto inst = RandomUniform(100, 1000, 20, 13);
  VectorEdgeStream stream =
      inst.system.MakeStream(ArrivalOrder::kSetContiguous, 0);
  MultiPassSetCoverResult r = RunMultiPassSetCover(stream, 1000, 4);
  // Õ(n): bitmap (n/8 bytes) + solution ids.
  EXPECT_LE(r.memory_bytes, 1000 / 8 + r.solution.sets.size() * 8 + 64);
}

TEST(MultiPassSetCover, RejectsInterleavedStream) {
  std::vector<Edge> edges{{0, 1}, {1, 2}, {0, 3}};
  VectorEdgeStream stream(std::move(edges));
  EXPECT_DEATH(RunMultiPassSetCover(stream, 5, 2), "CHECK failed");
}

}  // namespace
}  // namespace streamkc
