// Shared helpers for streamkc behavioral tests.

#ifndef STREAMKC_TESTS_TEST_UTIL_H_
#define STREAMKC_TESTS_TEST_UTIL_H_

#include <cstdint>

#include "core/streaming_interface.h"
#include "offline/greedy.h"
#include "setsys/generators.h"
#include "setsys/set_system.h"

namespace streamkc {

// Streams `sys` into `alg` in the given arrival order.
inline void FeedSystem(const SetSystem& sys, ArrivalOrder order, uint64_t seed,
                       StreamingEstimator& alg) {
  VectorEdgeStream stream = sys.MakeStream(order, seed);
  FeedStream(stream, alg);
}

// Greedy coverage, used as the OPT reference in quality assertions: greedy
// is within (1 - 1/e) of OPT, so OPT ≤ greedy / 0.632.
inline double OptUpperBound(const SetSystem& sys, uint64_t k) {
  return static_cast<double>(LazyGreedyMaxCover(sys, k).coverage) /
         (1.0 - 1.0 / 2.718281828459045);
}

inline uint64_t GreedyCoverage(const SetSystem& sys, uint64_t k) {
  return LazyGreedyMaxCover(sys, k).coverage;
}

}  // namespace streamkc

#endif  // STREAMKC_TESTS_TEST_UTIL_H_
