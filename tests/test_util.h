// Shared helpers for streamkc behavioral tests.

#ifndef STREAMKC_TESTS_TEST_UTIL_H_
#define STREAMKC_TESTS_TEST_UTIL_H_

#include <dirent.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/streaming_interface.h"
#include "dist/process_tree.h"
#include "fault/faulty_stream.h"
#include "offline/greedy.h"
#include "runtime/sketch_states.h"
#include "setsys/generators.h"
#include "setsys/set_system.h"
#include "stream/edge.h"
#include "stream/text_stream.h"
#include "util/check.h"
#include "util/random.h"

namespace streamkc {

// Streams `sys` into `alg` in the given arrival order.
inline void FeedSystem(const SetSystem& sys, ArrivalOrder order, uint64_t seed,
                       StreamingEstimator& alg) {
  VectorEdgeStream stream = sys.MakeStream(order, seed);
  FeedStream(stream, alg);
}

// Greedy coverage, used as the OPT reference in quality assertions: greedy
// is within (1 - 1/e) of OPT, so OPT ≤ greedy / 0.632.
inline double OptUpperBound(const SetSystem& sys, uint64_t k) {
  return static_cast<double>(LazyGreedyMaxCover(sys, k).coverage) /
         (1.0 - 1.0 / 2.718281828459045);
}

inline uint64_t GreedyCoverage(const SetSystem& sys, uint64_t k) {
  return LazyGreedyMaxCover(sys, k).coverage;
}

// Unstructured synthetic edge stream (hash-random incidences) — the
// workload the runtime/fault tests shard and perturb. Pure function of the
// arguments; the same seed always yields the same token sequence.
inline std::vector<Edge> SyntheticEdges(size_t count, uint64_t seed,
                                        uint64_t num_sets = 256,
                                        uint64_t num_elements = 4096) {
  std::vector<Edge> edges;
  edges.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t h = SplitMix64(seed + i);
    edges.push_back(Edge{h % num_sets, SplitMix64(h) % num_elements});
  }
  return edges;
}

// Builds one of the named instance families at a common shape — the cell
// axis shared by the statistical-guarantee and differential sweeps.
// `family` ∈ {"uniform", "zipf", "planted"}.
inline GeneratedInstance MakeFamilyInstance(const std::string& family,
                                            uint64_t m, uint64_t n, uint64_t k,
                                            uint64_t seed) {
  if (family == "uniform") return RandomUniform(m, n, 12, seed);
  if (family == "zipf") return ZipfFrequency(m, n, 12, 1.1, seed);
  return PlantedCover(m, n, k, 0.5, 6, seed);
}

// Materializes `inst` as a randomly ordered edge stream (the general
// edge-arrival model's adversarial default for tests).
inline std::vector<Edge> InstanceEdges(const GeneratedInstance& inst,
                                       uint64_t order_seed) {
  std::vector<Edge> edges = inst.system.MaterializeEdges();
  ApplyArrivalOrder(edges, ArrivalOrder::kRandom, order_seed);
  return edges;
}

// RAII temporary directory under TMPDIR (flat: tests create files, not
// subtrees); contents and the directory are removed on destruction.
class ScopedTempDir {
 public:
  ScopedTempDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base != nullptr && *base != '\0'
                                       ? base
                                       : "/tmp") +
                       "/streamkc_test_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    CHECK(::mkdtemp(buf.data()) != nullptr);
    path_ = buf.data();
  }
  ~ScopedTempDir() {
    DIR* d = ::opendir(path_.c_str());
    if (d != nullptr) {
      while (dirent* ent = ::readdir(d)) {
        std::string name = ent->d_name;
        if (name == "." || name == "..") continue;
        std::remove((path_ + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(path_.c_str());
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  const std::string& path() const { return path_; }

  // Writes `content` to `<dir>/<name>` and returns the full path.
  std::string WriteFile(const std::string& name,
                        const std::string& content) const {
    std::string p = path_ + "/" + name;
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    CHECK(out.is_open());
    out << content;
    CHECK(out.good());
    return p;
  }

 private:
  std::string path_;
};

// A temp edge corpus on disk plus its segmented split — the shared fixture
// for every test that exercises file-backed segment ingest.
class ScopedTempCorpus {
 public:
  ScopedTempCorpus(const std::vector<Edge>& edges, uint32_t num_segments,
                   SegmentedTextStream::Config config = {})
      : path_(dir_.path() + "/corpus.txt") {
    WriteEdgesToFile(path_, edges);
    segmented_ = std::make_unique<SegmentedTextStream>(path_, num_segments,
                                                       config);
  }

  const std::string& path() const { return path_; }
  const ScopedTempDir& dir() const { return dir_; }
  SegmentedTextStream& segmented() { return *segmented_; }

 private:
  ScopedTempDir dir_;
  std::string path_;
  std::unique_ptr<SegmentedTextStream> segmented_;
};

// Spawn/pipe fixture for the multi-process reduction tree: a temp corpus,
// a checkpoint directory beside it, and inline/distributed runs over the
// same segment split, each returning the SERIALIZED final state — the
// bit-identical currency of the differential battery.
class ScopedWorkerHarness {
 public:
  struct Result {
    std::string state_blob;    // CoverageSketchState::Save bytes
    uint64_t fingerprint = 0;  // MergeFingerprint of the final state
    DistMetrics metrics;       // empty for inline runs
  };

  ScopedWorkerHarness(const std::vector<Edge>& edges, uint32_t num_segments)
      : corpus_(edges, num_segments), num_segments_(num_segments) {}

  std::string CheckpointDir() const {
    return corpus_.dir().path();  // flat dir: checkpoints sit by the corpus
  }

  // Opens segment i of the corpus, wrapped with stream faults when
  // `injector` carries any (called in the worker child post-fork).
  ProcessReductionTree<CoverageSketchState>::SegmentOpener MakeOpener(
      const FaultInjector* injector = nullptr) {
    return [this, injector](uint32_t segment) {
      std::unique_ptr<EdgeStream> s = corpus_.segmented().OpenSegment(segment);
      if (injector != nullptr && injector->plan().HasStreamFaults()) {
        s = WrapWithFaults(std::move(s), injector);
      }
      return s;
    };
  }

  Result RunDist(const DistOptions& options,
                 CoverageSketchState::Config config = {}) {
    DistOptions opts = options;
    // STREAMKC_DIST_TRANSPORT=tcp re-runs the whole dist battery over the
    // socket transport (the CI loopback-TCP leg) without touching each
    // test; a test that sets the transport explicitly keeps its choice.
    const char* env = std::getenv("STREAMKC_DIST_TRANSPORT");
    if (env != nullptr && *env != '\0' &&
        opts.transport.kind == TransportKind::kPipe) {
      CHECK(ParseTransportKind(env, &opts.transport.kind));
    }
    ProcessReductionTree<CoverageSketchState> tree(
        opts, [config](uint32_t) { return CoverageSketchState(config); });
    CoverageSketchState state =
        tree.Run(num_segments_, MakeOpener(options.fault_injector));
    Result r;
    r.fingerprint = state.MergeFingerprint();
    std::ostringstream os;
    state.Save(os);
    r.state_blob = os.str();
    r.metrics = tree.metrics();
    return r;
  }

  // Single-process reference pass: same segments, same batched ingest path.
  Result RunInline(size_t batch_size = 4096,
                   CoverageSketchState::Config config = {}) {
    CoverageSketchState state(config);
    EdgeBatch batch(batch_size);
    for (uint32_t seg = 0; seg < num_segments_; ++seg) {
      auto stream = corpus_.segmented().OpenSegment(seg);
      bool more = true;
      while (more) {
        batch.Clear();
        Edge e;
        while (batch.size() < batch_size && stream->Next(&e)) {
          batch.edges.push_back(e);
        }
        more = batch.size() == batch_size;
        if (!batch.empty()) {
          batch.Prefold();
          state.ProcessBatch(batch.View());
        }
      }
      CHECK(stream->ok());
    }
    Result r;
    r.fingerprint = state.MergeFingerprint();
    std::ostringstream os;
    state.Save(os);
    r.state_blob = os.str();
    return r;
  }

 private:
  ScopedTempCorpus corpus_;
  uint32_t num_segments_;
};

// Environment-scaled test knob: sweeps read their trial/seed counts from
// env vars so the default ctest run stays fast while the stress
// configuration (ctest -C stress) turns the same binaries up.
inline uint64_t EnvScaledU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  uint64_t parsed = std::strtoull(v, &end, 10);
  return (end != v && *end == '\0') ? parsed : fallback;
}

}  // namespace streamkc

#endif  // STREAMKC_TESTS_TEST_UTIL_H_
