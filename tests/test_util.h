// Shared helpers for streamkc behavioral tests.

#ifndef STREAMKC_TESTS_TEST_UTIL_H_
#define STREAMKC_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/streaming_interface.h"
#include "offline/greedy.h"
#include "setsys/generators.h"
#include "setsys/set_system.h"
#include "stream/edge.h"
#include "util/random.h"

namespace streamkc {

// Streams `sys` into `alg` in the given arrival order.
inline void FeedSystem(const SetSystem& sys, ArrivalOrder order, uint64_t seed,
                       StreamingEstimator& alg) {
  VectorEdgeStream stream = sys.MakeStream(order, seed);
  FeedStream(stream, alg);
}

// Greedy coverage, used as the OPT reference in quality assertions: greedy
// is within (1 - 1/e) of OPT, so OPT ≤ greedy / 0.632.
inline double OptUpperBound(const SetSystem& sys, uint64_t k) {
  return static_cast<double>(LazyGreedyMaxCover(sys, k).coverage) /
         (1.0 - 1.0 / 2.718281828459045);
}

inline uint64_t GreedyCoverage(const SetSystem& sys, uint64_t k) {
  return LazyGreedyMaxCover(sys, k).coverage;
}

// Unstructured synthetic edge stream (hash-random incidences) — the
// workload the runtime/fault tests shard and perturb. Pure function of the
// arguments; the same seed always yields the same token sequence.
inline std::vector<Edge> SyntheticEdges(size_t count, uint64_t seed,
                                        uint64_t num_sets = 256,
                                        uint64_t num_elements = 4096) {
  std::vector<Edge> edges;
  edges.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t h = SplitMix64(seed + i);
    edges.push_back(Edge{h % num_sets, SplitMix64(h) % num_elements});
  }
  return edges;
}

// Builds one of the named instance families at a common shape — the cell
// axis shared by the statistical-guarantee and differential sweeps.
// `family` ∈ {"uniform", "zipf", "planted"}.
inline GeneratedInstance MakeFamilyInstance(const std::string& family,
                                            uint64_t m, uint64_t n, uint64_t k,
                                            uint64_t seed) {
  if (family == "uniform") return RandomUniform(m, n, 12, seed);
  if (family == "zipf") return ZipfFrequency(m, n, 12, 1.1, seed);
  return PlantedCover(m, n, k, 0.5, 6, seed);
}

// Materializes `inst` as a randomly ordered edge stream (the general
// edge-arrival model's adversarial default for tests).
inline std::vector<Edge> InstanceEdges(const GeneratedInstance& inst,
                                       uint64_t order_seed) {
  std::vector<Edge> edges = inst.system.MaterializeEdges();
  ApplyArrivalOrder(edges, ArrivalOrder::kRandom, order_seed);
  return edges;
}

// Environment-scaled test knob: sweeps read their trial/seed counts from
// env vars so the default ctest run stays fast while the stress
// configuration (ctest -C stress) turns the same binaries up.
inline uint64_t EnvScaledU64(const char* name, uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  uint64_t parsed = std::strtoull(v, &end, 10);
  return (end != v && *end == '\0') ? parsed : fallback;
}

}  // namespace streamkc

#endif  // STREAMKC_TESTS_TEST_UTIL_H_
