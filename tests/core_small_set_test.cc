#include "core/small_set.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace streamkc {
namespace {

SmallSet MakeSmallSet(const SetSystem& sys, uint64_t k, double alpha,
                      uint64_t seed, bool reporting = false) {
  SmallSet::Config c;
  c.params = Params::Practical(sys.num_sets(), sys.num_elements(), k, alpha);
  c.universe_size = sys.num_elements();
  c.reporting = reporting;
  c.seed = seed;
  return SmallSet(c);
}

TEST(SmallSet, FeasibleOnSmallSetFamily) {
  // Case III: OPT = many small disjoint sets. SmallSet must return
  // Ω̃(OPT/α) without overestimating (Theorem 4.22).
  auto inst = SmallSetFamily(1024, 4096, 64, 3);
  const double alpha = 8;
  uint64_t opt = inst.planted_coverage;  // 2048
  int feasible = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    SmallSet ss = MakeSmallSet(inst.system, 64, alpha, 500 + seed);
    FeedSystem(inst.system, ArrivalOrder::kRandom, seed, ss);
    EstimateOutcome out = ss.Finalize();
    if (!out.feasible) continue;
    ++feasible;
    EXPECT_GE(out.estimate, static_cast<double>(opt) / (2.0 * alpha));
    EXPECT_LE(out.estimate, static_cast<double>(opt) * 1.2);
  }
  EXPECT_GE(feasible, 4);
}

TEST(SmallSet, AcceptanceCutBlocksNoiseScaleUps) {
  // On an instance with almost no coverage (tiny sets in a tiny window),
  // scaled-up estimates would be wild overestimates; the sol_γ = Ω(k′) cut
  // must keep the estimate below a small multiple of the true optimum.
  std::vector<std::vector<ElementId>> sets(512);
  for (size_t i = 0; i < sets.size(); ++i) sets[i] = {static_cast<ElementId>(i % 16)};
  SetSystem sys(1 << 14, std::move(sets));
  for (uint64_t seed = 0; seed < 5; ++seed) {
    SmallSet ss = MakeSmallSet(sys, 32, 8, 700 + seed);
    FeedSystem(sys, ArrivalOrder::kRandom, seed, ss);
    EstimateOutcome out = ss.Finalize();
    if (out.feasible) {
      // OPT = 16; allow sampling noise but nothing like |U|-scale outputs.
      EXPECT_LE(out.estimate, 16.0 * 40.0) << "seed " << seed;
    }
  }
}

TEST(SmallSet, DenseInstancesRescaleInsteadOfDying) {
  // Dense instance: high-γ (rate-1) guesses cannot store their sample; they
  // must halve their element rate (possibly repeatedly) and stay under
  // budget, remaining usable rather than dying.
  auto inst = RandomUniform(4096, 1024, 64, 5);
  SmallSet ss = MakeSmallSet(inst.system, 256, 4, 11);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 2, ss);
  EXPECT_GT(ss.num_rescaled(), 0u);
  // The overall memory is still bounded by budget × instances.
  Params p = Params::Practical(4096, 1024, 256, 4);
  EXPECT_LE(ss.MemoryBytes(),
            (p.SmallSetBudgetBytes() + (64u << 10)) * ss.num_instances());
  // And the subroutine still produces a sound estimate on this very dense
  // instance (greedy covers nearly everything).
  EstimateOutcome out = ss.Finalize();
  ASSERT_TRUE(out.feasible);
  EXPECT_LE(out.estimate, OptUpperBound(inst.system, 256) * 1.25);
  EXPECT_GE(out.estimate, static_cast<double>(
                              GreedyCoverage(inst.system, 256)) /
                              (4.0 * 4.0));
}

TEST(SmallSet, NeverOverestimatesByMuch) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    auto inst = RandomUniform(512, 2048, 8, 800 + seed);
    SmallSet ss = MakeSmallSet(inst.system, 32, 8, seed);
    FeedSystem(inst.system, ArrivalOrder::kRandom, seed, ss);
    EstimateOutcome out = ss.Finalize();
    if (out.feasible) {
      EXPECT_LE(out.estimate, OptUpperBound(inst.system, 32) * 1.25)
          << "seed " << seed;
    }
  }
}

TEST(SmallSet, ReportingReturnsRealSetIds) {
  auto inst = SmallSetFamily(1024, 4096, 64, 7);
  SmallSet ss = MakeSmallSet(inst.system, 64, 8, 21, /*reporting=*/true);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 4, ss);
  EstimateOutcome out = ss.Finalize();
  ASSERT_TRUE(out.feasible);
  std::vector<SetId> sets = ss.ExtractSolution(64);
  ASSERT_FALSE(sets.empty());
  EXPECT_LE(sets.size(), 64u);
  for (SetId s : sets) EXPECT_LT(s, 1024u);
  // Greedy on the sample favors the planted slices: the returned sets'
  // true coverage must be a constant fraction of the claimed estimate.
  uint64_t cov = inst.system.CoverageOf(sets);
  EXPECT_GE(static_cast<double>(cov), out.estimate / 4.0);
}

TEST(SmallSet, GuessGridScalesWithAlpha) {
  auto inst = RandomUniform(256, 512, 4, 9);
  SmallSet coarse = MakeSmallSet(inst.system, 16, 2, 1);
  SmallSet fine = MakeSmallSet(inst.system, 16, 16, 1);
  EXPECT_GE(fine.num_instances(), coarse.num_instances());
}

TEST(SmallSet, OrderInvariantModuloDuplicates) {
  // Stored sub-instances collect (set, element) pairs; coverage after dedup
  // is order-independent, so estimates match across orders.
  auto inst = SmallSetFamily(512, 2048, 32, 11);
  auto run = [&](ArrivalOrder order) {
    SmallSet ss = MakeSmallSet(inst.system, 32, 8, 33);
    FeedSystem(inst.system, order, 5, ss);
    return ss.Finalize().estimate;
  };
  EXPECT_DOUBLE_EQ(run(ArrivalOrder::kRandom),
                   run(ArrivalOrder::kElementContiguous));
}

}  // namespace
}  // namespace streamkc
