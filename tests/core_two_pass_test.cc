#include "core/two_pass.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace streamkc {
namespace {

TwoPassMaxCover::Config MakeConfig(const SetSystem& sys, uint64_t k,
                                   double alpha, uint64_t seed,
                                   bool reporting = false) {
  TwoPassMaxCover::Config c;
  c.params = Params::Practical(sys.num_sets(), sys.num_elements(), k, alpha);
  c.reporting = reporting;
  c.seed = seed;
  return c;
}

TEST(TwoPass, BracketContainsOpt) {
  auto inst = PlantedCover(2048, 8192, 32, 0.25, 6, 3);
  uint64_t opt = inst.planted_coverage;  // 2048
  VectorEdgeStream stream = inst.system.MakeStream(ArrivalOrder::kRandom, 1);
  TwoPassMaxCover tp(MakeConfig(inst.system, 32, 8, 5));
  RunTwoPass(stream, MakeConfig(inst.system, 32, 8, 5), &tp);
  EXPECT_LE(tp.guess_lo(), opt);
  EXPECT_GE(static_cast<double>(tp.guess_hi()), 0.9 * static_cast<double>(opt));
}

TEST(TwoPass, FewerOraclesThanSinglePass) {
  auto inst = PlantedCover(2048, 1 << 15, 32, 0.0625, 6, 5);
  TwoPassMaxCover tp(MakeConfig(inst.system, 32, 8, 7));
  VectorEdgeStream stream = inst.system.MakeStream(ArrivalOrder::kRandom, 2);
  RunTwoPass(stream, MakeConfig(inst.system, 32, 8, 7), &tp);

  EstimateMaxCover::Config single;
  single.params = Params::Practical(2048, 1 << 15, 32, 8);
  single.seed = 7;
  EstimateMaxCover sp(single);
  EXPECT_LT(tp.num_oracles(), sp.num_oracles());
}

TEST(TwoPass, QualityMatchesSinglePass) {
  auto inst = PlantedCover(2048, 4096, 32, 0.5, 6, 9);
  double greedy = static_cast<double>(GreedyCoverage(inst.system, 32));
  const double alpha = 8;
  VectorEdgeStream stream = inst.system.MakeStream(ArrivalOrder::kRandom, 3);
  EstimateOutcome out =
      RunTwoPass(stream, MakeConfig(inst.system, 32, alpha, 11));
  ASSERT_TRUE(out.feasible);
  EXPECT_GE(out.estimate, greedy / (1.5 * alpha));
  EXPECT_LE(out.estimate, OptUpperBound(inst.system, 32) * 1.2);
}

TEST(TwoPass, PeakMemoryBelowSinglePass) {
  // On a dilute universe (OPT ≪ n) the bracket prunes the big guesses, so
  // peak two-pass memory undercuts the single-pass estimator's.
  auto inst = PlantedCover(2048, 1 << 15, 32, 0.0625, 6, 13);
  TwoPassMaxCover tp(MakeConfig(inst.system, 32, 8, 15));
  VectorEdgeStream stream = inst.system.MakeStream(ArrivalOrder::kRandom, 4);
  RunTwoPass(stream, MakeConfig(inst.system, 32, 8, 15), &tp);

  EstimateMaxCover::Config single;
  single.params = Params::Practical(2048, 1 << 15, 32, 8);
  single.seed = 15;
  EstimateMaxCover sp(single);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 4, sp);
  EXPECT_LT(tp.peak_memory_bytes(), sp.MemoryBytes());
}

TEST(TwoPass, ReportingWorks) {
  auto inst = SmallSetFamily(1024, 4096, 64, 17);
  TwoPassMaxCover tp(MakeConfig(inst.system, 64, 8, 19, /*reporting=*/true));
  VectorEdgeStream stream = inst.system.MakeStream(ArrivalOrder::kRandom, 5);
  RunTwoPass(stream, MakeConfig(inst.system, 64, 8, 19, /*reporting=*/true),
             &tp);
  std::vector<SetId> sets = tp.ExtractSolution(64);
  ASSERT_FALSE(sets.empty());
  EXPECT_LE(sets.size(), 64u);
  uint64_t cov = inst.system.CoverageOf(sets);
  EXPECT_GE(static_cast<double>(cov),
            static_cast<double>(GreedyCoverage(inst.system, 64)) / 16.0);
}

TEST(TwoPass, PhaseDisciplineEnforced) {
  auto inst = RandomUniform(64, 128, 4, 21);
  TwoPassMaxCover tp(MakeConfig(inst.system, 4, 4, 23));
  Edge e{0, 0};
  tp.ProcessFirstPass(e);
  EXPECT_DEATH(tp.ProcessSecondPass(e), "CHECK failed");
  EXPECT_DEATH(tp.Finalize(), "CHECK failed");
  tp.FinishFirstPass();
  EXPECT_DEATH(tp.ProcessFirstPass(e), "CHECK failed");
  EXPECT_DEATH(tp.FinishFirstPass(), "CHECK failed");
}

}  // namespace
}  // namespace streamkc
