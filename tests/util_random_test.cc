#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace streamkc {
namespace {

TEST(SplitMix64, DeterministicAndMixing) {
  EXPECT_EQ(SplitMix64(1), SplitMix64(1));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
  // Consecutive inputs should produce wildly different outputs.
  uint64_t diff = SplitMix64(100) ^ SplitMix64(101);
  EXPECT_GE(__builtin_popcountll(diff), 10);
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c;
  }
  Rng d(42), e(43);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (d.Next() == e.Next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformU64InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(10), 10u);
  }
  EXPECT_EQ(rng.UniformU64(1), 0u);
}

TEST(Rng, UniformU64CoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformU64(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformU64RoughlyUniform) {
  Rng rng(13);
  const int kBuckets = 16, kDraws = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformU64(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 6 * std::sqrt(kDraws / kBuckets));
  }
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformRange(5, 8));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 5u);
  EXPECT_EQ(*seen.rbegin(), 8u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(19);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  auto sample = rng.SampleWithoutReplacement(1000, 100);
  EXPECT_EQ(sample.size(), 100u);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 100u);
  for (uint64_t x : sample) EXPECT_LT(x, 1000u);
}

TEST(Rng, SampleWithoutReplacementFull) {
  Rng rng(41);
  auto sample = rng.SampleWithoutReplacement(50, 50);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 50u);
}

TEST(Rng, SampleWithoutReplacementEmpty) {
  Rng rng(43);
  EXPECT_TRUE(rng.SampleWithoutReplacement(10, 0).empty());
}

TEST(Rng, SampleWithoutReplacementUniformish) {
  // Element 0 should appear in a 10-of-100 sample about 10% of the time.
  int hits = 0;
  const int kTrials = 5000;
  for (int t = 0; t < kTrials; ++t) {
    Rng rng(1000 + t);
    auto s = rng.SampleWithoutReplacement(100, 10);
    hits += std::count(s.begin(), s.end(), 0u);
  }
  EXPECT_NEAR(hits / static_cast<double>(kTrials), 0.10, 0.02);
}

TEST(Rng, ForkDecorrelates) {
  Rng rng(47);
  uint64_t s1 = rng.Fork();
  uint64_t s2 = rng.Fork();
  EXPECT_NE(s1, s2);
  Rng a(s1), b(s2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace streamkc
