// Space-complexity integration tests: the measured footprint must follow the
// paper's Θ̃(m/α²) law (Theorems 3.1 / 3.3) in shape.

#include <gtest/gtest.h>

#include <cmath>

#include "core/estimate_max_cover.h"
#include "core/report_max_cover.h"
#include "test_util.h"

namespace streamkc {
namespace {

size_t MeasureEstimatorBytes(uint64_t m, uint64_t n, uint64_t k, double alpha,
                             const SetSystem& sys) {
  EstimateMaxCover::Config c;
  c.params = Params::Practical(m, n, k, alpha);
  c.seed = 42;
  EstimateMaxCover est(c);
  FeedSystem(sys, ArrivalOrder::kRandom, 1, est);
  return est.MemoryBytes();
}

TEST(SpaceScaling, AlphaSquaredLaw) {
  // At fixed m, going from α to 4α should shrink the dominant m/α² term by
  // 16×. Constants (hash seeds, L0s) damp the ratio; demand ≥ 2.5×.
  const uint64_t m = 1 << 14, n = 1 << 12, k = 64;
  auto inst = RandomUniform(m, n, 8, 7);
  size_t wide = MeasureEstimatorBytes(m, n, k, 4, inst.system);
  size_t narrow = MeasureEstimatorBytes(m, n, k, 16, inst.system);
  EXPECT_GE(static_cast<double>(wide), 2.5 * static_cast<double>(narrow));
}

TEST(SpaceScaling, LinearInM) {
  // At fixed α, quadrupling m should grow the allocated sketch state
  // roughly linearly (the dominant width-Θ(m/α²) CountSketches). Measured at
  // construction: the stored SmallSet samples are data-dependent and capped,
  // so post-feed numbers mix in workload effects.
  const double alpha = 8;
  auto bytes_for_m = [](uint64_t m) {
    EstimateMaxCover::Config c;
    c.params = Params::Practical(m, 1 << 10, 16, 8);
    c.seed = 42;
    return EstimateMaxCover(c).MemoryBytes();
  };
  size_t small = bytes_for_m(1 << 12);
  size_t big = bytes_for_m(1 << 14);
  (void)alpha;
  EXPECT_GE(static_cast<double>(big), 1.8 * static_cast<double>(small));
  EXPECT_LE(static_cast<double>(big), 16.0 * static_cast<double>(small));
}

TEST(SpaceScaling, SublinearInStreamForLargeAlpha) {
  // The whole point: at α = √m the sketch is polylog-sized relative to the
  // input. Compare the estimator footprint against materialized stream size.
  const uint64_t m = 1 << 14, n = 1 << 12;
  auto inst = RandomUniform(m, n, 16, 11);
  size_t stream_bytes = inst.system.TotalEdges() * sizeof(Edge);
  size_t sketch_bytes =
      MeasureEstimatorBytes(m, n, 64, std::sqrt(static_cast<double>(m)),
                            inst.system);
  EXPECT_LT(sketch_bytes, stream_bytes);
}

TEST(SpaceScaling, ReportingAddsOnlyKDependentState) {
  // Õ(m/α² + k): the reporting layer on top of estimation costs O(k) ids
  // plus per-group counters, not another m-dependent structure.
  const uint64_t m = 1 << 13, n = 1 << 11;
  auto inst = RandomUniform(m, n, 8, 13);
  EstimateMaxCover::Config ec;
  ec.params = Params::Practical(m, n, 64, 8);
  ec.seed = 5;
  EstimateMaxCover est(ec);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 2, est);

  ReportMaxCover::Config rc;
  rc.params = ec.params;
  rc.seed = 5;
  ReportMaxCover rep(rc);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 2, rep);

  // Reporting adds the per-group L0 counters (Õ(α) per oracle) and the
  // bottom-k sample; bounded by a small multiple of the estimator.
  EXPECT_LE(rep.MemoryBytes(), 4 * est.MemoryBytes() + (1u << 20));
}

TEST(SpaceScaling, TheoryModeDegreeGrowsWithInstance) {
  // In theory mode the hash independence (and so seed storage) grows with
  // log(mn) — check the knob is actually wired through.
  Params small = Params::Theory(1 << 8, 1 << 8, 4, 4);
  Params big = Params::Theory(1 << 18, 1 << 18, 4, 4);
  EXPECT_GT(big.log_wise_degree, small.log_wise_degree);
}

}  // namespace
}  // namespace streamkc
