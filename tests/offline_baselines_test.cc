#include "offline/baselines.h"

#include <gtest/gtest.h>

#include <set>

#include "offline/greedy.h"
#include "setsys/generators.h"

namespace streamkc {
namespace {

TEST(RandomKBaseline, DistinctSets) {
  auto inst = RandomUniform(50, 200, 8, 1);
  CoverSolution sol = RandomKBaseline(inst.system, 10, 7);
  EXPECT_EQ(sol.sets.size(), 10u);
  std::set<SetId> unique(sol.sets.begin(), sol.sets.end());
  EXPECT_EQ(unique.size(), 10u);
  EXPECT_EQ(sol.coverage, inst.system.CoverageOf(sol.sets));
}

TEST(RandomKBaseline, KExceedsM) {
  auto inst = RandomUniform(5, 50, 4, 2);
  CoverSolution sol = RandomKBaseline(inst.system, 20, 3);
  EXPECT_EQ(sol.sets.size(), 5u);
}

TEST(RandomKBaseline, Deterministic) {
  auto inst = RandomUniform(40, 100, 5, 4);
  EXPECT_EQ(RandomKBaseline(inst.system, 8, 9).sets,
            RandomKBaseline(inst.system, 8, 9).sets);
}

TEST(TopKBySize, PicksLargest) {
  SetSystem sys(20, {{0}, {1, 2, 3, 4, 5}, {6, 7}, {8, 9, 10}});
  CoverSolution sol = TopKBySizeBaseline(sys, 2);
  std::set<SetId> got(sol.sets.begin(), sol.sets.end());
  EXPECT_TRUE(got.count(1));
  EXPECT_TRUE(got.count(3));
  EXPECT_EQ(sol.coverage, 8u);
}

TEST(TopKBySize, GreedyAtLeastAsGoodOnOverlap) {
  // Top-k by size ignores overlap; greedy must not be worse.
  SetSystem sys(12, {{0, 1, 2, 3, 4}, {0, 1, 2, 3, 5}, {6, 7, 8}, {9, 10}});
  CoverSolution topk = TopKBySizeBaseline(sys, 2);
  CoverSolution greedy = GreedyMaxCover(sys, 2);
  EXPECT_GE(greedy.coverage, topk.coverage);
  EXPECT_EQ(greedy.coverage, 8u);
  EXPECT_EQ(topk.coverage, 6u);
}

TEST(Baselines, GreedyDominatesRandomOnPlanted) {
  auto inst = PlantedCover(100, 1000, 10, 0.5, 5, 6);
  CoverSolution greedy = GreedyMaxCover(inst.system, 10);
  CoverSolution random = RandomKBaseline(inst.system, 10, 11);
  EXPECT_GT(greedy.coverage, random.coverage);
}

}  // namespace
}  // namespace streamkc
