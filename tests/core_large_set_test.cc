#include "core/large_set.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace streamkc {
namespace {

LargeSet MakeLargeSet(const SetSystem& sys, uint64_t k, double alpha,
                      uint64_t seed, bool reporting = false) {
  Params p = Params::Practical(sys.num_sets(), sys.num_elements(), k, alpha);
  LargeSet::Config c;
  c.params = p;
  c.universe_size = sys.num_elements();
  // Oracle's rule: w = k if sα ≥ 2k else α.
  c.w = (p.s * alpha >= 2.0 * static_cast<double>(k)) ? static_cast<double>(k)
                                                      : alpha;
  c.reporting = reporting;
  c.seed = seed;
  return LargeSet(c);
}

TEST(LargeSet, FeasibleOnLargeSetFamily) {
  // Case II: OPT dominated by a few jumbo sets; the heavy-hitter pipeline
  // must fire and return Ω̃(|U|/α) (Theorem 4.8).
  auto inst = LargeSetFamily(1024, 2048, 4, 5);
  const double alpha = 8;
  int feasible = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    LargeSet ls = MakeLargeSet(inst.system, 8, alpha, 400 + seed);
    FeedSystem(inst.system, ArrivalOrder::kRandom, seed, ls);
    EstimateOutcome out = ls.Finalize();
    if (!out.feasible) continue;
    ++feasible;
    // Ω(|U|/α) with practical constants: at least |U|/(f·η·α·4).
    EXPECT_GE(out.estimate, 2048.0 / (2.0 * 4.0 * alpha * 4.0));
    EXPECT_LE(out.estimate, OptUpperBound(inst.system, 8) * 1.1);
  }
  EXPECT_GE(feasible, 4);
}

TEST(LargeSet, EstimateScalesBackFromSample) {
  // The estimate is at universe scale even though the subroutine only sees
  // an element sample: it must land within a constant factor of the winning
  // superset's true coverage, not the sample's.
  auto inst = LargeSetFamily(2048, 4096, 2, 7);
  LargeSet ls = MakeLargeSet(inst.system, 4, 8, 19);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 2, ls);
  EstimateOutcome out = ls.Finalize();
  ASSERT_TRUE(out.feasible);
  // Each jumbo set covers 1024; a superset holds ≤ w of anything else.
  EXPECT_GE(out.estimate, 1024.0 / 16.0);
  EXPECT_LE(out.estimate, 4096.0);
}

TEST(LargeSet, NeverOverestimates) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    auto inst = RandomUniform(512, 1024, 8, 600 + seed);
    LargeSet ls = MakeLargeSet(inst.system, 16, 8, seed);
    FeedSystem(inst.system, ArrivalOrder::kRandom, seed, ls);
    EstimateOutcome out = ls.Finalize();
    if (out.feasible) {
      EXPECT_LE(out.estimate, OptUpperBound(inst.system, 16) * 1.15)
          << "seed " << seed;
    }
  }
}

TEST(LargeSet, RepetitionCountFollowsParams) {
  auto inst = RandomUniform(256, 40000, 4, 9);
  LargeSet ls = MakeLargeSet(inst.system, 4, 4, 1);
  // Practical mode: large_set_reps (2) repetitions when sampling is active.
  EXPECT_LE(ls.num_repetitions(), 2u);
  EXPECT_GE(ls.num_repetitions(), 1u);
}

TEST(LargeSet, SingleRepWhenUniverseTiny) {
  // Rate clips to 1 on tiny universes → one repetition suffices.
  auto inst = RandomUniform(256, 64, 4, 11);
  LargeSet ls = MakeLargeSet(inst.system, 4, 2, 1);
  EXPECT_EQ(ls.num_repetitions(), 1u);
}

TEST(LargeSet, ReportingReturnsWinningSuperset) {
  auto inst = LargeSetFamily(1024, 2048, 4, 13);
  LargeSet ls = MakeLargeSet(inst.system, 8, 8, 23, /*reporting=*/true);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 3, ls);
  EstimateOutcome out = ls.Finalize();
  ASSERT_TRUE(out.feasible);
  std::vector<SetId> sets = ls.ExtractSolution(8);
  ASSERT_FALSE(sets.empty());
  EXPECT_LE(sets.size(), 8u);
  // The winning superset should contain one of the jumbo sets (ids 0..3) —
  // that is what made it heavy.
  uint64_t cov = inst.system.CoverageOf(sets);
  EXPECT_GE(static_cast<double>(cov), out.estimate / 3.0);
}

TEST(LargeSet, OrderInvariance) {
  auto inst = LargeSetFamily(512, 1024, 2, 17);
  auto run = [&](ArrivalOrder order) {
    LargeSet ls = MakeLargeSet(inst.system, 4, 4, 99);
    FeedSystem(inst.system, order, 7, ls);
    return ls.Finalize().estimate;
  };
  // CountSketch and L0 state are linear/set-valued → exactly order
  // independent for a fixed seed.
  EXPECT_DOUBLE_EQ(run(ArrivalOrder::kRandom), run(ArrivalOrder::kSetContiguous));
  EXPECT_DOUBLE_EQ(run(ArrivalOrder::kRandom), run(ArrivalOrder::kRoundRobin));
}

TEST(LargeSet, MemoryScalesInverselyWithAlphaSquared) {
  // The dominant term is the Case-1 contributing sketch at φ1 = α²/m:
  // quadrupling α should shrink memory markedly.
  auto inst = RandomUniform(1 << 14, 1 << 12, 8, 19);
  LargeSet narrow = MakeLargeSet(inst.system, 64, 32, 1);
  LargeSet wide = MakeLargeSet(inst.system, 64, 4, 1);
  EXPECT_GT(wide.MemoryBytes(), 4 * narrow.MemoryBytes());
}

TEST(LargeSetComplete, FullRateModeMatchesFigure4) {
  // With element_rate = 1 this is LargeSetSimple (Fig. 4): no sampling, the
  // vector is over true superset sizes.
  auto inst = LargeSetFamily(512, 512, 2, 23);
  Params p = Params::Practical(512, 512, 4, 4);
  LargeSetComplete::Config c;
  c.params = p;
  c.universe_size = 512;
  c.w = 4;
  c.element_rate = 1.0;
  c.seed = 31;
  LargeSetComplete lsc(c);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 5, lsc);
  EstimateOutcome out = lsc.Finalize();
  ASSERT_TRUE(out.feasible);
  EXPECT_GE(out.estimate, 256.0 / (2.0 * 4.0 * 4.0 * 4.0));
}

}  // namespace
}  // namespace streamkc
