// Theory-mode pipeline tests: Params::Theory encodes Table 2 verbatim, which
// makes thresholds astronomically conservative at laptop scale. These tests
// pin down the *behavioral* consequences: the pipeline runs, never crashes,
// never overestimates — it simply prefers "infeasible" to wrong answers —
// and its hash machinery really uses Θ(log mn)-wise independence.

#include <gtest/gtest.h>

#include "core/estimate_max_cover.h"
#include "core/oracle.h"
#include "test_util.h"

namespace streamkc {
namespace {

TEST(TheoryMode, PipelineRunsEndToEnd) {
  auto inst = PlantedCover(256, 512, 8, 0.5, 4, 1);
  EstimateMaxCover::Config c;
  c.params = Params::Theory(256, 512, 8, 4);
  // Theory reps are O(log n); cap the work for the test by reusing the
  // theory constants but the practical grid.
  c.params.universe_guess_log_step = 2;
  c.params.universe_reduction_reps = 1;
  c.params.large_set_reps = 2;
  c.params.small_set_reps = 1;
  c.seed = 5;
  EstimateMaxCover est(c);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 1, est);
  EstimateOutcome out = est.Finalize();
  // Theory constants may return a conservative 0 ("no guess passed"), but
  // must never overestimate.
  EXPECT_LE(out.estimate, OptUpperBound(inst.system, 8) * 1.2);
}

TEST(TheoryMode, OracleNeverOverestimates) {
  auto inst = LargeSetFamily(512, 512, 2, 3);
  Params p = Params::Theory(512, 512, 4, 4);
  p.large_set_reps = 2;
  p.small_set_reps = 1;
  Oracle::Config oc;
  oc.params = p;
  oc.universe_size = 512;
  oc.seed = 9;
  Oracle oracle(oc);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 2, oracle);
  EstimateOutcome out = oracle.Finalize();
  if (out.feasible) {
    EXPECT_LE(out.estimate, OptUpperBound(inst.system, 4) * 1.2);
  }
}

TEST(TheoryMode, ThresholdsAreStricterThanPractical) {
  // σ_theory ≪ σ_practical and f_theory ≫ f_practical: the theory constants
  // always make acceptance harder, never easier.
  Params t = Params::Theory(1 << 14, 1 << 12, 32, 8);
  Params pr = Params::Practical(1 << 14, 1 << 12, 32, 8);
  EXPECT_LT(t.sigma, pr.sigma);
  EXPECT_GT(t.f, pr.f);
  EXPECT_LT(t.s, pr.s);
}

TEST(TheoryMode, HashIndependenceMatchesLemmaA2) {
  Params t = Params::Theory(1 << 10, 1 << 10, 4, 4);
  // Θ(log(mn))-wise: degree = log2(m) + log2(n) + slack.
  EXPECT_EQ(t.log_wise_degree, 10u + 10u + 8u);
  // And the hash family actually stores that many coefficients.
  KWiseHash h(t.log_wise_degree, 1);
  EXPECT_EQ(h.MemoryBytes(), t.log_wise_degree * sizeof(uint64_t));
}

TEST(TheoryMode, SmallSetUsesPaperRates) {
  // In theory mode k′ = 36k/(sα) (capped at k) and the set-sampling rate is
  // 18/(sα); verify via behavior: the theory SmallSet instantiates more
  // repetitions (log n) than practical (1).
  auto inst = RandomUniform(128, 40000, 4, 7);
  Params t = Params::Theory(128, 40000, 8, 2);
  Params pr = Params::Practical(128, 40000, 8, 2);
  SmallSet::Config tc{t, 40000, false, 1};
  SmallSet::Config pc{pr, 40000, false, 1};
  SmallSet theory(tc), practical(pc);
  EXPECT_GT(theory.num_instances(), practical.num_instances());
}

}  // namespace
}  // namespace streamkc
