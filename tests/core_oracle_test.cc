#include "core/oracle.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace streamkc {
namespace {

Oracle MakeOracle(const SetSystem& sys, uint64_t k, double alpha,
                  uint64_t seed, bool reporting = false) {
  Oracle::Config c;
  c.params = Params::Practical(sys.num_sets(), sys.num_elements(), k, alpha);
  c.universe_size = sys.num_elements();
  c.reporting = reporting;
  c.seed = seed;
  return Oracle(c);
}

TEST(Oracle, SmallSetBranchOnlyWhenSAlphaSmall) {
  auto inst = RandomUniform(256, 512, 4, 1);
  // k = 2, α = 64: s = 0.5·min(2,64)/64 = 1/64 → sα = 1 < 4 = 2k → branch
  // exists. k = 2, α huge relative to k? sα ≥ 2k needs 0.5·w ≥ 2k i.e.
  // 0.5k ≥ 2k: never with w = k. With w = α ≤ k: sα = 0.5α²/α·... Use
  // Figure 2's literal test via params.
  Oracle small_k(MakeOracle(inst.system, 2, 64, 1));
  Params p = Params::Practical(256, 512, 2, 64);
  EXPECT_EQ(small_k.has_small_set(), !(p.s * 64 >= 2.0 * 2));
}

// The oracle's contract (Def. 3.4 + Thm 4.1) on instances whose optimum
// covers ≥ |U|/η: some subroutine is feasible and the max estimate is a
// valid Õ(α)-approximate lower bound. Exercise all three case families.
struct OracleCase {
  const char* name;
  GeneratedInstance (*make)(uint64_t seed);
  uint64_t k;
};

GeneratedInstance MakeCommon(uint64_t seed) {
  return CommonElementFamily(1024, 2048, 8, 4.0, 1024, seed);
}
GeneratedInstance MakeLarge(uint64_t seed) {
  return LargeSetFamily(1024, 2048, 4, seed);
}
GeneratedInstance MakeSmall(uint64_t seed) {
  return SmallSetFamily(1024, 4096, 64, seed);
}
GeneratedInstance MakePlanted(uint64_t seed) {
  return PlantedCover(1024, 4096, 32, 0.5, 6, seed);
}

class OracleContract : public ::testing::TestWithParam<OracleCase> {};

TEST_P(OracleContract, FeasibleAndBounded) {
  const OracleCase& tc = GetParam();
  const double alpha = 8;
  auto inst = tc.make(42);
  double opt_ub = OptUpperBound(inst.system, tc.k);
  int feasible = 0;
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Oracle oracle = MakeOracle(inst.system, tc.k, alpha, 900 + seed);
    FeedSystem(inst.system, ArrivalOrder::kRandom, seed, oracle);
    EstimateOutcome out = oracle.Finalize();
    if (!out.feasible) continue;
    ++feasible;
    EXPECT_LE(out.estimate, opt_ub * 1.2) << tc.name;
    // Õ(α) quality: the practical constants keep the loss within ~2α
    // (LargeCommon's σ-scaled floor is looser but never the max here).
    EXPECT_GE(out.estimate, static_cast<double>(GreedyCoverage(
                                inst.system, tc.k)) /
                                (4.0 * alpha))
        << tc.name;
  }
  EXPECT_EQ(feasible, 3) << tc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Families, OracleContract,
    ::testing::Values(OracleCase{"common", MakeCommon, 8},
                      OracleCase{"large", MakeLarge, 8},
                      OracleCase{"small", MakeSmall, 64},
                      OracleCase{"planted", MakePlanted, 32}),
    [](const ::testing::TestParamInfo<OracleCase>& info) {
      return info.param.name;
    });

TEST(Oracle, SourceAttributionNamesWinner) {
  auto inst = LargeSetFamily(1024, 2048, 4, 3);
  Oracle oracle = MakeOracle(inst.system, 8, 8, 17);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 2, oracle);
  EstimateOutcome out = oracle.Finalize();
  ASSERT_TRUE(out.feasible);
  EXPECT_TRUE(out.source == "large-common" || out.source == "large-set" ||
              out.source == "small-set")
      << out.source;
}

TEST(Oracle, MaxOverSubroutines) {
  auto inst = MakePlanted(5);
  Oracle oracle = MakeOracle(inst.system, 32, 8, 23);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 3, oracle);
  EstimateOutcome combined = oracle.Finalize();
  ASSERT_TRUE(combined.feasible);
  for (const EstimateOutcome& sub :
       {oracle.large_common().Finalize(), oracle.large_set().Finalize(),
        oracle.small_set().Finalize()}) {
    if (sub.feasible) {
      EXPECT_GE(combined.estimate, sub.estimate);
    }
  }
}

TEST(Oracle, MemoryAccountsAllSubroutines) {
  auto inst = MakePlanted(7);
  Oracle oracle = MakeOracle(inst.system, 32, 8, 29);
  size_t total = oracle.MemoryBytes();
  size_t parts = oracle.large_common().MemoryBytes() +
                 oracle.large_set().MemoryBytes();
  if (oracle.has_small_set()) parts += oracle.small_set().MemoryBytes();
  EXPECT_EQ(total, parts);
}

TEST(Oracle, ReportingDelegatesToWinner) {
  auto inst = MakeSmall(9);
  Oracle oracle = MakeOracle(inst.system, 64, 8, 31, /*reporting=*/true);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 4, oracle);
  EstimateOutcome out = oracle.Finalize();
  ASSERT_TRUE(out.feasible);
  std::vector<SetId> sets = oracle.ExtractSolution(64);
  ASSERT_FALSE(sets.empty());
  EXPECT_LE(sets.size(), 64u);
  uint64_t cov = inst.system.CoverageOf(sets);
  EXPECT_GE(static_cast<double>(cov), out.estimate / 4.0);
}

}  // namespace
}  // namespace streamkc
