// MetricsRegistry unit tests: pointer stability, concurrent increments
// (exercised under TSan in CI), log2 histogram bucket boundaries, snapshot
// ordering, and exporter golden outputs.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "obs/export.h"

namespace streamkc {
namespace {

TEST(MetricsRegistry, ResolvesStablePointersByName) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("x_total");
  EXPECT_EQ(c, reg.GetCounter("x_total"));
  EXPECT_NE(static_cast<void*>(c), static_cast<void*>(reg.GetGauge("y")));
  EXPECT_EQ(reg.NumMetrics(), 2u);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      // Resolve inside the thread: name->object resolution must also be
      // thread-safe, not just Increment.
      Counter* c = reg.GetCounter("shared_total");
      Histogram* h = reg.GetHistogram("shared_hist");
      Gauge* g = reg.GetGauge("shared_max");
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c->Increment();
        if (i % 1000 == 0) {
          h->Observe(i);
          g->SetMax(i);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("shared_total")->Value(), kThreads * kPerThread);
  EXPECT_EQ(reg.GetHistogram("shared_hist")->Count(), kThreads * 100u);
  EXPECT_EQ(reg.GetGauge("shared_max")->Value(), 99000u);
}

TEST(Histogram, Log2BucketBoundaries) {
  // Bucket b holds v with bit_width(v) == b: bucket 0 is {0}, bucket b>=1
  // is [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), 64u);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), UINT64_MAX);
  // Every boundary value lands within its bucket's upper bound.
  for (uint32_t b = 1; b < 64; ++b) {
    uint64_t lo = 1ULL << (b - 1);
    uint64_t hi = Histogram::BucketUpperBound(b);
    EXPECT_EQ(Histogram::BucketIndex(lo), b);
    EXPECT_EQ(Histogram::BucketIndex(hi), b);
    EXPECT_EQ(Histogram::BucketIndex(hi) + 1,
              Histogram::BucketIndex(hi + 1));
  }

  Histogram h;
  h.Observe(0);
  h.Observe(5);
  h.Observe(7);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_EQ(h.Sum(), 12u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(3), 2u);  // 5 and 7 both in [4, 7]
}

TEST(MetricsRegistry, SnapshotIsSortedAndTyped) {
  MetricsRegistry reg;
  reg.GetGauge("b_gauge")->Set(2);
  reg.GetCounter("a_total")->Increment(1);
  reg.GetHistogram("c_hist")->Observe(4);
  std::vector<MetricSample> s = reg.Snapshot();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].name, "a_total");
  EXPECT_EQ(s[0].kind, MetricKind::kCounter);
  EXPECT_EQ(s[0].value, 1u);
  EXPECT_EQ(s[1].name, "b_gauge");
  EXPECT_EQ(s[1].kind, MetricKind::kGauge);
  EXPECT_EQ(s[2].name, "c_hist");
  EXPECT_EQ(s[2].kind, MetricKind::kHistogram);
  EXPECT_EQ(s[2].count, 1u);
  EXPECT_EQ(s[2].sum, 4u);
}

TEST(MetricsRegistry, ResetValuesKeepsNamesAndPointers) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("r_total");
  c->Increment(9);
  reg.ResetValues();
  EXPECT_EQ(reg.NumMetrics(), 1u);
  EXPECT_EQ(c, reg.GetCounter("r_total"));
  EXPECT_EQ(c->Value(), 0u);
}

TEST(LabeledName, BuildsThePrometheusForm) {
  EXPECT_EQ(LabeledName("edges_total", "shard", "3"),
            "edges_total{shard=\"3\"}");
}

// Golden registry used by both exporter tests: a counter, a plain gauge, a
// labeled gauge, and a histogram with observations 0, 1, 3.
void FillGolden(MetricsRegistry* reg) {
  reg->GetCounter("a_total")->Increment(3);
  reg->GetGauge("b_bytes")->Set(7);
  reg->GetGauge(LabeledName("c_bytes", "shard", "0"))->Set(9);
  Histogram* h = reg->GetHistogram("h_ns");
  h->Observe(0);
  h->Observe(1);
  h->Observe(3);
}

TEST(ExportJson, GoldenOutput) {
  MetricsRegistry reg;
  FillGolden(&reg);
  const char* expected =
      "{\n"
      "  \"a_total\": 3,\n"
      "  \"b_bytes\": 7,\n"
      "  \"c_bytes{shard=\\\"0\\\"}\": 9,\n"
      "  \"h_ns\": {\"count\": 3, \"sum\": 4, "
      "\"buckets\": [[0, 1], [1, 1], [3, 1]]}\n"
      "}";
  EXPECT_EQ(ExportJson(reg.Snapshot()), expected);
}

TEST(ExportJson, EmptyRegistryIsAnEmptyObject) {
  MetricsRegistry reg;
  EXPECT_EQ(ExportJson(reg.Snapshot()), "{}");
}

TEST(ExportPrometheus, GoldenOutput) {
  MetricsRegistry reg;
  FillGolden(&reg);
  const char* expected =
      "# TYPE a_total counter\n"
      "a_total 3\n"
      "# TYPE b_bytes gauge\n"
      "b_bytes 7\n"
      "# TYPE c_bytes gauge\n"
      "c_bytes{shard=\"0\"} 9\n"
      "# TYPE h_ns histogram\n"
      "h_ns_bucket{le=\"0\"} 1\n"
      "h_ns_bucket{le=\"1\"} 2\n"
      "h_ns_bucket{le=\"3\"} 3\n"
      "h_ns_bucket{le=\"+Inf\"} 3\n"
      "h_ns_sum 4\n"
      "h_ns_count 3\n";
  EXPECT_EQ(ExportPrometheus(reg.Snapshot()), expected);
}

TEST(ExportPrometheus, HistogramBucketsAreCumulative) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("lat_ns");
  for (uint64_t v : {1u, 2u, 3u, 100u}) h->Observe(v);
  std::string out = ExportPrometheus(reg.Snapshot());
  // bucket le=1 holds 1; le=3 holds 1,2,3 cumulatively; +Inf holds all 4.
  EXPECT_NE(out.find("lat_ns_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(out.find("lat_ns_bucket{le=\"3\"} 3\n"), std::string::npos);
  EXPECT_NE(out.find("lat_ns_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(out.find("lat_ns_count 4\n"), std::string::npos);
}

}  // namespace
}  // namespace streamkc
