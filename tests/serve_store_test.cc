// SnapshotStore contract: double-buffered publication never blocks readers
// behind the writer or hands them a partially installed snapshot, epochs
// are strictly increasing, and a reader that holds an old snapshot keeps it
// alive arbitrarily long after newer publishes. The concurrent section
// hammers publish/read from many threads and asserts the store's honest
// guarantee — a read returns one of the two most recently published
// snapshots — plus integrity of every snapshot handed out. The stress
// ctest entry re-runs it at a higher publish count (STREAMKC_STORE_ROUNDS).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "core/params.h"
#include "obs/metrics.h"
#include "serve/serving_state.h"
#include "serve/snapshot.h"
#include "serve/snapshot_store.h"
#include "setsys/generators.h"
#include "stream/edge_stream.h"

namespace streamkc {
namespace {

ServingState::Config TestConfig() {
  ServingState::Config config;
  config.params = Params::Practical(128, 256, 8, 8.0);
  config.seed = 11;
  return config;
}

// One snapshot per epoch, each built from a state that has seen `epoch`
// extra edges so consecutive snapshots differ.
std::shared_ptr<const CoverageSnapshot> MakeSnapshot(ServingState* state,
                                                     uint64_t epoch) {
  state->Process(Edge{epoch % 128, epoch % 256});
  SnapshotMeta meta;
  meta.epoch = epoch;
  meta.edges_ingested = epoch;
  meta.batches_ingested = epoch;
  return CoverageSnapshot::Build(*state, meta);
}

TEST(SnapshotStore, EmptyBeforeFirstPublish) {
  MetricsRegistry registry;
  SnapshotStore store("t0", &registry);
  EXPECT_EQ(store.Current(), nullptr);
  EXPECT_EQ(store.epoch(), 0u);
}

TEST(SnapshotStore, PublishInstallsAndAdvancesEpoch) {
  MetricsRegistry registry;
  SnapshotStore store("t1", &registry);
  ServingState state(TestConfig());
  store.Publish(MakeSnapshot(&state, 1));
  ASSERT_NE(store.Current(), nullptr);
  EXPECT_EQ(store.Current()->meta().epoch, 1u);
  EXPECT_EQ(store.epoch(), 1u);
  store.Publish(MakeSnapshot(&state, 2));
  EXPECT_EQ(store.Current()->meta().epoch, 2u);
  EXPECT_EQ(store.epoch(), 2u);
}

TEST(SnapshotStore, GaugesTrackLatestPublish) {
  MetricsRegistry registry;
  SnapshotStore store("t2", &registry);
  ServingState state(TestConfig());
  store.Publish(MakeSnapshot(&state, 1));
  auto snap = MakeSnapshot(&state, 2);
  store.Publish(snap);
  EXPECT_EQ(
      registry.GetCounter(LabeledName("serve_snapshots_published_total",
                                      "store", "t2"))->Value(),
      2u);
  EXPECT_EQ(
      registry.GetGauge(LabeledName("serve_snapshot_epoch", "store", "t2"))
          ->Value(),
      2u);
  EXPECT_EQ(
      registry.GetGauge(LabeledName("serve_snapshot_blob_bytes", "store",
                                    "t2"))->Value(),
      snap->blob().size());
}

TEST(SnapshotStore, ReaderKeepsOldSnapshotAlive) {
  MetricsRegistry registry;
  SnapshotStore store("t3", &registry);
  ServingState state(TestConfig());
  store.Publish(MakeSnapshot(&state, 1));
  std::shared_ptr<const CoverageSnapshot> held = store.Current();
  ASSERT_EQ(held->meta().epoch, 1u);
  // Both slots get rewritten across 4 more publishes; the held snapshot
  // must stay fully valid (shared_ptr ownership, never recycled storage).
  for (uint64_t e = 2; e <= 5; ++e) store.Publish(MakeSnapshot(&state, e));
  EXPECT_EQ(held->meta().epoch, 1u);
  EXPECT_EQ(CoverageSnapshot::FromBlob(held->blob())->meta().epoch, 1u);
  EXPECT_EQ(store.Current()->meta().epoch, 5u);
}

using SnapshotStoreDeathTest = ::testing::Test;

TEST(SnapshotStoreDeathTest, NonIncreasingEpochAborts) {
  MetricsRegistry registry;
  SnapshotStore store("t4", &registry);
  ServingState state(TestConfig());
  store.Publish(MakeSnapshot(&state, 2));
  EXPECT_DEATH(store.Publish(MakeSnapshot(&state, 2)), "CHECK");
}

TEST(SnapshotStoreDeathTest, NullSnapshotAborts) {
  MetricsRegistry registry;
  SnapshotStore store("t5", &registry);
  EXPECT_DEATH(store.Publish(nullptr), "CHECK");
}

// Concurrent publish/read: one writer publishing `rounds` epochs, many
// readers spinning Current(). Every read must observe a fully constructed
// snapshot whose epoch is at most the writer's progress and at least
// (published - 2) at the moment of the read — the double-buffer guarantee.
TEST(SnapshotStore, ConcurrentPublishAndReadStress) {
  uint64_t rounds = 200;
  if (const char* env = std::getenv("STREAMKC_STORE_ROUNDS")) {
    rounds = std::strtoull(env, nullptr, 10);
  }
  MetricsRegistry registry;
  SnapshotStore store("t6", &registry);
  std::atomic<uint64_t> published{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<uint64_t> violations{0};

  const unsigned kReaders = 4;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (unsigned r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t local_reads = 0;
      while (!stop.load(std::memory_order_acquire)) {
        // Writer progress BEFORE the read: the read's result must be one of
        // the two most recent snapshots as of some moment at or after this.
        uint64_t before = published.load(std::memory_order_acquire);
        std::shared_ptr<const CoverageSnapshot> snap = store.Current();
        uint64_t after = published.load(std::memory_order_acquire);
        ++local_reads;
        if (snap == nullptr) {
          // `published == E` is announced just before Publish(E) runs, so a
          // null read is only legal while the first publish may still be in
          // flight (before <= 1).
          if (before >= 2) violations.fetch_add(1);
          continue;
        }
        uint64_t e = snap->meta().epoch;
        // Sanity on internal consistency: meta fields written together.
        if (snap->meta().edges_ingested != e) violations.fetch_add(1);
        // Epoch window: cannot be newer than the writer, cannot lag the
        // writer's pre-read progress by 2+ (two slots, so at most the
        // previous-but-published epoch is visible).
        if (e > after) violations.fetch_add(1);
        if (before >= 2 && e < before - 1) violations.fetch_add(1);
      }
      reads.fetch_add(local_reads);
    });
  }

  ServingState state(TestConfig());
  for (uint64_t epoch = 1; epoch <= rounds; ++epoch) {
    auto snap = MakeSnapshot(&state, epoch);
    // Announce progress BEFORE the publish: a reader that observes
    // `published == E` is then guaranteed the E-1 flip completed (the store
    // above synchronizes with the reader's acquire), so its read returns
    // epoch >= E-1; and no read can return an epoch whose announce it
    // hasn't seen, so epoch <= the post-read load. Together: every read is
    // one of the two most recently published snapshots.
    published.store(epoch, std::memory_order_release);
    store.Publish(snap);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(store.Current()->meta().epoch, rounds);
}

}  // namespace
}  // namespace streamkc
