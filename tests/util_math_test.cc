#include "util/math_util.h"

#include <gtest/gtest.h>

namespace streamkc {
namespace {

TEST(FloorLog2, PowersOfTwo) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(2), 1u);
  EXPECT_EQ(FloorLog2(1024), 10u);
  EXPECT_EQ(FloorLog2(1ULL << 63), 63u);
}

TEST(FloorLog2, NonPowers) {
  EXPECT_EQ(FloorLog2(3), 1u);
  EXPECT_EQ(FloorLog2(1023), 9u);
  EXPECT_EQ(FloorLog2(1025), 10u);
}

TEST(CeilLog2, PowersOfTwo) {
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(1024), 10u);
}

TEST(CeilLog2, NonPowers) {
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(1023), 10u);
  EXPECT_EQ(CeilLog2(1025), 11u);
}

TEST(IsPowerOfTwo, Basic) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(65));
}

TEST(NextPowerOfTwo, Basic) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(4), 4u);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024u);
}

TEST(Log2AtLeast1, ClampsBelowTwo) {
  EXPECT_DOUBLE_EQ(Log2AtLeast1(0.0), 1.0);
  EXPECT_DOUBLE_EQ(Log2AtLeast1(1.0), 1.0);
  EXPECT_DOUBLE_EQ(Log2AtLeast1(8.0), 3.0);
}

TEST(CeilDiv, Basic) {
  EXPECT_EQ(CeilDiv(10, 3), 4u);
  EXPECT_EQ(CeilDiv(9, 3), 3u);
  EXPECT_EQ(CeilDiv(0, 3), 0u);
  EXPECT_EQ(CeilDiv(1, 1), 1u);
}

TEST(Median, OddCount) {
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median({5}), 5.0);
}

TEST(Median, EvenCount) {
  EXPECT_DOUBLE_EQ(Median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median({1, 2}), 1.5);
}

TEST(Median, Unsorted) { EXPECT_DOUBLE_EQ(Median({9, -1, 5, 5, 0}), 5.0); }

TEST(Mean, Basic) {
  EXPECT_DOUBLE_EQ(Mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean({-2, 2}), 0.0);
}

TEST(StdDev, Basic) {
  EXPECT_DOUBLE_EQ(StdDev({1, 1, 1, 1}), 0.0);
  EXPECT_NEAR(StdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 1e-3);
}

TEST(MathDeath, MedianEmptyAborts) {
  EXPECT_DEATH(Median({}), "CHECK failed");
}

}  // namespace
}  // namespace streamkc
