#include "stream/text_stream.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "setsys/generators.h"
#include "stream/stream_stats.h"

namespace streamkc {
namespace {

class TextStreamTest : public ::testing::Test {
 protected:
  std::string TempPath(const char* name) {
    return ::testing::TempDir() + "/streamkc_" + name + ".txt";
  }
};

TEST_F(TextStreamTest, RoundTrip) {
  std::string path = TempPath("roundtrip");
  std::vector<Edge> edges{{1, 10}, {2, 20}, {1, 30}, {999999, 123456789}};
  WriteEdgesToFile(path, edges);
  TextEdgeStream stream(path);
  Edge e;
  size_t i = 0;
  while (stream.Next(&e)) {
    ASSERT_LT(i, edges.size());
    EXPECT_EQ(e, edges[i]);
    ++i;
  }
  EXPECT_EQ(i, edges.size());
  std::remove(path.c_str());
}

TEST_F(TextStreamTest, SkipsCommentsAndBlanks) {
  std::string path = TempPath("comments");
  {
    std::ofstream out(path);
    out << "# header\n\n  \n5 6\n# mid comment\n7 8\n";
  }
  TextEdgeStream stream(path);
  Edge e;
  ASSERT_TRUE(stream.Next(&e));
  EXPECT_EQ(e, (Edge{5, 6}));
  ASSERT_TRUE(stream.Next(&e));
  EXPECT_EQ(e, (Edge{7, 8}));
  EXPECT_FALSE(stream.Next(&e));
  std::remove(path.c_str());
}

TEST_F(TextStreamTest, ResetRewinds) {
  std::string path = TempPath("reset");
  WriteEdgesToFile(path, {{1, 2}, {3, 4}});
  TextEdgeStream stream(path);
  Edge e;
  while (stream.Next(&e)) {
  }
  stream.Reset();
  int count = 0;
  while (stream.Next(&e)) ++count;
  EXPECT_EQ(count, 2);
  std::remove(path.c_str());
}

TEST_F(TextStreamTest, MissingSecondNumberStopsWithError) {
  std::string path = TempPath("malformed");
  {
    std::ofstream out(path);
    out << "5\n";
  }
  TextEdgeStream stream(path);
  Edge e;
  EXPECT_FALSE(stream.Next(&e));
  EXPECT_FALSE(stream.ok());
  EXPECT_NE(stream.StatusMessage().find("missing element id"),
            std::string::npos);
  EXPECT_NE(stream.StatusMessage().find(":1:"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TextStreamTest, GarbageStopsWithError) {
  std::string path = TempPath("garbage");
  {
    std::ofstream out(path);
    out << "5 banana\n";
  }
  TextEdgeStream stream(path);
  Edge e;
  EXPECT_FALSE(stream.Next(&e));
  EXPECT_FALSE(stream.ok());
  EXPECT_NE(stream.StatusMessage().find("element id is not a number"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TextStreamTest, MissingFileAborts) {
  EXPECT_DEATH(TextEdgeStream("/nonexistent/really/not/here.txt"),
               "CHECK failed");
}

TEST_F(TextStreamTest, MatchesInMemoryStreamStats) {
  std::string path = TempPath("stats");
  auto inst = RandomUniform(40, 100, 6, 3);
  auto edges = inst.system.MaterializeEdges();
  WriteEdgesToFile(path, edges);

  TextEdgeStream file_stream(path);
  StreamStats file_stats = ComputeStreamStats(file_stream);
  VectorEdgeStream mem_stream(edges);
  StreamStats mem_stats = ComputeStreamStats(mem_stream);
  EXPECT_EQ(file_stats.num_edges, mem_stats.num_edges);
  EXPECT_EQ(file_stats.num_distinct_sets, mem_stats.num_distinct_sets);
  EXPECT_EQ(file_stats.num_distinct_elements, mem_stats.num_distinct_elements);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace streamkc
