// Checkpoint blob lockdown (src/dist/checkpoint.h): round-trip fidelity,
// death on every corruption class (truncation, bit flips in every region,
// version/magic bumps, trailing garbage), atomic tmp+rename publication,
// cadence bookkeeping, and the end-to-end recovery property — a run that
// resumes from a checkpoint finishes byte-identical to one never killed.
//
// Corruption is a death test on purpose: DecodeCheckpoint CHECK-aborts, and
// in the live system that abort IS the recovery signal (the coordinator
// sees a crashed worker and spends a respawn; see process_tree.h's failure
// matrix).

#include "dist/checkpoint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "dist/frame.h"
#include "runtime/sketch_states.h"
#include "test_util.h"

namespace streamkc {
namespace {

Checkpoint MakeCheckpoint() {
  CoverageSketchState state{CoverageSketchState::Config{}};
  for (const Edge& e : SyntheticEdges(5000, /*seed=*/42)) state.Process(e);
  Checkpoint ckpt;
  ckpt.worker = 3;
  ckpt.segments_done = 7;
  ckpt.counters.edges_ingested = 5000;
  ckpt.counters.edges_processed = 5000;
  ckpt.counters.batches = 2;
  ckpt.counters.segments_done = 7;
  ckpt.counters.checkpoints_written = 1;
  ckpt.fingerprint = state.MergeFingerprint();
  std::ostringstream os;
  state.Save(os);
  ckpt.state_blob = os.str();
  return ckpt;
}

TEST(DistCheckpoint, RoundTripsEveryField) {
  Checkpoint ckpt = MakeCheckpoint();
  Checkpoint back = DecodeCheckpoint(EncodeCheckpoint(ckpt));
  EXPECT_EQ(back.worker, ckpt.worker);
  EXPECT_EQ(back.segments_done, ckpt.segments_done);
  EXPECT_EQ(back.counters.edges_ingested, ckpt.counters.edges_ingested);
  EXPECT_EQ(back.counters.batches, ckpt.counters.batches);
  EXPECT_EQ(back.counters.checkpoints_written,
            ckpt.counters.checkpoints_written);
  EXPECT_EQ(back.fingerprint, ckpt.fingerprint);
  EXPECT_EQ(back.state_blob, ckpt.state_blob);
  // The carried state blob itself reloads into a working sketch.
  std::istringstream is(back.state_blob);
  CoverageSketchState state = CoverageSketchState::Load(is);
  EXPECT_EQ(state.MergeFingerprint(), ckpt.fingerprint);
}

TEST(DistCheckpoint, FileRoundTripAndExistenceProbe) {
  ScopedTempDir dir;
  std::string path = CheckpointPath(dir.path(), 3);
  EXPECT_EQ(path, dir.path() + "/ckpt_w3.bin");
  EXPECT_FALSE(CheckpointFileExists(path));
  Checkpoint ckpt = MakeCheckpoint();
  WriteCheckpointFile(path, ckpt);
  EXPECT_TRUE(CheckpointFileExists(path));
  EXPECT_EQ(DecodeCheckpoint(EncodeCheckpoint(ckpt)).state_blob,
            LoadCheckpointFile(path).state_blob);
  // Publication is atomic: no .tmp file survives a successful write.
  EXPECT_FALSE(CheckpointFileExists(path + ".tmp"));
}

TEST(DistCheckpointDeathTest, TruncatedBlobDiesAtEveryLength) {
  const std::string bytes = EncodeCheckpoint(MakeCheckpoint());
  // Probe a spread of cut points: inside the header, inside the CRC, and
  // inside the body (every length would be minutes of forking; the classes
  // are what matters).
  for (size_t cut : {size_t{0}, size_t{3}, size_t{7}, size_t{11},
                     size_t{19}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_DEATH(DecodeCheckpoint(bytes.substr(0, cut)), "CHECK failed")
        << "cut=" << cut;
  }
}

TEST(DistCheckpointDeathTest, BitFlipAnywhereDies) {
  const std::string bytes = EncodeCheckpoint(MakeCheckpoint());
  // One flip per region: magic, version, body_len, crc, each body field
  // area, and deep inside the sketch blob.
  for (size_t pos : {size_t{0}, size_t{5}, size_t{9}, size_t{17},
                     size_t{21}, size_t{30}, size_t{45},
                     bytes.size() / 2, bytes.size() - 1}) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    EXPECT_DEATH(DecodeCheckpoint(bad), "CHECK failed") << "pos=" << pos;
  }
}

TEST(DistCheckpointDeathTest, VersionBumpAndWrongMagicDie) {
  Checkpoint ckpt = MakeCheckpoint();
  std::string bytes = EncodeCheckpoint(ckpt);
  std::string bumped = bytes;
  bumped[4] = static_cast<char>(bumped[4] + 1);  // version LSB
  EXPECT_DEATH(DecodeCheckpoint(bumped), "CHECK failed");
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_DEATH(DecodeCheckpoint(wrong_magic), "CHECK failed");
}

TEST(DistCheckpointDeathTest, TrailingGarbageDies) {
  // A concatenated or partially overwritten file must not load even though
  // its prefix is a valid checkpoint.
  std::string bytes = EncodeCheckpoint(MakeCheckpoint());
  EXPECT_DEATH(DecodeCheckpoint(bytes + "x"), "CHECK failed");
  EXPECT_DEATH(DecodeCheckpoint(bytes + bytes), "CHECK failed");
}

TEST(DistCheckpointDeathTest, MissingFileDies) {
  ScopedTempDir dir;
  EXPECT_DEATH(LoadCheckpointFile(CheckpointPath(dir.path(), 0)),
               "CHECK failed");
}

TEST(DistCheckpoint, ResumeFromCheckpointEqualsNeverKilledRun) {
  // The recovery identity behind the kill-respawn differential: ingesting
  // segments [0, C) into a checkpoint, reloading it, and ingesting [C, S)
  // yields the same serialized state as one uninterrupted pass.
  std::vector<Edge> edges = SyntheticEdges(12000, /*seed=*/9);
  constexpr uint32_t kSegments = 6;
  constexpr uint32_t kCut = 2;  // checkpoint after this many segments

  CoverageSketchState::Config config;
  auto ingest = [&](CoverageSketchState* state, uint32_t from, uint32_t to) {
    for (uint32_t seg = from; seg < to; ++seg) {
      auto stream = MakeEdgeSpanSegment(edges, seg, kSegments);
      Edge e;
      while (stream->Next(&e)) state->Process(e);
    }
  };

  CoverageSketchState uninterrupted(config);
  ingest(&uninterrupted, 0, kSegments);
  std::ostringstream ref;
  uninterrupted.Save(ref);

  ScopedTempDir dir;
  std::string path = CheckpointPath(dir.path(), 0);
  {
    CoverageSketchState first(config);
    ingest(&first, 0, kCut);
    Checkpoint ckpt;
    ckpt.worker = 0;
    ckpt.segments_done = kCut;
    ckpt.fingerprint = first.MergeFingerprint();
    std::ostringstream os;
    first.Save(os);
    ckpt.state_blob = os.str();
    WriteCheckpointFile(path, ckpt);
    // `first` is abandoned here: the simulated crash. Everything past the
    // checkpoint dies with it.
    ingest(&first, kCut, kCut + 1);
  }
  Checkpoint loaded = LoadCheckpointFile(path);
  std::istringstream is(loaded.state_blob);
  CoverageSketchState resumed = CoverageSketchState::Load(is);
  ingest(&resumed, static_cast<uint32_t>(loaded.segments_done), kSegments);
  std::ostringstream got;
  resumed.Save(got);
  EXPECT_EQ(got.str(), ref.str());
}

TEST(DistCheckpoint, CadenceRespectsSegmentBoundaries) {
  // Through the real harness: checkpoint_every=N writes checkpoints only at
  // committed-segment multiples of N, never after the final segment (the
  // frame supersedes it), and a kill-free run loads none.
  ScopedWorkerHarness harness(SyntheticEdges(8000, /*seed=*/10),
                              /*num_segments=*/8);
  DistOptions opt;
  opt.num_workers = 2;  // 4 segments per worker
  opt.checkpoint_every = 2;
  opt.checkpoint_dir = harness.CheckpointDir();
  ScopedWorkerHarness::Result dist = harness.RunDist(opt);
  for (const DistWorkerRow& w : dist.metrics.workers) {
    // Segments 2 of 4 committed -> one checkpoint (committed=4 is final).
    EXPECT_EQ(w.counters.checkpoints_written, 1u) << "worker=" << w.worker;
    EXPECT_EQ(w.counters.checkpoints_loaded, 0u);
    Checkpoint ckpt =
        LoadCheckpointFile(CheckpointPath(harness.CheckpointDir(), w.worker));
    EXPECT_EQ(ckpt.worker, w.worker);
    EXPECT_EQ(ckpt.segments_done, 2u);
  }
}

}  // namespace
}  // namespace streamkc
