// Checkpoint blob lockdown (src/dist/checkpoint.h): round-trip fidelity,
// death on every corruption class (truncation, bit flips in every region,
// version/magic bumps, trailing garbage), atomic tmp+rename publication,
// cadence bookkeeping, and the end-to-end recovery property — a run that
// resumes from a checkpoint finishes byte-identical to one never killed.
//
// Corruption has two audiences. DecodeCheckpoint/LoadCheckpointFile stay
// CHECK-hard (the death tests below) for callers that must never consume a
// bad blob silently. The worker recovery path instead uses the Try*
// variants: a torn file (host crash mid-write that beat the fsync) is
// REJECTED and the block re-ingested from scratch — CHECK-aborting there
// would turn one bad file into a respawn loop that can never converge (see
// process_tree.h's failure matrix and the TornFile tests below).

#include "dist/checkpoint.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "dist/frame.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "runtime/sketch_states.h"
#include "test_util.h"

namespace streamkc {
namespace {

Checkpoint MakeCheckpoint() {
  CoverageSketchState state{CoverageSketchState::Config{}};
  for (const Edge& e : SyntheticEdges(5000, /*seed=*/42)) state.Process(e);
  Checkpoint ckpt;
  ckpt.worker = 3;
  ckpt.segments_done = 7;
  ckpt.counters.edges_ingested = 5000;
  ckpt.counters.edges_processed = 5000;
  ckpt.counters.batches = 2;
  ckpt.counters.segments_done = 7;
  ckpt.counters.checkpoints_written = 1;
  ckpt.fingerprint = state.MergeFingerprint();
  std::ostringstream os;
  state.Save(os);
  ckpt.state_blob = os.str();
  return ckpt;
}

TEST(DistCheckpoint, RoundTripsEveryField) {
  Checkpoint ckpt = MakeCheckpoint();
  Checkpoint back = DecodeCheckpoint(EncodeCheckpoint(ckpt));
  EXPECT_EQ(back.worker, ckpt.worker);
  EXPECT_EQ(back.segments_done, ckpt.segments_done);
  EXPECT_EQ(back.counters.edges_ingested, ckpt.counters.edges_ingested);
  EXPECT_EQ(back.counters.batches, ckpt.counters.batches);
  EXPECT_EQ(back.counters.checkpoints_written,
            ckpt.counters.checkpoints_written);
  EXPECT_EQ(back.fingerprint, ckpt.fingerprint);
  EXPECT_EQ(back.state_blob, ckpt.state_blob);
  // The carried state blob itself reloads into a working sketch.
  std::istringstream is(back.state_blob);
  CoverageSketchState state = CoverageSketchState::Load(is);
  EXPECT_EQ(state.MergeFingerprint(), ckpt.fingerprint);
}

TEST(DistCheckpoint, FileRoundTripAndExistenceProbe) {
  ScopedTempDir dir;
  std::string path = CheckpointPath(dir.path(), 3);
  EXPECT_EQ(path, dir.path() + "/ckpt_w3.bin");
  EXPECT_FALSE(CheckpointFileExists(path));
  Checkpoint ckpt = MakeCheckpoint();
  WriteCheckpointFile(path, ckpt);
  EXPECT_TRUE(CheckpointFileExists(path));
  EXPECT_EQ(DecodeCheckpoint(EncodeCheckpoint(ckpt)).state_blob,
            LoadCheckpointFile(path).state_blob);
  // Publication is atomic: no .tmp file survives a successful write.
  EXPECT_FALSE(CheckpointFileExists(path + ".tmp"));
}

TEST(DistCheckpointDeathTest, TruncatedBlobDiesAtEveryLength) {
  const std::string bytes = EncodeCheckpoint(MakeCheckpoint());
  // Probe a spread of cut points: inside the header, inside the CRC, and
  // inside the body (every length would be minutes of forking; the classes
  // are what matters).
  for (size_t cut : {size_t{0}, size_t{3}, size_t{7}, size_t{11},
                     size_t{19}, bytes.size() / 2, bytes.size() - 1}) {
    EXPECT_DEATH(DecodeCheckpoint(bytes.substr(0, cut)), "CHECK failed")
        << "cut=" << cut;
  }
}

TEST(DistCheckpointDeathTest, BitFlipAnywhereDies) {
  const std::string bytes = EncodeCheckpoint(MakeCheckpoint());
  // One flip per region: magic, version, body_len, crc, each body field
  // area, and deep inside the sketch blob.
  for (size_t pos : {size_t{0}, size_t{5}, size_t{9}, size_t{17},
                     size_t{21}, size_t{30}, size_t{45},
                     bytes.size() / 2, bytes.size() - 1}) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    EXPECT_DEATH(DecodeCheckpoint(bad), "CHECK failed") << "pos=" << pos;
  }
}

TEST(DistCheckpointDeathTest, VersionBumpAndWrongMagicDie) {
  Checkpoint ckpt = MakeCheckpoint();
  std::string bytes = EncodeCheckpoint(ckpt);
  std::string bumped = bytes;
  bumped[4] = static_cast<char>(bumped[4] + 1);  // version LSB
  EXPECT_DEATH(DecodeCheckpoint(bumped), "CHECK failed");
  std::string wrong_magic = bytes;
  wrong_magic[0] = 'X';
  EXPECT_DEATH(DecodeCheckpoint(wrong_magic), "CHECK failed");
}

TEST(DistCheckpointDeathTest, TrailingGarbageDies) {
  // A concatenated or partially overwritten file must not load even though
  // its prefix is a valid checkpoint.
  std::string bytes = EncodeCheckpoint(MakeCheckpoint());
  EXPECT_DEATH(DecodeCheckpoint(bytes + "x"), "CHECK failed");
  EXPECT_DEATH(DecodeCheckpoint(bytes + bytes), "CHECK failed");
}

TEST(DistCheckpointDeathTest, MissingFileDies) {
  ScopedTempDir dir;
  EXPECT_DEATH(LoadCheckpointFile(CheckpointPath(dir.path(), 0)),
               "CHECK failed");
}

TEST(DistCheckpoint, ResumeFromCheckpointEqualsNeverKilledRun) {
  // The recovery identity behind the kill-respawn differential: ingesting
  // segments [0, C) into a checkpoint, reloading it, and ingesting [C, S)
  // yields the same serialized state as one uninterrupted pass.
  std::vector<Edge> edges = SyntheticEdges(12000, /*seed=*/9);
  constexpr uint32_t kSegments = 6;
  constexpr uint32_t kCut = 2;  // checkpoint after this many segments

  CoverageSketchState::Config config;
  auto ingest = [&](CoverageSketchState* state, uint32_t from, uint32_t to) {
    for (uint32_t seg = from; seg < to; ++seg) {
      auto stream = MakeEdgeSpanSegment(edges, seg, kSegments);
      Edge e;
      while (stream->Next(&e)) state->Process(e);
    }
  };

  CoverageSketchState uninterrupted(config);
  ingest(&uninterrupted, 0, kSegments);
  std::ostringstream ref;
  uninterrupted.Save(ref);

  ScopedTempDir dir;
  std::string path = CheckpointPath(dir.path(), 0);
  {
    CoverageSketchState first(config);
    ingest(&first, 0, kCut);
    Checkpoint ckpt;
    ckpt.worker = 0;
    ckpt.segments_done = kCut;
    ckpt.fingerprint = first.MergeFingerprint();
    std::ostringstream os;
    first.Save(os);
    ckpt.state_blob = os.str();
    WriteCheckpointFile(path, ckpt);
    // `first` is abandoned here: the simulated crash. Everything past the
    // checkpoint dies with it.
    ingest(&first, kCut, kCut + 1);
  }
  Checkpoint loaded = LoadCheckpointFile(path);
  std::istringstream is(loaded.state_blob);
  CoverageSketchState resumed = CoverageSketchState::Load(is);
  ingest(&resumed, static_cast<uint32_t>(loaded.segments_done), kSegments);
  std::ostringstream got;
  resumed.Save(got);
  EXPECT_EQ(got.str(), ref.str());
}

TEST(DistCheckpoint, TryDecodeRejectsEveryCorruptionClassWithoutDying) {
  // The non-fatal twin of the death tests above: same corruption classes,
  // but the Try decoder reports them as a verdict the worker can act on.
  const std::string bytes = EncodeCheckpoint(MakeCheckpoint());
  Checkpoint out;
  std::string error;
  ASSERT_TRUE(TryDecodeCheckpoint(bytes, &out, &error)) << error;
  EXPECT_FALSE(TryDecodeCheckpoint("", &out, &error));
  for (size_t cut : {size_t{0}, size_t{3}, size_t{7}, size_t{11},
                     size_t{19}, bytes.size() / 2, bytes.size() - 1}) {
    error.clear();
    EXPECT_FALSE(TryDecodeCheckpoint(bytes.substr(0, cut), &out, &error))
        << "cut=" << cut;
    EXPECT_FALSE(error.empty()) << "cut=" << cut;
  }
  for (size_t pos : {size_t{0}, size_t{5}, size_t{9}, size_t{17},
                     size_t{21}, size_t{30}, size_t{45},
                     bytes.size() / 2, bytes.size() - 1}) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    EXPECT_FALSE(TryDecodeCheckpoint(bad, &out, &error)) << "pos=" << pos;
  }
  EXPECT_FALSE(TryDecodeCheckpoint(bytes + "x", &out, &error));
  EXPECT_FALSE(TryDecodeCheckpoint(bytes + bytes, &out, &error));
}

TEST(DistCheckpoint, TryLoadRejectsMissingAndTornFilesWithoutDying) {
  ScopedTempDir dir;
  const std::string path = CheckpointPath(dir.path(), 0);
  Checkpoint out;
  std::string error;
  EXPECT_FALSE(TryLoadCheckpointFile(path, &out, &error));
  const std::string bytes = EncodeCheckpoint(MakeCheckpoint());
  dir.WriteFile("ckpt_w0.bin", bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(TryLoadCheckpointFile(path, &out, &error));
  EXPECT_FALSE(error.empty());
  // A fresh write REPLACES the torn file (rename over it), and loads.
  WriteCheckpointFile(path, MakeCheckpoint());
  EXPECT_TRUE(TryLoadCheckpointFile(path, &out, &error)) << error;
}

TEST(DistCheckpoint, TornFileOnRespawnIsRejectedAndRunStillConverges) {
  // The regression the fsync fix and the Try loader exist for: worker 1
  // dies before its first checkpoint, and the file its respawn finds is
  // torn (as if the host died mid-write before the rename was durable).
  // Pre-fix the loader CHECK-aborted, every respawn died at the same spot,
  // and the worker was quarantined; post-fix the respawn rejects the blob,
  // re-ingests its block from scratch, and the run is byte-identical to
  // the inline reference.
  ScopedWorkerHarness harness(SyntheticEdges(20000, /*seed=*/13),
                              /*num_segments=*/16);
  const std::string path = CheckpointPath(harness.CheckpointDir(), 1);
  const std::string bytes = EncodeCheckpoint(MakeCheckpoint());
  {
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size() / 2));
  }

  FaultInjector injector(FaultPlan::ParseOrDie("seed=7,kill-shard=1@0"));
  DistOptions opt;
  opt.num_workers = 2;
  opt.checkpoint_every = 2;
  opt.checkpoint_dir = harness.CheckpointDir();
  opt.fault_injector = &injector;
  ScopedWorkerHarness::Result dist = harness.RunDist(opt);

  EXPECT_EQ(dist.state_blob, harness.RunInline().state_blob);
  const DistWorkerRow& w1 = dist.metrics.workers[1];
  EXPECT_EQ(w1.respawns, 1u);
  EXPECT_FALSE(w1.quarantined);
  EXPECT_EQ(w1.counters.checkpoints_rejected, 1u);
  EXPECT_EQ(w1.counters.checkpoints_loaded, 0u);
  EXPECT_EQ(dist.metrics.WorkersQuarantined(), 0u);
  EXPECT_EQ(dist.metrics.TotalCheckpointsRejected(), 1u);
}

TEST(DistCheckpoint, CadenceRespectsSegmentBoundaries) {
  // Through the real harness: checkpoint_every=N writes checkpoints only at
  // committed-segment multiples of N, never after the final segment (the
  // frame supersedes it), and a kill-free run loads none.
  ScopedWorkerHarness harness(SyntheticEdges(8000, /*seed=*/10),
                              /*num_segments=*/8);
  DistOptions opt;
  opt.num_workers = 2;  // 4 segments per worker
  opt.checkpoint_every = 2;
  opt.checkpoint_dir = harness.CheckpointDir();
  ScopedWorkerHarness::Result dist = harness.RunDist(opt);
  for (const DistWorkerRow& w : dist.metrics.workers) {
    // Segments 2 of 4 committed -> one checkpoint (committed=4 is final).
    EXPECT_EQ(w.counters.checkpoints_written, 1u) << "worker=" << w.worker;
    EXPECT_EQ(w.counters.checkpoints_loaded, 0u);
    Checkpoint ckpt =
        LoadCheckpointFile(CheckpointPath(harness.CheckpointDir(), w.worker));
    EXPECT_EQ(ckpt.worker, w.worker);
    EXPECT_EQ(ckpt.segments_done, 2u);
  }
}

}  // namespace
}  // namespace streamkc
