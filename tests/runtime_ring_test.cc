// SpscRing stall-accounting tests. The original Push() incremented the
// stall counter at most once per call and recorded no duration, so a
// saturated consumer looked identical to a briefly-full ring; these tests
// pin the repaired semantics: one EVENT per stalling Push, one ROUND per
// wait-loop trip (rounds >= events), and blocked wall time in nanoseconds.

#include "runtime/spsc_ring.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace streamkc {
namespace {

TEST(SpscRing, NoStallsWhenConsumerKeepsUp) {
  SpscRing<int> ring(8);
  std::thread consumer([&] {
    int v;
    while (ring.Pop(&v)) {
    }
  });
  for (int i = 0; i < 4; ++i) ring.Push(i);
  ring.Close();
  consumer.join();
  EXPECT_EQ(ring.push_stalls(), 0u);
  EXPECT_EQ(ring.push_stall_rounds(), 0u);
  EXPECT_EQ(ring.push_stalled_ns(), 0u);
}

TEST(SpscRing, StallIsCountedWithRoundsAndDuration) {
  SpscRing<int> ring(1);
  ring.Push(1);  // fills the ring; no stall yet
  EXPECT_EQ(ring.push_stalls(), 0u);

  // The next Push must block until the consumer pops. The consumer waits
  // until the producer has actually registered its stall before popping —
  // a handshake on the counter itself, so the test cannot pass vacuously.
  std::thread consumer([&] {
    while (ring.push_stalls() == 0) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    int v;
    ASSERT_TRUE(ring.Pop(&v));
    EXPECT_EQ(v, 1);
    ASSERT_TRUE(ring.Pop(&v));
    EXPECT_EQ(v, 2);
  });
  ring.Push(2);  // blocks until the consumer frees a slot
  consumer.join();

  EXPECT_EQ(ring.push_stalls(), 1u);
  EXPECT_GE(ring.push_stall_rounds(), 1u);
  // The consumer held the ring full for >= 2ms after observing the stall;
  // the recorded blocked time must reflect a real wait, not zero.
  EXPECT_GT(ring.push_stalled_ns(), 0u);
}

TEST(SpscRing, EveryStallingPushCountsOneEvent) {
  SpscRing<int> ring(1);
  constexpr int kItems = 50;
  std::thread consumer([&] {
    int v;
    int popped = 0;
    while (ring.Pop(&v)) {
      EXPECT_EQ(v, popped++);
      // Slow consumer: nearly every Push after the first finds the ring
      // full and must register its own stall event.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    EXPECT_EQ(popped, kItems);
  });
  for (int i = 0; i < kItems; ++i) ring.Push(i);
  ring.Close();
  consumer.join();
  // The old implementation could report a single event for the whole run;
  // the repaired one reports one per stalling Push. With a 200us-per-item
  // consumer and a capacity-1 ring, most of the 50 pushes stall.
  EXPECT_GT(ring.push_stalls(), 1u);
  EXPECT_GE(ring.push_stall_rounds(), ring.push_stalls());
  EXPECT_GT(ring.push_stalled_ns(), 0u);
}

TEST(SpscRing, CloseDrainsRemainingItems) {
  SpscRing<int> ring(4);
  ring.Push(10);
  ring.Push(20);
  ring.Close();
  int v;
  EXPECT_TRUE(ring.Pop(&v));
  EXPECT_EQ(v, 10);
  EXPECT_TRUE(ring.Pop(&v));
  EXPECT_EQ(v, 20);
  EXPECT_FALSE(ring.Pop(&v));
}

}  // namespace
}  // namespace streamkc
