#include "core/params.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/math_util.h"

namespace streamkc {
namespace {

TEST(ParamsTheory, Table2Arithmetic) {
  // Verify each Table 2 formula at a fixed instance.
  uint64_t m = 1 << 16, n = 1 << 14, k = 64;
  double alpha = 16;
  Params p = Params::Theory(m, n, k, alpha);
  double log_mn = std::log2(static_cast<double>(m) * static_cast<double>(n));
  EXPECT_DOUBLE_EQ(p.w, 16.0);  // min{k, α}
  EXPECT_DOUBLE_EQ(p.eta, 4.0);
  EXPECT_DOUBLE_EQ(p.f, 7.0 * log_mn);
  EXPECT_DOUBLE_EQ(p.sigma, 1.0 / (2500.0 * log_mn * log_mn));
  EXPECT_DOUBLE_EQ(p.t, 5000.0 * log_mn * log_mn / p.s);
  // s satisfies its own fixed-point equation.
  double rhs = (9.0 / 5000.0) * p.w /
               (alpha * std::sqrt(2.0 * p.eta * Log2AtLeast1(p.s * alpha) *
                                  log_mn * log_mn));
  EXPECT_NEAR(p.s, rhs, 1e-12);
}

TEST(ParamsTheory, WIsMinOfKAndAlpha) {
  EXPECT_DOUBLE_EQ(Params::Theory(1000, 1000, 4, 16).w, 4.0);
  EXPECT_DOUBLE_EQ(Params::Theory(1000, 1000, 64, 16).w, 16.0);
}

TEST(ParamsTheory, SFixedPointConverges) {
  // s must be positive, below 1, and stable across instances.
  for (double alpha : {2.0, 8.0, 64.0}) {
    for (uint64_t k : {4ull, 256ull}) {
      Params p = Params::Theory(1 << 14, 1 << 12, k, alpha);
      EXPECT_GT(p.s, 0.0) << alpha << " " << k;
      EXPECT_LT(p.s, 1.0);
    }
  }
}

TEST(ParamsTheory, LogWiseDegreeScales) {
  Params small = Params::Theory(16, 16, 2, 2);
  Params big = Params::Theory(1 << 20, 1 << 20, 2, 2);
  EXPECT_EQ(small.log_wise_degree, 4u + 4u + 8u);
  EXPECT_EQ(big.log_wise_degree, 20u + 20u + 8u);
}

TEST(ParamsPractical, SameShapeAsTheory) {
  // The practical constants must preserve Table 2's functional dependencies:
  // w = min(k, α); s ∝ w/α; t ∝ 1/s.
  Params a = Params::Practical(1 << 14, 1 << 12, 8, 32);
  EXPECT_DOUBLE_EQ(a.w, 8.0);
  EXPECT_NEAR(a.s * 32.0 / a.w, 0.5, 1e-12);
  EXPECT_NEAR(a.t * a.s, 16.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.eta, 4.0);
}

TEST(ParamsPractical, SigmaConstantScale) {
  Params p = Params::Practical(1 << 14, 1 << 12, 8, 4);
  EXPECT_GT(p.sigma, 0.01);
  EXPECT_LT(p.sigma, 0.5);
}

TEST(Params, SmallSetBudgetScalesWithMOverAlphaSquared) {
  Params wide = Params::Practical(1 << 16, 1 << 12, 8, 4);
  Params narrow = Params::Practical(1 << 16, 1 << 12, 8, 32);
  EXPECT_GT(wide.SmallSetBudgetBytes(), narrow.SmallSetBudgetBytes());
  Params fixed = narrow;
  fixed.small_set_budget_bytes = 12345;
  EXPECT_EQ(fixed.SmallSetBudgetBytes(), 12345u);
}

TEST(Params, DebugStringMentionsMode) {
  EXPECT_NE(Params::Theory(8, 8, 2, 2).DebugString().find("theory"),
            std::string::npos);
  EXPECT_NE(Params::Practical(8, 8, 2, 2).DebugString().find("practical"),
            std::string::npos);
}

TEST(Params, InvalidInstanceAborts) {
  EXPECT_DEATH(Params::Practical(0, 10, 1, 2), "CHECK failed");
  EXPECT_DEATH(Params::Practical(10, 10, 1, 0.5), "CHECK failed");
}

}  // namespace
}  // namespace streamkc
