#include "offline/exact.h"

#include <gtest/gtest.h>

#include "setsys/generators.h"

namespace streamkc {
namespace {

TEST(BinomialSaturating, SmallValues) {
  EXPECT_EQ(BinomialSaturating(5, 2), 10u);
  EXPECT_EQ(BinomialSaturating(10, 0), 1u);
  EXPECT_EQ(BinomialSaturating(10, 10), 1u);
  EXPECT_EQ(BinomialSaturating(10, 11), 0u);
  EXPECT_EQ(BinomialSaturating(20, 10), 184756u);
}

TEST(BinomialSaturating, Saturates) {
  EXPECT_EQ(BinomialSaturating(200, 100), 1ULL << 63);
}

TEST(ExactMaxCover, TrivialCases) {
  SetSystem sys(5, {{0, 1}, {2}, {3, 4}});
  EXPECT_EQ(ExactMaxCover(sys, 3).coverage, 5u);
  EXPECT_EQ(ExactMaxCover(sys, 1).coverage, 2u);
}

TEST(ExactMaxCover, BeatsGreedyOnAdversarialInstance) {
  // Classic greedy-trap: greedy takes the big set first and then cannot do
  // better, but the optimal 2-cover avoids it.
  SetSystem sys(8, {
                       {0, 1, 2, 3, 4},      // tempting
                       {0, 1, 2, 3, 5, 6},   // optimal half 1
                       {4, 7},               // optimal half 2 (with 0: only 7 new)
                   });
  CoverSolution exact = ExactMaxCover(sys, 2);
  EXPECT_EQ(exact.coverage, 8u);
  std::vector<SetId> want{1, 2};
  EXPECT_EQ(exact.sets, want);
}

TEST(ExactMaxCover, KLargerThanM) {
  SetSystem sys(4, {{0}, {1, 2}});
  EXPECT_EQ(ExactMaxCover(sys, 5).coverage, 3u);
}

TEST(ExactMaxCover, EmptySetsIgnored) {
  SetSystem sys(4, {{}, {0, 1}, {}});
  CoverSolution sol = ExactMaxCover(sys, 1);
  EXPECT_EQ(sol.coverage, 2u);
  EXPECT_EQ(sol.sets[0], 1u);
}

TEST(ExactMaxCover, OverBudgetAborts) {
  auto inst = RandomUniform(64, 100, 4, 1);
  EXPECT_DEATH(ExactMaxCover(inst.system, 32), "CHECK failed");
}

TEST(ExactMaxCover, AgreesWithBruteForceIntuition) {
  // All pairs from a tiny instance, verified by construction: the two
  // disjoint 3-element sets are the unique optimum.
  SetSystem sys(9, {{0, 1, 2}, {2, 3, 4}, {6, 7, 8}, {0, 4}});
  CoverSolution sol = ExactMaxCover(sys, 2);
  EXPECT_EQ(sol.coverage, 6u);
}

}  // namespace
}  // namespace streamkc
