// QueryEngine contract: answers are precomputed snapshot lookups stamped
// with staleness metadata; rejections (no snapshot yet, tenant over budget)
// are explicit `ok == false` answers counted per reason; and the obs wiring
// is self-consistent — per-type latency histogram counts equal the per-type
// served counters.

#include <gtest/gtest.h>

#include <atomic>

#include "core/params.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "serve/serving_state.h"
#include "serve/snapshot.h"
#include "serve/snapshot_store.h"
#include "setsys/generators.h"
#include "stream/edge_stream.h"

namespace streamkc {
namespace {

ServingState::Config TestConfig() {
  ServingState::Config config;
  config.params = Params::Practical(128, 256, 8, 8.0);
  config.seed = 5;
  return config;
}

ServingState FedState() {
  ServingState state(TestConfig());
  GeneratedInstance inst = PlantedCover(128, 256, 8, 0.5, 6, 5);
  for (const Edge& e : inst.system.MaterializeEdges()) state.Process(e);
  return state;
}

std::shared_ptr<const CoverageSnapshot> Snap(const ServingState& state,
                                             uint64_t epoch) {
  SnapshotMeta meta;
  meta.epoch = epoch;
  meta.edges_ingested = 100 * epoch;
  meta.batches_ingested = epoch;
  meta.quarantined_fraction = 0.125;
  meta.shards = 8;
  meta.publish_steady_ns = 42;
  return CoverageSnapshot::Build(state, meta);
}

TEST(QueryEngine, RejectsBeforeFirstSnapshot) {
  MetricsRegistry registry;
  SnapshotStore store("q0", &registry);
  QueryEngine engine(&store, &registry);
  EstimateAnswer est = engine.Estimate();
  EXPECT_FALSE(est.ok);
  EXPECT_EQ(est.error, "no snapshot published yet");
  ReportAnswer rep = engine.Report();
  EXPECT_FALSE(rep.ok);
  SetCoverageAnswer cov = engine.SetCoverage(3);
  EXPECT_FALSE(cov.ok);
  EXPECT_EQ(registry
                .GetCounter(LabeledName("serve_queries_rejected_total",
                                        "reason", "no_snapshot"))
                ->Value(),
            3u);
  // Rejected queries are not served queries.
  EXPECT_EQ(registry
                .GetCounter(
                    LabeledName("serve_queries_total", "type", "estimate"))
                ->Value(),
            0u);
}

TEST(QueryEngine, AnswersMatchSnapshotAndCarryStaleness) {
  MetricsRegistry registry;
  SnapshotStore store("q1", &registry);
  ServingState state = FedState();
  auto snap = Snap(state, 2);
  store.Publish(snap);
  QueryEngine engine(&store, &registry);

  EstimateAnswer est = engine.Estimate();
  ASSERT_TRUE(est.ok);
  EXPECT_DOUBLE_EQ(est.estimate, snap->solution().estimate);
  EXPECT_EQ(est.source, snap->solution().source);
  EXPECT_EQ(est.staleness.epoch, 2u);
  EXPECT_EQ(est.staleness.edges_ingested, 200u);
  EXPECT_EQ(est.staleness.batches_ingested, 2u);
  EXPECT_DOUBLE_EQ(est.staleness.quarantined_fraction, 0.125);

  ReportAnswer rep = engine.Report();
  ASSERT_TRUE(rep.ok);
  EXPECT_EQ(rep.sets, snap->solution().sets);
  EXPECT_DOUBLE_EQ(rep.estimate, snap->solution().estimate);
  EXPECT_EQ(rep.staleness.epoch, 2u);

  SetCoverageAnswer cov = engine.SetCoverage(7);
  ASSERT_TRUE(cov.ok);
  EXPECT_EQ(cov.set, 7u);
  EXPECT_DOUBLE_EQ(cov.coverage, snap->SetCoverage(7));
  EXPECT_EQ(cov.staleness.epoch, 2u);
}

TEST(QueryEngine, AnswersTrackNewestSnapshot) {
  MetricsRegistry registry;
  SnapshotStore store("q2", &registry);
  ServingState state(TestConfig());
  state.Process(Edge{1, 2});
  store.Publish(Snap(state, 1));
  QueryEngine engine(&store, &registry);
  EXPECT_EQ(engine.Estimate().staleness.epoch, 1u);
  state.Process(Edge{3, 4});
  store.Publish(Snap(state, 2));
  EXPECT_EQ(engine.Estimate().staleness.epoch, 2u);
}

TEST(QueryEngine, OverBudgetFlagRejectsUntilCleared) {
  MetricsRegistry registry;
  SnapshotStore store("q3", &registry);
  ServingState state = FedState();
  store.Publish(Snap(state, 1));
  std::atomic<bool> over_budget{false};
  QueryEngine engine(&store, &registry, &over_budget);

  EXPECT_TRUE(engine.Estimate().ok);
  over_budget.store(true);
  EstimateAnswer est = engine.Estimate();
  EXPECT_FALSE(est.ok);
  EXPECT_EQ(est.error, "tenant over space budget");
  EXPECT_FALSE(engine.SetCoverage(1).ok);
  EXPECT_EQ(registry
                .GetCounter(LabeledName("serve_queries_rejected_total",
                                        "reason", "over_budget"))
                ->Value(),
            2u);
  over_budget.store(false);
  EXPECT_TRUE(engine.Estimate().ok);
}

TEST(QueryEngine, LatencyHistogramCountsEqualServedCounters) {
  MetricsRegistry registry;
  SnapshotStore store("q4", &registry);
  ServingState state = FedState();
  store.Publish(Snap(state, 1));
  QueryEngine engine(&store, &registry);

  for (int i = 0; i < 5; ++i) engine.Estimate();
  for (int i = 0; i < 3; ++i) engine.Report();
  for (int i = 0; i < 7; ++i) engine.SetCoverage(static_cast<SetId>(i));

  const char* kTypes[] = {"estimate", "report", "set_coverage"};
  const uint64_t kWant[] = {5, 3, 7};
  for (int t = 0; t < 3; ++t) {
    uint64_t served =
        registry.GetCounter(LabeledName("serve_queries_total", "type",
                                        kTypes[t]))->Value();
    uint64_t observed =
        registry.GetHistogram(LabeledName("serve_query_latency_ns", "type",
                                          kTypes[t]))->Count();
    EXPECT_EQ(served, kWant[t]) << kTypes[t];
    EXPECT_EQ(observed, served) << kTypes[t];
  }
}

}  // namespace
}  // namespace streamkc
