// TenantRegistry contract: admission enforces the paper's space law (a
// budget below the α = √m floor is rejected, an admitted budget buys the
// tightest feasible α) and the global reservation cap; runtime enforcement
// flips a tenant's over-budget flag from measured footprints, which its
// QueryEngine turns into explicit rejections.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/metrics.h"
#include "serve/serving_state.h"
#include "serve/snapshot.h"
#include "serve/tenant_registry.h"
#include "setsys/generators.h"

namespace streamkc {
namespace {

TenantQuota SmallQuota(size_t budget_bytes = 64u << 20) {
  TenantQuota q;
  q.m = 512;
  q.n = 1024;
  q.k = 16;
  q.budget_bytes = budget_bytes;
  q.seed = 9;
  return q;
}

TEST(TenantRegistry, AdmitsAndDerivesAlpha) {
  MetricsRegistry registry;
  TenantRegistry tenants(0, &registry);
  std::string error;
  Tenant* t = tenants.Create("acme", SmallQuota(), &error);
  ASSERT_NE(t, nullptr) << error;
  EXPECT_EQ(t->name(), "acme");
  EXPECT_GE(t->alpha(), 2.0);
  EXPECT_LE(t->alpha(), std::sqrt(512.0) + 1e-9);
  EXPECT_EQ(t->state_config().params.m, 512u);
  EXPECT_EQ(t->state_config().seed, 9u);
  EXPECT_EQ(tenants.NumTenants(), 1u);
  EXPECT_EQ(tenants.reserved_budget_bytes(), 64u << 20);
  EXPECT_EQ(registry.GetGauge("serve_tenants")->Value(), 1u);
  EXPECT_EQ(registry
                .GetGauge(LabeledName("serve_tenant_budget_bytes", "tenant",
                                      "acme"))
                ->Value(),
            64u << 20);
  EXPECT_EQ(registry.GetCounter("serve_tenants_admitted_total")->Value(), 1u);
}

TEST(TenantRegistry, BiggerBudgetBuysTighterAlpha) {
  MetricsRegistry registry;
  TenantRegistry tenants(0, &registry);
  std::string error;
  Tenant* small = tenants.Create("small", SmallQuota(2u << 20), &error);
  ASSERT_NE(small, nullptr) << error;
  Tenant* big = tenants.Create("big", SmallQuota(256u << 20), &error);
  ASSERT_NE(big, nullptr) << error;
  EXPECT_LE(big->alpha(), small->alpha());
}

TEST(TenantRegistry, RejectsDuplicateAndMalformed) {
  MetricsRegistry registry;
  TenantRegistry tenants(0, &registry);
  std::string error;
  ASSERT_NE(tenants.Create("acme", SmallQuota(), &error), nullptr);

  EXPECT_EQ(tenants.Create("acme", SmallQuota(), &error), nullptr);
  EXPECT_NE(error.find("already exists"), std::string::npos) << error;

  EXPECT_EQ(tenants.Create("", SmallQuota(), &error), nullptr);

  TenantQuota no_k = SmallQuota();
  no_k.k = 0;
  EXPECT_EQ(tenants.Create("nok", no_k, &error), nullptr);

  TenantQuota no_budget = SmallQuota();
  no_budget.budget_bytes = 0;
  EXPECT_EQ(tenants.Create("nobudget", no_budget, &error), nullptr);

  EXPECT_EQ(registry.GetCounter("serve_tenants_rejected_total")->Value(), 4u);
  EXPECT_EQ(tenants.NumTenants(), 1u);
}

TEST(TenantRegistry, RejectsBudgetBelowSpaceLawFloor) {
  MetricsRegistry registry;
  TenantRegistry tenants(0, &registry);
  std::string error;
  // 1 KiB cannot hold any admissible sketch for m=512 even at α = √m.
  EXPECT_EQ(tenants.Create("tiny", SmallQuota(1u << 10), &error), nullptr);
  EXPECT_NE(error.find("space-law floor"), std::string::npos) << error;
}

TEST(TenantRegistry, GlobalBudgetCapsAdmission) {
  MetricsRegistry registry;
  TenantRegistry tenants(100u << 20, &registry);
  std::string error;
  ASSERT_NE(tenants.Create("a", SmallQuota(60u << 20), &error), nullptr);
  EXPECT_EQ(tenants.Create("b", SmallQuota(60u << 20), &error), nullptr);
  EXPECT_NE(error.find("global budget exhausted"), std::string::npos) << error;
  // A tenant that fits the remaining reservation is still admitted.
  ASSERT_NE(tenants.Create("c", SmallQuota(30u << 20), &error), nullptr);
  EXPECT_EQ(tenants.reserved_budget_bytes(), 90u << 20);
}

TEST(TenantRegistry, FindReturnsAdmittedTenantsOnly) {
  MetricsRegistry registry;
  TenantRegistry tenants(0, &registry);
  std::string error;
  Tenant* t = tenants.Create("acme", SmallQuota(), &error);
  EXPECT_EQ(tenants.Find("acme"), t);
  EXPECT_EQ(tenants.Find("ghost"), nullptr);
  EXPECT_FALSE(tenants.RecordSpace("ghost", 1));
}

TEST(TenantRegistry, RecordSpaceFlipsOverBudgetAndRejectsQueries) {
  MetricsRegistry registry;
  TenantRegistry tenants(0, &registry);
  std::string error;
  Tenant* t = tenants.Create("acme", SmallQuota(), &error);
  ASSERT_NE(t, nullptr) << error;

  // Give the tenant a snapshot so budget rejections are distinguishable
  // from no-snapshot rejections.
  ServingState state(t->state_config());
  GeneratedInstance inst = PlantedCover(512, 1024, 16, 0.5, 6, 9);
  for (const Edge& e : inst.system.MaterializeEdges()) state.Process(e);
  SnapshotMeta meta;
  meta.epoch = 1;
  t->store()->Publish(CoverageSnapshot::Build(state, meta));

  EXPECT_TRUE(t->queries().Estimate().ok);

  // Measured footprint above the budget: flag up, queries rejected.
  ASSERT_TRUE(tenants.RecordSpace("acme", (64u << 20) + 1));
  EXPECT_TRUE(t->over_budget());
  EXPECT_EQ(t->space_bytes(), (64u << 20) + 1);
  EstimateAnswer rejected = t->queries().Estimate();
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error, "tenant over space budget");
  EXPECT_EQ(registry
                .GetGauge(LabeledName("serve_tenant_space_bytes", "tenant",
                                      "acme"))
                ->Value(),
            (64u << 20) + 1);

  // Footprint back under budget: flag clears, service resumes.
  ASSERT_TRUE(tenants.RecordSpace("acme", 1u << 20));
  EXPECT_FALSE(t->over_budget());
  EXPECT_TRUE(t->queries().Estimate().ok);
}

}  // namespace
}  // namespace streamkc
