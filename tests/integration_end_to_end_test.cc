// Cross-module integration tests: the full pipeline (generator → stream →
// EstimateMaxCover / ReportMaxCover → evaluation against offline solvers)
// across arrival orders, approximation targets and instance families.

#include <gtest/gtest.h>

#include <tuple>

#include "core/estimate_max_cover.h"
#include "core/report_max_cover.h"
#include "offline/baselines.h"
#include "offline/set_arrival_streaming.h"
#include "test_util.h"

namespace streamkc {
namespace {

// Estimation quality must hold in EVERY arrival order — that is the point of
// the edge-arrival model (sketches are order-oblivious).
class OrderSweep : public ::testing::TestWithParam<ArrivalOrder> {};

TEST_P(OrderSweep, EstimateQualityOrderOblivious) {
  ArrivalOrder order = GetParam();
  auto inst = PlantedCover(2048, 4096, 32, 0.5, 6, 17);
  const double alpha = 8;
  double greedy = static_cast<double>(GreedyCoverage(inst.system, 32));
  EstimateMaxCover::Config c;
  c.params = Params::Practical(2048, 4096, 32, alpha);
  c.seed = 777;
  EstimateMaxCover est(c);
  FeedSystem(inst.system, order, 5, est);
  EstimateOutcome out = est.Finalize();
  ASSERT_TRUE(out.feasible) << ArrivalOrderName(order);
  EXPECT_GE(out.estimate, greedy / (1.5 * alpha)) << ArrivalOrderName(order);
  EXPECT_LE(out.estimate, OptUpperBound(inst.system, 32) * 1.2)
      << ArrivalOrderName(order);
}

INSTANTIATE_TEST_SUITE_P(
    Orders, OrderSweep,
    ::testing::Values(ArrivalOrder::kSetContiguous, ArrivalOrder::kRandom,
                      ArrivalOrder::kElementContiguous,
                      ArrivalOrder::kRoundRobin, ArrivalOrder::kReversedSets),
    [](const ::testing::TestParamInfo<ArrivalOrder>& info) {
      std::string name = ArrivalOrderName(info.param);
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

// α-sweep: quality tracks the requested approximation factor.
class AlphaSweep : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSweep, EstimateWithinRequestedFactor) {
  double alpha = GetParam();
  auto inst = PlantedCover(2048, 4096, 32, 0.5, 6, 23);
  double greedy = static_cast<double>(GreedyCoverage(inst.system, 32));
  EstimateMaxCover::Config c;
  c.params = Params::Practical(2048, 4096, 32, alpha);
  c.seed = 1000 + static_cast<uint64_t>(alpha);
  EstimateMaxCover est(c);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 2, est);
  EstimateOutcome out = est.Finalize();
  ASSERT_TRUE(out.feasible) << "alpha=" << alpha;
  EXPECT_GE(out.estimate, greedy / (1.5 * alpha)) << "alpha=" << alpha;
  EXPECT_LE(out.estimate, OptUpperBound(inst.system, 32) * 1.2)
      << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSweep,
                         ::testing::Values(4.0, 8.0, 16.0, 32.0));

TEST(EndToEnd, StreamingBeatsRandomBaselineOnPlanted) {
  // The reported k-cover should comfortably beat picking k random sets on a
  // planted instance (where random sets are noise).
  auto inst = PlantedCover(2048, 4096, 32, 0.5, 6, 29);
  ReportMaxCover::Config c;
  c.params = Params::Practical(2048, 4096, 32, 4);
  c.seed = 55;
  ReportMaxCover rep(c);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 6, rep);
  MaxCoverSolution sol = rep.Finalize();
  uint64_t streaming_cov = inst.system.CoverageOf(sol.sets);
  uint64_t random_cov = RandomKBaseline(inst.system, 32, 7).coverage;
  EXPECT_GT(streaming_cov, random_cov);
}

TEST(EndToEnd, SetArrivalSieveSharperButOrderRestricted) {
  // Table 1's qualitative comparison: on set-contiguous streams the sieve
  // gets a 2+ε factor (better than α = 8), but it simply cannot run on the
  // general order, while the sketch pipeline runs on both.
  auto inst = PlantedCover(1024, 2048, 16, 0.5, 5, 31);
  auto contiguous = inst.system.MakeStream(ArrivalOrder::kSetContiguous, 0);
  SetArrivalSieve::Config sc;
  sc.k = 16;
  sc.opt_upper_bound = 2048;
  CoverSolution sieve = RunSetArrivalSieve(contiguous, sc);

  ReportMaxCover::Config rc;
  rc.params = Params::Practical(1024, 2048, 16, 8);
  rc.seed = 77;
  ReportMaxCover rep(rc);
  FeedSystem(inst.system, ArrivalOrder::kRandom, 8, rep);
  uint64_t sketch_cov = inst.system.CoverageOf(rep.Finalize().sets);

  EXPECT_GE(sieve.coverage, sketch_cov / 2);  // sieve is the sharper one
  EXPECT_GT(sketch_cov, 0u);                  // but the sketch ran on any order
}

TEST(EndToEnd, GraphNeighborhoodScenario) {
  // Footnote 2's motivating workload: cover vertices with k out-
  // neighborhoods, edges arriving in element-contiguous order (as when the
  // graph is stored by in-edges).
  auto inst = GraphNeighborhoods(2048, 24.0, 37);
  const uint64_t k = 48;
  double greedy = static_cast<double>(GreedyCoverage(inst.system, k));
  EstimateMaxCover::Config c;
  c.params = Params::Practical(2048, 2048, k, 8);
  c.seed = 99;
  EstimateMaxCover est(c);
  FeedSystem(inst.system, ArrivalOrder::kElementContiguous, 1, est);
  EstimateOutcome out = est.Finalize();
  ASSERT_TRUE(out.feasible);
  EXPECT_GE(out.estimate, greedy / 12.0);
  EXPECT_LE(out.estimate, OptUpperBound(inst.system, k) * 1.2);
}

TEST(EndToEnd, EstimateIsMonotoneInCoverage) {
  // Doubling the planted coverage should raise the estimate.
  auto lo = PlantedCover(1024, 4096, 16, 0.25, 5, 41);
  auto hi = PlantedCover(1024, 4096, 16, 0.9, 5, 41);
  auto run = [](const SetSystem& sys) {
    EstimateMaxCover::Config c;
    c.params = Params::Practical(sys.num_sets(), sys.num_elements(), 16, 8);
    c.seed = 3;
    EstimateMaxCover est(c);
    FeedSystem(sys, ArrivalOrder::kRandom, 4, est);
    return est.Finalize().estimate;
  };
  EXPECT_GT(run(hi.system), run(lo.system) * 1.5);
}

}  // namespace
}  // namespace streamkc
