// ShardedPipeline under injected faults: the degradation policy's contract
// is (a) timing faults and retried transient errors change NOTHING in the
// merged state, (b) worker death and merge corruption quarantine exactly
// the affected shard and the survivors' fold stays deterministic, (c)
// strict mode turns every degradation into a clean hard failure.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/estimate_max_cover.h"
#include "core/report_max_cover.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/faulty_stream.h"
#include "obs/metrics.h"
#include "runtime/shard_router.h"
#include "runtime/sharded_pipeline.h"
#include "runtime/sketch_states.h"
#include "test_util.h"

namespace streamkc {
namespace {

template <typename Sketch>
std::string SaveBytes(const Sketch& s) {
  std::ostringstream os;
  s.Save(os);
  return os.str();
}

std::string StateBytes(const CoverageSketchState& st) {
  return SaveBytes(st.covered_hll) + SaveBytes(st.element_f2);
}

// Runs `edges` through a 4-shard pipeline under `spec` (empty = clean) and
// hands back the merged state; `metrics_out` receives the run's counters.
CoverageSketchState RunFaulted(const std::vector<Edge>& edges,
                               const std::string& spec,
                               RuntimeMetrics* metrics_out,
                               MetricsRegistry* registry,
                               bool strict = false) {
  CoverageSketchState::Config cfg;
  cfg.seed = 19;
  ShardedPipelineOptions opts;
  opts.num_shards = 4;
  opts.batch_size = 128;
  opts.registry = registry;
  FaultInjector injector(
      FaultPlan::ParseOrDie(spec.empty() ? "seed=1" : spec), registry);
  opts.fault_injector = &injector;
  opts.degradation.strict = strict;
  ShardedPipeline<CoverageSketchState> pipe(
      opts, [&](uint32_t) { return CoverageSketchState(cfg); });
  VectorEdgeStream inner(edges);
  FaultInjectingStream stream(&inner, &injector);
  CoverageSketchState merged = pipe.Run(stream);
  if (metrics_out != nullptr) {
    // Snapshot the counters the assertions need (RuntimeMetrics itself is
    // not copyable; re-run its totals here).
    metrics_out->Reset(4);
    for (uint32_t s = 0; s < 4; ++s) {
      metrics_out->shard(s).edges.store(pipe.metrics().shard(s).edges.load());
      metrics_out->shard(s).edges_discarded.store(
          pipe.metrics().shard(s).edges_discarded.load());
      metrics_out->shard(s).quarantined.store(
          pipe.metrics().shard(s).quarantined.load());
    }
    metrics_out->edges_ingested.store(pipe.metrics().edges_ingested.load());
    metrics_out->stream_retries.store(pipe.metrics().stream_retries.load());
    metrics_out->worker_deaths.store(pipe.metrics().worker_deaths.load());
    metrics_out->merge_corruptions_detected.store(
        pipe.metrics().merge_corruptions_detected.load());
    metrics_out->shards_quarantined.store(
        pipe.metrics().shards_quarantined.load());
  }
  return merged;
}

TEST(FaultPipeline, TimingFaultsChangeNothing) {
  std::vector<Edge> edges = SyntheticEdges(20000, 3);
  MetricsRegistry clean_reg, faulted_reg;
  CoverageSketchState clean = RunFaulted(edges, "", nullptr, &clean_reg);
  // Push delays and a straggling shard perturb scheduling only; the merged
  // state is a pure function of the token sequence and must not move.
  RuntimeMetrics metrics;
  CoverageSketchState faulted =
      RunFaulted(edges, "seed=5,push-delay=0.05:100000,slow-shard=2:50000",
                 &metrics, &faulted_reg);
  EXPECT_EQ(StateBytes(faulted), StateBytes(clean));
  EXPECT_DOUBLE_EQ(faulted.covered_l0.Estimate(), clean.covered_l0.Estimate());
  EXPECT_EQ(metrics.shards_quarantined.load(), 0u);
  EXPECT_GT(faulted_reg
                .GetCounter(LabeledName("faults_injected_total", "kind",
                                        FaultInjector::kFaultPushDelay))
                ->Value(),
            0u);
}

TEST(FaultPipeline, TransientReadErrorsAreRetriedWithoutLoss) {
  std::vector<Edge> edges = SyntheticEdges(20000, 7);
  MetricsRegistry clean_reg, faulted_reg;
  CoverageSketchState clean = RunFaulted(edges, "", nullptr, &clean_reg);
  RuntimeMetrics metrics;
  CoverageSketchState faulted =
      RunFaulted(edges, "seed=9,read-error=0.05", &metrics, &faulted_reg);
  // Retried reads resume exactly where the stream left off: same tokens,
  // same state, nothing quarantined.
  EXPECT_EQ(StateBytes(faulted), StateBytes(clean));
  EXPECT_EQ(metrics.edges_ingested.load(), edges.size());
  EXPECT_GT(metrics.stream_retries.load(), 0u);
  EXPECT_EQ(metrics.shards_quarantined.load(), 0u);
  // The backoff histogram saw every retry.
  EXPECT_EQ(faulted_reg.GetHistogram("runtime_retry_backoff_ns")->Count(),
            metrics.stream_retries.load());
}

TEST(FaultPipeline, KilledShardIsQuarantinedAndSurvivorsStayExact) {
  std::vector<Edge> edges = SyntheticEdges(20000, 11);
  MetricsRegistry registry;
  RuntimeMetrics metrics;
  // Shard 1 dies before its first batch: its whole substream is discarded.
  CoverageSketchState degraded =
      RunFaulted(edges, "seed=1,kill-shard=1@0", &metrics, &registry);

  EXPECT_EQ(metrics.worker_deaths.load(), 1u);
  EXPECT_EQ(metrics.shards_quarantined.load(), 1u);
  EXPECT_EQ(metrics.shard(1).quarantined.load(), 1u);
  EXPECT_EQ(metrics.shard(1).edges.load(), 0u);
  EXPECT_GT(metrics.shard(1).edges_discarded.load(), 0u);
  EXPECT_DOUBLE_EQ(metrics.QuarantinedFraction(), 0.25);
  // Conservation: every ingested edge was either processed or discarded.
  EXPECT_EQ(metrics.TotalShardEdges() + metrics.TotalEdgesDiscarded(),
            metrics.edges_ingested.load());

  // The degraded answer equals an in-line pass over exactly the healthy
  // shards' substreams — the router is a pure function of the edge, so the
  // quarantined substream is identifiable after the fact.
  ShardRouter router(4, PartitionPolicy::kByElement, 0);
  CoverageSketchState::Config cfg;
  cfg.seed = 19;
  CoverageSketchState expect(cfg);
  for (const Edge& e : edges) {
    if (router.ShardOf(e) != 1) expect.Process(e);
  }
  EXPECT_EQ(StateBytes(degraded), StateBytes(expect));
  EXPECT_DOUBLE_EQ(degraded.covered_l0.Estimate(),
                   expect.covered_l0.Estimate());
}

TEST(FaultPipeline, CorruptedMergeFingerprintIsDetectedAndQuarantined) {
  std::vector<Edge> edges = SyntheticEdges(20000, 13);
  MetricsRegistry registry;
  RuntimeMetrics metrics;
  CoverageSketchState degraded =
      RunFaulted(edges, "seed=1,corrupt-merge=2", &metrics, &registry);
  EXPECT_EQ(metrics.merge_corruptions_detected.load(), 1u);
  EXPECT_EQ(metrics.shards_quarantined.load(), 1u);
  EXPECT_EQ(metrics.shard(2).quarantined.load(), 1u);

  ShardRouter router(4, PartitionPolicy::kByElement, 0);
  CoverageSketchState::Config cfg;
  cfg.seed = 19;
  CoverageSketchState expect(cfg);
  for (const Edge& e : edges) {
    if (router.ShardOf(e) != 2) expect.Process(e);
  }
  EXPECT_EQ(StateBytes(degraded), StateBytes(expect));
}

TEST(FaultPipeline, CorruptRootShardIsOutvotedByTheMajority) {
  // Majority vote must handle shard 0 being the corrupt one — a naive
  // "trust shard 0" comparison would quarantine everyone else instead.
  std::vector<Edge> edges = SyntheticEdges(10000, 17);
  MetricsRegistry registry;
  RuntimeMetrics metrics;
  RunFaulted(edges, "seed=1,corrupt-merge=0", &metrics, &registry);
  EXPECT_EQ(metrics.shards_quarantined.load(), 1u);
  EXPECT_EQ(metrics.shard(0).quarantined.load(), 1u);
  EXPECT_EQ(metrics.shard(1).quarantined.load(), 0u);
}

TEST(FaultPipeline, DeathAndCorruptionCompose) {
  std::vector<Edge> edges = SyntheticEdges(20000, 19);
  MetricsRegistry registry;
  RuntimeMetrics metrics;
  RunFaulted(edges, "seed=1,kill-shard=1@0,corrupt-merge=3", &metrics,
             &registry);
  EXPECT_EQ(metrics.shards_quarantined.load(), 2u);
  EXPECT_EQ(metrics.shard(1).quarantined.load(), 1u);
  EXPECT_EQ(metrics.shard(3).quarantined.load(), 1u);
  EXPECT_DOUBLE_EQ(metrics.QuarantinedFraction(), 0.5);
}

TEST(FaultPipeline, FaultedRunsReplayBitIdentically) {
  // The whole point of the harness: same plan, same answer — regardless of
  // scheduling. Run the same degraded configuration three times.
  std::vector<Edge> edges = SyntheticEdges(15000, 23);
  const std::string spec =
      "seed=29,read-error=0.01,dup=0.02,garbage=0.005,kill-shard=2@1";
  MetricsRegistry reg0;
  CoverageSketchState first = RunFaulted(edges, spec, nullptr, &reg0);
  for (int i = 0; i < 2; ++i) {
    MetricsRegistry reg;
    CoverageSketchState again = RunFaulted(edges, spec, nullptr, &reg);
    EXPECT_EQ(StateBytes(again), StateBytes(first));
    EXPECT_DOUBLE_EQ(again.covered_l0.Estimate(),
                     first.covered_l0.Estimate());
  }
}

TEST(FaultPipeline, EstimatorStatesCarryMergeFingerprints) {
  EstimateMaxCover::Config c;
  c.params = Params::Practical(512, 1024, 16, 8.0);
  c.seed = 7;
  EstimateMaxCover a(c), b(c);
  EXPECT_EQ(a.MergeFingerprint(), b.MergeFingerprint());
  EXPECT_TRUE(a.MergeCompatible(b));
  EstimateMaxCover::Config c2 = c;
  c2.seed = 8;
  EstimateMaxCover other(c2);
  EXPECT_NE(a.MergeFingerprint(), other.MergeFingerprint());
  EXPECT_FALSE(a.MergeCompatible(other));

  ReportMaxCover::Config rc;
  rc.params = c.params;
  rc.seed = 7;
  ReportMaxCover ra(rc), rb(rc);
  EXPECT_EQ(ra.MergeFingerprint(), rb.MergeFingerprint());

  CoverageSketchState::Config sc;
  CoverageSketchState sa(sc), sb(sc);
  EXPECT_EQ(sa.MergeFingerprint(), sb.MergeFingerprint());
  sc.seed = 99;
  EXPECT_NE(CoverageSketchState(sc).MergeFingerprint(), sa.MergeFingerprint());
}

TEST(FaultPipeline, BackoffSaturatesAtTheCapUnderALongFaultBurst) {
  // read-error=1 fails EVERY read: the producer burns its whole retry
  // budget in one consecutive burst. With >64 retries the old uncapped
  // `backoff_ns *= 2` overflowed uint64 (and long before that, slept for
  // centuries); the saturating doubling must pin every backoff at
  // max_backoff_ns instead — verified exactly through the backoff
  // histogram, which records each sleep before it happens.
  std::vector<Edge> edges = SyntheticEdges(4000, 41);
  MetricsRegistry registry;
  CoverageSketchState::Config cfg;
  cfg.seed = 19;
  ShardedPipelineOptions opts;
  opts.num_shards = 2;
  opts.batch_size = 128;
  opts.registry = &registry;
  opts.degradation.max_stream_retries = 100;  // > 64 consecutive failures
  opts.degradation.initial_backoff_ns = 1;
  opts.degradation.max_backoff_ns = 1024;
  FaultInjector injector(FaultPlan::ParseOrDie("seed=1,read-error=1"),
                         &registry);
  opts.fault_injector = &injector;
  ShardedPipeline<CoverageSketchState> pipe(
      opts, [&](uint32_t) { return CoverageSketchState(cfg); });
  VectorEdgeStream inner(edges);
  FaultInjectingStream stream(&inner, &injector);
  pipe.Run(stream);

  EXPECT_EQ(pipe.metrics().stream_retries.load(), 100u);
  EXPECT_EQ(pipe.metrics().edges_ingested.load(), 0u);
  Histogram* h = registry.GetHistogram("runtime_retry_backoff_ns");
  EXPECT_EQ(h->Count(), 100u);
  // Backoffs observed: 1, 2, 4, …, 512 (ten doublings, sum 1023), then 90
  // sleeps saturated at the 1024ns cap. An overflow or wrap would blow this
  // exact sum apart.
  EXPECT_EQ(h->Sum(), 1023u + 90u * 1024u);
  // The producer surfaced the exhausted budget as a transient failure.
  ASSERT_EQ(pipe.producer_status().size(), 1u);
  EXPECT_FALSE(pipe.producer_status()[0].ok);
  EXPECT_TRUE(pipe.producer_status()[0].transient);
  EXPECT_EQ(pipe.producer_status()[0].retries_used, 100u);
}

using FaultPipelineDeathTest = ::testing::Test;

TEST(FaultPipelineDeathTest, StrictStreamFailureExitsCleanlyAfterJoin) {
  // Strict mode on a persistent stream error must exit(1) — but only AFTER
  // the rings are closed and every worker joined. The old path called
  // std::exit while workers were live and blocked in Pop(), racing
  // registry/atexit teardown against running threads.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<Edge> edges = SyntheticEdges(2000, 43);
  MetricsRegistry registry;
  CoverageSketchState::Config cfg;
  ShardedPipelineOptions opts;
  opts.num_shards = 4;
  opts.registry = &registry;
  opts.degradation.strict = true;
  opts.degradation.max_stream_retries = 3;
  opts.degradation.initial_backoff_ns = 1;
  FaultInjector injector(FaultPlan::ParseOrDie("seed=1,read-error=1"),
                         &registry);
  opts.fault_injector = &injector;
  EXPECT_EXIT(
      {
        ShardedPipeline<CoverageSketchState> pipe(
            opts, [&](uint32_t) { return CoverageSketchState(cfg); });
        VectorEdgeStream inner(edges);
        FaultInjectingStream stream(&inner, &injector);
        pipe.Run(stream);
      },
      ::testing::ExitedWithCode(1),
      "strict: stream error persisted after 3 retries");
}

TEST(FaultPipelineDeathTest, StrictModeHardFailsOnQuarantine) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<Edge> edges = SyntheticEdges(5000, 31);
  MetricsRegistry registry;
  EXPECT_EXIT(
      RunFaulted(edges, "seed=1,kill-shard=1@0", nullptr, &registry, true),
      ::testing::ExitedWithCode(1), "strict: 1/4 shards quarantined");
}

TEST(FaultPipelineDeathTest, AllShardsQuarantinedIsFatalEvenWhenLenient) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<Edge> edges = SyntheticEdges(2000, 37);
  CoverageSketchState::Config cfg;
  ShardedPipelineOptions opts;  // num_shards = 1
  MetricsRegistry registry;
  opts.registry = &registry;
  FaultInjector injector(FaultPlan::ParseOrDie("seed=1,kill-shard=0@0"),
                         &registry);
  opts.fault_injector = &injector;
  EXPECT_EXIT(
      {
        ShardedPipeline<CoverageSketchState> pipe(
            opts, [&](uint32_t) { return CoverageSketchState(cfg); });
        VectorEdgeStream stream(edges);
        pipe.Run(stream);
      },
      ::testing::ExitedWithCode(1), "all 1 shards quarantined");
}

}  // namespace
}  // namespace streamkc
