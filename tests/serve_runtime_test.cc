// ServingRuntime contract — including the subsystem's acceptance
// criterion: querying a snapshot at epoch E returns exactly what a one-shot
// inline pass over the first E ingest segments would have returned. Plus:
// sharded segment ingest converges to the same answers as inline, a
// trailing partial segment still publishes, and pipeline quarantine
// propagates into every later snapshot's staleness metadata.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/params.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "serve/serving_runtime.h"
#include "serve/serving_state.h"
#include "serve/snapshot_store.h"
#include "setsys/generators.h"
#include "stream/edge_stream.h"

namespace streamkc {
namespace {

constexpr uint64_t kM = 256, kN = 512, kK = 8;

ServingState::Config TestConfig() {
  ServingState::Config config;
  config.params = Params::Practical(kM, kN, kK, 8.0);
  config.seed = 21;
  return config;
}

std::vector<Edge> TestEdges() {
  GeneratedInstance inst = PlantedCover(kM, kN, kK, 0.5, 6, 21);
  auto edges = inst.system.MaterializeEdges();
  ApplyArrivalOrder(edges, ArrivalOrder::kRandom, 21);
  return edges;
}

// Reference answer: a fresh inline per-edge pass over a prefix.
ServingState PrefixPass(const std::vector<Edge>& edges, uint64_t count) {
  ServingState state(TestConfig());
  for (uint64_t i = 0; i < count && i < edges.size(); ++i) {
    state.Process(edges[i]);
  }
  return state;
}

TEST(ServingRuntime, SnapshotAtEpochEMatchesInlinePrefixPass) {
  const std::vector<Edge> edges = TestEdges();
  const uint64_t kCadence = 300;
  MetricsRegistry registry;
  SnapshotStore store("rt0", &registry);
  ServingRuntimeOptions opts;
  opts.snapshot_every_edges = kCadence;
  opts.registry = &registry;
  std::vector<std::shared_ptr<const CoverageSnapshot>> published;
  opts.on_publish = [&](const std::shared_ptr<const CoverageSnapshot>& s) {
    published.push_back(s);
  };
  ServingRuntime runtime(TestConfig(), opts, &store);
  VectorEdgeStream stream(edges);
  IngestSummary sum = runtime.Ingest(stream);

  ASSERT_TRUE(sum.stream_ok);
  EXPECT_EQ(sum.edges, edges.size());
  const uint64_t want_segments = (edges.size() + kCadence - 1) / kCadence;
  EXPECT_EQ(sum.segments, want_segments);
  ASSERT_EQ(published.size(), want_segments);

  // THE acceptance differential: every published epoch E must equal a
  // one-shot pass over the first min(E * cadence, total) edges.
  for (const auto& snap : published) {
    const uint64_t epoch = snap->meta().epoch;
    const uint64_t prefix =
        std::min<uint64_t>(epoch * kCadence, edges.size());
    EXPECT_EQ(snap->meta().edges_ingested, prefix) << "epoch " << epoch;
    ServingState reference = PrefixPass(edges, prefix);
    MaxCoverSolution want = reference.FinalizeSolution();
    EXPECT_DOUBLE_EQ(snap->solution().estimate, want.estimate)
        << "epoch " << epoch;
    EXPECT_EQ(snap->solution().source, want.source) << "epoch " << epoch;
    EXPECT_EQ(snap->solution().sets, want.sets) << "epoch " << epoch;
    for (SetId s = 0; s < 16; ++s) {
      EXPECT_DOUBLE_EQ(snap->SetCoverage(s),
                       reference.set_coverage().PointQuery(s))
          << "epoch " << epoch << " set " << s;
    }
  }
}

TEST(ServingRuntime, ShardedSegmentsMatchInlineIngest) {
  const std::vector<Edge> edges = TestEdges();
  const uint64_t kCadence = 512;
  MetricsRegistry inline_registry;
  SnapshotStore inline_store("rt1a", &inline_registry);
  ServingRuntimeOptions inline_opts;
  inline_opts.snapshot_every_edges = kCadence;
  inline_opts.registry = &inline_registry;
  ServingRuntime inline_runtime(TestConfig(), inline_opts, &inline_store);
  VectorEdgeStream inline_stream(edges);
  IngestSummary inline_sum = inline_runtime.Ingest(inline_stream);

  MetricsRegistry sharded_registry;
  SnapshotStore sharded_store("rt1b", &sharded_registry);
  ServingRuntimeOptions sharded_opts;
  sharded_opts.snapshot_every_edges = kCadence;
  sharded_opts.threads = 4;
  sharded_opts.batch_size = 64;
  sharded_opts.registry = &sharded_registry;
  ServingRuntime sharded_runtime(TestConfig(), sharded_opts, &sharded_store);
  VectorEdgeStream sharded_stream(edges);
  IngestSummary sharded_sum = sharded_runtime.Ingest(sharded_stream);

  EXPECT_EQ(sharded_sum.edges, inline_sum.edges);
  EXPECT_EQ(sharded_sum.segments, inline_sum.segments);
  EXPECT_DOUBLE_EQ(sharded_sum.quarantined_fraction, 0.0);

  auto inline_snap = inline_store.Current();
  auto sharded_snap = sharded_store.Current();
  ASSERT_NE(inline_snap, nullptr);
  ASSERT_NE(sharded_snap, nullptr);
  // Seed-coordinated shard replicas merge to the same estimator state as
  // the single-threaded pass, so the served answers agree exactly.
  EXPECT_DOUBLE_EQ(sharded_snap->solution().estimate,
                   inline_snap->solution().estimate);
  EXPECT_EQ(sharded_snap->solution().sets, inline_snap->solution().sets);
  for (SetId s = 0; s < 16; ++s) {
    EXPECT_DOUBLE_EQ(sharded_snap->SetCoverage(s),
                     inline_snap->SetCoverage(s));
  }
}

TEST(ServingRuntime, TrailingPartialSegmentStillPublishes) {
  const std::vector<Edge> edges = TestEdges();
  // A cadence that does NOT divide the stream: the final snapshot must
  // still cover every edge.
  const uint64_t kCadence = 1000;
  ASSERT_NE(edges.size() % kCadence, 0u);
  MetricsRegistry registry;
  SnapshotStore store("rt2", &registry);
  ServingRuntimeOptions opts;
  opts.snapshot_every_edges = kCadence;
  opts.registry = &registry;
  ServingRuntime runtime(TestConfig(), opts, &store);
  VectorEdgeStream stream(edges);
  IngestSummary sum = runtime.Ingest(stream);
  auto last = store.Current();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->meta().edges_ingested, edges.size());
  EXPECT_EQ(last->meta().epoch, (edges.size() + kCadence - 1) / kCadence);
  EXPECT_EQ(sum.snapshots_published, last->meta().epoch);
}

TEST(ServingRuntime, QuarantinePropagatesIntoStaleness) {
  const std::vector<Edge> edges = TestEdges();
  MetricsRegistry registry;
  SnapshotStore store("rt3", &registry);
  FaultPlan plan;
  std::string err;
  ASSERT_TRUE(FaultPlan::Parse("seed=7,kill-shard=1@0", &plan, &err)) << err;
  FaultInjector injector(plan, &registry);
  ServingRuntimeOptions opts;
  opts.snapshot_every_edges = 1024;
  opts.threads = 2;
  opts.batch_size = 64;
  opts.registry = &registry;
  opts.fault_injector = &injector;
  ServingRuntime runtime(TestConfig(), opts, &store);
  VectorEdgeStream stream(edges);
  IngestSummary sum = runtime.Ingest(stream);

  EXPECT_GT(sum.shard_runs_quarantined, 0u);
  EXPECT_GT(sum.quarantined_fraction, 0.0);
  auto snap = store.Current();
  ASSERT_NE(snap, nullptr);
  // The confidence discount rides the snapshot into every served answer.
  EXPECT_GT(snap->meta().quarantined_fraction, 0.0);
  QueryEngine engine(&store, &registry);
  EstimateAnswer ans = engine.Estimate();
  ASSERT_TRUE(ans.ok);
  EXPECT_GT(ans.staleness.quarantined_fraction, 0.0);
}

TEST(ServingRuntime, IngestMetricsAreConsistent) {
  const std::vector<Edge> edges = TestEdges();
  MetricsRegistry registry;
  SnapshotStore store("rt4", &registry);
  ServingRuntimeOptions opts;
  opts.snapshot_every_edges = 500;
  opts.registry = &registry;
  ServingRuntime runtime(TestConfig(), opts, &store);
  VectorEdgeStream stream(edges);
  IngestSummary sum = runtime.Ingest(stream);

  EXPECT_EQ(registry.GetCounter("serve_ingest_edges_total")->Value(),
            edges.size());
  EXPECT_EQ(registry.GetCounter("serve_ingest_segments_total")->Value(),
            sum.segments);
  EXPECT_EQ(registry
                .GetCounter(LabeledName("serve_snapshots_published_total",
                                        "store", "rt4"))
                ->Value(),
            sum.snapshots_published);
  EXPECT_EQ(store.epoch(), sum.snapshots_published);
  EXPECT_EQ(registry.GetHistogram("serve_publish_ns")->Count(),
            sum.snapshots_published);
}

}  // namespace
}  // namespace streamkc
