#!/usr/bin/env python3
"""Validates a streamkc_cli --metrics-out JSON dump against the checked-in
schema (tools/metrics_schema.json) plus semantic invariants the schema
cannot express. Stdlib only — no jsonschema dependency.

Usage: validate_metrics.py DUMP.json [--schema SCHEMA.json]
Exit status: 0 valid, 1 invalid, 2 usage/IO error.
"""

import json
import os
import sys

SUPPORTED_KEYS = {
    "$comment", "type", "required", "properties", "items",
    "additionalProperties", "anyOf", "enum",
}


def type_ok(value, expected):
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected == "object":
        return isinstance(value, dict)
    if expected == "array":
        return isinstance(value, list)
    if expected == "string":
        return isinstance(value, str)
    raise ValueError(f"unsupported schema type: {expected}")


def validate(value, schema, path, errors):
    """Interprets the JSON-Schema subset documented in metrics_schema.json."""
    unknown = set(schema) - SUPPORTED_KEYS
    if unknown:
        raise ValueError(f"schema uses unsupported keywords at {path}: {unknown}")

    if "anyOf" in schema:
        for alternative in schema["anyOf"]:
            trial = []
            validate(value, alternative, path, trial)
            if not trial:
                return
        errors.append(f"{path}: matches no anyOf alternative")
        return

    expected = schema.get("type")
    if expected is not None and not type_ok(value, expected):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return

    allowed = schema.get("enum")
    if allowed is not None and value not in allowed:
        errors.append(f"{path}: {value!r} not one of {allowed}")
        return

    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(sub, extra, f"{path}.{key}", errors)
    elif isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def check_invariants(dump, errors):
    """Cross-field rules: counter consistency the schema cannot state."""
    shards = dump.get("shards")
    if shards is not None:
        # A dump with shard rows must carry the whole runtime section.
        for key in ("edges_ingested", "batches_enqueued", "queue_full_stalls",
                    "ring_stall_rounds", "ring_stalled_ns", "merges",
                    "merge_ns", "wall_ns"):
            if key not in dump:
                errors.append(f"$: runtime dump missing '{key}'")
        for i, row in enumerate(shards):
            if row.get("shard") != i:
                errors.append(f"$.shards[{i}]: shard id {row.get('shard')}")
            if row.get("ring_stall_rounds", 0) < row.get("ring_stalls", 0):
                errors.append(f"$.shards[{i}]: stall rounds < stall events")
        if "edges_ingested" in dump:
            # Every ingested edge is either processed by its shard or
            # discarded by a dead (quarantined) worker draining its ring.
            total = sum(row.get("edges", 0) + row.get("edges_discarded", 0)
                        for row in shards)
            if total != dump["edges_ingested"]:
                errors.append(
                    f"$: shard edges+discarded sum {total} != "
                    f"edges_ingested {dump['edges_ingested']}")
        quarantined_rows = sum(row.get("quarantined", 0) for row in shards)
        if dump.get("shards_quarantined", quarantined_rows) != quarantined_rows:
            errors.append(
                f"$: shards_quarantined {dump['shards_quarantined']} != "
                f"sum of quarantined shard rows {quarantined_rows}")
        if "quarantined_fraction" in dump and shards:
            expect = dump.get("shards_quarantined", 0) / len(shards)
            if abs(dump["quarantined_fraction"] - expect) > 1e-3:
                errors.append(
                    f"$: quarantined_fraction {dump['quarantined_fraction']} "
                    f"inconsistent with shards_quarantined/num_shards "
                    f"{expect:.4f}")

    producers = dump.get("producers")
    if producers is not None:
        if dump.get("num_producers", len(producers)) != len(producers):
            errors.append(
                f"$: num_producers {dump['num_producers']} != "
                f"{len(producers)} producer rows")
        for i, row in enumerate(producers):
            if row.get("producer") != i:
                errors.append(f"$.producers[{i}]: producer id "
                              f"{row.get('producer')}")
        if "edges_ingested" in dump:
            # The producer rows partition the ingested stream: each edge is
            # read by exactly one producer.
            total = sum(row.get("edges", 0) for row in producers)
            if total != dump["edges_ingested"]:
                errors.append(
                    f"$: producer edges sum {total} != "
                    f"edges_ingested {dump['edges_ingested']}")
        if "stream_retries" in dump:
            retries = sum(row.get("stream_retries", 0) for row in producers)
            if retries != dump["stream_retries"]:
                errors.append(
                    f"$: producer stream_retries sum {retries} != "
                    f"stream_retries {dump['stream_retries']}")
        if "batches_recycled" in dump:
            recycled = sum(row.get("batches_recycled", 0)
                           for row in producers)
            if recycled != dump["batches_recycled"]:
                errors.append(
                    f"$: producer batches_recycled sum {recycled} != "
                    f"batches_recycled {dump['batches_recycled']}")

    space = dump.get("space")
    if space is not None:
        if space["peak_total_bytes"] < space["current_total_bytes"]:
            errors.append("$.space: peak_total_bytes < current_total_bytes")
        for name, comp in space.get("components", {}).items():
            if comp["peak_bytes"] < comp["current_bytes"]:
                errors.append(f"$.space.components.{name}: peak < current")

    serving = dump.get("serving")
    if serving is not None:
        reg = dump.get("registry", {})
        # A serving dump comes from one fresh store, so its final epoch is
        # exactly the number of snapshots it published.
        if serving["epoch"] != serving["snapshots_published"]:
            errors.append(
                f"$.serving: epoch {serving['epoch']} != "
                f"snapshots_published {serving['snapshots_published']}")
        store = serving["store"]
        for gauge, want in (
                (f'serve_snapshots_published_total{{store="{store}"}}',
                 serving["snapshots_published"]),
                (f'serve_snapshot_epoch{{store="{store}"}}',
                 serving["epoch"]),
                ("serve_ingest_edges_total", serving["edges_ingested"]),
                ("serve_ingest_segments_total", serving["segments"])):
            have = reg.get(gauge, want)
            if have != want:
                errors.append(
                    f"$.registry.{gauge}: {have} != serving section {want}")
        publish = reg.get("serve_publish_ns")
        if isinstance(publish, dict) and \
                publish["count"] != serving["snapshots_published"]:
            errors.append(
                f"$.registry.serve_publish_ns: count {publish['count']} != "
                f"snapshots_published {serving['snapshots_published']}")
        # Every served query is observed in exactly one per-type latency
        # histogram; every rejection is counted under exactly one reason.
        served = rejected = 0
        for name, metric in reg.items():
            if name.startswith("serve_queries_total{"):
                served += metric
                latency = reg.get(name.replace(
                    "serve_queries_total", "serve_query_latency_ns"))
                if isinstance(latency, dict) and latency["count"] != metric:
                    errors.append(
                        f"$.registry.{name}: served {metric} != latency "
                        f"observations {latency['count']}")
            elif name.startswith("serve_queries_rejected_total{"):
                rejected += metric
        if served != serving["queries_served"]:
            errors.append(
                f"$: per-type served counters sum {served} != "
                f"serving.queries_served {serving['queries_served']}")
        if rejected != serving["queries_rejected"]:
            errors.append(
                f"$: per-reason rejected counters sum {rejected} != "
                f"serving.queries_rejected {serving['queries_rejected']}")

    dist = dump.get("dist")
    if dist is not None:
        workers = dist["workers"]
        if dist["num_workers"] != len(workers):
            errors.append(
                f"$.dist: num_workers {dist['num_workers']} != "
                f"{len(workers)} worker rows")
        for i, row in enumerate(workers):
            if row.get("worker") != i:
                errors.append(f"$.dist.workers[{i}]: worker id "
                              f"{row.get('worker')}")
            # Cross-process conservation, per worker: every edge a worker
            # ingested was either processed into its state or discarded by
            # degradation — nothing leaks across the pipe boundary.
            ingested = row["edges_ingested"]
            accounted = row["edges_processed"] + row["edges_discarded"]
            if ingested != accounted:
                errors.append(
                    f"$.dist.workers[{i}]: edges_ingested {ingested} != "
                    f"processed+discarded {accounted}")
            if row["quarantined"]:
                # A quarantined worker contributed nothing to the merge, so
                # its row must count nothing (its partial work died with it).
                if row["edges_ingested"] or row["edges_processed"]:
                    errors.append(
                        f"$.dist.workers[{i}]: quarantined but carries "
                        f"nonzero edge counters")
            if row["segments_done"] > row["segments_assigned"]:
                errors.append(
                    f"$.dist.workers[{i}]: segments_done "
                    f"{row['segments_done']} > assigned "
                    f"{row['segments_assigned']}")
        # Totals are exactly the row sums: the coordinator ledger has no
        # source of counts other than what workers shipped.
        for total_key, row_key in (
                ("edges_ingested", "edges_ingested"),
                ("edges_processed", "edges_processed"),
                ("edges_discarded", "edges_discarded"),
                ("stream_retries", "stream_retries"),
                ("bytes_shipped", "bytes_shipped"),
                ("checkpoints_written", "checkpoints_written"),
                ("checkpoints_loaded", "checkpoints_loaded"),
                ("checkpoints_rejected", "checkpoints_rejected"),
                ("connect_retries", "connect_retries"),
                ("workers_respawned", "respawns"),
                ("crc_rejections", "crc_rejections")):
            row_sum = sum(row[row_key] for row in workers)
            if dist[total_key] != row_sum:
                errors.append(
                    f"$.dist.{total_key}: {dist[total_key]} != "
                    f"worker row sum {row_sum}")
        # Transport sanity: the pipe transport never accepts connections or
        # drops sockets, and retries only exist where a dial can fail.
        if dist["transport"] not in ("pipe", "tcp"):
            errors.append(f"$.dist.transport: {dist['transport']!r} is not "
                          f"pipe/tcp")
        if dist["transport"] == "pipe":
            for key in ("connections_accepted", "socket_drops",
                        "connect_retries"):
                if dist[key]:
                    errors.append(
                        f"$.dist.{key}: {dist[key]} nonzero on the pipe "
                        f"transport")
        quarantined = sum(1 for row in workers if row["quarantined"])
        if dist["workers_quarantined"] != quarantined:
            errors.append(
                f"$.dist.workers_quarantined: {dist['workers_quarantined']} "
                f"!= {quarantined} quarantined rows")
        assigned = sum(row["segments_assigned"] for row in workers)
        if dist["num_segments"] != assigned:
            errors.append(
                f"$.dist.num_segments: {dist['num_segments']} != "
                f"sum of segments_assigned {assigned}")
        # The merge tree's depth is fully determined by its leaf count (the
        # non-quarantined workers) and arity: ceil(log_arity(leaves)).
        leaves = len(workers) - quarantined
        depth, span = 0, 1
        while span < leaves:
            span *= dist["merge_arity"]
            depth += 1
        if leaves > 0 and dist["merge_depth"] != depth:
            errors.append(
                f"$.dist.merge_depth: {dist['merge_depth']} != "
                f"ceil(log_{dist['merge_arity']}({leaves})) = {depth}")
        # PublishTo mirrors the section into the registry; the dump must be
        # one coherent snapshot, not two.
        reg = dump.get("registry", {})
        for gauge, want in (
                ("dist_num_workers", dist["num_workers"]),
                ("dist_edges_processed_total", dist["edges_processed"]),
                ("dist_bytes_shipped_total", dist["bytes_shipped"]),
                ("dist_workers_respawned_total", dist["workers_respawned"]),
                ("dist_workers_quarantined", dist["workers_quarantined"]),
                ("dist_checkpoints_written_total",
                 dist["checkpoints_written"]),
                ("dist_checkpoints_rejected_total",
                 dist["checkpoints_rejected"]),
                ("dist_connect_retries_total", dist["connect_retries"]),
                ("dist_poll_wakeups_total", dist["poll_wakeups"]),
                ("dist_connections_accepted_total",
                 dist["connections_accepted"]),
                ("dist_socket_drops_total", dist["socket_drops"]),
                ("dist_merge_depth", dist["merge_depth"])):
            have = reg.get(gauge, want)
            if have != want:
                errors.append(
                    f"$.registry.{gauge}: {have} != dist section {want}")
        for row in workers:
            gauge = (f'dist_worker_edges_total'
                     f'{{worker="{row["worker"]}"}}')
            have = reg.get(gauge, row["edges_processed"])
            if have != row["edges_processed"]:
                errors.append(
                    f"$.registry.{gauge}: {have} != worker row "
                    f"{row['edges_processed']}")

    # hash_kernel_avx2 is a boolean fact about the run (which MapFoldedBatch
    # kernel the dispatcher resolved), published as a gauge: 0 or 1 only.
    kernel = dump.get("registry", {}).get("hash_kernel_avx2")
    if kernel is not None and kernel not in (0, 1):
        errors.append(f"$.registry.hash_kernel_avx2: {kernel} is not 0/1")

    for name, metric in dump.get("registry", {}).items():
        if isinstance(metric, dict):  # histogram
            bucket_sum = sum(count for _, count in metric["buckets"])
            if bucket_sum != metric["count"]:
                errors.append(
                    f"$.registry.{name}: bucket counts sum {bucket_sum} "
                    f"!= count {metric['count']}")
            bounds = [le for le, _ in metric["buckets"]]
            if bounds != sorted(bounds):
                errors.append(f"$.registry.{name}: bucket bounds not sorted")


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    schema_path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "metrics_schema.json")
    for i, a in enumerate(argv[1:]):
        if a == "--schema":
            schema_path = argv[1:][i + 1]
            args.remove(schema_path)
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        with open(schema_path) as f:
            schema = json.load(f)
        with open(args[0]) as f:
            dump = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"validate_metrics: {e}", file=sys.stderr)
        return 2

    errors = []
    validate(dump, schema, "$", errors)
    if not errors:
        check_invariants(dump, errors)
    if errors:
        for e in errors:
            print(f"INVALID {e}", file=sys.stderr)
        return 1
    print(f"OK {args[0]}: {len(dump.get('registry', {}))} registry metrics, "
          f"{len(dump.get('shards', []))} shard rows, "
          f"{len(dump.get('producers', []))} producer rows")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
