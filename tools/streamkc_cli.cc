// streamkc command-line tool: run the paper's algorithms on edge files.
//
//   streamkc_cli generate --family planted --m 2048 --n 4096 --k 32
//                --seed 1 --out edges.txt
//   streamkc_cli stats    edges.txt
//   streamkc_cli estimate edges.txt --m 2048 --n 4096 --k 32 --alpha 8
//   streamkc_cli estimate edges.txt --m 2048 --n 4096 --k 32 --budget-kb 512
//   streamkc_cli estimate edges.txt --m 2048 --n 4096 --k 32 --alpha 8
//                --threads 8 --metrics-out metrics.json
//   streamkc_cli report   edges.txt --m 2048 --n 4096 --k 32 --alpha 8
//   streamkc_cli twopass  edges.txt --m 2048 --n 4096 --k 32 --alpha 8
//
// Input format: one "set element" pair per line ('#' comments allowed), any
// order — the general edge-arrival model. `estimate`/`report` are single
// pass; `twopass` reads the file twice for a narrower sketch.
//
// --threads N runs estimate/report through the sharded runtime pipeline
// (src/runtime): N seed-coordinated replicas ingest disjoint substreams and
// are folded with Merge() at end of stream. The result is deterministic and
// matches the single-threaded answer on the same seed.
//
// --producers P (estimate/report with --threads >= 1) additionally splits
// the input file into P newline-aligned segments and parses/routes them
// from P producer threads (SegmentedTextStream + the pipeline's P×N ring
// lattice) — the fix for ingest being bound by a single parser thread. The
// merged answer is unchanged: routing is a pure per-edge function, so each
// shard sees the same multiset regardless of P.
//
// --metrics-out FILE|- dumps the run's observability snapshot (runtime
// counters, space breakdown, metrics registry); --metrics-format json
// (default, a superset of the original RuntimeMetrics schema) or
// prometheus (text exposition format). Works with and without --threads.
//
// --fault-plan=SPEC (estimate/report with --threads >= 1) runs the pass
// under deterministic fault injection (src/fault): transient read errors,
// duplicate/garbage/reordered edges, push delays, shard slowdowns, worker
// death and merge corruption, per the spec grammar in fault_plan.h. The
// pipeline degrades per its policy (bounded retry, shard quarantine) and
// the quarantined fraction is reported with the estimate; --fault-strict
// turns any degradation into a hard failure. Same SPEC = same faults =
// same answer — failures replay from the printed spec.
//
// `serve` is the long-running mode (src/serve): the pass ingests the file
// in segments of --snapshot-every edges, publishing an immutable coverage
// snapshot into a double-buffered store at every boundary, while
// --query-threads reader threads answer EstimateMaxCover / ReportMaxCover /
// per-set coverage queries against the current snapshot the whole time.
// Every answer carries staleness metadata (epoch, edges ingested,
// quarantined fraction, snapshot age). --threads >= 1 runs each segment
// through the sharded runtime (and is required for --fault-plan, exactly as
// in estimate/report). --metrics-out gains a "serving" section.
//
// `sketch` is the multi-process mode (src/dist): --workers W forks W
// worker processes, each ingesting a disjoint block of the file's
// newline-aligned segments into a CoverageSketchState and shipping its
// serialized state over a pipe (CRC-framed); the coordinator reduces the
// states through a merge tree of --merge-arity. The merged result is
// byte-identical to --workers 0 (the inline pass). --checkpoint-every N
// (with --checkpoint-dir) makes workers checkpoint every N committed
// segments, so a worker killed mid-stream (crash or kill-shard fault)
// respawns and resumes instead of re-ingesting its block. --fault-plan
// gains kill-shard/corrupt-merge/corrupt-frame semantics at process scope;
// --metrics-out gains a "dist" section.
//
// Malformed input lines stop the run with a file:line error by default;
// --lenient skips and counts them instead.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/estimate_max_cover.h"
#include "core/report_max_cover.h"
#include "core/two_pass.h"
#include "dist/process_tree.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/faulty_stream.h"
#include "hash/kernel_dispatch.h"
#include "obs/metrics.h"
#include "obs/space_accountant.h"
#include "runtime/metrics_export.h"
#include "runtime/sharded_pipeline.h"
#include "runtime/sketch_states.h"
#include "serve/query_engine.h"
#include "serve/serving_runtime.h"
#include "serve/snapshot_store.h"
#include "setsys/generators.h"
#include "stream/stream_stats.h"
#include "stream/text_stream.h"
#include "util/stopwatch.h"

namespace streamkc {
namespace {

struct Args {
  std::string command;
  std::string file;
  uint64_t m = 0, n = 0, k = 0, seed = 1;
  double alpha = 8;
  size_t budget_kb = 0;
  std::string family = "planted";
  std::string out;
  uint64_t threads = 0;  // 0 = classic in-line pass, N ≥ 1 = sharded runtime
  uint64_t producers = 1;  // parallel ingest front-end width (needs --threads)
  bool producers_set = false;
  size_t batch_size = 4096;
  std::string partition = "element";  // routing key: element | set
  std::string metrics_out;            // metrics dump sink ("-" = stdout)
  std::string metrics_format = "json";  // json | prometheus
  bool lenient = false;  // skip+count malformed input lines instead of failing
  std::string fault_plan;     // fault_plan.h spec; empty = no injection
  bool fault_strict = false;  // degradation aborts instead of quarantining
  std::string hash_kernel;    // scalar | avx2; empty = env/CPUID dispatch
  // Serve-mode knobs (rejected outside the serve command).
  uint64_t snapshot_every = 65536;  // edges per snapshot segment
  uint64_t query_threads = 2;       // concurrent reader threads
  bool snapshot_every_set = false;
  bool query_threads_set = false;
  bool metrics_format_set = false;
  // Sketch-mode (multi-process) knobs; rejected outside the sketch command.
  uint64_t workers = 0;          // 0 = inline pass, W >= 1 = W processes
  uint64_t merge_arity = 4;      // reduction-tree fan-in
  uint64_t checkpoint_every = 0; // committed segments per checkpoint; 0 = off
  std::string checkpoint_dir;
  uint64_t segments = 0;         // file segments; 0 = 4 per worker
  std::string transport = "pipe";  // pipe | tcp (frame transport)
  std::string listen_addr;         // tcp: coordinator bind address
  std::string connect_addr;        // tcp: address workers dial
  int64_t poll_timeout_ms = 0;     // 0 = auto (infinite), -1 = infinite
  bool workers_set = false;
  bool merge_arity_set = false;
  bool checkpoint_every_set = false;
  bool segments_set = false;
  bool transport_set = false;
  bool poll_timeout_set = false;
};

[[noreturn]] void Usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  streamkc_cli generate --family planted|random|zipf|graph"
               " --m M --n N --k K [--seed S] --out FILE\n"
               "  streamkc_cli stats FILE [--lenient]\n"
               "  streamkc_cli estimate FILE --m M --n N --k K"
               " (--alpha A | --budget-kb B) [--seed S]\n"
               "           [--threads T] [--producers P] [--batch-size B]"
               " [--partition element|set] [--lenient]\n"
               "           [--metrics-out FILE|-]"
               " [--metrics-format json|prometheus]\n"
               "           [--fault-plan SPEC] [--fault-strict]"
               "   (fault injection; needs --threads >= 1)\n"
               "           [--hash-kernel scalar|avx2]"
               "   (pin the field-hash kernel; default: CPUID dispatch,\n"
               "            overridable via STREAMKC_HASH_KERNEL)\n"
               "  streamkc_cli report  FILE --m M --n N --k K --alpha A"
               " [--seed S] [--threads T ...]\n"
               "  streamkc_cli twopass FILE --m M --n N --k K --alpha A"
               " [--seed S]\n"
               "  streamkc_cli serve   FILE --m M --n N --k K"
               " (--alpha A | --budget-kb B) [--seed S]\n"
               "           [--snapshot-every E] [--query-threads Q]"
               " [--threads T] [--batch-size B]\n"
               "           [--partition element|set] [--lenient]"
               " [--metrics-out FILE|-]\n"
               "           [--metrics-format json|prometheus]"
               " [--fault-plan SPEC] [--fault-strict]\n"
               "  streamkc_cli sketch  FILE [--seed S] [--workers W]"
               " [--merge-arity A] [--segments G]\n"
               "           [--checkpoint-every N --checkpoint-dir DIR]"
               " [--batch-size B] [--lenient]\n"
               "           [--transport pipe|tcp] [--listen HOST:PORT]"
               " [--connect HOST:PORT]\n"
               "           [--poll-timeout-ms MS]"
               "   (MS=0 auto, -1 infinite; tcp: workers dial the\n"
               "            coordinator and ship frames over loopback"
               " sockets instead of pipes)\n"
               "           [--metrics-out FILE|-]"
               " [--metrics-format json|prometheus]\n"
               "           [--fault-plan SPEC] [--fault-strict]"
               "   (multi-process reduction tree; --workers 0 = inline)\n");
  std::exit(2);
}

uint64_t ParseU64(const char* s) {
  char* end = nullptr;
  uint64_t v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') Usage("bad integer argument");
  return v;
}

int64_t ParseI64(const char* s) {
  char* end = nullptr;
  int64_t v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0') Usage("bad integer argument");
  return v;
}

Args Parse(int argc, char** argv) {
  if (argc < 2) Usage(nullptr);
  Args a;
  a.command = argv[1];
  int i = 2;
  if (a.command != "generate" && i < argc && argv[i][0] != '-') {
    a.file = argv[i++];
  }
  for (; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage("missing flag value");
      return argv[++i];
    };
    if (flag == "--m") {
      a.m = ParseU64(next());
    } else if (flag == "--n") {
      a.n = ParseU64(next());
    } else if (flag == "--k") {
      a.k = ParseU64(next());
    } else if (flag == "--seed") {
      a.seed = ParseU64(next());
    } else if (flag == "--alpha") {
      a.alpha = static_cast<double>(ParseU64(next()));
    } else if (flag == "--budget-kb") {
      a.budget_kb = ParseU64(next());
    } else if (flag == "--family") {
      a.family = next();
    } else if (flag == "--out") {
      a.out = next();
    } else if (flag == "--threads") {
      a.threads = ParseU64(next());
    } else if (flag == "--producers") {
      a.producers = ParseU64(next());
      a.producers_set = true;
      if (a.producers == 0) Usage("--producers must be >= 1");
    } else if (flag == "--batch-size") {
      a.batch_size = ParseU64(next());
      if (a.batch_size == 0) Usage("--batch-size must be >= 1");
    } else if (flag == "--partition") {
      a.partition = next();
      if (a.partition != "element" && a.partition != "set") {
        Usage("--partition must be element or set");
      }
    } else if (flag == "--metrics-out") {
      a.metrics_out = next();
    } else if (flag == "--metrics-format") {
      a.metrics_format = next();
      a.metrics_format_set = true;
      if (a.metrics_format != "json" && a.metrics_format != "prometheus") {
        Usage("--metrics-format must be json or prometheus");
      }
    } else if (flag == "--snapshot-every") {
      a.snapshot_every = ParseU64(next());
      a.snapshot_every_set = true;
    } else if (flag == "--query-threads") {
      a.query_threads = ParseU64(next());
      a.query_threads_set = true;
    } else if (flag == "--workers") {
      a.workers = ParseU64(next());
      a.workers_set = true;
    } else if (flag == "--merge-arity") {
      a.merge_arity = ParseU64(next());
      a.merge_arity_set = true;
      if (a.merge_arity < 2) Usage("--merge-arity must be >= 2");
    } else if (flag == "--checkpoint-every") {
      a.checkpoint_every = ParseU64(next());
      a.checkpoint_every_set = true;
    } else if (flag == "--checkpoint-dir") {
      a.checkpoint_dir = next();
    } else if (flag == "--segments") {
      a.segments = ParseU64(next());
      a.segments_set = true;
      if (a.segments == 0) Usage("--segments must be >= 1");
    } else if (flag == "--transport" ||
               flag.rfind("--transport=", 0) == 0) {
      a.transport = flag == "--transport"
                        ? next()
                        : flag.substr(std::strlen("--transport="));
      a.transport_set = true;
      if (a.transport != "pipe" && a.transport != "tcp") {
        Usage("--transport must be pipe or tcp");
      }
    } else if (flag == "--listen") {
      a.listen_addr = next();
    } else if (flag == "--connect") {
      a.connect_addr = next();
    } else if (flag == "--poll-timeout-ms") {
      a.poll_timeout_ms = ParseI64(next());
      a.poll_timeout_set = true;
      if (a.poll_timeout_ms < -1 || a.poll_timeout_ms > INT32_MAX) {
        Usage("--poll-timeout-ms must be -1 (infinite), 0 (auto), or a "
              "positive millisecond count");
      }
    } else if (flag == "--lenient") {
      a.lenient = true;
    } else if (flag == "--fault-plan") {
      a.fault_plan = next();
    } else if (flag.rfind("--fault-plan=", 0) == 0) {
      a.fault_plan = flag.substr(std::strlen("--fault-plan="));
    } else if (flag == "--fault-strict") {
      a.fault_strict = true;
    } else if (flag == "--hash-kernel") {
      a.hash_kernel = next();
      HashKernel k;
      if (!ParseHashKernel(a.hash_kernel.c_str(), &k)) {
        Usage("--hash-kernel must be scalar or avx2");
      }
      if (!HashKernelAvailable(k)) {
        Usage("--hash-kernel avx2 is not available (CPU lacks AVX2 or the "
              "kernel was compiled out)");
      }
    } else {
      Usage(("unknown flag " + flag).c_str());
    }
  }
  return a;
}

// Cross-flag validation, run once after Parse: a mode must reject knobs it
// cannot honor with a specific error instead of silently ignoring them.
void ValidateFlags(const Args& a) {
  if (a.command == "serve") {
    if (a.snapshot_every == 0) Usage("--snapshot-every must be >= 1");
    if (a.query_threads == 0) Usage("--query-threads must be >= 1");
  } else {
    if (a.snapshot_every_set) {
      Usage("--snapshot-every only applies to the serve command");
    }
    if (a.query_threads_set) {
      Usage("--query-threads only applies to the serve command");
    }
  }
  if (a.command == "sketch") {
    if (a.threads != 0) Usage("sketch parallelizes with --workers, not --threads");
    if (a.producers_set) {
      Usage("sketch parallelizes with --workers, not --producers");
    }
    if (a.checkpoint_every > 0 && a.checkpoint_dir.empty()) {
      Usage("--checkpoint-every needs --checkpoint-dir");
    }
    if (!a.checkpoint_dir.empty() && a.checkpoint_every == 0) {
      Usage("--checkpoint-dir needs --checkpoint-every >= 1");
    }
    if (!a.fault_plan.empty() && a.workers == 0) {
      Usage("--fault-plan needs --workers >= 1 in sketch mode");
    }
    if (a.segments_set && a.workers > 0 && a.segments < a.workers) {
      Usage("--segments must be >= --workers");
    }
    if (a.transport_set && a.workers == 0) {
      Usage("--transport needs --workers >= 1 (the inline pass has no "
            "frames to ship)");
    }
    if ((!a.listen_addr.empty() || !a.connect_addr.empty()) &&
        a.transport != "tcp") {
      Usage("--listen/--connect need --transport tcp");
    }
    if (a.poll_timeout_set && a.workers == 0) {
      Usage("--poll-timeout-ms needs --workers >= 1");
    }
  } else {
    if (a.workers_set) Usage("--workers only applies to the sketch command");
    if (a.merge_arity_set) {
      Usage("--merge-arity only applies to the sketch command");
    }
    if (a.checkpoint_every_set || !a.checkpoint_dir.empty()) {
      Usage("--checkpoint-every/--checkpoint-dir only apply to sketch");
    }
    if (a.segments_set) Usage("--segments only applies to the sketch command");
    if (a.transport_set || !a.listen_addr.empty() || !a.connect_addr.empty() ||
        a.poll_timeout_set) {
      Usage("--transport/--listen/--connect/--poll-timeout-ms only apply to "
            "the sketch command");
    }
  }
  if (a.metrics_format_set && a.metrics_out.empty()) {
    Usage("--metrics-format needs --metrics-out");
  }
  if (a.fault_strict && a.fault_plan.empty()) {
    Usage("--fault-strict needs --fault-plan");
  }
  if (!a.fault_plan.empty() && a.threads == 0 && a.command != "sketch") {
    Usage("--fault-plan needs --threads >= 1");
  }
  if (a.producers_set) {
    if (a.command != "estimate" && a.command != "report") {
      Usage("--producers only applies to estimate and report");
    }
    if (a.producers > 1 && a.threads == 0) {
      Usage("--producers > 1 needs --threads >= 1");
    }
  }
}

TextEdgeStream::Config StreamConfig(const Args& a);
void CheckStream(const TextEdgeStream& stream);

int CmdGenerate(const Args& a) {
  if (a.out.empty() || a.m == 0 || a.n == 0) Usage("generate needs --m --n --out");
  GeneratedInstance inst;
  uint64_t k = a.k ? a.k : 16;
  if (a.family == "planted") {
    inst = PlantedCover(a.m, a.n, k, 0.5, 6, a.seed);
  } else if (a.family == "random") {
    inst = RandomUniform(a.m, a.n, 12, a.seed);
  } else if (a.family == "zipf") {
    inst = ZipfFrequency(a.m, a.n, 12, 1.1, a.seed);
  } else if (a.family == "graph") {
    inst = GraphNeighborhoods(a.n, 16.0, a.seed);
  } else {
    Usage("unknown --family");
  }
  auto edges = inst.system.MaterializeEdges();
  ApplyArrivalOrder(edges, ArrivalOrder::kRandom, a.seed);
  WriteEdgesToFile(a.out, edges);
  std::printf("wrote %zu edges (%s family, m=%llu n=%llu) to %s\n",
              edges.size(), inst.family.c_str(),
              (unsigned long long)inst.system.num_sets(),
              (unsigned long long)inst.system.num_elements(), a.out.c_str());
  if (inst.planted_coverage > 0) {
    std::printf("planted %zu-set cover with coverage %llu\n",
                inst.planted_solution.size(),
                (unsigned long long)inst.planted_coverage);
  }
  return 0;
}

int CmdStats(const Args& a) {
  if (a.file.empty()) Usage("stats needs a FILE");
  TextEdgeStream stream(a.file, StreamConfig(a));
  StreamStats stats = ComputeStreamStats(stream);
  CheckStream(stream);
  std::printf("edges              : %llu (%llu distinct)\n",
              (unsigned long long)stats.num_edges,
              (unsigned long long)stats.num_distinct_edges);
  std::printf("sets (m)           : %llu\n",
              (unsigned long long)stats.num_distinct_sets);
  std::printf("elements (n)       : %llu\n",
              (unsigned long long)stats.num_distinct_elements);
  std::printf("max set size       : %llu\n",
              (unsigned long long)stats.MaxSetSize());
  std::printf("max element freq   : %llu\n",
              (unsigned long long)stats.MaxElementFrequency());
  return 0;
}

Params MakeParams(const Args& a) {
  if (a.m == 0 || a.n == 0 || a.k == 0) Usage("need --m --n --k");
  double alpha = a.alpha;
  if (a.budget_kb != 0) {
    alpha = Params::AlphaForBudget(a.m, a.n, a.k, a.budget_kb << 10);
    std::printf("budget %zu KiB -> alpha %.1f\n", a.budget_kb, alpha);
  }
  return Params::Practical(a.m, a.n, a.k, alpha);
}

ShardedPipelineOptions PipelineOptions(const Args& a) {
  ShardedPipelineOptions po;
  po.num_shards = static_cast<uint32_t>(a.threads);
  po.batch_size = a.batch_size;
  po.policy = a.partition == "set" ? PartitionPolicy::kBySet
                                   : PartitionPolicy::kByElement;
  return po;
}

TextEdgeStream::Config StreamConfig(const Args& a) {
  TextEdgeStream::Config c;
  c.lenient = a.lenient;
  return c;
}

// Exits with the stream's file:line parse error (strict mode); reports the
// skipped-line count in lenient mode.
void CheckStream(const TextEdgeStream& stream) {
  if (!stream.ok()) {
    std::fprintf(stderr, "error: %s\n", stream.StatusMessage().c_str());
    std::exit(1);
  }
  if (stream.malformed_lines() > 0) {
    std::printf("malformed lines    : %llu skipped (--lenient)\n",
                (unsigned long long)stream.malformed_lines());
  }
}

void WriteDump(const std::string& content, const std::string& path) {
  if (path == "-") {
    std::printf("%s\n", content.c_str());
    return;
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "%s\n", content.c_str());
  std::fclose(f);
}

// Renders the selected --metrics-format and writes it to --metrics-out.
// `runtime` is nullptr for in-line (threads == 0) passes; `extra_json`,
// when non-empty, becomes the dump's `extra_name` section ("serving" for
// serve mode, "dist" for multi-process sketch runs).
void DumpMetrics(const Args& a, const RuntimeMetrics* runtime,
                 const SpaceAccountant* space,
                 const std::string& extra_name = std::string(),
                 const std::string& extra_json = std::string()) {
  if (a.metrics_out.empty()) return;
  MetricsRegistry& reg = MetricsRegistry::Global();
  std::string content =
      a.metrics_format == "prometheus"
          ? ComposeMetricsPrometheus(runtime, reg)
          : ComposeMetricsJson(runtime, space, reg,
                               extra_json.empty() ? "" : extra_name.c_str(),
                               extra_json);
  WriteDump(content, a.metrics_out);
}

// What a pass reports back to its command besides the estimator state.
struct PassStats {
  size_t peak_bytes = 0;  // peak sketch footprint (SpaceAccountant)
  // Degradation verdicts from a faulted sharded pass (0 / 0.0 when clean).
  uint32_t shards_quarantined = 0;
  double quarantined_fraction = 0.0;
};

// One pass over `a.file` with a fresh `make()` estimator: in-line when
// --threads is absent, through the sharded runtime otherwise. Peak sketch
// footprint comes from the SpaceAccountant: sampled every 64Ki edges
// in-line (rescaling subroutines can shrink, so the final footprint is not
// the peak), and the sum of simultaneous shard replica peaks when sharded.
// With --fault-plan, the stream is wrapped in a FaultInjectingStream and
// the pipeline runs under the plan's runtime faults + degradation policy.
template <typename State, typename MakeFn>
State RunPass(const Args& a, MakeFn make, PassStats* stats) {
  TextEdgeStream stream(a.file, StreamConfig(a));
  if (a.threads == 0) {
    if (!a.fault_plan.empty()) Usage("--fault-plan needs --threads >= 1");
    State st = make();
    SpaceAccountant acct(&MetricsRegistry::Global());
    Edge e;
    uint64_t count = 0;
    while (stream.Next(&e)) {
      st.Process(e);
      if ((++count & 0xFFFFu) == 0) acct.Sample(st);
    }
    CheckStream(stream);
    acct.Sample(st);
    stats->peak_bytes = acct.peak_total_bytes();
    DumpMetrics(a, nullptr, &acct);
    return st;
  }
  ShardedPipelineOptions po = PipelineOptions(a);
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<FaultInjectingStream> faulted;
  EdgeStream* src = &stream;
  if (!a.fault_plan.empty()) {
    FaultPlan plan;
    std::string err;
    if (!FaultPlan::Parse(a.fault_plan, &plan, &err)) Usage(err.c_str());
    injector =
        std::make_unique<FaultInjector>(plan, &MetricsRegistry::Global());
    po.fault_injector = injector.get();
    po.degradation.strict = a.fault_strict;
    std::printf("fault plan         : %s%s\n", plan.ToSpec().c_str(),
                a.fault_strict ? " (strict)" : "");
    // With multiple producers the fault wrapping happens per segment below;
    // here only the single whole-file stream is wrapped.
    if (plan.HasStreamFaults() && a.producers <= 1) {
      faulted = std::make_unique<FaultInjectingStream>(&stream, injector.get());
      src = faulted.get();
    }
  }
  po.num_producers = static_cast<uint32_t>(a.producers);
  ShardedPipeline<State> pipe(po, [&](uint32_t) { return make(); });
  State st = [&] {
    if (po.num_producers <= 1) return pipe.Run(*src);
    // Multi-producer front-end: split the file into newline-aligned
    // segments, one independently-owned stream per producer thread. Fault
    // wrapping is per segment, so injected stream faults stay deterministic
    // for a given (file, P, plan).
    SegmentedTextStream seg(a.file, po.num_producers, StreamConfig(a));
    const FaultInjector* inj = injector.get();
    return pipe.RunSegmented([&](uint32_t p) -> std::unique_ptr<EdgeStream> {
      std::unique_ptr<EdgeStream> s = seg.OpenSegment(p);
      if (inj != nullptr && inj->plan().HasStreamFaults()) {
        s = WrapWithFaults(std::move(s), inj);
      }
      return s;
    });
  }();
  if (po.num_producers <= 1) {
    CheckStream(stream);
  } else {
    // Per-producer stream health: a parse error in any segment fails the
    // run exactly like the single-producer CheckStream; an exhausted
    // transient budget is a degradation (reported below), not an error.
    for (const auto& ps : pipe.producer_status()) {
      if (!ps.ok && !ps.transient) {
        std::fprintf(stderr, "error: %s\n", ps.message.c_str());
        std::exit(1);
      }
      if (!ps.ok && ps.transient && injector != nullptr) {
        std::printf("fault: segment truncated: %s\n", ps.message.c_str());
      }
    }
  }
  const RuntimeMetrics& m = pipe.metrics();
  stats->peak_bytes = std::max<size_t>(
      std::max<size_t>(m.TotalStateBytes(),
                       m.merged_state_bytes.load(std::memory_order_relaxed)),
      pipe.space().peak_total_bytes());
  stats->shards_quarantined =
      static_cast<uint32_t>(m.shards_quarantined.load(
          std::memory_order_relaxed));
  stats->quarantined_fraction = m.QuarantinedFraction();
  std::printf("runtime            : %u producers -> %u shards "
              "(%s-partitioned), %.2fM edges/s, %llu queue stalls, "
              "%llu batches recycled\n",
              m.num_producers(), m.num_shards(), a.partition.c_str(),
              m.EdgesPerSecond() / 1e6,
              (unsigned long long)m.queue_full_stalls.load(
                  std::memory_order_relaxed),
              (unsigned long long)m.TotalBatchesRecycled());
  if (injector != nullptr) {
    if (faulted != nullptr && !faulted->ok()) {
      // Transient budget exhausted: the pass was truncated, which is a
      // degradation (reported), not a driver error.
      std::printf("fault: stream truncated: %s\n",
                  faulted->StatusMessage().c_str());
    }
    std::printf(
        "faults             : retries %llu, worker deaths %llu, "
        "merge corruptions %llu, edges discarded %llu\n",
        (unsigned long long)m.stream_retries.load(std::memory_order_relaxed),
        (unsigned long long)m.worker_deaths.load(std::memory_order_relaxed),
        (unsigned long long)m.merge_corruptions_detected.load(
            std::memory_order_relaxed),
        (unsigned long long)m.TotalEdgesDiscarded());
    if (faulted != nullptr) {
      std::printf(
          "stream faults      : %llu transient errors, %llu dups, "
          "%llu garbage, %llu windows reordered\n",
          (unsigned long long)faulted->transient_errors(),
          (unsigned long long)faulted->duplicates_injected(),
          (unsigned long long)faulted->garbage_injected(),
          (unsigned long long)faulted->windows_reordered());
    }
    std::printf("quarantine         : %u/%u shards (%.1f%% of fleet)\n",
                stats->shards_quarantined, m.num_shards(),
                stats->quarantined_fraction * 100.0);
  }
  DumpMetrics(a, &m, &pipe.space());
  return st;
}

int CmdEstimate(const Args& a) {
  if (a.file.empty()) Usage("estimate needs a FILE");
  EstimateMaxCover::Config c;
  c.params = MakeParams(a);
  c.seed = a.seed;
  Stopwatch sw;
  PassStats stats;
  EstimateMaxCover est = RunPass<EstimateMaxCover>(
      a, [&] { return EstimateMaxCover(c); }, &stats);
  EstimateOutcome out = est.Finalize();
  out.shards_quarantined = stats.shards_quarantined;
  out.quarantined_fraction = stats.quarantined_fraction;
  std::printf("coverage estimate  : %.0f\n", out.estimate);
  std::printf("winning subroutine : %s\n", out.source.c_str());
  if (out.shards_quarantined > 0) {
    std::printf("confidence         : degraded — %u shards quarantined "
                "(%.1f%% of substreams unseen)\n",
                out.shards_quarantined, out.quarantined_fraction * 100.0);
  }
  std::printf("sketch memory      : %zu KiB (peak %zu KiB)\n",
              est.MemoryBytes() >> 10, stats.peak_bytes >> 10);
  std::printf("pass time          : %.2fs\n", sw.ElapsedSeconds());
  return 0;
}

int CmdReport(const Args& a) {
  if (a.file.empty()) Usage("report needs a FILE");
  ReportMaxCover::Config c;
  c.params = MakeParams(a);
  c.seed = a.seed;
  Stopwatch sw;
  PassStats stats;
  ReportMaxCover rep = RunPass<ReportMaxCover>(
      a, [&] { return ReportMaxCover(c); }, &stats);
  MaxCoverSolution sol = rep.Finalize();
  std::printf("coverage estimate  : %.0f (%s)\n", sol.estimate,
              sol.source.c_str());
  if (stats.shards_quarantined > 0) {
    std::printf("confidence         : degraded — %u shards quarantined "
                "(%.1f%% of substreams unseen)\n",
                stats.shards_quarantined, stats.quarantined_fraction * 100.0);
  }
  std::printf("selected sets (%zu): ", sol.sets.size());
  for (SetId s : sol.sets) std::printf("%llu ", (unsigned long long)s);
  std::printf("\nsketch memory      : %zu KiB (peak %zu KiB), "
              "pass time %.2fs\n",
              rep.MemoryBytes() >> 10, stats.peak_bytes >> 10,
              sw.ElapsedSeconds());
  return 0;
}

int CmdTwoPass(const Args& a) {
  if (a.file.empty()) Usage("twopass needs a FILE");
  TwoPassMaxCover::Config c;
  c.params = MakeParams(a);
  c.seed = a.seed;
  TextEdgeStream stream(a.file, StreamConfig(a));
  TwoPassMaxCover tp(c);
  Stopwatch sw;
  EstimateOutcome out = RunTwoPass(stream, c, &tp);
  CheckStream(stream);
  std::printf("coverage estimate  : %.0f (%s)\n", out.estimate,
              out.source.c_str());
  std::printf("OPT bracket        : [%llu, %llu] -> %u oracles\n",
              (unsigned long long)tp.guess_lo(),
              (unsigned long long)tp.guess_hi(), tp.num_oracles());
  std::printf("peak memory        : %zu KiB, total time %.2fs\n",
              tp.peak_memory_bytes() >> 10, sw.ElapsedSeconds());
  return 0;
}

// Long-running serving mode: ingest publishes snapshots at the
// --snapshot-every cadence while --query-threads readers answer queries
// against the current snapshot the whole time. The reported query counts
// split served/rejected — readers that start before the first publish see
// explicit "no snapshot published yet" rejections, not blocking.
int CmdServe(const Args& a) {
  if (a.file.empty()) Usage("serve needs a FILE");
  ServingState::Config sc;
  sc.params = MakeParams(a);
  sc.seed = a.seed;

  SnapshotStore store("cli");
  ServingRuntimeOptions opts;
  opts.snapshot_every_edges = a.snapshot_every;
  opts.threads = static_cast<uint32_t>(a.threads);
  opts.batch_size = a.batch_size;
  opts.policy = a.partition == "set" ? PartitionPolicy::kBySet
                                     : PartitionPolicy::kByElement;

  TextEdgeStream stream(a.file, StreamConfig(a));
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<FaultInjectingStream> faulted;
  EdgeStream* src = &stream;
  if (!a.fault_plan.empty()) {
    FaultPlan plan;
    std::string err;
    if (!FaultPlan::Parse(a.fault_plan, &plan, &err)) Usage(err.c_str());
    injector =
        std::make_unique<FaultInjector>(plan, &MetricsRegistry::Global());
    opts.fault_injector = injector.get();
    opts.degradation.strict = a.fault_strict;
    std::printf("fault plan         : %s%s\n", plan.ToSpec().c_str(),
                a.fault_strict ? " (strict)" : "");
    if (plan.HasStreamFaults()) {
      faulted = std::make_unique<FaultInjectingStream>(&stream, injector.get());
      src = faulted.get();
    }
  }

  ServingRuntime runtime(sc, opts, &store);
  QueryEngine engine(&store);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> rejected{0};
  std::vector<std::thread> readers;
  readers.reserve(a.query_threads);
  for (uint64_t q = 0; q < a.query_threads; ++q) {
    readers.emplace_back([&, q] {
      uint64_t ok = 0, rej = 0;
      uint64_t i = q;  // stagger the set-coverage probes across readers
      while (!stop.load(std::memory_order_relaxed)) {
        EstimateAnswer est = engine.Estimate();
        est.ok ? ++ok : ++rej;
        SetCoverageAnswer cov =
            engine.SetCoverage(static_cast<SetId>(i++ % a.m));
        cov.ok ? ++ok : ++rej;
        if ((i & 0xF) == 0) {
          ReportAnswer rep = engine.Report();
          rep.ok ? ++ok : ++rej;
        }
      }
      served.fetch_add(ok, std::memory_order_relaxed);
      rejected.fetch_add(rej, std::memory_order_relaxed);
    });
  }

  Stopwatch sw;
  IngestSummary sum = runtime.Ingest(*src);
  double seconds = sw.ElapsedSeconds();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  CheckStream(stream);

  std::printf("serving            : %llu snapshots over %llu segments "
              "(cadence %llu edges%s)\n",
              (unsigned long long)sum.snapshots_published,
              (unsigned long long)sum.segments,
              (unsigned long long)a.snapshot_every,
              a.threads > 0 ? ", sharded ingest" : "");
  // The summary query below goes through the same engine, so tally it too:
  // the metrics dump's serving section must equal the registry counters.
  ReportAnswer final_ans = engine.Report();
  uint64_t total_served =
      served.load(std::memory_order_relaxed) + (final_ans.ok ? 1 : 0);
  uint64_t total_rejected =
      rejected.load(std::memory_order_relaxed) + (final_ans.ok ? 0 : 1);
  std::printf("queries            : %llu served, %llu rejected, "
              "%.0f q/s across %llu readers\n",
              (unsigned long long)total_served,
              (unsigned long long)total_rejected,
              seconds > 0 ? static_cast<double>(total_served) / seconds : 0.0,
              (unsigned long long)a.query_threads);
  std::printf("ingest             : %.2fM edges/s with queries attached\n",
              seconds > 0 ? static_cast<double>(sum.edges) / seconds / 1e6
                          : 0.0);
  if (final_ans.ok) {
    std::printf("coverage estimate  : %.0f (%s) @ epoch %llu, %llu edges\n",
                final_ans.estimate, final_ans.source.c_str(),
                (unsigned long long)final_ans.staleness.epoch,
                (unsigned long long)final_ans.staleness.edges_ingested);
    std::printf("selected sets (%zu): ", final_ans.sets.size());
    for (SetId s : final_ans.sets) std::printf("%llu ", (unsigned long long)s);
    std::printf("\n");
  } else {
    std::printf("coverage estimate  : unavailable (%s)\n",
                final_ans.error.c_str());
  }
  if (sum.quarantined_fraction > 0) {
    std::printf("quarantine         : %u shard runs (%.1f%% of substreams "
                "unseen)\n",
                sum.shard_runs_quarantined, sum.quarantined_fraction * 100.0);
  }

  char serving_json[512];
  std::snprintf(
      serving_json, sizeof(serving_json),
      "{\"store\": \"%s\", \"epoch\": %llu, \"snapshots_published\": %llu, "
      "\"segments\": %llu, \"edges_ingested\": %llu, "
      "\"quarantined_fraction\": %.6f, \"queries_served\": %llu, "
      "\"queries_rejected\": %llu, \"query_threads\": %llu}",
      store.name().c_str(), (unsigned long long)store.epoch(),
      (unsigned long long)sum.snapshots_published,
      (unsigned long long)sum.segments, (unsigned long long)sum.edges,
      sum.quarantined_fraction, (unsigned long long)total_served,
      (unsigned long long)total_rejected, (unsigned long long)a.query_threads);
  DumpMetrics(a, nullptr, nullptr, "serving", serving_json);
  return final_ans.ok ? 0 : 1;
}

// Multi-process coverage-sketch pass: forks --workers processes over the
// file's segment split and tree-merges their serialized states. With
// --workers 0 the same state ingests inline — the differential reference
// (identical bytes, printed as the same fingerprint + estimates).
int CmdSketch(const Args& a) {
  if (a.file.empty()) Usage("sketch needs a FILE");
  CoverageSketchState::Config config;
  config.seed = a.seed;

  if (a.workers == 0) {
    TextEdgeStream stream(a.file, StreamConfig(a));
    CoverageSketchState state(config);
    Stopwatch sw;
    Edge e;
    uint64_t edges = 0;
    while (stream.Next(&e)) {
      state.Process(e);
      ++edges;
    }
    CheckStream(stream);
    std::printf("sketch             : inline pass, %llu edges in %.2fs\n",
                (unsigned long long)edges, sw.ElapsedSeconds());
    std::printf("distinct covered   : %.0f (L0), %.0f (HLL)\n",
                state.covered_l0.Estimate(), state.covered_hll.Estimate());
    std::printf("element F2         : %.0f\n", state.element_f2.Estimate());
    std::printf("merge fingerprint  : %016llx\n",
                (unsigned long long)state.MergeFingerprint());
    std::printf("sketch memory      : %zu KiB\n", state.MemoryBytes() >> 10);
    SpaceAccountant acct(&MetricsRegistry::Global());
    acct.Sample(state);
    DumpMetrics(a, nullptr, &acct);
    return 0;
  }

  const uint32_t num_segments = static_cast<uint32_t>(
      a.segments != 0 ? a.segments : a.workers * 4);
  SegmentedTextStream seg(a.file, num_segments, StreamConfig(a));

  DistOptions opt;
  opt.num_workers = static_cast<uint32_t>(a.workers);
  opt.merge_arity = static_cast<uint32_t>(a.merge_arity);
  opt.batch_size = a.batch_size;
  opt.checkpoint_every = static_cast<uint32_t>(a.checkpoint_every);
  opt.checkpoint_dir = a.checkpoint_dir;
  opt.strict = a.fault_strict;
  CHECK(ParseTransportKind(a.transport, &opt.transport.kind));
  if (!a.listen_addr.empty()) opt.transport.listen_addr = a.listen_addr;
  opt.transport.connect_addr = a.connect_addr;
  opt.poll_timeout_ms = static_cast<int>(a.poll_timeout_ms);
  std::unique_ptr<FaultInjector> injector;
  if (!a.fault_plan.empty()) {
    FaultPlan plan;
    std::string err;
    if (!FaultPlan::Parse(a.fault_plan, &plan, &err)) Usage(err.c_str());
    injector =
        std::make_unique<FaultInjector>(plan, &MetricsRegistry::Global());
    opt.fault_injector = injector.get();
    std::printf("fault plan         : %s%s\n", plan.ToSpec().c_str(),
                a.fault_strict ? " (strict)" : "");
  }

  ProcessReductionTree<CoverageSketchState> tree(
      opt, [config](uint32_t) { return CoverageSketchState(config); });
  const FaultInjector* inj = injector.get();
  Stopwatch sw;
  CoverageSketchState state =
      tree.Run(num_segments, [&](uint32_t s) -> std::unique_ptr<EdgeStream> {
        std::unique_ptr<EdgeStream> stream = seg.OpenSegment(s);
        if (inj != nullptr && inj->plan().HasStreamFaults()) {
          stream = WrapWithFaults(std::move(stream), inj);
        }
        return stream;
      });
  const DistMetrics& dm = tree.metrics();
  std::printf("sketch             : %u workers -> %u segments "
              "(arity-%u merge tree, depth %u), %.2fM edges/s\n",
              dm.num_workers, dm.num_segments, dm.merge_arity, dm.tree.depth,
              dm.EdgesPerSecond() / 1e6);
  std::printf("dist               : %llu edges across %llu frames, "
              "%llu bytes shipped in %.2fs\n",
              (unsigned long long)dm.TotalEdgesProcessed(),
              (unsigned long long)dm.frames_received,
              (unsigned long long)dm.TotalBytesShipped(), sw.ElapsedSeconds());
  std::printf("transport          : %s (%llu connections, %llu dial "
              "retries, %llu poll wakeups)\n",
              dm.transport.c_str(),
              (unsigned long long)dm.connections_accepted,
              (unsigned long long)dm.TotalConnectRetries(),
              (unsigned long long)dm.poll_wakeups);
  if (opt.checkpoint_every > 0) {
    std::printf("checkpoints        : %llu written, %llu loaded "
                "(every %u segments in %s)\n",
                (unsigned long long)dm.TotalCheckpointsWritten(),
                (unsigned long long)dm.TotalCheckpointsLoaded(),
                opt.checkpoint_every, opt.checkpoint_dir.c_str());
  }
  if (injector != nullptr || dm.TotalRespawns() > 0 ||
      dm.WorkersQuarantined() > 0) {
    std::printf("recovery           : %u respawns, %u crc rejections, "
                "%u fingerprint corruptions, %u/%u workers quarantined\n",
                dm.TotalRespawns(), dm.TotalCrcRejections(),
                dm.FingerprintCorruptions(), dm.WorkersQuarantined(),
                dm.num_workers);
  }
  std::printf("distinct covered   : %.0f (L0), %.0f (HLL)\n",
              state.covered_l0.Estimate(), state.covered_hll.Estimate());
  std::printf("element F2         : %.0f\n", state.element_f2.Estimate());
  std::printf("merge fingerprint  : %016llx\n",
              (unsigned long long)state.MergeFingerprint());
  std::printf("sketch memory      : %zu KiB\n", state.MemoryBytes() >> 10);
  dm.PublishTo(&MetricsRegistry::Global());
  DumpMetrics(a, nullptr, nullptr, "dist", dm.ToJson());
  return 0;
}

// Resolves the hash kernel before any estimator is built (precedence:
// --hash-kernel > STREAMKC_HASH_KERNEL > CPUID auto), reports which kernel
// the run will use — runs on different machines are only comparable if the
// row matches — and publishes hash_kernel_avx2 (0/1) so metrics dumps
// carry the same fact.
void SetupHashKernel(const Args& a) {
  if (!a.hash_kernel.empty()) {
    HashKernel k;
    if (ParseHashKernel(a.hash_kernel.c_str(), &k)) ForceHashKernel(k);
  }
  const HashKernel active = ActiveHashKernel();
  std::printf("hash kernel        : %s (%s)\n", HashKernelName(active),
              HashKernelSource());
  MetricsRegistry::Global()
      .GetGauge("hash_kernel_avx2")
      ->Set(active == HashKernel::kAvx2 ? 1 : 0);
}

int Main(int argc, char** argv) {
  Args a = Parse(argc, argv);
  ValidateFlags(a);
  if (a.command == "estimate" || a.command == "report" ||
      a.command == "twopass" || a.command == "serve" ||
      a.command == "sketch") {
    SetupHashKernel(a);
  }
  if (a.command == "generate") return CmdGenerate(a);
  if (a.command == "stats") return CmdStats(a);
  if (a.command == "estimate") return CmdEstimate(a);
  if (a.command == "report") return CmdReport(a);
  if (a.command == "twopass") return CmdTwoPass(a);
  if (a.command == "serve") return CmdServe(a);
  if (a.command == "sketch") return CmdSketch(a);
  Usage(("unknown command " + a.command).c_str());
}

}  // namespace
}  // namespace streamkc

int main(int argc, char** argv) { return streamkc::Main(argc, argv); }
