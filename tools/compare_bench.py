#!/usr/bin/env python3
"""Gate benchmark runs against checked-in BENCH_*.json baselines.

Usage: compare_bench.py BASELINE.json CURRENT.json [options]

Two classes of drift, handled differently:

  * Shape drift — schema version bump, bench renamed, a config knob changed,
    a metric from the baseline missing in the current run, a determinism
    flag that is no longer 1, or a `_ok` self-gate (a pass/fail verdict the
    bench computed against its own floor, e.g. producer_scaling_ok) that is
    no longer 1. These mean the two files are not measuring the same thing
    (or a bench-owned contract broke), so the comparison is meaningless:
    always a hard failure (exit 1). Extra metrics in the current run are
    fine (new instrumentation lands before its baseline is refreshed) and
    only noted.

  * Perf drift — a throughput metric (key ending in `_eps` or `_qps`) below
    baseline * (1 - tolerance). Wall-clock noise on shared CI runners makes
    this an unreliable hard gate, so by default it WARNS and exits 0;
    pass --hard-perf (e.g. on a quiet dedicated machine) to turn warnings
    into failures. The default tolerance is 30%; throughput must fall below
    70% of the committed number before anything is even reported.

Scales must match: comparing a small-scale smoke run against a full-scale
baseline silently flatters (or slanders) the current build, so mismatched
scales are shape drift, not a perf warning.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1
PERF_SUFFIXES = ("_eps", "_qps")


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL: cannot read {path}: {e}")
        sys.exit(1)
    for field in ("schema_version", "bench", "scale", "config", "metrics"):
        if field not in doc:
            print(f"FAIL: {path}: missing required field '{field}'")
            sys.exit(1)
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--tolerance", type=float, default=0.30,
        help="fractional throughput drop tolerated before reporting "
             "(default 0.30)")
    ap.add_argument(
        "--hard-perf", action="store_true",
        help="exit nonzero on perf regressions instead of warning")
    args = ap.parse_args()

    base = load(args.baseline)
    cur = load(args.current)

    failures = []
    warnings = []

    # --- shape gate (always hard) ---
    if base["schema_version"] != SCHEMA_VERSION:
        failures.append(
            f"baseline schema_version {base['schema_version']} != "
            f"{SCHEMA_VERSION} (refresh the baseline)")
    if cur["schema_version"] != base["schema_version"]:
        failures.append(
            f"schema_version drift: baseline {base['schema_version']}, "
            f"current {cur['schema_version']}")
    if cur["bench"] != base["bench"]:
        failures.append(
            f"bench name drift: baseline '{base['bench']}', "
            f"current '{cur['bench']}'")
    if cur["scale"] != base["scale"]:
        failures.append(
            f"scale mismatch: baseline '{base['scale']}', current "
            f"'{cur['scale']}' — rerun at the baseline's scale")

    for key, want in sorted(base["config"].items()):
        have = cur["config"].get(key)
        if have is None:
            failures.append(f"config key '{key}' missing from current run")
        elif have != want:
            failures.append(
                f"config drift: {key} baseline {want}, current {have}")

    for key in sorted(base["metrics"]):
        if key not in cur["metrics"]:
            failures.append(f"metric '{key}' missing from current run")
    extra = sorted(set(cur["metrics"]) - set(base["metrics"]))
    if extra:
        print(f"note: current run has metrics not in baseline: "
              f"{', '.join(extra)}")

    if "deterministic" in base["metrics"]:
        if cur["metrics"].get("deterministic") != 1:
            failures.append(
                "determinism contract broken: current run reports "
                f"deterministic={cur['metrics'].get('deterministic')}")

    # Self-judging gates: any baseline metric ending in `_ok` is a verdict
    # the bench computed against its own (e.g. hardware-aware) floor — 1
    # means pass. Unlike raw throughput these are not noise-sensitive, so a
    # 0 is always a hard failure (the producer-scaling floor rides this).
    for key in sorted(base["metrics"]):
        if key.endswith("_ok") and key in cur["metrics"]:
            if cur["metrics"][key] != 1:
                failures.append(
                    f"self-gate '{key}' failed: current run reports "
                    f"{cur['metrics'][key]} (bench-computed floor not met)")

    # --- perf gate (warn-only unless --hard-perf) ---
    if not failures:
        for key, want in sorted(base["metrics"].items()):
            if not key.endswith(PERF_SUFFIXES):
                continue
            have = cur["metrics"][key]
            floor = want * (1.0 - args.tolerance)
            verdict = "ok"
            if have < floor:
                verdict = "REGRESSION"
                warnings.append(
                    f"{key}: {have:.3g} is below {floor:.3g} "
                    f"(baseline {want:.3g} - {args.tolerance:.0%})")
            print(f"  {key:32s} baseline {want:12.4g}  "
                  f"current {have:12.4g}  {have / want:6.2f}x  {verdict}")

    for w in warnings:
        print(f"PERF {'FAIL' if args.hard_perf else 'WARNING'}: {w}")
    for f in failures:
        print(f"FAIL: {f}")

    if failures or (warnings and args.hard_perf):
        sys.exit(1)
    print(f"compare_bench: OK ({args.baseline} vs {args.current}"
          f"{', ' + str(len(warnings)) + ' perf warning(s)' if warnings else ''})")


if __name__ == "__main__":
    main()
