// Composes a run's full observability dump from its three sources: the
// ingestion engine's RuntimeMetrics (absent for in-line single-threaded
// passes), the pass's SpaceAccountant breakdown, and the metrics registry
// (stream counters, histograms, published gauges).
//
// The JSON form is a backward-compatible SUPERSET of the original
// --metrics-out schema: every top-level RuntimeMetrics::ToJson() key is
// preserved at the top level, with "space" and "registry" objects appended.
// The Prometheus form first mirrors RuntimeMetrics into the registry
// (PublishTo) so a single ExportPrometheus snapshot carries everything.

#ifndef STREAMKC_RUNTIME_METRICS_EXPORT_H_
#define STREAMKC_RUNTIME_METRICS_EXPORT_H_

#include <string>

#include "obs/metrics.h"
#include "obs/space_accountant.h"
#include "runtime/runtime_metrics.h"

namespace streamkc {

// `runtime` and `space` may each be nullptr (section omitted). A driver
// with its own observability surface (e.g. the serving mode) can append one
// extra top-level section: `extra_section_json` must be a complete JSON
// value, emitted verbatim under the `extra_section_name` key (both empty =
// no extra section).
std::string ComposeMetricsJson(const RuntimeMetrics* runtime,
                               const SpaceAccountant* space,
                               MetricsRegistry& registry,
                               const std::string& extra_section_name =
                                   std::string(),
                               const std::string& extra_section_json =
                                   std::string());

// Publishes `runtime` into `registry` (when non-null), then renders the
// whole registry in Prometheus text format. Space gauges are expected to be
// in the registry already (SpaceAccountant publishes on Sample when built
// with a registry).
std::string ComposeMetricsPrometheus(const RuntimeMetrics* runtime,
                                     MetricsRegistry& registry);

}  // namespace streamkc

#endif  // STREAMKC_RUNTIME_METRICS_EXPORT_H_
