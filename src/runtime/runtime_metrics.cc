#include "runtime/runtime_metrics.h"

#include <cinttypes>
#include <cstdio>

#include "util/check.h"

namespace streamkc {

void RuntimeMetrics::Reset(uint32_t num_shards) {
  num_shards_ = num_shards;
  shards_ = std::make_unique<PerShard[]>(num_shards);
  edges_ingested.store(0, std::memory_order_relaxed);
  batches_enqueued.store(0, std::memory_order_relaxed);
  queue_full_stalls.store(0, std::memory_order_relaxed);
  merges.store(0, std::memory_order_relaxed);
  merged_state_bytes.store(0, std::memory_order_relaxed);
  wall_ns.store(0, std::memory_order_relaxed);
}

RuntimeMetrics::PerShard& RuntimeMetrics::shard(uint32_t s) {
  CHECK_LT(s, num_shards_);
  return shards_[s];
}

const RuntimeMetrics::PerShard& RuntimeMetrics::shard(uint32_t s) const {
  CHECK_LT(s, num_shards_);
  return shards_[s];
}

uint64_t RuntimeMetrics::TotalShardEdges() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    total += shards_[s].edges.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t RuntimeMetrics::TotalStateBytes() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    total += shards_[s].state_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

double RuntimeMetrics::EdgesPerSecond() const {
  uint64_t ns = wall_ns.load(std::memory_order_relaxed);
  if (ns == 0) return 0;
  return static_cast<double>(edges_ingested.load(std::memory_order_relaxed)) *
         1e9 / static_cast<double>(ns);
}

std::string RuntimeMetrics::ToJson() const {
  char buf[256];
  std::string out;
  out.reserve(512 + 128 * num_shards_);
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"edges_ingested\": %" PRIu64 ",\n"
      "  \"batches_enqueued\": %" PRIu64 ",\n"
      "  \"queue_full_stalls\": %" PRIu64 ",\n"
      "  \"merges\": %" PRIu64 ",\n"
      "  \"merged_state_bytes\": %" PRIu64 ",\n"
      "  \"total_shard_state_bytes\": %" PRIu64 ",\n"
      "  \"wall_ns\": %" PRIu64 ",\n"
      "  \"edges_per_second\": %.0f,\n"
      "  \"shards\": [",
      edges_ingested.load(std::memory_order_relaxed),
      batches_enqueued.load(std::memory_order_relaxed),
      queue_full_stalls.load(std::memory_order_relaxed),
      merges.load(std::memory_order_relaxed),
      merged_state_bytes.load(std::memory_order_relaxed), TotalStateBytes(),
      wall_ns.load(std::memory_order_relaxed), EdgesPerSecond());
  out += buf;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    const PerShard& ps = shards_[s];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"shard\": %u, \"edges\": %" PRIu64
                  ", \"batches\": %" PRIu64 ", \"busy_ns\": %" PRIu64
                  ", \"state_bytes\": %" PRIu64 "}",
                  s == 0 ? "" : ",", s,
                  ps.edges.load(std::memory_order_relaxed),
                  ps.batches.load(std::memory_order_relaxed),
                  ps.busy_ns.load(std::memory_order_relaxed),
                  ps.state_bytes.load(std::memory_order_relaxed));
    out += buf;
  }
  out += num_shards_ > 0 ? "\n  ]\n}" : "]\n}";
  return out;
}

}  // namespace streamkc
