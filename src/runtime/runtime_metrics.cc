#include "runtime/runtime_metrics.h"

#include <cinttypes>
#include <cstdio>

#include "util/check.h"

namespace streamkc {

void RuntimeMetrics::Reset(uint32_t num_shards, uint32_t num_producers) {
  num_shards_ = num_shards;
  num_producers_ = num_producers;
  shards_ = std::make_unique<PerShard[]>(num_shards);
  producers_ = std::make_unique<PerProducer[]>(num_producers);
  edges_ingested.store(0, std::memory_order_relaxed);
  batches_enqueued.store(0, std::memory_order_relaxed);
  queue_full_stalls.store(0, std::memory_order_relaxed);
  stream_retries.store(0, std::memory_order_relaxed);
  worker_deaths.store(0, std::memory_order_relaxed);
  merge_corruptions_detected.store(0, std::memory_order_relaxed);
  shards_quarantined.store(0, std::memory_order_relaxed);
  merges.store(0, std::memory_order_relaxed);
  merge_ns.store(0, std::memory_order_relaxed);
  merged_state_bytes.store(0, std::memory_order_relaxed);
  wall_ns.store(0, std::memory_order_relaxed);
}

RuntimeMetrics::PerShard& RuntimeMetrics::shard(uint32_t s) {
  CHECK_LT(s, num_shards_);
  return shards_[s];
}

const RuntimeMetrics::PerShard& RuntimeMetrics::shard(uint32_t s) const {
  CHECK_LT(s, num_shards_);
  return shards_[s];
}

RuntimeMetrics::PerProducer& RuntimeMetrics::producer(uint32_t p) {
  CHECK_LT(p, num_producers_);
  return producers_[p];
}

const RuntimeMetrics::PerProducer& RuntimeMetrics::producer(uint32_t p) const {
  CHECK_LT(p, num_producers_);
  return producers_[p];
}

uint64_t RuntimeMetrics::TotalShardEdges() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    total += shards_[s].edges.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t RuntimeMetrics::TotalStateBytes() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    total += shards_[s].state_bytes.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t RuntimeMetrics::TotalRingStallRounds() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    total += shards_[s].ring_stall_rounds.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t RuntimeMetrics::TotalRingStalledNs() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    total += shards_[s].ring_stalled_ns.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t RuntimeMetrics::TotalEdgesDiscarded() const {
  uint64_t total = 0;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    total += shards_[s].edges_discarded.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t RuntimeMetrics::TotalBatchesRecycled() const {
  uint64_t total = 0;
  for (uint32_t p = 0; p < num_producers_; ++p) {
    total += producers_[p].batches_recycled.load(std::memory_order_relaxed);
  }
  return total;
}

double RuntimeMetrics::QuarantinedFraction() const {
  if (num_shards_ == 0) return 0;
  return static_cast<double>(
             shards_quarantined.load(std::memory_order_relaxed)) /
         static_cast<double>(num_shards_);
}

double RuntimeMetrics::EdgesPerSecond() const {
  uint64_t ns = wall_ns.load(std::memory_order_relaxed);
  if (ns == 0) return 0;
  return static_cast<double>(edges_ingested.load(std::memory_order_relaxed)) *
         1e9 / static_cast<double>(ns);
}

std::string RuntimeMetrics::ToJson() const {
  char buf[1024];
  std::string out;
  out.reserve(1024 + 256 * num_shards_);
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"edges_ingested\": %" PRIu64 ",\n"
      "  \"batches_enqueued\": %" PRIu64 ",\n"
      "  \"queue_full_stalls\": %" PRIu64 ",\n"
      "  \"ring_stall_rounds\": %" PRIu64 ",\n"
      "  \"ring_stalled_ns\": %" PRIu64 ",\n"
      "  \"stream_retries\": %" PRIu64 ",\n"
      "  \"worker_deaths\": %" PRIu64 ",\n"
      "  \"merge_corruptions_detected\": %" PRIu64 ",\n"
      "  \"shards_quarantined\": %" PRIu64 ",\n"
      "  \"quarantined_fraction\": %.4f,\n"
      "  \"edges_discarded\": %" PRIu64 ",\n"
      "  \"merges\": %" PRIu64 ",\n"
      "  \"merge_ns\": %" PRIu64 ",\n"
      "  \"merged_state_bytes\": %" PRIu64 ",\n"
      "  \"total_shard_state_bytes\": %" PRIu64 ",\n"
      "  \"wall_ns\": %" PRIu64 ",\n"
      "  \"edges_per_second\": %.0f,\n"
      "  \"num_producers\": %u,\n"
      "  \"batches_recycled\": %" PRIu64 ",\n"
      "  \"shards\": [",
      edges_ingested.load(std::memory_order_relaxed),
      batches_enqueued.load(std::memory_order_relaxed),
      queue_full_stalls.load(std::memory_order_relaxed),
      TotalRingStallRounds(), TotalRingStalledNs(),
      stream_retries.load(std::memory_order_relaxed),
      worker_deaths.load(std::memory_order_relaxed),
      merge_corruptions_detected.load(std::memory_order_relaxed),
      shards_quarantined.load(std::memory_order_relaxed),
      QuarantinedFraction(), TotalEdgesDiscarded(),
      merges.load(std::memory_order_relaxed),
      merge_ns.load(std::memory_order_relaxed),
      merged_state_bytes.load(std::memory_order_relaxed), TotalStateBytes(),
      wall_ns.load(std::memory_order_relaxed), EdgesPerSecond(),
      num_producers_, TotalBatchesRecycled());
  out += buf;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    const PerShard& ps = shards_[s];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"shard\": %u, \"edges\": %" PRIu64
                  ", \"batches\": %" PRIu64 ", \"busy_ns\": %" PRIu64
                  ", \"state_bytes\": %" PRIu64 ", \"ring_stalls\": %" PRIu64
                  ", \"ring_stall_rounds\": %" PRIu64
                  ", \"ring_stalled_ns\": %" PRIu64
                  ", \"edges_discarded\": %" PRIu64
                  ", \"quarantined\": %" PRIu64 "}",
                  s == 0 ? "" : ",", s,
                  ps.edges.load(std::memory_order_relaxed),
                  ps.batches.load(std::memory_order_relaxed),
                  ps.busy_ns.load(std::memory_order_relaxed),
                  ps.state_bytes.load(std::memory_order_relaxed),
                  ps.ring_stalls.load(std::memory_order_relaxed),
                  ps.ring_stall_rounds.load(std::memory_order_relaxed),
                  ps.ring_stalled_ns.load(std::memory_order_relaxed),
                  ps.edges_discarded.load(std::memory_order_relaxed),
                  ps.quarantined.load(std::memory_order_relaxed));
    out += buf;
  }
  out += num_shards_ > 0 ? "\n  ]" : "]";
  out += ",\n  \"producers\": [";
  for (uint32_t p = 0; p < num_producers_; ++p) {
    const PerProducer& pp = producers_[p];
    std::snprintf(buf, sizeof(buf),
                  "%s\n    {\"producer\": %u, \"edges\": %" PRIu64
                  ", \"batches\": %" PRIu64 ", \"stream_retries\": %" PRIu64
                  ", \"batches_recycled\": %" PRIu64 "}",
                  p == 0 ? "" : ",", p,
                  pp.edges.load(std::memory_order_relaxed),
                  pp.batches.load(std::memory_order_relaxed),
                  pp.stream_retries.load(std::memory_order_relaxed),
                  pp.batches_recycled.load(std::memory_order_relaxed));
    out += buf;
  }
  out += num_producers_ > 0 ? "\n  ]\n}" : "]\n}";
  return out;
}

void RuntimeMetrics::PublishTo(MetricsRegistry* registry) const {
  auto set = [&](const char* name, uint64_t v) {
    registry->GetGauge(name)->Set(v);
  };
  set("runtime_edges_ingested", edges_ingested.load(std::memory_order_relaxed));
  set("runtime_batches_enqueued",
      batches_enqueued.load(std::memory_order_relaxed));
  set("runtime_queue_full_stalls",
      queue_full_stalls.load(std::memory_order_relaxed));
  set("runtime_ring_stall_rounds", TotalRingStallRounds());
  set("runtime_ring_stalled_ns", TotalRingStalledNs());
  // Degradation-policy mirror; "retries_total"/"shards_quarantined" are the
  // names the obs layer's consumers alert on. Mirrored as gauges like every
  // other runtime_* metric so PublishTo stays idempotent.
  set("retries_total", stream_retries.load(std::memory_order_relaxed));
  set("shards_quarantined",
      shards_quarantined.load(std::memory_order_relaxed));
  set("runtime_worker_deaths", worker_deaths.load(std::memory_order_relaxed));
  set("runtime_merge_corruptions_detected",
      merge_corruptions_detected.load(std::memory_order_relaxed));
  set("runtime_edges_discarded", TotalEdgesDiscarded());
  set("runtime_merges", merges.load(std::memory_order_relaxed));
  set("runtime_merge_ns", merge_ns.load(std::memory_order_relaxed));
  set("runtime_merged_state_bytes",
      merged_state_bytes.load(std::memory_order_relaxed));
  set("runtime_total_shard_state_bytes", TotalStateBytes());
  set("runtime_wall_ns", wall_ns.load(std::memory_order_relaxed));
  set("runtime_num_shards", num_shards_);
  set("runtime_num_producers", num_producers_);
  set("runtime_batches_recycled", TotalBatchesRecycled());
  for (uint32_t s = 0; s < num_shards_; ++s) {
    const PerShard& ps = shards_[s];
    std::string shard = std::to_string(s);
    auto set_shard = [&](const char* name, uint64_t v) {
      registry->GetGauge(LabeledName(name, "shard", shard))->Set(v);
    };
    set_shard("runtime_shard_edges",
              ps.edges.load(std::memory_order_relaxed));
    set_shard("runtime_shard_batches",
              ps.batches.load(std::memory_order_relaxed));
    set_shard("runtime_shard_busy_ns",
              ps.busy_ns.load(std::memory_order_relaxed));
    set_shard("runtime_shard_state_bytes",
              ps.state_bytes.load(std::memory_order_relaxed));
    set_shard("runtime_shard_ring_stalls",
              ps.ring_stalls.load(std::memory_order_relaxed));
    set_shard("runtime_shard_ring_stall_rounds",
              ps.ring_stall_rounds.load(std::memory_order_relaxed));
    set_shard("runtime_shard_ring_stalled_ns",
              ps.ring_stalled_ns.load(std::memory_order_relaxed));
    set_shard("runtime_shard_edges_discarded",
              ps.edges_discarded.load(std::memory_order_relaxed));
    set_shard("runtime_shard_quarantined",
              ps.quarantined.load(std::memory_order_relaxed));
  }
  for (uint32_t p = 0; p < num_producers_; ++p) {
    const PerProducer& pp = producers_[p];
    std::string producer = std::to_string(p);
    auto set_producer = [&](const char* name, uint64_t v) {
      registry->GetGauge(LabeledName(name, "producer", producer))->Set(v);
    };
    set_producer("runtime_producer_edges",
                 pp.edges.load(std::memory_order_relaxed));
    set_producer("runtime_producer_batches",
                 pp.batches.load(std::memory_order_relaxed));
    set_producer("runtime_producer_stream_retries",
                 pp.stream_retries.load(std::memory_order_relaxed));
    set_producer("runtime_producer_batches_recycled",
                 pp.batches_recycled.load(std::memory_order_relaxed));
  }
}

}  // namespace streamkc
