// Ready-made pipeline states over the raw sketches.
//
// The core estimators (EstimateMaxCover, ReportMaxCover, SketchGreedy)
// already satisfy the ShardedPipeline State concept directly. The raw
// sketches expose Add(id) rather than Process(Edge); this header wraps the
// common bundles so benches, tests and ad-hoc callers can shard them
// without writing adapters.

#ifndef STREAMKC_RUNTIME_SKETCH_STATES_H_
#define STREAMKC_RUNTIME_SKETCH_STATES_H_

#include <cstdint>
#include <istream>
#include <ostream>

#include "obs/space_accountant.h"
#include "sketch/ams_f2.h"
#include "sketch/hyperloglog.h"
#include "sketch/l0_estimator.h"
#include "stream/edge.h"
#include "util/random.h"
#include "util/serialize.h"

namespace streamkc {

// The trivial-branch statistics bundle: distinct covered elements (KMV and
// HLL realizations of Theorem 2.12) plus the F2 of element frequencies —
// the per-edge work profile of the paper's Figure-1 first line, and the
// workload bench_runtime uses for thread-scaling curves.
struct CoverageSketchState : SpaceMetered {
  struct Config {
    uint32_t l0_num_mins = 256;
    uint32_t hll_precision = 12;
    uint32_t ams_rows = 5;
    uint32_t ams_cols = 16;
    uint64_t seed = 1;
  };

  explicit CoverageSketchState(const Config& config)
      : config_(config),
        covered_l0({.num_mins = config.l0_num_mins, .seed = config.seed}),
        covered_hll({.precision = config.hll_precision, .seed = config.seed}),
        element_f2({.rows = config.ams_rows,
                    .cols = config.ams_cols,
                    .seed = config.seed}) {}

  void Process(const Edge& edge) {
    covered_l0.Add(edge.element);
    covered_hll.Add(edge.element);
    element_f2.Add(edge.element);
  }

  // Batched ingest: KMV and AMS take the pre-folded ids through their block
  // entry points; HLL hashes the RAW ids (its tabulation hash has nothing to
  // do with the Mersenne field, so a folded id would be a different input).
  // The three sketches are independent, so component-at-a-time order is
  // bit-identical to the per-edge interleaving.
  void ProcessBatch(const PrefoldedEdges& batch) {
    covered_l0.AddFoldedBatch(batch.element_folded, batch.size);
    for (size_t i = 0; i < batch.size; ++i) {
      covered_hll.Add(batch.edges[i].element);
    }
    element_f2.AddFoldedBatch(batch.element_folded, batch.size);
  }

  void Merge(const CoverageSketchState& other) {
    covered_l0.Merge(other.covered_l0);
    covered_hll.Merge(other.covered_hll);
    element_f2.Merge(other.element_f2);
  }

  // Merge-compatibility fingerprint (the sharded pipeline's corruption
  // detection hook): everything the three sketch Merges require to agree.
  uint64_t MergeFingerprint() const {
    uint64_t fp = SplitMix64(config_.seed);
    fp = SplitMix64(fp ^ config_.l0_num_mins);
    fp = SplitMix64(fp ^ config_.hll_precision);
    fp = SplitMix64(fp ^ (uint64_t{config_.ams_rows} << 32 | config_.ams_cols));
    return fp;
  }

  // Serialization: config header then the three component blobs (each
  // carries its own magic/version, so a truncation anywhere dies inside the
  // component with a precise CHECK). The canonical-state invariant the dist
  // differential battery relies on: because each component's Merge yields
  // the same bytes as inline ingest of the union stream, Save() of a merged
  // state is bit-identical to Save() of the inline state.
  static constexpr uint32_t kMagic = 0x534b4353;  // "SKCS"
  static constexpr uint32_t kVersion = 1;

  void Save(std::ostream& os) const {
    WriteHeader(os, kMagic, kVersion);
    WriteU32(os, config_.l0_num_mins);
    WriteU32(os, config_.hll_precision);
    WriteU32(os, config_.ams_rows);
    WriteU32(os, config_.ams_cols);
    WriteU64(os, config_.seed);
    covered_l0.Save(os);
    covered_hll.Save(os);
    element_f2.Save(os);
  }

  static CoverageSketchState Load(std::istream& is) {
    CheckHeader(is, kMagic, kVersion);
    Config config;
    config.l0_num_mins = ReadU32(is);
    config.hll_precision = ReadU32(is);
    config.ams_rows = ReadU32(is);
    config.ams_cols = ReadU32(is);
    config.seed = ReadU64(is);
    CoverageSketchState state(config);
    state.covered_l0 = L0Estimator::Load(is);
    state.covered_hll = HyperLogLog::Load(is);
    state.element_f2 = AmsF2Sketch::Load(is);
    return state;
  }

  size_t MemoryBytes() const override {
    return covered_l0.MemoryBytes() + covered_hll.MemoryBytes() +
           element_f2.MemoryBytes();
  }

  const char* ComponentName() const override { return "coverage_sketch"; }

  void ReportSpace(SpaceAccountant* acct) const override {
    acct->Report(ComponentName(), MemoryBytes(), 0);
    covered_l0.ReportSpace(acct);
    covered_hll.ReportSpace(acct);
    element_f2.ReportSpace(acct);
  }

  Config config_;
  L0Estimator covered_l0;
  HyperLogLog covered_hll;
  AmsF2Sketch element_f2;
};

}  // namespace streamkc

#endif  // STREAMKC_RUNTIME_SKETCH_STATES_H_
