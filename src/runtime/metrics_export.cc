#include "runtime/metrics_export.h"

#include "obs/export.h"

namespace streamkc {

std::string ComposeMetricsJson(const RuntimeMetrics* runtime,
                               const SpaceAccountant* space,
                               MetricsRegistry& registry,
                               const std::string& extra_section_name,
                               const std::string& extra_section_json) {
  std::string out;
  bool have_keys = false;
  if (runtime != nullptr) {
    out = runtime->ToJson();
    // Reopen the object: drop the closing brace (and the newline before it)
    // so the extra sections extend the original schema in place.
    while (!out.empty() && (out.back() == '}' || out.back() == '\n')) {
      out.pop_back();
    }
    have_keys = true;
  } else {
    out = "{";
  }
  if (space != nullptr) {
    out += have_keys ? ",\n  \"space\": " : "\n  \"space\": ";
    out += space->ToJson();
    have_keys = true;
  }
  if (!extra_section_name.empty()) {
    out += have_keys ? ",\n  \"" : "\n  \"";
    out += extra_section_name;
    out += "\": ";
    out += extra_section_json;
    have_keys = true;
  }
  out += have_keys ? ",\n  \"registry\": " : "\n  \"registry\": ";
  out += ExportJson(registry.Snapshot());
  out += "\n}";
  return out;
}

std::string ComposeMetricsPrometheus(const RuntimeMetrics* runtime,
                                     MetricsRegistry& registry) {
  if (runtime != nullptr) runtime->PublishTo(&registry);
  return ExportPrometheus(registry.Snapshot());
}

}  // namespace streamkc
