// Bounded single-producer / single-consumer ring with blocking backpressure.
//
// One ring connects the ingestion producer to one worker shard. The ring is
// a fixed-capacity circular buffer: when the consumer falls behind, Push()
// BLOCKS the producer (and counts the stall) instead of growing a queue —
// an unbounded queue would let a slow shard silently absorb the whole
// stream into memory, defeating the streaming model's space discipline.
//
// The implementation is mutex + two condition variables rather than a
// lock-free ring: hand-offs are whole EdgeBatches (thousands of edges), so
// synchronization cost is already amortized to <1ns/edge and the portable
// blocking semantics (plus clean TSan behavior) are worth more than the
// last nanoseconds. Close() wakes the consumer for end-of-stream; Pop()
// drains remaining items before reporting closure.

#ifndef STREAMKC_RUNTIME_SPSC_RING_H_
#define STREAMKC_RUNTIME_SPSC_RING_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/check.h"

namespace streamkc {

template <typename T>
class SpscRing {
 public:
  // `capacity` is the maximum number of in-flight items (≥ 1).
  explicit SpscRing(size_t capacity)
      : buffer_(capacity < 1 ? 1 : capacity) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Blocks while the ring is full (backpressure). CHECK-fails if called
  // after Close(): the producer owns the lifecycle and must not race it.
  void Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    CHECK(!closed_);
    if (size_ == buffer_.size()) {
      ++push_stalls_;
      not_full_.wait(lock, [&] { return size_ < buffer_.size(); });
    }
    buffer_[(head_ + size_) % buffer_.size()] = std::move(item);
    ++size_;
    lock.unlock();
    not_empty_.notify_one();
  }

  // Blocks until an item is available or the ring is closed and drained.
  // Returns false only at end of stream (closed and empty).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return false;
    *out = std::move(buffer_[head_]);
    head_ = (head_ + 1) % buffer_.size();
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Signals end of stream; already-queued items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  // Number of Push() calls that had to wait for space (producer-side
  // backpressure events).
  uint64_t push_stalls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return push_stalls_;
  }

  size_t capacity() const { return buffer_.size(); }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> buffer_;
  size_t head_ = 0;
  size_t size_ = 0;
  bool closed_ = false;
  uint64_t push_stalls_ = 0;
};

}  // namespace streamkc

#endif  // STREAMKC_RUNTIME_SPSC_RING_H_
