// Bounded single-producer / single-consumer ring with blocking backpressure.
//
// One ring connects the ingestion producer to one worker shard. The ring is
// a fixed-capacity circular buffer: when the consumer falls behind, Push()
// BLOCKS the producer (and counts the stall) instead of growing a queue —
// an unbounded queue would let a slow shard silently absorb the whole
// stream into memory, defeating the streaming model's space discipline.
//
// The implementation is mutex + two condition variables rather than a
// lock-free ring: hand-offs are whole EdgeBatches (thousands of edges), so
// synchronization cost is already amortized to <1ns/edge and the portable
// blocking semantics (plus clean TSan behavior) are worth more than the
// last nanoseconds. Close() wakes the consumer for end-of-stream; Pop()
// drains remaining items before reporting closure.

#ifndef STREAMKC_RUNTIME_SPSC_RING_H_
#define STREAMKC_RUNTIME_SPSC_RING_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/check.h"

namespace streamkc {

template <typename T>
class SpscRing {
 public:
  // `capacity` is the maximum number of in-flight items (≥ 1).
  explicit SpscRing(size_t capacity)
      : buffer_(capacity < 1 ? 1 : capacity) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Blocks while the ring is full (backpressure). CHECK-fails if called
  // after Close(): the producer owns the lifecycle and must not race it.
  //
  // Stall accounting: push_stalls_ counts Push() calls that had to wait at
  // all (one backpressure EVENT per call), push_stall_rounds_ counts every
  // trip through the wait loop — spurious and lost-race wakeups included —
  // and push_stalled_ns_ accumulates the wall time spent waiting. The
  // original implementation bumped the event counter once and used a
  // predicated wait, so multi-round stalls under-counted and duration was
  // never recorded; a saturated shard looked identical to a briefly-full
  // one.
  void Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    CHECK(!closed_);
    bool stalled = false;
    while (size_ == buffer_.size()) {
      if (!stalled) {
        stalled = true;
        ++push_stalls_;
      }
      ++push_stall_rounds_;
      auto t0 = std::chrono::steady_clock::now();
      not_full_.wait(lock);
      push_stalled_ns_ += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
    buffer_[(head_ + size_) % buffer_.size()] = std::move(item);
    ++size_;
    lock.unlock();
    not_empty_.notify_one();
  }

  // Non-blocking push: returns false (and leaves `item` untouched) when the
  // ring is full or closed instead of waiting. Used for the batch-recycling
  // return lanes, where dropping an empty buffer on a full ring is cheaper
  // than ever blocking a worker.
  bool TryPush(T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ == buffer_.size()) return false;
      buffer_[(head_ + size_) % buffer_.size()] = std::move(item);
      ++size_;
    }
    not_empty_.notify_one();
    return true;
  }

  // Non-blocking pop verdicts: an item was taken, the ring is (momentarily)
  // empty but may still receive pushes, or it is closed AND drained.
  enum class PopResult { kItem, kEmpty, kClosed };

  // Non-blocking pop. A worker fed by several lanes must never block on one
  // specific lane (two producers stalled on each other's full rings would
  // deadlock against a worker parked on an empty third ring), so the lattice
  // consumers poll with TryPop and sleep only when EVERY lane is kEmpty.
  PopResult TryPop(T* out) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (size_ == 0) return closed_ ? PopResult::kClosed : PopResult::kEmpty;
      *out = std::move(buffer_[head_]);
      head_ = (head_ + 1) % buffer_.size();
      --size_;
    }
    not_full_.notify_one();
    return PopResult::kItem;
  }

  // Blocks until an item is available or the ring is closed and drained.
  // Returns false only at end of stream (closed and empty).
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return false;
    *out = std::move(buffer_[head_]);
    head_ = (head_ + 1) % buffer_.size();
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  // Signals end of stream; already-queued items remain poppable.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  // Number of Push() calls that had to wait for space (producer-side
  // backpressure events).
  uint64_t push_stalls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return push_stalls_;
  }

  // Wait-loop iterations across all stalls (≥ push_stalls(); each spurious
  // or lost-race wakeup counts its own round).
  uint64_t push_stall_rounds() const {
    std::lock_guard<std::mutex> lock(mu_);
    return push_stall_rounds_;
  }

  // Total wall time the producer spent blocked in Push().
  uint64_t push_stalled_ns() const {
    std::lock_guard<std::mutex> lock(mu_);
    return push_stalled_ns_;
  }

  size_t capacity() const { return buffer_.size(); }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> buffer_;
  size_t head_ = 0;
  size_t size_ = 0;
  bool closed_ = false;
  uint64_t push_stalls_ = 0;
  uint64_t push_stall_rounds_ = 0;
  uint64_t push_stalled_ns_ = 0;
};

}  // namespace streamkc

#endif  // STREAMKC_RUNTIME_SPSC_RING_H_
