// The unit of hand-off between the ingestion producer and worker shards.
//
// Routing edges one at a time through a concurrent queue would spend more
// cycles on synchronization than on sketch updates (a queue operation is
// ~100ns under contention; an L0/CountSketch update is ~20-50ns). Batching
// `batch_size` edges per hand-off amortizes the queue cost down to <1ns per
// edge, which is what makes the sharded pipeline's overhead negligible
// against the estimator work.
//
// A batch can also carry the per-edge MersenneFold of both ids (Prefold):
// the fold is idempotent and every KWiseHash evaluation starts with it, so
// folding once per edge here lets every estimator component on the batched
// ingest path take the `*Folded` hash entry points.

#ifndef STREAMKC_RUNTIME_EDGE_BATCH_H_
#define STREAMKC_RUNTIME_EDGE_BATCH_H_

#include <cstdint>
#include <vector>

#include "hash/mersenne.h"
#include "stream/edge.h"
#include "util/check.h"

namespace streamkc {

struct EdgeBatch {
  std::vector<Edge> edges;
  // Parallel arrays filled by Prefold(): MersenneFold of each edge's ids.
  std::vector<uint64_t> set_folded;
  std::vector<uint64_t> element_folded;

  EdgeBatch() = default;
  explicit EdgeBatch(size_t reserve) { edges.reserve(reserve); }

  bool empty() const { return edges.empty(); }
  size_t size() const { return edges.size(); }
  void Clear() {
    edges.clear();
    set_folded.clear();
    element_folded.clear();
  }

  // Computes the folded arrays for the current edges. Runs on the consumer
  // side (the worker), not the producer, so the fold cost parallelizes with
  // the shard fan-out.
  void Prefold() {
    set_folded.resize(edges.size());
    element_folded.resize(edges.size());
    for (size_t i = 0; i < edges.size(); ++i) {
      set_folded[i] = MersenneFold(edges[i].set);
      element_folded[i] = MersenneFold(edges[i].element);
    }
  }

  // View over the prefolded batch; Prefold() must have run since the last
  // mutation of `edges`.
  PrefoldedEdges View() const {
    DCHECK(set_folded.size() == edges.size());
    DCHECK(element_folded.size() == edges.size());
    return PrefoldedEdges{edges.data(), set_folded.data(),
                          element_folded.data(), edges.size()};
  }
};

}  // namespace streamkc

#endif  // STREAMKC_RUNTIME_EDGE_BATCH_H_
