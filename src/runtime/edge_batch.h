// The unit of hand-off between the ingestion producer and worker shards.
//
// Routing edges one at a time through a concurrent queue would spend more
// cycles on synchronization than on sketch updates (a queue operation is
// ~100ns under contention; an L0/CountSketch update is ~20-50ns). Batching
// `batch_size` edges per hand-off amortizes the queue cost down to <1ns per
// edge, which is what makes the sharded pipeline's overhead negligible
// against the estimator work.

#ifndef STREAMKC_RUNTIME_EDGE_BATCH_H_
#define STREAMKC_RUNTIME_EDGE_BATCH_H_

#include <vector>

#include "stream/edge.h"

namespace streamkc {

struct EdgeBatch {
  std::vector<Edge> edges;

  EdgeBatch() = default;
  explicit EdgeBatch(size_t reserve) { edges.reserve(reserve); }

  bool empty() const { return edges.empty(); }
  size_t size() const { return edges.size(); }
  void Clear() { edges.clear(); }
};

}  // namespace streamkc

#endif  // STREAMKC_RUNTIME_EDGE_BATCH_H_
