// Ingestion-engine observability: atomic counters + JSON snapshot.
//
// Counters are written from three contexts — the producer threads
// (edges_ingested, batches_enqueued, queue_full_stalls, plus each
// producer's own PerProducer row), each worker thread (its own PerShard
// row), and the coordinator after the join (state_bytes, wall_ns, merges).
// All cross-thread counters are relaxed atomics: they are statistics, not
// synchronization; the pipeline's happens-before edges come from the rings
// and thread joins.
//
// ToJson() renders a point-in-time snapshot; it is meant to be called after
// Run() returns (calling it mid-run is safe but reads moving counters).

#ifndef STREAMKC_RUNTIME_RUNTIME_METRICS_H_
#define STREAMKC_RUNTIME_RUNTIME_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.h"

namespace streamkc {

class RuntimeMetrics {
 public:
  struct PerShard {
    std::atomic<uint64_t> edges{0};     // edges processed by this shard
    std::atomic<uint64_t> batches{0};   // batches processed
    std::atomic<uint64_t> busy_ns{0};   // time spent inside State::Process
    std::atomic<uint64_t> state_bytes{0};  // MemoryBytes() at end of stream
    // Producer-side backpressure against this shard's ring: stall events
    // (Push calls that waited), wait-loop rounds (≥ events; spurious
    // wakeups counted), and total blocked wall time.
    std::atomic<uint64_t> ring_stalls{0};
    std::atomic<uint64_t> ring_stall_rounds{0};
    std::atomic<uint64_t> ring_stalled_ns{0};
    // Degradation: edges popped but dropped by a dead worker (the ring is
    // drained to keep backpressure alive), and whether the shard was
    // quarantined out of the merge (0/1). edges + edges_discarded summed
    // over shards equals edges_ingested.
    std::atomic<uint64_t> edges_discarded{0};
    std::atomic<uint64_t> quarantined{0};
  };

  // One row per producer thread of the segmented front-end. Each row is
  // written only by its own producer before the join; a single-producer run
  // has exactly one row mirroring the producer-side aggregates.
  struct PerProducer {
    std::atomic<uint64_t> edges{0};            // edges read from its segment
    std::atomic<uint64_t> batches{0};          // batches flushed into rings
    std::atomic<uint64_t> stream_retries{0};   // transient retries it took
    std::atomic<uint64_t> batches_recycled{0};  // flushes served from the
                                                // recycle lane (no alloc)
  };

  RuntimeMetrics() = default;

  // (Re)sizes the per-shard and per-producer tables and zeroes every
  // counter. Called by the pipeline at the start of Run(); not thread-safe
  // against concurrent use.
  void Reset(uint32_t num_shards, uint32_t num_producers = 1);

  PerShard& shard(uint32_t s);
  const PerShard& shard(uint32_t s) const;
  uint32_t num_shards() const { return num_shards_; }

  PerProducer& producer(uint32_t p);
  const PerProducer& producer(uint32_t p) const;
  uint32_t num_producers() const { return num_producers_; }

  // Whole-run aggregates derived from the per-shard rows.
  uint64_t TotalShardEdges() const;
  uint64_t TotalStateBytes() const;
  uint64_t TotalRingStallRounds() const;
  uint64_t TotalRingStalledNs() const;
  uint64_t TotalEdgesDiscarded() const;
  uint64_t TotalBatchesRecycled() const;
  double EdgesPerSecond() const;  // edges_ingested / wall time; 0 if unknown
  // Quarantined shards / num_shards — the confidence discount a degraded
  // run reports alongside its estimate. 0 when the run was clean.
  double QuarantinedFraction() const;

  std::string ToJson() const;

  // Mirrors every counter into `registry` under runtime_* names (per-shard
  // rows as shard-labeled gauges), so the Prometheus exporter and any other
  // registry consumer see the ingestion engine without knowing this struct.
  void PublishTo(MetricsRegistry* registry) const;

  // Producer-side counters.
  std::atomic<uint64_t> edges_ingested{0};
  std::atomic<uint64_t> batches_enqueued{0};
  std::atomic<uint64_t> queue_full_stalls{0};
  // Degradation-policy counters: transient-read retries taken by the
  // producer (retries_total), and the coordinator's post-join verdicts.
  std::atomic<uint64_t> stream_retries{0};
  std::atomic<uint64_t> worker_deaths{0};
  std::atomic<uint64_t> merge_corruptions_detected{0};
  std::atomic<uint64_t> shards_quarantined{0};
  // Coordinator-side counters (written single-threaded after the join).
  std::atomic<uint64_t> merges{0};
  std::atomic<uint64_t> merge_ns{0};
  std::atomic<uint64_t> merged_state_bytes{0};
  std::atomic<uint64_t> wall_ns{0};

 private:
  uint32_t num_shards_ = 0;
  uint32_t num_producers_ = 0;
  std::unique_ptr<PerShard[]> shards_;
  std::unique_ptr<PerProducer[]> producers_;
};

}  // namespace streamkc

#endif  // STREAMKC_RUNTIME_RUNTIME_METRICS_H_
