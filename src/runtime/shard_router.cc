#include "runtime/shard_router.h"

#include "util/check.h"

namespace streamkc {

std::string PartitionPolicyName(PartitionPolicy policy) {
  switch (policy) {
    case PartitionPolicy::kByElement:
      return "by-element";
    case PartitionPolicy::kBySet:
      return "by-set";
  }
  return "unknown";
}

ShardRouter::ShardRouter(uint32_t num_shards, PartitionPolicy policy,
                         uint64_t salt)
    : num_shards_(num_shards), policy_(policy), salt_(salt) {
  CHECK_GE(num_shards, 1u);
}

}  // namespace streamkc
