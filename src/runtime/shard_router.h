// Edge → shard routing with a pluggable partition policy.
//
// Correctness under sharding rests on one invariant: every stream token is
// processed by EXACTLY ONE shard, so the multiset union of the shard
// substreams equals the original stream, and each shard's substream
// preserves the original relative order. For sketches whose final state is
// a function of the observed (multi)set — every Merge()-able state in
// streamkc: linear counter grids (AMS, CountSketch), KMV/HLL distinct
// unions, hash-membership stored samples — ANY such partition yields a
// merged state equivalent to the single-threaded one.
//
// The policy still matters for two softer properties:
//
//   * kByElement keeps all incidences of one element on one shard. Element-
//     keyed state (distinct counters, element samples) then sees each
//     element's full duplicate history locally, and per-shard distinct
//     workloads stay disjoint.
//   * kBySet keeps all incidences of one set together, which is the natural
//     partition for set-sampling subroutines (LargeCommon's sampled
//     collections, SketchGreedy's per-set sketches): a set's sketch is
//     built entirely on one shard instead of being assembled at merge time.
//
// Routing is a stateless SplitMix64 mix of the chosen key — deterministic
// in (policy, salt, num_shards), independent of arrival order and thread
// timing, which is what makes deterministic-mode replays possible.

#ifndef STREAMKC_RUNTIME_SHARD_ROUTER_H_
#define STREAMKC_RUNTIME_SHARD_ROUTER_H_

#include <cstdint>
#include <string>

#include "stream/edge.h"
#include "util/random.h"

namespace streamkc {

enum class PartitionPolicy {
  kByElement,  // shard = hash(element): element-keyed locality
  kBySet,      // shard = hash(set): set-keyed locality
};

std::string PartitionPolicyName(PartitionPolicy policy);

class ShardRouter {
 public:
  ShardRouter(uint32_t num_shards, PartitionPolicy policy, uint64_t salt = 0);

  uint32_t ShardOf(const Edge& edge) const {
    uint64_t key =
        policy_ == PartitionPolicy::kByElement ? edge.element : edge.set;
    // Fixed-point map of the mixed key onto [0, num_shards): unbiased for
    // num_shards ≪ 2^64 and cheaper than modulo.
    return static_cast<uint32_t>(
        (static_cast<__uint128_t>(SplitMix64(key ^ salt_)) * num_shards_) >>
        64);
  }

  uint32_t num_shards() const { return num_shards_; }
  PartitionPolicy policy() const { return policy_; }

 private:
  uint32_t num_shards_;
  PartitionPolicy policy_;
  uint64_t salt_;
};

}  // namespace streamkc

#endif  // STREAMKC_RUNTIME_SHARD_ROUTER_H_
