// ShardedPipeline: multi-threaded ingestion over any EdgeStream + any
// mergeable estimator state.
//
// Topology (one run):
//
//   producer (calling thread)
//     │  EdgeStream::NextBatch → ShardRouter → per-shard EdgeBatch
//     ├──SpscRing[0]──▶ worker 0: State replica 0   ┐
//     ├──SpscRing[1]──▶ worker 1: State replica 1   ├─ join ─▶ merge
//     └──SpscRing[N]──▶ worker N: State replica N   ┘   coordinator
//                                                        (fold in shard
//                                                         order 0←1←2…)
//
// `State` is any type with
//     void Process(const Edge&);
//     void Merge(const State&);     // same-seed replica
// — which every streamkc estimator (EstimateMaxCover, ReportMaxCover,
// SketchGreedy) and every sketch adapter satisfies. Replicas are produced
// by a factory called once per shard; handing every shard THE SAME seeds is
// what makes the shard states Merge()-compatible (seed-coordinated
// replicas, the same contract as the distributed_coverage example).
//
// Determinism: the router is a pure function of the edge, so shard
// substreams are fixed subsequences of the input independent of thread
// timing; each replica's final state is a pure function of its substream;
// and the coordinator folds in fixed shard order. The merged state is
// therefore a deterministic function of (stream, factory, options) — with
// NO dependence on scheduling — and for union/linear sketch states it is
// bit-identical to the single-threaded state on the same seeds
// (tests/runtime_pipeline_test.cc asserts this at 8 shards).
//
// Backpressure: rings are bounded; a slow shard blocks the producer
// (metrics.queue_full_stalls counts the events) instead of buffering the
// stream, preserving the streaming space discipline.
//
// Degradation policy: a production pipeline must degrade predictably, not
// assume a clean world. Three failure classes are handled (and injectable
// via src/fault for testing):
//   * transient stream errors — retried with bounded exponential backoff
//     (DegradationPolicy::max_stream_retries, retries_total metric);
//   * worker death mid-stream — the dead shard's ring keeps draining (so
//     backpressure cannot deadlock) but its edges are discarded and the
//     shard is QUARANTINED out of the merge;
//   * merge corruption — before folding, shard fingerprints
//     (State::MergeFingerprint(), when provided) are compared and the
//     minority view is quarantined rather than folded into garbage.
// Quarantine counts are reported in RuntimeMetrics (shards_quarantined,
// QuarantinedFraction()) so drivers can attach a confidence discount to the
// final estimate. strict mode turns every degradation into a hard failure.

#ifndef STREAMKC_RUNTIME_SHARDED_PIPELINE_H_
#define STREAMKC_RUNTIME_SHARDED_PIPELINE_H_

#include <chrono>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/space_accountant.h"
#include "runtime/edge_batch.h"
#include "runtime/runtime_metrics.h"
#include "runtime/shard_router.h"
#include "runtime/spsc_ring.h"
#include "stream/edge_stream.h"
#include "util/check.h"

namespace streamkc {

// How the pipeline responds to faults (injected or real).
struct DegradationPolicy {
  // Consecutive transient-read retries before the producer gives up and
  // truncates the pass (the stream's error then surfaces through ok()).
  // The budget resets after every successful read.
  uint32_t max_stream_retries = 5;
  // First retry backoff; doubles per consecutive retry.
  uint64_t initial_backoff_ns = 100'000;  // 100 µs
  // Hard-fail mode: abort the process on any degradation (exhausted
  // retries, worker death, merge corruption) instead of quarantining —
  // for runs where a partial answer is worse than no answer.
  bool strict = false;
};

struct ShardedPipelineOptions {
  uint32_t num_shards = 1;
  // Edges per hand-off batch (amortizes ring synchronization).
  size_t batch_size = 4096;
  // In-flight batches per shard ring; small on purpose — bounded queues are
  // the backpressure mechanism.
  size_t queue_capacity = 16;
  PartitionPolicy policy = PartitionPolicy::kByElement;
  // Extra salt for the routing hash (vary to re-shuffle shard assignment).
  uint64_t route_salt = 0;
  // Registry receiving the run's counters and histograms (batch busy-time,
  // batch sizes); nullptr = the process-wide registry.
  MetricsRegistry* registry = nullptr;
  // Worker-side space sampling cadence, in batches (0 disables sampling
  // between batches; end-of-stream footprints are always recorded).
  // Sampling walks the whole estimator tree, so per-batch cost is
  // O(tree size) — 16 amortizes it to noise at the default batch_size.
  uint32_t space_sample_every_batches = 16;
  // Fault-injection hooks (nullptr = no injected faults). The injector must
  // outlive Run(); it is shared by the producer, every worker, and the
  // coordinator, which is safe because its decisions are stateless.
  const FaultInjector* fault_injector = nullptr;
  DegradationPolicy degradation;
};

template <typename State>
class ShardedPipeline {
 public:
  using Factory = std::function<State(uint32_t shard)>;

  // `factory(s)` must build shard s's replica with the SAME seeds for every
  // shard, so that the replicas are Merge()-compatible.
  ShardedPipeline(ShardedPipelineOptions options, Factory factory)
      : options_(options), factory_(std::move(factory)) {
    CHECK_GE(options_.num_shards, 1u);
    CHECK_GE(options_.batch_size, 1u);
    CHECK_GE(options_.queue_capacity, 1u);
  }

  // Drains `stream` and returns the merged state. The calling thread acts
  // as the producer; num_shards worker threads are spawned and joined
  // before returning.
  State Run(EdgeStream& stream) {
    const uint32_t n = options_.num_shards;
    metrics_.Reset(n);
    MetricsRegistry* registry =
        options_.registry ? options_.registry : &MetricsRegistry::Global();
    // Histograms are thread-safe (relaxed atomic buckets); both are shared
    // by all workers.
    Histogram* batch_busy_hist = registry->GetHistogram("runtime_batch_busy_ns");
    Histogram* batch_edges_hist = registry->GetHistogram("runtime_batch_edges");
    accountant_ = SpaceAccountant(registry);
    auto run_start = std::chrono::steady_clock::now();

    // Replicas are constructed in shard order on the producer thread, then
    // each is handed to its worker (the thread start is the happens-before
    // edge; the join hands it back for merging).
    std::vector<State> states;
    states.reserve(n);
    for (uint32_t s = 0; s < n; ++s) states.push_back(factory_(s));

    std::vector<std::unique_ptr<SpscRing<EdgeBatch>>> rings;
    rings.reserve(n);
    for (uint32_t s = 0; s < n; ++s) {
      rings.push_back(
          std::make_unique<SpscRing<EdgeBatch>>(options_.queue_capacity));
    }

    // Per-shard space accountants (registry-less; folded into accountant_
    // after the join). Each is touched only by its own worker thread until
    // the join hands it back.
    std::vector<SpaceAccountant> shard_accts(n);

    const FaultInjector* injector = options_.fault_injector;
    // Worker-death flags; each worker writes only its own slot before the
    // join, the coordinator reads after it.
    std::vector<uint8_t> worker_died(n, 0);

    std::vector<std::thread> workers;
    workers.reserve(n);
    for (uint32_t s = 0; s < n; ++s) {
      workers.emplace_back([this, s, &rings, &states, &shard_accts, injector,
                            &worker_died, batch_busy_hist, batch_edges_hist] {
        RuntimeMetrics::PerShard& ps = metrics_.shard(s);
        State& state = states[s];
        SpaceAccountant& acct = shard_accts[s];
        const uint32_t sample_every = options_.space_sample_every_batches;
        uint32_t batches_since_sample = 0;
        uint64_t batches_popped = 0;
        bool dead = false;
        EdgeBatch batch;
        while (rings[s]->Pop(&batch)) {
          if (!dead && injector != nullptr &&
              injector->WorkerDiesAt(s, batches_popped)) {
            // Simulated worker death: the state stops advancing, but the
            // ring MUST keep draining — a dead shard that stopped popping
            // would wedge the producer behind a full ring forever.
            dead = true;
            worker_died[s] = 1;
            injector->Count(FaultInjector::kFaultWorkerDeath);
          }
          ++batches_popped;
          if (dead) {
            ps.edges_discarded.fetch_add(batch.edges.size(),
                                         std::memory_order_relaxed);
            continue;
          }
          auto t0 = std::chrono::steady_clock::now();
          // Batch-capable states consume the whole block through one call
          // (after a worker-side prefold of the ids), which amortizes hash
          // evaluation and skips per-edge virtual dispatch; everything else
          // gets the classic per-edge loop.
          if constexpr (requires(State& st, const PrefoldedEdges& v) {
                          st.ProcessBatch(v);
                        }) {
            batch.Prefold();
            state.ProcessBatch(batch.View());
          } else {
            for (const Edge& e : batch.edges) state.Process(e);
          }
          auto t1 = std::chrono::steady_clock::now();
          uint64_t busy = static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count());
          ps.busy_ns.fetch_add(busy, std::memory_order_relaxed);
          ps.edges.fetch_add(batch.edges.size(), std::memory_order_relaxed);
          ps.batches.fetch_add(1, std::memory_order_relaxed);
          batch_busy_hist->Observe(busy);
          batch_edges_hist->Observe(batch.edges.size());
          if (injector != nullptr) {
            uint64_t slow_ns = injector->ShardSlowdownNs(s);
            if (slow_ns > 0) {
              std::this_thread::sleep_for(std::chrono::nanoseconds(slow_ns));
            }
          }
          if constexpr (std::derived_from<State, SpaceMetered>) {
            if (sample_every > 0 && ++batches_since_sample >= sample_every) {
              batches_since_sample = 0;
              acct.Sample(state);
            }
          }
        }
        // End-of-substream footprint, so peaks are recorded even for runs
        // shorter than the sampling cadence.
        if constexpr (std::derived_from<State, SpaceMetered>) {
          acct.Sample(state);
        }
      });
    }

    // Producer: batched reads, routed into per-shard accumulators that are
    // flushed into the rings when full.
    ShardRouter router(n, options_.policy, options_.route_salt);
    std::vector<EdgeBatch> accum(n);
    for (EdgeBatch& b : accum) b.edges.reserve(options_.batch_size);
    // Per-shard flush sequence numbers: deterministic (routing is a pure
    // function of the edge), so injected push delays are replayable.
    std::vector<uint64_t> flush_seq(n, 0);
    auto flush = [&](uint32_t s) {
      metrics_.batches_enqueued.fetch_add(1, std::memory_order_relaxed);
      if (injector != nullptr) {
        uint64_t delay_ns = injector->PushDelayNs(s, flush_seq[s]);
        if (delay_ns > 0) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(delay_ns));
        }
      }
      ++flush_seq[s];
      rings[s]->Push(std::move(accum[s]));
      accum[s] = EdgeBatch(options_.batch_size);
    };
    const DegradationPolicy& deg = options_.degradation;
    // Bounded retry with exponential backoff for TRANSIENT stream errors.
    // The budget is per-consecutive-failure: any successful read resets it.
    uint32_t retries_used = 0;
    uint64_t backoff_ns = deg.initial_backoff_ns;
    std::vector<Edge> read_buf;
    for (;;) {
      size_t got = stream.NextBatch(&read_buf, options_.batch_size);
      if (got > 0) {
        retries_used = 0;
        backoff_ns = deg.initial_backoff_ns;
        metrics_.edges_ingested.fetch_add(got, std::memory_order_relaxed);
        for (const Edge& e : read_buf) {
          uint32_t s = router.ShardOf(e);
          accum[s].edges.push_back(e);
          if (accum[s].edges.size() >= options_.batch_size) flush(s);
        }
      }
      if (stream.ok()) {
        if (got == 0) break;  // end of stream
        continue;
      }
      if (stream.transient() && retries_used < deg.max_stream_retries) {
        // Retry: the next NextBatch() call clears the error and resumes.
        ++retries_used;
        metrics_.stream_retries.fetch_add(1, std::memory_order_relaxed);
        registry->GetHistogram("runtime_retry_backoff_ns")
            ->Observe(backoff_ns);
        std::this_thread::sleep_for(std::chrono::nanoseconds(backoff_ns));
        backoff_ns *= 2;
        continue;
      }
      // Unrecoverable (parse error, or transient budget exhausted): the pass
      // is truncated and the error surfaces to the driver through
      // stream.ok(). In strict mode an exhausted retry budget is fatal.
      if (deg.strict && stream.transient()) {
        std::fprintf(stderr,
                     "[streamkc] strict: stream error persisted after %u "
                     "retries: %s\n",
                     retries_used, stream.StatusMessage().c_str());
        std::exit(1);
      }
      break;
    }
    for (uint32_t s = 0; s < n; ++s) {
      if (!accum[s].empty()) flush(s);
    }
    for (uint32_t s = 0; s < n; ++s) rings[s]->Close();
    for (std::thread& w : workers) w.join();

    // The join is the happens-before edge: each ring's stall counters and
    // each shard accountant are now quiescent. Stall statistics live in the
    // rings (one Push side each), read here into the per-shard rows.
    for (uint32_t s = 0; s < n; ++s) {
      RuntimeMetrics::PerShard& ps = metrics_.shard(s);
      ps.ring_stalls.store(rings[s]->push_stalls(), std::memory_order_relaxed);
      ps.ring_stall_rounds.store(rings[s]->push_stall_rounds(),
                                 std::memory_order_relaxed);
      ps.ring_stalled_ns.store(rings[s]->push_stalled_ns(),
                               std::memory_order_relaxed);
      metrics_.queue_full_stalls.fetch_add(rings[s]->push_stalls(),
                                           std::memory_order_relaxed);
    }

    // End-of-stream space accounting: per-shard sketch footprints BEFORE the
    // fold — their sum is the pipeline's peak sketch space (SpaceAccounted
    // interface, when State implements it).
    for (uint32_t s = 0; s < n; ++s) {
      if constexpr (requires(const State& st) {
                      { st.MemoryBytes() } -> std::convertible_to<size_t>;
                    }) {
        metrics_.shard(s).state_bytes.store(states[s].MemoryBytes(),
                                            std::memory_order_relaxed);
      }
      accountant_.Absorb(shard_accts[s]);
    }

    // Quarantine verdicts, decided single-threaded after the join.
    // (1) Dead workers: their replicas stopped mid-substream and must not
    // be folded — the merged state would silently under-count.
    std::vector<uint8_t> quarantined(n, 0);
    for (uint32_t s = 0; s < n; ++s) {
      if (worker_died[s]) {
        quarantined[s] = 1;
        metrics_.worker_deaths.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // (2) Merge corruption, when State exposes a fingerprint: compare the
    // replicas' merge preconditions and quarantine the minority view.
    // Majority vote (instead of trusting shard 0) handles a corrupt root.
    if constexpr (requires(const State& st) {
                    { st.MergeFingerprint() } -> std::convertible_to<uint64_t>;
                  }) {
      std::vector<uint64_t> fps(n);
      for (uint32_t s = 0; s < n; ++s) {
        fps[s] = states[s].MergeFingerprint();
        if (injector != nullptr && injector->CorruptsMergeFingerprint(s)) {
          fps[s] ^= 0xD1E7C0DEDEADBEEFull;  // injected corruption
          injector->Count(FaultInjector::kFaultMergeCorruption);
        }
      }
      uint64_t canonical = 0;
      uint32_t best_votes = 0;
      for (uint32_t s = 0; s < n; ++s) {
        if (quarantined[s]) continue;
        uint32_t votes = 0;
        for (uint32_t t = 0; t < n; ++t) {
          if (!quarantined[t] && fps[t] == fps[s]) ++votes;
        }
        if (votes > best_votes) {
          best_votes = votes;
          canonical = fps[s];
        }
      }
      for (uint32_t s = 0; s < n; ++s) {
        if (quarantined[s] || best_votes == 0 || fps[s] == canonical) continue;
        quarantined[s] = 1;
        metrics_.merge_corruptions_detected.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
    uint32_t num_quarantined = 0;
    for (uint32_t s = 0; s < n; ++s) {
      if (!quarantined[s]) continue;
      ++num_quarantined;
      metrics_.shard(s).quarantined.store(1, std::memory_order_relaxed);
    }
    metrics_.shards_quarantined.store(num_quarantined,
                                      std::memory_order_relaxed);
    if (num_quarantined > 0 && deg.strict) {
      std::fprintf(stderr, "[streamkc] strict: %u/%u shards quarantined\n",
                   num_quarantined, n);
      std::exit(1);
    }
    if (num_quarantined == n) {
      // No healthy replica survives; a fabricated answer would be worse
      // than none, strict mode or not.
      std::fprintf(stderr, "[streamkc] all %u shards quarantined\n", n);
      std::exit(1);
    }

    // Merge coordinator: fold the healthy shards in fixed shard order (root
    // = lowest healthy shard) for determinism.
    uint32_t root = 0;
    while (quarantined[root]) ++root;
    auto merge_start = std::chrono::steady_clock::now();
    for (uint32_t s = root + 1; s < n; ++s) {
      if (quarantined[s]) continue;
      states[root].Merge(states[s]);
      metrics_.merges.fetch_add(1, std::memory_order_relaxed);
    }
    metrics_.merge_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - merge_start)
            .count(),
        std::memory_order_relaxed);
    if constexpr (requires(const State& st) {
                    { st.MemoryBytes() } -> std::convertible_to<size_t>;
                  }) {
      metrics_.merged_state_bytes.store(states[root].MemoryBytes(),
                                        std::memory_order_relaxed);
    }
    // Current footprint after the fold = the merged state alone; the peak
    // (sum of simultaneous shard peaks, absorbed above) is retained.
    if constexpr (std::derived_from<State, SpaceMetered>) {
      accountant_.Sample(states[root]);
    }
    metrics_.wall_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - run_start)
            .count(),
        std::memory_order_relaxed);
    return std::move(states[root]);
  }

  const RuntimeMetrics& metrics() const { return metrics_; }

  // Space breakdown of the last Run(): peak = sum of simultaneous per-shard
  // peaks, current = merged state. Empty unless State is SpaceMetered.
  const SpaceAccountant& space() const { return accountant_; }

 private:
  ShardedPipelineOptions options_;
  Factory factory_;
  RuntimeMetrics metrics_;
  SpaceAccountant accountant_;
};

}  // namespace streamkc

#endif  // STREAMKC_RUNTIME_SHARDED_PIPELINE_H_
