// ShardedPipeline: multi-threaded ingestion over any EdgeStream + any
// mergeable estimator state.
//
// Topology (one run, P producers × N shards):
//
//   producer 0 ──┐                 ┌─ lane(0,s) ─┐
//   producer 1 ──┼─ parse + route ─┼─ lane(1,s) ─┼─▶ worker s: replica s ─┐
//   producer P-1─┘  + prefold      └─ lane(P-1,s)┘      (round-robins its │
//                                                        P input lanes)   │
//                                                     join ─▶ merge ◀─────┘
//                                                     coordinator (fold in
//                                                     shard order 0←1←2…)
//
// Each (producer, shard) pair owns one SpscRing lane, so the whole P×N
// lattice preserves the single-producer/single-consumer invariant without
// any new locking. Run() is the single-producer entry (P = 1, the calling
// stream); RunSegmented() spawns options.num_producers producer threads,
// each draining its own substream from a SegmentOpener — the sender/receiver
// decoupling that breaks the one-thread parse/route/flush bottleneck.
//
// `State` is any type with
//     void Process(const Edge&);
//     void Merge(const State&);     // same-seed replica
// — which every streamkc estimator (EstimateMaxCover, ReportMaxCover,
// SketchGreedy) and every sketch adapter satisfies. Replicas are produced
// by a factory called once per shard; handing every shard THE SAME seeds is
// what makes the shard states Merge()-compatible (seed-coordinated
// replicas, the same contract as the distributed_coverage example).
//
// Determinism: the router is a pure function of the edge, so the MULTISET
// each shard observes is fixed by (stream, segmentation, options),
// independent of thread timing. With one producer each shard's substream is
// additionally a fixed subsequence of the input; with P producers the
// per-shard interleaving of the P lanes is scheduling-dependent, so the
// P-producer guarantee is the shard_router.h contract: every merged state
// is a function of the observed multiset, hence bit-identical (for
// union/linear sketch states) to the single-threaded pass on the same seeds
// (tests/parallel_pipeline_test.cc asserts this across the P×N grid).
//
// Backpressure: rings are bounded; a slow shard blocks its producers
// (metrics.queue_full_stalls counts the events) instead of buffering the
// stream, preserving the streaming space discipline. Consumers never block
// on one specific lane — a worker parked on an empty lane while two
// producers stall on each other's full lanes would deadlock the lattice —
// they poll all P lanes (SpscRing::TryPop) and only sleep when every lane
// is momentarily empty.
//
// Allocation discipline: every data lane has a recycle lane running the
// other way. Workers hand drained batches back (Clear() keeps the vector
// capacities) and producers prefer a recycled buffer over a fresh
// EdgeBatch, so the steady-state flush path performs zero allocations
// (metrics.batches_recycled tracks the recycle hit rate).
//
// Degradation policy: a production pipeline must degrade predictably, not
// assume a clean world. Three failure classes are handled (and injectable
// via src/fault for testing):
//   * transient stream errors — retried per producer with bounded,
//     SATURATING exponential backoff (DegradationPolicy::max_stream_retries
//     / max_backoff_ns, retries_total metric);
//   * worker death mid-stream — the dead shard's lanes keep draining (so
//     backpressure cannot deadlock) but its edges are discarded and the
//     shard is QUARANTINED out of the merge;
//   * merge corruption — before folding, shard fingerprints
//     (State::MergeFingerprint(), when provided) are compared and the
//     minority view is quarantined rather than folded into garbage.
// Quarantine counts are reported in RuntimeMetrics (shards_quarantined,
// QuarantinedFraction()) so drivers can attach a confidence discount to the
// final estimate. strict mode turns every degradation into a hard failure —
// and every strict exit happens AFTER the rings are closed and all worker
// threads joined, so process teardown never races live workers.

#ifndef STREAMKC_RUNTIME_SHARDED_PIPELINE_H_
#define STREAMKC_RUNTIME_SHARDED_PIPELINE_H_

#include <algorithm>
#include <chrono>
#include <concepts>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/fault_injector.h"
#include "obs/metrics.h"
#include "obs/space_accountant.h"
#include "runtime/edge_batch.h"
#include "runtime/runtime_metrics.h"
#include "runtime/shard_router.h"
#include "runtime/spsc_ring.h"
#include "stream/edge_stream.h"
#include "util/check.h"

namespace streamkc {

// How the pipeline responds to faults (injected or real).
struct DegradationPolicy {
  // Consecutive transient-read retries before a producer gives up and
  // truncates its pass (the stream's error then surfaces through ok()).
  // The budget resets after every successful read.
  uint32_t max_stream_retries = 5;
  // First retry backoff; doubles per consecutive retry.
  uint64_t initial_backoff_ns = 100'000;  // 100 µs
  // Backoff ceiling: the doubling SATURATES here instead of growing
  // unboundedly (an uncapped uint64 doubling wraps after ~47 consecutive
  // failures and turns the next sleep into a near-eternal one).
  uint64_t max_backoff_ns = 100'000'000;  // 100 ms
  // Hard-fail mode: abort the process on any degradation (exhausted
  // retries, worker death, merge corruption) instead of quarantining —
  // for runs where a partial answer is worse than no answer. Strict exits
  // always run after rings are closed and workers joined.
  bool strict = false;
};

struct ShardedPipelineOptions {
  uint32_t num_shards = 1;
  // Producer threads for RunSegmented(); Run() always uses exactly one.
  // Each producer parses, routes and flushes its own substream through its
  // own row of the P×N ring lattice.
  uint32_t num_producers = 1;
  // Edges per hand-off batch (amortizes ring synchronization).
  size_t batch_size = 4096;
  // In-flight batches per (producer, shard) lane; small on purpose —
  // bounded queues are the backpressure mechanism.
  size_t queue_capacity = 16;
  PartitionPolicy policy = PartitionPolicy::kByElement;
  // Extra salt for the routing hash (vary to re-shuffle shard assignment).
  uint64_t route_salt = 0;
  // Registry receiving the run's counters and histograms (batch busy-time,
  // batch sizes); nullptr = the process-wide registry.
  MetricsRegistry* registry = nullptr;
  // Worker-side space sampling cadence, in batches (0 disables sampling
  // between batches; end-of-stream footprints are always recorded).
  // Sampling walks the whole estimator tree, so per-batch cost is
  // O(tree size) — 16 amortizes it to noise at the default batch_size.
  uint32_t space_sample_every_batches = 16;
  // Fault-injection hooks (nullptr = no injected faults). The injector must
  // outlive Run(); it is shared by every producer, every worker, and the
  // coordinator, which is safe because its decisions are stateless.
  const FaultInjector* fault_injector = nullptr;
  DegradationPolicy degradation;
};

template <typename State>
class ShardedPipeline {
 public:
  using Factory = std::function<State(uint32_t shard)>;
  // Opens producer p's substream (p < num_producers); called on the
  // producer's own thread. The union of the substreams' multisets must be
  // the full stream's multiset (SegmentedTextStream and
  // MakeEdgeSpanSegment guarantee this by construction).
  using SegmentOpener =
      std::function<std::unique_ptr<EdgeStream>(uint32_t producer)>;

  // End-of-run health of one producer's stream, readable after Run()/
  // RunSegmented() returns. `ok` mirrors the stream's ok(); a non-ok
  // transient status means that producer exhausted its retry budget and
  // truncated its pass.
  struct ProducerStatus {
    bool ok = true;
    bool transient = false;
    uint32_t retries_used = 0;
    std::string message;
  };

  // `factory(s)` must build shard s's replica with the SAME seeds for every
  // shard, so that the replicas are Merge()-compatible.
  ShardedPipeline(ShardedPipelineOptions options, Factory factory)
      : options_(options), factory_(std::move(factory)) {
    CHECK_GE(options_.num_shards, 1u);
    CHECK_GE(options_.num_producers, 1u);
    CHECK_GE(options_.batch_size, 1u);
    CHECK_GE(options_.queue_capacity, 1u);
  }

  // Drains `stream` with a single producer thread and returns the merged
  // state; num_shards worker threads are spawned and joined before
  // returning. Equivalent to RunSegmented with one segment.
  State Run(EdgeStream& stream) {
    return RunLattice(1, [&stream](uint32_t) -> EdgeStream* {
      return &stream;
    });
  }

  // Multi-producer entry: num_producers producer threads each drain their
  // own `open(p)` substream through the P×N lattice. Per-producer stream
  // health is available from producer_status() afterwards.
  State RunSegmented(const SegmentOpener& open) {
    const uint32_t P = options_.num_producers;
    std::vector<std::unique_ptr<EdgeStream>> owned(P);
    return RunLattice(P, [&](uint32_t p) -> EdgeStream* {
      owned[p] = open(p);
      CHECK(owned[p] != nullptr);
      return owned[p].get();
    });
  }

  const RuntimeMetrics& metrics() const { return metrics_; }

  // One entry per producer of the last run.
  const std::vector<ProducerStatus>& producer_status() const {
    return producer_status_;
  }

  // Space breakdown of the last Run(): peak = sum of simultaneous per-shard
  // peaks, current = merged state. Empty unless State is SpaceMetered.
  const SpaceAccountant& space() const { return accountant_; }

 private:
  using Ring = SpscRing<EdgeBatch>;

  // The P×N lattice plus the reverse recycle lanes. ring(p, s) is pushed
  // only by producer p and popped only by worker s; recycle(p, s) runs the
  // other way (pushed by worker s, popped by producer p) — both stay SPSC.
  struct Lattice {
    uint32_t num_producers = 0;
    uint32_t num_shards = 0;
    std::vector<std::unique_ptr<Ring>> data;
    std::vector<std::unique_ptr<Ring>> recycle;

    Lattice(uint32_t P, uint32_t N, size_t capacity)
        : num_producers(P), num_shards(N) {
      data.reserve(static_cast<size_t>(P) * N);
      recycle.reserve(static_cast<size_t>(P) * N);
      for (size_t i = 0; i < static_cast<size_t>(P) * N; ++i) {
        data.push_back(std::make_unique<Ring>(capacity));
        // The recycle lane must hold a lane's whole circulating set — data
        // ring (≤ capacity) + producer accumulator + worker hand — or
        // returns get dropped under bursts and the producer keeps
        // allocating fresh batches to replace them.
        recycle.push_back(std::make_unique<Ring>(capacity + 2));
      }
    }
    Ring& ring(uint32_t p, uint32_t s) {
      return *data[static_cast<size_t>(p) * num_shards + s];
    }
    Ring& recycle_ring(uint32_t p, uint32_t s) {
      return *recycle[static_cast<size_t>(p) * num_shards + s];
    }
  };

  // Producer p's parse/route/flush loop over its own substream. Writes only
  // its own PerProducer row, its own lattice row, and the shared relaxed
  // aggregates; returns its end-of-stream status.
  ProducerStatus ProducerLoop(uint32_t p, EdgeStream& stream, Lattice& lat,
                              const ShardRouter& router,
                              Histogram* retry_backoff_hist) {
    const uint32_t n = options_.num_shards;
    const FaultInjector* injector = options_.fault_injector;
    RuntimeMetrics::PerProducer& pm = metrics_.producer(p);
    std::vector<EdgeBatch> accum(n);
    for (EdgeBatch& b : accum) b.edges.reserve(options_.batch_size);
    // Per-(producer, shard) flush sequence numbers: deterministic (routing
    // is a pure function of the edge and segmentation is fixed), so
    // injected push delays are replayable.
    std::vector<uint64_t> flush_seq(n, 0);
    auto flush = [&](uint32_t s) {
      metrics_.batches_enqueued.fetch_add(1, std::memory_order_relaxed);
      pm.batches.fetch_add(1, std::memory_order_relaxed);
      if (injector != nullptr) {
        uint64_t delay_ns = injector->PushDelayNs(s, flush_seq[s]);
        if (delay_ns > 0) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(delay_ns));
        }
      }
      ++flush_seq[s];
      // Prefer a buffer the worker handed back over a fresh allocation: in
      // steady state the same EdgeBatch objects cycle producer → worker →
      // producer and the flush path allocates nothing.
      EdgeBatch next;
      if (lat.recycle_ring(p, s).TryPop(&next) == Ring::PopResult::kItem) {
        pm.batches_recycled.fetch_add(1, std::memory_order_relaxed);
      } else {
        next = EdgeBatch(options_.batch_size);
      }
      lat.ring(p, s).Push(std::move(accum[s]));
      accum[s] = std::move(next);
    };
    const DegradationPolicy& deg = options_.degradation;
    // Bounded retry with saturating exponential backoff for TRANSIENT
    // stream errors. The budget is per-consecutive-failure: any successful
    // read resets it.
    uint32_t retries_used = 0;
    uint64_t backoff_ns =
        std::min(deg.initial_backoff_ns, deg.max_backoff_ns);
    std::vector<Edge> read_buf;
    ProducerStatus status;
    for (;;) {
      size_t got = stream.NextBatch(&read_buf, options_.batch_size);
      if (got > 0) {
        retries_used = 0;
        backoff_ns = std::min(deg.initial_backoff_ns, deg.max_backoff_ns);
        metrics_.edges_ingested.fetch_add(got, std::memory_order_relaxed);
        pm.edges.fetch_add(got, std::memory_order_relaxed);
        for (const Edge& e : read_buf) {
          uint32_t s = router.ShardOf(e);
          accum[s].edges.push_back(e);
          if (accum[s].edges.size() >= options_.batch_size) flush(s);
        }
      }
      if (stream.ok()) {
        if (got == 0) break;  // end of stream
        continue;
      }
      if (stream.transient() && retries_used < deg.max_stream_retries) {
        // Retry: the next NextBatch() call clears the error and resumes.
        ++retries_used;
        metrics_.stream_retries.fetch_add(1, std::memory_order_relaxed);
        pm.stream_retries.fetch_add(1, std::memory_order_relaxed);
        retry_backoff_hist->Observe(backoff_ns);
        std::this_thread::sleep_for(std::chrono::nanoseconds(backoff_ns));
        // Saturating doubling: cap at max_backoff_ns without ever
        // overflowing the multiplication itself.
        backoff_ns = backoff_ns >= deg.max_backoff_ns / 2
                         ? deg.max_backoff_ns
                         : backoff_ns * 2;
        continue;
      }
      // Unrecoverable (parse error, or transient budget exhausted): this
      // producer's pass is truncated and the error surfaces to the driver
      // through the stream / producer_status(). Strict handling happens on
      // the coordinator AFTER rings close and workers join.
      break;
    }
    for (uint32_t s = 0; s < n; ++s) {
      if (!accum[s].empty()) flush(s);
    }
    for (uint32_t s = 0; s < n; ++s) lat.ring(p, s).Close();
    status.ok = stream.ok();
    status.transient = stream.transient();
    status.retries_used = retries_used;
    status.message = stream.StatusMessage();
    return status;
  }

  // Shared engine behind Run()/RunSegmented(): `acquire(p)` hands producer
  // p its stream (borrowed; the caller keeps it alive past the joins).
  State RunLattice(uint32_t P,
                   const std::function<EdgeStream*(uint32_t)>& acquire) {
    const uint32_t n = options_.num_shards;
    metrics_.Reset(n, P);
    producer_status_.assign(P, ProducerStatus{});
    MetricsRegistry* registry =
        options_.registry ? options_.registry : &MetricsRegistry::Global();
    // Histograms are thread-safe (relaxed atomic buckets); all are shared
    // by every worker/producer.
    Histogram* batch_busy_hist = registry->GetHistogram("runtime_batch_busy_ns");
    Histogram* batch_edges_hist = registry->GetHistogram("runtime_batch_edges");
    Histogram* retry_backoff_hist =
        registry->GetHistogram("runtime_retry_backoff_ns");
    accountant_ = SpaceAccountant(registry);
    auto run_start = std::chrono::steady_clock::now();

    // Replicas are constructed in shard order on the coordinator thread,
    // then each is handed to its worker (the thread start is the
    // happens-before edge; the join hands it back for merging).
    std::vector<State> states;
    states.reserve(n);
    for (uint32_t s = 0; s < n; ++s) states.push_back(factory_(s));

    Lattice lat(P, n, options_.queue_capacity);

    // Per-shard space accountants (registry-less; folded into accountant_
    // after the join). Each is touched only by its own worker thread until
    // the join hands it back.
    std::vector<SpaceAccountant> shard_accts(n);

    const FaultInjector* injector = options_.fault_injector;
    // Worker-death flags; each worker writes only its own slot before the
    // join, the coordinator reads after it.
    std::vector<uint8_t> worker_died(n, 0);

    std::vector<std::thread> workers;
    workers.reserve(n);
    for (uint32_t s = 0; s < n; ++s) {
      workers.emplace_back([this, s, P, &lat, &states, &shard_accts, injector,
                            &worker_died, batch_busy_hist, batch_edges_hist] {
        RuntimeMetrics::PerShard& ps = metrics_.shard(s);
        State& state = states[s];
        SpaceAccountant& acct = shard_accts[s];
        const uint32_t sample_every = options_.space_sample_every_batches;
        uint32_t batches_since_sample = 0;
        uint64_t batches_popped = 0;
        uint64_t idle_rounds = 0;
        bool dead = false;
        EdgeBatch batch;
        uint32_t lane = s % P;  // stagger starting lanes across workers
        for (;;) {
          // Round-robin the P input lanes without ever blocking on one:
          // take the first lane with a batch, remember the next lane for
          // fairness, and only sleep when every lane is momentarily empty.
          bool popped = false;
          bool all_closed = true;
          uint32_t from = 0;
          for (uint32_t i = 0; i < P; ++i) {
            uint32_t p = (lane + i) % P;
            Ring::PopResult r = lat.ring(p, s).TryPop(&batch);
            if (r == Ring::PopResult::kItem) {
              popped = true;
              from = p;
              lane = (p + 1) % P;
              break;
            }
            if (r != Ring::PopResult::kClosed) all_closed = false;
          }
          if (!popped) {
            if (all_closed) break;  // every lane closed and drained
            ++idle_rounds;
            if (idle_rounds < 64) {
              std::this_thread::yield();
            } else {
              std::this_thread::sleep_for(std::chrono::microseconds(50));
            }
            continue;
          }
          idle_rounds = 0;
          if (!dead && injector != nullptr &&
              injector->WorkerDiesAt(s, batches_popped)) {
            // Simulated worker death: the state stops advancing, but the
            // lanes MUST keep draining — a dead shard that stopped popping
            // would wedge its producers behind full rings forever.
            dead = true;
            worker_died[s] = 1;
            injector->Count(FaultInjector::kFaultWorkerDeath);
          }
          ++batches_popped;
          if (dead) {
            ps.edges_discarded.fetch_add(batch.edges.size(),
                                         std::memory_order_relaxed);
            batch.Clear();
            lat.recycle_ring(from, s).TryPush(batch);
            continue;
          }
          auto t0 = std::chrono::steady_clock::now();
          // Batch-capable states consume the whole block through one call
          // (after a worker-side prefold of the ids), which amortizes hash
          // evaluation and skips per-edge virtual dispatch; everything else
          // gets the classic per-edge loop.
          if constexpr (requires(State& st, const PrefoldedEdges& v) {
                          st.ProcessBatch(v);
                        }) {
            batch.Prefold();
            state.ProcessBatch(batch.View());
          } else {
            for (const Edge& e : batch.edges) state.Process(e);
          }
          auto t1 = std::chrono::steady_clock::now();
          uint64_t busy = static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count());
          ps.busy_ns.fetch_add(busy, std::memory_order_relaxed);
          ps.edges.fetch_add(batch.edges.size(), std::memory_order_relaxed);
          ps.batches.fetch_add(1, std::memory_order_relaxed);
          batch_busy_hist->Observe(busy);
          batch_edges_hist->Observe(batch.edges.size());
          // Hand the drained buffer back to its producer (capacity intact);
          // if the recycle lane is full the buffer is simply dropped.
          batch.Clear();
          lat.recycle_ring(from, s).TryPush(batch);
          if (injector != nullptr) {
            uint64_t slow_ns = injector->ShardSlowdownNs(s);
            if (slow_ns > 0) {
              std::this_thread::sleep_for(std::chrono::nanoseconds(slow_ns));
            }
          }
          if constexpr (std::derived_from<State, SpaceMetered>) {
            if (sample_every > 0 && ++batches_since_sample >= sample_every) {
              batches_since_sample = 0;
              acct.Sample(state);
            }
          }
        }
        // End-of-substream footprint, so peaks are recorded even for runs
        // shorter than the sampling cadence.
        if constexpr (std::derived_from<State, SpaceMetered>) {
          acct.Sample(state);
        }
      });
    }

    // Producers: one thread per segment, each with its own accumulators,
    // retry budget and row of lanes. The router is shared and const.
    ShardRouter router(n, options_.policy, options_.route_salt);
    std::vector<std::thread> producers;
    producers.reserve(P);
    for (uint32_t p = 0; p < P; ++p) {
      producers.emplace_back([this, p, &acquire, &lat, &router,
                              retry_backoff_hist] {
        EdgeStream* stream = acquire(p);
        producer_status_[p] =
            ProducerLoop(p, *stream, lat, router, retry_backoff_hist);
      });
    }
    for (std::thread& pt : producers) pt.join();
    // Every producer has closed its row; workers drain and exit.
    for (std::thread& w : workers) w.join();

    // The joins are the happens-before edges: ring stall counters, shard
    // accountants and producer statuses are now quiescent. Stall statistics
    // live in the lanes (one Push side each); each shard's row aggregates
    // its P lanes.
    for (uint32_t s = 0; s < n; ++s) {
      RuntimeMetrics::PerShard& ps = metrics_.shard(s);
      uint64_t stalls = 0, rounds = 0, stalled_ns = 0;
      for (uint32_t p = 0; p < P; ++p) {
        stalls += lat.ring(p, s).push_stalls();
        rounds += lat.ring(p, s).push_stall_rounds();
        stalled_ns += lat.ring(p, s).push_stalled_ns();
      }
      ps.ring_stalls.store(stalls, std::memory_order_relaxed);
      ps.ring_stall_rounds.store(rounds, std::memory_order_relaxed);
      ps.ring_stalled_ns.store(stalled_ns, std::memory_order_relaxed);
      metrics_.queue_full_stalls.fetch_add(stalls, std::memory_order_relaxed);
    }

    const DegradationPolicy& deg = options_.degradation;
    // Strict-mode stream failure: decided HERE, after the close+join
    // sequence above, so registry/atexit teardown can never race live
    // worker threads (the old mid-stream exit left all workers running).
    if (deg.strict) {
      for (uint32_t p = 0; p < P; ++p) {
        const ProducerStatus& st = producer_status_[p];
        if (!st.ok && st.transient) {
          std::fprintf(stderr,
                       "[streamkc] strict: stream error persisted after %u "
                       "retries: %s\n",
                       st.retries_used, st.message.c_str());
          std::exit(1);
        }
      }
    }

    // End-of-stream space accounting: per-shard sketch footprints BEFORE the
    // fold — their sum is the pipeline's peak sketch space (SpaceAccounted
    // interface, when State implements it).
    for (uint32_t s = 0; s < n; ++s) {
      if constexpr (requires(const State& st) {
                      { st.MemoryBytes() } -> std::convertible_to<size_t>;
                    }) {
        metrics_.shard(s).state_bytes.store(states[s].MemoryBytes(),
                                            std::memory_order_relaxed);
      }
      accountant_.Absorb(shard_accts[s]);
    }

    // Quarantine verdicts, decided single-threaded after the join.
    // (1) Dead workers: their replicas stopped mid-substream and must not
    // be folded — the merged state would silently under-count.
    std::vector<uint8_t> quarantined(n, 0);
    for (uint32_t s = 0; s < n; ++s) {
      if (worker_died[s]) {
        quarantined[s] = 1;
        metrics_.worker_deaths.fetch_add(1, std::memory_order_relaxed);
      }
    }
    // (2) Merge corruption, when State exposes a fingerprint: compare the
    // replicas' merge preconditions and quarantine the minority view.
    // Majority vote (instead of trusting shard 0) handles a corrupt root.
    if constexpr (requires(const State& st) {
                    { st.MergeFingerprint() } -> std::convertible_to<uint64_t>;
                  }) {
      std::vector<uint64_t> fps(n);
      for (uint32_t s = 0; s < n; ++s) {
        fps[s] = states[s].MergeFingerprint();
        if (injector != nullptr && injector->CorruptsMergeFingerprint(s)) {
          fps[s] ^= 0xD1E7C0DEDEADBEEFull;  // injected corruption
          injector->Count(FaultInjector::kFaultMergeCorruption);
        }
      }
      uint64_t canonical = 0;
      uint32_t best_votes = 0;
      for (uint32_t s = 0; s < n; ++s) {
        if (quarantined[s]) continue;
        uint32_t votes = 0;
        for (uint32_t t = 0; t < n; ++t) {
          if (!quarantined[t] && fps[t] == fps[s]) ++votes;
        }
        if (votes > best_votes) {
          best_votes = votes;
          canonical = fps[s];
        }
      }
      for (uint32_t s = 0; s < n; ++s) {
        if (quarantined[s] || best_votes == 0 || fps[s] == canonical) continue;
        quarantined[s] = 1;
        metrics_.merge_corruptions_detected.fetch_add(
            1, std::memory_order_relaxed);
      }
    }
    uint32_t num_quarantined = 0;
    for (uint32_t s = 0; s < n; ++s) {
      if (!quarantined[s]) continue;
      ++num_quarantined;
      metrics_.shard(s).quarantined.store(1, std::memory_order_relaxed);
    }
    metrics_.shards_quarantined.store(num_quarantined,
                                      std::memory_order_relaxed);
    if (num_quarantined > 0 && deg.strict) {
      std::fprintf(stderr, "[streamkc] strict: %u/%u shards quarantined\n",
                   num_quarantined, n);
      std::exit(1);
    }
    if (num_quarantined == n) {
      // No healthy replica survives; a fabricated answer would be worse
      // than none, strict mode or not.
      std::fprintf(stderr, "[streamkc] all %u shards quarantined\n", n);
      std::exit(1);
    }

    // Merge coordinator: fold the healthy shards in fixed shard order (root
    // = lowest healthy shard) for determinism.
    uint32_t root = 0;
    while (quarantined[root]) ++root;
    auto merge_start = std::chrono::steady_clock::now();
    for (uint32_t s = root + 1; s < n; ++s) {
      if (quarantined[s]) continue;
      states[root].Merge(states[s]);
      metrics_.merges.fetch_add(1, std::memory_order_relaxed);
    }
    metrics_.merge_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - merge_start)
            .count(),
        std::memory_order_relaxed);
    if constexpr (requires(const State& st) {
                    { st.MemoryBytes() } -> std::convertible_to<size_t>;
                  }) {
      metrics_.merged_state_bytes.store(states[root].MemoryBytes(),
                                        std::memory_order_relaxed);
    }
    // Current footprint after the fold = the merged state alone; the peak
    // (sum of simultaneous shard peaks, absorbed above) is retained.
    if constexpr (std::derived_from<State, SpaceMetered>) {
      accountant_.Sample(states[root]);
    }
    metrics_.wall_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - run_start)
            .count(),
        std::memory_order_relaxed);
    return std::move(states[root]);
  }

  ShardedPipelineOptions options_;
  Factory factory_;
  RuntimeMetrics metrics_;
  SpaceAccountant accountant_;
  std::vector<ProducerStatus> producer_status_;
};

}  // namespace streamkc

#endif  // STREAMKC_RUNTIME_SHARDED_PIPELINE_H_
