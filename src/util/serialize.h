// Minimal binary serialization helpers for sketch checkpointing.
//
// Format discipline: every serialized object writes a 32-bit magic and a
// 32-bit version first; Load CHECK-fails on mismatch (a corrupt or
// foreign-version checkpoint is unrecoverable, so it is treated as a fatal
// pipeline error, consistent with the library's no-exceptions policy).
// Integers are written little-endian fixed-width; this code targets
// same-architecture checkpoint/restore (the library's use case: sharded
// workers on one cluster), not cross-endian archival.

#ifndef STREAMKC_UTIL_SERIALIZE_H_
#define STREAMKC_UTIL_SERIALIZE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "util/check.h"

namespace streamkc {

inline void WriteU32(std::ostream& os, uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void WriteU64(std::ostream& os, uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void WriteI64(std::ostream& os, int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline void WriteDouble(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

inline uint32_t ReadU32(std::istream& is) {
  uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  CHECK(is.good());
  return v;
}

inline uint64_t ReadU64(std::istream& is) {
  uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  CHECK(is.good());
  return v;
}

inline int64_t ReadI64(std::istream& is) {
  int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  CHECK(is.good());
  return v;
}

inline double ReadDouble(std::istream& is) {
  double v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  CHECK(is.good());
  return v;
}

template <typename T>
void WritePodVector(std::ostream& os, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  WriteU64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> ReadPodVector(std::istream& is) {
  static_assert(std::is_trivially_copyable_v<T>);
  uint64_t size = ReadU64(is);
  // Defensive cap: a corrupt length must not drive a huge allocation.
  CHECK_LT(size, uint64_t{1} << 34);
  std::vector<T> v(size);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(size * sizeof(T)));
  CHECK(is.good() || size == 0);
  return v;
}

// Writes/checks the (magic, version) header.
inline void WriteHeader(std::ostream& os, uint32_t magic, uint32_t version) {
  WriteU32(os, magic);
  WriteU32(os, version);
}

inline void CheckHeader(std::istream& is, uint32_t magic, uint32_t version) {
  CHECK_EQ(ReadU32(is), magic);
  CHECK_EQ(ReadU32(is), version);
}

}  // namespace streamkc

#endif  // STREAMKC_UTIL_SERIALIZE_H_
