// Small integer / floating point helpers shared across the library.

#ifndef STREAMKC_UTIL_MATH_UTIL_H_
#define STREAMKC_UTIL_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace streamkc {

// floor(log2(x)); x must be > 0.
inline uint32_t FloorLog2(uint64_t x) {
  DCHECK(x > 0);
  return 63u - static_cast<uint32_t>(__builtin_clzll(x));
}

// ceil(log2(x)); x must be > 0. CeilLog2(1) == 0.
inline uint32_t CeilLog2(uint64_t x) {
  DCHECK(x > 0);
  uint32_t f = FloorLog2(x);
  return ((x & (x - 1)) == 0) ? f : f + 1;
}

inline bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Smallest power of two >= x (x must be >= 1 and <= 2^63).
inline uint64_t NextPowerOfTwo(uint64_t x) {
  DCHECK(x > 0);
  return IsPowerOfTwo(x) ? x : (1ULL << (FloorLog2(x) + 1));
}

// log2(max(x, 2)) as a double; a convenient "polylog" building block that is
// never smaller than 1.
inline double Log2AtLeast1(double x) { return std::log2(std::max(x, 2.0)); }

// Integer ceiling division.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) {
  DCHECK(b > 0);
  return (a + b - 1) / b;
}

// Median of a vector (by value; the input is copied). Empty input is a
// programming error.
double Median(std::vector<double> v);

// Arithmetic mean; empty input is a programming error.
double Mean(const std::vector<double>& v);

// Sample standard deviation (n-1 denominator); needs >= 2 samples.
double StdDev(const std::vector<double>& v);

}  // namespace streamkc

#endif  // STREAMKC_UTIL_MATH_UTIL_H_
