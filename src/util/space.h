// Space accounting.
//
// The paper's headline result is a space bound (Θ̃(m/α²) words), so every
// sketch and streaming algorithm in streamkc reports the memory it holds via
// MemoryBytes(). The benches use these numbers to plot measured space against
// the theoretical curve. Accounting is by dominant payload (counter arrays,
// stored samples, hash seeds); transient per-edge temporaries are excluded,
// matching how space is counted in the streaming literature.

#ifndef STREAMKC_UTIL_SPACE_H_
#define STREAMKC_UTIL_SPACE_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace streamkc {

// Bytes held by a vector's heap buffer (capacity, not size: that is what the
// process actually reserves).
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

// Rough accounting for an unordered_map: per-entry payload plus one pointer
// of bucket overhead per bucket. Good enough for comparative plots.
template <typename K, typename V, typename H, typename E, typename A>
size_t UnorderedMapBytes(const std::unordered_map<K, V, H, E, A>& m) {
  return m.size() * (sizeof(K) + sizeof(V) + 2 * sizeof(void*)) +
         m.bucket_count() * sizeof(void*);
}

// Interface implemented by everything that holds stream state.
class SpaceAccounted {
 public:
  virtual ~SpaceAccounted() = default;
  // Bytes of state retained between stream updates.
  virtual size_t MemoryBytes() const = 0;
};

}  // namespace streamkc

#endif  // STREAMKC_UTIL_SPACE_H_
