#include "util/random.h"

#include <unordered_set>

namespace streamkc {

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t universe,
                                                    uint64_t count) {
  CHECK_LE(count, universe);
  std::vector<uint64_t> out;
  out.reserve(count);
  if (count == 0) return out;
  // Floyd's algorithm: for j in [universe-count, universe), draw t uniform in
  // [0, j]; insert t unless already present, else insert j. Produces a
  // uniform sample of `count` distinct values.
  std::unordered_set<uint64_t> seen;
  seen.reserve(count * 2);
  for (uint64_t j = universe - count; j < universe; ++j) {
    uint64_t t = UniformU64(j + 1);
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace streamkc
