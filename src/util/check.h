// Lightweight assertion macros in the spirit of glog's CHECK family.
//
// streamkc does not use exceptions on data paths; precondition violations are
// programming errors and abort the process with a readable message. DCHECK
// variants compile away in NDEBUG builds and are used on per-edge hot paths.

#ifndef STREAMKC_UTIL_CHECK_H_
#define STREAMKC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace streamkc {
namespace internal_check {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

// Stringifies the two operands of a failed binary CHECK.
template <typename A, typename B>
std::string BinaryMessage(const A& a, const B& b) {
  std::ostringstream os;
  os << "(" << a << " vs. " << b << ")";
  return os.str();
}

}  // namespace internal_check
}  // namespace streamkc

#define STREAMKC_CHECK(cond)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::streamkc::internal_check::CheckFail(__FILE__, __LINE__, #cond,   \
                                            std::string());              \
    }                                                                    \
  } while (0)

#define STREAMKC_CHECK_OP(op, a, b)                                      \
  do {                                                                   \
    if (!((a)op(b))) {                                                   \
      ::streamkc::internal_check::CheckFail(                             \
          __FILE__, __LINE__, #a " " #op " " #b,                         \
          ::streamkc::internal_check::BinaryMessage((a), (b)));          \
    }                                                                    \
  } while (0)

#define CHECK(cond) STREAMKC_CHECK(cond)
#define CHECK_EQ(a, b) STREAMKC_CHECK_OP(==, a, b)
#define CHECK_NE(a, b) STREAMKC_CHECK_OP(!=, a, b)
#define CHECK_LT(a, b) STREAMKC_CHECK_OP(<, a, b)
#define CHECK_LE(a, b) STREAMKC_CHECK_OP(<=, a, b)
#define CHECK_GT(a, b) STREAMKC_CHECK_OP(>, a, b)
#define CHECK_GE(a, b) STREAMKC_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define DCHECK(cond) \
  do {               \
  } while (0)
#define DCHECK_LT(a, b) DCHECK((a) < (b))
#define DCHECK_LE(a, b) DCHECK((a) <= (b))
#else
#define DCHECK(cond) CHECK(cond)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#endif

#endif  // STREAMKC_UTIL_CHECK_H_
