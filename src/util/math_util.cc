#include "util/math_util.h"

#include <numeric>

namespace streamkc {

double Median(std::vector<double> v) {
  CHECK(!v.empty());
  size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  double lo = *std::max_element(v.begin(), v.begin() + mid);
  return 0.5 * (lo + hi);
}

double Mean(const std::vector<double>& v) {
  CHECK(!v.empty());
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  CHECK_GE(v.size(), 2u);
  double mu = Mean(v);
  double acc = 0;
  for (double x : v) acc += (x - mu) * (x - mu);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

}  // namespace streamkc
