// Deterministic pseudo-random number generation for streamkc.
//
// Every randomized component in the library takes an explicit 64-bit seed so
// that experiments and tests are exactly reproducible. We use SplitMix64 for
// seed expansion and xoshiro256** as the workhorse generator; both are tiny,
// fast and of well-documented statistical quality.

#ifndef STREAMKC_UTIL_RANDOM_H_
#define STREAMKC_UTIL_RANDOM_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.h"

namespace streamkc {

// SplitMix64 step: maps any 64-bit value to a well-mixed 64-bit value.
// Used for seed expansion and cheap stateless mixing.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
// plugged into <random> distributions if desired.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed) {
    // Expand the seed through SplitMix64 as recommended by the authors.
    uint64_t x = seed;
    for (auto& w : s_) {
      x = SplitMix64(x);
      w = x;
    }
    // All-zero state is invalid for xoshiro; SplitMix64 of consecutive
    // values cannot produce four zeros, but keep a guard for clarity.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  uint64_t operator()() { return Next(); }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be positive. Uses 128-bit multiply
  // rejection-free mapping (Lemire); bias is < 2^-64 * bound, negligible for
  // our purposes and acceptable for simulation workloads.
  uint64_t UniformU64(uint64_t bound) {
    DCHECK(bound > 0);
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    DCHECK_LE(lo, hi);
    return lo + UniformU64(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli(p).
  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Derives an independent child seed; useful for giving each subcomponent
  // its own deterministic randomness.
  uint64_t Fork() { return SplitMix64(Next()); }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  // Samples `count` distinct values from [0, universe) (reservoir-free,
  // Floyd's algorithm). count must be <= universe.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t universe,
                                                 uint64_t count);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace streamkc

#endif  // STREAMKC_UTIL_RANDOM_H_
