// Wall-clock stopwatch used by the benchmark harnesses.

#ifndef STREAMKC_UTIL_STOPWATCH_H_
#define STREAMKC_UTIL_STOPWATCH_H_

#include <chrono>

namespace streamkc {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace streamkc

#endif  // STREAMKC_UTIL_STOPWATCH_H_
