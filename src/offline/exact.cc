#include "offline/exact.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace streamkc {

uint64_t BinomialSaturating(uint64_t m, uint64_t k) {
  if (k > m) return 0;
  k = std::min(k, m - k);
  __uint128_t acc = 1;
  const __uint128_t cap = static_cast<__uint128_t>(1) << 63;
  for (uint64_t i = 1; i <= k; ++i) {
    acc = acc * (m - k + i) / i;
    if (acc >= cap) return 1ULL << 63;
  }
  return static_cast<uint64_t>(acc);
}

namespace {

void Recurse(const SetSystem& sys, uint64_t k, SetId start,
             std::vector<SetId>& current, std::vector<uint32_t>& cover_count,
             uint64_t covered, CoverSolution& best) {
  if (current.size() == k || start == sys.num_sets()) {
    if (covered > best.coverage) {
      best.coverage = covered;
      best.sets = current;
    }
    return;
  }
  // Prune: even taking every remaining set cannot beat `best` if the
  // uncovered mass is too small — cheap bound: remaining picks * largest
  // possible gain (n - covered).
  uint64_t remaining = k - current.size();
  if (covered + remaining * (sys.num_elements() - covered) <= best.coverage &&
      covered <= best.coverage) {
    return;
  }
  for (SetId id = start; id < sys.num_sets(); ++id) {
    uint64_t gained = 0;
    for (ElementId e : sys.set(id)) {
      if (cover_count[e]++ == 0) ++gained;
    }
    current.push_back(id);
    Recurse(sys, k, id + 1, current, cover_count, covered + gained, best);
    current.pop_back();
    for (ElementId e : sys.set(id)) --cover_count[e];
  }
}

}  // namespace

CoverSolution ExactMaxCover(const SetSystem& sys, uint64_t k) {
  CHECK_LE(BinomialSaturating(sys.num_sets(), k), kExactEnumerationBudget);
  CoverSolution best;
  std::vector<SetId> current;
  std::vector<uint32_t> cover_count(sys.num_elements(), 0);
  Recurse(sys, std::min<uint64_t>(k, sys.num_sets()), 0, current, cover_count,
          0, best);
  return best;
}

}  // namespace streamkc
