// Constant-factor edge-arrival streaming Max k-Cover in Õ(m) space —
// Table 1's row "Reporting / Edge Arrival / 1/(1 − 1/e − ε)"
// ([12] Bateni-Esfandiari-Mirrokni, refined by [34] McGregor-Vu).
//
// The idea both papers build on: maintain one distinct-element sketch per
// set (Õ(m) space total); at the end of the pass run greedy, using sketch
// merges to evaluate marginal coverage — |C(Q ∪ {S})| is the union estimate
// of the corresponding KMV sketches, which are mergeable. With (1 ± ε)
// per-union accuracy the greedy chain loses only an ε term:
// 1/(1 − 1/e − O(ε)) overall.
//
// This is the natural companion to the paper's main algorithm: constant
// factor at Õ(m) space versus factor α at Õ(m/α²). bench_baselines puts the
// two side by side; streamkc users should pick SketchGreedy when m fits in
// memory and the best constant matters, EstimateMaxCover/ReportMaxCover when
// it does not.

#ifndef STREAMKC_OFFLINE_SKETCH_GREEDY_H_
#define STREAMKC_OFFLINE_SKETCH_GREEDY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/streaming_interface.h"
#include "offline/greedy.h"
#include "sketch/l0_estimator.h"

namespace streamkc {

class SketchGreedy : public StreamingEstimator {
 public:
  struct Config {
    uint64_t k = 10;
    // Minima per per-set KMV sketch; union-estimate error ~ 2/sqrt of this,
    // so 64 gives the ~(1 − 1/e − 0.25)⁻¹ regime and 256 the ε ≈ 0.12 one.
    uint32_t num_mins = 64;
    // Sets seen after this many distinct ids are ignored (safety valve; the
    // algorithm's space is inherently Θ(m · num_mins)).
    uint64_t max_sets = 1ULL << 22;
    uint64_t seed = 1;
  };

  explicit SketchGreedy(const Config& config);

  void Process(const Edge& edge) override;

  // Lazy greedy over the per-set sketches. `coverage` is the sketch-union
  // estimate of the selected sets' coverage (a (1±ε)-approximation of the
  // true value).
  CoverSolution Finalize() const;

  // Merges another worker's state (same Config): per-set KMV sketches union
  // element-wise, so the merged instance answers for the combined streams —
  // one-round distributed Max k-Cover at a constant factor.
  void Merge(const SketchGreedy& other);

  size_t MemoryBytes() const override;
  const char* ComponentName() const override { return "sketch_greedy"; }
  uint64_t ItemCount() const override { return sketches_.size(); }

  uint64_t num_tracked_sets() const { return sketches_.size(); }

 private:
  Config config_;
  uint64_t sketch_seed_;
  // One KMV per set id, all sharing one hash seed so they merge.
  std::unordered_map<SetId, L0Estimator> sketches_;
};

}  // namespace streamkc

#endif  // STREAMKC_OFFLINE_SKETCH_GREEDY_H_
