// Exact Max k-Cover by exhaustive search over k-subsets.
//
// Exponential in m; intended for tests (cross-checking greedy and the
// streaming estimators on small instances) and for the DSJ experiments'
// ground truth. Refuses instances where C(m, k) would exceed a budget.

#ifndef STREAMKC_OFFLINE_EXACT_H_
#define STREAMKC_OFFLINE_EXACT_H_

#include <cstdint>

#include "offline/greedy.h"
#include "setsys/set_system.h"

namespace streamkc {

// Maximum number of candidate subsets ExactMaxCover will enumerate.
inline constexpr uint64_t kExactEnumerationBudget = 5'000'000;

// Exact optimum; CHECK-fails if the enumeration budget would be exceeded.
CoverSolution ExactMaxCover(const SetSystem& sys, uint64_t k);

// Number of k-subsets of an m-set, saturating at 2^63.
uint64_t BinomialSaturating(uint64_t m, uint64_t k);

}  // namespace streamkc

#endif  // STREAMKC_OFFLINE_EXACT_H_
