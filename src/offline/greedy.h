// Offline greedy Max k-Cover (Nemhauser-Wolsey-Fisher [35]).
//
// Repeatedly picks the set with the largest marginal coverage; guarantees a
// (1 - 1/e) fraction of the optimum, i.e. approximation factor
// 1/(1 - 1/e) ≈ 1.582, which Feige [23] shows is best possible in
// polynomial time. Used as the offline solver inside SmallSet (on the stored
// subsampled instance), as the quality yardstick in benches, and via
// LazyGreedy for speed on large instances.

#ifndef STREAMKC_OFFLINE_GREEDY_H_
#define STREAMKC_OFFLINE_GREEDY_H_

#include <cstdint>
#include <vector>

#include "setsys/set_system.h"

namespace streamkc {

struct CoverSolution {
  std::vector<SetId> sets;
  uint64_t coverage = 0;
};

// Plain greedy: O(k · Σ|S|) time.
CoverSolution GreedyMaxCover(const SetSystem& sys, uint64_t k);

// Lazy greedy: identical output distribution quality (same guarantee; may
// break ties differently), typically far faster via stale-bound skipping.
CoverSolution LazyGreedyMaxCover(const SetSystem& sys, uint64_t k);

// Greedy over an instance given as adjacency lists (used by SmallSet on its
// stored sample, where sets are identified by arbitrary ids).
// `sets` maps position -> element list; returns positions.
CoverSolution GreedyOnLists(const std::vector<std::vector<ElementId>>& sets,
                            uint64_t k);

}  // namespace streamkc

#endif  // STREAMKC_OFFLINE_GREEDY_H_
