#include "offline/multi_pass_set_cover.h"

#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace streamkc {

namespace {

// Invokes `offer(set_id, elements)` once per set of a set-contiguous pass.
template <typename Offer>
void ForEachSet(EdgeStream& stream, Offer&& offer) {
  std::unordered_set<SetId> closed;
  bool have = false;
  SetId current = 0;
  std::vector<ElementId> elements;
  Edge e;
  while (stream.Next(&e)) {
    if (!have || e.set != current) {
      if (have) {
        offer(current, elements);
        CHECK(closed.insert(current).second);  // set-contiguity contract
      }
      CHECK(!closed.count(e.set));
      current = e.set;
      have = true;
      elements.clear();
    }
    elements.push_back(e.element);
  }
  if (have) offer(current, elements);
}

}  // namespace

MultiPassSetCoverResult RunMultiPassSetCover(EdgeStream& stream,
                                             uint64_t num_elements,
                                             uint32_t passes) {
  CHECK_GE(passes, 1u);
  CHECK_GT(num_elements, 0u);
  MultiPassSetCoverResult result;
  std::vector<bool> covered(num_elements, true);

  // Pass 0 (uncounted bookkeeping fold): mark which elements actually occur.
  // We fold it into pass 1 instead: covered[e] starts true and flips to
  // false the first time e is seen uncovered — realized by tracking `seen`.
  // Simpler and faithful to the Õ(n) budget: one dedicated discovery pass.
  {
    Edge e;
    stream.Reset();
    std::vector<bool> seen(num_elements, false);
    while (stream.Next(&e)) {
      CHECK_LT(e.element, num_elements);
      seen[e.element] = true;
    }
    for (uint64_t i = 0; i < num_elements; ++i) covered[i] = !seen[i];
    ++result.passes_used;
  }

  uint64_t remaining = 0;
  for (uint64_t i = 0; i < num_elements; ++i) remaining += !covered[i];
  uint64_t target = remaining;

  auto accept = [&](SetId id, const std::vector<ElementId>& elements,
                    double threshold) {
    uint64_t gain = 0;
    for (ElementId el : elements) gain += !covered[el];
    if (static_cast<double>(gain) < threshold || gain == 0) return;
    result.solution.sets.push_back(id);
    for (ElementId el : elements) {
      if (!covered[el]) {
        covered[el] = true;
        --remaining;
      }
    }
  };

  // Threshold passes: T_j = remaining^(1 - j/p) on the pass's entry size.
  for (uint32_t j = 1; j <= passes && remaining > 0; ++j) {
    double exponent =
        1.0 - static_cast<double>(j) / static_cast<double>(passes);
    double threshold =
        std::max(1.0, std::pow(static_cast<double>(remaining), exponent));
    stream.Reset();
    ForEachSet(stream, [&](SetId id, const std::vector<ElementId>& elements) {
      accept(id, elements, threshold);
    });
    ++result.passes_used;
  }

  // Completion sweep (threshold 1) — guarantees a full cover of C(F).
  if (remaining > 0) {
    stream.Reset();
    ForEachSet(stream, [&](SetId id, const std::vector<ElementId>& elements) {
      accept(id, elements, 1.0);
    });
    ++result.passes_used;
  }
  CHECK_EQ(remaining, 0u);

  result.solution.covered = target;
  result.memory_bytes =
      num_elements / 8 + result.solution.sets.size() * sizeof(SetId);
  return result;
}

}  // namespace streamkc
