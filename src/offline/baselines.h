// Trivial baselines for quality comparisons in the benches.

#ifndef STREAMKC_OFFLINE_BASELINES_H_
#define STREAMKC_OFFLINE_BASELINES_H_

#include <cstdint>

#include "offline/greedy.h"
#include "setsys/set_system.h"

namespace streamkc {

// k sets chosen uniformly at random (without replacement).
CoverSolution RandomKBaseline(const SetSystem& sys, uint64_t k, uint64_t seed);

// The k individually largest sets (ignores overlap).
CoverSolution TopKBySizeBaseline(const SetSystem& sys, uint64_t k);

}  // namespace streamkc

#endif  // STREAMKC_OFFLINE_BASELINES_H_
