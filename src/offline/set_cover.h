// Set Cover — the dual problem the paper repeatedly compares against
// (footnote 5: Θ(mn/α²) estimation vs Θ(mn/α) reporting trade-offs [7];
// related work [6, 17, 21, 22, 26–28]).
//
// Offline solvers used as ground truth by the streaming variant
// (stream/multi_pass_set_cover.h) and by tests:
//   * GreedySetCover — the H_n ≈ ln n approximation (Johnson/Lovász);
//   * ExactSetCover — branch-and-bound for small m.
//
// Both cover C(F) (elements no set contains are ignored — the instance's
// coverable universe), and report the number of covered elements so callers
// can detect partially-coverable instances.

#ifndef STREAMKC_OFFLINE_SET_COVER_H_
#define STREAMKC_OFFLINE_SET_COVER_H_

#include <cstdint>
#include <vector>

#include "setsys/set_system.h"

namespace streamkc {

struct SetCoverSolution {
  std::vector<SetId> sets;
  // Elements covered by `sets` (== |C(F)| when the solver succeeded).
  uint64_t covered = 0;
};

// Greedy: repeatedly take the set with most uncovered elements, until all of
// C(F) is covered. ln(n)-approximate, which is optimal up to constants.
SetCoverSolution GreedySetCover(const SetSystem& sys);

// Exact minimum cover of C(F) by branch and bound; CHECK-fails if the
// search would exceed a size budget (use only for small m).
SetCoverSolution ExactSetCover(const SetSystem& sys);

}  // namespace streamkc

#endif  // STREAMKC_OFFLINE_SET_COVER_H_
