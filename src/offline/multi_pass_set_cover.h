// Multi-pass streaming Set Cover — Demaine-Indyk-Mahabadi-Vakilian [21]
// style progressive greedy, the classic pass/approximation trade the paper's
// related-work section is built on.
//
// p passes over a set-arrival stream with Õ(n) working memory (the
// uncovered-element bitmap plus the solution):
//
//   pass j = 1..p: threshold T_j = U_j^(1 - j/p)  (geometric schedule over
//   the remaining-universe size); accept any arriving set whose marginal
//   coverage of the uncovered elements is ≥ T_j; a final sweep accepts any
//   set with positive gain so the cover always completes.
//
// Guarantee shape (Thm of [21]): O(p · n^(1/p)) approximation in p passes —
// log n passes give the greedy O(log n) factor, one pass degrades toward
// O(n); bench_set_cover traces the trade-off curve.
//
// Like all set-arrival algorithms it REQUIRES set-contiguous arrival within
// each pass (the contrast with this paper's edge-arrival algorithms is the
// point); the driver CHECKs that contract.

#ifndef STREAMKC_OFFLINE_MULTI_PASS_SET_COVER_H_
#define STREAMKC_OFFLINE_MULTI_PASS_SET_COVER_H_

#include <cstdint>
#include <vector>

#include "offline/set_cover.h"
#include "stream/edge_stream.h"

namespace streamkc {

struct MultiPassSetCoverResult {
  SetCoverSolution solution;
  uint32_t passes_used = 0;     // includes the completion sweep
  size_t memory_bytes = 0;      // bitmap + solution, the Õ(n) working state
};

// Runs the p-pass algorithm over a resettable set-contiguous stream.
// `num_elements` bounds element ids. p >= 1.
MultiPassSetCoverResult RunMultiPassSetCover(EdgeStream& stream,
                                             uint64_t num_elements,
                                             uint32_t passes);

}  // namespace streamkc

#endif  // STREAMKC_OFFLINE_MULTI_PASS_SET_COVER_H_
