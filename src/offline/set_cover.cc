#include "offline/set_cover.h"

#include <algorithm>

#include "util/check.h"

namespace streamkc {

SetCoverSolution GreedySetCover(const SetSystem& sys) {
  std::vector<bool> covered(sys.num_elements(), false);
  uint64_t remaining = sys.CoveredUniverseSize();
  SetCoverSolution sol;
  while (remaining > 0) {
    uint64_t best_gain = 0;
    SetId best = sys.num_sets();
    for (SetId i = 0; i < sys.num_sets(); ++i) {
      uint64_t gain = 0;
      for (ElementId e : sys.set(i)) {
        if (!covered[e]) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = i;
      }
    }
    CHECK_LT(best, sys.num_sets());  // remaining > 0 implies a positive gain
    sol.sets.push_back(best);
    for (ElementId e : sys.set(best)) {
      if (!covered[e]) {
        covered[e] = true;
        --remaining;
        ++sol.covered;
      }
    }
  }
  return sol;
}

namespace {

// Depth-first branch and bound over set indices; prunes when even the
// largest remaining set cannot beat the incumbent.
struct ExactState {
  const SetSystem* sys;
  uint64_t target = 0;  // |C(F)|
  std::vector<uint32_t> cover_count;
  std::vector<SetId> current;
  std::vector<SetId> best;
  uint64_t nodes = 0;
  static constexpr uint64_t kNodeBudget = 2'000'000;
};

void Search(ExactState& st, SetId start, uint64_t covered) {
  CHECK_LT(++st.nodes, ExactState::kNodeBudget);
  if (covered == st.target) {
    if (st.best.empty() || st.current.size() < st.best.size()) {
      st.best = st.current;
    }
    return;
  }
  if (!st.best.empty() && st.current.size() + 1 >= st.best.size()) return;
  if (start == st.sys->num_sets()) return;
  // Lower bound: remaining elements / largest set size ⇒ more pruning, but
  // the simple size cut above suffices at test scale.
  for (SetId i = start; i < st.sys->num_sets(); ++i) {
    uint64_t gained = 0;
    for (ElementId e : st.sys->set(i)) {
      if (st.cover_count[e]++ == 0) ++gained;
    }
    if (gained > 0) {
      st.current.push_back(i);
      Search(st, i + 1, covered + gained);
      st.current.pop_back();
    }
    for (ElementId e : st.sys->set(i)) --st.cover_count[e];
  }
}

}  // namespace

SetCoverSolution ExactSetCover(const SetSystem& sys) {
  ExactState st;
  st.sys = &sys;
  st.target = sys.CoveredUniverseSize();
  st.cover_count.assign(sys.num_elements(), 0);
  if (st.target == 0) return {};
  // Seed the incumbent with greedy so pruning bites immediately.
  st.best = GreedySetCover(sys).sets;
  Search(st, 0, 0);
  SetCoverSolution sol;
  sol.sets = st.best;
  sol.covered = sys.CoverageOf(sol.sets);
  CHECK_EQ(sol.covered, st.target);
  return sol;
}

}  // namespace streamkc
