// Set-arrival streaming baseline: threshold ("sieve") greedy.
//
// Table 1 of the paper lists set-arrival streaming algorithms with a (2+ε)
// guarantee [34] (and 4 / 2 from [37, 9]). This is the standard single-pass
// threshold algorithm behind those rows: for every guess v of OPT in a
// geometric grid, keep a partial solution and accept an arriving set iff its
// marginal gain is at least (v/2 - current)/(k - taken). The best guess's
// solution is a (2+ε)-approximation.
//
// It REQUIRES set-contiguous arrival: each set must be deliverable as one
// unit. Feeding it a general edge-arrival stream is a contract violation
// (that limitation is precisely the paper's motivation); the driver
// ConsumeSetContiguousStream CHECKs that set ids do not recur.
//
// Space: the covered-element sets per guess, Õ(OPT · #guesses) — sublinear
// in the stream but not in n; this implements the classic Õ(n)-space regime
// from [9, 37], not McGregor-Vu's Õ(k/ε³) refinement.

#ifndef STREAMKC_OFFLINE_SET_ARRIVAL_STREAMING_H_
#define STREAMKC_OFFLINE_SET_ARRIVAL_STREAMING_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "offline/greedy.h"
#include "stream/edge_stream.h"
#include "util/space.h"

namespace streamkc {

class SetArrivalSieve : public SpaceAccounted {
 public:
  struct Config {
    uint64_t k = 10;
    double epsilon = 0.2;  // guess-grid resolution
    // Upper bound on OPT used to seed the guess grid (e.g. |U|).
    uint64_t opt_upper_bound = 1 << 20;
  };

  explicit SetArrivalSieve(const Config& config);

  // Delivers one whole set. Element list may contain duplicates.
  void OfferSet(SetId id, const std::vector<ElementId>& elements);

  // Best solution across guesses.
  CoverSolution Finalize() const;

  size_t MemoryBytes() const override;

 private:
  struct Guess {
    double v = 0;
    std::vector<SetId> taken;
    std::unordered_set<ElementId> covered;
  };

  Config config_;
  std::vector<Guess> guesses_;
};

// Drives a sieve from a set-contiguous edge stream (consumes the stream).
// CHECK-fails if a set id recurs after a different set id intervened.
CoverSolution RunSetArrivalSieve(EdgeStream& stream,
                                 const SetArrivalSieve::Config& config,
                                 size_t* memory_bytes = nullptr);

}  // namespace streamkc

#endif  // STREAMKC_OFFLINE_SET_ARRIVAL_STREAMING_H_
