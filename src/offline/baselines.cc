#include "offline/baselines.h"

#include <algorithm>
#include <numeric>

#include "util/random.h"

namespace streamkc {

CoverSolution RandomKBaseline(const SetSystem& sys, uint64_t k,
                              uint64_t seed) {
  Rng rng(seed);
  uint64_t take = std::min<uint64_t>(k, sys.num_sets());
  CoverSolution sol;
  sol.sets = rng.SampleWithoutReplacement(sys.num_sets(), take);
  sol.coverage = sys.CoverageOf(sol.sets);
  return sol;
}

CoverSolution TopKBySizeBaseline(const SetSystem& sys, uint64_t k) {
  std::vector<SetId> ids(sys.num_sets());
  std::iota(ids.begin(), ids.end(), 0);
  uint64_t take = std::min<uint64_t>(k, sys.num_sets());
  std::partial_sort(ids.begin(), ids.begin() + static_cast<long>(take),
                    ids.end(), [&](SetId a, SetId b) {
                      return sys.set(a).size() > sys.set(b).size();
                    });
  ids.resize(take);
  CoverSolution sol;
  sol.sets = std::move(ids);
  sol.coverage = sys.CoverageOf(sol.sets);
  return sol;
}

}  // namespace streamkc
