#include "offline/set_arrival_streaming.h"

#include <algorithm>

#include "util/check.h"

namespace streamkc {

SetArrivalSieve::SetArrivalSieve(const Config& config) : config_(config) {
  CHECK_GT(config.k, 0u);
  CHECK_GT(config.epsilon, 0.0);
  CHECK_GT(config.opt_upper_bound, 0u);
  // Geometric grid of OPT guesses: (1+ε)^j from 1 up to the upper bound.
  double v = 1;
  double ub = static_cast<double>(config.opt_upper_bound);
  while (v <= ub * (1 + config.epsilon)) {
    guesses_.push_back(Guess{v, {}, {}});
    v *= (1 + config.epsilon);
  }
}

void SetArrivalSieve::OfferSet(SetId id,
                               const std::vector<ElementId>& elements) {
  for (Guess& g : guesses_) {
    if (g.taken.size() >= config_.k) continue;
    // Marginal gain against this guess's covered set.
    uint64_t gain = 0;
    for (ElementId e : elements) {
      if (!g.covered.count(e)) ++gain;
    }
    double needed = (g.v / 2.0 - static_cast<double>(g.covered.size())) /
                    static_cast<double>(config_.k - g.taken.size());
    if (static_cast<double>(gain) >= needed && gain > 0) {
      g.taken.push_back(id);
      for (ElementId e : elements) g.covered.insert(e);
    }
  }
}

CoverSolution SetArrivalSieve::Finalize() const {
  CoverSolution best;
  for (const Guess& g : guesses_) {
    if (g.covered.size() > best.coverage) {
      best.coverage = g.covered.size();
      best.sets = g.taken;
    }
  }
  return best;
}

size_t SetArrivalSieve::MemoryBytes() const {
  size_t bytes = 0;
  for (const Guess& g : guesses_) {
    bytes += VectorBytes(g.taken) +
             g.covered.size() * (sizeof(ElementId) + 2 * sizeof(void*)) +
             g.covered.bucket_count() * sizeof(void*);
  }
  return bytes;
}

CoverSolution RunSetArrivalSieve(EdgeStream& stream,
                                 const SetArrivalSieve::Config& config,
                                 size_t* memory_bytes) {
  SetArrivalSieve sieve(config);
  std::unordered_set<SetId> closed;
  bool have_current = false;
  SetId current = 0;
  std::vector<ElementId> elements;
  size_t peak_bytes = 0;
  Edge e;
  while (stream.Next(&e)) {
    if (!have_current || e.set != current) {
      if (have_current) {
        sieve.OfferSet(current, elements);
        CHECK(closed.insert(current).second);  // set-contiguity contract
        peak_bytes = std::max(peak_bytes, sieve.MemoryBytes());
      }
      CHECK(!closed.count(e.set));
      current = e.set;
      have_current = true;
      elements.clear();
    }
    elements.push_back(e.element);
  }
  if (have_current) {
    sieve.OfferSet(current, elements);
    peak_bytes = std::max(peak_bytes, sieve.MemoryBytes());
  }
  if (memory_bytes != nullptr) *memory_bytes = peak_bytes;
  return sieve.Finalize();
}

}  // namespace streamkc
