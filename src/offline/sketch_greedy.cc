#include "offline/sketch_greedy.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/check.h"
#include "util/random.h"

namespace streamkc {

SketchGreedy::SketchGreedy(const Config& config)
    : config_(config), sketch_seed_(SplitMix64(config.seed ^ 0x5e7c)) {
  CHECK_GT(config.k, 0u);
  CHECK_GE(config.num_mins, 2u);
}

void SketchGreedy::Process(const Edge& edge) {
  auto it = sketches_.find(edge.set);
  if (it == sketches_.end()) {
    if (sketches_.size() >= config_.max_sets) return;
    // All per-set sketches share one hash seed so that Merge() computes
    // union coverage.
    it = sketches_
             .emplace(edge.set, L0Estimator({.num_mins = config_.num_mins,
                                             .seed = sketch_seed_}))
             .first;
  }
  it->second.Add(edge.element);
}

void SketchGreedy::Merge(const SketchGreedy& other) {
  CHECK_EQ(config_.num_mins, other.config_.num_mins);
  CHECK_EQ(sketch_seed_, other.sketch_seed_);
  for (const auto& [id, sketch] : other.sketches_) {
    auto it = sketches_.find(id);
    if (it == sketches_.end()) {
      if (sketches_.size() >= config_.max_sets) continue;
      sketches_.emplace(id, sketch);
    } else {
      it->second.Merge(sketch);
    }
  }
}

CoverSolution SketchGreedy::Finalize() const {
  CoverSolution sol;
  if (sketches_.empty()) return sol;

  // Lazy greedy on sketch-union estimates. `covered` accumulates the chosen
  // sets' union sketch; a set's marginal gain is
  // Estimate(covered ∪ S) − Estimate(covered), evaluated by merging a copy.
  L0Estimator covered({.num_mins = config_.num_mins, .seed = sketch_seed_});
  double covered_value = 0;

  auto gain_of = [&](const L0Estimator& sketch) {
    L0Estimator merged = covered;
    merged.Merge(sketch);
    return std::max(0.0, merged.Estimate() - covered_value);
  };

  // Max-heap of (stale gain upper bound, set id); stale bounds stay valid
  // upper bounds because sketched union coverage is (approximately)
  // submodular — occasional estimator non-monotonicities are absorbed by
  // re-evaluating the top of the heap.
  auto worse = [](const std::pair<double, SetId>& a,
                  const std::pair<double, SetId>& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  };
  std::priority_queue<std::pair<double, SetId>,
                      std::vector<std::pair<double, SetId>>, decltype(worse)>
      heap(worse);
  for (const auto& [id, sketch] : sketches_) {
    heap.emplace(sketch.Estimate(), id);
  }

  uint64_t rounds = std::min<uint64_t>(config_.k, sketches_.size());
  std::vector<bool> done_marker;  // ids are arbitrary; track via map lookup
  std::unordered_map<SetId, bool> chosen;
  while (sol.sets.size() < rounds && !heap.empty()) {
    auto [stale, id] = heap.top();
    heap.pop();
    if (chosen.count(id)) continue;
    double fresh = gain_of(sketches_.at(id));
    if (!heap.empty() && fresh + 1e-9 < heap.top().first) {
      heap.emplace(fresh, id);  // someone else may be better; refresh later
      continue;
    }
    if (fresh <= 0) break;
    chosen[id] = true;
    sol.sets.push_back(id);
    covered.Merge(sketches_.at(id));
    covered_value = covered.Estimate();
  }
  sol.coverage = static_cast<uint64_t>(std::llround(covered_value));
  return sol;
}

size_t SketchGreedy::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [id, sketch] : sketches_) {
    bytes += sizeof(id) + sketch.MemoryBytes() + 2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace streamkc
