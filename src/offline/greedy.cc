#include "offline/greedy.h"

#include <queue>
#include <unordered_set>

#include "util/check.h"

namespace streamkc {

namespace {

// Marginal gain of `set` against the covered bitmap.
uint64_t MarginalGain(const std::vector<ElementId>& set,
                      const std::vector<bool>& covered) {
  uint64_t gain = 0;
  for (ElementId e : set) {
    if (!covered[e]) ++gain;
  }
  return gain;
}

void Commit(const std::vector<ElementId>& set, std::vector<bool>& covered) {
  for (ElementId e : set) covered[e] = true;
}

CoverSolution GreedyCore(const std::vector<std::vector<ElementId>>& sets,
                         uint64_t num_elements, uint64_t k) {
  std::vector<bool> covered(num_elements, false);
  CoverSolution sol;
  uint64_t rounds = std::min<uint64_t>(k, sets.size());
  for (uint64_t round = 0; round < rounds; ++round) {
    uint64_t best_gain = 0;
    size_t best_idx = sets.size();
    for (size_t i = 0; i < sets.size(); ++i) {
      uint64_t gain = MarginalGain(sets[i], covered);
      if (gain > best_gain) {
        best_gain = gain;
        best_idx = i;
      }
    }
    if (best_idx == sets.size()) break;  // nothing adds coverage
    sol.sets.push_back(best_idx);
    sol.coverage += best_gain;
    Commit(sets[best_idx], covered);
  }
  return sol;
}

}  // namespace

CoverSolution GreedyMaxCover(const SetSystem& sys, uint64_t k) {
  uint64_t max_e = 0;
  for (const auto& s : sys.sets()) {
    for (ElementId e : s) max_e = std::max<uint64_t>(max_e, e + 1);
  }
  (void)max_e;
  return GreedyCore(sys.sets(), sys.num_elements(), k);
}

CoverSolution GreedyOnLists(const std::vector<std::vector<ElementId>>& sets,
                            uint64_t k) {
  uint64_t num_elements = 0;
  for (const auto& s : sets) {
    for (ElementId e : s) num_elements = std::max<uint64_t>(num_elements, e + 1);
  }
  return GreedyCore(sets, num_elements, k);
}

CoverSolution LazyGreedyMaxCover(const SetSystem& sys, uint64_t k) {
  const auto& sets = sys.sets();
  std::vector<bool> covered(sys.num_elements(), false);
  // Max-heap of (stale upper bound on gain, set id). Submodularity makes
  // stale bounds valid upper bounds, so re-evaluating only the top is sound.
  // Ties prefer the smaller id, which makes lazy greedy pick exactly the
  // same sets as plain greedy (which scans ids in order).
  auto worse = [](const std::pair<uint64_t, SetId>& a,
                  const std::pair<uint64_t, SetId>& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  };
  std::priority_queue<std::pair<uint64_t, SetId>,
                      std::vector<std::pair<uint64_t, SetId>>, decltype(worse)>
      heap(worse);
  for (SetId i = 0; i < sets.size(); ++i) {
    heap.emplace(sets[i].size(), i);
  }
  std::vector<bool> chosen(sets.size(), false);
  CoverSolution sol;
  uint64_t rounds = std::min<uint64_t>(k, sets.size());
  while (sol.sets.size() < rounds && !heap.empty()) {
    auto [stale_gain, id] = heap.top();
    heap.pop();
    if (chosen[id]) continue;
    uint64_t gain = MarginalGain(sets[id], covered);
    if (gain == stale_gain) {
      if (gain == 0) break;
      chosen[id] = true;
      sol.sets.push_back(id);
      sol.coverage += gain;
      Commit(sets[id], covered);
    } else {
      heap.emplace(gain, id);  // reinsert with refreshed bound
    }
  }
  return sol;
}

}  // namespace streamkc
