#include "dist/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "dist/frame.h"
#include "util/check.h"
#include "util/serialize.h"

namespace streamkc {
namespace {

constexpr uint32_t kCkptMagic = 0x534b4331;  // "SKC1"
constexpr uint32_t kCkptVersion = 1;

}  // namespace

std::string CheckpointPath(const std::string& dir, uint32_t worker) {
  return dir + "/ckpt_w" + std::to_string(worker) + ".bin";
}

std::string EncodeCheckpoint(const Checkpoint& ckpt) {
  std::ostringstream body;
  WriteU32(body, ckpt.worker);
  WriteU64(body, ckpt.segments_done);
  ckpt.counters.Save(body);
  WriteU64(body, ckpt.fingerprint);
  WriteU64(body, ckpt.state_blob.size());
  body.write(ckpt.state_blob.data(),
             static_cast<std::streamsize>(ckpt.state_blob.size()));
  const std::string body_bytes = body.str();

  std::ostringstream os;
  WriteHeader(os, kCkptMagic, kCkptVersion);
  WriteU64(os, body_bytes.size());
  WriteU32(os, Crc32(body_bytes.data(), body_bytes.size()));
  os.write(body_bytes.data(),
           static_cast<std::streamsize>(body_bytes.size()));
  return os.str();
}

Checkpoint DecodeCheckpoint(const std::string& bytes) {
  std::istringstream is(bytes);
  CheckHeader(is, kCkptMagic, kCkptVersion);
  const uint64_t body_len = ReadU64(is);
  const uint32_t crc = ReadU32(is);
  CHECK_LE(body_len, kMaxFramePayload);
  std::string body(static_cast<size_t>(body_len), '\0');
  is.read(body.data(), static_cast<std::streamsize>(body.size()));
  CHECK(is.good());
  // The whole blob is exactly header + body: trailing garbage is corruption
  // too (a concatenated or overwritten file must not load).
  CHECK(is.peek() == std::char_traits<char>::eof());
  CHECK_EQ(Crc32(body.data(), body.size()), crc);

  std::istringstream bs(body);
  Checkpoint ckpt;
  ckpt.worker = ReadU32(bs);
  ckpt.segments_done = ReadU64(bs);
  ckpt.counters = WorkerCounters::Load(bs);
  ckpt.fingerprint = ReadU64(bs);
  const uint64_t state_len = ReadU64(bs);
  CHECK_LE(state_len, body_len);
  ckpt.state_blob.resize(static_cast<size_t>(state_len));
  bs.read(ckpt.state_blob.data(),
          static_cast<std::streamsize>(ckpt.state_blob.size()));
  CHECK(bs.good());
  return ckpt;
}

void WriteCheckpointFile(const std::string& path, const Checkpoint& ckpt) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    CHECK(os.is_open());
    const std::string bytes = EncodeCheckpoint(ckpt);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    os.flush();
    CHECK(os.good());
  }
  CHECK_EQ(std::rename(tmp.c_str(), path.c_str()), 0);
}

bool CheckpointFileExists(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return is.is_open();
}

Checkpoint LoadCheckpointFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  CHECK(is.is_open());
  std::ostringstream buf;
  buf << is.rdbuf();
  return DecodeCheckpoint(buf.str());
}

}  // namespace streamkc
