#include "dist/checkpoint.h"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "dist/frame.h"
#include "util/check.h"
#include "util/serialize.h"

namespace streamkc {
namespace {

constexpr uint32_t kCkptMagic = 0x534b4331;  // "SKC1"
constexpr uint32_t kCkptVersion = 1;
// u32 magic + u32 version + u64 body_len + u32 crc.
constexpr size_t kCkptHeaderBytes = 4 + 4 + 8 + 4;
// Fixed-width body prefix: u32 worker + u64 segments_done + counters +
// u64 fingerprint + u64 state_len. Everything past it is the state blob.
constexpr uint64_t kCkptFixedBodyBytes =
    4 + 8 + WorkerCounters::kSerializedBytes + 8 + 8;

bool Fail(std::string* error, const char* reason) {
  if (error != nullptr) *error = reason;
  return false;
}

}  // namespace

std::string CheckpointPath(const std::string& dir, uint32_t worker) {
  return dir + "/ckpt_w" + std::to_string(worker) + ".bin";
}

std::string EncodeCheckpoint(const Checkpoint& ckpt) {
  std::ostringstream body;
  WriteU32(body, ckpt.worker);
  WriteU64(body, ckpt.segments_done);
  ckpt.counters.Save(body);
  WriteU64(body, ckpt.fingerprint);
  WriteU64(body, ckpt.state_blob.size());
  body.write(ckpt.state_blob.data(),
             static_cast<std::streamsize>(ckpt.state_blob.size()));
  const std::string body_bytes = body.str();

  std::ostringstream os;
  WriteHeader(os, kCkptMagic, kCkptVersion);
  WriteU64(os, body_bytes.size());
  WriteU32(os, Crc32(body_bytes.data(), body_bytes.size()));
  os.write(body_bytes.data(),
           static_cast<std::streamsize>(body_bytes.size()));
  return os.str();
}

bool TryDecodeCheckpoint(const std::string& bytes, Checkpoint* out,
                         std::string* error) {
  if (bytes.size() < kCkptHeaderBytes) {
    return Fail(error, "truncated header");
  }
  uint32_t magic = 0, version = 0, crc = 0;
  uint64_t body_len = 0;
  std::memcpy(&magic, bytes.data(), 4);
  std::memcpy(&version, bytes.data() + 4, 4);
  std::memcpy(&body_len, bytes.data() + 8, 8);
  std::memcpy(&crc, bytes.data() + 16, 4);
  if (magic != kCkptMagic) return Fail(error, "bad magic");
  if (version != kCkptVersion) return Fail(error, "unsupported version");
  if (body_len > kMaxFramePayload) return Fail(error, "body length insane");
  // The whole blob is exactly header + body: a short read is truncation and
  // trailing slack is corruption too (a concatenated or overwritten file
  // must not load).
  if (bytes.size() != kCkptHeaderBytes + body_len) {
    return Fail(error, "truncated body or trailing garbage");
  }
  const char* body = bytes.data() + kCkptHeaderBytes;
  if (Crc32(body, static_cast<size_t>(body_len)) != crc) {
    return Fail(error, "crc mismatch");
  }
  if (body_len < kCkptFixedBodyBytes) return Fail(error, "body too short");

  // Lengths are fully validated, so the CHECK-hard stream readers below
  // cannot fire: the stream always has the bytes they ask for.
  std::istringstream bs(std::string(body, static_cast<size_t>(body_len)));
  Checkpoint ckpt;
  ckpt.worker = ReadU32(bs);
  ckpt.segments_done = ReadU64(bs);
  ckpt.counters = WorkerCounters::Load(bs);
  ckpt.fingerprint = ReadU64(bs);
  const uint64_t state_len = ReadU64(bs);
  if (state_len != body_len - kCkptFixedBodyBytes) {
    return Fail(error, "state length mismatch");
  }
  ckpt.state_blob.resize(static_cast<size_t>(state_len));
  bs.read(ckpt.state_blob.data(),
          static_cast<std::streamsize>(ckpt.state_blob.size()));
  *out = std::move(ckpt);
  return true;
}

Checkpoint DecodeCheckpoint(const std::string& bytes) {
  Checkpoint ckpt;
  std::string err;
  if (!TryDecodeCheckpoint(bytes, &ckpt, &err)) {
    std::fprintf(stderr, "checkpoint decode failed: %s\n", err.c_str());
    CHECK(false);
  }
  return ckpt;
}

void WriteCheckpointFile(const std::string& path, const Checkpoint& ckpt) {
  const std::string tmp = path + ".tmp";
  const std::string bytes = EncodeCheckpoint(ckpt);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  CHECK_GE(fd, 0);
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      CHECK_EQ(errno, EINTR);
      continue;
    }
    off += static_cast<size_t>(n);
  }
  // fsync the data BEFORE the rename and the directory AFTER it: the
  // rename is only atomic against this process crashing. Against a host
  // crash, the filesystem may persist the rename ahead of the data blocks
  // (or lose the directory entry), resurrecting a zero-length or torn file
  // at the final path — which the Try-loader then rejects, but which must
  // stay a recoverable rarity rather than the normal post-crash state.
  CHECK_EQ(::fsync(fd), 0);
  CHECK_EQ(::close(fd), 0);
  CHECK_EQ(std::rename(tmp.c_str(), path.c_str()), 0);
  const size_t slash = path.rfind('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  CHECK_GE(dfd, 0);
  CHECK_EQ(::fsync(dfd), 0);
  CHECK_EQ(::close(dfd), 0);
}

bool CheckpointFileExists(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return is.is_open();
}

bool TryLoadCheckpointFile(const std::string& path, Checkpoint* out,
                           std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) return Fail(error, "cannot open checkpoint file");
  std::ostringstream buf;
  buf << is.rdbuf();
  if (!is.good() && !is.eof()) return Fail(error, "read error");
  return TryDecodeCheckpoint(buf.str(), out, error);
}

Checkpoint LoadCheckpointFile(const std::string& path) {
  Checkpoint ckpt;
  std::string err;
  if (!TryLoadCheckpointFile(path, &ckpt, &err)) {
    std::fprintf(stderr, "checkpoint load failed (%s): %s\n", path.c_str(),
                 err.c_str());
    CHECK(false);
  }
  return ckpt;
}

}  // namespace streamkc
