// Transport: how a worker's final SKF1 frame travels to the coordinator.
//
// The frame format (dist/frame.h) is transport-agnostic; this interface
// isolates everything that is NOT — fd plumbing across fork(), connection
// establishment, ack handshakes, and how the coordinator's poll(2) reactor
// learns about worker exits. Two implementations:
//
//   PipeTransport   the original single-box path: one pipe(2) per worker,
//                   created before fork. The child inherits the write end
//                   and ships exactly one frame; pipe EOF doubles as the
//                   exit signal, so the coordinator needs no extra fds.
//
//   TcpTransport    workers dial the coordinator over TCP (loopback when
//                   forked, any host once workers run remotely — the dial
//                   address is plain host:port). Because a socket appears
//                   only when the worker is DONE ingesting, the coordinator
//                   runs an accept loop and identifies each connection by a
//                   12-byte hello; worker exits are invisible on any fd, so
//                   a SIGCHLD self-pipe joins the poll set and the
//                   coordinator sweeps waitpid(WNOHANG) when it fires.
//
// Ship protocol over TCP (every step bounded by DegradationPolicy's
// saturating backoff, so a dropped connection retries deterministically):
//
//   worker -> coord   hello: u32 'SKH1', u32 worker, u32 generation
//   coord  -> worker  hello-ack (1 byte) — or close, which the worker
//                     treats as a transient failure and redials
//   worker -> coord   SKF1 frame bytes, then shutdown(SHUT_WR)
//   coord  -> worker  fin-ack (1 byte) after decoding the frame (sent for
//                     CRC-rejected frames too: rejection is a verdict, not
//                     a transport failure); a close without fin-ack makes
//                     the worker redial and ship the frame again
//
// The hello-ack makes the `socket-drop=S` fault deterministic: the
// coordinator drops worker S's first connection before acking, the worker
// always observes the drop at the same protocol point, redials, and the
// run converges byte-identically to an undropped one.
//
// SIGPIPE discipline: workers ignore SIGPIPE (IgnoreSigPipe below) and
// socket sends use MSG_NOSIGNAL, so a coordinator that died mid-ship
// surfaces as EPIPE -> kWorkerPermanentErrorExit -> quarantine, never as a
// signal death that would burn respawns on a hopeless retry.

#ifndef STREAMKC_DIST_TRANSPORT_H_
#define STREAMKC_DIST_TRANSPORT_H_

#include <poll.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dist/frame.h"
#include "dist/worker_counters.h"
#include "runtime/sharded_pipeline.h"

namespace streamkc {

// Sets SIGPIPE to SIG_IGN (idempotent). Called by the worker before
// shipping and by the coordinator before acking: a peer that died must
// surface as a write error, not kill the process.
void IgnoreSigPipe();

enum class TransportKind { kPipe, kTcp };

const char* TransportKindName(TransportKind kind);
bool ParseTransportKind(const std::string& name, TransportKind* out);

struct TransportConfig {
  TransportKind kind = TransportKind::kPipe;
  // TCP only. listen_addr is the coordinator's bind address ("host:port",
  // port 0 = ephemeral); connect_addr is what workers dial (empty = the
  // actual bound address, with a wildcard host rewritten to 127.0.0.1).
  std::string listen_addr = "127.0.0.1:0";
  std::string connect_addr;
};

// Worker hello, sent before the frame so the coordinator can bind the
// connection to a slot: u32 magic, u32 worker, u32 generation (LE).
inline constexpr uint32_t kHelloMagic = 0x534b4831;  // "SKH1"
inline constexpr size_t kHelloBytes = 12;
inline constexpr char kTransportAck = 0x06;

void EncodeHello(uint32_t worker, uint32_t generation, char out[kHelloBytes]);
bool DecodeHello(const char* bytes, uint32_t* worker, uint32_t* generation);

class Transport {
 public:
  // The fd pair carried across fork(). Pipe: coord_fd = read end,
  // child_fd = write end. TCP: both -1 (the child dials instead).
  struct Channel {
    int coord_fd = -1;
    int child_fd = -1;
  };
  // A connection the coordinator has identified (hello complete, acked)
  // and should bind to worker `worker`'s slot with a fresh FrameDecoder.
  struct Ready {
    uint32_t worker = 0;
    uint32_t generation = 0;
    int fd = -1;
  };
  struct Stats {
    uint64_t connections_accepted = 0;  // hellos bound to a slot
    uint64_t socket_drops = 0;          // connections dropped by fault plan
  };

  virtual ~Transport() = default;
  virtual const char* name() const = 0;

  // Coordinator setup before the first fork (TCP: bind/listen + SIGCHLD
  // self-pipe). Returns false with *error on failure.
  virtual bool StartRun(std::string* error) = 0;

  // Pre-fork channel for (worker, generation).
  virtual Channel MakeChannel(uint32_t worker, uint32_t generation) = 0;
  // Parent after fork: close the child's end.
  virtual void OnParentFork(Channel* ch) = 0;
  // Child after fork: close coordinator-only fds (pipe read end; TCP
  // listen fd, pending connections, self-pipe) and restore SIGCHLD.
  virtual void OnChildFork(const Channel& ch) = 0;

  // True when worker exits are only visible via waitpid sweeps (TCP); the
  // pipe transport signals exits as EOF on the slot fd instead.
  virtual bool NeedsExitSweep() const { return false; }

  // Reactor integration: transport-owned fds appended to the poll set
  // (self-pipe, listen fd, half-open connections), and the handler for
  // their revents. Completed handshakes land in *ready; returns true when
  // a waitpid(WNOHANG) sweep should run (SIGCHLD fired).
  virtual void AppendPollFds(std::vector<pollfd>* pfds) { (void)pfds; }
  virtual bool HandlePollFds(const pollfd* pfds, size_t n,
                             std::vector<Ready>* ready) {
    (void)pfds;
    (void)n;
    (void)ready;
    return false;
  }

  // Coordinator: finish a slot connection after its EOF. `acked` = a
  // complete frame (valid or CRC-rejected) was decoded and the worker may
  // exit; false = torn connection, the worker should redial.
  virtual void FinishShipFd(int fd, bool acked);

  // Child: ships the final frame, retrying transient transport failures
  // (refused connect, dropped connection, missing ack) with the policy's
  // saturating backoff; each retry bumps counters->connect_retries and
  // make_frame re-serializes the payload so the shipped counters are
  // current. Returns true once the coordinator acknowledged the frame;
  // false = permanent failure (the caller exits
  // kWorkerPermanentErrorExit).
  virtual bool ShipFinalFrame(
      const Channel& ch, uint32_t worker, uint32_t generation,
      const DegradationPolicy& policy, WorkerCounters* counters,
      const std::function<Frame(const WorkerCounters&)>& make_frame) = 0;

  // socket-drop hook: called once per completed hello with the worker id
  // and its 0-based connection ordinal; return true to drop (close without
  // hello-ack). Unset = never drop.
  void set_drop_hook(std::function<bool(uint32_t, uint64_t)> hook) {
    drop_hook_ = std::move(hook);
  }

  virtual Stats stats() const { return {}; }
  // TCP: the actual bound "host:port" after StartRun (tests read the
  // ephemeral port from here); empty for pipe.
  virtual std::string bound_address() const { return ""; }

 protected:
  std::function<bool(uint32_t, uint64_t)> drop_hook_;
};

std::unique_ptr<Transport> MakeTransport(const TransportConfig& config);

// The coordinator's poll timeout policy (satellite of the transport work;
// unit-tested in dist_transport_test). With every exit observable through
// the poll set — pipe EOF or the TCP self-pipe — an idle tree needs no
// wakeups at all, so auto (0) means infinite unless a timed deadline is
// pending (none exist today; the parameter keeps the contract explicit).
inline int ResolvePollTimeoutMs(int configured_ms, bool deadline_pending) {
  if (configured_ms > 0) return configured_ms;
  if (configured_ms < 0) return -1;
  return deadline_pending ? 1000 : -1;
}

}  // namespace streamkc

#endif  // STREAMKC_DIST_TRANSPORT_H_
