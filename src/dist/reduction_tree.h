// Tree-shaped merge reduction over collected worker states.
//
// The in-process pipeline folds shard states flat (state[0].Merge(state[i])
// in index order): O(W) sequential merges through one accumulator. At
// multi-process scale the coordinator replaces that with a bottom-up tree
// of configurable arity: each level groups the surviving states into runs
// of `arity` consecutive (by worker index) members and merges each run into
// its lowest index, halving-or-better the population per level until one
// root remains. Depth is ceil(log_arity(W)) — the shape a multi-node
// deployment would execute across hosts, exercised here in one process so
// its invariants are test-pinned before the transport gets interesting.
//
// Determinism: grouping is purely positional (ascending surviving indices),
// and every Merge in this codebase is commutative & associative over
// seed-coordinated states, so the root state is byte-identical to the flat
// fold and to the inline pass — the differential battery's anchor.

#ifndef STREAMKC_DIST_REDUCTION_TREE_H_
#define STREAMKC_DIST_REDUCTION_TREE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/check.h"
#include "util/stopwatch.h"

namespace streamkc {

struct MergeTreeStats {
  uint32_t depth = 0;     // levels executed (0 when <= 1 state survives)
  uint64_t merges = 0;    // pairwise Merge() calls across all levels
  uint64_t merge_ns = 0;  // wall time inside Merge() calls
};

// Expected depth of the reduction for `leaves` surviving states: the
// validator cross-checks the recorded depth against this closed form.
inline uint32_t MergeTreeDepth(size_t leaves, uint32_t arity) {
  CHECK_GE(arity, 2u);
  uint32_t depth = 0;
  while (leaves > 1) {
    leaves = (leaves + arity - 1) / arity;
    ++depth;
  }
  return depth;
}

// Merges the non-null entries of `states` into a single root, returning its
// index (the lowest surviving index), or SIZE_MAX when every entry is null.
// Consumed entries are reset to null; `stats` (optional) accumulates.
template <typename State>
size_t TreeMerge(std::vector<std::unique_ptr<State>>* states, uint32_t arity,
                 MergeTreeStats* stats) {
  CHECK_GE(arity, 2u);
  std::vector<size_t> alive;
  for (size_t i = 0; i < states->size(); ++i) {
    if ((*states)[i] != nullptr) alive.push_back(i);
  }
  if (alive.empty()) return SIZE_MAX;

  Stopwatch sw;
  while (alive.size() > 1) {
    std::vector<size_t> next;
    for (size_t g = 0; g < alive.size(); g += arity) {
      const size_t root = alive[g];
      for (size_t j = g + 1; j < alive.size() && j < g + arity; ++j) {
        sw.Restart();
        (*states)[root]->Merge(*(*states)[alive[j]]);
        if (stats != nullptr) {
          stats->merge_ns +=
              static_cast<uint64_t>(sw.ElapsedSeconds() * 1e9);
          ++stats->merges;
        }
        (*states)[alive[j]].reset();
      }
      next.push_back(root);
    }
    alive.swap(next);
    if (stats != nullptr) ++stats->depth;
  }
  return alive.front();
}

}  // namespace streamkc

#endif  // STREAMKC_DIST_REDUCTION_TREE_H_
