// ProcessReductionTree: multi-process partitioned ingest with a tree merge.
//
// The coordinator fork()s W worker processes (no exec — the child runs the
// templated worker loop directly, which keeps the harness CI-friendly: no
// MPI, no re-entry protocol, and in-memory test corpora ride across the
// fork for free). Each worker owns a contiguous block of the caller's
// segments (worker w gets [S*w/W, S*(w+1)/W) — the SegmentedTextStream
// byte-range convention), ingests them through the batched ProcessBatch
// path, and ships ONE final frame to the coordinator: the shipped
// WorkerCounters block followed by the State's Save() blob, framed with
// length + CRC + MergeFingerprint (dist/frame.h). HOW the frame travels is
// the Transport's business (dist/transport.h): over a per-worker pipe, or
// over TCP where the worker dials the coordinator when its frame is ready
// (`DistOptions::transport`). The single-threaded coordinator poll(2)s the
// per-worker fds plus whatever reactor fds the transport owns (listen
// socket, half-open connections, SIGCHLD self-pipe), reassembles frames
// with a per-connection FrameDecoder, and reduces the surviving states
// through the arity-configurable merge tree (dist/reduction_tree.h).
//
// Crash recovery: with a checkpoint_dir configured, workers write a
// checksummed checkpoint (dist/checkpoint.h) every checkpoint_every
// committed segments. A worker that dies mid-stream (crash, CHECK-abort,
// or a FaultPlan kill-shard) is respawned — up to max_respawns times —
// and the respawned incarnation loads the checkpoint, then re-ingests only
// the segments past the committed prefix. Because the checkpoint holds
// exactly the committed prefix and the dead incarnation's uncommitted work
// died with its address space, every segment lands in the final state
// exactly once: a kill-and-respawn run is byte-identical to a never-killed
// one. Without a checkpoint — or when the checkpoint file itself is torn
// (host crash mid-write) and the loader rejects it — the respawn
// re-ingests from scratch: slower, same answer.
//
// FaultPlan integration (all seed-deterministic, replayable from the spec):
//   kill-shard=W@B    worker W's FIRST incarnation _exit()s before its B-th
//                     batch (mid-stream; respawned incarnations run clean,
//                     so the recovery converges deterministically).
//   corrupt-merge=W   worker W's reported fingerprint is corrupted at the
//                     coordinator; the majority vote across workers detects
//                     it and quarantines W out of the merge.
//   corrupt-frame=W   worker W's frame bytes are corrupted in transport;
//                     the CRC rejects the frame and W is quarantined (a
//                     transport that corrupts deterministically would
//                     corrupt every respawn too, so no respawn is spent).
//   socket-drop=W     TCP only: the coordinator drops worker W's first
//                     connection before acking its hello; the worker
//                     redials with the DegradationPolicy backoff and the
//                     run converges byte-identically (with the retry
//                     budget at zero the worker gives up permanently and
//                     is quarantined, not crashed).
//   stream faults     apply inside the worker via the caller's opener
//                     wrapping segments in FaultInjectingStream.
//
// Failure matrix (who detects, what happens):
//   crash / kill      coordinator sees EOF without a frame (pipe), a torn
//                     connection, or a SIGCHLD-sweep waitpid (TCP, worker
//                     died before dialing) -> respawn, then quarantine
//                     once max_respawns is exhausted
//   exit(kPermanentErrorExit) (e.g. parse error, transport retry budget
//                     exhausted) -> quarantine immediately (deterministic
//                     failures don't earn respawns)
//   SIGPIPE           never: workers ignore it (dist/transport.h), so a
//                     dead coordinator surfaces as a write error -> the
//                     permanent-error path above, not a signal death
//   CRC-corrupt frame -> quarantine immediately
//   fingerprint minority -> quarantine after the majority vote
//   corrupt checkpoint -> the respawned worker REJECTS the blob, counts
//                     checkpoints_rejected, and re-ingests its block from
//                     scratch — it still converges (the pre-fix CHECK-abort
//                     turned one torn file into a respawn loop that
//                     quarantined the worker forever)
//
// Requirements on State: Process/ProcessBatch, Merge, MergeFingerprint,
// Save(ostream&), static Load(istream&) — the serialize.h sketch contract.

#ifndef STREAMKC_DIST_PROCESS_TREE_H_
#define STREAMKC_DIST_PROCESS_TREE_H_

#include <errno.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dist/checkpoint.h"
#include "dist/dist_metrics.h"
#include "dist/frame.h"
#include "dist/reduction_tree.h"
#include "dist/transport.h"
#include "dist/worker_counters.h"
#include "fault/fault_injector.h"
#include "runtime/edge_batch.h"
#include "runtime/sharded_pipeline.h"
#include "stream/edge_stream.h"
#include "util/check.h"
#include "util/stopwatch.h"

namespace streamkc {

struct DistOptions {
  uint32_t num_workers = 4;
  uint32_t merge_arity = 4;
  size_t batch_size = 4096;
  // Checkpoint cadence in committed segments; 0 disables checkpointing
  // (a respawned worker then re-ingests its whole block from scratch).
  // When > 0, checkpoint_dir must name an existing writable directory.
  uint32_t checkpoint_every = 0;
  std::string checkpoint_dir;
  // Respawn budget per worker before it is quarantined out of the merge.
  uint32_t max_respawns = 2;
  // Strict mode: any quarantine exits(1) after the reduction — the dist
  // analogue of DegradationPolicy::strict (a successful respawn is
  // recovery, not degradation, and does not trip strict mode).
  bool strict = false;
  // Bounded retry/backoff for transient stream errors inside workers, and
  // for transient transport failures (refused/dropped TCP connections)
  // when shipping the final frame.
  DegradationPolicy degradation;
  // How worker frames travel to the coordinator (pipe or tcp + addresses).
  TransportConfig transport;
  // Coordinator poll(2) timeout: 0 = auto (infinite — every worker exit is
  // observable through the poll set, so an idle tree takes zero wakeups),
  // > 0 = fixed milliseconds, -1 = explicit infinite. See
  // ResolvePollTimeoutMs in dist/transport.h.
  int poll_timeout_ms = 0;
  // Optional deterministic fault plan (kill/corrupt/drop hooks above). The
  // injector must outlive Run(); its counters land in the coordinator's
  // registry (worker-side registries die with the worker).
  const FaultInjector* fault_injector = nullptr;
};

// Exit codes the worker protocol reserves. Anything else (signals
// included) is treated as a crash and earns a respawn.
inline constexpr int kWorkerOkExit = 0;
inline constexpr int kWorkerKilledExit = 6;          // injected kill fault
inline constexpr int kWorkerPermanentErrorExit = 9;  // deterministic failure

template <typename State>
class ProcessReductionTree {
 public:
  // Opens segment i afresh; called in the CHILD after fork, so the lambda
  // may capture parent memory (copy-on-write) and may wrap the stream in
  // FaultInjectingStream for plans with stream faults.
  using SegmentOpener = std::function<std::unique_ptr<EdgeStream>(uint32_t)>;
  using Factory = std::function<State(uint32_t worker)>;

  ProcessReductionTree(const DistOptions& options, Factory factory)
      : options_(options), factory_(std::move(factory)) {
    CHECK_GE(options_.num_workers, 1u);
    CHECK_GE(options_.merge_arity, 2u);
    CHECK_GE(options_.batch_size, size_t{1});
    if (options_.checkpoint_every > 0) {
      CHECK(!options_.checkpoint_dir.empty());
    }
  }

  // Partitions [0, num_segments) across the workers, runs the fleet, and
  // returns the tree-merged state. num_segments >= num_workers keeps every
  // worker busy; fewer segments leave the tail workers idle (legal).
  State Run(uint32_t num_segments, const SegmentOpener& open) {
    CHECK_GE(num_segments, 1u);
    Stopwatch wall;
    metrics_ = DistMetrics();
    metrics_.num_workers = options_.num_workers;
    metrics_.merge_arity = options_.merge_arity;
    metrics_.num_segments = num_segments;
    metrics_.workers.resize(options_.num_workers);

    transport_ = MakeTransport(options_.transport);
    metrics_.transport = transport_->name();
    {
      std::string terr;
      if (!transport_->StartRun(&terr)) {
        std::fprintf(stderr, "dist: transport start failed: %s\n",
                     terr.c_str());
        CHECK(false);
      }
    }
    if (options_.fault_injector != nullptr) {
      const FaultInjector* inj = options_.fault_injector;
      transport_->set_drop_hook([inj](uint32_t w, uint64_t nth) {
        // Only the FIRST connection is dropped: like kill-shard, the plan
        // names one deterministic fault point and the retry converges.
        if (nth > 0 || !inj->DropsSocket(w)) return false;
        inj->Count(FaultInjector::kFaultSocketDrop);
        return true;
      });
    }

    std::vector<Slot> slots(options_.num_workers);
    for (uint32_t w = 0; w < options_.num_workers; ++w) {
      DistWorkerRow& row = metrics_.workers[w];
      row.worker = w;
      row.segments_assigned = SegmentEnd(w, num_segments) -
                              SegmentBegin(w, num_segments);
      Spawn(w, num_segments, open, &slots);
    }
    PumpUntilResolved(&slots, num_segments, open);

    const Transport::Stats tstats = transport_->stats();
    metrics_.connections_accepted = tstats.connections_accepted;
    metrics_.socket_drops = tstats.socket_drops;
    transport_.reset();  // close the listen socket, restore SIGCHLD

    // Majority vote over the reported fingerprints (the in-process
    // pipeline's corruption detection, applied across process boundaries).
    // corrupt-merge faults flip the reported value before the vote, so the
    // vote — not a cross-check against the payload — must catch them.
    std::vector<uint32_t> voters;
    for (uint32_t w = 0; w < options_.num_workers; ++w) {
      if (slots[w].state == Slot::kDone) voters.push_back(w);
    }
    if (!voters.empty()) {
      uint64_t majority = 0;
      size_t best = 0;
      for (uint32_t v : voters) {
        size_t count = 0;
        for (uint32_t u : voters) {
          if (slots[u].frame.fingerprint == slots[v].frame.fingerprint) {
            ++count;
          }
        }
        if (count > best) {
          best = count;
          majority = slots[v].frame.fingerprint;
        }
      }
      for (uint32_t v : voters) {
        if (slots[v].frame.fingerprint != majority) {
          std::fprintf(stderr,
                       "dist: worker %u merge fingerprint %016llx "
                       "disagrees with majority %016llx; quarantined\n",
                       v,
                       (unsigned long long)slots[v].frame.fingerprint,
                       (unsigned long long)majority);
          metrics_.workers[v].fingerprint_corrupted = true;
          Quarantine(v, &slots[v]);
        }
      }
    }

    // Deserialize survivors: counters block first, then the state blob.
    std::vector<std::unique_ptr<State>> states(options_.num_workers);
    for (uint32_t w = 0; w < options_.num_workers; ++w) {
      if (slots[w].state != Slot::kDone) continue;
      std::istringstream is(slots[w].frame.payload);
      metrics_.workers[w].counters = WorkerCounters::Load(is);
      states[w] = std::make_unique<State>(State::Load(is));
      ++metrics_.frames_received;
    }

    const size_t root =
        TreeMerge(&states, options_.merge_arity, &metrics_.tree);
    metrics_.wall_ns = static_cast<uint64_t>(wall.ElapsedSeconds() * 1e9);
    if (root == SIZE_MAX) {
      std::fprintf(stderr,
                   "dist: every worker quarantined; no state to merge\n");
      std::exit(1);
    }
    if (options_.strict && metrics_.WorkersQuarantined() > 0) {
      std::fprintf(stderr,
                   "dist: strict mode: %u workers quarantined\n",
                   metrics_.WorkersQuarantined());
      std::exit(1);
    }
    return std::move(*states[root]);
  }

  const DistMetrics& metrics() const { return metrics_; }

 private:
  struct Slot {
    enum { kRunning, kDone, kQuarantined } state = kRunning;
    pid_t pid = -1;
    int fd = -1;
    uint32_t generation = 0;
    FrameDecoder decoder;
    Frame frame;
    bool frame_ready = false;
  };

  uint32_t SegmentBegin(uint32_t w, uint32_t num_segments) const {
    return static_cast<uint32_t>(uint64_t{num_segments} * w /
                                 options_.num_workers);
  }
  uint32_t SegmentEnd(uint32_t w, uint32_t num_segments) const {
    return static_cast<uint32_t>(uint64_t{num_segments} * (w + 1) /
                                 options_.num_workers);
  }

  void Spawn(uint32_t w, uint32_t num_segments, const SegmentOpener& open,
             std::vector<Slot>* slots) {
    Slot* slot = &(*slots)[w];
    Transport::Channel ch = transport_->MakeChannel(w, slot->generation);
    // Flush stdio before forking so buffered output is not duplicated into
    // the child (the child bypasses exit handlers with _exit, but anything
    // it prints itself would otherwise ride on stale parent buffers).
    std::fflush(nullptr);
    pid_t pid = ::fork();
    CHECK_GE(pid, 0);
    if (pid == 0) {
      // Drop every coordinator-side fd this child inherited: the
      // transport's reactor fds, and other workers' slot fds — a child
      // holding a copy of another worker's socket or pipe would hold that
      // worker's EOF hostage for this child's whole lifetime.
      transport_->OnChildFork(ch);
      for (Slot& other : *slots) {
        if (other.fd >= 0) ::close(other.fd);
      }
      WorkerMain(w, slot->generation, ch, num_segments, open);
    }
    transport_->OnParentFork(&ch);
    slot->pid = pid;
    slot->fd = ch.coord_fd;  // pipe read end; -1 for TCP until the dial-in
    slot->decoder = FrameDecoder();
    slot->frame_ready = false;
    slot->state = Slot::kRunning;
  }

  void Quarantine(uint32_t w, Slot* slot) {
    slot->state = Slot::kQuarantined;
    DistWorkerRow& row = metrics_.workers[w];
    row.quarantined = true;
    // A quarantined worker contributes nothing to the merged result, so
    // its shipped counters (if any frame landed) must not enter the
    // conservation sums — zero the row's counters block.
    row.counters = WorkerCounters();
  }

  // Single-threaded event loop: drain slot fds, pump the transport's
  // reactor fds (accepts, hellos, SIGCHLD self-pipe), reap exits, respawn
  // or quarantine failures, until every worker is kDone or kQuarantined.
  void PumpUntilResolved(std::vector<Slot>* slots, uint32_t num_segments,
                         const SegmentOpener& open) {
    const FaultInjector* inj = options_.fault_injector;
    const bool sweep_exits = transport_->NeedsExitSweep();
    for (;;) {
      bool any_running = false;
      std::vector<pollfd> pfds;
      std::vector<uint32_t> owner;
      for (uint32_t w = 0; w < slots->size(); ++w) {
        Slot& s = (*slots)[w];
        if (s.state != Slot::kRunning) continue;
        any_running = true;
        if (s.fd >= 0) {
          pfds.push_back(pollfd{s.fd, POLLIN, 0});
          owner.push_back(w);
        }
      }
      if (!any_running) return;
      const size_t slot_fds = pfds.size();
      transport_->AppendPollFds(&pfds);
      // Every running worker is observable: through its slot fd (pipe) or
      // through the transport's self-pipe/listen fds (TCP) — which is why
      // the auto timeout below can be infinite.
      CHECK(!pfds.empty());
      int ready = ::poll(pfds.data(), pfds.size(),
                         ResolvePollTimeoutMs(options_.poll_timeout_ms,
                                              /*deadline_pending=*/false));
      ++metrics_.poll_wakeups;
      if (ready < 0) {
        CHECK_EQ(errno, EINTR);
        continue;
      }
      // Transport events first: a fresh connection binds to its slot (with
      // a fresh per-connection FrameDecoder) before any draining.
      std::vector<Transport::Ready> bound;
      const bool sweep = transport_->HandlePollFds(
          pfds.data() + slot_fds, pfds.size() - slot_fds, &bound);
      for (const Transport::Ready& r : bound) BindConnection(slots, r);
      for (size_t i = 0; i < slot_fds; ++i) {
        if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const uint32_t w = owner[i];
        Slot& s = (*slots)[w];
        if (s.state != Slot::kRunning || s.fd != pfds[i].fd) continue;
        char buf[65536];
        bool eof = false;
        for (;;) {
          ssize_t n = ::read(s.fd, buf, sizeof(buf));
          if (n > 0) {
            metrics_.workers[w].bytes_shipped += static_cast<uint64_t>(n);
            s.decoder.Feed(buf, static_cast<size_t>(n));
            if (static_cast<size_t>(n) < sizeof(buf)) break;
            continue;
          }
          if (n == 0) {
            eof = true;
            break;
          }
          CHECK_EQ(errno, EINTR);
        }
        if (!eof) continue;
        if (sweep_exits) {
          ResolveConnectionEof(w, &s, num_segments, open, inj, slots);
        } else {
          ::close(s.fd);
          s.fd = -1;
          ResolveExited(w, &s, num_segments, open, inj, slots);
        }
      }
      if (sweep) SweepExits(slots, num_segments, open, inj);
    }
  }

  // A completed TCP handshake: bind the connection into its worker's slot.
  void BindConnection(std::vector<Slot>* slots, const Transport::Ready& r) {
    if (r.worker >= slots->size()) {
      std::fprintf(stderr, "dist: connection for unknown worker %u dropped\n",
                   r.worker);
      ::close(r.fd);
      return;
    }
    Slot& s = (*slots)[r.worker];
    if (s.state != Slot::kRunning || s.fd >= 0 ||
        r.generation != s.generation) {
      std::fprintf(stderr,
                   "dist: stale connection for worker %u (gen %u) dropped\n",
                   r.worker, r.generation);
      ::close(r.fd);
      return;
    }
    s.fd = r.fd;
    s.decoder = FrameDecoder();  // per-connection reassembly state
    s.frame_ready = false;
  }

  // Pipe EOF: the worker exited. Reap it, then decode and classify.
  void ResolveExited(uint32_t w, Slot* s, uint32_t num_segments,
                     const SegmentOpener& open, const FaultInjector* inj,
                     std::vector<Slot>* slots) {
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(s->pid, &status, 0);
    } while (r < 0 && errno == EINTR);
    CHECK_EQ(r, s->pid);
    s->pid = -1;

    // corrupt-frame transport fault: flip one bit of the received bytes
    // before decoding (deterministic per worker; a transport this broken
    // corrupts every retry too, so the failure goes straight to
    // quarantine via the CRC below).
    std::string err;
    if (inj != nullptr && inj->CorruptsFrame(w) &&
        s->decoder.buffered_bytes() > 0) {
      s->decoder.CorruptForTest();
      inj->Count(FaultInjector::kFaultFrameCorruption);
    }
    FrameDecoder::Status ds = s->decoder.Next(&s->frame, &err);
    ClassifyOutcome(w, s, status, ds, err, num_segments, open, inj, slots);
  }

  // TCP connection EOF: decode what landed, fin-ack a complete frame (the
  // worker is blocked waiting for it), then reap and classify.
  void ResolveConnectionEof(uint32_t w, Slot* s, uint32_t num_segments,
                            const SegmentOpener& open,
                            const FaultInjector* inj,
                            std::vector<Slot>* slots) {
    std::string err;
    if (inj != nullptr && inj->CorruptsFrame(w) &&
        s->decoder.buffered_bytes() > 0) {
      s->decoder.CorruptForTest();
      inj->Count(FaultInjector::kFaultFrameCorruption);
    }
    FrameDecoder::Status ds = s->decoder.Next(&s->frame, &err);
    if (ds == FrameDecoder::Status::kNeedMore) {
      // Torn connection, no complete frame: the worker either died
      // mid-send (reap it right here) or will redial with a fresh
      // connection; either way this one is spent.
      transport_->FinishShipFd(s->fd, /*acked=*/false);
      s->fd = -1;
      s->decoder = FrameDecoder();
      int status = 0;
      pid_t r = ::waitpid(s->pid, &status, WNOHANG);
      if (r == s->pid) {
        s->pid = -1;
        ClassifyOutcome(w, s, status, FrameDecoder::Status::kNeedMore, err,
                        num_segments, open, inj, slots);
      }
      return;
    }
    // Complete frame (valid or CRC-rejected — rejection is a verdict, not
    // a transport failure): fin-ack so the worker exits, then classify
    // exactly as the pipe path does.
    transport_->FinishShipFd(s->fd, /*acked=*/true);
    s->fd = -1;
    int status = 0;
    pid_t r;
    do {
      r = ::waitpid(s->pid, &status, 0);
    } while (r < 0 && errno == EINTR);
    CHECK_EQ(r, s->pid);
    s->pid = -1;
    ClassifyOutcome(w, s, status, ds, err, num_segments, open, inj, slots);
  }

  // SIGCHLD fired (TCP): reap workers that died with no connection bound
  // (crashed before — or between — dials). A slot with a live fd resolves
  // through that fd's EOF instead: a dead worker's socket always EOFs, and
  // the sweep must not steal a frame that is sitting in its decoder.
  void SweepExits(std::vector<Slot>* slots, uint32_t num_segments,
                  const SegmentOpener& open, const FaultInjector* inj) {
    for (uint32_t w = 0; w < slots->size(); ++w) {
      Slot& s = (*slots)[w];
      if (s.state != Slot::kRunning || s.fd >= 0 || s.pid <= 0) continue;
      int status = 0;
      pid_t r = ::waitpid(s.pid, &status, WNOHANG);
      if (r == 0) continue;  // alive: ingesting, dialing, or backing off
      CHECK_EQ(r, s.pid);
      s.pid = -1;
      std::string err;
      ClassifyOutcome(w, &s, status, FrameDecoder::Status::kNeedMore, err,
                      num_segments, open, inj, slots);
    }
  }

  // Shared verdict for a reaped worker, given its exit status and what the
  // decoder made of its bytes — identical across transports, which is what
  // keeps the crash/quarantine matrix differential-testable over both.
  void ClassifyOutcome(uint32_t w, Slot* s, int status,
                       FrameDecoder::Status ds, const std::string& err,
                       uint32_t num_segments, const SegmentOpener& open,
                       const FaultInjector* inj, std::vector<Slot>* slots) {
    const bool clean_exit =
        WIFEXITED(status) && WEXITSTATUS(status) == kWorkerOkExit;

    if (ds == FrameDecoder::Status::kFrame && clean_exit) {
      // corrupt-merge fault: the worker's fingerprint arrives flipped, so
      // only the majority vote (not a payload cross-check) can catch it —
      // the same detection path the in-process pipeline exercises.
      if (inj != nullptr && inj->CorruptsMergeFingerprint(w)) {
        s->frame.fingerprint ^= 0xDEADBEEFu;
        inj->Count(FaultInjector::kFaultMergeCorruption);
      }
      s->state = Slot::kDone;
      return;
    }
    if (ds == FrameDecoder::Status::kCorrupt) {
      std::fprintf(stderr, "dist: worker %u frame rejected: %s\n", w,
                   err.c_str());
      ++metrics_.workers[w].crc_rejections;
      Quarantine(w, s);
      return;
    }
    if (WIFEXITED(status) &&
        WEXITSTATUS(status) == kWorkerPermanentErrorExit) {
      std::fprintf(stderr,
                   "dist: worker %u failed permanently; quarantined\n", w);
      Quarantine(w, s);
      return;
    }
    // Crash (signal, abort, injected kill, or exit without a frame):
    // respawn from the last checkpoint while budget remains.
    if (inj != nullptr && WIFEXITED(status) &&
        WEXITSTATUS(status) == kWorkerKilledExit) {
      inj->Count(FaultInjector::kFaultWorkerDeath);
    }
    DistWorkerRow& row = metrics_.workers[w];
    if (row.respawns >= options_.max_respawns) {
      std::fprintf(stderr,
                   "dist: worker %u crashed with respawn budget exhausted "
                   "(%u used); quarantined\n",
                   w, row.respawns);
      Quarantine(w, s);
      return;
    }
    ++row.respawns;
    ++s->generation;
    std::fprintf(stderr, "dist: worker %u crashed; respawning (%u/%u)\n", w,
                 row.respawns, options_.max_respawns);
    Spawn(w, num_segments, open, slots);
  }

  // ---- Child side -------------------------------------------------------

  [[noreturn]] void WorkerMain(uint32_t w, uint32_t generation,
                               const Transport::Channel& ch,
                               uint32_t num_segments,
                               const SegmentOpener& open) {
    // First thing, before any fd can break: a dead coordinator must
    // surface as a write error on the ship path, never a SIGPIPE death
    // (which would read as a crash and burn respawns on a hopeless retry).
    IgnoreSigPipe();
    const FaultInjector* inj = options_.fault_injector;
    const uint32_t seg_begin = SegmentBegin(w, num_segments);
    const uint32_t seg_end = SegmentEnd(w, num_segments);
    const uint32_t owned = seg_end - seg_begin;

    State state = factory_(w);
    WorkerCounters counters;
    uint64_t start_local = 0;  // owned-segment index to resume from

    const std::string ckpt_path =
        options_.checkpoint_every > 0
            ? CheckpointPath(options_.checkpoint_dir, w)
            : std::string();
    if (generation > 0 && !ckpt_path.empty() &&
        CheckpointFileExists(ckpt_path)) {
      Checkpoint ckpt;
      if (TryLoadCheckpointFile(ckpt_path, &ckpt) && ckpt.worker == w &&
          ckpt.segments_done <= uint64_t{owned}) {
        std::istringstream is(ckpt.state_blob);
        state = State::Load(is);
        CHECK_EQ(state.MergeFingerprint(), ckpt.fingerprint);
        counters = ckpt.counters;
        start_local = ckpt.segments_done;
        ++counters.checkpoints_loaded;
      } else {
        // Torn or foreign blob (host crash mid-write beat the fsync, or a
        // stale file from another topology): reject it and re-ingest the
        // whole block from scratch — slower, same answer. CHECK-aborting
        // here would turn one bad file into a respawn loop that can never
        // converge.
        std::fprintf(stderr,
                     "dist: worker %u checkpoint rejected; re-ingesting "
                     "from scratch\n",
                     w);
        ++counters.checkpoints_rejected;
      }
    }

    // Only the FIRST incarnation honors the kill fault: the plan names a
    // deterministic death point, and an immortal sticky fault would kill
    // every respawn at the same spot forever. batches_seen counts from
    // this incarnation's start, so a generation-0 kill is a pure function
    // of (plan, segment assignment, batch_size).
    const bool killable = inj != nullptr && generation == 0;
    uint64_t batches_seen = 0;

    EdgeBatch batch(options_.batch_size);
    for (uint64_t local = start_local; local < owned; ++local) {
      std::unique_ptr<EdgeStream> stream =
          open(seg_begin + static_cast<uint32_t>(local));
      if (stream == nullptr || !stream->ok()) {
        std::fprintf(stderr, "dist: worker %u cannot open segment %llu\n", w,
                     (unsigned long long)(seg_begin + local));
        ::_exit(kWorkerPermanentErrorExit);
      }
      if (!IngestSegment(w, stream.get(), &state, &counters, &batch,
                         killable, &batches_seen)) {
        ::_exit(kWorkerPermanentErrorExit);
      }
      ++counters.segments_done;
      const uint64_t committed = local + 1;
      if (!ckpt_path.empty() && committed < owned &&
          committed % options_.checkpoint_every == 0) {
        ++counters.checkpoints_written;
        Checkpoint ckpt;
        ckpt.worker = w;
        ckpt.segments_done = committed;
        ckpt.counters = counters;
        ckpt.fingerprint = state.MergeFingerprint();
        std::ostringstream os;
        state.Save(os);
        ckpt.state_blob = os.str();
        WriteCheckpointFile(ckpt_path, ckpt);
      }
    }

    const uint64_t fingerprint = state.MergeFingerprint();
    std::ostringstream state_os;
    state.Save(state_os);
    const std::string state_blob = state_os.str();
    // The payload is re-serialized per ship attempt: a TCP retry bumps
    // connect_retries, and the shipped counters must describe the attempt
    // that actually landed. The state bytes are identical every time.
    const bool shipped = transport_->ShipFinalFrame(
        ch, w, generation, options_.degradation, &counters,
        [&](const WorkerCounters& c) {
          Frame frame;
          frame.fingerprint = fingerprint;
          std::ostringstream payload;
          c.Save(payload);
          payload.write(state_blob.data(),
                        static_cast<std::streamsize>(state_blob.size()));
          frame.payload = payload.str();
          return frame;
        });
    ::_exit(shipped ? kWorkerOkExit : kWorkerPermanentErrorExit);
  }

  // Batched ingest of one segment with bounded retry on transient errors.
  // Returns false on a non-transient stream error (parse failure).
  bool IngestSegment(uint32_t w, EdgeStream* stream, State* state,
                     WorkerCounters* counters, EdgeBatch* batch,
                     bool killable, uint64_t* batches_seen) {
    const FaultInjector* inj = options_.fault_injector;
    const DegradationPolicy& pol = options_.degradation;
    uint32_t retries = 0;
    uint64_t backoff = pol.initial_backoff_ns;
    for (;;) {
      batch->Clear();
      Edge e;
      bool at_end = false;
      while (batch->size() < options_.batch_size) {
        if (stream->Next(&e)) {
          batch->edges.push_back(e);
          retries = 0;
          backoff = pol.initial_backoff_ns;
          continue;
        }
        if (stream->ok()) {
          at_end = true;
          break;
        }
        if (!stream->transient()) {
          std::fprintf(stderr, "dist: worker %u stream error: %s\n", w,
                       stream->StatusMessage().c_str());
          return false;
        }
        if (retries >= pol.max_stream_retries) {
          // Retry budget exhausted: truncate the segment (the in-flight
          // batch still commits) — the pipeline's degradation semantics.
          counters->truncated_segments += 1;
          at_end = true;
          break;
        }
        ++retries;
        counters->stream_retries += 1;
        std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
        backoff = std::min(backoff * 2, pol.max_backoff_ns);
      }
      if (!batch->empty()) {
        if (killable && inj->WorkerDiesAt(w, *batches_seen)) {
          std::fprintf(stderr,
                       "dist: worker %u killed by fault plan at batch "
                       "%llu\n",
                       w, (unsigned long long)*batches_seen);
          ::_exit(kWorkerKilledExit);
        }
        ++*batches_seen;
        batch->Prefold();
        state->ProcessBatch(batch->View());
        counters->edges_ingested += batch->size();
        counters->edges_processed += batch->size();
        counters->batches += 1;
      }
      if (at_end) return true;
    }
  }

  DistOptions options_;
  Factory factory_;
  DistMetrics metrics_;
  std::unique_ptr<Transport> transport_;
};

}  // namespace streamkc

#endif  // STREAMKC_DIST_PROCESS_TREE_H_
