#include "dist/transport.h"

#include <signal.h>
#include <unistd.h>

#include <cstring>

#include "util/check.h"

namespace streamkc {

namespace internal {
// Defined in socket_transport.cc.
std::unique_ptr<Transport> MakeTcpTransport(const TransportConfig& config);
}  // namespace internal

void IgnoreSigPipe() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = SIG_IGN;
  CHECK_EQ(::sigaction(SIGPIPE, &sa, nullptr), 0);
}

const char* TransportKindName(TransportKind kind) {
  return kind == TransportKind::kTcp ? "tcp" : "pipe";
}

bool ParseTransportKind(const std::string& name, TransportKind* out) {
  if (name == "pipe") {
    *out = TransportKind::kPipe;
    return true;
  }
  if (name == "tcp") {
    *out = TransportKind::kTcp;
    return true;
  }
  return false;
}

void EncodeHello(uint32_t worker, uint32_t generation,
                 char out[kHelloBytes]) {
  auto put32 = [&](size_t off, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out[off + static_cast<size_t>(i)] = static_cast<char>(v >> (8 * i));
    }
  };
  put32(0, kHelloMagic);
  put32(4, worker);
  put32(8, generation);
}

bool DecodeHello(const char* bytes, uint32_t* worker, uint32_t* generation) {
  auto get32 = [&](size_t off) {
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = v << 8 | static_cast<unsigned char>(bytes[off + static_cast<size_t>(i)]);
    }
    return v;
  };
  if (get32(0) != kHelloMagic) return false;
  *worker = get32(4);
  *generation = get32(8);
  return true;
}

void Transport::FinishShipFd(int fd, bool acked) {
  (void)acked;
  if (fd >= 0) ::close(fd);
}

namespace {

// The original single-box transport: one pipe per worker, write end
// inherited through fork, one frame, close, exit. EOF on the read end IS
// the exit notification, so no extra reactor fds and no exit sweep.
class PipeTransport : public Transport {
 public:
  const char* name() const override { return "pipe"; }

  bool StartRun(std::string* error) override {
    (void)error;
    return true;
  }

  Channel MakeChannel(uint32_t worker, uint32_t generation) override {
    (void)worker;
    (void)generation;
    int fds[2];
    CHECK_EQ(::pipe(fds), 0);
    Channel ch;
    ch.coord_fd = fds[0];
    ch.child_fd = fds[1];
    return ch;
  }

  void OnParentFork(Channel* ch) override {
    ::close(ch->child_fd);
    ch->child_fd = -1;
  }

  void OnChildFork(const Channel& ch) override { ::close(ch.coord_fd); }

  bool ShipFinalFrame(const Channel& ch, uint32_t worker,
                      uint32_t generation, const DegradationPolicy& policy,
                      WorkerCounters* counters,
                      const std::function<Frame(const WorkerCounters&)>&
                          make_frame) override {
    (void)worker;
    (void)generation;
    (void)policy;
    // A coordinator that closed the read end must surface as a write
    // error (EPIPE) -> permanent failure, never a SIGPIPE death: a signal
    // death reads as a crash and burns respawns on a hopeless retry.
    IgnoreSigPipe();
    if (!WriteFrameToFd(ch.child_fd, make_frame(*counters))) return false;
    ::close(ch.child_fd);
    return true;
  }
};

}  // namespace

std::unique_ptr<Transport> MakeTransport(const TransportConfig& config) {
  if (config.kind == TransportKind::kTcp) {
    return internal::MakeTcpTransport(config);
  }
  return std::make_unique<PipeTransport>();
}

}  // namespace streamkc
