// TCP implementation of dist/transport.h: workers dial the coordinator and
// ship their final frame over a socket. See transport.h for the protocol
// (hello / hello-ack / frame / fin-ack) and the determinism argument.

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "dist/transport.h"
#include "util/check.h"

namespace streamkc {
namespace {

// ---- SIGCHLD self-pipe ---------------------------------------------------
// poll(2) cannot see a child exit, so the handler writes one byte into a
// nonblocking pipe that IS in the poll set; the coordinator drains it and
// sweeps waitpid(WNOHANG). One coordinator per process (the tree is
// single-threaded and runs alone), so process-global state is fine.

int g_sigchld_rfd = -1;
int g_sigchld_wfd = -1;
struct sigaction g_old_sigchld;

void SigchldHandler(int) {
  const int saved_errno = errno;
  if (g_sigchld_wfd >= 0) {
    char b = 0;
    // A full pipe is fine: one unread byte already forces a sweep.
    [[maybe_unused]] ssize_t r = ::write(g_sigchld_wfd, &b, 1);
  }
  errno = saved_errno;
}

void SetNonBlocking(int fd, bool on) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  CHECK_GE(flags, 0);
  flags = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  CHECK_EQ(::fcntl(fd, F_SETFL, flags), 0);
}

int InstallSigchldSelfPipe() {
  CHECK_EQ(g_sigchld_wfd, -1);  // one live TCP coordinator at a time
  int fds[2];
  CHECK_EQ(::pipe(fds), 0);
  SetNonBlocking(fds[0], true);
  SetNonBlocking(fds[1], true);
  g_sigchld_rfd = fds[0];
  g_sigchld_wfd = fds[1];
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = SigchldHandler;
  sa.sa_flags = SA_RESTART;
  ::sigemptyset(&sa.sa_mask);
  CHECK_EQ(::sigaction(SIGCHLD, &sa, &g_old_sigchld), 0);
  return fds[0];
}

void UninstallSigchldSelfPipe() {
  if (g_sigchld_wfd < 0) return;
  ::sigaction(SIGCHLD, &g_old_sigchld, nullptr);
  ::close(g_sigchld_rfd);
  ::close(g_sigchld_wfd);
  g_sigchld_rfd = -1;
  g_sigchld_wfd = -1;
}

// ---- Address helpers (IPv4 "host:port") ----------------------------------

bool ParseHostPort(const std::string& spec, bool listen_side,
                   sockaddr_in* out, std::string* error) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    *error = "address '" + spec + "' is not host:port";
    return false;
  }
  const std::string host = spec.substr(0, colon);
  const std::string port_s = spec.substr(colon + 1);
  char* end = nullptr;
  errno = 0;
  const unsigned long port = std::strtoul(port_s.c_str(), &end, 10);
  if (port_s.empty() || errno != 0 || end != port_s.c_str() + port_s.size() ||
      port > 65535) {
    *error = "bad port in '" + spec + "'";
    return false;
  }
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  if (host.empty() || host == "0.0.0.0") {
    if (!listen_side) {
      *error = "dial address '" + spec + "' needs a concrete host";
      return false;
    }
    out->sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (::inet_pton(AF_INET, host.c_str(), &out->sin_addr) != 1) {
    *error = "bad IPv4 host in '" + spec + "'";
    return false;
  }
  return true;
}

std::string AddrToString(const sockaddr_in& addr) {
  char host[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host));
  return std::string(host) + ":" + std::to_string(ntohs(addr.sin_port));
}

bool SendAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    ssize_t n = ::send(fd, data + off, len - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool RecvAck(int fd) {
  char b = 0;
  for (;;) {
    ssize_t n = ::recv(fd, &b, 1, 0);
    if (n == 1) return b == kTransportAck;
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or error: the coordinator dropped us
  }
}

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(const TransportConfig& config) : config_(config) {}

  ~TcpTransport() override {
    for (const Pending& p : pending_) ::close(p.fd);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (coordinator_) UninstallSigchldSelfPipe();
  }

  const char* name() const override { return "tcp"; }

  bool StartRun(std::string* error) override {
    IgnoreSigPipe();  // acks to a dead worker must not kill the coordinator
    sockaddr_in addr;
    if (!ParseHostPort(config_.listen_addr, /*listen_side=*/true, &addr,
                       error)) {
      return false;
    }
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 128) != 0) {
      *error = "bind/listen " + config_.listen_addr + ": " +
               std::strerror(errno);
      ::close(listen_fd_);
      listen_fd_ = -1;
      return false;
    }
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    CHECK_EQ(::getsockname(listen_fd_,
                           reinterpret_cast<sockaddr*>(&bound), &len),
             0);
    bound_addr_ = AddrToString(bound);
    if (!config_.connect_addr.empty()) {
      dial_addr_ = config_.connect_addr;
    } else if (bound.sin_addr.s_addr == htonl(INADDR_ANY)) {
      // Forked workers dial loopback; remote workers get --connect.
      dial_addr_ = "127.0.0.1:" + std::to_string(ntohs(bound.sin_port));
    } else {
      dial_addr_ = bound_addr_;
    }
    sockaddr_in dial_check;
    if (!ParseHostPort(dial_addr_, /*listen_side=*/false, &dial_check,
                       error)) {
      return false;
    }
    SetNonBlocking(listen_fd_, true);
    sigchld_rfd_ = InstallSigchldSelfPipe();
    coordinator_ = true;
    return true;
  }

  Channel MakeChannel(uint32_t worker, uint32_t generation) override {
    (void)worker;
    (void)generation;
    return Channel();  // the child dials; nothing crosses the fork
  }

  void OnParentFork(Channel* ch) override { (void)ch; }

  void OnChildFork(const Channel& ch) override {
    (void)ch;
    // The child inherited the coordinator's reactor fds; drop them so a
    // long-running worker cannot hold the port or other workers'
    // half-open connections alive, and restore SIGCHLD (the handler would
    // write into a pipe this child just closed).
    ::sigaction(SIGCHLD, &g_old_sigchld, nullptr);
    if (g_sigchld_rfd >= 0) ::close(g_sigchld_rfd);
    if (g_sigchld_wfd >= 0) ::close(g_sigchld_wfd);
    g_sigchld_rfd = -1;
    g_sigchld_wfd = -1;
    for (const Pending& p : pending_) ::close(p.fd);
    pending_.clear();
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    coordinator_ = false;
  }

  bool NeedsExitSweep() const override { return true; }

  void AppendPollFds(std::vector<pollfd>* pfds) override {
    pfds->push_back(pollfd{sigchld_rfd_, POLLIN, 0});
    pfds->push_back(pollfd{listen_fd_, POLLIN, 0});
    for (const Pending& p : pending_) {
      pfds->push_back(pollfd{p.fd, POLLIN, 0});
    }
  }

  bool HandlePollFds(const pollfd* pfds, size_t n,
                     std::vector<Ready>* ready) override {
    CHECK_EQ(n, 2 + pending_.size());
    // Half-open connections first (reverse order: completed or dead ones
    // are swap-removed), then the accept queue, then the self-pipe.
    for (size_t i = pending_.size(); i-- > 0;) {
      if ((pfds[2 + i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      if (PumpPending(&pending_[i], ready)) {
        pending_[i] = pending_.back();
        pending_.pop_back();
      }
    }
    if ((pfds[1].revents & POLLIN) != 0) AcceptNew(ready);
    bool sweep = false;
    if ((pfds[0].revents & POLLIN) != 0) {
      char buf[64];
      while (::read(sigchld_rfd_, buf, sizeof(buf)) > 0) {
      }
      sweep = true;
    }
    return sweep;
  }

  void FinishShipFd(int fd, bool acked) override {
    if (acked) {
      const char ack = kTransportAck;
      // Best-effort: a worker that died mid-ship cannot read its fin-ack,
      // and the sweep will classify the death.
      (void)SendAll(fd, &ack, 1);
    }
    ::close(fd);
  }

  bool ShipFinalFrame(const Channel& ch, uint32_t worker,
                      uint32_t generation, const DegradationPolicy& policy,
                      WorkerCounters* counters,
                      const std::function<Frame(const WorkerCounters&)>&
                          make_frame) override {
    (void)ch;
    IgnoreSigPipe();
    uint32_t retries = 0;
    uint64_t backoff = policy.initial_backoff_ns;
    for (;;) {
      int fd = DialAndHello(worker, generation);
      if (fd >= 0) {
        // Re-encode per attempt: connect_retries just changed, and the
        // shipped counters must describe the run that actually landed.
        const std::string bytes = EncodeFrame(make_frame(*counters));
        bool ok = SendAll(fd, bytes.data(), bytes.size());
        if (ok) {
          ::shutdown(fd, SHUT_WR);  // frame done; coordinator sees EOF
          ok = RecvAck(fd);         // fin-ack: the frame was decoded
        }
        ::close(fd);
        if (ok) return true;
      }
      if (retries >= policy.max_stream_retries) return false;
      ++retries;
      ++counters->connect_retries;
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
      backoff = std::min(backoff * 2, policy.max_backoff_ns);
    }
  }

  Stats stats() const override { return stats_; }
  std::string bound_address() const override { return bound_addr_; }

 private:
  struct Pending {
    int fd = -1;
    std::string hello;  // bytes of the 12-byte hello read so far
  };

  void AcceptNew(std::vector<Ready>* ready) {
    for (;;) {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN/EWOULDBLOCK: queue drained
      }
      SetNonBlocking(fd, true);
      Pending p;
      p.fd = fd;
      // The hello is usually already in flight; try to finish it now so a
      // fast worker binds without another poll round-trip.
      if (!PumpPending(&p, ready)) pending_.push_back(p);
    }
  }

  // Reads hello bytes; returns true when the pending entry is finished
  // (bound, dropped, or dead) and must be removed from pending_.
  bool PumpPending(Pending* p, std::vector<Ready>* ready) {
    while (p->hello.size() < kHelloBytes) {
      char buf[kHelloBytes];
      ssize_t n = ::read(p->fd, buf, kHelloBytes - p->hello.size());
      if (n > 0) {
        p->hello.append(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
      ::close(p->fd);  // EOF or error before the hello completed
      return true;
    }
    uint32_t worker = 0;
    uint32_t generation = 0;
    if (!DecodeHello(p->hello.data(), &worker, &generation)) {
      std::fprintf(stderr, "dist: tcp connection with bad hello dropped\n");
      ::close(p->fd);
      return true;
    }
    const uint64_t ordinal = connection_ordinal_[worker]++;
    if (drop_hook_ && drop_hook_(worker, ordinal)) {
      // socket-drop fault: close without the hello-ack. The worker
      // observes the drop at a fixed protocol point and redials.
      ++stats_.socket_drops;
      ::close(p->fd);
      return true;
    }
    const char ack = kTransportAck;
    if (!SendAll(p->fd, &ack, 1)) {
      ::close(p->fd);
      return true;
    }
    SetNonBlocking(p->fd, false);  // the reactor's drain loop expects
                                   // blocking reads, same as a pipe fd
    ++stats_.connections_accepted;
    ready->push_back(Ready{worker, generation, p->fd});
    return true;
  }

  int DialAndHello(uint32_t worker, uint32_t generation) {
    sockaddr_in addr;
    std::string error;
    if (!ParseHostPort(dial_addr_, /*listen_side=*/false, &addr, &error)) {
      return -1;
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    int r;
    do {
      r = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr));
    } while (r != 0 && errno == EINTR);
    char hello[kHelloBytes];
    EncodeHello(worker, generation, hello);
    if (r != 0 || !SendAll(fd, hello, kHelloBytes) || !RecvAck(fd)) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  TransportConfig config_;
  bool coordinator_ = false;
  int listen_fd_ = -1;
  int sigchld_rfd_ = -1;
  std::string bound_addr_;
  std::string dial_addr_;
  std::vector<Pending> pending_;
  std::unordered_map<uint32_t, uint64_t> connection_ordinal_;
  Stats stats_;
};

}  // namespace

namespace internal {
std::unique_ptr<Transport> MakeTcpTransport(const TransportConfig& config) {
  return std::make_unique<TcpTransport>(config);
}
}  // namespace internal

}  // namespace streamkc
