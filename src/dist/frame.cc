#include "dist/frame.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "util/serialize.h"

namespace streamkc {
namespace {

constexpr uint32_t kFrameMagic = 0x534b4631;  // "SKF1"
constexpr uint32_t kFrameVersion = 1;
// magic + version + fingerprint + payload_len + crc.
constexpr size_t kFrameHeaderBytes = 4 + 4 + 8 + 8 + 4;

const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// The CRC covers everything after the (magic, version) pair: fingerprint,
// payload_len, payload — serialized exactly as they appear on the wire.
uint32_t FrameCrc(uint64_t fingerprint, const std::string& payload) {
  unsigned char head[16];
  for (int i = 0; i < 8; ++i) {
    head[i] = static_cast<unsigned char>(fingerprint >> (8 * i));
  }
  uint64_t len = payload.size();
  for (int i = 0; i < 8; ++i) {
    head[8 + i] = static_cast<unsigned char>(len >> (8 * i));
  }
  uint32_t crc = Crc32(head, sizeof(head));
  return Crc32(payload.data(), payload.size(), crc);
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t crc) {
  const uint32_t* table = Crc32Table();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

std::string EncodeFrame(const Frame& frame) {
  std::ostringstream os;
  WriteHeader(os, kFrameMagic, kFrameVersion);
  WriteU64(os, frame.fingerprint);
  WriteU64(os, frame.payload.size());
  WriteU32(os, FrameCrc(frame.fingerprint, frame.payload));
  os.write(frame.payload.data(),
           static_cast<std::streamsize>(frame.payload.size()));
  return os.str();
}

bool WriteFrameToFd(int fd, const Frame& frame) {
  const std::string bytes = EncodeFrame(frame);
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

FrameDecoder::Status FrameDecoder::Next(Frame* out, std::string* error) {
  if (poisoned_) {
    if (error != nullptr) *error = "frame stream already corrupt";
    return Status::kCorrupt;
  }
  auto corrupt = [&](const char* why) {
    poisoned_ = true;
    if (error != nullptr) *error = why;
    return Status::kCorrupt;
  };
  if (buf_.size() - pos_ < kFrameHeaderBytes) return Status::kNeedMore;

  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(buf_.data()) + pos_;
  auto rd32 = [&p](size_t off) {
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = v << 8 | p[off + i];
    return v;
  };
  auto rd64 = [&p](size_t off) {
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = v << 8 | p[off + i];
    return v;
  };
  if (rd32(0) != kFrameMagic) return corrupt("bad frame magic");
  if (rd32(4) != kFrameVersion) return corrupt("bad frame version");
  const uint64_t fingerprint = rd64(8);
  const uint64_t payload_len = rd64(16);
  if (payload_len > kMaxFramePayload) return corrupt("frame length too large");
  const uint32_t crc = rd32(24);
  if (buf_.size() - pos_ < kFrameHeaderBytes + payload_len) {
    return Status::kNeedMore;
  }

  out->fingerprint = fingerprint;
  out->payload.assign(buf_, pos_ + kFrameHeaderBytes,
                      static_cast<size_t>(payload_len));
  if (FrameCrc(fingerprint, out->payload) != crc) {
    out->payload.clear();
    return corrupt("frame CRC mismatch");
  }
  pos_ += kFrameHeaderBytes + static_cast<size_t>(payload_len);
  // Compact once the consumed prefix dominates; frames are few and small,
  // so this is bookkeeping, not a hot path.
  if (pos_ > (buf_.size() >> 1)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  return Status::kFrame;
}

}  // namespace streamkc
