// Per-worker ingest counters shipped across the process boundary.
//
// The in-process pipeline's counters (SpscRing stall accounting, the
// DegradationPolicy retry totals in RuntimeMetrics) are plain atomics in
// the worker's address space — invisible to a coordinator in another
// process. Workers therefore serialize this block into every checkpoint
// and into the final frame payload, so the coordinator's metrics dump can
// state the cross-process conservation invariant (edges ingested ==
// processed + discarded, summed over workers) and validate_metrics.py can
// check it.
//
// Counter semantics under respawn: a checkpoint snapshots the counters for
// the committed segment prefix only, and a respawned worker resumes from
// that snapshot and re-counts everything it re-ingests. Work done by a dead
// incarnation past its last checkpoint dies with it — exactly like the
// sketch state — so the final counters always describe the edges that are
// actually in the merged result, never double-counting a replayed segment.

#ifndef STREAMKC_DIST_WORKER_COUNTERS_H_
#define STREAMKC_DIST_WORKER_COUNTERS_H_

#include <cstdint>
#include <istream>
#include <ostream>

#include "util/serialize.h"

namespace streamkc {

struct WorkerCounters {
  uint64_t edges_ingested = 0;   // edges pulled from the segment streams
  uint64_t edges_processed = 0;  // edges folded into the local state
  uint64_t edges_discarded = 0;  // ingested but dropped (truncated segment)
  uint64_t batches = 0;          // ProcessBatch hand-offs
  uint64_t stream_retries = 0;   // transient read errors retried (bounded)
  uint64_t truncated_segments = 0;  // segments cut short by retry exhaustion
  uint64_t segments_done = 0;       // fully ingested (committed) segments
  uint64_t checkpoints_written = 0;
  uint64_t checkpoints_loaded = 0;
  uint64_t checkpoints_rejected = 0;  // torn/foreign blobs discarded on load
  uint64_t connect_retries = 0;  // transport dials retried (TCP ship path)

  // Exact Save() footprint; the checkpoint Try-decoder validates body
  // lengths against this before handing the bytes to Load.
  static constexpr size_t kSerializedBytes = 11 * sizeof(uint64_t);

  void Save(std::ostream& os) const {
    WriteU64(os, edges_ingested);
    WriteU64(os, edges_processed);
    WriteU64(os, edges_discarded);
    WriteU64(os, batches);
    WriteU64(os, stream_retries);
    WriteU64(os, truncated_segments);
    WriteU64(os, segments_done);
    WriteU64(os, checkpoints_written);
    WriteU64(os, checkpoints_loaded);
    WriteU64(os, checkpoints_rejected);
    WriteU64(os, connect_retries);
  }

  static WorkerCounters Load(std::istream& is) {
    WorkerCounters c;
    c.edges_ingested = ReadU64(is);
    c.edges_processed = ReadU64(is);
    c.edges_discarded = ReadU64(is);
    c.batches = ReadU64(is);
    c.stream_retries = ReadU64(is);
    c.truncated_segments = ReadU64(is);
    c.segments_done = ReadU64(is);
    c.checkpoints_written = ReadU64(is);
    c.checkpoints_loaded = ReadU64(is);
    c.checkpoints_rejected = ReadU64(is);
    c.connect_retries = ReadU64(is);
    return c;
  }
};

}  // namespace streamkc

#endif  // STREAMKC_DIST_WORKER_COUNTERS_H_
