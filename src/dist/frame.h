// Wire framing for serialized estimator state shipped from worker
// processes to the coordinator (src/dist/process_tree.h).
//
// A frame wraps one util/serialize.h blob with enough envelope to survive a
// hostile transport: a length for reassembly from arbitrary pipe chunks, a
// CRC for corruption detection, and the sender's MergeFingerprint so the
// coordinator can run the same majority-vote merge-compatibility check the
// in-process pipeline uses. Layout (little-endian, serialize.h helpers):
//
//   u32 magic    'SKF1'
//   u32 version  1
//   u64 fingerprint   State::MergeFingerprint() of the sender
//   u64 payload_len   bounded by kMaxPayload (a corrupt length must not
//                     allocate the machine away)
//   u32 crc           CRC-32 (IEEE, reflected) over fingerprint,
//                     payload_len, and the payload bytes — a bit flip
//                     anywhere past the header kills the frame
//   u8  payload[payload_len]
//
// The decoder is incremental: pipes deliver frames in arbitrary chunks, so
// the coordinator feeds whatever read() returned and polls for complete
// frames. Any malformed envelope (bad magic/version, oversized length, CRC
// mismatch) is reported as kCorrupt, never CHECK-failed — a corrupted
// worker must degrade the run (quarantine), not kill the coordinator.

#ifndef STREAMKC_DIST_FRAME_H_
#define STREAMKC_DIST_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace streamkc {

// Incremental CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
// Chain calls by passing the previous return value as `crc` (start at 0).
uint32_t Crc32(const void* data, size_t len, uint32_t crc = 0);

struct Frame {
  uint64_t fingerprint = 0;
  std::string payload;
};

// Hard ceiling on payload_len: larger than any sketch blob this system
// ships by orders of magnitude, small enough that a corrupted length field
// cannot drive a giant allocation.
inline constexpr uint64_t kMaxFramePayload = uint64_t{1} << 30;

// Serializes `frame` (header + CRC + payload) into a byte string.
std::string EncodeFrame(const Frame& frame);

// Writes the encoded frame to `fd`, looping over partial writes and EINTR.
// Returns false on a write error (e.g. the coordinator died and the pipe
// broke); the worker treats that as fatal.
bool WriteFrameToFd(int fd, const Frame& frame);

// Reassembles frames from a byte stream arriving in arbitrary chunks.
class FrameDecoder {
 public:
  enum class Status {
    kNeedMore,  // no complete frame buffered yet
    kFrame,     // *out holds the next frame
    kCorrupt,   // envelope violated; the stream is poisoned from here on
  };

  void Feed(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  // Extracts the next complete frame. After kCorrupt every later call
  // returns kCorrupt again (a framed stream cannot resynchronize).
  Status Next(Frame* out, std::string* error);

  // Bytes fed but not yet consumed by a returned frame.
  size_t buffered_bytes() const { return buf_.size() - pos_; }

  // Flips one payload-region bit of the buffered bytes — the coordinator's
  // corrupt-frame fault hook (simulated transport corruption; lands past
  // the magic/version so the CRC, not the envelope sanity checks, must
  // catch it). No-op when nothing is buffered.
  void CorruptForTest() {
    if (buffered_bytes() == 0) return;
    buf_[pos_ + buffered_bytes() / 2] ^= 0x10;
  }

 private:
  std::string buf_;
  size_t pos_ = 0;
  bool poisoned_ = false;
};

}  // namespace streamkc

#endif  // STREAMKC_DIST_FRAME_H_
