#include "dist/dist_metrics.h"

#include <cinttypes>
#include <cstdio>

namespace streamkc {

uint64_t DistMetrics::TotalEdgesIngested() const {
  uint64_t total = 0;
  for (const auto& w : workers) total += w.counters.edges_ingested;
  return total;
}

uint64_t DistMetrics::TotalEdgesProcessed() const {
  uint64_t total = 0;
  for (const auto& w : workers) total += w.counters.edges_processed;
  return total;
}

uint64_t DistMetrics::TotalEdgesDiscarded() const {
  uint64_t total = 0;
  for (const auto& w : workers) total += w.counters.edges_discarded;
  return total;
}

uint64_t DistMetrics::TotalStreamRetries() const {
  uint64_t total = 0;
  for (const auto& w : workers) total += w.counters.stream_retries;
  return total;
}

uint64_t DistMetrics::TotalBytesShipped() const {
  uint64_t total = 0;
  for (const auto& w : workers) total += w.bytes_shipped;
  return total;
}

uint64_t DistMetrics::TotalCheckpointsWritten() const {
  uint64_t total = 0;
  for (const auto& w : workers) total += w.counters.checkpoints_written;
  return total;
}

uint64_t DistMetrics::TotalCheckpointsLoaded() const {
  uint64_t total = 0;
  for (const auto& w : workers) total += w.counters.checkpoints_loaded;
  return total;
}

uint64_t DistMetrics::TotalCheckpointsRejected() const {
  uint64_t total = 0;
  for (const auto& w : workers) total += w.counters.checkpoints_rejected;
  return total;
}

uint64_t DistMetrics::TotalConnectRetries() const {
  uint64_t total = 0;
  for (const auto& w : workers) total += w.counters.connect_retries;
  return total;
}

uint32_t DistMetrics::TotalRespawns() const {
  uint32_t total = 0;
  for (const auto& w : workers) total += w.respawns;
  return total;
}

uint32_t DistMetrics::TotalCrcRejections() const {
  uint32_t total = 0;
  for (const auto& w : workers) total += w.crc_rejections;
  return total;
}

uint32_t DistMetrics::WorkersQuarantined() const {
  uint32_t total = 0;
  for (const auto& w : workers) total += w.quarantined ? 1 : 0;
  return total;
}

uint32_t DistMetrics::FingerprintCorruptions() const {
  uint32_t total = 0;
  for (const auto& w : workers) total += w.fingerprint_corrupted ? 1 : 0;
  return total;
}

std::string DistMetrics::ToJson() const {
  char buf[2048];
  std::string out;
  out.reserve(1024 + 512 * workers.size());
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "    \"num_workers\": %u,\n"
      "    \"merge_arity\": %u,\n"
      "    \"num_segments\": %u,\n"
      "    \"transport\": \"%s\",\n"
      "    \"poll_wakeups\": %" PRIu64 ",\n"
      "    \"connections_accepted\": %" PRIu64 ",\n"
      "    \"socket_drops\": %" PRIu64 ",\n"
      "    \"edges_ingested\": %" PRIu64 ",\n"
      "    \"edges_processed\": %" PRIu64 ",\n"
      "    \"edges_discarded\": %" PRIu64 ",\n"
      "    \"stream_retries\": %" PRIu64 ",\n"
      "    \"bytes_shipped\": %" PRIu64 ",\n"
      "    \"frames_received\": %" PRIu64 ",\n"
      "    \"crc_rejections\": %u,\n"
      "    \"fingerprint_corruptions_detected\": %u,\n"
      "    \"workers_respawned\": %u,\n"
      "    \"workers_quarantined\": %u,\n"
      "    \"checkpoints_written\": %" PRIu64 ",\n"
      "    \"checkpoints_loaded\": %" PRIu64 ",\n"
      "    \"checkpoints_rejected\": %" PRIu64 ",\n"
      "    \"connect_retries\": %" PRIu64 ",\n"
      "    \"merge_depth\": %u,\n"
      "    \"merges\": %" PRIu64 ",\n"
      "    \"merge_ns\": %" PRIu64 ",\n"
      "    \"wall_ns\": %" PRIu64 ",\n"
      "    \"edges_per_second\": %.0f,\n"
      "    \"workers\": [",
      num_workers, merge_arity, num_segments, transport.c_str(),
      poll_wakeups, connections_accepted, socket_drops, TotalEdgesIngested(),
      TotalEdgesProcessed(), TotalEdgesDiscarded(), TotalStreamRetries(),
      TotalBytesShipped(), frames_received, TotalCrcRejections(),
      FingerprintCorruptions(), TotalRespawns(), WorkersQuarantined(),
      TotalCheckpointsWritten(), TotalCheckpointsLoaded(),
      TotalCheckpointsRejected(), TotalConnectRetries(), tree.depth,
      tree.merges, tree.merge_ns, wall_ns, EdgesPerSecond());
  out += buf;
  for (size_t i = 0; i < workers.size(); ++i) {
    const DistWorkerRow& w = workers[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n      {\"worker\": %u, \"edges_ingested\": %" PRIu64
        ", \"edges_processed\": %" PRIu64 ", \"edges_discarded\": %" PRIu64
        ", \"batches\": %" PRIu64 ", \"stream_retries\": %" PRIu64
        ", \"truncated_segments\": %" PRIu64
        ", \"segments_assigned\": %u, \"segments_done\": %" PRIu64
        ", \"checkpoints_written\": %" PRIu64
        ", \"checkpoints_loaded\": %" PRIu64
        ", \"checkpoints_rejected\": %" PRIu64
        ", \"connect_retries\": %" PRIu64 ", \"bytes_shipped\": %" PRIu64
        ", \"respawns\": %u, \"crc_rejections\": %u, \"quarantined\": %d"
        ", \"fingerprint_corrupted\": %d}",
        i == 0 ? "" : ",", w.worker, w.counters.edges_ingested,
        w.counters.edges_processed, w.counters.edges_discarded,
        w.counters.batches, w.counters.stream_retries,
        w.counters.truncated_segments, w.segments_assigned,
        w.counters.segments_done, w.counters.checkpoints_written,
        w.counters.checkpoints_loaded, w.counters.checkpoints_rejected,
        w.counters.connect_retries, w.bytes_shipped, w.respawns,
        w.crc_rejections, w.quarantined ? 1 : 0,
        w.fingerprint_corrupted ? 1 : 0);
    out += buf;
  }
  out += "\n    ]\n  }";
  return out;
}

void DistMetrics::PublishTo(MetricsRegistry* registry) const {
  auto set = [&](const char* name, uint64_t v) {
    registry->GetGauge(name)->Set(v);
  };
  set("dist_num_workers", num_workers);
  set("dist_merge_arity", merge_arity);
  set("dist_num_segments", num_segments);
  set("dist_edges_ingested_total", TotalEdgesIngested());
  set("dist_edges_processed_total", TotalEdgesProcessed());
  set("dist_edges_discarded_total", TotalEdgesDiscarded());
  set("dist_stream_retries_total", TotalStreamRetries());
  set("dist_bytes_shipped_total", TotalBytesShipped());
  set("dist_frames_received_total", frames_received);
  set("dist_crc_rejections_total", TotalCrcRejections());
  set("dist_fingerprint_corruptions_detected", FingerprintCorruptions());
  set("dist_workers_respawned_total", TotalRespawns());
  set("dist_workers_quarantined", WorkersQuarantined());
  set("dist_checkpoints_written_total", TotalCheckpointsWritten());
  set("dist_checkpoints_loaded_total", TotalCheckpointsLoaded());
  set("dist_checkpoints_rejected_total", TotalCheckpointsRejected());
  set("dist_connect_retries_total", TotalConnectRetries());
  set("dist_poll_wakeups_total", poll_wakeups);
  set("dist_connections_accepted_total", connections_accepted);
  set("dist_socket_drops_total", socket_drops);
  set("dist_merge_depth", tree.depth);
  set("dist_merges_total", tree.merges);
  set("dist_merge_ns", tree.merge_ns);
  set("dist_wall_ns", wall_ns);
  for (const DistWorkerRow& w : workers) {
    std::string worker = std::to_string(w.worker);
    auto set_worker = [&](const char* name, uint64_t v) {
      registry->GetGauge(LabeledName(name, "worker", worker))->Set(v);
    };
    set_worker("dist_worker_edges_total", w.counters.edges_processed);
    set_worker("dist_worker_bytes_shipped_total", w.bytes_shipped);
    set_worker("dist_worker_respawns_total", w.respawns);
    set_worker("dist_worker_quarantined", w.quarantined ? 1 : 0);
    set_worker("dist_worker_checkpoints_written_total",
               w.counters.checkpoints_written);
  }
}

}  // namespace streamkc
