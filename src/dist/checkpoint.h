// Durable worker checkpoints: the restart half of the dist layer's
// crash-recovery story.
//
// A worker writes one checkpoint file after every --checkpoint-every
// committed segments. The blob records the committed segment prefix, the
// counters for exactly that prefix, and the serialized estimator state —
// so a respawned worker loads the file, re-opens the segments past
// `segments_done`, and converges on the identical final state a
// never-killed run produces (segments after the last checkpoint are simply
// re-ingested from scratch; the dead incarnation's uncommitted work died
// with its address space).
//
// Layout (little-endian, util/serialize.h helpers):
//
//   u32 magic    'SKC1'
//   u32 version  1
//   u64 body_len
//   u32 crc      CRC-32 over the body bytes
//   body:
//     u32 worker
//     u64 segments_done
//     WorkerCounters
//     u64 fingerprint   State::MergeFingerprint() at save time
//     u64 state_len + state blob (the State's own Save format)
//
// Unlike the wire frame (where corruption quarantines a worker), a corrupt
// checkpoint is a CHECK failure: the file is local, written by this very
// binary, and loading a tampered or truncated blob would silently resurrect
// a wrong prefix. The death-test battery in tests/dist_checkpoint_test.cc
// pins truncation, bit flips, and version bumps to a clean abort.
//
// Writes are atomic: the blob lands in `<path>.tmp` and is rename(2)d over
// `path`, so a crash mid-write leaves the previous checkpoint intact and a
// reader never observes a half-written file.

#ifndef STREAMKC_DIST_CHECKPOINT_H_
#define STREAMKC_DIST_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "dist/worker_counters.h"

namespace streamkc {

struct Checkpoint {
  uint32_t worker = 0;
  uint64_t segments_done = 0;  // committed prefix of the owned segment list
  WorkerCounters counters;     // counters for exactly that prefix
  uint64_t fingerprint = 0;    // merge fingerprint of the saved state
  std::string state_blob;      // State::Save bytes
};

// Canonical per-worker checkpoint file name under `dir`.
std::string CheckpointPath(const std::string& dir, uint32_t worker);

// Serializes `ckpt` (header + CRC + body) into a byte string.
std::string EncodeCheckpoint(const Checkpoint& ckpt);

// Parses a blob produced by EncodeCheckpoint. CHECK-fails on any
// corruption: bad magic/version, truncated body, CRC mismatch.
Checkpoint DecodeCheckpoint(const std::string& bytes);

// Atomically (tmp + rename) writes `ckpt` to `path`; CHECK-fails on IO
// errors (an unwritable checkpoint dir is a caller bug, not a degradation).
void WriteCheckpointFile(const std::string& path, const Checkpoint& ckpt);

bool CheckpointFileExists(const std::string& path);

// Reads and decodes `path`; CHECK-fails if missing or corrupt.
Checkpoint LoadCheckpointFile(const std::string& path);

}  // namespace streamkc

#endif  // STREAMKC_DIST_CHECKPOINT_H_
