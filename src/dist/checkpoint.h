// Durable worker checkpoints: the restart half of the dist layer's
// crash-recovery story.
//
// A worker writes one checkpoint file after every --checkpoint-every
// committed segments. The blob records the committed segment prefix, the
// counters for exactly that prefix, and the serialized estimator state —
// so a respawned worker loads the file, re-opens the segments past
// `segments_done`, and converges on the identical final state a
// never-killed run produces (segments after the last checkpoint are simply
// re-ingested from scratch; the dead incarnation's uncommitted work died
// with its address space).
//
// Layout (little-endian, util/serialize.h helpers):
//
//   u32 magic    'SKC1'
//   u32 version  1
//   u64 body_len
//   u32 crc      CRC-32 over the body bytes
//   body:
//     u32 worker
//     u64 segments_done
//     WorkerCounters
//     u64 fingerprint   State::MergeFingerprint() at save time
//     u64 state_len + state blob (the State's own Save format)
//
// Durability: the blob lands in `<path>.tmp`, is fsync(2)ed, rename(2)d
// over `path`, and the directory is fsync(2)ed after the rename. The
// rename alone makes the write atomic against a crash of THIS process; the
// two fsyncs make it atomic against a crash of the HOST — without them the
// filesystem may persist the rename before the data blocks, and the
// machine comes back up with a zero-length or torn file at the final path.
//
// Corruption policy: the Try* loaders reject a bad blob (returning false
// with a reason) instead of aborting, because the dist respawn path must
// survive a torn checkpoint — the respawned worker discards it and
// re-ingests from scratch. DecodeCheckpoint/LoadCheckpointFile keep the
// CHECK-hard contract for callers where a bad blob is unambiguously a bug;
// the death-test battery in tests/dist_checkpoint_test.cc pins truncation,
// bit flips, and version bumps to a clean abort there.

#ifndef STREAMKC_DIST_CHECKPOINT_H_
#define STREAMKC_DIST_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "dist/worker_counters.h"

namespace streamkc {

struct Checkpoint {
  uint32_t worker = 0;
  uint64_t segments_done = 0;  // committed prefix of the owned segment list
  WorkerCounters counters;     // counters for exactly that prefix
  uint64_t fingerprint = 0;    // merge fingerprint of the saved state
  std::string state_blob;      // State::Save bytes
};

// Canonical per-worker checkpoint file name under `dir`.
std::string CheckpointPath(const std::string& dir, uint32_t worker);

// Serializes `ckpt` (header + CRC + body) into a byte string.
std::string EncodeCheckpoint(const Checkpoint& ckpt);

// Parses a blob produced by EncodeCheckpoint. Returns false (with a
// one-line reason in *error if non-null) on any corruption: bad
// magic/version, truncated or oversized body, CRC mismatch, trailing
// garbage, inconsistent state length.
bool TryDecodeCheckpoint(const std::string& bytes, Checkpoint* out,
                         std::string* error);

// CHECK-hard wrapper over TryDecodeCheckpoint for callers where a bad blob
// is a caller bug rather than a recoverable event.
Checkpoint DecodeCheckpoint(const std::string& bytes);

// Durably (tmp + fsync + rename + directory fsync) writes `ckpt` to
// `path`; CHECK-fails on IO errors (an unwritable checkpoint dir is a
// caller bug, not a degradation).
void WriteCheckpointFile(const std::string& path, const Checkpoint& ckpt);

bool CheckpointFileExists(const std::string& path);

// Reads and decodes `path`; returns false (with a reason) if the file is
// missing, unreadable, or corrupt. This is the loader the respawn path
// uses: a torn checkpoint means "re-ingest from scratch", not "abort".
bool TryLoadCheckpointFile(const std::string& path, Checkpoint* out,
                           std::string* error = nullptr);

// CHECK-hard wrapper: aborts if missing or corrupt.
Checkpoint LoadCheckpointFile(const std::string& path);

}  // namespace streamkc

#endif  // STREAMKC_DIST_CHECKPOINT_H_
