// Observability for the multi-process reduction tree.
//
// DistMetrics is the coordinator-side ledger: one row per worker (the
// counters the worker shipped inside its final frame, plus what only the
// coordinator can observe — bytes received, respawns, CRC rejections,
// quarantine verdicts) and run-level totals for the merge tree. Unlike
// RuntimeMetrics there are no atomics: the coordinator is single-threaded,
// and worker-side counters cross the process boundary by serialization
// (see worker_counters.h), not by shared memory.
//
// ToJson() renders the "dist" section of the CLI metrics dump (the
// ComposeMetricsJson extra-section hook, like serve's "serving" section);
// PublishTo() mirrors the totals and per-worker rows into a
// MetricsRegistry as dist_* gauges for the Prometheus exposition.

#ifndef STREAMKC_DIST_DIST_METRICS_H_
#define STREAMKC_DIST_DIST_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dist/reduction_tree.h"
#include "dist/worker_counters.h"
#include "obs/metrics.h"

namespace streamkc {

struct DistWorkerRow {
  uint32_t worker = 0;
  WorkerCounters counters;       // from the final frame (zero if none landed)
  uint32_t segments_assigned = 0;
  uint64_t bytes_shipped = 0;    // frame bytes the coordinator received
  uint32_t respawns = 0;         // successful respawn cycles consumed
  uint32_t crc_rejections = 0;   // frames rejected by the decoder
  bool quarantined = false;      // excluded from the merge
  bool fingerprint_corrupted = false;  // lost the majority vote
};

struct DistMetrics {
  uint32_t num_workers = 0;
  uint32_t merge_arity = 0;
  uint32_t num_segments = 0;
  uint64_t frames_received = 0;  // valid final frames decoded
  uint64_t wall_ns = 0;
  std::string transport = "pipe";     // how frames traveled (pipe | tcp)
  uint64_t poll_wakeups = 0;          // coordinator poll(2) returns
  uint64_t connections_accepted = 0;  // TCP hellos bound to slots (0: pipe)
  uint64_t socket_drops = 0;          // connections dropped by fault plan
  MergeTreeStats tree;
  std::vector<DistWorkerRow> workers;

  // Sums over worker rows (quarantined rows carry zero counters: their
  // partial work died with the process and is not in the merged result).
  uint64_t TotalEdgesIngested() const;
  uint64_t TotalEdgesProcessed() const;
  uint64_t TotalEdgesDiscarded() const;
  uint64_t TotalStreamRetries() const;
  uint64_t TotalBytesShipped() const;
  uint64_t TotalCheckpointsWritten() const;
  uint64_t TotalCheckpointsLoaded() const;
  uint64_t TotalCheckpointsRejected() const;
  uint64_t TotalConnectRetries() const;
  uint32_t TotalRespawns() const;
  uint32_t TotalCrcRejections() const;
  uint32_t WorkersQuarantined() const;
  uint32_t FingerprintCorruptions() const;

  double EdgesPerSecond() const {
    return wall_ns > 0 ? static_cast<double>(TotalEdgesProcessed()) /
                             (static_cast<double>(wall_ns) / 1e9)
                       : 0.0;
  }

  std::string ToJson() const;
  void PublishTo(MetricsRegistry* registry) const;
};

}  // namespace streamkc

#endif  // STREAMKC_DIST_DIST_METRICS_H_
