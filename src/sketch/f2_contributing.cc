#include "sketch/f2_contributing.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "hash/mersenne.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/random.h"
#include "util/serialize.h"

namespace streamkc {

F2Contributing::F2Contributing(const Config& config)
    : config_(config),
      sampler_(KWiseHash::LogWise(config.domain_size, config.domain_size,
                                  SplitMix64(config.seed ^ 0xabcd))) {
  CHECK_GT(config.gamma, 0.0);
  CHECK_GE(config.max_class_size, 1u);
  Rng rng(config.seed);

  uint32_t num_levels = CeilLog2(config.max_class_size) + 1;
  double log_m = Log2AtLeast1(static_cast<double>(config.domain_size));
  double phi = std::min(1.0, config.phi_factor * config.gamma);

  bool have_full_rate_level = false;
  for (uint32_t i = 0; i < num_levels; ++i) {
    double rate = std::min(1.0, config.sample_factor * log_m /
                                    static_cast<double>(1ULL << i));
    if (rate >= 1.0) {
      // All full-rate levels see the identical substream and run the same
      // heavy-hitter search, so one of them covers every class-size guess
      // 2^i with 2^i ≤ sample_factor·log m. Keep only the first.
      if (have_full_rate_level) continue;
      have_full_rate_level = true;
    }
    uint64_t num = static_cast<uint64_t>(rate * static_cast<double>(kRateDen));
    if (rate >= 1.0) num = kRateDen;
    num = std::max<uint64_t>(num, 1);
    F2HeavyHitters::Config hh;
    hh.phi = phi;
    hh.seed = rng.Fork();
    levels_.push_back(Level{num, F2HeavyHitters(hh)});
  }
}

void F2Contributing::Add(uint64_t id, int64_t delta) {
  AddFolded(id, MersenneFold(id), delta);
}

void F2Contributing::AddFolded(uint64_t id, uint64_t folded, int64_t delta) {
  // One shared hash evaluation; levels_ is sorted by decreasing rate, so the
  // first failing threshold ends the walk (samples are nested).
  uint64_t key = sampler_.MapRangeFolded(folded, kRateDen);
  for (auto& level : levels_) {
    if (key >= level.rate_num) break;
    level.hh.AddFolded(id, folded, delta);
  }
}

namespace {
constexpr uint32_t kFcMagic = 0x46324354;  // "F2CT"
}  // namespace

void F2Contributing::Save(std::ostream& os) const {
  WriteHeader(os, kFcMagic, 1);
  WriteDouble(os, config_.gamma);
  WriteU64(os, config_.max_class_size);
  WriteU64(os, config_.domain_size);
  WriteDouble(os, config_.phi_factor);
  WriteDouble(os, config_.sample_factor);
  WriteU64(os, config_.seed);
  WriteU64(os, levels_.size());
  for (const Level& level : levels_) level.hh.Save(os);
}

F2Contributing F2Contributing::Load(std::istream& is) {
  CheckHeader(is, kFcMagic, 1);
  Config config;
  config.gamma = ReadDouble(is);
  config.max_class_size = ReadU64(is);
  config.domain_size = ReadU64(is);
  config.phi_factor = ReadDouble(is);
  config.sample_factor = ReadDouble(is);
  config.seed = ReadU64(is);
  F2Contributing out(config);
  CHECK_EQ(ReadU64(is), out.levels_.size());  // same config ⇒ same geometry
  for (Level& level : out.levels_) level.hh = F2HeavyHitters::Load(is);
  return out;
}

void F2Contributing::Merge(const F2Contributing& other) {
  CHECK_EQ(levels_.size(), other.levels_.size());
  CHECK_EQ(config_.seed, other.config_.seed);
  for (size_t i = 0; i < levels_.size(); ++i) {
    CHECK_EQ(levels_[i].rate_num, other.levels_[i].rate_num);
    levels_[i].hh.Merge(other.levels_[i].hh);
  }
}

std::vector<ContributingCoordinate> F2Contributing::Extract() const {
  std::unordered_map<uint64_t, ContributingCoordinate> best;
  for (uint32_t i = 0; i < levels_.size(); ++i) {
    for (const HeavyHitter& hh : levels_[i].hh.Extract()) {
      auto it = best.find(hh.id);
      if (it == best.end() || hh.estimate > it->second.estimate) {
        best[hh.id] = ContributingCoordinate{hh.id, hh.estimate, i};
      }
    }
  }
  std::vector<ContributingCoordinate> out;
  out.reserve(best.size());
  for (const auto& [id, cc] : best) out.push_back(cc);
  std::sort(out.begin(), out.end(),
            [](const ContributingCoordinate& a, const ContributingCoordinate& b) {
              return a.estimate > b.estimate;
            });
  return out;
}

size_t F2Contributing::MemoryBytes() const {
  size_t bytes = sampler_.MemoryBytes();
  for (const auto& level : levels_) {
    bytes += level.hh.MemoryBytes() + sizeof(uint64_t);
  }
  return bytes;
}

void F2Contributing::ReportSpace(SpaceAccountant* acct) const {
  SpaceMetered::ReportSpace(acct);
  for (const auto& level : levels_) level.hh.ReportSpace(acct);
}

}  // namespace streamkc
