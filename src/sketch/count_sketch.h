// CountSketch (Charikar-Chen-Farach-Colton [18]).
//
// depth × width grid of counters; row r places item j in bucket
// h_r(j) ∈ [width] with sign s_r(j) ∈ {±1}. PointQuery(j) =
// median_r( s_r(j) · C[r][h_r(j)] ) estimates a[j] with additive error
// O(√(F2/width)) per row, boosted by the median over rows. This is the
// estimation core of the F2 heavy hitters algorithm (Theorem 2.10).
//
// Each row derives (sign, bucket) from ONE 4-wise hash value — sign from
// the low bit, bucket from the remaining 60 bits. The pairs
// (s_r(x), h_r(x)) are then jointly 4-wise independent across distinct x,
// which is what the variance analysis uses (for x ≠ y, (s_x, b_x) is
// independent of (s_y, b_y), so E[s_x·s_y·1{b_x=b_y}] = 0); one hash
// evaluation per row instead of two.

#ifndef STREAMKC_SKETCH_COUNT_SKETCH_H_
#define STREAMKC_SKETCH_COUNT_SKETCH_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "hash/kwise_hash.h"
#include "obs/space_accountant.h"
#include "util/space.h"

namespace streamkc {

class CountSketch : public SpaceMetered {
 public:
  struct Config {
    uint32_t depth = 5;    // rows (median)
    uint32_t width = 256;  // buckets per row
    uint64_t seed = 1;
  };

  explicit CountSketch(const Config& config);

  // a[id] += delta.
  void Add(uint64_t id, int64_t delta = 1);

  // Hash-once ingest path: `folded` must equal MersenneFold(id).
  void AddFolded(uint64_t folded, int64_t delta = 1);

  // a[id] += delta for every pre-folded id in the block. Bit-identical to n
  // AddFolded calls: rows touch disjoint counters (loop interchange is free)
  // and within row 0 the updates — including the running row0_f2_ double
  // accumulation — happen in edge order. Hash evaluation runs per row over
  // the whole block with MapFoldedBatch.
  void AddFoldedBatch(const uint64_t* folded, size_t n, int64_t delta = 1);

  // Median estimate of a[id].
  double PointQuery(uint64_t id) const;

  // Adds another sketch built with the same Config (same seed / geometry).
  // CountSketch is linear, so the merged sketch equals the sketch of the
  // concatenated streams — the basis of distributed sketching.
  void Merge(const CountSketch& other);

  // Median over rows of Σ_b C[r][b]²: an unbiased F2 estimator (each row is
  // a bucketed AMS tug-of-war sketch), so CountSketch doubles as the F2
  // reference for heavy-hitter thresholds at no extra update cost.
  double EstimateF2() const;

  // Single-row (row 0) point estimate: one hash evaluation instead of a
  // median over all rows. Noisier (±√(F2/width) without median boosting);
  // used as a cheap admission gate by F2HeavyHitters.
  double QuickEstimate(uint64_t id) const {
    auto [sign, bucket] = RowSignBucket(0, id);
    return sign * static_cast<double>(counters_[bucket]);
  }

  // QuickEstimate for a pre-folded id (folded == MersenneFold(id)).
  double QuickEstimateFolded(uint64_t folded) const {
    auto [sign, bucket] = SignBucketFromHash(0, row_hash_[0].MapFolded(folded));
    return sign * static_cast<double>(counters_[bucket]);
  }

  // Row 0's Σ_b C[0][b]², maintained incrementally (an always-current,
  // single-sample F2 estimate for the same gate).
  double QuickF2() const { return row0_f2_; }

  uint32_t width() const { return config_.width; }

  // Binary checkpointing; hashes are rebuilt from the stored seed.
  void Save(std::ostream& os) const;
  static CountSketch Load(std::istream& is);

  size_t MemoryBytes() const override;
  const char* ComponentName() const override { return "count_sketch"; }
  uint64_t ItemCount() const override { return counters_.size(); }

 private:
  // (sign, flat index into counters_) for row r given the row hash value.
  std::pair<int, size_t> SignBucketFromHash(uint32_t r, uint64_t h) const {
    int sign = (h & 1) ? +1 : -1;
    uint64_t bucket = static_cast<uint64_t>(
        (static_cast<__uint128_t>(h >> 1) * config_.width) >> 60);
    return {sign, static_cast<size_t>(r) * config_.width + bucket};
  }

  // (sign, flat index into counters_) for row r and item id.
  std::pair<int, size_t> RowSignBucket(uint32_t r, uint64_t id) const {
    return SignBucketFromHash(r, row_hash_[r].Map(id));
  }

  Config config_;
  std::vector<KWiseHash> row_hash_;  // one 4-wise hash per row
  std::vector<int64_t> counters_;    // depth * width, row-major
  double row0_f2_ = 0;               // running Σ_b C[0][b]²
};

}  // namespace streamkc

#endif  // STREAMKC_SKETCH_COUNT_SKETCH_H_
