// F2 heavy hitters (Definition 2.6, Theorem 2.10).
//
// Single-pass algorithm over insertion streams that returns every coordinate
// j with a[j]² ≥ φ·F2(a), together with a (1 ± 1/2)-approximation of a[j],
// using Õ(1/φ) space. Realized as in [14, 15, 18, 39]:
//
//   * a CountSketch of width Θ(1/φ) provides point estimates with additive
//     error ≤ √(φ·F2)/c, which is ≤ a[j]/c for any φ-heavy coordinate; its
//     per-row bucket sums of squares double as the F2 estimate for the
//     threshold (each row is a bucketed AMS sketch), so no separate F2
//     sketch is maintained;
//   * a bounded candidate set tracks the currently-heavy ids. Each arriving
//     id is inserted with its point estimate once and bumped by |delta| on
//     subsequent updates; whenever the set doubles past Θ(1/φ) entries, all
//     scores are refreshed by point queries and the top Θ(1/φ) are kept —
//     amortized O(1) point queries per update. In an insertion-only stream
//     a coordinate that is heavy at the end is heavy during its own final
//     updates, so it is in the candidate set when the stream ends.

#ifndef STREAMKC_SKETCH_F2_HEAVY_HITTERS_H_
#define STREAMKC_SKETCH_F2_HEAVY_HITTERS_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "obs/space_accountant.h"
#include "sketch/count_sketch.h"
#include "util/space.h"

namespace streamkc {

struct HeavyHitter {
  uint64_t id = 0;
  double estimate = 0;  // (1 ± 1/2)-approximate frequency
};

class F2HeavyHitters : public SpaceMetered {
 public:
  struct Config {
    // Heaviness threshold φ ∈ (0, 1]: report j iff a[j]² ≥ φ·F2.
    double phi = 0.01;
    // CountSketch rows.
    uint32_t depth = 5;
    // CountSketch width multiplier: width = width_factor / φ. At 16/φ the
    // per-row noise √(F2/width) is √(φF2)/4, a quarter of the heaviness
    // margin, which keeps the noise floor (see Extract) below real heavy
    // hitters.
    double width_factor = 16.0;
    // Candidate capacity multiplier: capacity = cand_factor / φ.
    double cand_factor = 4.0;
    // Noise-floor strictness in per-row standard deviations (see Extract).
    // 0 disables the floor — used by the ablation bench to demonstrate the
    // spurious-hitter failure mode it prevents.
    double noise_floor_sigmas = 3.0;
    // Hard cap on width (memory safety at tiny φ).
    uint32_t max_width = 1u << 22;
    uint64_t seed = 1;
  };

  explicit F2HeavyHitters(const Config& config);

  void Add(uint64_t id, int64_t delta = 1);

  // Hash-once ingest path: `folded` must equal MersenneFold(id). The raw id
  // is still needed as the candidate-set key. The candidate admission gate
  // reads the evolving QuickF2 per update, so there is no whole-batch
  // variant — batching callers loop this, saving the per-sub-hash re-folds.
  void AddFolded(uint64_t id, uint64_t folded, int64_t delta = 1);

  // All coordinates whose estimated frequency passes the φ test against the
  // estimated F2, most-frequent first. Call after the stream ends (may be
  // called repeatedly).
  std::vector<HeavyHitter> Extract() const;

  // Merges another instance built with the same Config: counters add
  // (linearity) and the candidate sets union (then prune to capacity). The
  // merged instance answers for the concatenation of both streams.
  void Merge(const F2HeavyHitters& other);

  // Binary checkpointing: CountSketch counters + candidate set.
  void Save(std::ostream& os) const;
  static F2HeavyHitters Load(std::istream& is);

  // Point estimate for one coordinate (CountSketch median).
  double EstimateFrequency(uint64_t id) const {
    return count_sketch_.PointQuery(id);
  }

  // Current F2 estimate (from the CountSketch rows).
  double EstimateF2() const { return count_sketch_.EstimateF2(); }

  double phi() const { return config_.phi; }

  size_t MemoryBytes() const override;
  const char* ComponentName() const override { return "f2_heavy_hitters"; }
  uint64_t ItemCount() const override { return candidates_.size(); }
  // Composite: also reports the inner CountSketch.
  void ReportSpace(SpaceAccountant* acct) const override;

 private:
  void PruneCandidates();

  Config config_;
  CountSketch count_sketch_;
  size_t capacity_;
  // id -> tracking score: point estimate at insertion/last prune plus
  // increments since. Refreshed by true point queries at prune time.
  std::unordered_map<uint64_t, double> candidates_;
};

}  // namespace streamkc

#endif  // STREAMKC_SKETCH_F2_HEAVY_HITTERS_H_
