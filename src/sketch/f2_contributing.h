// γ-contributing class detection (Definition 2.7, Theorem 2.11, and the
// F2-Contributing pseudocode in Section 2.2).
//
// Coordinates are partitioned into dyadic frequency classes
// R_t = { j : 2^(t-1) < a[j] ≤ 2^t }; class R_t is γ-contributing if
// |R_t|·2^{2t} ≥ γ·F2(a). The algorithm must return at least one coordinate
// from every γ-contributing class (with a (1 ± 1/2) frequency estimate),
// in Õ(1/γ) space.
//
// Implementation per the paper: for every guess n_t = 2^i of the class size
// (i ≤ log r, where r bounds the class sizes of interest — see Remark 4.12),
// subsample the *coordinate space* at rate ≈ (c·log m)/2^i with a
// Θ(log(mn))-wise independent hash and run an F2-HeavyHitter with
// φ = Θ̃(γ) on the surviving substream. If R_t has ≈ 2^i members, about
// c·log m of them survive, and each survivor carries a Ω̃(γ) share of the
// sampled F2 (Lemma 2.9), so the heavy-hitter sketch finds it. Sampling is
// per-coordinate, so a survivor's frequency in the substream equals its true
// frequency.

#ifndef STREAMKC_SKETCH_F2_CONTRIBUTING_H_
#define STREAMKC_SKETCH_F2_CONTRIBUTING_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "hash/kwise_hash.h"
#include "obs/space_accountant.h"
#include "sketch/f2_heavy_hitters.h"
#include "util/space.h"

namespace streamkc {

struct ContributingCoordinate {
  uint64_t id = 0;
  double estimate = 0;  // (1 ± 1/2)-approximate frequency
  uint32_t level = 0;   // sampling level (class-size guess 2^level)
};

class F2Contributing : public SpaceMetered {
 public:
  struct Config {
    // Contribution threshold γ.
    double gamma = 0.01;
    // Upper bound r on the size of contributing classes to search for
    // (the paper's second argument; see Remark 4.12 for why bounding it
    // matters). Levels are 2^0 .. 2^ceil(log2 r).
    uint64_t max_class_size = 1u << 20;
    // Domain size hint (the m in ρ = 12·log m / 2^i); used for the
    // per-level sampling rate and hash independence.
    uint64_t domain_size = 1u << 20;
    // Heavy-hitter threshold per level: φ = phi_factor · γ. The paper's
    // theory value divides by Θ(log n · log^{c+1} m); practical default 1/4.
    double phi_factor = 0.25;
    // Sampling-rate numerator multiplier: rate_i = sample_factor·log2(m)/2^i.
    double sample_factor = 12.0;
    uint64_t seed = 1;
  };

  explicit F2Contributing(const Config& config);

  void Add(uint64_t id, int64_t delta = 1);

  // Hash-once ingest path: `folded` must equal MersenneFold(id). One fold
  // serves the shared level sampler and every surviving level's
  // heavy-hitter sketch.
  void AddFolded(uint64_t id, uint64_t folded, int64_t delta = 1);

  // One representative (at least) from each γ-contributing class of size
  // ≤ max_class_size, deduplicated by id (max estimate wins), sorted by
  // descending estimate.
  std::vector<ContributingCoordinate> Extract() const;

  // Merges another instance built with the same Config (per-level sketch
  // merge; the shared coordinate sampler is seed-identical by construction).
  void Merge(const F2Contributing& other);

  // Binary checkpointing: config + every level's heavy-hitter state.
  void Save(std::ostream& os) const;
  static F2Contributing Load(std::istream& is);

  uint32_t num_levels() const { return static_cast<uint32_t>(levels_.size()); }

  size_t MemoryBytes() const override;
  const char* ComponentName() const override { return "f2_contributing"; }
  uint64_t ItemCount() const override { return levels_.size(); }
  // Composite: also reports every level's heavy-hitter sketch.
  void ReportSpace(SpaceAccountant* acct) const override;

 private:
  struct Level {
    // Survival threshold: keep ids whose shared sample key is < rate_num
    // (rate rate_num / kRateDen).
    uint64_t rate_num;
    F2HeavyHitters hh;
  };

  static constexpr uint64_t kRateDen = 1ULL << 40;

  Config config_;
  // One Θ(log mn)-wise hash shared by all levels: level i keeps ids whose
  // key falls below its threshold, so the per-level samples are nested and
  // one hash evaluation serves every level. Each level in isolation is a
  // uniform sample at its own rate, which is all Lemma 2.9 / Claim 2.8 need;
  // levels are analyzed separately and union-bounded, so cross-level
  // independence is never used.
  KWiseHash sampler_;
  std::vector<Level> levels_;  // sorted by decreasing rate
};

}  // namespace streamkc

#endif  // STREAMKC_SKETCH_F2_CONTRIBUTING_H_
