#include "sketch/ams_f2.h"

#include <algorithm>

#include "util/check.h"
#include "util/math_util.h"
#include "util/random.h"
#include "util/serialize.h"

namespace streamkc {

AmsF2Sketch::AmsF2Sketch(const Config& config) : config_(config) {
  CHECK_GE(config.rows, 1u);
  CHECK_GE(config.cols, 1u);
  Rng rng(config.seed);
  size_t cells = static_cast<size_t>(config.rows) * config.cols;
  signs_.reserve(cells);
  for (size_t i = 0; i < cells; ++i) {
    signs_.push_back(KWiseHash::FourWise(rng.Fork()));
  }
  counters_.assign(cells, 0);
}

void AmsF2Sketch::AddFolded(uint64_t folded, int64_t delta) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += signs_[i].SignFolded(folded) * delta;
  }
}

void AmsF2Sketch::AddFoldedBatch(const uint64_t* folded, size_t n,
                                 int64_t delta) {
  constexpr size_t kTile = 128;
  uint64_t hashes[kTile];
  for (size_t i = 0; i < n; i += kTile) {
    size_t m = std::min(kTile, n - i);
    for (size_t cell = 0; cell < counters_.size(); ++cell) {
      signs_[cell].MapFoldedBatch(folded + i, hashes, m);
      int64_t ones = 0;
      for (size_t j = 0; j < m; ++j) ones += static_cast<int64_t>(hashes[j] & 1);
      // Σ signs = (+1)·ones + (−1)·(m − ones) = 2·ones − m.
      counters_[cell] += delta * (2 * ones - static_cast<int64_t>(m));
    }
  }
}

namespace {
constexpr uint32_t kAmsMagic = 0x414d5331;  // "AMS1"
}  // namespace

void AmsF2Sketch::Save(std::ostream& os) const {
  WriteHeader(os, kAmsMagic, 1);
  WriteU32(os, config_.rows);
  WriteU32(os, config_.cols);
  WriteU64(os, config_.seed);
  WritePodVector(os, counters_);
}

AmsF2Sketch AmsF2Sketch::Load(std::istream& is) {
  CheckHeader(is, kAmsMagic, 1);
  Config config;
  config.rows = ReadU32(is);
  config.cols = ReadU32(is);
  config.seed = ReadU64(is);
  AmsF2Sketch out(config);
  out.counters_ = ReadPodVector<int64_t>(is);
  CHECK_EQ(out.counters_.size(),
           static_cast<size_t>(config.rows) * config.cols);
  return out;
}

void AmsF2Sketch::Merge(const AmsF2Sketch& other) {
  CHECK_EQ(config_.rows, other.config_.rows);
  CHECK_EQ(config_.cols, other.config_.cols);
  CHECK_EQ(config_.seed, other.config_.seed);
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
}

double AmsF2Sketch::Estimate() const {
  std::vector<double> row_means;
  row_means.reserve(config_.rows);
  for (uint32_t r = 0; r < config_.rows; ++r) {
    double acc = 0;
    for (uint32_t c = 0; c < config_.cols; ++c) {
      double z = static_cast<double>(counters_[r * config_.cols + c]);
      acc += z * z;
    }
    row_means.push_back(acc / config_.cols);
  }
  return Median(std::move(row_means));
}

size_t AmsF2Sketch::MemoryBytes() const {
  size_t bytes = VectorBytes(counters_);
  for (const auto& h : signs_) bytes += h.MemoryBytes();
  return bytes;
}

}  // namespace streamkc
