// L0-estimation / distinct elements (Theorem 2.12).
//
// The paper needs a single-pass (1 ± ε) distinct-count sketch in Õ(1) space
// (it invokes it with ε = 1/2). We implement the KMV ("k minimum values" /
// bottom-k) sketch of Bar-Yossef et al. [11]: hash each item to [0, 2^61),
// keep the k smallest distinct hash values, and estimate L0 as (k-1) / v_k
// where v_k is the k-th smallest normalized value. Relative error is
// O(1/√k) with constant probability, so k = O(1/ε²) realizes Theorem 2.12's
// contract; memory is k words.
//
// The hash is 4-wise independent, not pairwise: a pairwise polynomial over
// GF(p) is affine, so arithmetic-progression id streams (ubiquitous in
// benchmarks and real data) map to arithmetic progressions mod p, whose
// order statistics have fat tails — we measured 2.5× errors. Degree ≥ 3
// breaks the linear structure and restores the expected 1/√k behavior.
//
// While fewer than k distinct hash values have been seen the sketch is exact.
// Sketches built with the same seed are mergeable (used by tests and by the
// reporting pipeline's per-group counters).

#ifndef STREAMKC_SKETCH_L0_ESTIMATOR_H_
#define STREAMKC_SKETCH_L0_ESTIMATOR_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "hash/kwise_hash.h"
#include "obs/space_accountant.h"
#include "util/space.h"

namespace streamkc {

class L0Estimator : public SpaceMetered {
 public:
  struct Config {
    // Number of minima retained. Error ~ 2/sqrt(num_mins); the default gives
    // well under the (1 ± 1/2) guarantee the paper's Theorem 2.12 needs.
    uint32_t num_mins = 64;
    uint64_t seed = 1;
  };

  explicit L0Estimator(const Config& config);

  // Observes item `id` (duplicates are free: same hash value).
  void Add(uint64_t id);

  // Current estimate of the number of distinct ids seen.
  double Estimate() const;

  // True while the sketch still holds every distinct hash value (estimate is
  // exact).
  bool IsExact() const { return !saturated_; }

  // Merges another sketch built with the same Config (same seed). The result
  // estimates the distinct count of the union of the two input streams.
  void Merge(const L0Estimator& other);

  uint64_t items_added() const { return items_added_; }

  // Binary checkpointing (util/serialize.h conventions). Load rebuilds the
  // hash from the stored seed, so a restored sketch continues the stream
  // exactly where the saved one stopped.
  void Save(std::ostream& os) const;
  static L0Estimator Load(std::istream& is);

  size_t MemoryBytes() const override {
    return VectorBytes(heap_) + hash_.MemoryBytes();
  }
  const char* ComponentName() const override { return "l0_estimator"; }
  uint64_t ItemCount() const override { return heap_.size(); }

 private:
  Config config_;
  KWiseHash hash_;
  // Max-heap of the num_mins smallest distinct hash values seen so far.
  std::vector<uint64_t> heap_;
  bool saturated_ = false;
  uint64_t items_added_ = 0;
};

}  // namespace streamkc

#endif  // STREAMKC_SKETCH_L0_ESTIMATOR_H_
