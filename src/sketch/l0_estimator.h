// L0-estimation / distinct elements (Theorem 2.12).
//
// The paper needs a single-pass (1 ± ε) distinct-count sketch in Õ(1) space
// (it invokes it with ε = 1/2). We implement the KMV ("k minimum values" /
// bottom-k) sketch of Bar-Yossef et al. [11]: hash each item to [0, 2^61),
// keep the k smallest distinct hash values, and estimate L0 as (k-1) / v_k
// where v_k is the k-th smallest normalized value. Relative error is
// O(1/√k) with constant probability, so k = O(1/ε²) realizes Theorem 2.12's
// contract; memory is k words.
//
// The hash is 4-wise independent, not pairwise: a pairwise polynomial over
// GF(p) is affine, so arithmetic-progression id streams (ubiquitous in
// benchmarks and real data) map to arithmetic progressions mod p, whose
// order statistics have fat tails — we measured 2.5× errors. Degree ≥ 3
// breaks the linear structure and restores the expected 1/√k behavior.
//
// Representation: a sorted, duplicate-free array of the k smallest hash
// values flushed so far (`mins_`) plus an unsorted admission buffer
// (`buf_`). A new hash is admitted only if it beats the current k-th
// smallest (`threshold_`); the buffer is merged into `mins_` by
// sort/dedup/truncate when it fills or when an observer needs the exact
// state. Admission is O(1), the merge costs O((k + |buf|)·log) every |buf|
// admissions, and the admission rate itself decays like k/L0 — amortized
// O(log k) per admitted item, and no per-item linear duplicate scan (the
// previous max-heap representation paid an O(k) std::find for every hash
// below the running maximum).
//
// While fewer than k distinct hash values have been seen the sketch is exact.
// Sketches built with the same seed are mergeable (used by tests and by the
// reporting pipeline's per-group counters).

#ifndef STREAMKC_SKETCH_L0_ESTIMATOR_H_
#define STREAMKC_SKETCH_L0_ESTIMATOR_H_

#include <cstddef>
#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "hash/kwise_hash.h"
#include "obs/space_accountant.h"
#include "util/space.h"

namespace streamkc {

class L0Estimator : public SpaceMetered {
 public:
  struct Config {
    // Number of minima retained. Error ~ 2/sqrt(num_mins); the default gives
    // well under the (1 ± 1/2) guarantee the paper's Theorem 2.12 needs.
    uint32_t num_mins = 64;
    uint64_t seed = 1;
  };

  explicit L0Estimator(const Config& config);

  // Observes item `id` (duplicates are free: same hash value).
  void Add(uint64_t id) {
    ++items_added_;
    AddHash(hash_.Map(id));
  }

  // Hash-once ingest path: `folded` must equal MersenneFold(id).
  void AddFolded(uint64_t folded) {
    ++items_added_;
    AddHash(hash_.MapFolded(folded));
  }

  // Observes a block of pre-folded ids. Equivalent to calling AddFolded on
  // each in order (bit-identical state), but evaluates the hash with
  // KWiseHash::MapFoldedBatch.
  void AddFoldedBatch(const uint64_t* folded, size_t n);

  // Current estimate of the number of distinct ids seen.
  double Estimate() const;

  // True while the sketch still holds every distinct hash value (estimate is
  // exact).
  bool IsExact() const {
    FlushBuffer();
    return !saturated_;
  }

  // Merges another sketch built with the same Config (same seed). The result
  // estimates the distinct count of the union of the two input streams.
  void Merge(const L0Estimator& other);

  uint64_t items_added() const { return items_added_; }

  // Binary checkpointing (util/serialize.h conventions). Load rebuilds the
  // hash from the stored seed, so a restored sketch continues the stream
  // exactly where the saved one stopped. Load validates the blob: values
  // must lie in the field domain and be duplicate-free, and a saturated
  // sketch must be full — a tampered or corrupted checkpoint fails a CHECK
  // instead of silently skewing estimates.
  void Save(std::ostream& os) const;
  static L0Estimator Load(std::istream& is);

  size_t MemoryBytes() const override {
    return VectorBytes(mins_) + VectorBytes(buf_) + hash_.MemoryBytes();
  }
  const char* ComponentName() const override { return "l0_estimator"; }
  uint64_t ItemCount() const override {
    FlushBuffer();
    return mins_.size();
  }

 private:
  // Admission gate shared by all Add entry points.
  void AddHash(uint64_t h) {
    if (h >= threshold_) {
      // Beyond (or equal to) the current k-th smallest: either a duplicate
      // of the retained maximum or a distinct value outside the k smallest.
      // Only possible once the sketch is full (threshold_ starts at +inf).
      if (h > threshold_) saturated_ = true;
      return;
    }
    buf_.push_back(h);
    if (buf_.size() >= flush_at_) FlushBuffer();
  }

  // Merges buf_ into mins_ (sort/dedup/truncate) and refreshes threshold_ /
  // saturated_. Const because observers (Estimate, IsExact, Save) must see
  // the settled state; the mutated members are declared mutable.
  void FlushBuffer() const;

  Config config_;
  KWiseHash hash_;
  size_t flush_at_;  // buffer capacity before a forced flush
  // Sorted ascending, duplicate-free: the k smallest flushed hash values.
  mutable std::vector<uint64_t> mins_;
  // Unsorted admitted hashes, each < threshold_ (may contain duplicates).
  mutable std::vector<uint64_t> buf_;
  // Admission gate: k-th smallest flushed value once full, else +inf.
  mutable uint64_t threshold_;
  mutable bool saturated_ = false;
  uint64_t items_added_ = 0;
};

}  // namespace streamkc

#endif  // STREAMKC_SKETCH_L0_ESTIMATOR_H_
