#include "sketch/f2_heavy_hitters.h"

#include <algorithm>
#include <cmath>

#include "hash/mersenne.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/random.h"
#include "util/serialize.h"

namespace streamkc {

namespace {

CountSketch::Config MakeCountSketchConfig(const F2HeavyHitters::Config& c,
                                          uint64_t seed) {
  CountSketch::Config cs;
  cs.depth = c.depth;
  double w = c.width_factor / c.phi;
  cs.width = static_cast<uint32_t>(
      std::min<double>(std::max(w, 8.0), static_cast<double>(c.max_width)));
  cs.seed = seed;
  return cs;
}

}  // namespace

F2HeavyHitters::F2HeavyHitters(const Config& config)
    : config_(config),
      count_sketch_(MakeCountSketchConfig(config, SplitMix64(config.seed))),
      capacity_(static_cast<size_t>(
          std::max(4.0, config.cand_factor / config.phi))) {
  CHECK_GT(config.phi, 0.0);
  CHECK_LE(config.phi, 1.0);
  candidates_.reserve(2 * capacity_ + 1);
}

void F2HeavyHitters::Add(uint64_t id, int64_t delta) {
  AddFolded(id, MersenneFold(id), delta);
}

void F2HeavyHitters::AddFolded(uint64_t id, uint64_t folded, int64_t delta) {
  count_sketch_.AddFolded(folded, delta);
  auto it = candidates_.find(id);
  if (it != candidates_.end()) {
    it->second += static_cast<double>(delta > 0 ? delta : -delta);
    return;
  }
  // Cheap admission gate before touching the candidate set: one row-0
  // estimate against the running row-0 F2. A φ-heavy coordinate reads
  // ≥ √(φF2) - noise and passes comfortably; most light coordinates fail,
  // which keeps map churn (and amortized point queries) low. A heavy
  // coordinate unluckily gated on one update passes on a later one — in an
  // insertion-only stream its estimate only grows.
  double quick = count_sketch_.QuickEstimateFolded(folded);
  if (quick * quick * 6.0 < config_.phi * count_sketch_.QuickF2()) return;
  candidates_[id] = count_sketch_.PointQuery(id);
  if (candidates_.size() > 2 * capacity_) PruneCandidates();
}

void F2HeavyHitters::PruneCandidates() {
  // Refresh all scores with true point estimates, then keep the top
  // `capacity_`. Amortized O(1) queries per insertion.
  std::vector<std::pair<double, uint64_t>> entries;
  entries.reserve(candidates_.size());
  for (const auto& [id, score] : candidates_) {
    (void)score;
    entries.emplace_back(count_sketch_.PointQuery(id), id);
  }
  std::nth_element(
      entries.begin(), entries.begin() + static_cast<long>(capacity_),
      entries.end(),
      [](const auto& a, const auto& b) { return a.first > b.first; });
  entries.resize(capacity_);
  candidates_.clear();
  for (const auto& [est, id] : entries) candidates_[id] = est;
}

namespace {
constexpr uint32_t kHhMagic = 0x46324848;  // "F2HH"
}  // namespace

void F2HeavyHitters::Save(std::ostream& os) const {
  WriteHeader(os, kHhMagic, 1);
  WriteDouble(os, config_.phi);
  WriteU32(os, config_.depth);
  WriteDouble(os, config_.width_factor);
  WriteDouble(os, config_.cand_factor);
  WriteDouble(os, config_.noise_floor_sigmas);
  WriteU32(os, config_.max_width);
  WriteU64(os, config_.seed);
  count_sketch_.Save(os);
  WriteU64(os, candidates_.size());
  for (const auto& [id, score] : candidates_) {
    WriteU64(os, id);
    WriteDouble(os, score);
  }
}

F2HeavyHitters F2HeavyHitters::Load(std::istream& is) {
  CheckHeader(is, kHhMagic, 1);
  Config config;
  config.phi = ReadDouble(is);
  config.depth = ReadU32(is);
  config.width_factor = ReadDouble(is);
  config.cand_factor = ReadDouble(is);
  config.noise_floor_sigmas = ReadDouble(is);
  config.max_width = ReadU32(is);
  config.seed = ReadU64(is);
  F2HeavyHitters out(config);
  out.count_sketch_ = CountSketch::Load(is);
  uint64_t n = ReadU64(is);
  CHECK_LE(n, 4 * out.capacity_ + 16);
  out.candidates_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id = ReadU64(is);
    out.candidates_[id] = ReadDouble(is);
  }
  return out;
}

void F2HeavyHitters::Merge(const F2HeavyHitters& other) {
  // Full config equality, not just seed + phi: depth/width_factor/max_width
  // determine the CountSketch geometry and cand_factor the candidate
  // capacity. The inner CountSketch re-checks its own shape, but failing
  // here names the mismatched field instead of a derived quantity, and
  // cand_factor/noise_floor_sigmas are NOT covered by any inner check —
  // a mismatch would silently merge incompatible candidate policies.
  CHECK_EQ(config_.seed, other.config_.seed);
  CHECK_EQ(config_.phi, other.config_.phi);
  CHECK_EQ(config_.depth, other.config_.depth);
  CHECK_EQ(config_.width_factor, other.config_.width_factor);
  CHECK_EQ(config_.cand_factor, other.config_.cand_factor);
  CHECK_EQ(config_.noise_floor_sigmas, other.config_.noise_floor_sigmas);
  CHECK_EQ(config_.max_width, other.config_.max_width);
  count_sketch_.Merge(other.count_sketch_);
  for (const auto& [id, score] : other.candidates_) {
    (void)score;
    candidates_.try_emplace(id, 0.0);
  }
  if (candidates_.size() > capacity_) PruneCandidates();
}

std::vector<HeavyHitter> F2HeavyHitters::Extract() const {
  double f2 = std::max(EstimateF2(), 0.0);
  // Admission threshold, two parts:
  //  * heaviness: est ≥ √(φ·F2̂/4) — the 1/4 slack absorbs the (1 ± 1/2)
  //    estimation error on the coordinate and on F2, so every truly φ-heavy
  //    coordinate is admitted w.h.p.;
  //  * noise floor: est ≥ 3·√(F2̂/width) — three per-row standard deviations
  //    of CountSketch noise. Without it, streams with NO heavy coordinate
  //    (large F2 spread over many light ids) produce spurious hitters from
  //    bucket noise; with width = 16/φ the floor is 0.75·√(φF2), still below
  //    any real φ-heavy coordinate.
  double noise_floor =
      config_.noise_floor_sigmas *
      std::sqrt(f2 / static_cast<double>(count_sketch_.width()));
  double thr = std::max(std::sqrt(config_.phi * f2 / 4.0), noise_floor);
  std::vector<HeavyHitter> out;
  for (const auto& [id, score] : candidates_) {
    (void)score;
    double est = count_sketch_.PointQuery(id);
    if (est >= thr && est > 0) out.push_back(HeavyHitter{id, est});
  }
  std::sort(out.begin(), out.end(), [](const HeavyHitter& a, const HeavyHitter& b) {
    return a.estimate > b.estimate;
  });
  return out;
}

size_t F2HeavyHitters::MemoryBytes() const {
  return count_sketch_.MemoryBytes() + UnorderedMapBytes(candidates_);
}

void F2HeavyHitters::ReportSpace(SpaceAccountant* acct) const {
  SpaceMetered::ReportSpace(acct);
  count_sketch_.ReportSpace(acct);
}

}  // namespace streamkc
