#include "sketch/l0_estimator.h"

#include <algorithm>
#include <limits>

#include "hash/mersenne.h"
#include "util/serialize.h"
#include "util/check.h"

namespace streamkc {

L0Estimator::L0Estimator(const Config& config)
    : config_(config),
      hash_(KWiseHash::FourWise(config.seed)),
      // A quarter of k keeps the buffer's space overhead at 25% while the
      // merge cost stays amortized O(log k) per admission (each flush sorts
      // ~1.25k values for k/4 admissions).
      flush_at_(std::max<size_t>(8, config.num_mins / 4)),
      threshold_(std::numeric_limits<uint64_t>::max()) {
  CHECK_GE(config.num_mins, 2u);
  mins_.reserve(config.num_mins);
  buf_.reserve(flush_at_);
}

void L0Estimator::AddFoldedBatch(const uint64_t* folded, size_t n) {
  items_added_ += n;
  constexpr size_t kTile = 128;
  uint64_t hashes[kTile];
  for (size_t i = 0; i < n; i += kTile) {
    size_t m = std::min(kTile, n - i);
    hash_.MapFoldedBatch(folded + i, hashes, m);
    for (size_t j = 0; j < m; ++j) AddHash(hashes[j]);
  }
}

void L0Estimator::FlushBuffer() const {
  if (buf_.empty()) return;
  mins_.insert(mins_.end(), buf_.begin(), buf_.end());
  buf_.clear();
  std::sort(mins_.begin(), mins_.end());
  mins_.erase(std::unique(mins_.begin(), mins_.end()), mins_.end());
  if (mins_.size() > config_.num_mins) {
    // A distinct value beyond the k smallest existed: estimate mode from now
    // on.
    saturated_ = true;
    mins_.resize(config_.num_mins);
  }
  if (mins_.size() == config_.num_mins) threshold_ = mins_.back();
}

double L0Estimator::Estimate() const {
  FlushBuffer();
  if (!saturated_) return static_cast<double>(mins_.size());
  // v_k normalized to (0, 1]; estimate (k-1)/v_k.
  double vk = static_cast<double>(mins_.back()) /
              static_cast<double>(kMersennePrime61);
  if (vk <= 0) return static_cast<double>(mins_.size());
  return static_cast<double>(mins_.size() - 1) / vk;
}

namespace {
constexpr uint32_t kL0Magic = 0x4b4d5631;  // "KMV1"
}  // namespace

void L0Estimator::Save(std::ostream& os) const {
  FlushBuffer();
  WriteHeader(os, kL0Magic, 1);
  WriteU32(os, config_.num_mins);
  WriteU64(os, config_.seed);
  WritePodVector(os, mins_);
  WriteU32(os, saturated_ ? 1 : 0);
  WriteU64(os, items_added_);
}

L0Estimator L0Estimator::Load(std::istream& is) {
  CheckHeader(is, kL0Magic, 1);
  Config config;
  config.num_mins = ReadU32(is);
  config.seed = ReadU64(is);
  L0Estimator out(config);
  out.mins_ = ReadPodVector<uint64_t>(is);
  CHECK_LE(out.mins_.size(), config.num_mins);
  // Re-establish the invariant rather than trusting the blob: every value
  // must be a possible hash output (the field domain [0, 2^61 - 1)), and the
  // retained minima must be distinct — a duplicated or out-of-range entry
  // means a corrupted checkpoint, which must fail loudly here instead of
  // deflating every later estimate. Version-1 blobs written by the old
  // heap-ordered representation are accepted: sorting is part of the
  // re-establishment.
  std::sort(out.mins_.begin(), out.mins_.end());
  for (size_t i = 0; i < out.mins_.size(); ++i) {
    CHECK(out.mins_[i] < kMersennePrime61);
    if (i > 0) CHECK(out.mins_[i] > out.mins_[i - 1]);
  }
  out.saturated_ = ReadU32(is) != 0;
  // A saturated sketch has, by construction, retained exactly num_mins
  // values; anything else is tampering.
  if (out.saturated_) CHECK_EQ(out.mins_.size(), config.num_mins);
  if (out.mins_.size() == config.num_mins) out.threshold_ = out.mins_.back();
  out.items_added_ = ReadU64(is);
  return out;
}

void L0Estimator::Merge(const L0Estimator& other) {
  CHECK_EQ(config_.num_mins, other.config_.num_mins);
  CHECK_EQ(config_.seed, other.config_.seed);
  FlushBuffer();
  other.FlushBuffer();
  items_added_ += other.items_added_;
  // Union the two minima sets, dedup, keep the k smallest.
  mins_.insert(mins_.end(), other.mins_.begin(), other.mins_.end());
  std::sort(mins_.begin(), mins_.end());
  mins_.erase(std::unique(mins_.begin(), mins_.end()), mins_.end());
  bool dropped = mins_.size() > config_.num_mins;
  if (dropped) mins_.resize(config_.num_mins);
  if (mins_.size() == config_.num_mins) threshold_ = mins_.back();
  saturated_ = saturated_ || other.saturated_ || dropped;
}

}  // namespace streamkc
