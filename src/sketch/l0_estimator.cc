#include "sketch/l0_estimator.h"

#include <algorithm>

#include "hash/mersenne.h"
#include "util/serialize.h"
#include "util/check.h"

namespace streamkc {

L0Estimator::L0Estimator(const Config& config)
    : config_(config), hash_(KWiseHash::FourWise(config.seed)) {
  CHECK_GE(config.num_mins, 2u);
  heap_.reserve(config.num_mins);
}

void L0Estimator::Add(uint64_t id) {
  ++items_added_;
  uint64_t h = hash_.Map(id);
  if (heap_.size() < config_.num_mins) {
    // Linear duplicate check is fine at this size (num_mins is O(1)); it only
    // runs until the heap fills.
    if (std::find(heap_.begin(), heap_.end(), h) != heap_.end()) return;
    heap_.push_back(h);
    std::push_heap(heap_.begin(), heap_.end());
    return;
  }
  // Heap is full; heap_.front() is the largest retained value.
  if (h > heap_.front()) {
    // A distinct value beyond the k smallest exists: estimate mode from now
    // on. (h cannot be a retained duplicate: it exceeds the maximum.)
    saturated_ = true;
    return;
  }
  if (h == heap_.front() ||
      std::find(heap_.begin(), heap_.end(), h) != heap_.end()) {
    return;  // duplicate of a retained value
  }
  saturated_ = true;
  std::pop_heap(heap_.begin(), heap_.end());
  heap_.back() = h;
  std::push_heap(heap_.begin(), heap_.end());
}

double L0Estimator::Estimate() const {
  if (!saturated_) return static_cast<double>(heap_.size());
  // v_k normalized to (0, 1]; estimate (k-1)/v_k.
  double vk = static_cast<double>(heap_.front()) /
              static_cast<double>(kMersennePrime61);
  if (vk <= 0) return static_cast<double>(heap_.size());
  return static_cast<double>(heap_.size() - 1) / vk;
}

namespace {
constexpr uint32_t kL0Magic = 0x4b4d5631;  // "KMV1"
}  // namespace

void L0Estimator::Save(std::ostream& os) const {
  WriteHeader(os, kL0Magic, 1);
  WriteU32(os, config_.num_mins);
  WriteU64(os, config_.seed);
  WritePodVector(os, heap_);
  WriteU32(os, saturated_ ? 1 : 0);
  WriteU64(os, items_added_);
}

L0Estimator L0Estimator::Load(std::istream& is) {
  CheckHeader(is, kL0Magic, 1);
  Config config;
  config.num_mins = ReadU32(is);
  config.seed = ReadU64(is);
  L0Estimator out(config);
  out.heap_ = ReadPodVector<uint64_t>(is);
  CHECK_LE(out.heap_.size(), config.num_mins);
  out.saturated_ = ReadU32(is) != 0;
  out.items_added_ = ReadU64(is);
  return out;
}

void L0Estimator::Merge(const L0Estimator& other) {
  CHECK_EQ(config_.num_mins, other.config_.num_mins);
  CHECK_EQ(config_.seed, other.config_.seed);
  items_added_ += other.items_added_;
  // Union the two minima multisets, dedup, keep the k smallest.
  std::vector<uint64_t> all = heap_;
  all.insert(all.end(), other.heap_.begin(), other.heap_.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  bool dropped = all.size() > config_.num_mins;
  if (dropped) all.resize(config_.num_mins);
  heap_ = std::move(all);
  std::make_heap(heap_.begin(), heap_.end());
  saturated_ = saturated_ || other.saturated_ || dropped;
}

}  // namespace streamkc
