#include "sketch/hyperloglog.h"

#include <cmath>

#include "util/check.h"
#include "util/serialize.h"

namespace streamkc {

HyperLogLog::HyperLogLog(const Config& config)
    : config_(config), hash_(config.seed) {
  CHECK_GE(config.precision, 4u);
  CHECK_LE(config.precision, 18u);
  registers_.assign(1u << config.precision, 0);
}

void HyperLogLog::Add(uint64_t id) {
  uint64_t h = hash_.Map(id);
  uint32_t p = config_.precision;
  uint32_t bucket = static_cast<uint32_t>(h >> (64 - p));
  // Rank = 1 + number of leading zeros in the remaining 64-p bits.
  uint64_t rest = h << p;
  uint8_t rank = rest == 0 ? static_cast<uint8_t>(64 - p + 1)
                           : static_cast<uint8_t>(__builtin_clzll(rest) + 1);
  if (rank > registers_[bucket]) registers_[bucket] = rank;
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double inv_sum = 0;
  uint32_t zeros = 0;
  for (uint8_t r : registers_) {
    inv_sum += std::ldexp(1.0, -static_cast<int>(r));
    zeros += (r == 0);
  }
  // Bias constant alpha_m for m >= 128 (standard values for smaller m).
  double alpha;
  if (m <= 16) {
    alpha = 0.673;
  } else if (m <= 32) {
    alpha = 0.697;
  } else if (m <= 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }
  double raw = alpha * m * m / inv_sum;
  // Small-range correction: linear counting while any register is empty and
  // the raw estimate is in the biased zone.
  if (raw <= 2.5 * m && zeros > 0) {
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

namespace {
constexpr uint32_t kHllMagic = 0x484c4c31;  // "HLL1"
}  // namespace

void HyperLogLog::Save(std::ostream& os) const {
  WriteHeader(os, kHllMagic, 1);
  WriteU32(os, config_.precision);
  WriteU64(os, config_.seed);
  WritePodVector(os, registers_);
}

HyperLogLog HyperLogLog::Load(std::istream& is) {
  CheckHeader(is, kHllMagic, 1);
  Config config;
  config.precision = ReadU32(is);
  config.seed = ReadU64(is);
  HyperLogLog out(config);
  out.registers_ = ReadPodVector<uint8_t>(is);
  CHECK_EQ(out.registers_.size(), size_t{1} << config.precision);
  return out;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  CHECK_EQ(config_.precision, other.config_.precision);
  CHECK_EQ(config_.seed, other.config_.seed);
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

}  // namespace streamkc
