#include "sketch/count_sketch.h"

#include <algorithm>

#include "util/check.h"
#include "util/math_util.h"
#include "util/random.h"
#include "util/serialize.h"

namespace streamkc {

CountSketch::CountSketch(const Config& config) : config_(config) {
  CHECK_GE(config.depth, 1u);
  CHECK_GE(config.width, 2u);
  Rng rng(config.seed);
  row_hash_.reserve(config.depth);
  for (uint32_t r = 0; r < config.depth; ++r) {
    row_hash_.push_back(KWiseHash::FourWise(rng.Fork()));
  }
  counters_.assign(static_cast<size_t>(config.depth) * config.width, 0);
}

void CountSketch::Add(uint64_t id, int64_t delta) {
  AddFolded(MersenneFold(id), delta);
}

void CountSketch::AddFolded(uint64_t folded, int64_t delta) {
  for (uint32_t r = 0; r < config_.depth; ++r) {
    auto [sign, idx] = SignBucketFromHash(r, row_hash_[r].MapFolded(folded));
    int64_t& cell = counters_[idx];
    int64_t update = sign * delta;
    if (r == 0) {
      // (c + u)² - c² = 2cu + u²: keep row 0's sum of squares current.
      row0_f2_ += static_cast<double>(2 * cell * update + update * update);
    }
    cell += update;
  }
}

void CountSketch::AddFoldedBatch(const uint64_t* folded, size_t n,
                                 int64_t delta) {
  constexpr size_t kTile = 128;
  uint64_t hashes[kTile];
  for (size_t i = 0; i < n; i += kTile) {
    size_t m = std::min(kTile, n - i);
    for (uint32_t r = 0; r < config_.depth; ++r) {
      row_hash_[r].MapFoldedBatch(folded + i, hashes, m);
      if (r == 0) {
        for (size_t j = 0; j < m; ++j) {
          auto [sign, idx] = SignBucketFromHash(0, hashes[j]);
          int64_t& cell = counters_[idx];
          int64_t update = sign * delta;
          row0_f2_ += static_cast<double>(2 * cell * update + update * update);
          cell += update;
        }
      } else {
        for (size_t j = 0; j < m; ++j) {
          auto [sign, idx] = SignBucketFromHash(r, hashes[j]);
          counters_[idx] += sign * delta;
        }
      }
    }
  }
}

namespace {
constexpr uint32_t kCsMagic = 0x43534b31;  // "CSK1"
}  // namespace

void CountSketch::Save(std::ostream& os) const {
  WriteHeader(os, kCsMagic, 1);
  WriteU32(os, config_.depth);
  WriteU32(os, config_.width);
  WriteU64(os, config_.seed);
  WritePodVector(os, counters_);
  WriteDouble(os, row0_f2_);
}

CountSketch CountSketch::Load(std::istream& is) {
  CheckHeader(is, kCsMagic, 1);
  Config config;
  config.depth = ReadU32(is);
  config.width = ReadU32(is);
  config.seed = ReadU64(is);
  CountSketch out(config);
  out.counters_ = ReadPodVector<int64_t>(is);
  CHECK_EQ(out.counters_.size(),
           static_cast<size_t>(config.depth) * config.width);
  out.row0_f2_ = ReadDouble(is);
  return out;
}

void CountSketch::Merge(const CountSketch& other) {
  CHECK_EQ(config_.depth, other.config_.depth);
  CHECK_EQ(config_.width, other.config_.width);
  CHECK_EQ(config_.seed, other.config_.seed);
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  // Recompute row 0's running sum of squares from scratch (cheap, O(width)).
  row0_f2_ = 0;
  for (uint32_t b = 0; b < config_.width; ++b) {
    double c = static_cast<double>(counters_[b]);
    row0_f2_ += c * c;
  }
}

double CountSketch::PointQuery(uint64_t id) const {
  std::vector<double> votes;
  votes.reserve(config_.depth);
  for (uint32_t r = 0; r < config_.depth; ++r) {
    auto [sign, idx] = RowSignBucket(r, id);
    votes.push_back(sign * static_cast<double>(counters_[idx]));
  }
  return Median(std::move(votes));
}

double CountSketch::EstimateF2() const {
  std::vector<double> rows;
  rows.reserve(config_.depth);
  for (uint32_t r = 0; r < config_.depth; ++r) {
    double acc = 0;
    for (uint32_t b = 0; b < config_.width; ++b) {
      double c = static_cast<double>(
          counters_[static_cast<size_t>(r) * config_.width + b]);
      acc += c * c;
    }
    rows.push_back(acc);
  }
  return Median(std::move(rows));
}

size_t CountSketch::MemoryBytes() const {
  size_t bytes = VectorBytes(counters_) + sizeof(row0_f2_);
  for (const auto& h : row_hash_) bytes += h.MemoryBytes();
  return bytes;
}

}  // namespace streamkc
