// HyperLogLog distinct-element counter (Flajolet et al. 2007).
//
// A second realization of the Theorem 2.12 contract, alongside the KMV
// sketch: 2^precision 6-bit registers track the maximum number of leading
// zeros seen per bucket; the harmonic-mean estimator with the standard bias
// correction gives relative error ≈ 1.04/√(2^precision). Versus KMV at
// equal error: ~5× fewer bits (6-bit registers vs 64-bit minima), but it is
// not exact at small cardinalities without the linear-counting patch
// (implemented), and merging takes register-wise max.
//
// streamkc uses KMV on the algorithm paths (exactness below k distinct is
// load-bearing for the tiny reduced universes); HyperLogLog is provided for
// memory-constrained callers and benchmarked against KMV in bench_sketches.

#ifndef STREAMKC_SKETCH_HYPERLOGLOG_H_
#define STREAMKC_SKETCH_HYPERLOGLOG_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "hash/tabulation_hash.h"
#include "obs/space_accountant.h"
#include "util/space.h"

namespace streamkc {

class HyperLogLog : public SpaceMetered {
 public:
  struct Config {
    // Number of register-index bits: 2^precision registers. Error
    // ≈ 1.04/√(2^precision); 4 ≤ precision ≤ 18.
    uint32_t precision = 10;
    uint64_t seed = 1;
  };

  explicit HyperLogLog(const Config& config);

  void Add(uint64_t id);

  // Bias-corrected harmonic-mean estimate with linear counting at the low
  // end (the standard small-range correction).
  double Estimate() const;

  // Register-wise max; both sketches must share Config.
  void Merge(const HyperLogLog& other);

  // Binary checkpointing.
  void Save(std::ostream& os) const;
  static HyperLogLog Load(std::istream& is);

  size_t MemoryBytes() const override {
    // 6 bits of entropy per register; stored as bytes for simplicity, and
    // accounted as stored.
    return registers_.size() + hash_.MemoryBytes();
  }

  uint32_t num_registers() const {
    return static_cast<uint32_t>(registers_.size());
  }
  const char* ComponentName() const override { return "hyperloglog"; }
  uint64_t ItemCount() const override { return registers_.size(); }

 private:
  Config config_;
  TabulationHash hash_;
  std::vector<uint8_t> registers_;
};

}  // namespace streamkc

#endif  // STREAMKC_SKETCH_HYPERLOGLOG_H_
