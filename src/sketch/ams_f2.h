// AMS "tug-of-war" second frequency moment sketch (Alon-Matias-Szegedy [5]).
//
// Maintains a grid of counters Z[r][c] = Σ_j s_{r,c}(j)·a[j] with 4-wise
// independent ±1 signs s. Each Z² is an unbiased estimator of F2 = Σ a[j]²;
// averaging `cols` copies controls variance and taking the median of `rows`
// averages boosts confidence (median-of-means). Space: rows·cols words.
//
// Used as the F2 reference inside F2HeavyHitters (a coordinate is a
// φ-HeavyHitter iff a[j]² ≥ φ·F2, Definition 2.6) and by the lower-bound
// distinguisher of Section 5.

#ifndef STREAMKC_SKETCH_AMS_F2_H_
#define STREAMKC_SKETCH_AMS_F2_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

#include "hash/kwise_hash.h"
#include "obs/space_accountant.h"
#include "util/space.h"

namespace streamkc {

class AmsF2Sketch : public SpaceMetered {
 public:
  struct Config {
    uint32_t rows = 5;    // median over rows
    uint32_t cols = 16;   // mean within a row
    uint64_t seed = 1;
  };

  explicit AmsF2Sketch(const Config& config);

  // a[id] += delta (delta defaults to 1; negative deltas supported, the
  // sketch is linear).
  void Add(uint64_t id, int64_t delta = 1) { AddFolded(MersenneFold(id), delta); }

  // Hash-once ingest path: `folded` must equal MersenneFold(id).
  void AddFolded(uint64_t folded, int64_t delta = 1);

  // a[id] += delta for every pre-folded id in the block. State is
  // bit-identical to n AddFolded calls (each cell accumulates a sum of ±delta
  // terms; int64 addition commutes), but the hash evaluation runs per cell
  // over the whole block with MapFoldedBatch: a cell counter update becomes
  // counter += delta·(2·ones − n) where `ones` counts sign bits, so the
  // per-edge cost drops from rows·cols dependent Horner chains to batched,
  // ILP-friendly ones.
  void AddFoldedBatch(const uint64_t* folded, size_t n, int64_t delta = 1);

  // Median-of-means estimate of F2.
  double Estimate() const;

  // Adds another sketch built with the same Config (linearity).
  void Merge(const AmsF2Sketch& other);

  // Binary checkpointing; sign hashes are rebuilt from the stored seed.
  void Save(std::ostream& os) const;
  static AmsF2Sketch Load(std::istream& is);

  size_t MemoryBytes() const override;
  const char* ComponentName() const override { return "ams_f2"; }
  uint64_t ItemCount() const override { return counters_.size(); }

 private:
  Config config_;
  std::vector<KWiseHash> signs_;   // one 4-wise sign hash per cell
  std::vector<int64_t> counters_;  // rows * cols
};

}  // namespace streamkc

#endif  // STREAMKC_SKETCH_AMS_F2_H_
