#include "obs/metrics.h"

#include "util/check.h"

namespace streamkc {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.counter == nullptr) {
    CHECK(e.gauge == nullptr && e.histogram == nullptr);
    e.kind = MetricKind::kCounter;
    e.counter = std::make_unique<Counter>();
  }
  CHECK(e.kind == MetricKind::kCounter);
  return e.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.gauge == nullptr) {
    CHECK(e.counter == nullptr && e.histogram == nullptr);
    e.kind = MetricKind::kGauge;
    e.gauge = std::make_unique<Gauge>();
  }
  CHECK(e.kind == MetricKind::kGauge);
  return e.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.histogram == nullptr) {
    CHECK(e.counter == nullptr && e.gauge == nullptr);
    e.kind = MetricKind::kHistogram;
    e.histogram = std::make_unique<Histogram>();
  }
  CHECK(e.kind == MetricKind::kHistogram);
  return e.histogram.get();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricSample s;
    s.name = name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.value = e.counter->Value();
        break;
      case MetricKind::kGauge:
        s.value = e.gauge->Value();
        break;
      case MetricKind::kHistogram:
        s.count = e.histogram->Count();
        s.sum = e.histogram->Sum();
        for (uint32_t b = 0; b < Histogram::kNumBuckets; ++b) {
          uint64_t c = e.histogram->BucketCount(b);
          if (c != 0) s.buckets.emplace_back(Histogram::BucketUpperBound(b), c);
        }
        break;
    }
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration is already name-sorted
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    (void)name;
    switch (e.kind) {
      case MetricKind::kCounter:
        e.counter->Reset();
        break;
      case MetricKind::kGauge:
        e.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        e.histogram->Reset();
        break;
    }
  }
}

size_t MetricsRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

std::string LabeledName(const std::string& base, const std::string& label,
                        const std::string& value) {
  return base + "{" + label + "=\"" + value + "\"}";
}

}  // namespace streamkc
