#include "obs/space_accountant.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/check.h"

namespace streamkc {

void SpaceMetered::ReportSpace(SpaceAccountant* acct) const {
  acct->Report(ComponentName(), MemoryBytes(), ItemCount());
}

void SpaceAccountant::Sample(const SpaceMetered& root) {
  CHECK(!in_epoch_);
  in_epoch_ = true;
  epoch_.clear();
  root.ReportSpace(this);
  in_epoch_ = false;

  current_total_ = root.MemoryBytes();
  peak_total_ = std::max(peak_total_, current_total_);
  ++num_samples_;

  for (const auto& [name, bytes_items] : epoch_) {
    ComponentStats& cs = components_[name];
    cs.current_bytes = bytes_items.first;
    cs.peak_bytes = std::max(cs.peak_bytes, bytes_items.first);
    cs.items = bytes_items.second;
    cs.peak_items = std::max(cs.peak_items, bytes_items.second);
  }
  // Components absent from this epoch (e.g. a pruned pool entry's sketch
  // class disappearing entirely) keep their last row and their peaks.
  PublishGauges();
}

void SpaceAccountant::Report(const char* component, size_t bytes,
                             uint64_t items) {
  CHECK(in_epoch_);
  auto& slot = epoch_[component];
  slot.first += bytes;
  slot.second += items;
}

void SpaceAccountant::Absorb(const SpaceAccountant& other) {
  current_total_ += other.current_total_;
  peak_total_ += other.peak_total_;
  num_samples_ += other.num_samples_;
  for (const auto& [name, theirs] : other.components_) {
    ComponentStats& cs = components_[name];
    cs.current_bytes += theirs.current_bytes;
    cs.peak_bytes += theirs.peak_bytes;
    cs.items += theirs.items;
    cs.peak_items += theirs.peak_items;
  }
  PublishGauges();
}

void SpaceAccountant::PublishGauges() {
  if (registry_ == nullptr) return;
  registry_->GetGauge("space_current_total_bytes")->Set(current_total_);
  registry_->GetGauge("space_peak_total_bytes")->Set(peak_total_);
  for (const auto& [name, cs] : components_) {
    registry_->GetGauge(LabeledName("space_current_bytes", "component", name))
        ->Set(cs.current_bytes);
    registry_->GetGauge(LabeledName("space_peak_bytes", "component", name))
        ->Set(cs.peak_bytes);
    registry_->GetGauge(LabeledName("space_items", "component", name))
        ->Set(cs.items);
  }
}

std::string SpaceAccountant::ToJson() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "{\"current_total_bytes\": %" PRIu64
                ", \"peak_total_bytes\": %" PRIu64 ", \"samples\": %" PRIu64
                ", \"components\": {",
                current_total_, peak_total_, num_samples_);
  out += buf;
  bool first = true;
  for (const auto& [name, cs] : components_) {
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\": {\"current_bytes\": %" PRIu64
                  ", \"peak_bytes\": %" PRIu64 ", \"items\": %" PRIu64
                  ", \"peak_items\": %" PRIu64 "}",
                  first ? "" : ", ", name.c_str(), cs.current_bytes,
                  cs.peak_bytes, cs.items, cs.peak_items);
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace streamkc
