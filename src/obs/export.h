// Registry exporters: JSON and Prometheus text exposition format.
//
// Both render a MetricsRegistry::Snapshot(). JSON is a flat object keyed by
// the full metric name (label block included), values are integers for
// counters/gauges and {"count","sum","buckets":[[le,count],..]} objects for
// histograms — machine-diffable and schema-validated in CI
// (tools/validate_metrics.py). The Prometheus exporter emits the standard
// text format (# TYPE lines; histograms as cumulative _bucket{le=...} series
// plus _sum/_count) so a scrape endpoint or textfile collector can ingest a
// run's metrics unchanged.

#ifndef STREAMKC_OBS_EXPORT_H_
#define STREAMKC_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace streamkc {

// {"name": value, ..., "hist_name": {"count": c, "sum": s,
//  "buckets": [[upper_bound, count], ...]}, ...} with keys in sorted order.
std::string ExportJson(const std::vector<MetricSample>& samples);

// Prometheus text exposition format, one # TYPE line per metric family.
std::string ExportPrometheus(const std::vector<MetricSample>& samples);

}  // namespace streamkc

#endif  // STREAMKC_OBS_EXPORT_H_
