// Unified space accounting for sketches and estimators.
//
// util/space.h's SpaceAccounted answers "how many bytes do you hold NOW";
// reproducing the paper's space/approximation trade-off at runtime also
// needs *peaks* (rescaling subroutines can shrink, so the end-of-stream
// footprint understates the pass) and a per-component breakdown (the
// Θ̃(m/α²) term lives in the heavy-hitter machinery, the Õ(k) term
// elsewhere). SpaceMetered + SpaceAccountant provide both without any
// registration or lifetime coupling:
//
//   * SpaceMetered (extends SpaceAccounted) names the component and exposes
//     an item count; composites override ReportSpace() to recurse into
//     their children.
//   * SpaceAccountant::Sample(root) walks one root's tree in a single
//     epoch, aggregates bytes/items per component name, and folds the
//     epoch into current/peak statistics (optionally mirrored into a
//     MetricsRegistry as space_current_bytes{component=...} gauges).
//
// Ownership rules (see DESIGN.md §obs): the accountant never owns or
// retains metered objects — sampling is pull-only, driven by whoever owns
// the estimator (the CLI pass loop, each pipeline worker). Component rows
// are INCLUSIVE: a composite's bytes contain its children's, so rows
// overlap and only total_* (measured at the root) is additive-safe.

#ifndef STREAMKC_OBS_SPACE_ACCOUNTANT_H_
#define STREAMKC_OBS_SPACE_ACCOUNTANT_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "util/space.h"

namespace streamkc {

class SpaceAccountant;

// A named, countable holder of stream state. Leaves inherit the default
// ReportSpace (one row: name, bytes, items); composites override it to also
// recurse into children.
class SpaceMetered : public SpaceAccounted {
 public:
  // Stable component name, aggregation key across instances ("l0_estimator"
  // sums every KMV sketch in the tree). snake_case by convention.
  virtual const char* ComponentName() const = 0;

  // Logical retained items (stored samples, counters, candidates); 0 when
  // the notion does not apply.
  virtual uint64_t ItemCount() const { return 0; }

  // Reports this object (and, for composites, its children) into `acct`.
  virtual void ReportSpace(SpaceAccountant* acct) const;
};

class SpaceAccountant {
 public:
  struct ComponentStats {
    uint64_t current_bytes = 0;
    uint64_t peak_bytes = 0;
    uint64_t items = 0;       // at the last sample
    uint64_t peak_items = 0;
  };

  // When `registry` is non-null, every sample mirrors totals and
  // per-component gauges into it (names prefixed "space_"). Per-shard
  // worker accountants pass nullptr and are folded into a publishing
  // accountant after the join (Absorb).
  explicit SpaceAccountant(MetricsRegistry* registry = nullptr)
      : registry_(registry) {}

  // One sampling epoch over `root`'s component tree. Totals are measured at
  // the root (MemoryBytes of the whole tree); component rows aggregate by
  // name within the epoch.
  void Sample(const SpaceMetered& root);

  // In-epoch reporting; called from ReportSpace implementations only.
  void Report(const char* component, size_t bytes, uint64_t items);

  // Sums `other`'s current/peak totals and component rows into this
  // accountant — the sharded-runtime fold, where the pipeline's footprint
  // is the SUM of simultaneous per-shard footprints.
  void Absorb(const SpaceAccountant& other);

  uint64_t current_total_bytes() const { return current_total_; }
  uint64_t peak_total_bytes() const { return peak_total_; }
  uint64_t num_samples() const { return num_samples_; }
  const std::map<std::string, ComponentStats>& components() const {
    return components_;
  }

  // {"current_total_bytes":..,"peak_total_bytes":..,"components":{name:
  // {"current_bytes":..,"peak_bytes":..,"items":..,"peak_items":..},..}}
  std::string ToJson() const;

 private:
  void PublishGauges();

  MetricsRegistry* registry_ = nullptr;
  std::map<std::string, ComponentStats> components_;
  std::map<std::string, std::pair<uint64_t, uint64_t>> epoch_;  // bytes,items
  bool in_epoch_ = false;
  uint64_t current_total_ = 0;
  uint64_t peak_total_ = 0;
  uint64_t num_samples_ = 0;
};

}  // namespace streamkc

#endif  // STREAMKC_OBS_SPACE_ACCOUNTANT_H_
