// Process-wide metrics: named counters, gauges, and log-scale histograms.
//
// The paper's headline claim is a *space* bound, and the ROADMAP's north
// star is a production-scale serving system — both need one source of truth
// for runtime measurements instead of per-call-site printf accounting. This
// registry is that source: every subsystem (stream parsers, sketches, the
// sharded runtime, the CLI) publishes into a MetricsRegistry and the
// exporters (obs/export.h) render one snapshot in JSON or Prometheus text.
//
// Concurrency model ("lock-cheap"): metric objects are plain relaxed
// atomics — an increment is one uncontended atomic add, no lock, safe from
// any thread. The registry's mutex guards only name→object resolution and
// snapshotting; hot paths resolve once (usually at construction) and keep
// the returned pointer, which is stable for the registry's lifetime.
// Relaxed ordering is deliberate: metrics are statistics, not
// synchronization — the program's happens-before edges come from the
// runtime's rings and joins, and Snapshot() taken after a join reads every
// count written before it.
//
// Naming follows Prometheus conventions: snake_case, unit-suffixed
// (`_total` for counters, `_bytes` / `_ns` for sized gauges), optional
// labels in the name itself (`shard_edges_total{shard="3"}`). The label
// block is opaque to the registry — distinct label sets are distinct
// metrics — and the exporters pass it through.

#ifndef STREAMKC_OBS_METRICS_H_
#define STREAMKC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace streamkc {

// Monotonically increasing count (events, items, nanoseconds).
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time value (current bytes, shard count). SetMax keeps a running
// maximum, the building block for peak-space gauges.
class Gauge {
 public:
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  // Raises the gauge to `v` if larger (lock-free CAS loop).
  void SetMax(uint64_t v) {
    uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed,
                          std::memory_order_relaxed)) {
    }
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Fixed log2-scale histogram over uint64 values (latencies in ns, sizes in
// bytes). Bucket b counts values v with bit_width(v) == b, i.e. bucket 0
// holds v == 0 and bucket b ≥ 1 holds v ∈ [2^(b-1), 2^b - 1]; 65 buckets
// cover the whole uint64 range with no configuration and O(1) Observe.
class Histogram {
 public:
  static constexpr uint32_t kNumBuckets = 65;

  void Observe(uint64_t v) {
    uint32_t b = BucketIndex(v);
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(uint32_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  // Index of the bucket holding `v`.
  static uint32_t BucketIndex(uint64_t v) {
    uint32_t w = 0;
    while (v != 0) {
      ++w;
      v >>= 1;
    }
    return w;
  }

  // Largest value bucket `b` holds (inclusive): 0 for bucket 0, 2^b - 1
  // otherwise; UINT64_MAX for the final bucket.
  static uint64_t BucketUpperBound(uint32_t b) {
    if (b == 0) return 0;
    if (b >= 64) return UINT64_MAX;
    return (1ULL << b) - 1;
  }

  void Reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

// One metric's value at snapshot time; the exporters' input format.
struct MetricSample {
  std::string name;  // full name, label block included
  MetricKind kind = MetricKind::kCounter;
  uint64_t value = 0;  // counter / gauge
  // Histogram only: total count, total sum, and per-bucket
  // (inclusive upper bound, count) pairs for nonempty buckets.
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates the named metric. The returned pointer is stable for
  // the registry's lifetime; callers should resolve once and cache it.
  // CHECK-fails if `name` already exists with a different kind.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Point-in-time copy of every metric, sorted by name. Safe to call
  // concurrently with writers (values are read with relaxed loads).
  std::vector<MetricSample> Snapshot() const;

  // Zeroes every registered metric (names and pointers survive). Test and
  // bench hygiene between runs.
  void ResetValues();

  size_t NumMetrics() const;

  // The process-wide registry. Library code defaults to publishing here so
  // one exporter call sees the whole process.
  static MetricsRegistry& Global();

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

// Builds `base{label="value"}`, the registry's labeled-name convention.
std::string LabeledName(const std::string& base, const std::string& label,
                        const std::string& value);

}  // namespace streamkc

#endif  // STREAMKC_OBS_METRICS_H_
