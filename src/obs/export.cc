#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace streamkc {
namespace {

// Splits "base{labels}" into (base, "labels"); labels is empty when absent.
std::pair<std::string, std::string> SplitLabels(const std::string& name) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) return {name, ""};
  std::string labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
  return {name.substr(0, brace), labels};
}

// Labeled metric names embed '"' characters (name{label="value"}), which
// must be escaped when the name becomes a JSON object key.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string ExportJson(const std::vector<MetricSample>& samples) {
  char buf[160];
  std::string out = "{";
  bool first = true;
  for (const MetricSample& s : samples) {
    out += first ? "\n  \"" : ",\n  \"";
    first = false;
    out += JsonEscape(s.name);
    out += "\": ";
    if (s.kind == MetricKind::kHistogram) {
      std::snprintf(buf, sizeof(buf),
                    "{\"count\": %" PRIu64 ", \"sum\": %" PRIu64
                    ", \"buckets\": [",
                    s.count, s.sum);
      out += buf;
      for (size_t b = 0; b < s.buckets.size(); ++b) {
        std::snprintf(buf, sizeof(buf), "%s[%" PRIu64 ", %" PRIu64 "]",
                      b == 0 ? "" : ", ", s.buckets[b].first,
                      s.buckets[b].second);
        out += buf;
      }
      out += "]}";
    } else {
      std::snprintf(buf, sizeof(buf), "%" PRIu64, s.value);
      out += buf;
    }
  }
  out += first ? "}" : "\n}";
  return out;
}

std::string ExportPrometheus(const std::vector<MetricSample>& samples) {
  char buf[160];
  std::string out;
  std::string last_family;
  for (const MetricSample& s : samples) {
    auto [base, labels] = SplitLabels(s.name);
    if (base != last_family) {
      out += "# TYPE " + base + " " + KindName(s.kind) + "\n";
      last_family = base;
    }
    if (s.kind == MetricKind::kHistogram) {
      std::string label_prefix = labels.empty() ? "" : labels + ",";
      uint64_t cumulative = 0;
      for (const auto& [le, count] : s.buckets) {
        cumulative += count;
        std::snprintf(buf, sizeof(buf), "%" PRIu64, le);
        out += base + "_bucket{" + label_prefix + "le=\"" + buf + "\"} ";
        std::snprintf(buf, sizeof(buf), "%" PRIu64 "\n", cumulative);
        out += buf;
      }
      out += base + "_bucket{" + label_prefix + "le=\"+Inf\"} ";
      std::snprintf(buf, sizeof(buf), "%" PRIu64 "\n", s.count);
      out += buf;
      out += base + (labels.empty() ? "_sum " : "_sum{" + labels + "} ");
      std::snprintf(buf, sizeof(buf), "%" PRIu64 "\n", s.sum);
      out += buf;
      out += base + (labels.empty() ? "_count " : "_count{" + labels + "} ");
      std::snprintf(buf, sizeof(buf), "%" PRIu64 "\n", s.count);
      out += buf;
    } else {
      std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", s.value);
      out += s.name + buf;
    }
  }
  return out;
}

}  // namespace streamkc
