// Arithmetic modulo the Mersenne prime p = 2^61 - 1.
//
// Polynomial hash families (hash/kwise_hash.h) evaluate degree-(d-1)
// polynomials over GF(p). The Mersenne structure lets us reduce a 128-bit
// product with shifts and adds instead of a division, which keeps per-edge
// hashing cheap.

#ifndef STREAMKC_HASH_MERSENNE_H_
#define STREAMKC_HASH_MERSENNE_H_

#include <cstdint>

namespace streamkc {

inline constexpr uint64_t kMersennePrime61 = (1ULL << 61) - 1;

// Reduces x (< 2^122) modulo 2^61 - 1 into [0, p).
inline uint64_t MersenneReduce(__uint128_t x) {
  // Split into low/high 61-bit limbs; since 2^61 ≡ 1 (mod p), the value is
  // congruent to the limb sum.
  uint64_t lo = static_cast<uint64_t>(x) & kMersennePrime61;
  uint64_t hi = static_cast<uint64_t>(x >> 61);
  uint64_t r = lo + hi;
  if (r >= kMersennePrime61) r -= kMersennePrime61;
  return r;
}

// (a + b) mod p for a, b in [0, p).
inline uint64_t MersenneAdd(uint64_t a, uint64_t b) {
  uint64_t r = a + b;
  if (r >= kMersennePrime61) r -= kMersennePrime61;
  return r;
}

// (a * b) mod p for a, b in [0, p).
inline uint64_t MersenneMul(uint64_t a, uint64_t b) {
  return MersenneReduce(static_cast<__uint128_t>(a) * b);
}

// Folds an arbitrary 64-bit value into the field domain [0, p). Values p and
// above wrap; with p ≈ 2.3e18 no id in our workloads gets near the wrap, and
// the fold keeps hashing total on uint64_t inputs.
inline uint64_t MersenneFold(uint64_t x) {
  uint64_t r = (x & kMersennePrime61) + (x >> 61);
  if (r >= kMersennePrime61) r -= kMersennePrime61;
  return r;
}

}  // namespace streamkc

#endif  // STREAMKC_HASH_MERSENNE_H_
