// AVX2 kernel for the batched Horner evaluation over GF(p), p = 2^61 - 1.
//
// AVX2 has no 64×64→128 vector multiply, so the field multiply is built
// from _mm256_mul_epu32 (32×32→64) on a 32-bit limb decomposition. For
// v in [0, p) and an accumulator a ≤ 2^62 (see the lazy-reduction
// invariant below), write a = a0 + 2^32·a1 and v = v0 + 2^32·v1 with
// a0, v0 < 2^32, a1 ≤ 2^30 and v1 < 2^29. Then
//
//   a·v = a0·v0 + 2^32·(a0·v1 + a1·v0) + 2^64·a1·v1
//
// with every partial product in range: a0·v0 < 2^64 (the only full-width
// one), a0·v1 < 2^61, a1·v0 < 2^62, their sum mid < 2^63, and
// a1·v1 < 2^59. Reduction uses 2^61 ≡ 1 (mod p), term by term:
//
//   a0·v0        ≡ (lo & p) + (lo >> 61)                 < 2^61 + 8
//   2^32·mid     ≡ ((mid & (2^29-1)) << 32) + (mid >> 29)
//                  (split mid at bit 29 so the << 32 lands exactly on 2^61)
//   2^64·a1·v1   ≡ 8·(a1·v1)  (2^64 = 8·2^61 ≡ 8)             < 2^62
//
// The term sum s stays < 2^63 (no uint64 overflow, and bit 63 clear so
// signed compares remain valid unsigned compares).
//
// Lazy reduction: the scalar kernel canonicalizes after every multiply AND
// every coefficient add; doing that in vector code costs two conditional
// subtracts per Horner step. Instead each step folds s just once —
// (s & p) + (s >> 61) ≤ 2^61 + 2 — and adds the coefficient (< p) without
// canonicalizing, giving acc' ≤ 2^62, which is exactly the bound the limb
// decomposition above needs. Only the FINAL accumulator is canonicalized
// (one more fold to ≤ 2^61 + 1, then a conditional subtract into [0, p)).
// The canonical residue of the polynomial value is unique, so the output
// is still bit-identical to the scalar kernel — the contract is on bytes
// out, not on intermediate representations.
// tests/hash_kernel_differential_test.cc enforces byte equality for every
// batch size and adversarial input anyway.
//
// Four 4-lane accumulator vectors run per iteration (16 keys). Horner is a
// serial dependency chain per key — roughly mul(5) + adds(~7) cycles of
// latency per step against ~5 cycles of issue — so fewer chains leave the
// multiplier idle (a 2-chain version of this kernel LOST to the 8-chain
// interleaved scalar loop at d = 48). Four chains plus the per-block
// v/v_hi registers still fit the 16 ymm registers.
//
// This is the ONLY translation unit compiled with -mavx2 (see
// src/hash/CMakeLists.txt); callers must route through kernel_dispatch so
// the CPUID check runs before any instruction here executes.

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "hash/mersenne.h"

namespace streamkc {

namespace {

inline __m256i P61() {
  return _mm256_set1_epi64x(static_cast<long long>(kMersennePrime61));
}

// One lazy Horner step on 4 lanes: acc·v + c (mod p, non-canonical).
// Precondition acc ≤ 2^62; postcondition result ≤ 2^62.
// v_hi = v >> 32 is loop-invariant per block and passed in precomputed.
inline __m256i HornerStep(__m256i acc, __m256i v, __m256i v_hi, __m256i c) {
  const __m256i p = P61();
  const __m256i m29 = _mm256_set1_epi64x((1LL << 29) - 1);
  const __m256i a_hi = _mm256_srli_epi64(acc, 32);
  // _mm256_mul_epu32 reads the low 32 bits of each 64-bit lane, so the
  // un-shifted operands ARE the low limbs.
  const __m256i lo = _mm256_mul_epu32(acc, v);        // a0·v0   < 2^64
  const __m256i m1 = _mm256_mul_epu32(acc, v_hi);     // a0·v1   < 2^61
  const __m256i m2 = _mm256_mul_epu32(a_hi, v);       // a1·v0   < 2^62
  const __m256i hi = _mm256_mul_epu32(a_hi, v_hi);    // a1·v1   < 2^59
  const __m256i mid = _mm256_add_epi64(m1, m2);       //         < 2^63
  __m256i s = _mm256_and_si256(lo, p);
  s = _mm256_add_epi64(s, _mm256_srli_epi64(lo, 61));
  s = _mm256_add_epi64(
      s, _mm256_slli_epi64(_mm256_and_si256(mid, m29), 32));
  s = _mm256_add_epi64(s, _mm256_srli_epi64(mid, 29));
  s = _mm256_add_epi64(s, _mm256_slli_epi64(hi, 3));  // s < 2^63
  // Single fold: ≤ 2^61 + 2; plus coefficient < p: ≤ 2^62. NOT canonical.
  s = _mm256_add_epi64(_mm256_and_si256(s, p), _mm256_srli_epi64(s, 61));
  return _mm256_add_epi64(s, c);
}

// Collapse a lazy accumulator (≤ 2^62) to THE canonical residue in [0, p).
inline __m256i Canonicalize(__m256i acc) {
  const __m256i p = P61();
  const __m256i s =
      _mm256_add_epi64(_mm256_and_si256(acc, p), _mm256_srli_epi64(acc, 61));
  // s ≤ 2^61 + 1 < 2p; x > p-1 ⇔ x >= p, signed compare safe (< 2^63).
  const __m256i ge = _mm256_cmpgt_epi64(
      s, _mm256_set1_epi64x(static_cast<long long>(kMersennePrime61 - 1)));
  return _mm256_sub_epi64(s, _mm256_and_si256(ge, p));
}

}  // namespace

void MapFoldedBatchAvx2(const uint64_t* coeffs, size_t d,
                        const uint64_t* folded, uint64_t* out, size_t n) {
  // Unaligned loads/stores throughout — batch views land on arbitrary
  // offsets, and `out` may alias `folded` (loads complete before stores).
  // Accumulators start at the leading coefficient (skipping the 0·v + c
  // step the naive recurrence would burn — for d = 2 that halves the
  // multiply count).
  size_t i = 0;
  if (d > 0) {
    const __m256i lead =
        _mm256_set1_epi64x(static_cast<long long>(coeffs[d - 1]));
    for (; i + 16 <= n; i += 16) {
      const __m256i v0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(folded + i));
      const __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(folded + i + 4));
      const __m256i v2 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(folded + i + 8));
      const __m256i v3 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(folded + i + 12));
      const __m256i h0 = _mm256_srli_epi64(v0, 32);
      const __m256i h1 = _mm256_srli_epi64(v1, 32);
      const __m256i h2 = _mm256_srli_epi64(v2, 32);
      const __m256i h3 = _mm256_srli_epi64(v3, 32);
      __m256i a0 = lead;
      __m256i a1 = lead;
      __m256i a2 = lead;
      __m256i a3 = lead;
      for (size_t t = d - 1; t-- > 0;) {
        const __m256i c =
            _mm256_set1_epi64x(static_cast<long long>(coeffs[t]));
        a0 = HornerStep(a0, v0, h0, c);
        a1 = HornerStep(a1, v1, h1, c);
        a2 = HornerStep(a2, v2, h2, c);
        a3 = HornerStep(a3, v3, h3, c);
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                          Canonicalize(a0));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4),
                          Canonicalize(a1));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 8),
                          Canonicalize(a2));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 12),
                          Canonicalize(a3));
    }
  }
  // Remainder lanes (and the degenerate d = 0): scalar Horner, canonical
  // at every step like the scalar kernel.
  for (; i < n; ++i) {
    const uint64_t v = folded[i];
    uint64_t acc = 0;
    for (size_t t = d; t-- > 0;) {
      acc = MersenneAdd(MersenneMul(acc, v), coeffs[t]);
    }
    out[i] = acc;
  }
}

}  // namespace streamkc

#endif  // defined(__AVX2__)
