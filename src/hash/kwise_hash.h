// d-wise independent hash families (Definition A.1 / Lemma A.2 of the paper).
//
// A degree-(d-1) polynomial with uniform coefficients over GF(2^61 - 1) gives
// a d-wise independent family. Storing the family costs d field elements
// (d·log(mn) bits, matching Lemma A.2), and evaluation is Horner's rule.
//
// The paper uses three independence levels:
//   * pairwise      (d = 2)  — KMV distinct-elements sketch, CountSketch rows
//   * 4-wise        (d = 4)  — universe reduction (Lemma 3.5), AMS signs
//   * Θ(log(mn))-wise        — set sampling (Appendix A.1), supersets (§4.2),
//                              element sampling (§B), F2-Contributing levels
//
// KWiseHash::Map gives a uniform value in [0, p); MapRange(x, r) maps it to
// [0, r) by fixed-point multiplication; Sign(x) gives a ±1 value; Keep(x, num,
// den) implements "h(x) = 1"-style subsampling at rate num/den without float
// roundoff.
//
// Hot-path variants: every `*Folded` method takes an input already reduced
// into the field domain by MersenneFold (the fold is idempotent, so callers
// can fold an id exactly once and evaluate it under arbitrarily many hash
// functions — the ingest stack's hash-once discipline). MapFoldedBatch
// evaluates one polynomial over a whole input block through the runtime-
// dispatched kernel (hash/kernel_dispatch.h): the scalar kernel interleaves
// eight Horner chains to hide the 128-bit multiply latency, the AVX2 kernel
// vectorizes the field multiply via 32-bit limb decomposition. Both emit
// canonical residues, so their outputs are bit-identical — the batched
// ingest path's determinism contract does not depend on which one runs.

#ifndef STREAMKC_HASH_KWISE_HASH_H_
#define STREAMKC_HASH_KWISE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hash/kernel_dispatch.h"
#include "hash/mersenne.h"
#include "util/check.h"
#include "util/random.h"
#include "util/space.h"

namespace streamkc {

class KWiseHash : public SpaceAccounted {
 public:
  // Draws a hash function uniformly from the d-wise independent polynomial
  // family, deterministically from `seed`. d >= 1 (d = 1 is a constant
  // function family; callers normally want d >= 2).
  KWiseHash(uint32_t d, uint64_t seed);

  // Convenience factories for the independence levels the paper names.
  static KWiseHash Pairwise(uint64_t seed) { return KWiseHash(2, seed); }
  static KWiseHash FourWise(uint64_t seed) { return KWiseHash(4, seed); }
  // Θ(log(mn))-wise independence (Lemma A.2): d = ceil(log2(m·n)) + 8, so the
  // Chernoff arguments with limited independence (Lemma A.3) apply.
  static KWiseHash LogWise(uint64_t m, uint64_t n, uint64_t seed);

  uint32_t degree() const { return static_cast<uint32_t>(coeffs_.size()); }

  // Uniform value in [0, 2^61 - 1).
  uint64_t Map(uint64_t x) const { return MapFolded(MersenneFold(x)); }

  // Fold-free core of Map(): `v` must already be in the field domain [0, p)
  // (i.e. v == MersenneFold(v)). Callers on the hash-once ingest path fold
  // each id once and evaluate it under every sub-estimator's hash with this.
  uint64_t MapFolded(uint64_t v) const {
    DCHECK(v < kMersennePrime61);
    uint64_t acc = 0;
    // Horner evaluation: acc = (((c_{d-1} x + c_{d-2}) x + ...) x + c_0).
    for (size_t i = coeffs_.size(); i-- > 0;) {
      acc = MersenneAdd(MersenneMul(acc, v), coeffs_[i]);
    }
    return acc;
  }

  // out[i] = MapFolded(folded[i]) for i in [0, n), through the runtime-
  // dispatched kernel (scalar interleaved Horner or AVX2 limb
  // decomposition — bit-identical by contract). `out` may alias `folded`.
  //
  // The folded-input precondition is a hard CHECK here, enforced once per
  // batch (a max-reduce scan, not a per-element branch in the Horner
  // loop): an unfolded id would evaluate the polynomial at the wrong field
  // point and silently decorrelate every estimate built on it, and the
  // batch boundary is the last place the whole violation is visible at
  // O(1) CHECK cost. Matches the MapRange zero-range precedent (PR 4).
  void MapFoldedBatch(const uint64_t* folded, uint64_t* out, size_t n) const {
    uint64_t max_v = 0;
    for (size_t i = 0; i < n; ++i) {
      max_v = folded[i] > max_v ? folded[i] : max_v;
    }
    CHECK_LT(max_v, kMersennePrime61);
    MapFoldedBatchActive(coeffs_.data(), coeffs_.size(), folded, out, n);
  }

  // Uniform value in [0, range); range in [1, 2^61). range == 0 would make
  // every input collapse to 0 — a mis-sized caller bug that must fail in
  // release builds too (a constant sampler silently destroys estimates), so
  // this is a CHECK, not a DCHECK.
  uint64_t MapRange(uint64_t x, uint64_t range) const {
    CHECK(range > 0);
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Map(x)) * range) >> 61);
  }

  uint64_t MapRangeFolded(uint64_t v, uint64_t range) const {
    CHECK(range > 0);
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(MapFolded(v)) * range) >> 61);
  }

  // out[i] = MapRangeFolded(folded[i], range). `out` may alias `folded`.
  void MapRangeFoldedBatch(const uint64_t* folded, uint64_t* out, size_t n,
                           uint64_t range) const {
    CHECK(range > 0);
    MapFoldedBatch(folded, out, n);
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint64_t>(
          (static_cast<__uint128_t>(out[i]) * range) >> 61);
    }
  }

  // ±1 sign, d-wise independent.
  int Sign(uint64_t x) const { return (Map(x) & 1) ? +1 : -1; }
  int SignFolded(uint64_t v) const { return (MapFolded(v) & 1) ? +1 : -1; }

  // True with probability num/den over the choice of the hash function
  // (clipped to 1 when num >= den). Equivalent to "h(x) < num" with
  // h: U -> [den]; this is the "h(S) = 1" subsampling idiom from the paper
  // generalized to non-unit numerators.
  bool Keep(uint64_t x, uint64_t num, uint64_t den) const {
    DCHECK(den > 0);
    if (num >= den) return true;
    return MapRange(x, den) < num;
  }

  bool KeepFolded(uint64_t v, uint64_t num, uint64_t den) const {
    DCHECK(den > 0);
    if (num >= den) return true;
    return MapRangeFolded(v, den) < num;
  }

  size_t MemoryBytes() const override { return VectorBytes(coeffs_); }

 private:
  std::vector<uint64_t> coeffs_;  // c_0 .. c_{d-1}, each in [0, p)
};

}  // namespace streamkc

#endif  // STREAMKC_HASH_KWISE_HASH_H_
