// d-wise independent hash families (Definition A.1 / Lemma A.2 of the paper).
//
// A degree-(d-1) polynomial with uniform coefficients over GF(2^61 - 1) gives
// a d-wise independent family. Storing the family costs d field elements
// (d·log(mn) bits, matching Lemma A.2), and evaluation is Horner's rule.
//
// The paper uses three independence levels:
//   * pairwise      (d = 2)  — KMV distinct-elements sketch, CountSketch rows
//   * 4-wise        (d = 4)  — universe reduction (Lemma 3.5), AMS signs
//   * Θ(log(mn))-wise        — set sampling (Appendix A.1), supersets (§4.2),
//                              element sampling (§B), F2-Contributing levels
//
// KWiseHash::Map gives a uniform value in [0, p); MapRange(x, r) maps it to
// [0, r) by fixed-point multiplication; Sign(x) gives a ±1 value; Keep(x, num,
// den) implements "h(x) = 1"-style subsampling at rate num/den without float
// roundoff.

#ifndef STREAMKC_HASH_KWISE_HASH_H_
#define STREAMKC_HASH_KWISE_HASH_H_

#include <cstdint>
#include <vector>

#include "hash/mersenne.h"
#include "util/check.h"
#include "util/random.h"
#include "util/space.h"

namespace streamkc {

class KWiseHash : public SpaceAccounted {
 public:
  // Draws a hash function uniformly from the d-wise independent polynomial
  // family, deterministically from `seed`. d >= 1 (d = 1 is a constant
  // function family; callers normally want d >= 2).
  KWiseHash(uint32_t d, uint64_t seed);

  // Convenience factories for the independence levels the paper names.
  static KWiseHash Pairwise(uint64_t seed) { return KWiseHash(2, seed); }
  static KWiseHash FourWise(uint64_t seed) { return KWiseHash(4, seed); }
  // Θ(log(mn))-wise independence (Lemma A.2): d = ceil(log2(m·n)) + 8, so the
  // Chernoff arguments with limited independence (Lemma A.3) apply.
  static KWiseHash LogWise(uint64_t m, uint64_t n, uint64_t seed);

  uint32_t degree() const { return static_cast<uint32_t>(coeffs_.size()); }

  // Uniform value in [0, 2^61 - 1).
  uint64_t Map(uint64_t x) const {
    uint64_t v = MersenneFold(x);
    uint64_t acc = 0;
    // Horner evaluation: acc = (((c_{d-1} x + c_{d-2}) x + ...) x + c_0).
    for (size_t i = coeffs_.size(); i-- > 0;) {
      acc = MersenneAdd(MersenneMul(acc, v), coeffs_[i]);
    }
    return acc;
  }

  // Uniform value in [0, range); range in [1, 2^61).
  uint64_t MapRange(uint64_t x, uint64_t range) const {
    DCHECK(range > 0);
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Map(x)) * range) >> 61);
  }

  // ±1 sign, d-wise independent.
  int Sign(uint64_t x) const { return (Map(x) & 1) ? +1 : -1; }

  // True with probability num/den over the choice of the hash function
  // (clipped to 1 when num >= den). Equivalent to "h(x) < num" with
  // h: U -> [den]; this is the "h(S) = 1" subsampling idiom from the paper
  // generalized to non-unit numerators.
  bool Keep(uint64_t x, uint64_t num, uint64_t den) const {
    DCHECK(den > 0);
    if (num >= den) return true;
    return MapRange(x, den) < num;
  }

  size_t MemoryBytes() const override { return VectorBytes(coeffs_); }

 private:
  std::vector<uint64_t> coeffs_;  // c_0 .. c_{d-1}, each in [0, p)
};

}  // namespace streamkc

#endif  // STREAMKC_HASH_KWISE_HASH_H_
