#include "hash/kwise_hash.h"

#include "util/math_util.h"

namespace streamkc {

KWiseHash::KWiseHash(uint32_t d, uint64_t seed) {
  CHECK_GE(d, 1u);
  coeffs_.resize(d);
  Rng rng(seed);
  for (auto& c : coeffs_) {
    // Rejection sampling for an exactly uniform field element.
    uint64_t v;
    do {
      v = rng.Next() >> 3;  // 61 random bits
    } while (v >= kMersennePrime61);
    c = v;
  }
  // Force the polynomial to be non-degenerate for d >= 2: a zero leading
  // coefficient would silently lower the independence. Probability ~2^-61,
  // but cheap to rule out.
  if (d >= 2 && coeffs_.back() == 0) coeffs_.back() = 1;
}

KWiseHash KWiseHash::LogWise(uint64_t m, uint64_t n, uint64_t seed) {
  CHECK_GE(m, 1u);
  CHECK_GE(n, 1u);
  uint32_t bits = CeilLog2(m) + CeilLog2(n);
  return KWiseHash(bits + 8, seed);
}

}  // namespace streamkc
