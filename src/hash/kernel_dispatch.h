// Runtime selection of the MapFoldedBatch hash kernel.
//
// The polynomial-over-GF(2^61-1) batch evaluation in KWiseHash is the
// hottest loop in the system, and it has two implementations with one
// contract: BIT-IDENTICAL output for every input.
//
//   * scalar — the 8-lane interleaved Horner loop (portable baseline).
//   * avx2   — 32-bit limb decomposition of the 61-bit field multiply on
//              AVX2 (4 lanes per vector, 2 vectors in flight per step;
//              see kwise_hash_avx2.cc for the limb math).
//
// Selection order, resolved once and cached:
//
//   1. ForceHashKernel() — programmatic override (the CLI's --hash-kernel
//      flag, tests pinning a path).
//   2. STREAMKC_HASH_KERNEL=scalar|avx2 — environment override, so every
//      test binary and CI job can pin either implementation without code
//      changes. Any other value, or requesting a kernel this build/CPU
//      cannot run, aborts with a readable message: a silently ignored
//      override would un-pin a CI leg without anyone noticing.
//   3. CPUID — avx2 when the kernel is compiled in and the CPU supports
//      it, scalar otherwise.
//
// The AVX2 kernel lives in its own translation unit compiled with -mavx2
// (nothing else in the build carries vector flags), so the dispatch check
// here is what keeps the binary safe on non-AVX2 hardware.

#ifndef STREAMKC_HASH_KERNEL_DISPATCH_H_
#define STREAMKC_HASH_KERNEL_DISPATCH_H_

#include <cstddef>
#include <cstdint>

namespace streamkc {

enum class HashKernel { kScalar = 0, kAvx2 = 1 };

// "scalar" / "avx2" — the spelling accepted by ParseHashKernel and printed
// by the CLI's kernel row.
const char* HashKernelName(HashKernel kernel);

// Parses "scalar" or "avx2"; returns false (out untouched) on anything else.
bool ParseHashKernel(const char* name, HashKernel* out);

// True when the running CPU reports AVX2 (independent of whether the AVX2
// kernel was compiled into this binary).
bool CpuSupportsAvx2();

// True when `kernel` can actually run here: scalar always; avx2 only when
// the kernel TU was built (STREAMKC_ENABLE_AVX2, compiler support) AND the
// CPU supports it.
bool HashKernelAvailable(HashKernel kernel);

// The kernel MapFoldedBatch currently dispatches to, resolving (and
// caching) the selection on first use.
HashKernel ActiveHashKernel();

// Where the active selection came from: "forced" (ForceHashKernel),
// "env" (STREAMKC_HASH_KERNEL) or "auto" (CPUID).
const char* HashKernelSource();

// Pins the active kernel, overriding the environment. CHECK-fails if the
// kernel is unavailable — callers with a gentler error path (the CLI)
// test HashKernelAvailable first.
void ForceHashKernel(HashKernel kernel);

// Drops any force and the cached resolution; the next use re-resolves from
// the environment / CPUID. For tests and benches that flip kernels.
void ResetHashKernel();

// out[i] = polynomial c_0..c_{d-1} evaluated at folded[i] over GF(2^61-1),
// Horner order, canonical representative in [0, p). Inputs must already be
// folded (each < 2^61 - 1); `out` may alias `folded`. d >= 1.
using MapFoldedBatchFn = void (*)(const uint64_t* coeffs, size_t d,
                                  const uint64_t* folded, uint64_t* out,
                                  size_t n);

// Direct entry points, bypassing dispatch — the differential tests compare
// these against each other. CHECK-fails for an unavailable kernel.
MapFoldedBatchFn HashKernelFn(HashKernel kernel);

// The dispatched entry KWiseHash::MapFoldedBatch calls: resolves the
// active kernel on first use (thread-safe; resolution is idempotent) and
// forwards. Precondition checking is the caller's job — this is the raw
// kernel boundary.
void MapFoldedBatchActive(const uint64_t* coeffs, size_t d,
                          const uint64_t* folded, uint64_t* out, size_t n);

}  // namespace streamkc

#endif  // STREAMKC_HASH_KERNEL_DISPATCH_H_
