// Simple tabulation hashing (Zobrist / Thorup-Zhang [39]).
//
// Splits a 64-bit key into 8 bytes and XORs 8 random table entries. Simple
// tabulation is 3-independent and behaves like a fully random function for
// many applications (Patrascu-Thorup); the paper cites Thorup-Zhang [39] as
// one realization of the F2 heavy-hitter machinery. streamkc uses it where
// raw speed matters more than provable d-wise independence (e.g. bucket
// placement in throughput micro-benchmarks); the provable paths use
// KWiseHash.

#ifndef STREAMKC_HASH_TABULATION_HASH_H_
#define STREAMKC_HASH_TABULATION_HASH_H_

#include <array>
#include <cstdint>

#include "util/random.h"
#include "util/space.h"

namespace streamkc {

class TabulationHash : public SpaceAccounted {
 public:
  explicit TabulationHash(uint64_t seed) {
    Rng rng(seed);
    for (auto& table : tables_) {
      for (auto& cell : table) cell = rng.Next();
    }
  }

  uint64_t Map(uint64_t x) const {
    uint64_t h = 0;
    for (int i = 0; i < 8; ++i) {
      h ^= tables_[i][(x >> (8 * i)) & 0xff];
    }
    return h;
  }

  uint64_t MapRange(uint64_t x, uint64_t range) const {
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Map(x)) * range) >> 64);
  }

  // Batch fast path, mirroring KWiseHash::MapFoldedBatch's shape so batched
  // callers can swap families without restructuring. Tabulation is
  // gather-bound (8 table lookups per key), not multiply-bound, so there is
  // no AVX2 win to dispatch to yet — this loop is the hook where a
  // vpgatherqq kernel would slot in behind the same kernel_dispatch
  // mechanism if tabulation ever lands on the batched hot path. `out` may
  // alias `in`.
  void MapBatch(const uint64_t* in, uint64_t* out, size_t n) const {
    for (size_t i = 0; i < n; ++i) out[i] = Map(in[i]);
  }

  size_t MemoryBytes() const override { return sizeof(tables_); }

 private:
  std::array<std::array<uint64_t, 256>, 8> tables_;
};

}  // namespace streamkc

#endif  // STREAMKC_HASH_TABULATION_HASH_H_
