#include "hash/kernel_dispatch.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "hash/mersenne.h"
#include "util/check.h"

namespace streamkc {

#if STREAMKC_HAVE_AVX2_KERNEL
// Defined in kwise_hash_avx2.cc (the only TU compiled with -mavx2).
void MapFoldedBatchAvx2(const uint64_t* coeffs, size_t d,
                        const uint64_t* folded, uint64_t* out, size_t n);
#endif

// Portable baseline: evaluates kLanes inputs per Horner step so the
// multiply chains are independent — the scalar loop is latency-bound on
// MersenneMul (~6 cycles of dependent 64×64→128 multiplies per
// coefficient), and eight parallel accumulator chains turn that latency
// into throughput. This is the bit-exactness reference the AVX2 kernel is
// differential-tested against.
void MapFoldedBatchScalar(const uint64_t* coeffs, size_t d,
                          const uint64_t* folded, uint64_t* out, size_t n) {
  constexpr size_t kLanes = 8;
  size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    uint64_t v[kLanes];
    uint64_t acc[kLanes];
    for (size_t j = 0; j < kLanes; ++j) v[j] = folded[i + j];
    for (size_t j = 0; j < kLanes; ++j) acc[j] = 0;
    for (size_t t = d; t-- > 0;) {
      const uint64_t ct = coeffs[t];
      for (size_t j = 0; j < kLanes; ++j) {
        acc[j] = MersenneAdd(MersenneMul(acc[j], v[j]), ct);
      }
    }
    for (size_t j = 0; j < kLanes; ++j) out[i + j] = acc[j];
  }
  for (; i < n; ++i) {
    const uint64_t v = folded[i];
    uint64_t acc = 0;
    for (size_t t = d; t-- > 0;) {
      acc = MersenneAdd(MersenneMul(acc, v), coeffs[t]);
    }
    out[i] = acc;
  }
}

namespace {

// Cached selection. kUnresolved (-1) until first use or ForceHashKernel;
// resolution is idempotent (same inputs → same kernel), so a benign race
// between first users just resolves twice to the same value.
constexpr int kUnresolved = -1;
std::atomic<int> g_active{kUnresolved};
std::atomic<const char*> g_source{"auto"};

[[noreturn]] void DieInvalidEnv(const char* value, const std::string& why) {
  internal_check::CheckFail(
      __FILE__, __LINE__, "STREAMKC_HASH_KERNEL",
      "(" + std::string(value) + "): " + why + " (valid: scalar, avx2)");
}

HashKernel ResolveFromEnvOrCpu() {
  const char* env = std::getenv("STREAMKC_HASH_KERNEL");
  if (env != nullptr && *env != '\0') {
    HashKernel k;
    if (!ParseHashKernel(env, &k)) {
      DieInvalidEnv(env, "unknown hash kernel");
    }
    if (!HashKernelAvailable(k)) {
      DieInvalidEnv(env,
                    "kernel unavailable on this build/CPU — a silently "
                    "ignored override would un-pin this run");
    }
    g_source.store("env", std::memory_order_relaxed);
    return k;
  }
  g_source.store("auto", std::memory_order_relaxed);
  return HashKernelAvailable(HashKernel::kAvx2) ? HashKernel::kAvx2
                                                : HashKernel::kScalar;
}

HashKernel Resolve() {
  int cur = g_active.load(std::memory_order_relaxed);
  if (cur == kUnresolved) {
    cur = static_cast<int>(ResolveFromEnvOrCpu());
    g_active.store(cur, std::memory_order_relaxed);
  }
  return static_cast<HashKernel>(cur);
}

}  // namespace

const char* HashKernelName(HashKernel kernel) {
  return kernel == HashKernel::kAvx2 ? "avx2" : "scalar";
}

bool ParseHashKernel(const char* name, HashKernel* out) {
  if (std::strcmp(name, "scalar") == 0) {
    *out = HashKernel::kScalar;
    return true;
  }
  if (std::strcmp(name, "avx2") == 0) {
    *out = HashKernel::kAvx2;
    return true;
  }
  return false;
}

bool CpuSupportsAvx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool HashKernelAvailable(HashKernel kernel) {
  if (kernel == HashKernel::kScalar) return true;
#if STREAMKC_HAVE_AVX2_KERNEL
  return CpuSupportsAvx2();
#else
  return false;
#endif
}

HashKernel ActiveHashKernel() { return Resolve(); }

const char* HashKernelSource() {
  Resolve();
  return g_source.load(std::memory_order_relaxed);
}

void ForceHashKernel(HashKernel kernel) {
  CHECK(HashKernelAvailable(kernel));
  g_active.store(static_cast<int>(kernel), std::memory_order_relaxed);
  g_source.store("forced", std::memory_order_relaxed);
}

void ResetHashKernel() {
  g_active.store(kUnresolved, std::memory_order_relaxed);
  g_source.store("auto", std::memory_order_relaxed);
}

MapFoldedBatchFn HashKernelFn(HashKernel kernel) {
  CHECK(HashKernelAvailable(kernel));
#if STREAMKC_HAVE_AVX2_KERNEL
  if (kernel == HashKernel::kAvx2) return &MapFoldedBatchAvx2;
#endif
  return &MapFoldedBatchScalar;
}

void MapFoldedBatchActive(const uint64_t* coeffs, size_t d,
                          const uint64_t* folded, uint64_t* out, size_t n) {
#if STREAMKC_HAVE_AVX2_KERNEL
  if (Resolve() == HashKernel::kAvx2) {
    MapFoldedBatchAvx2(coeffs, d, folded, out, n);
    return;
  }
#else
  Resolve();  // env overrides must still fail fast on scalar-only builds
#endif
  MapFoldedBatchScalar(coeffs, d, folded, out, n);
}

}  // namespace streamkc
