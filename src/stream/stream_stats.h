// Exact one-pass statistics over an edge stream (harness-side; not part of
// the sublinear-space algorithms). Used by tests to cross-check sketches.

#ifndef STREAMKC_STREAM_STREAM_STATS_H_
#define STREAMKC_STREAM_STREAM_STATS_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "stream/edge.h"
#include "stream/edge_stream.h"

namespace streamkc {

struct StreamStats {
  uint64_t num_edges = 0;
  uint64_t num_distinct_edges = 0;
  uint64_t num_distinct_sets = 0;
  uint64_t num_distinct_elements = 0;
  // Element frequency: number of *distinct* sets containing each element
  // (the vector v of the paper's lower-bound discussion).
  std::unordered_map<ElementId, uint64_t> element_frequency;
  // Distinct size of each set.
  std::unordered_map<SetId, uint64_t> set_size;

  uint64_t MaxElementFrequency() const;
  uint64_t MaxSetSize() const;
};

// Consumes the stream from its current position to the end.
StreamStats ComputeStreamStats(EdgeStream& stream);

}  // namespace streamkc

#endif  // STREAMKC_STREAM_STREAM_STATS_H_
