#include "stream/stream_stats.h"

#include <algorithm>

namespace streamkc {

uint64_t StreamStats::MaxElementFrequency() const {
  uint64_t best = 0;
  for (const auto& [e, f] : element_frequency) best = std::max(best, f);
  return best;
}

uint64_t StreamStats::MaxSetSize() const {
  uint64_t best = 0;
  for (const auto& [s, size] : set_size) best = std::max(best, size);
  return best;
}

StreamStats ComputeStreamStats(EdgeStream& stream) {
  StreamStats stats;
  std::unordered_set<Edge, EdgeHash> seen;
  Edge e;
  while (stream.Next(&e)) {
    ++stats.num_edges;
    if (!seen.insert(e).second) continue;  // duplicate incidence
    ++stats.num_distinct_edges;
    ++stats.element_frequency[e.element];
    ++stats.set_size[e.set];
  }
  stats.num_distinct_sets = stats.set_size.size();
  stats.num_distinct_elements = stats.element_frequency.size();
  return stats;
}

}  // namespace streamkc
