// Edge-arrival streams and arrival-order policies.
//
// An EdgeStream produces (set, element) pairs one at a time; the contract is
// a single forward pass (Reset() rewinds for the *next* pass, used only by
// test/bench harnesses — the algorithms themselves are single-pass).
//
// ArrivalOrder captures the orderings discussed in the paper's introduction:
// set-arrival (incidences of each set contiguous), the general adversarial /
// random edge-arrival order, and element-contiguous and round-robin orders
// that break set contiguity in structured ways (footnote 2's directed-graph
// example is round-robin-like).

#ifndef STREAMKC_STREAM_EDGE_STREAM_H_
#define STREAMKC_STREAM_EDGE_STREAM_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stream/edge.h"
#include "util/space.h"

namespace streamkc {

class EdgeStream {
 public:
  virtual ~EdgeStream() = default;

  // Fetches the next edge; returns false at end of stream.
  virtual bool Next(Edge* edge) = 0;

  // Fetches up to `max_edges` edges into `*out` (replacing its contents) and
  // returns how many were read; 0 means end of stream. The default loops
  // over Next(); sources with cheap bulk access (VectorEdgeStream) override
  // it. Batched reads are what the runtime producer uses to amortize
  // per-edge virtual-call and queue costs.
  virtual size_t NextBatch(std::vector<Edge>* out, size_t max_edges) {
    out->clear();
    Edge e;
    while (out->size() < max_edges && Next(&e)) out->push_back(e);
    return out->size();
  }

  // Rewinds to the beginning (harness convenience; algorithms are one-pass).
  virtual void Reset() = 0;

  // Total number of edges if known, 0 otherwise.
  virtual uint64_t SizeHint() const { return 0; }

  // Stream health. Next() returning false means either clean end of stream
  // (ok() == true) or a source error (ok() == false, StatusMessage() says
  // what and where). Drivers must check ok() after draining a stream —
  // treating a parse error as end-of-stream silently truncates the pass.
  virtual bool ok() const { return true; }
  virtual std::string StatusMessage() const { return std::string(); }

  // True when the current error (ok() == false) is TRANSIENT: the source
  // expects to recover, and the caller may retry by simply calling Next()/
  // NextBatch() again, which resumes where the stream left off. Parse errors
  // and end-of-stream are not transient; flaky-source conditions (e.g.
  // fault-injected read errors, a throttled reader) are. The sharded
  // runtime's degradation policy retries transient errors with bounded
  // backoff instead of truncating the pass.
  virtual bool transient() const { return false; }
};

// A fully materialized stream over an in-memory edge vector.
class VectorEdgeStream : public EdgeStream {
 public:
  explicit VectorEdgeStream(std::vector<Edge> edges)
      : edges_(std::move(edges)) {}

  bool Next(Edge* edge) override {
    if (pos_ >= edges_.size()) return false;
    *edge = edges_[pos_++];
    return true;
  }

  // Fast path: one bulk copy instead of max_edges virtual calls.
  size_t NextBatch(std::vector<Edge>* out, size_t max_edges) override {
    size_t take = std::min(max_edges, edges_.size() - pos_);
    out->assign(edges_.begin() + static_cast<ptrdiff_t>(pos_),
                edges_.begin() + static_cast<ptrdiff_t>(pos_ + take));
    pos_ += take;
    return take;
  }

  void Reset() override { pos_ = 0; }
  uint64_t SizeHint() const override { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }

 private:
  std::vector<Edge> edges_;
  size_t pos_ = 0;
};

// A non-owning stream over a contiguous span of an edge array — the
// in-memory segment source for the multi-producer front-end (bench and
// tests split one materialized stream into P spans without copying it).
// The span must outlive the stream.
class EdgeSpanStream : public EdgeStream {
 public:
  EdgeSpanStream(const Edge* data, size_t count) : data_(data), count_(count) {}

  bool Next(Edge* edge) override {
    if (pos_ >= count_) return false;
    *edge = data_[pos_++];
    return true;
  }

  size_t NextBatch(std::vector<Edge>* out, size_t max_edges) override {
    size_t take = std::min(max_edges, count_ - pos_);
    out->assign(data_ + pos_, data_ + pos_ + take);
    pos_ += take;
    return take;
  }

  void Reset() override { pos_ = 0; }
  uint64_t SizeHint() const override { return count_; }

 private:
  const Edge* data_;
  size_t count_;
  size_t pos_ = 0;
};

// Opens segment `segment` of the even contiguous split of `edges` into
// `num_segments` spans (the in-memory analogue of SegmentedTextStream's
// newline-aligned file split). The union of the spans is exactly `edges`,
// so the result plugs straight into ShardedPipeline::SegmentOpener.
inline std::unique_ptr<EdgeStream> MakeEdgeSpanSegment(
    const std::vector<Edge>& edges, uint32_t segment, uint32_t num_segments) {
  uint64_t total = edges.size();
  uint64_t begin = total * segment / num_segments;
  uint64_t end = total * (segment + 1) / num_segments;
  return std::make_unique<EdgeSpanStream>(edges.data() + begin,
                                          static_cast<size_t>(end - begin));
}

enum class ArrivalOrder {
  kSetContiguous,      // all incidences of set 0, then set 1, ...
  kRandom,             // uniformly shuffled (the general model)
  kElementContiguous,  // grouped by element id
  kRoundRobin,         // one incidence per set in rotation
  kReversedSets,       // set-contiguous, sets in reverse id order
};

std::string ArrivalOrderName(ArrivalOrder order);

// Reorders `edges` in place according to `order`; `seed` is used by the
// random order (ignored otherwise).
void ApplyArrivalOrder(std::vector<Edge>& edges, ArrivalOrder order,
                       uint64_t seed);

}  // namespace streamkc

#endif  // STREAMKC_STREAM_EDGE_STREAM_H_
