// The unit of the edge-arrival streaming model: a (set, element) incidence.

#ifndef STREAMKC_STREAM_EDGE_H_
#define STREAMKC_STREAM_EDGE_H_

#include <cstdint>
#include <functional>

namespace streamkc {

using SetId = uint64_t;
using ElementId = uint64_t;

// One stream token: "element `element` belongs to set `set`". The stream may
// present the incidences of a set in any order, interleaved arbitrarily with
// other sets', and may repeat an incidence (all algorithms here are
// duplicate-insensitive, as required by the model).
struct Edge {
  SetId set = 0;
  ElementId element = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.set == b.set && a.element == b.element;
  }
};

struct EdgeHash {
  size_t operator()(const Edge& e) const {
    uint64_t h = e.set * 0x9e3779b97f4a7c15ULL;
    h ^= e.element + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

// Non-owning view of a block of edges with their ids pre-reduced into the
// GF(2^61-1) field domain (MersenneFold). The fold is idempotent and every
// KWiseHash evaluation starts with it, so computing it once per edge here
// lets every sub-estimator on the batched ingest path use the `*Folded`
// hash entry points and skip the redundant per-sketch fold. The arrays are
// parallel: set_folded[i] == MersenneFold(edges[i].set) and likewise for
// element_folded. Produced by EdgeBatch::Prefold()/View().
struct PrefoldedEdges {
  const Edge* edges = nullptr;
  const uint64_t* set_folded = nullptr;
  const uint64_t* element_folded = nullptr;
  size_t size = 0;
};

}  // namespace streamkc

#endif  // STREAMKC_STREAM_EDGE_H_
