// The unit of the edge-arrival streaming model: a (set, element) incidence.

#ifndef STREAMKC_STREAM_EDGE_H_
#define STREAMKC_STREAM_EDGE_H_

#include <cstdint>
#include <functional>

namespace streamkc {

using SetId = uint64_t;
using ElementId = uint64_t;

// One stream token: "element `element` belongs to set `set`". The stream may
// present the incidences of a set in any order, interleaved arbitrarily with
// other sets', and may repeat an incidence (all algorithms here are
// duplicate-insensitive, as required by the model).
struct Edge {
  SetId set = 0;
  ElementId element = 0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.set == b.set && a.element == b.element;
  }
};

struct EdgeHash {
  size_t operator()(const Edge& e) const {
    uint64_t h = e.set * 0x9e3779b97f4a7c15ULL;
    h ^= e.element + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

}  // namespace streamkc

#endif  // STREAMKC_STREAM_EDGE_H_
