#include "stream/edge_stream.h"

#include <algorithm>
#include <map>

#include "util/check.h"
#include "util/random.h"

namespace streamkc {

std::string ArrivalOrderName(ArrivalOrder order) {
  switch (order) {
    case ArrivalOrder::kSetContiguous:
      return "set-contiguous";
    case ArrivalOrder::kRandom:
      return "random";
    case ArrivalOrder::kElementContiguous:
      return "element-contiguous";
    case ArrivalOrder::kRoundRobin:
      return "round-robin";
    case ArrivalOrder::kReversedSets:
      return "reversed-sets";
  }
  return "unknown";
}

namespace {

void RoundRobinOrder(std::vector<Edge>& edges) {
  // Group edges by set (stable), then emit one edge per set per round.
  std::map<SetId, std::vector<Edge>> by_set;
  for (const Edge& e : edges) by_set[e.set].push_back(e);
  std::vector<Edge> out;
  out.reserve(edges.size());
  bool emitted = true;
  size_t round = 0;
  while (emitted) {
    emitted = false;
    for (auto& [set, list] : by_set) {
      if (round < list.size()) {
        out.push_back(list[round]);
        emitted = true;
      }
    }
    ++round;
  }
  edges = std::move(out);
}

}  // namespace

void ApplyArrivalOrder(std::vector<Edge>& edges, ArrivalOrder order,
                       uint64_t seed) {
  switch (order) {
    case ArrivalOrder::kSetContiguous:
      std::stable_sort(edges.begin(), edges.end(),
                       [](const Edge& a, const Edge& b) { return a.set < b.set; });
      break;
    case ArrivalOrder::kRandom: {
      Rng rng(seed);
      rng.Shuffle(edges);
      break;
    }
    case ArrivalOrder::kElementContiguous:
      std::stable_sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
        return a.element < b.element;
      });
      break;
    case ArrivalOrder::kRoundRobin:
      RoundRobinOrder(edges);
      break;
    case ArrivalOrder::kReversedSets:
      std::stable_sort(edges.begin(), edges.end(),
                       [](const Edge& a, const Edge& b) { return a.set > b.set; });
      break;
  }
}

}  // namespace streamkc
