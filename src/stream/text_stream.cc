#include "stream/text_stream.h"

#include <cctype>
#include <cstdlib>

#include "util/check.h"

namespace streamkc {

TextEdgeStream::TextEdgeStream(const std::string& path)
    : path_(path), file_(path) {
  CHECK(file_.is_open());
}

bool TextEdgeStream::Next(Edge* edge) {
  std::string line;
  while (std::getline(file_, line)) {
    ++line_number_;
    // Skip blanks and comments.
    size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;
    char* end = nullptr;
    unsigned long long set = std::strtoull(line.c_str() + pos, &end, 10);
    CHECK(end != line.c_str() + pos);
    char* end2 = nullptr;
    unsigned long long element = std::strtoull(end, &end2, 10);
    CHECK(end2 != end);  // the line must carry a second number
    CHECK(*end2 == '\0' || std::isspace(static_cast<unsigned char>(*end2)));
    edge->set = set;
    edge->element = element;
    return true;
  }
  return false;
}

void TextEdgeStream::Reset() {
  file_.clear();
  file_.seekg(0);
  line_number_ = 0;
}

void WriteEdgesToFile(const std::string& path,
                      const std::vector<Edge>& edges) {
  std::ofstream out(path);
  CHECK(out.is_open());
  out << "# streamkc edge stream: <set> <element> per line\n";
  for (const Edge& e : edges) out << e.set << ' ' << e.element << '\n';
  CHECK(out.good());
}

}  // namespace streamkc
