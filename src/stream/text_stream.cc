#include "stream/text_stream.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "util/check.h"

namespace streamkc {
namespace {

const char* SkipSpace(const char* p) {
  while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
  return p;
}

// Parses one non-negative base-10 integer at *pp, advancing past it.
// Returns "" on success, else the defect description. Rejects a leading
// '-' explicitly: strtoull would wrap "-1" to 2⁶⁴−1 and corrupt the id
// instead of failing.
std::string ParseToken(const char** pp, const char* what,
                       unsigned long long* out) {
  const char* p = SkipSpace(*pp);
  if (*p == '\0') return std::string("missing ") + what;
  if (*p == '-') return std::string("negative ") + what;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(p, &end, 10);
  if (end == p) return std::string(what) + " is not a number";
  if (errno == ERANGE) return std::string(what) + " out of range";
  *pp = end;
  *out = v;
  return std::string();
}

// Parses one content line into an edge. Returns "" on success, the defect
// description otherwise; returns "skip" semantics via *is_skippable for
// blank/comment lines. Shared by the whole-file and segmented readers so
// the two can never drift on what counts as malformed.
std::string ParseEdgeLine(const std::string& line, Edge* edge,
                          bool* is_skippable) {
  size_t pos = line.find_first_not_of(" \t\r");
  if (pos == std::string::npos || line[pos] == '#') {
    *is_skippable = true;
    return std::string();
  }
  *is_skippable = false;
  const char* p = line.c_str() + pos;
  unsigned long long set = 0, element = 0;
  std::string defect = ParseToken(&p, "set id", &set);
  if (defect.empty()) defect = ParseToken(&p, "element id", &element);
  if (defect.empty() && *SkipSpace(p) != '\0') defect = "trailing garbage";
  if (!defect.empty()) return defect;
  edge->set = set;
  edge->element = element;
  return std::string();
}

// One segment's reader: lines from byte range [begin, end) of the file.
// Boundaries are newline-aligned by SegmentedTextStream, so tracking the
// bytes each getline() consumed (line + its '\n') tells us exactly when the
// segment is exhausted — no line is ever split or read twice.
class TextSegmentEdgeStream : public EdgeStream {
 public:
  TextSegmentEdgeStream(const std::string& path, uint32_t segment,
                        uint64_t begin, uint64_t end,
                        TextEdgeStream::Config config)
      : path_(path),
        segment_(segment),
        begin_(begin),
        length_(end - begin),
        config_(config) {
    MetricsRegistry* reg = config_.registry != nullptr
                               ? config_.registry
                               : &MetricsRegistry::Global();
    malformed_counter_ = reg->GetCounter("stream_malformed_lines_total");
    parse_error_counter_ = reg->GetCounter("stream_parse_errors_total");
    file_.open(path_, std::ios::binary);
    CHECK(file_.is_open());
    file_.seekg(static_cast<std::streamoff>(begin_));
  }

  bool Next(Edge* edge) override {
    if (!error_.empty()) return false;
    std::string line;
    while (consumed_ < length_ && std::getline(file_, line)) {
      // +1 for the newline getline swallowed; the file's final line may
      // lack one, in which case we overcount by a harmless byte past the
      // segment end.
      consumed_ += line.size() + 1;
      ++line_number_;
      bool skippable = false;
      std::string defect = ParseEdgeLine(line, edge, &skippable);
      if (skippable) continue;
      if (defect.empty()) return true;
      ++malformed_lines_;
      malformed_counter_->Increment();
      if (config_.lenient) continue;
      parse_error_counter_->Increment();
      error_ = path_ + ":seg" + std::to_string(segment_) + "+" +
               std::to_string(line_number_) + ": malformed edge line (" +
               defect + "): \"" + line + "\"";
      return false;
    }
    return false;
  }

  void Reset() override {
    file_.clear();
    file_.seekg(static_cast<std::streamoff>(begin_));
    consumed_ = 0;
    line_number_ = 0;
    malformed_lines_ = 0;
    error_.clear();
  }

  bool ok() const override { return error_.empty(); }
  std::string StatusMessage() const override { return error_; }

 private:
  std::string path_;
  uint32_t segment_;
  uint64_t begin_;
  uint64_t length_;
  TextEdgeStream::Config config_;
  std::ifstream file_;
  uint64_t consumed_ = 0;
  uint64_t line_number_ = 0;  // within the segment
  uint64_t malformed_lines_ = 0;
  std::string error_;
  Counter* malformed_counter_ = nullptr;
  Counter* parse_error_counter_ = nullptr;
};

}  // namespace

TextEdgeStream::TextEdgeStream(const std::string& path)
    : TextEdgeStream(path, Config()) {}

TextEdgeStream::TextEdgeStream(const std::string& path, Config config)
    : path_(path), file_(path), config_(config) {
  CHECK(file_.is_open());
  MetricsRegistry* reg =
      config_.registry != nullptr ? config_.registry : &MetricsRegistry::Global();
  malformed_counter_ = reg->GetCounter("stream_malformed_lines_total");
  parse_error_counter_ = reg->GetCounter("stream_parse_errors_total");
}

bool TextEdgeStream::HandleMalformed(const std::string& line,
                                     const std::string& reason) {
  ++malformed_lines_;
  malformed_counter_->Increment();
  if (config_.lenient) return true;
  parse_error_counter_->Increment();
  error_ = path_ + ":" + std::to_string(line_number_) +
           ": malformed edge line (" + reason + "): \"" + line + "\"";
  return false;
}

bool TextEdgeStream::Next(Edge* edge) {
  if (!error_.empty()) return false;  // strict error already raised
  std::string line;
  while (std::getline(file_, line)) {
    ++line_number_;
    bool skippable = false;
    std::string defect = ParseEdgeLine(line, edge, &skippable);
    if (skippable) continue;
    if (defect.empty()) return true;
    if (HandleMalformed(line, defect)) continue;
    return false;
  }
  return false;
}

SegmentedTextStream::SegmentedTextStream(const std::string& path,
                                         uint32_t num_segments)
    : SegmentedTextStream(path, num_segments, Config()) {}

SegmentedTextStream::SegmentedTextStream(const std::string& path,
                                         uint32_t num_segments, Config config)
    : path_(path), config_(config) {
  CHECK_GE(num_segments, 1u);
  std::ifstream file(path_, std::ios::binary);
  CHECK(file.is_open());
  file.seekg(0, std::ios::end);
  const uint64_t size = static_cast<uint64_t>(file.tellg());
  bounds_.resize(num_segments + 1);
  bounds_[0] = 0;
  bounds_[num_segments] = size;
  char chunk[4096];
  for (uint32_t i = 1; i < num_segments; ++i) {
    // Candidate split at i·size/P, then slide forward to just past the next
    // '\n' so no line straddles the boundary. A candidate landing inside
    // the file's last (newline-less) line slides to end-of-file, leaving
    // the trailing segments empty.
    uint64_t pos = size * i / num_segments;
    uint64_t aligned = size;
    file.clear();
    file.seekg(static_cast<std::streamoff>(pos));
    bool found = false;
    while (!found && pos < size) {
      file.read(chunk, sizeof(chunk));
      const std::streamsize got = file.gcount();
      if (got <= 0) break;
      for (std::streamsize j = 0; j < got; ++j) {
        if (chunk[j] == '\n') {
          aligned = pos + static_cast<uint64_t>(j) + 1;
          found = true;
          break;
        }
      }
      if (!found) pos += static_cast<uint64_t>(got);
    }
    // Monotonic even when several candidates share one long line.
    bounds_[i] = std::max(aligned, bounds_[i - 1]);
  }
}

std::unique_ptr<EdgeStream> SegmentedTextStream::OpenSegment(
    uint32_t i) const {
  CHECK_LT(i, num_segments());
  return std::make_unique<TextSegmentEdgeStream>(path_, i, bounds_[i],
                                                 bounds_[i + 1], config_);
}

void TextEdgeStream::Reset() {
  file_.clear();
  file_.seekg(0);
  line_number_ = 0;
  malformed_lines_ = 0;
  error_.clear();
}

void WriteEdgesToFile(const std::string& path,
                      const std::vector<Edge>& edges) {
  std::ofstream out(path);
  CHECK(out.is_open());
  out << "# streamkc edge stream: <set> <element> per line\n";
  for (const Edge& e : edges) out << e.set << ' ' << e.element << '\n';
  CHECK(out.good());
}

}  // namespace streamkc
