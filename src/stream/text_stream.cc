#include "stream/text_stream.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "util/check.h"

namespace streamkc {
namespace {

const char* SkipSpace(const char* p) {
  while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
  return p;
}

// Parses one non-negative base-10 integer at *pp, advancing past it.
// Returns "" on success, else the defect description. Rejects a leading
// '-' explicitly: strtoull would wrap "-1" to 2⁶⁴−1 and corrupt the id
// instead of failing.
std::string ParseToken(const char** pp, const char* what,
                       unsigned long long* out) {
  const char* p = SkipSpace(*pp);
  if (*p == '\0') return std::string("missing ") + what;
  if (*p == '-') return std::string("negative ") + what;
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(p, &end, 10);
  if (end == p) return std::string(what) + " is not a number";
  if (errno == ERANGE) return std::string(what) + " out of range";
  *pp = end;
  *out = v;
  return std::string();
}

}  // namespace

TextEdgeStream::TextEdgeStream(const std::string& path)
    : TextEdgeStream(path, Config()) {}

TextEdgeStream::TextEdgeStream(const std::string& path, Config config)
    : path_(path), file_(path), config_(config) {
  CHECK(file_.is_open());
  MetricsRegistry* reg =
      config_.registry != nullptr ? config_.registry : &MetricsRegistry::Global();
  malformed_counter_ = reg->GetCounter("stream_malformed_lines_total");
  parse_error_counter_ = reg->GetCounter("stream_parse_errors_total");
}

bool TextEdgeStream::HandleMalformed(const std::string& line,
                                     const std::string& reason) {
  ++malformed_lines_;
  malformed_counter_->Increment();
  if (config_.lenient) return true;
  parse_error_counter_->Increment();
  error_ = path_ + ":" + std::to_string(line_number_) +
           ": malformed edge line (" + reason + "): \"" + line + "\"";
  return false;
}

bool TextEdgeStream::Next(Edge* edge) {
  if (!error_.empty()) return false;  // strict error already raised
  std::string line;
  while (std::getline(file_, line)) {
    ++line_number_;
    // Skip blanks and comments.
    size_t pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '#') continue;

    const char* p = line.c_str() + pos;
    unsigned long long set = 0, element = 0;
    std::string defect = ParseToken(&p, "set id", &set);
    if (defect.empty()) defect = ParseToken(&p, "element id", &element);
    if (defect.empty() && *SkipSpace(p) != '\0') {
      defect = "trailing garbage";
    }
    if (!defect.empty()) {
      if (HandleMalformed(line, defect)) continue;
      return false;
    }
    edge->set = set;
    edge->element = element;
    return true;
  }
  return false;
}

void TextEdgeStream::Reset() {
  file_.clear();
  file_.seekg(0);
  line_number_ = 0;
  malformed_lines_ = 0;
  error_.clear();
}

void WriteEdgesToFile(const std::string& path,
                      const std::vector<Edge>& edges) {
  std::ofstream out(path);
  CHECK(out.is_open());
  out << "# streamkc edge stream: <set> <element> per line\n";
  for (const Edge& e : edges) out << e.set << ' ' << e.element << '\n';
  CHECK(out.good());
}

}  // namespace streamkc
