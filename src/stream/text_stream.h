// Text-format edge streams: one "set element" pair per line.
//
// Lets real datasets drive the pipeline without an in-memory SetSystem.
// Format: whitespace-separated non-negative integers, two per line; blank
// lines and lines starting with '#' are skipped. Malformed lines abort with
// a line-numbered message (garbage-in on a one-pass algorithm is
// unrecoverable, so it is treated as a programming/pipeline error).

#ifndef STREAMKC_STREAM_TEXT_STREAM_H_
#define STREAMKC_STREAM_TEXT_STREAM_H_

#include <fstream>
#include <string>

#include "stream/edge_stream.h"

namespace streamkc {

class TextEdgeStream : public EdgeStream {
 public:
  // Opens `path`; CHECK-fails if the file cannot be opened.
  explicit TextEdgeStream(const std::string& path);

  bool Next(Edge* edge) override;
  void Reset() override;

  uint64_t line_number() const { return line_number_; }

 private:
  std::string path_;
  std::ifstream file_;
  uint64_t line_number_ = 0;
};

// Writes `edges` in the text format (convenience for tests and examples).
void WriteEdgesToFile(const std::string& path, const std::vector<Edge>& edges);

}  // namespace streamkc

#endif  // STREAMKC_STREAM_TEXT_STREAM_H_
