// Text-format edge streams: one "set element" pair per line.
//
// Lets real datasets drive the pipeline without an in-memory SetSystem.
// Format: whitespace-separated non-negative integers, two per line; blank
// lines and lines starting with '#' are skipped.
//
// Malformed lines are DATA errors, not programming errors, so they never
// abort the process. Strict mode (default) stops the stream at the first
// bad line: Next() returns false, ok() flips to false, and StatusMessage()
// names the file, line number, and defect. Lenient mode (Config::lenient)
// skips bad lines, counts them (malformed_lines(), plus the
// stream_malformed_lines_total counter in the metrics registry), and keeps
// going — the production posture for dirty feeds. Both modes reject
// negative tokens explicitly: strtoull silently wraps "-1" to 2⁶⁴−1, which
// would corrupt set ids rather than fail.

#ifndef STREAMKC_STREAM_TEXT_STREAM_H_
#define STREAMKC_STREAM_TEXT_STREAM_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "stream/edge_stream.h"

namespace streamkc {

class TextEdgeStream : public EdgeStream {
 public:
  struct Config {
    // false: first malformed line stops the stream with an error.
    // true: malformed lines are skipped and counted.
    bool lenient = false;
    // Receives stream_malformed_lines_total / stream_parse_errors_total;
    // defaults to the process-wide registry.
    MetricsRegistry* registry = nullptr;
  };

  // Opens `path`; CHECK-fails if the file cannot be opened (a missing input
  // file is a caller bug, unlike a malformed line inside it).
  explicit TextEdgeStream(const std::string& path);
  TextEdgeStream(const std::string& path, Config config);

  bool Next(Edge* edge) override;
  void Reset() override;

  bool ok() const override { return error_.empty(); }
  std::string StatusMessage() const override { return error_; }

  uint64_t line_number() const { return line_number_; }
  // Malformed lines skipped so far (lenient mode; at most 1 in strict mode).
  uint64_t malformed_lines() const { return malformed_lines_; }

 private:
  // Records line `line_number_` as malformed. Returns true if the caller
  // should keep scanning (lenient), false to stop the stream (strict).
  bool HandleMalformed(const std::string& line, const std::string& reason);

  std::string path_;
  std::ifstream file_;
  Config config_;
  uint64_t line_number_ = 0;
  uint64_t malformed_lines_ = 0;
  std::string error_;
  Counter* malformed_counter_ = nullptr;
  Counter* parse_error_counter_ = nullptr;
};

// Splits one text edge file into P newline-aligned byte ranges for the
// multi-producer front-end: segment boundary i is the byte AFTER the first
// '\n' at or past offset i·size/P, so every line lies wholly inside exactly
// one segment and the union of the segments' edge multisets is exactly the
// whole file's (the precondition ShardedPipeline::RunSegmented needs).
// Lines longer than size/P merely make some segments empty — nothing is
// ever split or double-read. The final line may lack a trailing newline.
//
// The class itself is a factory, not a stream: boundaries are computed once
// at construction (one short forward scan per boundary), then OpenSegment(p)
// hands each producer thread its own independently-owned stream over
// [segment_begin(p), segment_end(p)). Parsing, strict/lenient semantics and
// the malformed-line counters are shared with TextEdgeStream; strict errors
// name the segment and the line within it.
class SegmentedTextStream {
 public:
  using Config = TextEdgeStream::Config;

  // CHECK-fails if the file cannot be opened (missing input is a caller
  // bug) or num_segments == 0.
  SegmentedTextStream(const std::string& path, uint32_t num_segments);
  SegmentedTextStream(const std::string& path, uint32_t num_segments,
                      Config config);

  uint32_t num_segments() const {
    return static_cast<uint32_t>(bounds_.size() - 1);
  }
  // Byte range [segment_begin(i), segment_end(i)) of segment i; ranges are
  // adjacent, non-overlapping, and cover [0, file_size()).
  uint64_t segment_begin(uint32_t i) const { return bounds_[i]; }
  uint64_t segment_end(uint32_t i) const { return bounds_[i + 1]; }
  uint64_t file_size() const { return bounds_.back(); }

  // Opens a fresh stream over segment i. Thread-safe (each call opens its
  // own file handle), so producers may call it concurrently.
  std::unique_ptr<EdgeStream> OpenSegment(uint32_t i) const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  Config config_;
  std::vector<uint64_t> bounds_;  // num_segments + 1 entries
};

// Writes `edges` in the text format (convenience for tests and examples).
void WriteEdgesToFile(const std::string& path, const std::vector<Edge>& edges);

}  // namespace streamkc

#endif  // STREAMKC_STREAM_TEXT_STREAM_H_
