// Text-format edge streams: one "set element" pair per line.
//
// Lets real datasets drive the pipeline without an in-memory SetSystem.
// Format: whitespace-separated non-negative integers, two per line; blank
// lines and lines starting with '#' are skipped.
//
// Malformed lines are DATA errors, not programming errors, so they never
// abort the process. Strict mode (default) stops the stream at the first
// bad line: Next() returns false, ok() flips to false, and StatusMessage()
// names the file, line number, and defect. Lenient mode (Config::lenient)
// skips bad lines, counts them (malformed_lines(), plus the
// stream_malformed_lines_total counter in the metrics registry), and keeps
// going — the production posture for dirty feeds. Both modes reject
// negative tokens explicitly: strtoull silently wraps "-1" to 2⁶⁴−1, which
// would corrupt set ids rather than fail.

#ifndef STREAMKC_STREAM_TEXT_STREAM_H_
#define STREAMKC_STREAM_TEXT_STREAM_H_

#include <fstream>
#include <string>

#include "obs/metrics.h"
#include "stream/edge_stream.h"

namespace streamkc {

class TextEdgeStream : public EdgeStream {
 public:
  struct Config {
    // false: first malformed line stops the stream with an error.
    // true: malformed lines are skipped and counted.
    bool lenient = false;
    // Receives stream_malformed_lines_total / stream_parse_errors_total;
    // defaults to the process-wide registry.
    MetricsRegistry* registry = nullptr;
  };

  // Opens `path`; CHECK-fails if the file cannot be opened (a missing input
  // file is a caller bug, unlike a malformed line inside it).
  explicit TextEdgeStream(const std::string& path);
  TextEdgeStream(const std::string& path, Config config);

  bool Next(Edge* edge) override;
  void Reset() override;

  bool ok() const override { return error_.empty(); }
  std::string StatusMessage() const override { return error_; }

  uint64_t line_number() const { return line_number_; }
  // Malformed lines skipped so far (lenient mode; at most 1 in strict mode).
  uint64_t malformed_lines() const { return malformed_lines_; }

 private:
  // Records line `line_number_` as malformed. Returns true if the caller
  // should keep scanning (lenient), false to stop the stream (strict).
  bool HandleMalformed(const std::string& line, const std::string& reason);

  std::string path_;
  std::ifstream file_;
  Config config_;
  uint64_t line_number_ = 0;
  uint64_t malformed_lines_ = 0;
  std::string error_;
  Counter* malformed_counter_ = nullptr;
  Counter* parse_error_counter_ = nullptr;
};

// Writes `edges` in the text format (convenience for tests and examples).
void WriteEdgesToFile(const std::string& path, const std::vector<Edge>& edges);

}  // namespace streamkc

#endif  // STREAMKC_STREAM_TEXT_STREAM_H_
