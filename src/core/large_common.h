// LargeCommon: multi-layered set sampling (Section 4.1, Figure 3).
//
// Handles case I of the oracle: some β ≤ α has many (βk)-common elements
// (|U^cmn_{βk}| ≥ σβ|U|/α). For each guess β_g = 2^i ≤ α it set-samples
// ≈ β_g·k sets (Appendix A.1) and measures their coverage with an
// L0 estimator. If the sampled collection covers at least σβ_g|U|/(4α)
// elements, then by Observation 2.4 its best k sets cover a 1/β_g fraction
// of that, so 2·VAL/(3β_g) is a valid (never-overestimating, w.h.p.) lower
// bound that is Ω(σ|U|/α) — an Õ(α)-approximation (Theorem 4.4).
// Space: log α levels × Õ(1) per level.
//
// Reporting mode additionally partitions each level's sampled sets into
// ⌈β_g⌉ groups by a second hash and tracks one L0 per group; the winning
// group realizes Observation 2.4 constructively and its members are
// enumerable from the two stored hashes alone (ExtractSolution).

#ifndef STREAMKC_CORE_LARGE_COMMON_H_
#define STREAMKC_CORE_LARGE_COMMON_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/params.h"
#include "core/set_sampler.h"
#include "core/streaming_interface.h"
#include "sketch/l0_estimator.h"

namespace streamkc {

class LargeCommon : public StreamingEstimator {
 public:
  struct Config {
    Params params;
    // Universe size the stream lives in (the reduced universe when invoked
    // under EstimateMaxCover).
    uint64_t universe_size = 0;
    bool reporting = false;
    uint64_t seed = 1;
  };

  explicit LargeCommon(const Config& config);

  void Process(const Edge& edge) override;

  // Batched ingest: per level, one batched sampler evaluation over the block
  // replaces a dependent Horner chain per edge; survivors update the L0s
  // from the pre-folded element ids. State is bit-identical to a Process()
  // loop (levels are independent; per-level edge order is preserved).
  void ProcessBatch(const PrefoldedEdges& batch) override;

  EstimateOutcome Finalize() const;

  // Merges another instance built with the same Config (same seed, so the
  // per-level samplers and hashes are identical). Purely L0 unions — the
  // merged state equals the single-threaded state on the concatenated
  // stream exactly.
  void Merge(const LargeCommon& other);

  // Reporting mode only, after a feasible Finalize(): enumerates the sets of
  // the winning level's best group, at most max_sets of them, by scanning
  // set-id space [0, m). Deterministic; uses no stream-time storage beyond
  // the two hashes and the per-group counters.
  std::vector<SetId> ExtractSolution(uint64_t max_sets) const;

  size_t MemoryBytes() const override;
  const char* ComponentName() const override { return "large_common"; }
  uint64_t ItemCount() const override { return levels_.size(); }
  // Composite: also reports every level's coverage L0 (and the per-group
  // counters in reporting mode).
  void ReportSpace(SpaceAccountant* acct) const override;

  uint32_t num_levels() const { return static_cast<uint32_t>(levels_.size()); }

 private:
  struct Level {
    double beta = 0;
    SetSampler sampler;
    L0Estimator coverage;  // DE_g: distinct elements covered by the sample
    // Reporting only: group assignment hash + per-group coverage counters.
    std::optional<KWiseHash> group_hash;
    std::vector<L0Estimator> group_coverage;
  };

  // (level, estimate) of the best feasible level, if any.
  std::optional<std::pair<size_t, double>> BestLevel() const;

  Config config_;
  std::vector<Level> levels_;
};

}  // namespace streamkc

#endif  // STREAMKC_CORE_LARGE_COMMON_H_
