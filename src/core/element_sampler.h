// Element sampling (Lemma 2.5) as a stored-hash membership predicate.
//
// L ⊆ U where each element survives with a fixed probability, realized as a
// range test on a Θ(log(mn))-wise independent hash so that membership is
// recomputable and storage is O(degree) words. Lemma 2.5: if an optimal
// k-cover covers a 1/η fraction of U and |L| = Θ̃(ηk), then a Θ(1)-approx
// k-cover of (L, F) is a Θ(1)-approx k-cover of (U, F) w.h.p.

#ifndef STREAMKC_CORE_ELEMENT_SAMPLER_H_
#define STREAMKC_CORE_ELEMENT_SAMPLER_H_

#include <cstdint>

#include "hash/kwise_hash.h"
#include "stream/edge.h"
#include "util/space.h"

namespace streamkc {

class ElementSampler : public SpaceAccounted {
 public:
  // Each element survives with probability min(1, rate).
  ElementSampler(double rate, uint32_t degree, uint64_t seed);

  static constexpr uint64_t kRateDen = 1ULL << 40;

  bool Sampled(ElementId e) const {
    return hash_.Keep(e, rate_num_, kRateDen);
  }

  // Membership for a pre-folded id (folded == MersenneFold(e)).
  bool SampledFolded(uint64_t folded) const {
    return hash_.KeepFolded(folded, rate_num_, kRateDen);
  }

  // Batched membership keys: out[i] ∈ [0, kRateDen) is folded[i]'s sample
  // key; the element is sampled iff its key < rate_num() (keys are always
  // below kRateDen, so the test matches Sampled() even at rate 1).
  void SampleKeysFoldedBatch(const uint64_t* folded, uint64_t* out,
                             size_t n) const {
    hash_.MapRangeFoldedBatch(folded, out, n, kRateDen);
  }

  uint64_t rate_num() const { return rate_num_; }

  // The exact survival probability used (after clipping / quantization).
  double SampleRate() const {
    return static_cast<double>(rate_num_) / static_cast<double>(kRateDen);
  }

  size_t MemoryBytes() const override { return hash_.MemoryBytes(); }

 private:
  KWiseHash hash_;
  uint64_t rate_num_;
};

}  // namespace streamkc

#endif  // STREAMKC_CORE_ELEMENT_SAMPLER_H_
