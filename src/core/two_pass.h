// Two-pass Max k-Cover: bracket OPT cheaply, then spend the space budget
// only where it matters.
//
// The single-pass algorithm pays for log n parallel universe guesses because
// it cannot know OPT in advance (Figure 1). When a second pass over the data
// is available — common for on-disk streams — a nearly-free first pass can
// bracket OPT:
//
//   * an L0 sketch of all elements gives Ĉ ≈ |C(F)|, and OPT ≤ |C(F)|;
//   * OPT ≥ |C(F)|·k/m (averaging: every covered element survives a uniform
//     k-subset of F with probability ≥ k/m);
//   * an F2 heavy hitter over set ids gives b̂ ≈ the largest set's size
//     (counting multiplicity; it lower-bounds nothing by itself on
//     multi-edges, so it only *raises* the bracket's floor when the stream
//     is duplicate-free — we use the conservative k/m floor by default).
//
// Pass 2 then runs the standard estimator restricted to guesses inside
// [lo, hi] — ceil(log(hi/lo)) ≤ ceil(log(m/k)) oracles instead of
// ceil(log n), with the same guarantees (the true OPT's guess is in the
// bracket w.h.p., and every oracle estimate remains a valid lower bound).
//
// Peak memory = max(pass-1 footprint (two Õ(1) sketches), pass-2 footprint),
// strictly dominated by the narrowed pass 2.

#ifndef STREAMKC_CORE_TWO_PASS_H_
#define STREAMKC_CORE_TWO_PASS_H_

#include <cstdint>
#include <memory>

#include "core/estimate_max_cover.h"
#include "core/report_max_cover.h"
#include "sketch/l0_estimator.h"

namespace streamkc {

class TwoPassMaxCover {
 public:
  struct Config {
    Params params;
    bool reporting = false;
    uint64_t seed = 1;
  };

  explicit TwoPassMaxCover(const Config& config);

  // ---- Pass 1: bracket OPT. ------------------------------------------------
  void ProcessFirstPass(const Edge& edge);
  // Computes the bracket and builds the pass-2 estimator. Must be called
  // exactly once, between the passes.
  void FinishFirstPass();

  // ---- Pass 2: the real estimator over the bracketed guesses. --------------
  void ProcessSecondPass(const Edge& edge);

  EstimateOutcome Finalize() const;
  // Reporting mode only.
  std::vector<SetId> ExtractSolution(uint64_t max_sets) const;

  // Bracket computed by pass 1 (valid after FinishFirstPass()).
  uint64_t guess_lo() const { return guess_lo_; }
  uint64_t guess_hi() const { return guess_hi_; }

  // Number of (guess, repetition) oracles pass 2 instantiates — the
  // savings over single-pass.
  uint32_t num_oracles() const;

  // Footprint of the currently live phase.
  size_t MemoryBytes() const;
  size_t peak_memory_bytes() const { return peak_bytes_; }

 private:
  Config config_;
  // Pass-1 state.
  std::unique_ptr<L0Estimator> covered_;
  bool first_pass_done_ = false;
  uint64_t guess_lo_ = 0;
  uint64_t guess_hi_ = 0;
  // Pass-2 state.
  std::unique_ptr<EstimateMaxCover> second_;
  size_t peak_bytes_ = 0;
};

// Convenience driver over a resettable stream: runs both passes and returns
// the outcome.
EstimateOutcome RunTwoPass(EdgeStream& stream,
                           const TwoPassMaxCover::Config& config,
                           TwoPassMaxCover* out_instance = nullptr);

}  // namespace streamkc

#endif  // STREAMKC_CORE_TWO_PASS_H_
