// EstimateMaxCover: the paper's headline estimation algorithm
// (Section 3, Figure 1; Theorems 3.1 and 3.6).
//
// For every guess z = 2^i ≤ n of the optimal coverage size, a fresh 4-wise
// independent hash maps U onto z pseudo-elements (universe reduction,
// Lemma 3.5) and an (α, δ, η=4)-oracle runs on the mapped stream; each guess
// is repeated log(1/δ) times to boost the 3/4 success probability of
// Lemma 3.5. At the end the algorithm returns
//     max { est_z : est_z ≥ z/(4α) },
// which lies in [OPT/Õ(α), OPT] w.h.p. (Theorem 3.6).
//
// The trivial branch: when kα ≥ m, the best k sets cover at least a k/m ≥
// 1/α fraction of the covered universe, so an L0 estimate of |C(F)| divided
// by α is already an α-approximate lower bound — Figure 1's first line.
//
// Space: log n · log(1/δ) oracles of Õ(m/α²) each, i.e. Õ(m/α²) total.

#ifndef STREAMKC_CORE_ESTIMATE_MAX_COVER_H_
#define STREAMKC_CORE_ESTIMATE_MAX_COVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/oracle.h"
#include "core/params.h"
#include "core/streaming_interface.h"
#include "core/universe_reduction.h"
#include "sketch/l0_estimator.h"

namespace streamkc {

class EstimateMaxCover : public StreamingEstimator {
 public:
  struct Config {
    Params params;
    bool reporting = false;  // also maintain solution-extraction state
    // Optional prior bracket on OPT (e.g. from a first pass): when both are
    // nonzero, the guess grid only spans [guess_lo, guess_hi] instead of
    // [min_universe_guess, n], which cuts the oracle count to
    // log(guess_hi/guess_lo) — the two-pass optimization (core/two_pass.h).
    uint64_t guess_lo = 0;
    uint64_t guess_hi = 0;
    uint64_t seed = 1;
  };

  explicit EstimateMaxCover(const Config& config);

  void Process(const Edge& edge) override;

  // Batched ingest. Trivial mode feeds the whole block to the L0's batch
  // entry point; oracle mode maps the block through each level's universe
  // reduction (batched) and forwards a remapped prefolded view to the
  // oracle. Bit-identical to a Process() loop (levels are independent;
  // per-level edge order is preserved).
  void ProcessBatch(const PrefoldedEdges& batch) override;

  // The final coverage estimate. Always feasible: the trivial branch and the
  // z-threshold rule guarantee an answer (0 only for an empty stream).
  EstimateOutcome Finalize() const;

  // Merges another estimator built with the same Config: every (guess,
  // repetition) oracle folds its same-seeded twin, so the merged state is
  // exactly the single-pass state on the concatenated stream.
  void Merge(const EstimateMaxCover& other);

  // Fingerprint of everything Merge() requires to agree (seed, instance
  // parameters, mode, oracle-grid shape). Two states with different
  // fingerprints are NOT merge-compatible: folding them would silently
  // produce garbage, so coordinators (runtime/sharded_pipeline.h) compare
  // fingerprints first and quarantine mismatching shards — the sketch-merge
  // corruption detection hook.
  uint64_t MergeFingerprint() const;
  bool MergeCompatible(const EstimateMaxCover& other) const {
    return MergeFingerprint() == other.MergeFingerprint();
  }

  // Reporting mode only: the winning oracle's witness sets (empty in trivial
  // mode — the trivial branch's solution lives in ReportMaxCover).
  std::vector<SetId> ExtractSolution(uint64_t max_sets) const;

  size_t MemoryBytes() const override;
  const char* ComponentName() const override { return "estimate_max_cover"; }
  uint64_t ItemCount() const override { return oracles_.size(); }
  // Composite: recurses into every (guess, repetition) oracle, or the
  // trivial branch's L0.
  void ReportSpace(SpaceAccountant* acct) const override;

  // Bytes held by the heavy-hitter machinery (the LargeSet subroutines)
  // across all oracles — the component that carries the Θ̃(m/α²) term of the
  // space bound, reported separately for the trade-off experiments.
  size_t HeavyHitterComponentBytes() const;

  bool trivial_mode() const { return trivial_mode_; }
  uint32_t num_oracles() const {
    return static_cast<uint32_t>(oracles_.size());
  }

 protected:
  struct Level {
    uint64_t z = 0;            // coverage guess
    UniverseReduction reduction;
    std::unique_ptr<Oracle> oracle;
  };

  // Winner among threshold-passing levels, if any; pair of (index into
  // oracles_, estimate).
  std::optional<std::pair<size_t, double>> BestLevel() const;

  Config config_;
  bool trivial_mode_ = false;
  // Trivial branch state: distinct covered elements.
  std::unique_ptr<L0Estimator> covered_elements_;
  std::vector<Level> oracles_;  // (guess, repetition) pairs, flattened
};

}  // namespace streamkc

#endif  // STREAMKC_CORE_ESTIMATE_MAX_COVER_H_
