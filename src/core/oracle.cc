#include "core/oracle.h"

#include "util/check.h"
#include "util/random.h"

namespace streamkc {

Oracle::Oracle(const Config& config) : config_(config) {
  const Params& p = config.params;
  CHECK_GT(config.universe_size, 0u);
  Rng rng(config.seed);

  LargeCommon::Config lc;
  lc.params = p;
  lc.universe_size = config.universe_size;
  lc.reporting = config.reporting;
  lc.seed = rng.Fork();
  large_common_ = std::make_unique<LargeCommon>(lc);

  bool few_sets_dominate = p.s * p.alpha >= 2.0 * static_cast<double>(p.k);
  LargeSet::Config ls;
  ls.params = p;
  ls.universe_size = config.universe_size;
  // Figure 2: w = k when sα ≥ 2k (then |OPT_large| covers half of OPT
  // unconditionally, Claim 4.3); otherwise w = α.
  ls.w = few_sets_dominate ? static_cast<double>(p.k) : p.alpha;
  ls.reporting = config.reporting;
  ls.seed = rng.Fork();
  large_set_ = std::make_unique<LargeSet>(ls);

  if (!few_sets_dominate) {
    SmallSet::Config ss;
    ss.params = p;
    ss.universe_size = config.universe_size;
    ss.reporting = config.reporting;
    ss.seed = rng.Fork();
    small_set_ = std::make_unique<SmallSet>(ss);
  }
}

void Oracle::Process(const Edge& edge) {
  large_common_->Process(edge);
  large_set_->Process(edge);
  if (small_set_ != nullptr) small_set_->Process(edge);
}

void Oracle::ProcessBatch(const PrefoldedEdges& batch) {
  large_common_->ProcessBatch(batch);
  large_set_->ProcessBatch(batch);
  if (small_set_ != nullptr) small_set_->ProcessBatch(batch);
}

void Oracle::Merge(const Oracle& other) {
  CHECK_EQ(config_.seed, other.config_.seed);
  CHECK_EQ(small_set_ != nullptr, other.small_set_ != nullptr);
  large_common_->Merge(*other.large_common_);
  large_set_->Merge(*other.large_set_);
  if (small_set_ != nullptr) small_set_->Merge(*other.small_set_);
}

EstimateOutcome Oracle::Finalize() const {
  EstimateOutcome best;
  best.source = "oracle-infeasible";
  auto consider = [&best](const EstimateOutcome& out) {
    if (out.feasible && (!best.feasible || out.estimate > best.estimate)) {
      best = out;
    }
  };
  consider(large_common_->Finalize());
  consider(large_set_->Finalize());
  if (small_set_ != nullptr) consider(small_set_->Finalize());
  return best;
}

std::vector<SetId> Oracle::ExtractSolution(uint64_t max_sets) const {
  EstimateOutcome best = Finalize();
  if (!best.feasible) return {};
  if (best.source == "large-common") {
    return large_common_->ExtractSolution(max_sets);
  }
  if (best.source == "large-set") {
    return large_set_->ExtractSolution(max_sets);
  }
  if (small_set_ != nullptr) return small_set_->ExtractSolution(max_sets);
  return {};
}

size_t Oracle::MemoryBytes() const {
  size_t bytes = large_common_->MemoryBytes() + large_set_->MemoryBytes();
  if (small_set_ != nullptr) bytes += small_set_->MemoryBytes();
  return bytes;
}

void Oracle::ReportSpace(SpaceAccountant* acct) const {
  SpaceMetered::ReportSpace(acct);
  large_common_->ReportSpace(acct);
  large_set_->ReportSpace(acct);
  if (small_set_ != nullptr) small_set_->ReportSpace(acct);
}

}  // namespace streamkc
