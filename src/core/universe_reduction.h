// Universe reduction (Section 3.1, Lemma 3.5).
//
// A 4-wise independent hash h : U → [z] maps elements to z pseudo-elements.
// Lemma 3.5: for any S ⊆ U with |S| ≥ z (z ≥ 32), Pr[|h(S)| ≥ z/4] ≥ 3/4,
// so if OPT's coverage is at least the guess z, the reduced instance's
// optimal coverage is at least z/4 — a constant fraction of the reduced
// universe, which is exactly the precondition (η = 4) of the
// (α, δ, η)-oracle. Coverage never increases under the map, so reduced-space
// estimates remain valid lower bounds for the original instance.

#ifndef STREAMKC_CORE_UNIVERSE_REDUCTION_H_
#define STREAMKC_CORE_UNIVERSE_REDUCTION_H_

#include <cstdint>

#include "hash/kwise_hash.h"
#include "stream/edge.h"
#include "util/space.h"

namespace streamkc {

class UniverseReduction : public SpaceAccounted {
 public:
  // Maps U onto [num_pseudo_elements].
  UniverseReduction(uint64_t num_pseudo_elements, uint64_t seed)
      : hash_(KWiseHash::FourWise(seed)), z_(num_pseudo_elements) {}

  ElementId Map(ElementId e) const { return hash_.MapRange(e, z_); }

  Edge MapEdge(const Edge& edge) const {
    return Edge{edge.set, Map(edge.element)};
  }

  // out[i] = Map of the element whose fold is element_folded[i] (the mapped
  // pseudo-element id, NOT its fold — re-fold before handing to a hash).
  void MapFoldedBatch(const uint64_t* element_folded, uint64_t* out,
                      size_t n) const {
    hash_.MapRangeFoldedBatch(element_folded, out, n, z_);
  }

  uint64_t num_pseudo_elements() const { return z_; }

  size_t MemoryBytes() const override { return hash_.MemoryBytes(); }

 private:
  KWiseHash hash_;
  uint64_t z_;
};

}  // namespace streamkc

#endif  // STREAMKC_CORE_UNIVERSE_REDUCTION_H_
