#include "core/two_pass.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/math_util.h"
#include "util/random.h"

namespace streamkc {

TwoPassMaxCover::TwoPassMaxCover(const Config& config) : config_(config) {
  Rng rng(config.seed);
  covered_ = std::make_unique<L0Estimator>(
      L0Estimator::Config{.num_mins = config.params.l0_num_mins,
                          .seed = rng.Fork()});
}

void TwoPassMaxCover::ProcessFirstPass(const Edge& edge) {
  CHECK(!first_pass_done_);
  covered_->Add(edge.element);
  peak_bytes_ = std::max(peak_bytes_, covered_->MemoryBytes());
}

void TwoPassMaxCover::FinishFirstPass() {
  CHECK(!first_pass_done_);
  first_pass_done_ = true;
  const Params& p = config_.params;

  double c_hat = covered_->Estimate();
  // KMV is (1 ± ε)-accurate; widen by its error bar so the true OPT's guess
  // stays inside the bracket w.h.p.
  double eps = 2.0 / std::sqrt(static_cast<double>(p.l0_num_mins));
  double hi = c_hat * (1.0 + eps);
  double lo = c_hat * (1.0 - eps) * static_cast<double>(p.k) /
              static_cast<double>(p.m);
  guess_hi_ = std::max<uint64_t>(2, static_cast<uint64_t>(std::ceil(hi)));
  guess_lo_ = std::max<uint64_t>(2, static_cast<uint64_t>(std::floor(lo)));
  guess_lo_ = std::min(guess_lo_, guess_hi_);

  // Pass-1 sketch is no longer needed; free it before building pass 2 so
  // peak memory reflects the phases' true maximum.
  covered_.reset();

  EstimateMaxCover::Config ec;
  ec.params = p;
  ec.reporting = config_.reporting;
  ec.guess_lo = guess_lo_;
  ec.guess_hi = guess_hi_;
  ec.seed = SplitMix64(config_.seed ^ 0x2b2b);
  second_ = std::make_unique<EstimateMaxCover>(ec);
}

void TwoPassMaxCover::ProcessSecondPass(const Edge& edge) {
  CHECK(first_pass_done_);
  second_->Process(edge);
  peak_bytes_ = std::max(peak_bytes_, second_->MemoryBytes());
}

EstimateOutcome TwoPassMaxCover::Finalize() const {
  CHECK(first_pass_done_);
  return second_->Finalize();
}

std::vector<SetId> TwoPassMaxCover::ExtractSolution(uint64_t max_sets) const {
  CHECK(first_pass_done_);
  return second_->ExtractSolution(max_sets);
}

uint32_t TwoPassMaxCover::num_oracles() const {
  CHECK(first_pass_done_);
  return second_->num_oracles();
}

size_t TwoPassMaxCover::MemoryBytes() const {
  if (!first_pass_done_) return covered_->MemoryBytes();
  return second_->MemoryBytes();
}

EstimateOutcome RunTwoPass(EdgeStream& stream,
                           const TwoPassMaxCover::Config& config,
                           TwoPassMaxCover* out_instance) {
  TwoPassMaxCover two_pass(config);
  Edge e;
  while (stream.Next(&e)) two_pass.ProcessFirstPass(e);
  two_pass.FinishFirstPass();
  stream.Reset();
  while (stream.Next(&e)) two_pass.ProcessSecondPass(e);
  EstimateOutcome out = two_pass.Finalize();
  if (out_instance != nullptr) *out_instance = std::move(two_pass);
  return out;
}

}  // namespace streamkc
