#include "core/params.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.h"
#include "util/math_util.h"

namespace streamkc {

namespace {

void FillInstance(Params& p, uint64_t m, uint64_t n, uint64_t k,
                  double alpha) {
  CHECK_GT(m, 0u);
  CHECK_GT(n, 0u);
  CHECK_GT(k, 0u);
  CHECK_GE(alpha, 1.0);
  p.m = m;
  p.n = n;
  p.k = k;
  p.alpha = alpha;
  p.w = std::min<double>(static_cast<double>(k), alpha);
}

// Solves the Table 2 fixed point
//   s = (9/5000) · w / (α · sqrt(2η · log2(sα) · log2²(mn))).
double SolveTheoryS(double w, double alpha, double eta, double log_mn) {
  double s = 0.5 * w / alpha;  // any positive start converges fast
  for (int iter = 0; iter < 64; ++iter) {
    double log_salpha = Log2AtLeast1(s * alpha);
    double next = (9.0 / 5000.0) * w /
                  (alpha * std::sqrt(2.0 * eta * log_salpha * log_mn * log_mn));
    if (std::abs(next - s) < 1e-15) return next;
    s = next;
  }
  return s;
}

}  // namespace

Params Params::Theory(uint64_t m, uint64_t n, uint64_t k, double alpha) {
  Params p;
  p.mode = Mode::kTheory;
  FillInstance(p, m, n, k, alpha);
  double log_mn = Log2AtLeast1(static_cast<double>(m) * static_cast<double>(n));
  p.eta = 4;
  p.s = SolveTheoryS(p.w, alpha, p.eta, log_mn);
  p.f = 7.0 * log_mn;
  p.sigma = 1.0 / (2500.0 * log_mn * log_mn);
  p.t = 5000.0 * log_mn * log_mn / p.s;
  p.log_wise_degree = CeilLog2(m) + CeilLog2(n) + 8;
  // Theory mode keeps the paper's grids and repetition counts.
  p.universe_guess_log_step = 1;
  p.small_set_level_log_step = 1;
  p.contributing_sample_factor = 12.0;
  p.small_set_reps = std::max<uint32_t>(2, CeilLog2(n));
  return p;
}

Params Params::Practical(uint64_t m, uint64_t n, uint64_t k, double alpha) {
  Params p;
  p.mode = Mode::kPractical;
  FillInstance(p, m, n, k, alpha);
  p.eta = 4;
  // Same functional shapes as Table 2 with constants calibrated so that the
  // sampling rates and thresholds are meaningful at m, n ≤ 2^20:
  //   s keeps the w/α shape (sets contributing ≥ 2z/(w·…) count as large);
  p.s = 0.5 * p.w / alpha;
  //   f: random supersets of ≤ w sets overlap little on non-common elements,
  //      so a small constant bound on coverage inflation suffices;
  p.f = 2.0;
  //   σ: a constant fraction of the universe must be common for case I;
  p.sigma = 0.05;
  //   t: element-sampling rate factor; keeps |L| ≈ t·s·α·η manageable.
  p.t = 16.0 / p.s;
  p.small_set_reps = 1;
  return p;
}

double Params::AlphaForBudget(uint64_t m, uint64_t n, uint64_t k,
                              size_t budget_bytes) {
  CHECK_GT(m, 0u);
  CHECK_GT(budget_bytes, 0u);
  double sqrt_m = std::sqrt(static_cast<double>(m));
  // Footprint model: bytes ≈ c·(m/α² + k)·polylog(m, n) words, with the
  // calibrated constant below matched to the measured practical-mode
  // pipeline (bench_tradeoff). Solve for α; clamp to the algorithm's valid
  // range.
  double log_mn = Log2AtLeast1(static_cast<double>(m) * static_cast<double>(n));
  const double words_per_unit = 150.0 * log_mn;
  double budget_words = static_cast<double>(budget_bytes) / 8.0;
  double units = budget_words / words_per_unit - static_cast<double>(k);
  if (units <= static_cast<double>(m) / (sqrt_m * sqrt_m)) return sqrt_m;
  double alpha = std::sqrt(static_cast<double>(m) / units);
  return std::min(std::max(alpha, 2.0), sqrt_m);
}

size_t Params::SmallSetBudgetBytes() const {
  if (small_set_budget_bytes != 0) return small_set_budget_bytes;
  // Lemma 4.21: the stored sub-instance is Õ(m/α² + k) words; the budget is
  // that bound with its polylog factor spelled out. Instances above it are
  // wrong guesses and get discarded.
  double log_mn = Log2AtLeast1(static_cast<double>(m) * static_cast<double>(n));
  double words = (static_cast<double>(m) / (alpha * alpha) +
                  static_cast<double>(k)) *
                 log_mn;
  return static_cast<size_t>(32.0 * words) + (16u << 10);
}

std::string Params::DebugString() const {
  std::ostringstream os;
  os << "Params{mode=" << (mode == Mode::kTheory ? "theory" : "practical")
     << " m=" << m << " n=" << n << " k=" << k << " alpha=" << alpha
     << " w=" << w << " s=" << s << " f=" << f << " sigma=" << sigma
     << " t=" << t << " eta=" << eta << "}";
  return os.str();
}

}  // namespace streamkc
