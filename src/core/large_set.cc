#include "core/large_set.h"

#include <algorithm>
#include <cmath>

#include "hash/mersenne.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/random.h"

namespace streamkc {

namespace {

// Superset count: c·m·log2(m) / w (Section 4.2).
uint64_t NumSupersets(const Params& p, double w) {
  double q = p.c_hash * static_cast<double>(p.m) *
             Log2AtLeast1(static_cast<double>(p.m)) / std::max(w, 1.0);
  return std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(q)));
}

F2Contributing::Config MakeContributingConfig(const Params& p, double phi,
                                              uint64_t class_bound,
                                              uint64_t domain, uint64_t seed) {
  F2Contributing::Config c;
  c.gamma = phi;
  c.phi_factor = 1.0;  // we pass the final φ directly
  c.max_class_size = std::max<uint64_t>(1, class_bound);
  c.domain_size = std::max<uint64_t>(2, domain);
  c.sample_factor = p.contributing_sample_factor;
  c.seed = seed;
  return c;
}

}  // namespace

LargeSetComplete::LargeSetComplete(const Config& config)
    : config_(config),
      element_sampler_(std::max(config.element_rate, 1e-12),
                       config.params.log_wise_degree,
                       SplitMix64(config.seed ^ 0x1111)),
      superset_hash_(config.params.log_wise_degree,
                     SplitMix64(config.seed ^ 0x2222)),
      num_supersets_(NumSupersets(config.params, config.w)),
      cntr_small_(MakeContributingConfig(
          config.params,
          std::min(1.0, config.params.phi1_factor * config.params.alpha *
                            config.params.alpha /
                            static_cast<double>(config.params.m)),
          /*class_bound=*/
          static_cast<uint64_t>(
              std::ceil(3.0 * config.params.s * config.params.alpha)) +
              1,
          NumSupersets(config.params, config.w),
          SplitMix64(config.seed ^ 0x3333))),
      cntr_large_(MakeContributingConfig(
          config.params,
          std::min(1.0, config.params.phi2_factor /
                            Log2AtLeast1(config.params.alpha)),
          /*class_bound=*/0,  // patched below once r2 is known
          NumSupersets(config.params, config.w),
          SplitMix64(config.seed ^ 0x4444))),
      pool_hash_(config.params.log_wise_degree,
                 SplitMix64(config.seed ^ 0x5555)) {
  const Params& p = config.params;
  CHECK_GT(config.universe_size, 0u);
  CHECK_GT(config.w, 0.0);

  // Expected sample size |L| (== |U| when rate is 1).
  double expected_l = std::min(config.element_rate, 1.0) *
                      static_cast<double>(config.universe_size);

  // Acceptance thresholds at sample scale (Fig. 6). Theory keeps the
  // paper's 18 / 6; practical tightens toward the instance scale.
  double c1 = (p.mode == Params::Mode::kTheory) ? 18.0 : 2.0;
  double c2 = (p.mode == Params::Mode::kTheory) ? 6.0 : 2.0;
  thr1_ = expected_l / (c1 * p.eta * p.s * p.alpha);
  thr2_ = expected_l / (c2 * p.eta * p.alpha);

  // Case-2 class bound r2 (Fig. 7): theory r2 = Q·γ with
  // γ = 1944/(t²s²·log α) (Eq. 8); practical r2 = Q/8. Classes larger than
  // r2 are handled by the sampled-superset pool.
  uint64_t q = num_supersets_;
  uint64_t r2;
  if (p.mode == Params::Mode::kTheory) {
    double gamma_r2 =
        1944.0 / (p.t * p.t * p.s * p.s * Log2AtLeast1(p.alpha));
    r2 = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(q) *
                                 std::min(gamma_r2, 1.0)));
  } else {
    // Practical mode searches every class size with the contributing sketch
    // (r2 = Q), so the sampled-superset pool only needs |M| = 12·log m
    // members as a safety net for the extreme class sizes.
    r2 = q;
  }
  // Rebuild cntr_large_ with the final class bound.
  cntr_large_ = F2Contributing(MakeContributingConfig(
      p, std::min(1.0, p.phi2_factor / Log2AtLeast1(p.alpha)), r2, q,
      SplitMix64(config.seed ^ 0x4444)));

  // Superset pool: expected 12·Q·log2(m)/r2 members (Fig. 6's M), capped.
  double pool_expected = 12.0 * static_cast<double>(q) *
                         Log2AtLeast1(static_cast<double>(p.m)) /
                         static_cast<double>(r2);
  // A uniform sample this size hits any class of ≥ r2 supersets w.h.p.;
  // capping keeps the pool's L0 counters a small constant of the footprint.
  pool_expected = std::min(pool_expected, 64.0);
  double pool_rate = std::min(1.0, pool_expected / static_cast<double>(q));
  pool_rate_den_ = 1ULL << 40;
  pool_rate_num_ = std::max<uint64_t>(
      1, static_cast<uint64_t>(pool_rate * static_cast<double>(pool_rate_den_)));
  pool_l0_seed_ = SplitMix64(config.seed ^ 0x6666);
}

void LargeSetComplete::AdmitSuperset(uint64_t superset,
                                     uint64_t element_folded) {
  uint64_t folded = MersenneFold(superset);
  cntr_small_.AddFolded(superset, folded);
  cntr_large_.AddFolded(superset, folded);
  if (pool_hash_.KeepFolded(folded, pool_rate_num_, pool_rate_den_)) {
    auto it = pool_.find(superset);
    if (it == pool_.end()) {
      // Pool counters only feed a threshold test, so half-size KMV sketches
      // (±2/√32 ≈ 35% worst case) are accurate enough and halve the pool's
      // footprint.
      it = pool_
               .emplace(superset,
                        L0Estimator(
                            {.num_mins = std::max(
                                 32u, config_.params.l0_num_mins / 2),
                             .seed = SplitMix64(pool_l0_seed_ ^ superset)}))
               .first;
    }
    it->second.AddFolded(element_folded);
  }
}

void LargeSetComplete::Process(const Edge& edge) {
  if (config_.element_rate < 1.0 &&
      !element_sampler_.Sampled(edge.element)) {
    return;
  }
  AdmitSuperset(superset_hash_.MapRange(edge.set, num_supersets_),
                MersenneFold(edge.element));
}

void LargeSetComplete::ProcessBatch(const PrefoldedEdges& batch) {
  constexpr size_t kTile = 128;
  uint64_t keys[kTile];
  uint64_t set_f[kTile];
  uint64_t elem_f[kTile];
  uint64_t supersets[kTile];
  const bool gate = config_.element_rate < 1.0;
  for (size_t i = 0; i < batch.size; i += kTile) {
    size_t m = std::min(kTile, batch.size - i);
    // Apply the element gate first and compact the survivors, so the
    // superset hash (the deepest chain) only runs on edges that matter.
    size_t cnt = 0;
    if (gate) {
      element_sampler_.SampleKeysFoldedBatch(batch.element_folded + i, keys,
                                             m);
      const uint64_t thr = element_sampler_.rate_num();
      for (size_t j = 0; j < m; ++j) {
        if (keys[j] >= thr) continue;
        set_f[cnt] = batch.set_folded[i + j];
        elem_f[cnt] = batch.element_folded[i + j];
        ++cnt;
      }
    } else {
      for (size_t j = 0; j < m; ++j) {
        set_f[j] = batch.set_folded[i + j];
        elem_f[j] = batch.element_folded[i + j];
      }
      cnt = m;
    }
    superset_hash_.MapRangeFoldedBatch(set_f, supersets, cnt, num_supersets_);
    for (size_t t = 0; t < cnt; ++t) AdmitSuperset(supersets[t], elem_f[t]);
  }
}

void LargeSetComplete::Merge(const LargeSetComplete& other) {
  CHECK_EQ(config_.seed, other.config_.seed);
  CHECK_EQ(num_supersets_, other.num_supersets_);
  cntr_small_.Merge(other.cntr_small_);
  cntr_large_.Merge(other.cntr_large_);
  // Pool entries are keyed by superset id; which ids appear depends only on
  // the observed edges (the pool hash is shared), so union-by-key plus L0
  // merge reproduces the single-threaded pool on the concatenated stream.
  for (const auto& [superset, de] : other.pool_) {
    auto it = pool_.find(superset);
    if (it == pool_.end()) {
      pool_.emplace(superset, de);
    } else {
      it->second.Merge(de);
    }
  }
}

std::optional<LargeSetComplete::Candidate> LargeSetComplete::BestCandidate()
    const {
  const Params& p = config_.params;
  std::optional<Candidate> best;
  auto consider = [&best](uint64_t superset, double cov) {
    if (cov <= 0) return;
    if (!best || cov > best->sample_scale_estimate) {
      best = Candidate{superset, cov};
    }
  };
  // Case 1: a small (≤ sα supersets) contributing class of F2(v⃗). The
  // extracted value estimates total incidence size; divide by f to lower-
  // bound coverage (Claim 4.10).
  for (const ContributingCoordinate& cc : cntr_small_.Extract()) {
    if (cc.estimate >= thr1_ / 2.0) {
      consider(cc.id, 2.0 * cc.estimate / (3.0 * p.f));
    }
  }
  // Case 2, small classes.
  for (const ContributingCoordinate& cc : cntr_large_.Extract()) {
    if (cc.estimate >= thr2_ / 2.0) {
      consider(cc.id, 2.0 * cc.estimate / (3.0 * p.f));
    }
  }
  // Case 2, oversized classes: pooled supersets carry direct (distinct)
  // coverage counters, so no f correction is needed (Fig. 6's DE path).
  for (const auto& [superset, de] : pool_) {
    double val = de.Estimate();
    if (val >= thr2_ / 2.0) consider(superset, 2.0 * val / 3.0);
  }
  return best;
}

EstimateOutcome LargeSetComplete::Finalize() const {
  EstimateOutcome out;
  out.source = "large-set";
  auto best = BestCandidate();
  if (!best) return out;
  out.feasible = true;
  double rate = std::min(config_.element_rate, 1.0);
  out.estimate = best->sample_scale_estimate / rate;
  // Never report more than the universe: the scale-up is an expectation
  // inversion and can overshoot on lucky samples.
  out.estimate =
      std::min(out.estimate, static_cast<double>(config_.universe_size));
  return out;
}

std::vector<SetId> LargeSetComplete::ExtractSolution(uint64_t max_sets) const {
  CHECK(config_.reporting);
  std::vector<SetId> out;
  auto best = BestCandidate();
  if (!best) return out;
  for (SetId s = 0; s < config_.params.m && out.size() < max_sets; ++s) {
    if (superset_hash_.MapRange(s, num_supersets_) == best->superset) {
      out.push_back(s);
    }
  }
  return out;
}

size_t LargeSetComplete::MemoryBytes() const {
  size_t bytes = element_sampler_.MemoryBytes() +
                 superset_hash_.MemoryBytes() + cntr_small_.MemoryBytes() +
                 cntr_large_.MemoryBytes() + pool_hash_.MemoryBytes();
  for (const auto& [id, de] : pool_) bytes += sizeof(id) + de.MemoryBytes();
  return bytes;
}

void LargeSetComplete::ReportSpace(SpaceAccountant* acct) const {
  SpaceMetered::ReportSpace(acct);
  cntr_small_.ReportSpace(acct);
  cntr_large_.ReportSpace(acct);
  for (const auto& [id, de] : pool_) {
    (void)id;
    de.ReportSpace(acct);
  }
}

LargeSet::LargeSet(const Config& config) : config_(config) {
  const Params& p = config.params;
  CHECK_GT(config.universe_size, 0u);
  Rng rng(config.seed);
  double u = static_cast<double>(config.universe_size);
  // ρ = t·s·α·η / |U| (Appendix B, Step 1).
  double rate = std::min(1.0, p.t * p.s * p.alpha * p.eta / u);
  uint32_t reps = p.large_set_reps;
  if (p.mode == Params::Mode::kTheory) {
    reps = std::max(reps, CeilLog2(config.universe_size) + 1);
  }
  if (rate >= 1.0) reps = 1;  // identical repetitions are pointless
  for (uint32_t r = 0; r < reps; ++r) {
    LargeSetComplete::Config c;
    c.params = p;
    c.universe_size = config.universe_size;
    c.w = config.w;
    c.element_rate = rate;
    c.reporting = config.reporting;
    c.seed = rng.Fork();
    reps_.emplace_back(c);
  }
}

void LargeSet::Process(const Edge& edge) {
  for (auto& rep : reps_) rep.Process(edge);
}

void LargeSet::ProcessBatch(const PrefoldedEdges& batch) {
  for (auto& rep : reps_) rep.ProcessBatch(batch);
}

void LargeSet::Merge(const LargeSet& other) {
  CHECK_EQ(config_.seed, other.config_.seed);
  CHECK_EQ(reps_.size(), other.reps_.size());
  for (size_t i = 0; i < reps_.size(); ++i) reps_[i].Merge(other.reps_[i]);
}

std::optional<size_t> LargeSet::BestRep() const {
  std::optional<size_t> best;
  double best_est = 0;
  for (size_t i = 0; i < reps_.size(); ++i) {
    EstimateOutcome out = reps_[i].Finalize();
    if (out.feasible && (!best || out.estimate > best_est)) {
      best = i;
      best_est = out.estimate;
    }
  }
  return best;
}

EstimateOutcome LargeSet::Finalize() const {
  EstimateOutcome out;
  out.source = "large-set";
  auto best = BestRep();
  if (!best) return out;
  return reps_[*best].Finalize();
}

std::vector<SetId> LargeSet::ExtractSolution(uint64_t max_sets) const {
  auto best = BestRep();
  if (!best) return {};
  return reps_[*best].ExtractSolution(max_sets);
}

size_t LargeSet::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& rep : reps_) bytes += rep.MemoryBytes();
  return bytes;
}

void LargeSet::ReportSpace(SpaceAccountant* acct) const {
  SpaceMetered::ReportSpace(acct);
  for (const auto& rep : reps_) rep.ReportSpace(acct);
}

}  // namespace streamkc
