#include "core/report_max_cover.h"

#include <algorithm>

#include "util/check.h"
#include "util/random.h"

namespace streamkc {

namespace {

EstimateMaxCover::Config MakeEstimatorConfig(
    const ReportMaxCover::Config& config) {
  EstimateMaxCover::Config ec;
  ec.params = config.params;
  ec.reporting = true;
  ec.seed = SplitMix64(config.seed ^ 0xeeee);
  return ec;
}

}  // namespace

void ReportMaxCover::BottomK::Add(SetId id) {
  uint64_t h = hash.Map(id);
  auto entry = std::make_pair(h, id);
  if (heap.size() < capacity) {
    if (std::find(heap.begin(), heap.end(), entry) != heap.end()) return;
    heap.push_back(entry);
    std::push_heap(heap.begin(), heap.end());
    return;
  }
  if (heap.empty() || entry >= heap.front()) return;
  if (std::find(heap.begin(), heap.end(), entry) != heap.end()) return;
  std::pop_heap(heap.begin(), heap.end());
  heap.back() = entry;
  std::push_heap(heap.begin(), heap.end());
}

std::vector<SetId> ReportMaxCover::BottomK::Ids() const {
  std::vector<SetId> out;
  out.reserve(heap.size());
  for (const auto& [h, id] : heap) out.push_back(id);
  return out;
}

ReportMaxCover::ReportMaxCover(const Config& config)
    : config_(config),
      estimator_(MakeEstimatorConfig(config)),
      set_sample_{KWiseHash::Pairwise(SplitMix64(config.seed ^ 0xffff)),
                  {},
                  config.params.k} {
  CHECK_GT(config.params.k, 0u);
}

void ReportMaxCover::Process(const Edge& edge) {
  estimator_.Process(edge);
  if (estimator_.trivial_mode()) set_sample_.Add(edge.set);
}

void ReportMaxCover::ProcessBatch(const PrefoldedEdges& batch) {
  estimator_.ProcessBatch(batch);
  if (estimator_.trivial_mode()) {
    for (size_t i = 0; i < batch.size; ++i) set_sample_.Add(batch.edges[i].set);
  }
}

uint64_t ReportMaxCover::MergeFingerprint() const {
  return SplitMix64(estimator_.MergeFingerprint() ^
                    SplitMix64(set_sample_.capacity));
}

void ReportMaxCover::Merge(const ReportMaxCover& other) {
  CHECK_EQ(config_.seed, other.config_.seed);
  estimator_.Merge(other.estimator_);
  // Canonical bottom-k union: sort/unique the combined entries and keep the
  // smallest capacity of them. Rebuilding the heap keeps later Add() calls
  // valid (the merged state can keep streaming).
  auto& heap = set_sample_.heap;
  heap.insert(heap.end(), other.set_sample_.heap.begin(),
              other.set_sample_.heap.end());
  std::sort(heap.begin(), heap.end());
  heap.erase(std::unique(heap.begin(), heap.end()), heap.end());
  if (heap.size() > set_sample_.capacity) heap.resize(set_sample_.capacity);
  std::make_heap(heap.begin(), heap.end());
}

MaxCoverSolution ReportMaxCover::Finalize() const {
  EstimateOutcome est = estimator_.Finalize();
  MaxCoverSolution sol;
  sol.estimate = est.estimate;
  sol.source = est.source;
  if (estimator_.trivial_mode()) {
    // kα ≥ m: a uniform k-subset of the (distinct) observed sets — realized
    // as the bottom-k ids by hash value — has expected coverage ≥ OPT·k/m ≥
    // OPT/α.
    sol.sets = set_sample_.Ids();
    return sol;
  }
  sol.sets = estimator_.ExtractSolution(config_.params.k);
  return sol;
}

size_t ReportMaxCover::MemoryBytes() const {
  return estimator_.MemoryBytes() + VectorBytes(set_sample_.heap) +
         set_sample_.hash.MemoryBytes();
}

void ReportMaxCover::ReportSpace(SpaceAccountant* acct) const {
  SpaceMetered::ReportSpace(acct);
  estimator_.ReportSpace(acct);
}

}  // namespace streamkc
