#include "core/set_sampler.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/math_util.h"

namespace streamkc {

SetSampler::SetSampler(uint64_t m, double gamma, double c_hash,
                       uint32_t degree, uint64_t seed)
    : hash_(degree, seed) {
  CHECK_GT(m, 0u);
  CHECK_GT(gamma, 0.0);
  double r = c_hash * static_cast<double>(m) *
             Log2AtLeast1(static_cast<double>(m)) / gamma;
  range_ = std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(r)));
}

}  // namespace streamkc
