// The Section-5 lower-bound experiment harness.
//
// Theorem 3.3's Ω(m/α²) bound comes from reducing r-player set disjointness
// to α-approximate Max 1-Cover. The same hard instances can be *solved* in
// O(m/α²) space with an L2 sketch (the paper's observation that inspired the
// upper bound): the vector a with a[j] = |S_j| (players holding item j) has
// max r in a No instance and max 1 in a Yes instance, while F2(a) ≈ total
// input size — so an F2 heavy-hitter sketch with φ ≈ r²/F2, i.e. width
// Θ(m/r²), separates the cases, and nothing much smaller can.
//
// DsjDistinguisher streams the reduced Max 1-Cover edges once and outputs a
// Yes/No verdict; `space_factor` scales the sketch width relative to the
// Θ(m/r²) budget so benches can trace the accuracy cliff as space drops
// below the lower bound.

#ifndef STREAMKC_CORE_DSJ_PROTOCOL_H_
#define STREAMKC_CORE_DSJ_PROTOCOL_H_

#include <cstdint>

#include "core/streaming_interface.h"
#include "setsys/dsj_instance.h"
#include "sketch/f2_heavy_hitters.h"

namespace streamkc {

class DsjDistinguisher : public StreamingEstimator {
 public:
  struct Config {
    uint64_t num_items = 0;    // m
    uint64_t num_players = 0;  // r (the approximation factor of the game)
    // Sketch width multiplier relative to the Θ(m/r²) budget.
    double space_factor = 1.0;
    uint64_t seed = 1;
  };

  explicit DsjDistinguisher(const Config& config);

  void Process(const Edge& edge) override;

  struct Verdict {
    bool says_no = false;       // claims a common item exists
    double max_estimate = 0;    // largest estimated |S_j|
    uint64_t heaviest_item = 0; // its item id (the recovered common item)
  };

  Verdict Finalize() const;

  size_t MemoryBytes() const override;
  const char* ComponentName() const override { return "dsj_distinguisher"; }

 private:
  Config config_;
  F2HeavyHitters hh_;
};

// Convenience: full experiment on one instance. Returns true iff the verdict
// matches the instance.
bool DsjExperimentCorrect(const DsjInstance& dsj, double space_factor,
                          uint64_t seed, size_t* memory_bytes = nullptr);

}  // namespace streamkc

#endif  // STREAMKC_CORE_DSJ_PROTOCOL_H_
