// Set sampling with limited independence (Lemma 2.3, Appendix A.1).
//
// A collection F^rnd where each set survives with probability
// γ/(c·m·log m), implemented as "h(S) = 1" for a Θ(log(mn))-wise independent
// hash h : F → [c·m·log m / γ] (Lemma A.5–A.7): w.h.p. |F^rnd| ≤ γ and
// F^rnd covers every γ-common element. Storing the sampler costs one hash
// function (Θ(log(mn)) words), not |F^rnd| — membership is recomputable,
// which is what the reporting algorithm exploits.

#ifndef STREAMKC_CORE_SET_SAMPLER_H_
#define STREAMKC_CORE_SET_SAMPLER_H_

#include <cstdint>

#include "hash/kwise_hash.h"
#include "stream/edge.h"
#include "util/space.h"

namespace streamkc {

class SetSampler : public SpaceAccounted {
 public:
  // Samples each of the `m` sets with probability ≈ gamma/(c_hash·m·log2 m)
  // (so w.h.p. about gamma/(c_hash·log2 m) — and, with the paper's
  // accounting, at most gamma — sets survive and all gamma-common elements
  // are covered). `degree` is the hash independence.
  SetSampler(uint64_t m, double gamma, double c_hash, uint32_t degree,
             uint64_t seed);

  // Deterministic membership test.
  bool Sampled(SetId set) const { return hash_.MapRange(set, range_) == 0; }

  // Membership for a pre-folded id (folded == MersenneFold(set)).
  bool SampledFolded(uint64_t folded) const {
    return hash_.MapRangeFolded(folded, range_) == 0;
  }

  // Batched membership keys: out[i] is the sample key of folded[i]; the set
  // is sampled iff its key is 0 (same test Sampled() applies).
  void SampleKeysFoldedBatch(const uint64_t* folded, uint64_t* out,
                             size_t n) const {
    hash_.MapRangeFoldedBatch(folded, out, n, range_);
  }

  // 1/range: the survival probability of each set.
  double SampleRate() const { return 1.0 / static_cast<double>(range_); }

  uint64_t range() const { return range_; }

  size_t MemoryBytes() const override { return hash_.MemoryBytes(); }

 private:
  KWiseHash hash_;
  uint64_t range_;
};

// Observation 2.4: if Q (|Q| = βk) covers C, some k-subset of Q covers at
// least C/β; so C/β lower-bounds the optimal k-cover within Q.
inline double BestGroupLowerBound(double coverage, double beta) {
  return coverage / beta;
}

}  // namespace streamkc

#endif  // STREAMKC_CORE_SET_SAMPLER_H_
