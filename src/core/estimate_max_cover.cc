#include "core/estimate_max_cover.h"

#include <algorithm>
#include <cstring>
#include <optional>

#include "hash/mersenne.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/random.h"

namespace streamkc {

EstimateMaxCover::EstimateMaxCover(const Config& config) : config_(config) {
  const Params& p = config.params;
  CHECK_GT(p.n, 0u);
  Rng rng(config.seed);

  if (static_cast<double>(p.k) * p.alpha >= static_cast<double>(p.m)) {
    // Figure 1's trivial branch ("if kα ≥ m then return n/α"): estimate
    // |C(F)| with an L0 sketch and report it divided by α.
    trivial_mode_ = true;
    covered_elements_ = std::make_unique<L0Estimator>(
        L0Estimator::Config{.num_mins = p.l0_num_mins, .seed = rng.Fork()});
    return;
  }

  // Guess grid z = 2^i, descending from the top so the largest guess (≈ n,
  // or the bracket's top when a prior bracket is supplied) is always present
  // regardless of the step.
  uint64_t hi = p.n;
  uint64_t lo = p.min_universe_guess;
  if (config.guess_lo != 0 && config.guess_hi != 0) {
    CHECK_LE(config.guess_lo, config.guess_hi);
    hi = std::min<uint64_t>(config.guess_hi, p.n);
    lo = std::max<uint64_t>(config.guess_lo, 2);
  }
  uint32_t max_level = CeilLog2(hi);
  std::vector<uint32_t> levels;
  for (int32_t i = static_cast<int32_t>(max_level); i >= 0;
       i -= static_cast<int32_t>(std::max<uint32_t>(1, p.universe_guess_log_step))) {
    uint64_t z = 1ULL << i;
    if (z < lo && z < hi) break;
    levels.push_back(static_cast<uint32_t>(i));
  }
  for (uint32_t i : levels) {
    uint64_t z = 1ULL << i;
    for (uint32_t rep = 0; rep < p.universe_reduction_reps; ++rep) {
      Oracle::Config oc;
      oc.params = p;
      oc.universe_size = z;
      oc.reporting = config.reporting;
      oc.seed = rng.Fork();
      oracles_.push_back(Level{z, UniverseReduction(z, rng.Fork()),
                               std::make_unique<Oracle>(oc)});
    }
  }
}

void EstimateMaxCover::Process(const Edge& edge) {
  if (trivial_mode_) {
    covered_elements_->Add(edge.element);
    return;
  }
  for (Level& level : oracles_) {
    level.oracle->Process(level.reduction.MapEdge(edge));
  }
}

void EstimateMaxCover::ProcessBatch(const PrefoldedEdges& batch) {
  if (trivial_mode_) {
    covered_elements_->AddFoldedBatch(batch.element_folded, batch.size);
    return;
  }
  constexpr size_t kTile = 128;
  Edge mapped[kTile];
  uint64_t mapped_folded[kTile];
  for (Level& level : oracles_) {
    for (size_t i = 0; i < batch.size; i += kTile) {
      size_t m = std::min(kTile, batch.size - i);
      // Batched universe reduction; the mapped pseudo-element ids then get
      // their own fold (they are fresh hash inputs downstream — a guess
      // z > 2^61 - 1 would otherwise leak out-of-field values).
      level.reduction.MapFoldedBatch(batch.element_folded + i, mapped_folded,
                                     m);
      for (size_t j = 0; j < m; ++j) {
        mapped[j] = Edge{batch.edges[i + j].set, mapped_folded[j]};
        mapped_folded[j] = MersenneFold(mapped_folded[j]);
      }
      level.oracle->ProcessBatch(PrefoldedEdges{
          mapped, batch.set_folded + i, mapped_folded, m});
    }
  }
}

uint64_t EstimateMaxCover::MergeFingerprint() const {
  // Chain every Merge() precondition through SplitMix64. alpha is hashed by
  // bit pattern: merge compatibility is exact-config equality, not numeric
  // closeness.
  uint64_t alpha_bits;
  static_assert(sizeof(alpha_bits) == sizeof(config_.params.alpha));
  std::memcpy(&alpha_bits, &config_.params.alpha, sizeof(alpha_bits));
  uint64_t fp = SplitMix64(config_.seed);
  fp = SplitMix64(fp ^ config_.params.m);
  fp = SplitMix64(fp ^ config_.params.n);
  fp = SplitMix64(fp ^ config_.params.k);
  fp = SplitMix64(fp ^ alpha_bits);
  fp = SplitMix64(fp ^ (trivial_mode_ ? 1 : 0));
  fp = SplitMix64(fp ^ (config_.reporting ? 2 : 0));
  fp = SplitMix64(fp ^ oracles_.size());
  for (const Level& level : oracles_) fp = SplitMix64(fp ^ level.z);
  return fp;
}

void EstimateMaxCover::Merge(const EstimateMaxCover& other) {
  CHECK_EQ(config_.seed, other.config_.seed);
  CHECK_EQ(trivial_mode_, other.trivial_mode_);
  if (trivial_mode_) {
    covered_elements_->Merge(*other.covered_elements_);
    return;
  }
  CHECK_EQ(oracles_.size(), other.oracles_.size());
  for (size_t i = 0; i < oracles_.size(); ++i) {
    CHECK_EQ(oracles_[i].z, other.oracles_[i].z);
    oracles_[i].oracle->Merge(*other.oracles_[i].oracle);
  }
}

std::optional<std::pair<size_t, double>> EstimateMaxCover::BestLevel() const {
  const Params& p = config_.params;
  // est_z = max over the repetitions of guess z; then keep guesses passing
  // est_z ≥ z/(4α) and return the largest estimate.
  std::optional<std::pair<size_t, double>> best;
  for (size_t i = 0; i < oracles_.size(); ++i) {
    EstimateOutcome out = oracles_[i].oracle->Finalize();
    if (!out.feasible) continue;
    double z = static_cast<double>(oracles_[i].z);
    if (out.estimate < z / (4.0 * p.alpha)) continue;
    if (!best || out.estimate > best->second) best = {{i, out.estimate}};
  }
  return best;
}

EstimateOutcome EstimateMaxCover::Finalize() const {
  EstimateOutcome out;
  out.feasible = true;
  if (trivial_mode_) {
    out.source = "trivial";
    out.estimate = covered_elements_->Estimate() / config_.params.alpha;
    return out;
  }
  auto best = BestLevel();
  if (!best) {
    // No guess passed its threshold. OPT may still be tiny (below the
    // smallest guess); report the conservative floor 0.
    out.source = "no-guess-passed";
    out.estimate = 0;
    return out;
  }
  out.estimate = best->second;
  out.source = oracles_[best->first].oracle->Finalize().source;
  return out;
}

std::vector<SetId> EstimateMaxCover::ExtractSolution(uint64_t max_sets) const {
  CHECK(config_.reporting);
  if (trivial_mode_) return {};
  auto best = BestLevel();
  if (!best) return {};
  return oracles_[best->first].oracle->ExtractSolution(max_sets);
}

size_t EstimateMaxCover::HeavyHitterComponentBytes() const {
  size_t bytes = 0;
  for (const Level& level : oracles_) {
    bytes += level.oracle->large_set().MemoryBytes();
  }
  return bytes;
}

size_t EstimateMaxCover::MemoryBytes() const {
  if (trivial_mode_) return covered_elements_->MemoryBytes();
  size_t bytes = 0;
  for (const Level& level : oracles_) {
    bytes += level.reduction.MemoryBytes() + level.oracle->MemoryBytes();
  }
  return bytes;
}

void EstimateMaxCover::ReportSpace(SpaceAccountant* acct) const {
  SpaceMetered::ReportSpace(acct);
  if (trivial_mode_) {
    covered_elements_->ReportSpace(acct);
    return;
  }
  for (const Level& level : oracles_) level.oracle->ReportSpace(acct);
}

}  // namespace streamkc
