#include "core/small_set.h"

#include <algorithm>
#include <cmath>

#include "offline/greedy.h"
#include "util/check.h"
#include "util/math_util.h"
#include "util/random.h"

namespace streamkc {

SmallSet::SmallSet(const Config& config) : config_(config) {
  const Params& p = config.params;
  CHECK_GT(config.universe_size, 0u);
  Rng rng(config.seed);

  // k′ = Θ(k/α) sets are sought in the subsampled instance (paper: 36k/(sα),
  // with the s factor folded into kprime_factor in practical mode).
  double kp = (p.mode == Params::Mode::kTheory)
                  ? 36.0 * static_cast<double>(p.k) / (p.s * p.alpha)
                  : p.kprime_factor * static_cast<double>(p.k) / p.alpha;
  k_prime_ = std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(kp)));
  k_prime_ = std::min<uint64_t>(k_prime_, p.k);
  budget_bytes_ = p.SmallSetBudgetBytes();

  // Set-sampling rate for M (paper: 18/(sα)).
  double set_rate = (p.mode == Params::Mode::kTheory)
                        ? 18.0 / (p.s * p.alpha)
                        : p.set_sample_factor / p.alpha;
  set_rate = std::min(set_rate, 1.0);

  double u = static_cast<double>(config.universe_size);
  double log_n = Log2AtLeast1(u);
  uint32_t num_guesses =
      CeilLog2(static_cast<uint64_t>(std::max(2.0, 2.0 * p.alpha * p.eta))) + 1;
  uint32_t step = std::max<uint32_t>(1, p.small_set_level_log_step);
  for (uint32_t g = 0; g < num_guesses; g += step) {
    // Coverage-fraction guess γ = 2^g: the sub-instance's optimum covers
    // ≈ |U|/γ elements, so element sampling needs |L| ≈ c_L·γ·k′·log n.
    double gamma = static_cast<double>(1ULL << g);
    double target_l = p.element_sample_factor * gamma *
                      static_cast<double>(k_prime_) * log_n;
    double element_rate = std::min(1.0, target_l / u);
    for (uint32_t rep = 0; rep < p.small_set_reps; ++rep) {
      Instance inst{
          gamma,
          KWiseHash(p.log_wise_degree, rng.Fork()),
          std::max<uint64_t>(
              1,
              static_cast<uint64_t>(set_rate * static_cast<double>(kRateDen))),
          KWiseHash(p.log_wise_degree, rng.Fork()),
          std::max<uint64_t>(
              1, static_cast<uint64_t>(element_rate *
                                       static_cast<double>(kRateDen))),
          0,
          {},
          0};
      instances_.push_back(std::move(inst));
    }
  }
}

void SmallSet::Rescale(Instance& inst) {
  ++inst.rescales;
  inst.element_rate_num = std::max<uint64_t>(1, inst.element_rate_num / 2);
  // Prune: membership is a range test, so halving the threshold keeps
  // exactly the uniform sample at the halved rate.
  size_t entries = 0;
  for (auto it = inst.edges.begin(); it != inst.edges.end();) {
    auto& list = it->second;
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](ElementId e) {
                                return !inst.ElementSampled(e);
                              }),
               list.end());
    if (list.empty()) {
      it = inst.edges.erase(it);
    } else {
      entries += list.size();
      ++it;
    }
  }
  inst.stored_bytes = entries * (sizeof(ElementId) + sizeof(SetId) / 4);
}

void SmallSet::StoreEdge(Instance& inst, SetId set, ElementId element) {
  auto& list = inst.edges[set];
  list.push_back(element);
  inst.stored_bytes += sizeof(ElementId) + sizeof(SetId) / 4;
  while (inst.stored_bytes > budget_bytes_ && inst.rescales < kMaxRescales) {
    // Over budget: halve the element rate and prune in place (Figure 5's
    // "terminate", made graceful).
    Rescale(inst);
  }
}

void SmallSet::Process(const Edge& edge) {
  for (Instance& inst : instances_) {
    if (inst.rescales >= kMaxRescales) continue;
    if (inst.set_sampler.MapRange(edge.set, kRateDen) >= inst.set_rate_num)
      continue;
    if (!inst.ElementSampled(edge.element)) continue;
    StoreEdge(inst, edge.set, edge.element);
  }
}

void SmallSet::ProcessBatch(const PrefoldedEdges& batch) {
  constexpr size_t kTile = 128;
  uint64_t keys[kTile];
  for (Instance& inst : instances_) {
    bool dead = inst.rescales >= kMaxRescales;
    for (size_t i = 0; i < batch.size && !dead; i += kTile) {
      size_t m = std::min(kTile, batch.size - i);
      inst.set_sampler.MapRangeFoldedBatch(batch.set_folded + i, keys, m,
                                           kRateDen);
      for (size_t j = 0; j < m; ++j) {
        // Re-check liveness inside the block: a rescale cascade can exhaust
        // the instance mid-batch, and the per-edge path would then skip the
        // rest of its edges too.
        if (inst.rescales >= kMaxRescales) {
          dead = true;
          break;
        }
        if (keys[j] >= inst.set_rate_num) continue;
        if (!inst.ElementSampledFolded(batch.element_folded[i + j])) continue;
        StoreEdge(inst, batch.edges[i + j].set, batch.edges[i + j].element);
      }
    }
  }
}

void SmallSet::MergeInstance(Instance& mine, const Instance& theirs) {
  // A dead instance stopped ingesting at an arbitrary stream position, so
  // its frozen sample is meaningless; death is contagious (the combined
  // stream overflows any rate the dead side already exhausted).
  if (mine.rescales >= kMaxRescales || theirs.rescales >= kMaxRescales) {
    mine.rescales = kMaxRescales;
    mine.edges.clear();
    mine.stored_bytes = 0;
    return;
  }
  // Equalize to the smaller element rate. Both sides share the sampler
  // (same seed), so pruning mine down IS the uniform sample at that rate.
  while (mine.element_rate_num > theirs.element_rate_num &&
         mine.rescales < kMaxRescales) {
    Rescale(mine);
  }
  // Union in the other sample, filtering to the (now no larger) local rate.
  // Each stream token was routed to exactly one shard, so this multiset
  // union reproduces the single-threaded sample at this rate.
  for (const auto& [set, elements] : theirs.edges) {
    auto* list = &mine.edges[set];
    for (ElementId e : elements) {
      if (!mine.ElementSampled(e)) continue;
      list->push_back(e);
      mine.stored_bytes += sizeof(ElementId) + sizeof(SetId) / 4;
    }
    if (list->empty()) mine.edges.erase(set);
  }
  // The combined sample may overflow a budget neither shard hit alone:
  // cascade exactly as Process() would have.
  while (mine.stored_bytes > budget_bytes_ && mine.rescales < kMaxRescales) {
    Rescale(mine);
  }
  if (mine.rescales >= kMaxRescales && mine.stored_bytes > budget_bytes_) {
    mine.edges.clear();
    mine.stored_bytes = 0;
  }
}

void SmallSet::Merge(const SmallSet& other) {
  CHECK_EQ(config_.seed, other.config_.seed);
  CHECK_EQ(instances_.size(), other.instances_.size());
  for (size_t i = 0; i < instances_.size(); ++i) {
    MergeInstance(instances_[i], other.instances_[i]);
  }
}

std::optional<SmallSet::Evaluation> SmallSet::Evaluate(
    const Instance& inst) const {
  if (inst.rescales >= kMaxRescales || inst.edges.empty()) return std::nullopt;
  // Build positional lists for greedy, remembering the real set ids. Sets are
  // visited in sorted id order: unordered_map iteration depends on insertion
  // history, which differs between a single-pass build and a sharded merge,
  // and greedy breaks coverage ties by position. Canonical order makes the
  // evaluation a pure function of the stored sample.
  std::vector<SetId> ids;
  ids.reserve(inst.edges.size());
  for (const auto& [set, elements] : inst.edges) ids.push_back(set);
  std::sort(ids.begin(), ids.end());
  std::vector<std::vector<ElementId>> lists;
  lists.reserve(ids.size());
  for (SetId set : ids) {
    std::vector<ElementId> dedup = inst.edges.at(set);
    std::sort(dedup.begin(), dedup.end());
    dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
    lists.push_back(std::move(dedup));
  }
  CoverSolution sol = GreedyOnLists(lists, k_prime_);
  // Feasibility: the paper's sol_γ = Ω̃(k/α) cut, with an absolute floor.
  // Below it, the sampled coverage is sampling noise and the scale-up would
  // overestimate wildly.
  double accept = std::max(
      8.0, config_.params.accept_factor * static_cast<double>(k_prime_));
  double cov = static_cast<double>(sol.coverage);
  if (cov < accept) return std::nullopt;
  Evaluation eval;
  // Scale back from sample to universe: each covered element survived into
  // L with the instance's (possibly rescaled) effective probability. Use a
  // one-σ lower confidence bound on the binomial count — the oracle takes
  // the max over many instances, and without the shrink that selection is
  // biased toward upward sampling noise, breaking the never-overestimate
  // contract.
  eval.estimate = std::max(0.0, cov - std::sqrt(cov)) / inst.EffectiveRate();
  eval.estimate =
      std::min(eval.estimate, static_cast<double>(config_.universe_size));
  eval.solution.reserve(sol.sets.size());
  for (SetId pos : sol.sets) eval.solution.push_back(ids[pos]);
  return eval;
}

std::optional<std::pair<size_t, SmallSet::Evaluation>> SmallSet::BestInstance()
    const {
  std::optional<std::pair<size_t, Evaluation>> best;
  for (size_t i = 0; i < instances_.size(); ++i) {
    auto eval = Evaluate(instances_[i]);
    if (!eval) continue;
    if (!best || eval->estimate > best->second.estimate) {
      best = {{i, std::move(*eval)}};
    }
  }
  return best;
}

EstimateOutcome SmallSet::Finalize() const {
  EstimateOutcome out;
  out.source = "small-set";
  auto best = BestInstance();
  if (!best) return out;
  out.feasible = true;
  out.estimate = best->second.estimate;
  return out;
}

std::vector<SetId> SmallSet::ExtractSolution(uint64_t max_sets) const {
  auto best = BestInstance();
  if (!best) return {};
  std::vector<SetId> sets = std::move(best->second.solution);
  if (sets.size() > max_sets) sets.resize(max_sets);
  return sets;
}

size_t SmallSet::MemoryBytes() const {
  size_t bytes = 0;
  for (const Instance& inst : instances_) {
    bytes += inst.set_sampler.MemoryBytes() +
             inst.element_sampler.MemoryBytes() + inst.stored_bytes;
  }
  return bytes;
}

uint64_t SmallSet::ItemCount() const {
  uint64_t items = 0;
  for (const Instance& inst : instances_) {
    for (const auto& [set, elems] : inst.edges) {
      (void)set;
      items += elems.size();
    }
  }
  return items;
}

uint32_t SmallSet::num_rescaled() const {
  uint32_t n = 0;
  for (const Instance& inst : instances_) n += inst.rescales;
  return n;
}

}  // namespace streamkc
