// Common interface of the single-pass estimators in src/core.

#ifndef STREAMKC_CORE_STREAMING_INTERFACE_H_
#define STREAMKC_CORE_STREAMING_INTERFACE_H_

#include <string>

#include "obs/space_accountant.h"
#include "stream/edge.h"
#include "stream/edge_stream.h"
#include "util/space.h"

namespace streamkc {

// Result of a coverage-estimation subroutine. `feasible == false` is the
// paper's "infeasible" return: the subroutine's structural precondition did
// not hold, and `estimate` is meaningless.
struct EstimateOutcome {
  bool feasible = false;
  double estimate = 0;
  // Which subroutine produced the estimate ("large-common", "large-set",
  // "small-set", "trivial", ...); set by Oracle/EstimateMaxCover.
  std::string source;
  // Confidence metadata, filled by drivers that ran the estimator through a
  // degraded sharded pass (runtime quarantine policy): how many shard
  // replicas were excluded from the merge and what fraction of the fleet
  // that is. 0 / 0.0 for clean passes. A nonzero fraction means the
  // estimate saw only (1 - quarantined_fraction) of the stream's shard
  // substreams and its α guarantee is correspondingly weakened.
  uint32_t shards_quarantined = 0;
  double quarantined_fraction = 0.0;
};

// A single-pass streaming coverage estimator over (set, element) edges.
// SpaceMetered (obs/space_accountant.h): every estimator names itself and
// reports into a SpaceAccountant, so one Sample() call on the root of an
// estimator stack produces the whole space breakdown.
class StreamingEstimator : public SpaceMetered {
 public:
  ~StreamingEstimator() override = default;
  // Observes one stream token. Must be O(polylog) time and touch only
  // sketch state.
  virtual void Process(const Edge& edge) = 0;
};

// Feeds the remainder of `stream` into `alg`.
inline void FeedStream(EdgeStream& stream, StreamingEstimator& alg) {
  Edge e;
  while (stream.Next(&e)) alg.Process(e);
}

}  // namespace streamkc

#endif  // STREAMKC_CORE_STREAMING_INTERFACE_H_
