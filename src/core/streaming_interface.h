// Common interface of the single-pass estimators in src/core.

#ifndef STREAMKC_CORE_STREAMING_INTERFACE_H_
#define STREAMKC_CORE_STREAMING_INTERFACE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "hash/mersenne.h"
#include "obs/space_accountant.h"
#include "stream/edge.h"
#include "stream/edge_stream.h"
#include "util/space.h"

namespace streamkc {

// Result of a coverage-estimation subroutine. `feasible == false` is the
// paper's "infeasible" return: the subroutine's structural precondition did
// not hold, and `estimate` is meaningless.
struct EstimateOutcome {
  bool feasible = false;
  double estimate = 0;
  // Which subroutine produced the estimate ("large-common", "large-set",
  // "small-set", "trivial", ...); set by Oracle/EstimateMaxCover.
  std::string source;
  // Confidence metadata, filled by drivers that ran the estimator through a
  // degraded sharded pass (runtime quarantine policy): how many shard
  // replicas were excluded from the merge and what fraction of the fleet
  // that is. 0 / 0.0 for clean passes. A nonzero fraction means the
  // estimate saw only (1 - quarantined_fraction) of the stream's shard
  // substreams and its α guarantee is correspondingly weakened.
  uint32_t shards_quarantined = 0;
  double quarantined_fraction = 0.0;
};

// A single-pass streaming coverage estimator over (set, element) edges.
// SpaceMetered (obs/space_accountant.h): every estimator names itself and
// reports into a SpaceAccountant, so one Sample() call on the root of an
// estimator stack produces the whole space breakdown.
class StreamingEstimator : public SpaceMetered {
 public:
  ~StreamingEstimator() override = default;
  // Observes one stream token. Must be O(polylog) time and touch only
  // sketch state.
  virtual void Process(const Edge& edge) = 0;

  // Observes a block of stream tokens with their ids pre-folded into the
  // hash field domain (see stream/edge.h). MUST leave the estimator in the
  // state a Process() loop over the same edges would — batching is a pure
  // throughput optimization, never a semantic one (the differential tests
  // hold implementations to bit-identical serialized state). The default is
  // that loop; estimators override it to amortize hash evaluation and skip
  // per-edge virtual dispatch.
  virtual void ProcessBatch(const PrefoldedEdges& batch) {
    for (size_t i = 0; i < batch.size; ++i) Process(batch.edges[i]);
  }
};

// Feeds the remainder of `stream` into `alg`, a batch at a time: one
// MersenneFold per id here replaces one per (id, sub-estimator hash) pair
// inside, and the batched entry points amortize the Horner evaluations.
inline void FeedStream(EdgeStream& stream, StreamingEstimator& alg) {
  constexpr size_t kFeedBatch = 1024;
  std::vector<Edge> edges;
  std::vector<uint64_t> set_folded;
  std::vector<uint64_t> element_folded;
  while (stream.NextBatch(&edges, kFeedBatch) > 0) {
    set_folded.resize(edges.size());
    element_folded.resize(edges.size());
    for (size_t i = 0; i < edges.size(); ++i) {
      set_folded[i] = MersenneFold(edges[i].set);
      element_folded[i] = MersenneFold(edges[i].element);
    }
    alg.ProcessBatch(PrefoldedEdges{edges.data(), set_folded.data(),
                                    element_folded.data(), edges.size()});
  }
}

}  // namespace streamkc

#endif  // STREAMKC_CORE_STREAMING_INTERFACE_H_
