#include "core/dsj_protocol.h"

#include <algorithm>

#include "util/check.h"

namespace streamkc {

namespace {

F2HeavyHitters::Config MakeHhConfig(const DsjDistinguisher::Config& c) {
  CHECK_GE(c.num_players, 2u);
  CHECK_GT(c.num_items, 0u);
  CHECK_GT(c.space_factor, 0.0);
  // F2 of the reduced instance is ≈ m (Yes) or ≈ m + r² (No); the planted
  // coordinate has weight r². φ = r²/(2(m + r²)) admits it with slack.
  double r = static_cast<double>(c.num_players);
  double m = static_cast<double>(c.num_items);
  F2HeavyHitters::Config hh;
  hh.phi = std::min(1.0, (r * r) / (2.0 * (m + r * r)));
  // Design-point width 32·(m+r²)/r² = Θ(m/r²): per-row noise √(F2/width) ≈
  // r/5.7, small enough that the max over the candidate set stays below the
  // decision threshold in Yes instances. space_factor scales the realized
  // width (and candidate set) away from that design point.
  hh.width_factor = 16.0 * c.space_factor;
  hh.cand_factor = 4.0 * c.space_factor;
  hh.seed = c.seed;
  return hh;
}

}  // namespace

DsjDistinguisher::DsjDistinguisher(const Config& config)
    : config_(config), hh_(MakeHhConfig(config)) {}

void DsjDistinguisher::Process(const Edge& edge) {
  // a[j] counts the players whose set holds item j = the reduced set id.
  hh_.Add(edge.set);
}

DsjDistinguisher::Verdict DsjDistinguisher::Finalize() const {
  Verdict v;
  for (const HeavyHitter& h : hh_.Extract()) {
    if (h.estimate > v.max_estimate) {
      v.max_estimate = h.estimate;
      v.heaviest_item = h.id;
    }
  }
  // The common item reads ≈ r ± O(√(m/width)·√log); singletons read ≈ 1
  // plus the same noise. 0.6·r sits between the two at the design width.
  double threshold =
      std::max(2.0, 0.6 * static_cast<double>(config_.num_players));
  v.says_no = v.max_estimate >= threshold;
  return v;
}

size_t DsjDistinguisher::MemoryBytes() const { return hh_.MemoryBytes(); }

bool DsjExperimentCorrect(const DsjInstance& dsj, double space_factor,
                          uint64_t seed, size_t* memory_bytes) {
  DsjDistinguisher::Config c;
  c.num_items = dsj.num_items;
  c.num_players = dsj.num_players;
  c.space_factor = space_factor;
  c.seed = seed;
  DsjDistinguisher dist(c);
  for (const Edge& e : DsjToMaxCoverEdges(dsj)) dist.Process(e);
  if (memory_bytes != nullptr) *memory_bytes = dist.MemoryBytes();
  return dist.Finalize().says_no == dsj.is_no_instance;
}

}  // namespace streamkc
