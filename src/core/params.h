// Algorithm parameters (Table 2 of the paper) and engineering knobs.
//
// The paper fixes its constants for the proofs (Table 2):
//   w = min{k, α}
//   s = (9/5000) · w / (α · sqrt(2η · log(sα) · log²(mn)))   (self-referential
//       through log(sα); we resolve it by fixed-point iteration)
//   f = 7 · log(mn)
//   σ = 1 / (2500 · log²(mn))
//   t = 5000 · log²(mn) / s
//   η = 4
//
// Those constants make the union bounds go through at asymptotic scale but
// are uselessly conservative at laptop-scale m, n (σ < 10⁻⁵ forces sample
// sizes beyond the instance itself). Params therefore has two factories:
//
//   Params::Theory(...)    — Table 2 verbatim (unit-tested against the
//                            formulas); useful for reasoning and for the
//                            arithmetic tests.
//   Params::Practical(...) — same functional forms with calibrated
//                            constants; used by benches and examples. The
//                            asymptotic shape (how each quantity scales with
//                            m, n, k, α) is identical.
//
// All downstream modules read their constants from a Params value, so
// switching modes is a one-line change for a caller.

#ifndef STREAMKC_CORE_PARAMS_H_
#define STREAMKC_CORE_PARAMS_H_

#include <cstdint>
#include <string>

namespace streamkc {

struct Params {
  enum class Mode { kTheory, kPractical };

  // ---- Instance parameters -------------------------------------------------
  uint64_t m = 0;      // number of sets
  uint64_t n = 0;      // ground set size
  uint64_t k = 0;      // solution size
  double alpha = 2.0;  // target approximation factor

  Mode mode = Mode::kPractical;

  // ---- Table 2 values ------------------------------------------------------
  double w = 0;      // min{k, α}
  double s = 0;      // "large set" contribution scale (OPT_large cut at z/(sα))
  double f = 0;      // per-superset coverage inflation bound (Claim 4.10)
  double sigma = 0;  // common-element mass threshold (case I of §4)
  double t = 0;      // element-sampling rate factor in LargeSet (App. B)
  double eta = 4;    // promised coverage fraction denominator (Def. 3.4)

  // ---- Engineering knobs (same defaults in both modes unless noted) -------
  // c in the paper's (c·m·log m)/γ hash ranges (set sampling, supersets).
  double c_hash = 1.0;
  // Degree of the "Θ(log(mn))-wise" hash family. Theory: ceil(log2 m) +
  // ceil(log2 n) + 8. Practical: 8 (plenty at laptop scale, much faster).
  uint32_t log_wise_degree = 8;
  // KMV minima per L0 estimator (error ~ 2/sqrt of this).
  uint32_t l0_num_mins = 64;
  // log(1/δ) repetitions per universe-reduction level (Fig. 1).
  uint32_t universe_reduction_reps = 2;
  // Universe guesses are z = 2^(step·j): step 1 is the paper's every-power-
  // of-two grid; the practical default 2 quarters the oracle count at a
  // bounded constant-factor cost in estimate granularity.
  uint32_t universe_guess_log_step = 2;
  // SmallSet coverage-fraction guesses γ = 2^(step·j), same trade-off.
  uint32_t small_set_level_log_step = 2;
  // F2-Contributing per-level sampling numerator multiplier (paper: 12).
  double contributing_sample_factor = 4.0;
  // O(log n) repetitions inside LargeSet (Fig. 7).
  uint32_t large_set_reps = 2;
  // log n repetitions per guess inside SmallSet (Fig. 5).
  uint32_t small_set_reps = 2;
  // φ1 = phi1_factor · α²/m, φ2 = phi2_factor / log2(α) (§4.2 Cases 1/2).
  double phi1_factor = 1.0;
  double phi2_factor = 0.5;
  // SmallSet: k' = max(1, ceil(kprime_factor · k/α)) sets are sought in the
  // subsampled instance (paper: 36k/(sα)).
  double kprime_factor = 2.0;
  // SmallSet: set-sampling probability multiplier (paper: 18/(sα)).
  double set_sample_factor = 3.0;
  // SmallSet: element-sample size multiplier c_L (|L| = c_L·γ·k'·log n).
  double element_sample_factor = 4.0;
  // SmallSet: feasibility cut — accept a sub-solution only if it covers at
  // least accept_factor·k' sampled elements.
  double accept_factor = 1.0;
  // SmallSet per-instance storage budget in bytes (0 = derived as
  // 64·(m/α² + k) + 16 KiB).
  size_t small_set_budget_bytes = 0;
  // Universe-reduction levels: skip guesses z below this (tiny universes are
  // noise-dominated and never win).
  uint64_t min_universe_guess = 8;

  // ---- Factories -----------------------------------------------------------
  static Params Theory(uint64_t m, uint64_t n, uint64_t k, double alpha);
  static Params Practical(uint64_t m, uint64_t n, uint64_t k, double alpha);

  // The inverse question from the paper's introduction ("in many scenarios,
  // space is the most critical factor ... what approximation guarantees are
  // possible within the given space bounds?"): the smallest α whose
  // practical-mode sketch is predicted to fit in `budget_bytes`, derived
  // from the Θ̃(m/α²) law and clamped to [2, √m]. Exact fit depends on the
  // workload; callers should verify with MemoryBytes().
  static double AlphaForBudget(uint64_t m, uint64_t n, uint64_t k,
                               size_t budget_bytes);

  // Derived storage budget for one SmallSet instance.
  size_t SmallSetBudgetBytes() const;

  std::string DebugString() const;
};

}  // namespace streamkc

#endif  // STREAMKC_CORE_PARAMS_H_
