// SmallSet: element sampling over subsampled sets (Section 4.3, Figure 5).
//
// Handles case III of the oracle: the optimal coverage comes mostly from
// "small" sets (every OPT member contributes < z/(sα)). Then subsampling
// sets at rate Θ(1/(sα)) preserves, w.h.p., a (Θ̃(k/α))-cover with coverage
// Θ̃(z/α) (Lemma 4.16 / Corollary 4.19). Element sampling (Lemma 2.5) at a
// guessed rate shrinks the universe to Θ̃(γ·k′) elements, and the surviving
// sub-instance (L, M) fits in Õ(m/α²) space (Lemmas 4.20 / 4.21), where it
// is solved *offline* by greedy at the end of the pass.
//
// Each (guess, repetition) stores its own sub-instance under a hard byte
// budget. Where Figure 5 *terminates* an instance whose sample outgrows the
// budget, this implementation instead *rescales* it: the element-sampling
// threshold is halved and the stored sample pruned in place. Because
// membership is a range test on one hash, the pruned sample is exactly the
// uniform sample at the halved rate, so Lemma 2.5 applies at the final
// effective rate and dense instances degrade gracefully instead of dying.
//
// The returned estimate is the greedy coverage on the sample scaled back by
// the effective element rate; infeasible unless the greedy k′-cover covers
// Ω(k′) sampled elements (the paper's sol_γ = Ω̃(k/α) test), which keeps the
// estimator from hallucinating coverage out of sampling noise.

#ifndef STREAMKC_CORE_SMALL_SET_H_
#define STREAMKC_CORE_SMALL_SET_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/params.h"
#include "core/streaming_interface.h"
#include "hash/kwise_hash.h"

namespace streamkc {

class SmallSet : public StreamingEstimator {
 public:
  struct Config {
    Params params;
    uint64_t universe_size = 0;
    bool reporting = false;
    uint64_t seed = 1;
  };

  explicit SmallSet(const Config& config);

  void Process(const Edge& edge) override;

  // Batched ingest: per instance, the Θ(log mn)-wise set-sampling gate runs
  // batched over the block; the (rare) set survivors take the folded element
  // test and the normal store/budget path, in edge order, so the stored
  // sample — including any mid-batch rescale cascade — is bit-identical to a
  // Process() loop.
  void ProcessBatch(const PrefoldedEdges& batch) override;

  EstimateOutcome Finalize() const;

  // Merges another instance built with the same Config. Per (guess, rep)
  // instance: both stored samples are pruned to the smaller element rate
  // (membership is a range test, so pruning IS the sample at that rate),
  // unioned, and re-checked against the byte budget. Because an instance's
  // final state is a pure function of (observed edge multiset, budget) —
  // the rescale cascade fires iff the full sample at a rate overflows,
  // regardless of arrival order — the merged state equals the
  // single-threaded state on the concatenated stream.
  void Merge(const SmallSet& other);

  // Reporting mode, after a feasible Finalize(): the actual set ids chosen
  // by greedy on the winning sub-instance (at most k′ ≤ k of them).
  std::vector<SetId> ExtractSolution(uint64_t max_sets) const;

  size_t MemoryBytes() const override;
  const char* ComponentName() const override { return "small_set"; }
  // Stored sample size: surviving (set, element) incidences across every
  // (guess, repetition) instance.
  uint64_t ItemCount() const override;

  uint32_t num_instances() const {
    return static_cast<uint32_t>(instances_.size());
  }

  // Total budget-overflow rescaling events across instances (diagnostic).
  uint32_t num_rescaled() const;

 private:
  static constexpr uint64_t kRateDen = 1ULL << 40;
  // An instance whose rate has been halved this many times stores (almost)
  // nothing and is effectively dead.
  static constexpr uint32_t kMaxRescales = 38;

  struct Instance {
    double gamma = 0;       // coverage-fraction guess (OPT' ≈ |U|/γ)
    KWiseHash set_sampler;  // M membership at rate set_rate_num/kRateDen
    uint64_t set_rate_num = 0;
    KWiseHash element_sampler;  // L membership at element_rate_num/kRateDen
    uint64_t element_rate_num = 0;  // halved on every budget overflow
    uint32_t rescales = 0;
    // The stored sub-instance: surviving set -> its surviving elements.
    std::unordered_map<SetId, std::vector<ElementId>> edges;
    size_t stored_bytes = 0;

    bool ElementSampled(ElementId e) const {
      return element_sampler.MapRange(e, kRateDen) < element_rate_num;
    }
    bool ElementSampledFolded(uint64_t folded) const {
      return element_sampler.MapRangeFolded(folded, kRateDen) <
             element_rate_num;
    }
    double EffectiveRate() const {
      return static_cast<double>(element_rate_num) /
             static_cast<double>(kRateDen);
    }
  };

  struct Evaluation {
    double estimate = 0;          // universe scale
    std::vector<SetId> solution;  // greedy's picks (actual set ids)
  };

  // Halves inst's element rate and prunes its stored sample accordingly.
  void Rescale(Instance& inst);

  // Stores one surviving (set, element) incidence and runs the budget /
  // rescale cascade — the post-gate tail of Process(), shared with the
  // batched path.
  void StoreEdge(Instance& inst, SetId set, ElementId element);

  // Folds the same-seeded instance `theirs` into `mine` (see Merge()).
  void MergeInstance(Instance& mine, const Instance& theirs);

  // Greedy evaluation of one stored instance; nullopt if infeasible.
  std::optional<Evaluation> Evaluate(const Instance& inst) const;

  // Best feasible instance by estimate.
  std::optional<std::pair<size_t, Evaluation>> BestInstance() const;

  Config config_;
  uint64_t k_prime_ = 1;
  size_t budget_bytes_ = 0;
  std::vector<Instance> instances_;
};

}  // namespace streamkc

#endif  // STREAMKC_CORE_SMALL_SET_H_
