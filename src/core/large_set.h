// LargeSet: heavy hitters over random supersets (Section 4.2 and Appendix B,
// Figures 4, 6 and 7).
//
// Handles case II of the oracle: an optimal solution whose coverage is
// dominated by OPT_large — sets contributing at least z/(sα) each. The sets
// F are hashed into ≈ c·m·log m / w random supersets of ≤ w = min(α, k)
// sets (Claim 4.9). With no common elements, a superset's total incidence
// count exceeds its coverage by at most a factor f (Claim 4.10), so the
// vector v⃗[i] = Σ_{S ∈ D_i} |S| is a good proxy for superset coverage, and:
//
//   Case 1 (small supersets carry F2): some class of ≤ sα supersets of total
//     size ≥ z/(sα) is a φ1 = Ω̃(α²/m)-contributing class of F2(v⃗)
//     (Claim 4.11) — found by F2-Contributing(φ1, sα) in Õ(m/α²) space.
//   Case 2 (they do not): some class is Ω̃(1)-contributing (Claim 4.13) —
//     found by F2-Contributing(φ2, r2) in Õ(1) space; when the contributing
//     class is larger than r2, a uniformly sampled pool of supersets with
//     per-superset L0 estimators catches it instead (Appendix B, Fig. 6).
//
// Appendix B removes the "no common elements" assumption: the whole
// computation runs on an element sample L of rate ρ = t·s·α·η/|U|, repeated
// O(log n) times (Fig. 7) so that w.h.p. some repetition's sample avoids all
// w-common elements; repetitions whose supersets are dominated by duplicated
// common elements cannot pass the thresholds (Lemma B.5), so the max over
// repetitions is sound.
//
// Estimates are produced at sample scale and divided by ρ to return to
// universe scale. Never overestimates w.h.p.; space Õ(m/α²) (Lemma B.7).

#ifndef STREAMKC_CORE_LARGE_SET_H_
#define STREAMKC_CORE_LARGE_SET_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/element_sampler.h"
#include "core/params.h"
#include "core/streaming_interface.h"
#include "hash/kwise_hash.h"
#include "sketch/f2_contributing.h"
#include "sketch/l0_estimator.h"

namespace streamkc {

// One repetition (Figure 6): runs on a fixed element sample V.
class LargeSetComplete : public StreamingEstimator {
 public:
  struct Config {
    Params params;
    uint64_t universe_size = 0;   // |U| the stream lives in
    double w = 1;                 // superset capacity bound (min(α,k) or k)
    double element_rate = 1.0;    // ρ; 1.0 disables sampling (Fig. 4 mode)
    bool reporting = false;
    uint64_t seed = 1;
  };

  explicit LargeSetComplete(const Config& config);

  void Process(const Edge& edge) override;

  // Batched ingest: the two Θ(log mn)-wise front gates (element sample and
  // superset hash — the deepest Horner chains in the oracle stack) run
  // batched; survivors fold their superset id once and feed both
  // contributing sketches and the pool through the `*Folded` entry points.
  // Bit-identical to a Process() loop over the same edges.
  void ProcessBatch(const PrefoldedEdges& batch) override;

  // Estimate is at universe scale (already divided by the element rate).
  EstimateOutcome Finalize() const;

  // Merges another repetition built with the same Config: contributing
  // sketches add (linearity) and pooled per-superset L0 counters union by
  // superset id.
  void Merge(const LargeSetComplete& other);

  // Reporting mode, after a feasible Finalize(): the winning superset's
  // member sets {S : h(S) = i*}, at most max_sets of them.
  std::vector<SetId> ExtractSolution(uint64_t max_sets) const;

  size_t MemoryBytes() const override;
  const char* ComponentName() const override { return "large_set_rep"; }
  uint64_t ItemCount() const override { return pool_.size(); }
  // Composite: also reports the two contributing sketches and the pooled
  // per-superset L0 counters.
  void ReportSpace(SpaceAccountant* acct) const override;

  uint64_t num_supersets() const { return num_supersets_; }

 private:
  struct Candidate {
    uint64_t superset = 0;
    double sample_scale_estimate = 0;  // coverage estimate on the sample V
  };

  std::optional<Candidate> BestCandidate() const;

  // Post-gate work for one surviving edge: folds the superset id once and
  // routes it through both contributing sketches and the pool.
  void AdmitSuperset(uint64_t superset, uint64_t element_folded);

  Config config_;
  ElementSampler element_sampler_;
  KWiseHash superset_hash_;
  uint64_t num_supersets_ = 0;
  double thr1_ = 0;  // Case 1 acceptance threshold (sample scale)
  double thr2_ = 0;  // Case 2 acceptance threshold (sample scale)
  F2Contributing cntr_small_;  // Case 1: φ1 = Ω̃(α²/m), classes ≤ r1
  F2Contributing cntr_large_;  // Case 2: φ2 = Ω̃(1), classes ≤ r2
  // Case 2 with oversized contributing classes: sampled supersets with
  // direct coverage counters.
  KWiseHash pool_hash_;
  uint64_t pool_rate_num_ = 0;
  uint64_t pool_rate_den_ = 1;
  mutable std::unordered_map<uint64_t, L0Estimator> pool_;
  uint64_t pool_l0_seed_ = 0;
};

// Figure 7: O(log n) parallel repetitions of LargeSetComplete on fresh
// element samples; the final answer is the best feasible repetition.
class LargeSet : public StreamingEstimator {
 public:
  struct Config {
    Params params;
    uint64_t universe_size = 0;
    // Superset capacity: Figure 2 passes k when sα ≥ 2k, else α.
    double w = 1;
    bool reporting = false;
    uint64_t seed = 1;
  };

  explicit LargeSet(const Config& config);

  void Process(const Edge& edge) override;
  void ProcessBatch(const PrefoldedEdges& batch) override;

  EstimateOutcome Finalize() const;

  // Merges another instance built with the same Config (repetition-wise).
  void Merge(const LargeSet& other);

  std::vector<SetId> ExtractSolution(uint64_t max_sets) const;

  size_t MemoryBytes() const override;
  const char* ComponentName() const override { return "large_set"; }
  uint64_t ItemCount() const override { return reps_.size(); }
  void ReportSpace(SpaceAccountant* acct) const override;

  uint32_t num_repetitions() const {
    return static_cast<uint32_t>(reps_.size());
  }

 private:
  // Index of the best feasible repetition, if any.
  std::optional<size_t> BestRep() const;

  Config config_;
  std::vector<LargeSetComplete> reps_;
};

}  // namespace streamkc

#endif  // STREAMKC_CORE_LARGE_SET_H_
