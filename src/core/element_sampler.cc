#include "core/element_sampler.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace streamkc {

ElementSampler::ElementSampler(double rate, uint32_t degree, uint64_t seed)
    : hash_(degree, seed) {
  CHECK_GT(rate, 0.0);
  double clipped = std::min(rate, 1.0);
  rate_num_ = static_cast<uint64_t>(clipped * static_cast<double>(kRateDen));
  rate_num_ = std::max<uint64_t>(rate_num_, 1);
  rate_num_ = std::min<uint64_t>(rate_num_, kRateDen);
}

}  // namespace streamkc
