#include "core/large_common.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/math_util.h"
#include "util/random.h"

namespace streamkc {

LargeCommon::LargeCommon(const Config& config) : config_(config) {
  const Params& p = config.params;
  CHECK_GT(config.universe_size, 0u);
  Rng rng(config.seed);
  uint32_t max_level = std::max<uint32_t>(
      1, CeilLog2(static_cast<uint64_t>(std::max(2.0, p.alpha))));
  for (uint32_t i = 1; i <= max_level; ++i) {
    double beta = static_cast<double>(1ULL << i);
    if (beta > 2 * p.alpha) break;
    Level level{
        beta,
        SetSampler(p.m, beta * static_cast<double>(p.k), p.c_hash,
                   p.log_wise_degree, rng.Fork()),
        L0Estimator({.num_mins = p.l0_num_mins, .seed = rng.Fork()}),
        std::nullopt,
        {}};
    if (config.reporting) {
      // Observation 2.4: partition the ≈ βk sampled sets into ⌈β⌉ groups of
      // ≈ k sets and track each group's coverage separately.
      uint32_t groups = static_cast<uint32_t>(std::ceil(beta));
      level.group_hash.emplace(p.log_wise_degree, rng.Fork());
      level.group_coverage.reserve(groups);
      for (uint32_t g = 0; g < groups; ++g) {
        level.group_coverage.emplace_back(
            L0Estimator::Config{.num_mins = p.l0_num_mins, .seed = rng.Fork()});
      }
    }
    levels_.push_back(std::move(level));
  }
}

void LargeCommon::Process(const Edge& edge) {
  for (Level& level : levels_) {
    if (!level.sampler.Sampled(edge.set)) continue;
    level.coverage.Add(edge.element);
    if (level.group_hash.has_value()) {
      uint64_t g = level.group_hash->MapRange(edge.set,
                                              level.group_coverage.size());
      level.group_coverage[g].Add(edge.element);
    }
  }
}

void LargeCommon::ProcessBatch(const PrefoldedEdges& batch) {
  constexpr size_t kTile = 128;
  uint64_t keys[kTile];
  for (size_t i = 0; i < batch.size; i += kTile) {
    size_t m = std::min(kTile, batch.size - i);
    for (Level& level : levels_) {
      level.sampler.SampleKeysFoldedBatch(batch.set_folded + i, keys, m);
      for (size_t j = 0; j < m; ++j) {
        if (keys[j] != 0) continue;
        level.coverage.AddFolded(batch.element_folded[i + j]);
        if (level.group_hash.has_value()) {
          uint64_t g = level.group_hash->MapRangeFolded(
              batch.set_folded[i + j], level.group_coverage.size());
          level.group_coverage[g].AddFolded(batch.element_folded[i + j]);
        }
      }
    }
  }
}

void LargeCommon::Merge(const LargeCommon& other) {
  CHECK_EQ(config_.seed, other.config_.seed);
  CHECK_EQ(levels_.size(), other.levels_.size());
  for (size_t i = 0; i < levels_.size(); ++i) {
    Level& mine = levels_[i];
    const Level& theirs = other.levels_[i];
    mine.coverage.Merge(theirs.coverage);
    CHECK_EQ(mine.group_coverage.size(), theirs.group_coverage.size());
    for (size_t g = 0; g < mine.group_coverage.size(); ++g) {
      mine.group_coverage[g].Merge(theirs.group_coverage[g]);
    }
  }
}

std::optional<std::pair<size_t, double>> LargeCommon::BestLevel() const {
  const Params& p = config_.params;
  double u = static_cast<double>(config_.universe_size);
  std::optional<std::pair<size_t, double>> best;
  for (size_t i = 0; i < levels_.size(); ++i) {
    const Level& level = levels_[i];
    double val = level.coverage.Estimate();
    double threshold = p.sigma * level.beta * u / (4.0 * p.alpha);
    if (val < threshold) continue;
    // Observation 2.4 + the (1 ± 1/2) L0 guarantee: 2·VAL/(3β) never exceeds
    // the best k-cover within the sample, hence never exceeds OPT.
    double estimate = 2.0 * val / (3.0 * level.beta);
    if (!best || estimate > best->second) best = {{i, estimate}};
  }
  return best;
}

EstimateOutcome LargeCommon::Finalize() const {
  EstimateOutcome out;
  out.source = "large-common";
  auto best = BestLevel();
  if (!best) return out;  // infeasible
  out.feasible = true;
  out.estimate = best->second;
  return out;
}

std::vector<SetId> LargeCommon::ExtractSolution(uint64_t max_sets) const {
  CHECK(config_.reporting);
  auto best = BestLevel();
  std::vector<SetId> out;
  if (!best) return out;
  const Level& level = levels_[best->first];
  CHECK(level.group_hash.has_value());
  // Best group by estimated coverage.
  size_t best_group = 0;
  double best_cov = -1;
  for (size_t g = 0; g < level.group_coverage.size(); ++g) {
    double cov = level.group_coverage[g].Estimate();
    if (cov > best_cov) {
      best_cov = cov;
      best_group = g;
    }
  }
  // Membership is recomputable: scan set-id space once at output time.
  for (SetId s = 0; s < config_.params.m && out.size() < max_sets; ++s) {
    if (level.sampler.Sampled(s) &&
        level.group_hash->MapRange(s, level.group_coverage.size()) ==
            best_group) {
      out.push_back(s);
    }
  }
  return out;
}

size_t LargeCommon::MemoryBytes() const {
  size_t bytes = 0;
  for (const Level& level : levels_) {
    bytes += level.sampler.MemoryBytes() + level.coverage.MemoryBytes();
    if (level.group_hash.has_value()) bytes += level.group_hash->MemoryBytes();
    for (const auto& g : level.group_coverage) bytes += g.MemoryBytes();
  }
  return bytes;
}

void LargeCommon::ReportSpace(SpaceAccountant* acct) const {
  SpaceMetered::ReportSpace(acct);
  for (const Level& level : levels_) {
    level.coverage.ReportSpace(acct);
    for (const auto& g : level.group_coverage) g.ReportSpace(acct);
  }
}

}  // namespace streamkc
