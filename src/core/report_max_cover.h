// ReportMaxCover: α-approximate solution reporting in Õ(m/α² + k) space
// (Theorem 3.2).
//
// Wraps EstimateMaxCover with reporting mode on. Each subroutine already
// knows how to exhibit its witness without storing sets during the pass:
//
//   * LargeCommon — winning sampled collection is partitioned into β groups
//     by a stored hash with per-group L0 counters (Observation 2.4 made
//     constructive); group membership is re-derived at output time.
//   * LargeSet — the winning superset's members are exactly
//     {S : h(S) = i*} for the stored superset hash (the "add return
//     {S | h(S) = i*}" comments in Figure 6).
//   * SmallSet — greedy on the stored sub-instance returns actual set ids.
//
// The extra Õ(k) space beyond estimation pays for the per-group counters and
// for the trivial branch (kα ≥ m), where a bottom-k hash sample of distinct
// set ids is kept: a uniformly random k-subset of F has expected coverage
// ≥ (k/m)·|C(F)| ≥ OPT/α.

#ifndef STREAMKC_CORE_REPORT_MAX_COVER_H_
#define STREAMKC_CORE_REPORT_MAX_COVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/estimate_max_cover.h"
#include "hash/kwise_hash.h"

namespace streamkc {

// An α-approximate k-cover: set ids plus the estimator's coverage claim.
struct MaxCoverSolution {
  std::vector<SetId> sets;
  double estimate = 0;
  std::string source;
};

class ReportMaxCover : public StreamingEstimator {
 public:
  struct Config {
    Params params;
    uint64_t seed = 1;
  };

  explicit ReportMaxCover(const Config& config);

  void Process(const Edge& edge) override;
  void ProcessBatch(const PrefoldedEdges& batch) override;

  // The reported k-cover. sets.size() ≤ k.
  MaxCoverSolution Finalize() const;

  // Merges another reporter built with the same Config. The bottom-k sample
  // keeps the k smallest distinct (hash, id) pairs of the union — the same
  // set a single pass over the concatenated stream retains.
  void Merge(const ReportMaxCover& other);

  // Merge-compatibility fingerprint (see EstimateMaxCover::MergeFingerprint):
  // wraps the estimator's fingerprint plus the bottom-k sample shape.
  uint64_t MergeFingerprint() const;
  bool MergeCompatible(const ReportMaxCover& other) const {
    return MergeFingerprint() == other.MergeFingerprint();
  }

  size_t MemoryBytes() const override;
  const char* ComponentName() const override { return "report_max_cover"; }
  uint64_t ItemCount() const override { return set_sample_.heap.size(); }
  // Composite: also reports the wrapped estimator stack.
  void ReportSpace(SpaceAccountant* acct) const override;

 private:
  // Bottom-k distinct sample of set ids (trivial branch's k-cover).
  struct BottomK {
    KWiseHash hash;
    // (hash value, id) max-heap of the k smallest distinct hash values.
    std::vector<std::pair<uint64_t, SetId>> heap;
    uint64_t capacity = 0;
    void Add(SetId id);
    std::vector<SetId> Ids() const;
  };

  Config config_;
  EstimateMaxCover estimator_;
  BottomK set_sample_;
};

}  // namespace streamkc

#endif  // STREAMKC_CORE_REPORT_MAX_COVER_H_
