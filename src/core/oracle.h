// The (α, δ, η)-oracle for Max k-Cover (Definition 3.4, Section 4, Figure 2).
//
// Runs three subroutines in parallel over the same pass; their structural
// preconditions cover all instances (Section 4's case analysis), so at least
// one returns a feasible estimate whenever OPT covers ≥ |U|/η elements:
//
//   I.   LargeCommon — some β ≤ α has many (βk)-common elements;
//   II.  LargeSet    — OPT's coverage dominated by large sets. Figure 2
//        passes superset capacity w = k when sα ≥ 2k (Claim 4.3 then makes
//        this case unconditional), else w = α;
//   III. SmallSet    — OPT's coverage dominated by small sets (only possible,
//        and only instantiated, when sα < 2k).
//
// Every subroutine w.h.p. never overestimates, so Finalize() = max of the
// feasible estimates keeps the oracle's lower-bound property
// (Theorem 4.1). Space: Õ(m/α²).

#ifndef STREAMKC_CORE_ORACLE_H_
#define STREAMKC_CORE_ORACLE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/large_common.h"
#include "core/large_set.h"
#include "core/params.h"
#include "core/small_set.h"
#include "core/streaming_interface.h"

namespace streamkc {

class Oracle : public StreamingEstimator {
 public:
  struct Config {
    Params params;
    uint64_t universe_size = 0;
    bool reporting = false;
    uint64_t seed = 1;
  };

  explicit Oracle(const Config& config);

  void Process(const Edge& edge) override;
  void ProcessBatch(const PrefoldedEdges& batch) override;

  // Max over feasible subroutines; outcome.source names the winner.
  EstimateOutcome Finalize() const;

  // Merges another oracle built with the same Config, subroutine-wise.
  void Merge(const Oracle& other);

  // Reporting mode: delegates to the winning subroutine.
  std::vector<SetId> ExtractSolution(uint64_t max_sets) const;

  size_t MemoryBytes() const override;
  const char* ComponentName() const override { return "oracle"; }
  // Composite: also reports the three subroutines.
  void ReportSpace(SpaceAccountant* acct) const override;

  const LargeCommon& large_common() const { return *large_common_; }
  const LargeSet& large_set() const { return *large_set_; }
  bool has_small_set() const { return small_set_ != nullptr; }
  const SmallSet& small_set() const { return *small_set_; }

 private:
  Config config_;
  std::unique_ptr<LargeCommon> large_common_;
  std::unique_ptr<LargeSet> large_set_;
  std::unique_ptr<SmallSet> small_set_;  // null when sα ≥ 2k
};

}  // namespace streamkc

#endif  // STREAMKC_CORE_ORACLE_H_
