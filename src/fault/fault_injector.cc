#include "fault/fault_injector.h"

#include <cstring>

#include "util/random.h"

namespace streamkc {
namespace {

// Site tag keeps the push-delay decision stream independent of the stream
// wrapper's tags (fault/faulty_stream.cc), which share Decide().
constexpr uint64_t kTagPushDelay = 0x70757368;  // "push"

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, MetricsRegistry* registry)
    : plan_(plan),
      registry_(registry != nullptr ? registry : &MetricsRegistry::Global()) {
  auto counter = [&](const char* kind) {
    return registry_->GetCounter(
        LabeledName("faults_injected_total", "kind", kind));
  };
  push_delay_count_ = counter(kFaultPushDelay);
  slow_shard_count_ = counter(kFaultSlowShard);
  worker_death_count_ = counter(kFaultWorkerDeath);
  merge_corruption_count_ = counter(kFaultMergeCorruption);
  frame_corruption_count_ = counter(kFaultFrameCorruption);
  socket_drop_count_ = counter(kFaultSocketDrop);
  stream_error_count_ = counter(kFaultStreamError);
  duplicate_count_ = counter(kFaultDuplicate);
  reorder_count_ = counter(kFaultReorder);
  garbage_count_ = counter(kFaultGarbage);
}

bool FaultInjector::Decide(uint64_t tag, uint64_t n, double p) const {
  if (p <= 0.0) return false;
  // One SplitMix64 draw mapped to [0, 1); stateless, so thread interleaving
  // cannot perturb the decision sequence.
  uint64_t h = SplitMix64(plan_.seed ^ SplitMix64(tag ^ SplitMix64(n)));
  return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

uint64_t FaultInjector::PushDelayNs(uint32_t shard, uint64_t batch_index) const {
  if (plan_.push_delay_rate <= 0.0 || plan_.push_delay_ns == 0) return 0;
  if (!Decide(kTagPushDelay ^ shard, batch_index, plan_.push_delay_rate)) {
    return 0;
  }
  push_delay_count_->Increment();
  return plan_.push_delay_ns;
}

uint64_t FaultInjector::ShardSlowdownNs(uint32_t shard) const {
  if (shard != plan_.slow_shard || plan_.slow_shard_ns == 0) return 0;
  slow_shard_count_->Increment();
  return plan_.slow_shard_ns;
}

bool FaultInjector::WorkerDiesAt(uint32_t shard,
                                 uint64_t batches_processed) const {
  if (shard != plan_.kill_shard) return false;
  return batches_processed >= plan_.kill_after_batches;
}

bool FaultInjector::CorruptsMergeFingerprint(uint32_t shard) const {
  return shard == plan_.corrupt_merge_shard;
}

bool FaultInjector::CorruptsFrame(uint32_t shard) const {
  return shard == plan_.corrupt_frame_shard;
}

bool FaultInjector::DropsSocket(uint32_t shard) const {
  return shard == plan_.socket_drop_shard;
}

Counter* FaultInjector::CounterFor(const char* kind) const {
  if (std::strcmp(kind, kFaultPushDelay) == 0) return push_delay_count_;
  if (std::strcmp(kind, kFaultSlowShard) == 0) return slow_shard_count_;
  if (std::strcmp(kind, kFaultWorkerDeath) == 0) return worker_death_count_;
  if (std::strcmp(kind, kFaultMergeCorruption) == 0) {
    return merge_corruption_count_;
  }
  if (std::strcmp(kind, kFaultFrameCorruption) == 0) {
    return frame_corruption_count_;
  }
  if (std::strcmp(kind, kFaultSocketDrop) == 0) return socket_drop_count_;
  if (std::strcmp(kind, kFaultStreamError) == 0) return stream_error_count_;
  if (std::strcmp(kind, kFaultDuplicate) == 0) return duplicate_count_;
  if (std::strcmp(kind, kFaultReorder) == 0) return reorder_count_;
  return garbage_count_;
}

void FaultInjector::Count(const char* kind) const {
  CounterFor(kind)->Increment();
}

}  // namespace streamkc
