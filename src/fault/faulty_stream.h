// FaultInjectingStream: wraps any EdgeStream and perturbs it according to a
// FaultPlan — the stream-side half of the fault-injection harness.
//
// Injected faults (all seed-deterministic; see fault_plan.h for the spec):
//
//   * transient read errors — Next()/NextBatch() fails with ok() == false
//     and transient() == true; the NEXT call resumes where the stream left
//     off. This models a flaky upstream (socket hiccup, throttled reader)
//     and exercises the pipeline's bounded retry-with-backoff.
//   * duplicate edges — an already-emitted edge is re-emitted. The model
//     explicitly allows repeated incidences, so estimators must tolerate
//     them; the differential suite measures how well they do.
//   * local reordering — edges are permuted within sliding windows of W
//     tokens (sketches are order-oblivious; this verifies it end-to-end).
//   * garbage edges — out-of-domain ids (>= FaultPlan::kGarbageIdBase)
//     appear in the stream, as from a corrupted upstream feed.
//
// Determinism: decisions are drawn from the shared FaultInjector::Decide
// scheme keyed by token sequence number, so the perturbed token sequence is
// a pure function of (inner stream, plan). Reset() rewinds both the inner
// stream and the fault sequence, giving byte-identical replays.

#ifndef STREAMKC_FAULT_FAULTY_STREAM_H_
#define STREAMKC_FAULT_FAULTY_STREAM_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "stream/edge_stream.h"

namespace streamkc {

class FaultInjectingStream : public EdgeStream {
 public:
  // `inner` must outlive this stream; `injector` supplies the decision
  // scheme and the faults_injected_total counters and must also outlive it.
  FaultInjectingStream(EdgeStream* inner, const FaultInjector* injector);

  bool Next(Edge* edge) override;
  void Reset() override;
  uint64_t SizeHint() const override { return inner_->SizeHint(); }

  // ok() is false while a transient fault (or an inner-stream error) is
  // outstanding; transient() distinguishes the retryable case. A retry is
  // simply the next Next()/NextBatch() call.
  bool ok() const override { return error_.empty() && inner_->ok(); }
  bool transient() const override { return !error_.empty(); }
  std::string StatusMessage() const override {
    return !error_.empty() ? error_ : inner_->StatusMessage();
  }

  // Fault totals for this stream instance (the registry counters aggregate
  // across instances; these are per-run).
  uint64_t transient_errors() const { return transient_errors_; }
  uint64_t duplicates_injected() const { return duplicates_injected_; }
  uint64_t garbage_injected() const { return garbage_injected_; }
  uint64_t windows_reordered() const { return windows_reordered_; }

 private:
  // Pulls the next window from the inner stream into queue_, applying
  // duplication, garbage injection and window reordering.
  void Refill();

  EdgeStream* inner_;
  const FaultInjector* injector_;
  const FaultPlan& plan_;

  std::deque<Edge> queue_;   // perturbed tokens awaiting emission
  uint64_t token_seq_ = 0;   // inner tokens consumed (decision index)
  uint64_t call_seq_ = 0;    // Next() calls (read-error decision index)
  uint64_t window_seq_ = 0;  // windows refilled (reorder decision index)
  std::string error_;        // nonempty while a transient fault is raised

  uint64_t transient_errors_ = 0;
  uint64_t duplicates_injected_ = 0;
  uint64_t garbage_injected_ = 0;
  uint64_t windows_reordered_ = 0;
};

// Owning composition of FaultInjectingStream for segment sources: a
// SegmentOpener hands out freshly-opened streams by unique_ptr, so the
// fault wrapper must carry its inner stream with it (FaultInjectingStream
// itself borrows). Each wrapped segment gets its own token/call/window
// sequence, keeping per-segment fault decisions deterministic under any
// producer count.
inline std::unique_ptr<EdgeStream> WrapWithFaults(
    std::unique_ptr<EdgeStream> inner, const FaultInjector* injector) {
  class Owning : public FaultInjectingStream {
   public:
    Owning(std::unique_ptr<EdgeStream> owned, const FaultInjector* injector)
        : FaultInjectingStream(owned.get(), injector),
          owned_(std::move(owned)) {}

   private:
    std::unique_ptr<EdgeStream> owned_;
  };
  return std::make_unique<Owning>(std::move(inner), injector);
}

}  // namespace streamkc

#endif  // STREAMKC_FAULT_FAULTY_STREAM_H_
