// FaultPlan: a declarative, seedable description of the faults to inject
// into one run — the parsed form of the CLI's --fault-plan=<spec> flag.
//
// A spec is a comma-separated list of key[=value] clauses:
//
//   seed=S              RNG seed for every probabilistic clause (default 1).
//                       Two runs with the same plan string see the SAME
//                       fault sequence — print the plan, replay the run.
//   read-error=P        each producer read fails transiently with prob. P;
//                       the stream resumes on retry (exercises the
//                       pipeline's bounded retry-with-backoff).
//   dup=P               after each edge, re-emit an already-seen edge with
//                       probability P (duplicate tokens, which the model
//                       explicitly allows).
//   reorder=W           permute the stream within sliding windows of W
//                       edges (adversarial local reordering).
//   garbage=P           inject an out-of-domain edge (ids >= 2^48) with
//                       probability P per edge — a dirty upstream feed.
//   push-delay=P:NS     before pushing a batch to its ring, sleep NS
//                       nanoseconds with probability P (producer jitter).
//   slow-shard=S:NS     worker S sleeps NS nanoseconds after every batch
//                       (one straggling shard; exercises backpressure).
//   kill-shard=S@B      worker S dies after processing B batches: its
//                       remaining substream is discarded and the shard is
//                       quarantined out of the merge.
//   corrupt-merge=S     shard S's merge fingerprint arrives corrupted; the
//                       coordinator must detect it and quarantine the shard
//                       instead of folding garbage into the estimate.
//   corrupt-frame=S     multi-process runs only: worker S's state frame is
//                       corrupted in transport; the dist coordinator's CRC
//                       must reject the frame and quarantine the worker.
//   socket-drop=S       TCP transport only: the coordinator drops worker
//                       S's first connection before acking its hello; the
//                       worker must redial with backoff and the run must
//                       converge byte-identically (with a zero retry
//                       budget the worker is quarantined, not crashed).
//
// Example:
//   --fault-plan=seed=7,read-error=0.001,dup=0.02,kill-shard=1@8
//
// Parsing is strict: an unknown key, malformed number, or out-of-range
// probability fails with a message naming the clause (a fault plan with a
// typo silently injecting nothing would defeat the point).

#ifndef STREAMKC_FAULT_FAULT_PLAN_H_
#define STREAMKC_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>

namespace streamkc {

struct FaultPlan {
  // Sentinel for "no shard targeted".
  static constexpr uint32_t kNoShard = UINT32_MAX;
  // Injected garbage ids start here: far outside any real instance domain.
  static constexpr uint64_t kGarbageIdBase = 1ULL << 48;

  uint64_t seed = 1;

  // Stream faults (producer-side, applied by FaultInjectingStream).
  double read_error_rate = 0.0;
  double duplicate_rate = 0.0;
  uint32_t reorder_window = 0;
  double garbage_rate = 0.0;

  // Runtime faults (applied by ShardedPipeline through FaultInjector).
  double push_delay_rate = 0.0;
  uint64_t push_delay_ns = 0;
  uint32_t slow_shard = kNoShard;
  uint64_t slow_shard_ns = 0;
  uint32_t kill_shard = kNoShard;
  uint64_t kill_after_batches = 0;
  uint32_t corrupt_merge_shard = kNoShard;
  // Dist faults (applied by ProcessReductionTree's coordinator).
  uint32_t corrupt_frame_shard = kNoShard;
  uint32_t socket_drop_shard = kNoShard;

  bool HasStreamFaults() const {
    return read_error_rate > 0 || duplicate_rate > 0 || reorder_window > 0 ||
           garbage_rate > 0;
  }
  bool HasRuntimeFaults() const {
    return push_delay_rate > 0 || slow_shard != kNoShard ||
           kill_shard != kNoShard || corrupt_merge_shard != kNoShard ||
           corrupt_frame_shard != kNoShard || socket_drop_shard != kNoShard;
  }
  bool Any() const { return HasStreamFaults() || HasRuntimeFaults(); }

  // Canonical spec string (round-trips through Parse); the replay handle
  // printed by the CLI and the differential driver.
  std::string ToSpec() const;

  // Parses `spec` into `*plan`. On failure returns false and names the
  // offending clause in `*error`.
  static bool Parse(const std::string& spec, FaultPlan* plan,
                    std::string* error);

  // Parse-or-die convenience for trusted callers (tests).
  static FaultPlan ParseOrDie(const std::string& spec);
};

}  // namespace streamkc

#endif  // STREAMKC_FAULT_FAULT_PLAN_H_
