// FaultInjector: the runtime-side decision engine for a FaultPlan.
//
// The sharded pipeline calls these hooks from its producer thread (push
// delays), its worker threads (slowdowns, deaths), and its coordinator
// (merge-fingerprint corruption). Decisions must therefore be deterministic
// REGARDLESS of thread interleaving: every probabilistic hook is a pure
// stateless function of (plan seed, hook tag, shard, sequence number) via
// SplitMix64 — no shared RNG state, no ordering dependence. Two runs with
// the same plan inject the same faults at the same points, which is what
// makes a fault-plan failure replayable from its spec string.
//
// The injector publishes faults_injected_total{kind="..."} counters into a
// MetricsRegistry (the process-wide one by default); counters are relaxed
// atomics and safe from any thread.

#ifndef STREAMKC_FAULT_FAULT_INJECTOR_H_
#define STREAMKC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>

#include "fault/fault_plan.h"
#include "obs/metrics.h"

namespace streamkc {

class FaultInjector {
 public:
  // `registry` receives the faults_injected_total counters; nullptr = the
  // process-wide registry.
  explicit FaultInjector(const FaultPlan& plan,
                         MetricsRegistry* registry = nullptr);

  const FaultPlan& plan() const { return plan_; }

  // Producer-side: nanoseconds to sleep before pushing batch `batch_index`
  // (a global enqueue sequence number) to `shard`; 0 = no delay.
  uint64_t PushDelayNs(uint32_t shard, uint64_t batch_index) const;

  // Worker-side: artificial per-batch slowdown for `shard`; 0 = none.
  uint64_t ShardSlowdownNs(uint32_t shard) const;

  // Worker-side: true when `shard`'s worker dies before processing its
  // batch number `batches_processed` (0-based). Once true it stays true for
  // all later batch numbers.
  bool WorkerDiesAt(uint32_t shard, uint64_t batches_processed) const;

  // Coordinator-side: true when `shard`'s merge fingerprint should arrive
  // corrupted (the detection path under test).
  bool CorruptsMergeFingerprint(uint32_t shard) const;

  // Dist-coordinator-side: true when worker `shard`'s state frame should be
  // corrupted in transport (the CRC rejection path under test).
  bool CorruptsFrame(uint32_t shard) const;

  // Dist-coordinator-side, TCP transport only: true when worker `shard`'s
  // first connection should be dropped before its hello is acked (the
  // redial-with-backoff path under test).
  bool DropsSocket(uint32_t shard) const;

  // Deterministic Bernoulli(p) for (tag, sequence n) — shared with
  // FaultInjectingStream so every fault site draws from the same scheme.
  bool Decide(uint64_t tag, uint64_t n, double p) const;

  // Bumps faults_injected_total{kind=<kind>}; `kind` must be one of the
  // kFault* tags below (the counter set is fixed at construction).
  void Count(const char* kind) const;

  static constexpr const char* kFaultPushDelay = "push-delay";
  static constexpr const char* kFaultSlowShard = "slow-shard";
  static constexpr const char* kFaultWorkerDeath = "worker-death";
  static constexpr const char* kFaultMergeCorruption = "merge-corruption";
  static constexpr const char* kFaultFrameCorruption = "frame-corruption";
  static constexpr const char* kFaultSocketDrop = "socket-drop";
  static constexpr const char* kFaultStreamError = "stream-error";
  static constexpr const char* kFaultDuplicate = "duplicate";
  static constexpr const char* kFaultReorder = "reorder";
  static constexpr const char* kFaultGarbage = "garbage";

 private:
  Counter* CounterFor(const char* kind) const;

  FaultPlan plan_;
  MetricsRegistry* registry_;
  // Resolved once; the registry owns them.
  Counter* push_delay_count_;
  Counter* slow_shard_count_;
  Counter* worker_death_count_;
  Counter* merge_corruption_count_;
  Counter* frame_corruption_count_;
  Counter* socket_drop_count_;
  Counter* stream_error_count_;
  Counter* duplicate_count_;
  Counter* reorder_count_;
  Counter* garbage_count_;
};

}  // namespace streamkc

#endif  // STREAMKC_FAULT_FAULT_INJECTOR_H_
