#include "fault/faulty_stream.h"

#include "util/random.h"

namespace streamkc {
namespace {

// Decision-stream tags (see FaultInjector::Decide); disjoint from the
// injector's runtime-side tags.
constexpr uint64_t kTagReadError = 0x72656164;  // "read"
constexpr uint64_t kTagDuplicate = 0x64757065;  // "dupe"
constexpr uint64_t kTagGarbage = 0x67617262;    // "garb"
constexpr uint64_t kTagReorder = 0x6f726472;    // "ordr"

}  // namespace

FaultInjectingStream::FaultInjectingStream(EdgeStream* inner,
                                           const FaultInjector* injector)
    : inner_(inner), injector_(injector), plan_(injector->plan()) {}

bool FaultInjectingStream::Next(Edge* edge) {
  // A call after a transient failure IS the retry: clear and resume.
  if (!error_.empty()) error_.clear();
  const uint64_t call = call_seq_++;
  if (injector_->Decide(kTagReadError, call, plan_.read_error_rate)) {
    ++transient_errors_;
    injector_->Count(FaultInjector::kFaultStreamError);
    error_ = "injected transient read error (read " + std::to_string(call) +
             " of fault plan " + plan_.ToSpec() + ")";
    return false;
  }
  if (queue_.empty()) Refill();
  if (queue_.empty()) return false;  // inner end-of-stream (or inner error)
  *edge = queue_.front();
  queue_.pop_front();
  return true;
}

void FaultInjectingStream::Refill() {
  // With no reordering requested, the window is only a pull-batch size and
  // order is preserved exactly.
  const size_t window = plan_.reorder_window > 0 ? plan_.reorder_window : 256;
  std::vector<Edge> buf;
  buf.reserve(window + window / 8);
  Edge e;
  while (buf.size() < window && inner_->Next(&e)) {
    const uint64_t tok = token_seq_++;
    buf.push_back(e);
    if (injector_->Decide(kTagDuplicate, tok, plan_.duplicate_rate)) {
      ++duplicates_injected_;
      injector_->Count(FaultInjector::kFaultDuplicate);
      buf.push_back(e);  // a repeated incidence, as the model allows
    }
    if (injector_->Decide(kTagGarbage, tok, plan_.garbage_rate)) {
      ++garbage_injected_;
      injector_->Count(FaultInjector::kFaultGarbage);
      const uint64_t g = SplitMix64(plan_.seed ^ (tok * 2 + 1));
      buf.push_back(Edge{FaultPlan::kGarbageIdBase | (g >> 16),
                         FaultPlan::kGarbageIdBase | (SplitMix64(g) >> 16)});
    }
  }
  const uint64_t win = window_seq_++;
  if (plan_.reorder_window > 0 && buf.size() > 1) {
    ++windows_reordered_;
    injector_->Count(FaultInjector::kFaultReorder);
    Rng rng(SplitMix64(plan_.seed ^ kTagReorder) ^ SplitMix64(win));
    rng.Shuffle(buf);
  }
  queue_.insert(queue_.end(), buf.begin(), buf.end());
}

void FaultInjectingStream::Reset() {
  inner_->Reset();
  queue_.clear();
  token_seq_ = 0;
  call_seq_ = 0;
  window_seq_ = 0;
  error_.clear();
  transient_errors_ = 0;
  duplicates_injected_ = 0;
  garbage_injected_ = 0;
  windows_reordered_ = 0;
}

}  // namespace streamkc
