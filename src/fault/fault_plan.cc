#include "fault/fault_plan.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace streamkc {
namespace {

// Splits on `sep`, keeping empty pieces (they are parse errors upstream).
std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool ParseProb(const std::string& v, double* out) {
  if (v.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double d = std::strtod(v.c_str(), &end);
  if (errno != 0 || end != v.c_str() + v.size()) return false;
  if (d < 0.0 || d > 1.0) return false;
  *out = d;
  return true;
}

bool ParseU64(const std::string& v, uint64_t* out) {
  if (v.empty() || v[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  uint64_t u = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end != v.c_str() + v.size()) return false;
  *out = u;
  return true;
}

// "A:B" / "A@B" pair of unsigned integers.
bool ParsePair(const std::string& v, char sep, uint64_t* a, uint64_t* b) {
  size_t pos = v.find(sep);
  if (pos == std::string::npos) return false;
  return ParseU64(v.substr(0, pos), a) && ParseU64(v.substr(pos + 1), b);
}

// "P:NS" probability:nanoseconds pair.
bool ParseProbNs(const std::string& v, double* p, uint64_t* ns) {
  size_t pos = v.find(':');
  if (pos == std::string::npos) return false;
  return ParseProb(v.substr(0, pos), p) && ParseU64(v.substr(pos + 1), ns);
}

std::string TrimFloat(double d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", d);
  return buf;
}

}  // namespace

std::string FaultPlan::ToSpec() const {
  std::string s = "seed=" + std::to_string(seed);
  if (read_error_rate > 0) s += ",read-error=" + TrimFloat(read_error_rate);
  if (duplicate_rate > 0) s += ",dup=" + TrimFloat(duplicate_rate);
  if (reorder_window > 0) s += ",reorder=" + std::to_string(reorder_window);
  if (garbage_rate > 0) s += ",garbage=" + TrimFloat(garbage_rate);
  if (push_delay_rate > 0) {
    s += ",push-delay=" + TrimFloat(push_delay_rate) + ":" +
         std::to_string(push_delay_ns);
  }
  if (slow_shard != kNoShard) {
    s += ",slow-shard=" + std::to_string(slow_shard) + ":" +
         std::to_string(slow_shard_ns);
  }
  if (kill_shard != kNoShard) {
    s += ",kill-shard=" + std::to_string(kill_shard) + "@" +
         std::to_string(kill_after_batches);
  }
  if (corrupt_merge_shard != kNoShard) {
    s += ",corrupt-merge=" + std::to_string(corrupt_merge_shard);
  }
  if (corrupt_frame_shard != kNoShard) {
    s += ",corrupt-frame=" + std::to_string(corrupt_frame_shard);
  }
  if (socket_drop_shard != kNoShard) {
    s += ",socket-drop=" + std::to_string(socket_drop_shard);
  }
  return s;
}

bool FaultPlan::Parse(const std::string& spec, FaultPlan* plan,
                      std::string* error) {
  *plan = FaultPlan();
  auto fail = [&](const std::string& clause, const char* why) {
    if (error != nullptr) {
      *error = "bad fault-plan clause '" + clause + "': " + why;
    }
    return false;
  };
  if (spec.empty()) return fail("", "empty spec");
  for (const std::string& clause : Split(spec, ',')) {
    size_t eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      return fail(clause, "expected key=value");
    }
    std::string key = clause.substr(0, eq);
    std::string value = clause.substr(eq + 1);
    uint64_t u = 0;
    if (key == "seed") {
      if (!ParseU64(value, &plan->seed)) return fail(clause, "bad integer");
    } else if (key == "read-error") {
      if (!ParseProb(value, &plan->read_error_rate)) {
        return fail(clause, "probability in [0,1] required");
      }
    } else if (key == "dup") {
      if (!ParseProb(value, &plan->duplicate_rate)) {
        return fail(clause, "probability in [0,1] required");
      }
    } else if (key == "reorder") {
      if (!ParseU64(value, &u) || u > (1u << 24)) {
        return fail(clause, "window size required");
      }
      plan->reorder_window = static_cast<uint32_t>(u);
    } else if (key == "garbage") {
      if (!ParseProb(value, &plan->garbage_rate)) {
        return fail(clause, "probability in [0,1] required");
      }
    } else if (key == "push-delay") {
      if (!ParseProbNs(value, &plan->push_delay_rate, &plan->push_delay_ns)) {
        return fail(clause, "expected P:NANOS");
      }
    } else if (key == "slow-shard") {
      uint64_t shard = 0;
      if (!ParsePair(value, ':', &shard, &plan->slow_shard_ns) ||
          shard >= kNoShard) {
        return fail(clause, "expected SHARD:NANOS");
      }
      plan->slow_shard = static_cast<uint32_t>(shard);
    } else if (key == "kill-shard") {
      uint64_t shard = 0;
      if (!ParsePair(value, '@', &shard, &plan->kill_after_batches) ||
          shard >= kNoShard) {
        return fail(clause, "expected SHARD@BATCHES");
      }
      plan->kill_shard = static_cast<uint32_t>(shard);
    } else if (key == "corrupt-merge") {
      if (!ParseU64(value, &u) || u >= kNoShard) {
        return fail(clause, "shard id required");
      }
      plan->corrupt_merge_shard = static_cast<uint32_t>(u);
    } else if (key == "corrupt-frame") {
      if (!ParseU64(value, &u) || u >= kNoShard) {
        return fail(clause, "shard id required");
      }
      plan->corrupt_frame_shard = static_cast<uint32_t>(u);
    } else if (key == "socket-drop") {
      if (!ParseU64(value, &u) || u >= kNoShard) {
        return fail(clause, "shard id required");
      }
      plan->socket_drop_shard = static_cast<uint32_t>(u);
    } else {
      return fail(clause, "unknown key");
    }
  }
  return true;
}

FaultPlan FaultPlan::ParseOrDie(const std::string& spec) {
  FaultPlan plan;
  std::string error;
  if (!Parse(spec, &plan, &error)) {
    std::fprintf(stderr, "FaultPlan::ParseOrDie: %s\n", error.c_str());
    std::abort();
  }
  return plan;
}

}  // namespace streamkc
