// In-memory set systems (U, F).
//
// SetSystem is the harness-side ground truth: generators build one, tests and
// benches evaluate exact coverage against it, and MaterializeEdges() turns it
// into an edge-arrival stream for the sublinear-space algorithms. The
// streaming algorithms themselves never touch a SetSystem.

#ifndef STREAMKC_SETSYS_SET_SYSTEM_H_
#define STREAMKC_SETSYS_SET_SYSTEM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "stream/edge.h"
#include "stream/edge_stream.h"

namespace streamkc {

class SetSystem {
 public:
  SetSystem() = default;

  // `num_elements` is |U|; element ids must lie in [0, num_elements).
  // `sets` holds each set's element list (duplicates allowed; they are
  // deduplicated on construction). Set ids are positional: sets()[i] has id i.
  SetSystem(uint64_t num_elements, std::vector<std::vector<ElementId>> sets);

  uint64_t num_elements() const { return num_elements_; }
  uint64_t num_sets() const { return sets_.size(); }
  const std::vector<std::vector<ElementId>>& sets() const { return sets_; }
  const std::vector<ElementId>& set(SetId id) const { return sets_[id]; }

  // Total number of incidences (stream length).
  uint64_t TotalEdges() const;

  // Exact coverage |C(Q)| of a collection of set ids.
  uint64_t CoverageOf(std::span<const SetId> ids) const;

  // Number of elements covered by at least one set (|C(F)|).
  uint64_t CoveredUniverseSize() const;

  // Flattens to an edge list in set-contiguous order. Use ApplyArrivalOrder
  // to produce other arrival orders.
  std::vector<Edge> MaterializeEdges() const;

  // Convenience: materialized stream in the given order.
  VectorEdgeStream MakeStream(ArrivalOrder order, uint64_t seed) const;

 private:
  uint64_t num_elements_ = 0;
  std::vector<std::vector<ElementId>> sets_;
};

}  // namespace streamkc

#endif  // STREAMKC_SETSYS_SET_SYSTEM_H_
