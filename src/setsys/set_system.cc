#include "setsys/set_system.h"

#include <algorithm>

#include "util/check.h"

namespace streamkc {

SetSystem::SetSystem(uint64_t num_elements,
                     std::vector<std::vector<ElementId>> sets)
    : num_elements_(num_elements), sets_(std::move(sets)) {
  for (auto& s : sets_) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
    if (!s.empty()) CHECK_LT(s.back(), num_elements_);
  }
}

uint64_t SetSystem::TotalEdges() const {
  uint64_t total = 0;
  for (const auto& s : sets_) total += s.size();
  return total;
}

uint64_t SetSystem::CoverageOf(std::span<const SetId> ids) const {
  std::vector<bool> covered(num_elements_, false);
  uint64_t count = 0;
  for (SetId id : ids) {
    CHECK_LT(id, sets_.size());
    for (ElementId e : sets_[id]) {
      if (!covered[e]) {
        covered[e] = true;
        ++count;
      }
    }
  }
  return count;
}

uint64_t SetSystem::CoveredUniverseSize() const {
  std::vector<bool> covered(num_elements_, false);
  uint64_t count = 0;
  for (const auto& s : sets_) {
    for (ElementId e : s) {
      if (!covered[e]) {
        covered[e] = true;
        ++count;
      }
    }
  }
  return count;
}

std::vector<Edge> SetSystem::MaterializeEdges() const {
  std::vector<Edge> edges;
  edges.reserve(TotalEdges());
  for (SetId id = 0; id < sets_.size(); ++id) {
    for (ElementId e : sets_[id]) edges.push_back(Edge{id, e});
  }
  return edges;
}

VectorEdgeStream SetSystem::MakeStream(ArrivalOrder order,
                                       uint64_t seed) const {
  std::vector<Edge> edges = MaterializeEdges();
  ApplyArrivalOrder(edges, order, seed);
  return VectorEdgeStream(std::move(edges));
}

}  // namespace streamkc
