// Element-frequency analysis: λ-common elements (Definition 2.1).
//
// An element is λ-common if it appears in at least c·m·polylog(m,n)/λ sets.
// The common-element structure decides which oracle subroutine succeeds
// (Section 4's case analysis), so the generators and tests need an exact
// evaluator for it.

#ifndef STREAMKC_SETSYS_FREQUENCY_H_
#define STREAMKC_SETSYS_FREQUENCY_H_

#include <cstdint>
#include <vector>

#include "setsys/set_system.h"

namespace streamkc {

// freq[e] = number of sets containing element e.
std::vector<uint64_t> ElementFrequencies(const SetSystem& sys);

// The frequency threshold above which an element counts as λ-common:
// c · m · log2(m)·log2(n) / λ, with `c` exposed (the paper leaves it as an
// unspecified constant; theory mode uses polylog, practical analysis often
// sets c·polylog = 1 to study the raw m/λ threshold).
double CommonThreshold(uint64_t m, uint64_t n, double lambda, double c_polylog);

// Ids of λ-common elements (U^cmn_λ) under the given threshold constant.
std::vector<ElementId> CommonElements(const SetSystem& sys, double lambda,
                                      double c_polylog);

}  // namespace streamkc

#endif  // STREAMKC_SETSYS_FREQUENCY_H_
