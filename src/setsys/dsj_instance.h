// r-player Set Disjointness instances with the unique-intersection promise,
// and the Section-5 reduction to Max 1-Cover.
//
// DSJ(m, r):
//   * Yes case: players' sets T_1..T_r ⊆ [m] are pairwise disjoint.
//   * No case:  one item j* lies in every T_i; otherwise disjoint.
//
// Reduction (Section 5): elements U = {e_1..e_r} (one per player); for every
// item j ∈ [m] a set S_j = { i : j ∈ T_i }. Then (Claims 5.3 / 5.4):
//   No  instance → OPT of Max 1-Cover is r (S_{j*} covers everything),
//   Yes instance → OPT is 1 (every S_j is a singleton).
// So any α-approximation with α < r separates the two, and by the Ω(m/r)
// communication bound (Thm 5.1) needs Ω(m/r²) space — the paper's matching
// lower bound.

#ifndef STREAMKC_SETSYS_DSJ_INSTANCE_H_
#define STREAMKC_SETSYS_DSJ_INSTANCE_H_

#include <cstdint>
#include <vector>

#include "stream/edge.h"

namespace streamkc {

struct DsjInstance {
  uint64_t num_items = 0;  // m
  uint64_t num_players = 0;  // r
  bool is_no_instance = false;  // true ⇔ a unique common item exists
  // player_items[i] = T_i (sorted item ids).
  std::vector<std::vector<uint64_t>> player_items;
  // The planted common item for No instances (undefined for Yes).
  uint64_t common_item = 0;
};

// Samples a DSJ(m, r) instance: items are split as evenly as possible among
// players (a hardest-style load); for No instances one extra item is planted
// into every player's set.
DsjInstance MakeDsjInstance(uint64_t num_items, uint64_t num_players,
                            bool no_instance, uint64_t seed);

// Section-5 reduction: the Max 1-Cover edge stream of an instance. Edges are
// emitted in player order (player i's items contiguously), mirroring the
// one-way communication setting; shuffle afterwards if desired.
std::vector<Edge> DsjToMaxCoverEdges(const DsjInstance& dsj);

// Exact optimal 1-cover value of the reduced instance: r for No, 1 for Yes
// (Claims 5.3 / 5.4). Provided for tests; computed from the instance, not
// assumed.
uint64_t DsjReducedOptimalCoverage(const DsjInstance& dsj);

}  // namespace streamkc

#endif  // STREAMKC_SETSYS_DSJ_INSTANCE_H_
