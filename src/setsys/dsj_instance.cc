#include "setsys/dsj_instance.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/check.h"
#include "util/random.h"

namespace streamkc {

DsjInstance MakeDsjInstance(uint64_t num_items, uint64_t num_players,
                            bool no_instance, uint64_t seed) {
  CHECK_GE(num_players, 2u);
  CHECK_GE(num_items, num_players);
  Rng rng(seed);
  DsjInstance dsj;
  dsj.num_items = num_items;
  dsj.num_players = num_players;
  dsj.is_no_instance = no_instance;
  dsj.player_items.resize(num_players);

  // Randomly partition the items among the players (some items may be held
  // by nobody if we reserve one for planting).
  std::vector<uint64_t> items(num_items);
  std::iota(items.begin(), items.end(), 0);
  rng.Shuffle(items);

  uint64_t start = 0;
  if (no_instance) {
    dsj.common_item = items[0];
    start = 1;
    for (auto& t : dsj.player_items) t.push_back(dsj.common_item);
  }
  for (uint64_t idx = start; idx < num_items; ++idx) {
    dsj.player_items[rng.UniformU64(num_players)].push_back(items[idx]);
  }
  for (auto& t : dsj.player_items) std::sort(t.begin(), t.end());
  return dsj;
}

std::vector<Edge> DsjToMaxCoverEdges(const DsjInstance& dsj) {
  std::vector<Edge> edges;
  for (uint64_t player = 0; player < dsj.num_players; ++player) {
    for (uint64_t item : dsj.player_items[player]) {
      // Set S_item gains element e_player.
      edges.push_back(Edge{/*set=*/item, /*element=*/player});
    }
  }
  return edges;
}

uint64_t DsjReducedOptimalCoverage(const DsjInstance& dsj) {
  // OPT of Max 1-Cover = the largest |S_j| = the item held by the most
  // players. Computed exactly.
  std::unordered_map<uint64_t, uint64_t> item_count;
  for (const auto& t : dsj.player_items) {
    for (uint64_t item : t) ++item_count[item];
  }
  uint64_t best = 0;
  for (const auto& [item, cnt] : item_count) best = std::max(best, cnt);
  return best;
}

}  // namespace streamkc
