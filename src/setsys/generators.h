// Synthetic Max k-Cover instance families.
//
// The paper's oracle (Section 4) splits into three cases by instance
// structure; each case gets a generator family here so the benches can
// exercise every subroutine:
//
//   * CommonElementFamily  — ∃β ≤ α with many βk-common elements (§4.1,
//                            handled by LargeCommon / multi-layered set
//                            sampling).
//   * LargeSetFamily       — an optimal solution whose coverage is dominated
//                            by a few "large" sets (§4.2, handled by the
//                            heavy-hitter subroutine LargeSet).
//   * SmallSetFamily       — an optimal solution made of many "small" sets
//                            (§4.3, handled by SmallSet / element sampling).
//
// PlantedCover gives instances with a known (near-)optimal value for
// approximation-ratio measurements; RandomUniform / ZipfFrequency are
// unstructured backdrops; GraphNeighborhoods reproduces footnote 2's
// motivating scenario (sets = vertex neighborhoods of a directed graph,
// where edge-arrival order is forced by the input representation).
//
// Every generator is deterministic in its seed.

#ifndef STREAMKC_SETSYS_GENERATORS_H_
#define STREAMKC_SETSYS_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "setsys/set_system.h"

namespace streamkc {

// A generated instance together with what the generator knows about its
// optimum.
struct GeneratedInstance {
  SetSystem system;
  std::string family;
  // A specific good k-cover known to the generator (possibly empty).
  std::vector<SetId> planted_solution;
  // Exact coverage of planted_solution (0 if none). The true optimum is
  // >= this value by construction.
  uint64_t planted_coverage = 0;
};

// m sets, each an independent uniform sample of `set_size` distinct elements
// from [0, n).
GeneratedInstance RandomUniform(uint64_t m, uint64_t n, uint64_t set_size,
                                uint64_t seed);

// Element popularity follows a Zipf(s) law; each of the m sets draws
// `set_size` elements from that law. Large s concentrates frequency mass on
// few elements (creating common elements); s = 0 degenerates to uniform.
GeneratedInstance ZipfFrequency(uint64_t m, uint64_t n, uint64_t set_size,
                                double zipf_s, uint64_t seed);

// k planted sets partition a `coverage_fraction` slice of U evenly (their
// union is exactly coverage_fraction * n elements); the other m - k noise
// sets each sample `noise_set_size` elements from a narrow window of U so
// that no k of them come close to the planted coverage. planted_coverage is
// exact and, for the parameter ranges used in tests/benches, equals OPT.
GeneratedInstance PlantedCover(uint64_t m, uint64_t n, uint64_t k,
                               double coverage_fraction,
                               uint64_t noise_set_size, uint64_t seed);

// One case-§4.2 instance: `num_large` jumbo sets each covering a disjoint
// ~(n/2)/num_large block (so OPT's coverage is dominated by them), plus
// m - num_large singleton sets. No element is common.
GeneratedInstance LargeSetFamily(uint64_t m, uint64_t n, uint64_t num_large,
                                 uint64_t seed);

// One case-§4.3 instance: k disjoint "small" sets of size n_opt/k forming the
// optimal cover, plus m - k decoy sets drawn from a narrow window. Every
// OPT set contributes exactly coverage/k, i.e. OPT_large is empty for
// sα < k.
GeneratedInstance SmallSetFamily(uint64_t m, uint64_t n, uint64_t k,
                                 uint64_t seed);

// One case-§4.1 instance: `num_common` elements that each belong to at least
// m / (beta * k) of the sets (so they are (βk)-common for the given β), plus
// uniform background elements.
GeneratedInstance CommonElementFamily(uint64_t m, uint64_t n, uint64_t k,
                                      double beta, uint64_t num_common,
                                      uint64_t seed);

// Sets = out-neighborhoods of a uniform random directed graph on
// `num_vertices` vertices with expected out-degree `avg_degree`;
// U = vertices, m = num_vertices. Max k-Cover = "pick k vertices whose
// out-neighborhoods cover the most vertices".
GeneratedInstance GraphNeighborhoods(uint64_t num_vertices, double avg_degree,
                                     uint64_t seed);

}  // namespace streamkc

#endif  // STREAMKC_SETSYS_GENERATORS_H_
