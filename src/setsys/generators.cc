#include "setsys/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/random.h"

namespace streamkc {

namespace {

// Builds the discrete CDF of a Zipf(s) law over n items.
std::vector<double> ZipfCdf(uint64_t n, double s) {
  std::vector<double> cdf(n);
  double acc = 0;
  for (uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = acc;
  }
  for (auto& v : cdf) v /= acc;
  return cdf;
}

uint64_t SampleCdf(const std::vector<double>& cdf, Rng& rng) {
  double u = rng.UniformDouble();
  auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  if (it == cdf.end()) return cdf.size() - 1;
  return static_cast<uint64_t>(it - cdf.begin());
}

}  // namespace

GeneratedInstance RandomUniform(uint64_t m, uint64_t n, uint64_t set_size,
                                uint64_t seed) {
  CHECK_GE(n, set_size);
  Rng rng(seed);
  std::vector<std::vector<ElementId>> sets(m);
  for (auto& s : sets) s = rng.SampleWithoutReplacement(n, set_size);
  GeneratedInstance out;
  out.system = SetSystem(n, std::move(sets));
  out.family = "random-uniform";
  return out;
}

GeneratedInstance ZipfFrequency(uint64_t m, uint64_t n, uint64_t set_size,
                                double zipf_s, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> cdf = ZipfCdf(n, zipf_s);
  // A random permutation decouples popularity rank from element id, so tests
  // that slice the id space see no popularity gradient.
  std::vector<ElementId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.Shuffle(perm);
  std::vector<std::vector<ElementId>> sets(m);
  for (auto& s : sets) {
    s.reserve(set_size);
    for (uint64_t j = 0; j < set_size; ++j) s.push_back(perm[SampleCdf(cdf, rng)]);
  }
  GeneratedInstance out;
  out.system = SetSystem(n, std::move(sets));
  out.family = "zipf";
  return out;
}

GeneratedInstance PlantedCover(uint64_t m, uint64_t n, uint64_t k,
                               double coverage_fraction,
                               uint64_t noise_set_size, uint64_t seed) {
  CHECK_GE(m, k);
  CHECK_GT(k, 0u);
  CHECK_GT(coverage_fraction, 0.0);
  CHECK_LE(coverage_fraction, 1.0);
  Rng rng(seed);
  uint64_t covered = static_cast<uint64_t>(coverage_fraction * static_cast<double>(n));
  covered = std::max<uint64_t>(covered, k);

  // Planted sets partition a random `covered`-subset of U evenly.
  std::vector<ElementId> pool = rng.SampleWithoutReplacement(n, covered);
  rng.Shuffle(pool);
  std::vector<std::vector<ElementId>> sets(m);
  for (uint64_t i = 0; i < covered; ++i) sets[i % k].push_back(pool[i]);

  // Noise sets sample from a narrow window so even the best k of them cover
  // only ~noise window elements.
  uint64_t window = std::max<uint64_t>(4 * noise_set_size, 16);
  window = std::min(window, n);
  for (uint64_t i = k; i < m; ++i) {
    uint64_t base = rng.UniformU64(n - window + 1);
    auto local = rng.SampleWithoutReplacement(window, std::min(noise_set_size, window));
    for (auto& e : local) e += base;
    sets[i] = std::move(local);
  }

  GeneratedInstance out;
  out.system = SetSystem(n, std::move(sets));
  out.family = "planted";
  out.planted_solution.resize(k);
  std::iota(out.planted_solution.begin(), out.planted_solution.end(), 0);
  out.planted_coverage = covered;
  return out;
}

GeneratedInstance LargeSetFamily(uint64_t m, uint64_t n, uint64_t num_large,
                                 uint64_t seed) {
  CHECK_GE(m, num_large);
  CHECK_GT(num_large, 0u);
  Rng rng(seed);
  uint64_t big_total = n / 2;
  uint64_t per_big = std::max<uint64_t>(big_total / num_large, 1);
  std::vector<std::vector<ElementId>> sets(m);
  // Jumbo sets cover disjoint contiguous blocks of the first half of U.
  for (uint64_t i = 0; i < num_large; ++i) {
    uint64_t lo = i * per_big;
    uint64_t hi = std::min(lo + per_big, n);
    sets[i].reserve(hi - lo);
    for (uint64_t e = lo; e < hi; ++e) sets[i].push_back(e);
  }
  // Everything else is a singleton from the second half: tiny marginal
  // contribution and frequency 1 everywhere (no common elements).
  for (uint64_t i = num_large; i < m; ++i) {
    sets[i].push_back(n / 2 + rng.UniformU64(n - n / 2));
  }
  GeneratedInstance out;
  out.system = SetSystem(n, std::move(sets));
  out.family = "large-set";
  out.planted_solution.resize(num_large);
  std::iota(out.planted_solution.begin(), out.planted_solution.end(), 0);
  out.planted_coverage = out.system.CoverageOf(out.planted_solution);
  return out;
}

GeneratedInstance SmallSetFamily(uint64_t m, uint64_t n, uint64_t k,
                                 uint64_t seed) {
  CHECK_GE(m, k);
  CHECK_GT(k, 0u);
  Rng rng(seed);
  uint64_t n_opt = n / 2;
  uint64_t per_set = std::max<uint64_t>(n_opt / k, 1);
  std::vector<std::vector<ElementId>> sets(m);
  // k disjoint equal slices: every optimal set contributes exactly per_set.
  for (uint64_t i = 0; i < k; ++i) {
    uint64_t lo = i * per_set;
    uint64_t hi = std::min(lo + per_set, n_opt);
    for (uint64_t e = lo; e < hi; ++e) sets[i].push_back(e);
  }
  // Decoys: same size, but all drawn from one narrow window in the second
  // half, so any k of them cover ≤ window elements.
  uint64_t window = std::min<uint64_t>(2 * per_set + 8, n - n_opt);
  for (uint64_t i = k; i < m; ++i) {
    auto local = rng.SampleWithoutReplacement(window, std::min(per_set, window));
    for (auto& e : local) e += n_opt;
    sets[i] = std::move(local);
  }
  GeneratedInstance out;
  out.system = SetSystem(n, std::move(sets));
  out.family = "small-set";
  out.planted_solution.resize(k);
  std::iota(out.planted_solution.begin(), out.planted_solution.end(), 0);
  out.planted_coverage = out.system.CoverageOf(out.planted_solution);
  return out;
}

GeneratedInstance CommonElementFamily(uint64_t m, uint64_t n, uint64_t k,
                                      double beta, uint64_t num_common,
                                      uint64_t seed) {
  CHECK_GT(beta, 0.0);
  CHECK_GT(k, 0u);
  CHECK_LE(num_common, n);
  Rng rng(seed);
  // Target frequency: each common element belongs to >= m/(beta*k) sets —
  // comfortably above the λ-common threshold for λ = βk (with constant 1).
  uint64_t freq = std::max<uint64_t>(
      static_cast<uint64_t>(std::ceil(static_cast<double>(m) / (beta * static_cast<double>(k)))),
      1);
  freq = std::min(freq, m);
  std::vector<std::vector<ElementId>> sets(m);
  for (ElementId e = 0; e < num_common; ++e) {
    // Choose `freq` random distinct sets to contain e.
    for (uint64_t owner : rng.SampleWithoutReplacement(m, freq)) {
      sets[owner].push_back(e);
    }
  }
  // Background: every set also gets a couple of private elements so set
  // sizes are nonzero and frequencies outside the core stay tiny.
  for (uint64_t i = 0; i < m; ++i) {
    for (int j = 0; j < 2; ++j) {
      sets[i].push_back(num_common + rng.UniformU64(n - num_common));
    }
  }
  GeneratedInstance out;
  out.system = SetSystem(n, std::move(sets));
  out.family = "common-element";
  return out;
}

GeneratedInstance GraphNeighborhoods(uint64_t num_vertices, double avg_degree,
                                     uint64_t seed) {
  CHECK_GT(num_vertices, 1u);
  Rng rng(seed);
  double p = avg_degree / static_cast<double>(num_vertices - 1);
  std::vector<std::vector<ElementId>> sets(num_vertices);
  // Sample out-degrees binomially via per-vertex geometric skipping.
  for (uint64_t v = 0; v < num_vertices; ++v) {
    uint64_t deg = 0;
    double expected = avg_degree;
    // Draw degree ~ Poisson(avg_degree) approximation of Binomial(n-1, p).
    double l = std::exp(-expected);
    double prod = rng.UniformDouble();
    while (prod > l) {
      ++deg;
      prod *= rng.UniformDouble();
    }
    deg = std::min<uint64_t>(deg, num_vertices - 1);
    for (uint64_t target : rng.SampleWithoutReplacement(num_vertices, deg)) {
      if (target != v) sets[v].push_back(target);
    }
  }
  (void)p;
  GeneratedInstance out;
  out.system = SetSystem(num_vertices, std::move(sets));
  out.family = "graph-neighborhoods";
  return out;
}

}  // namespace streamkc
