#include "setsys/frequency.h"

#include "util/check.h"
#include "util/math_util.h"

namespace streamkc {

std::vector<uint64_t> ElementFrequencies(const SetSystem& sys) {
  std::vector<uint64_t> freq(sys.num_elements(), 0);
  for (const auto& s : sys.sets()) {
    for (ElementId e : s) ++freq[e];
  }
  return freq;
}

double CommonThreshold(uint64_t m, uint64_t n, double lambda,
                       double c_polylog) {
  CHECK_GT(lambda, 0.0);
  double polylog = Log2AtLeast1(static_cast<double>(m)) *
                   Log2AtLeast1(static_cast<double>(n));
  return c_polylog * static_cast<double>(m) * polylog / lambda;
}

std::vector<ElementId> CommonElements(const SetSystem& sys, double lambda,
                                      double c_polylog) {
  double thr =
      CommonThreshold(sys.num_sets(), sys.num_elements(), lambda, c_polylog);
  std::vector<uint64_t> freq = ElementFrequencies(sys);
  std::vector<ElementId> out;
  for (ElementId e = 0; e < freq.size(); ++e) {
    if (static_cast<double>(freq[e]) >= thr) out.push_back(e);
  }
  return out;
}

}  // namespace streamkc
