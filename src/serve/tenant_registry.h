// TenantRegistry: budgeted multi-tenant serving instances.
//
// "Coverage as a service" means many instances sharing one process, each
// with its own space budget — and the paper's Θ̃(m/α²) trade-off is exactly
// the admission-control lever: a tenant declares (m, n, k, budget_bytes),
// and the registry derives the tightest approximation factor whose sketch
// is predicted to fit (Params::AlphaForBudget). A tenant that asks for a
// budget the law cannot meet even at the α = √m clamp is REJECTED at
// creation, not over-admitted and OOM-killed later.
//
// Two enforcement layers:
//   * admission: Σ tenant budgets ≤ the registry's global budget — reserved
//     capacity, checked at Create();
//   * runtime: the owner of each tenant's ingest reports measured footprints
//     through RecordSpace(); a tenant observed above its own budget has its
//     over_budget flag raised, which its QueryEngine turns into explicit
//     query rejections until the footprint drops back under.
//
// Each tenant bundles its own SnapshotStore (metrics labeled by tenant
// name) and a QueryEngine wired to the budget flag. Create()/Find() are
// mutex-guarded; the returned Tenant* is stable for the registry's
// lifetime, and the hot paths it exposes (queries, RecordSpace) are
// lock-free.

#ifndef STREAMKC_SERVE_TENANT_REGISTRY_H_
#define STREAMKC_SERVE_TENANT_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/params.h"
#include "obs/metrics.h"
#include "serve/query_engine.h"
#include "serve/serving_state.h"
#include "serve/snapshot_store.h"

namespace streamkc {

// What a tenant declares at admission time.
struct TenantQuota {
  uint64_t m = 0;  // sets
  uint64_t n = 0;  // ground-set size
  uint64_t k = 0;  // solution size
  size_t budget_bytes = 0;
  uint64_t seed = 1;
};

class Tenant {
 public:
  const std::string& name() const { return name_; }
  const TenantQuota& quota() const { return quota_; }
  // The α the budget bought (AlphaForBudget, clamped to [2, √m]).
  double alpha() const { return alpha_; }
  // Full estimator configuration for this tenant's ServingRuntime.
  const ServingState::Config& state_config() const { return state_config_; }

  SnapshotStore* store() { return &store_; }
  const QueryEngine& queries() const { return engine_; }

  // Latest footprint reported through TenantRegistry::RecordSpace.
  uint64_t space_bytes() const {
    return space_bytes_.load(std::memory_order_relaxed);
  }
  bool over_budget() const {
    return over_budget_.load(std::memory_order_relaxed);
  }

 private:
  friend class TenantRegistry;
  Tenant(const std::string& name, const TenantQuota& quota, double alpha,
         const ServingState::Config& state_config, MetricsRegistry* registry);

  std::string name_;
  TenantQuota quota_;
  double alpha_;
  ServingState::Config state_config_;
  std::atomic<uint64_t> space_bytes_{0};
  std::atomic<bool> over_budget_{false};
  SnapshotStore store_;
  QueryEngine engine_;
  Gauge* budget_gauge_;
  Gauge* space_gauge_;
};

class TenantRegistry {
 public:
  // `global_budget_bytes` caps the SUM of admitted tenant budgets (0 =
  // unlimited); `registry` nullptr = the process-wide registry.
  explicit TenantRegistry(size_t global_budget_bytes = 0,
                          MetricsRegistry* registry = nullptr);

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  // Admits a tenant, or returns nullptr with `*error` set: duplicate name,
  // empty name, zero-dimension quota, a budget the space law cannot meet at
  // any admissible α, or global-budget exhaustion. Admission counts in
  // serve_tenants_admitted_total / serve_tenants_rejected_total.
  Tenant* Create(const std::string& name, const TenantQuota& quota,
                 std::string* error);

  // nullptr when no such tenant.
  Tenant* Find(const std::string& name);

  // Records tenant `name`'s measured footprint (its ingest owner samples
  // ServingState::MemoryBytes() / SpaceAccountant peaks) and re-evaluates
  // the over-budget flag the tenant's QueryEngine consumes. Returns false
  // for an unknown tenant.
  bool RecordSpace(const std::string& name, uint64_t bytes);

  size_t NumTenants() const;
  // Σ admitted budgets and the global cap (0 = unlimited).
  size_t reserved_budget_bytes() const;
  size_t global_budget_bytes() const { return global_budget_bytes_; }

  std::vector<std::string> TenantNames() const;

 private:
  size_t global_budget_bytes_;
  MetricsRegistry* registry_;
  mutable std::mutex mu_;
  // node-stable: Tenant* handed out stays valid for the registry's lifetime.
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;
  size_t reserved_bytes_ = 0;
  Gauge* tenants_gauge_;
  Gauge* reserved_gauge_;
  Counter* admitted_total_;
  Counter* rejected_total_;
};

}  // namespace streamkc

#endif  // STREAMKC_SERVE_TENANT_REGISTRY_H_
