#include "serve/snapshot_store.h"

#include <utility>

#include "util/check.h"

namespace streamkc {

SnapshotStore::SnapshotStore(std::string name, MetricsRegistry* registry)
    : name_(std::move(name)) {
  MetricsRegistry* reg = registry ? registry : &MetricsRegistry::Global();
  published_ = reg->GetCounter(
      LabeledName("serve_snapshots_published_total", "store", name_));
  epoch_gauge_ =
      reg->GetGauge(LabeledName("serve_snapshot_epoch", "store", name_));
  blob_bytes_gauge_ =
      reg->GetGauge(LabeledName("serve_snapshot_blob_bytes", "store", name_));
  edges_gauge_ =
      reg->GetGauge(LabeledName("serve_snapshot_edges", "store", name_));
}

void SnapshotStore::Publish(std::shared_ptr<const CoverageSnapshot> snap) {
  CHECK(snap != nullptr);
  CHECK_GT(snap->meta().epoch, epoch_.load(std::memory_order_relaxed));
  uint32_t write_slot = 1 - active_.load(std::memory_order_relaxed);
  blob_bytes_gauge_->Set(snap->blob().size());
  edges_gauge_->Set(snap->meta().edges_ingested);
  epoch_gauge_->Set(snap->meta().epoch);
  published_->Increment();
  epoch_.store(snap->meta().epoch, std::memory_order_release);
  {
    // Only readers that loaded a stale index can be holding this slot, and
    // only for the duration of a shared_ptr copy — the writer's wait is
    // bounded by nanoseconds, never by query execution.
    std::lock_guard<std::mutex> lock(slots_[write_slot].mu);
    slots_[write_slot].snap = std::move(snap);
  }
  active_.store(write_slot, std::memory_order_release);
}

std::shared_ptr<const CoverageSnapshot> SnapshotStore::Current() const {
  // A read returns one of the two most recently published snapshots: the
  // index load and the slot copy are not one atomic step, so a publish
  // between them can hand back the previous epoch. That is exactly the
  // staleness the SnapshotMeta on every answer reports.
  uint32_t idx = active_.load(std::memory_order_acquire);
  std::lock_guard<std::mutex> lock(slots_[idx].mu);
  return slots_[idx].snap;
}

}  // namespace streamkc
